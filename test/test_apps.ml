(* Application integration tests.

   For every workload: the original (uninstrumented, one node) output is
   the ground truth; the instrumented executable must reproduce it on
   one node and — through the full coherence protocol — on 2 and 4
   nodes.  Where an OCaml reference exists, the ground truth itself is
   validated against it. *)

open Shasta_apps

let approx ~eps a b = Float.abs (a -. b) <= eps *. (1.0 +. Float.abs b)

let seq_output prog = Test_support.Support.ground_truth prog

let parallel_matches name prog =
  let expected = seq_output prog in
  List.iter
    (fun nprocs ->
      let got, _ = Test_support.Support.run ~nprocs prog in
      Alcotest.(check string)
        (Printf.sprintf "%s at %d procs" name nprocs)
        expected got)
    [ 1; 2; 4 ]

(* The KV service reports per-operation latencies and per-node
   timestamps, which legitimately differ between the uninstrumented
   ground truth and instrumented runs — and its final table contents
   depend on the node count (each node draws its own key stream).  So
   instead of byte-comparing against the one-node ground truth, check
   the timing-invariant projection at one node and validate every node
   count against the shadow-table oracle. *)
let t_sht (e : Apps.entry) () =
  let module Report = Shasta_workload.Report in
  let prog = e.make Apps.Test in
  let expected = Report.strip_timing (Report.parse (seq_output prog)) in
  List.iter
    (fun nprocs ->
      let out, _ = Test_support.Support.run ~nprocs prog in
      let r = Report.parse out in
      let s = Sht.shadow ~wl:Apps.sht_test_wl ~nprocs () in
      Alcotest.(check int)
        (Printf.sprintf "consistency violations at %d procs" nprocs)
        0
        (r.Report.errors + r.Report.verify_errors);
      Alcotest.(check int)
        (Printf.sprintf "population at %d procs" nprocs)
        s.Sht.s_population r.Report.population;
      Alcotest.(check bool)
        (Printf.sprintf "checksum matches oracle at %d procs" nprocs)
        true
        (r.Report.checksum = s.Sht.s_checksum);
      if nprocs = 1 then
        Alcotest.(check bool) "canonical output matches sequential" true
          (Report.strip_timing r = expected))
    [ 1; 2; 4 ]

let app_test (e : Apps.entry) =
  Alcotest.test_case e.name `Quick
    (if e.name = "sht" then t_sht e
     else fun () -> parallel_matches e.name (e.make Apps.Test))

(* --- reference cross-checks --------------------------------------- *)

let t_lu_reference () =
  let out = seq_output (Lu.program ~n:16 ~bs:4 ()) in
  let got = float_of_string (String.trim out) in
  let want = Lu.reference_checksum ~n:16 ~bs:4 in
  Alcotest.(check bool)
    (Printf.sprintf "lu checksum %g vs %g" got want)
    true
    (approx ~eps:1e-5 got want)

let t_ocean_reference () =
  let out = seq_output (Ocean.program ~n:18 ~iters:2 ()) in
  let got = float_of_string (String.trim out) in
  let want = Ocean.reference_checksum ~n:18 ~iters:2 in
  Alcotest.(check bool)
    (Printf.sprintf "ocean checksum %g vs %g" got want)
    true
    (approx ~eps:1e-5 got want)

let t_water_reference () =
  let out = seq_output (Water.program ~nmol:32 ~steps:1 ()) in
  let got = float_of_string (String.trim out) in
  let want = Water.reference_checksum ~nmol:32 ~steps:1 in
  Alcotest.(check bool)
    (Printf.sprintf "water checksum %g vs %g" got want)
    true
    (approx ~eps:1e-5 got want)

let t_radix_reference () =
  let out = seq_output (Radix.program ~nkeys:512 ()) in
  let sorted, sum = Radix.reference ~nkeys:512 ~radix_bits:4 ~max_bits:16 in
  Alcotest.(check string) "radix sorted+checksum"
    (Printf.sprintf "%d\n%d\n" sorted sum)
    out

let t_fft_roundtrip () =
  (* second printed line is the forward+inverse roundtrip check *)
  let out = seq_output (Fft.program ~n:64 ()) in
  match String.split_on_char '\n' (String.trim out) with
  | [ _energy; ok ] -> Alcotest.(check string) "roundtrip ok" "1" ok
  | _ -> Alcotest.fail ("unexpected fft output: " ^ out)

let t_em3d_reference () =
  let out = seq_output (Em3d.program ~nnodes:64 ~degree:3 ~iters:2 ()) in
  let got = float_of_string (String.trim out) in
  let want = Em3d.reference_checksum ~nnodes:64 ~degree:3 ~iters:2 in
  Alcotest.(check bool)
    (Printf.sprintf "em3d checksum %g vs %g" got want)
    true
    (approx ~eps:1e-5 got want)

let t_radiosity_conserves () =
  let out = seq_output (Radiosity.program ~npatches:16 ()) in
  Alcotest.(check string) "energy conserved"
    (string_of_int (Radiosity.expected_total ~npatches:16) ^ "\n")
    out

(* --- microworkloads ------------------------------------------------ *)

let t_false_sharing () =
  List.iter
    (fun nprocs ->
      let got, _ =
        Test_support.Support.run ~nprocs (Micro.false_sharing ~iters:50 ())
      in
      Alcotest.(check string)
        (Printf.sprintf "false sharing at %d" nprocs)
        (string_of_int (nprocs * 50) ^ "\n")
        got)
    [ 1; 2; 4 ]

let t_stream () =
  List.iter
    (fun nprocs ->
      let got, _ =
        Test_support.Support.run ~nprocs (Micro.stream ~nwords:256 ())
      in
      let want = 7 * (255 * 256 / 2) in
      Alcotest.(check string)
        (Printf.sprintf "stream at %d" nprocs)
        (string_of_int want ^ "\n")
        got)
    [ 1; 4 ]

let t_migratory () =
  List.iter
    (fun nprocs ->
      let got, _ =
        Test_support.Support.run ~nprocs (Micro.migratory ~rounds:16 ())
      in
      Alcotest.(check string)
        (Printf.sprintf "migratory at %d" nprocs)
        (string_of_int (nprocs * 16) ^ "\n")
        got)
    [ 1; 2; 4 ]

let t_prodcons () =
  List.iter
    (fun nprocs ->
      let got, _ =
        Test_support.Support.run ~nprocs (Micro.prodcons ~items:8 ())
      in
      let want = List.init 8 (fun k -> (k * k) + 1) |> List.fold_left ( + ) 0 in
      Alcotest.(check string)
        (Printf.sprintf "prodcons at %d" nprocs)
        (string_of_int want ^ "\n")
        got)
    [ 1; 2; 4 ]

let () =
  Alcotest.run "apps"
    [ ("parallel == sequential", List.map app_test Apps.all);
      ( "references",
        [ Alcotest.test_case "lu" `Quick t_lu_reference;
          Alcotest.test_case "ocean" `Quick t_ocean_reference;
          Alcotest.test_case "water" `Quick t_water_reference;
          Alcotest.test_case "radix" `Quick t_radix_reference;
          Alcotest.test_case "fft roundtrip" `Quick t_fft_roundtrip;
          Alcotest.test_case "em3d" `Quick t_em3d_reference;
          Alcotest.test_case "radiosity conservation" `Quick
            t_radiosity_conserves ] );
      ( "microworkloads",
        [ Alcotest.test_case "false sharing" `Quick t_false_sharing;
          Alcotest.test_case "stream" `Quick t_stream;
          Alcotest.test_case "migratory" `Quick t_migratory;
          Alcotest.test_case "producer/consumer" `Quick t_prodcons ] )
    ]
