(* Shared helpers for the test suites. *)

open Shasta_runtime

(* Run a MiniC program and return (printed output, phase result). *)
let run ?(opts = Some Shasta.Opts.full) ?(nprocs = 1)
    ?(net = Shasta_network.Network.memory_channel) ?net_faults ?node_faults
    ?fixed_block ?obs ?(init_proc = "appinit") ?(work_proc = "work") prog =
  let spec =
    { (Api.default_spec prog) with
      opts; nprocs; net; net_faults; node_faults; fixed_block; obs }
  in
  let r = Api.run ~init_proc ~work_proc spec in
  (r.phase.output, r)

(* Output of the original (uninstrumented) binary on one node — the
   ground truth every instrumented/parallel run must reproduce. *)
let ground_truth ?(init_proc = "appinit") ?(work_proc = "work") prog =
  fst (run ~opts:None ~nprocs:1 ~init_proc ~work_proc prog)

(* Assert the instrumented run at [nprocs] produces the ground-truth
   output. *)
let check_matches_sequential ?(opts = Shasta.Opts.full) ~nprocs prog name =
  let expected = ground_truth prog in
  let got, _ = run ~opts:(Some opts) ~nprocs prog in
  Alcotest.(check string) name expected got

(* A tiny program wrapper: statements for node 0 only, printing via
   print_int. *)
let single_proc_prog body =
  Shasta_minic.Builder.prog [ Shasta_minic.Builder.proc "work" body ]

let qtest name ?(count = 100) gen prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name ~count gen prop)

(* --- canonical event traces and their digests ----------------------- *)

(* Run with a text sink attached and return the canonical trace: every
   emitted event rendered by [Sink.line], in emission order.  This is
   the byte-exact protocol behaviour of the run — the golden-trace
   suite digests it to pin workloads down across refactors. *)
let run_trace ?(opts = Some Shasta.Opts.full) ?(nprocs = 1) ?net ?net_faults
    ?node_faults prog =
  let obs = Shasta_obs.Obs.create ~nprocs () in
  let lines = ref [] in
  Shasta_obs.Obs.attach obs
    { Shasta_obs.Sink.on_record =
        (fun r -> lines := Shasta_obs.Sink.line r :: !lines);
      flush = (fun () -> ()) };
  let out, r = run ~opts ~nprocs ?net ?net_faults ?node_faults ~obs prog in
  (List.rev !lines, out, r)

(* Digest a trace in fixed-size chunks so a mismatch can be narrowed to
   its first diverging window without storing the full golden text. *)
let chunk_lines = 64

let digest_chunks lines =
  let rec go acc chunk n = function
    | [] ->
      let acc =
        if chunk = [] then acc
        else Digest.to_hex (Digest.string (String.concat "\n" (List.rev chunk)))
             :: acc
      in
      List.rev acc
    | l :: rest ->
      if n = chunk_lines then
        go
          (Digest.to_hex (Digest.string (String.concat "\n" (List.rev chunk)))
           :: acc)
          [ l ] 1 rest
      else go acc (l :: chunk) (n + 1) rest
  in
  (List.length lines, go [] [] 0 lines)

(* The workloads pinned by the golden-trace suite, with the exact specs
   the digests were generated under (fault-free default network). *)
let golden_runs =
  [ ("lu", 4, fun () -> Shasta_apps.Lu.program ~n:16 ~bs:4 ());
    ("fft", 4, fun () -> Shasta_apps.Fft.program ~n:64 ());
    ("radix", 4, fun () -> Shasta_apps.Radix.program ~nkeys:1024 ~max_bits:16 ());
    ( "sht",
      4,
      fun () ->
        Shasta_apps.Sht.program ~cfg:Shasta_apps.Apps.sht_test_cfg
          ~wl:Shasta_apps.Apps.sht_test_wl () )
  ]
