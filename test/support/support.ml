(* Shared helpers for the test suites. *)

open Shasta_runtime

(* Run a MiniC program and return (printed output, phase result). *)
let run ?(opts = Some Shasta.Opts.full) ?(nprocs = 1)
    ?(net = Shasta_network.Network.memory_channel) ?fixed_block ?obs
    ?(init_proc = "appinit") ?(work_proc = "work") prog =
  let spec =
    { (Api.default_spec prog) with opts; nprocs; net; fixed_block; obs }
  in
  let r = Api.run ~init_proc ~work_proc spec in
  (r.phase.output, r)

(* Output of the original (uninstrumented) binary on one node — the
   ground truth every instrumented/parallel run must reproduce. *)
let ground_truth ?(init_proc = "appinit") ?(work_proc = "work") prog =
  fst (run ~opts:None ~nprocs:1 ~init_proc ~work_proc prog)

(* Assert the instrumented run at [nprocs] produces the ground-truth
   output. *)
let check_matches_sequential ?(opts = Shasta.Opts.full) ~nprocs prog name =
  let expected = ground_truth prog in
  let got, _ = run ~opts:(Some opts) ~nprocs prog in
  Alcotest.(check string) name expected got

(* A tiny program wrapper: statements for node 0 only, printing via
   print_int. *)
let single_proc_prog body =
  Shasta_minic.Builder.prog [ Shasta_minic.Builder.proc "work" body ]

let qtest name ?(count = 100) gen prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name ~count gen prop)
