(* Refinement suite: the protocol refines the serial-memory spec.

   Four layers, bottom up:

   - QCheck laws of the spec machine ([Refine]): stepping is a pure
     function of (state, step) — replaying a committed run reproduces
     the same canonical state; loads and stores on DISJOINT blocks
     commute (same outcome, same final state, in both orders); a load
     never changes what a later load of the same block may observe.

   - QCheck law of the race detector: no false negatives on directed
     racy programs — two conflicting accesses from different nodes
     with no synchronizing edge between them (each node may
     acquire/release its own private lock, which must NOT order them)
     are always reported.

   - Exhaustive refinement at P=2 over every scenario family — base
     (plus the directed release-order scenario), scaling
     (limited-pointer, coarse-vector, queue locks, combining-tree
     barrier), crash family under the crash/recover adversary, and
     the base family over lossy channels — must find no divergence:
     every user-visible commit maps onto exactly one atomic spec
     step and everything else stutters.

   - P=3 fuzz smoke of the same families, plus the derived per-run
     fuzz seed stream pinned collision-free (the old derivation
     summed the run index into the splitmix seed before finalizing,
     so neighbouring (seed, index) pairs collided). *)

open QCheck2
module T = Shasta_protocol.Transitions
module Mcheck = Shasta_mcheck.Mcheck
module Refine = Shasta_mcheck.Refine

let qtest name ?(count = 200) gen prop =
  QCheck_alcotest.to_alcotest (Test.make ~name ~count gen prop)

(* ------------------------------------------------------------------ *)
(* Spec machine laws                                                   *)
(* ------------------------------------------------------------------ *)

let nprocs = 2
let blocks = [ 0; 1; 2 ]

(* Random user-step programs over a tiny alphabet.  Lock/flag steps
   are included with preconditions that may fail — the laws only
   quantify over steps the spec accepts, so a rejected step simply
   ends the replayed prefix. *)
let gen_sstep =
  Gen.(
    let node = int_bound (nprocs - 1) in
    let block = oneofl blocks in
    oneof
      [ map3
          (fun node block value -> Refine.S_store { node; block; value })
          node block (int_bound 9);
        map2
          (fun node id -> Refine.S_lock { node; id })
          node (int_bound 1);
        map2
          (fun node id -> Refine.S_unlock { node; id })
          node (int_bound 1);
        map2
          (fun node id -> Refine.S_flag_set { node; id })
          node (int_bound 1) ])

let gen_program = Gen.list_size (Gen.int_range 0 12) gen_sstep

(* Fold a program through the spec, dropping rejected steps (their
   preconditions simply did not hold in the generated context). *)
let replay prog =
  List.fold_left
    (fun s st ->
      match Refine.step s st with Ok s' -> s' | Error _ -> s)
    (Refine.init ~nprocs ~blocks)
    prog

let t_spec_deterministic =
  qtest "spec replay is deterministic" gen_program (fun prog ->
      Refine.equal (replay prog) (replay prog)
      && Refine.canon (replay prog) = Refine.canon (replay prog))

(* Accesses to distinct blocks commute: same accept/reject outcome and
   the same final state in either order. *)
let gen_disjoint_pair =
  Gen.(
    let* prog = gen_program in
    let* n1 = int_bound (nprocs - 1) in
    let* n2 = int_bound (nprocs - 1) in
    let* v1 = int_bound 9 in
    let* v2 = int_bound 9 in
    let* b1 = oneofl blocks in
    let* b2 = oneofl (List.filter (fun b -> b <> b1) blocks) in
    let acc node block value =
      oneofl
        [ Refine.S_store { node; block; value };
          Refine.S_load
            { node; block; value (* may be inadmissible: that is fine *) } ]
    in
    let* a1 = acc n1 b1 v1 in
    let* a2 = acc n2 b2 v2 in
    pure (prog, a1, a2))

let t_spec_commute =
  qtest "disjoint-block accesses commute" gen_disjoint_pair
    (fun (prog, a1, a2) ->
      let s = replay prog in
      let seq x y =
        match Refine.step s x with
        | Error e -> Error e
        | Ok s' -> Refine.step s' y
      in
      match (seq a1 a2, seq a2 a1) with
      | Ok s12, Ok s21 -> Refine.equal s12 s21
      | Error _, Error _ -> true
      | _ -> false)

(* A load collapses its block to a singleton: immediately loading the
   block again can observe exactly that value and nothing else. *)
let t_spec_load_stable =
  qtest "a load pins what later loads observe"
    Gen.(
      let* prog = gen_program in
      let* node = int_bound (nprocs - 1) in
      let* block = oneofl blocks in
      pure (prog, node, block))
    (fun (prog, node, block) ->
      let s = replay prog in
      match Refine.mem_values s block with
      | [] -> false (* a block's admissible set is never empty *)
      | v :: _ -> (
        match Refine.step s (Refine.S_load { node; block; value = v }) with
        | Error _ -> false
        | Ok s' -> Refine.mem_values s' block = [ v ]))

(* ------------------------------------------------------------------ *)
(* Race detector: no false negatives on directed racy programs        *)
(* ------------------------------------------------------------------ *)

(* Two conflicting accesses to the same block from different nodes; in
   between, each node may take and release its own PRIVATE lock (node
   0 only ever touches lock 0, node 1 only lock 1), which creates no
   edge between them.  The second access must always be reported. *)
let gen_racy =
  Gen.(
    let* block = oneofl blocks in
    let* w1 = bool in
    (* at least one side writes *)
    let* w2 = if w1 then bool else pure true in
    let noise node =
      small_list
        (oneofl
           [ Refine.S_lock { node; id = node };
             Refine.S_unlock { node; id = node };
             Refine.S_store { node; block = 2 - block; value = 7 } ])
    in
    let* noise0 = noise 0 in
    let* noise1 = noise 1 in
    let acc node w =
      if w then Refine.S_store { node; block; value = 1 + node }
      else Refine.S_load { node; block; value = 0 }
    in
    pure (noise0 @ [ acc 0 w1 ] @ noise1 @ [ acc 1 w2 ]))

let t_racer_no_false_negative =
  qtest "conflicting unsynchronized accesses always reported" gen_racy
    (fun prog ->
      let _, races =
        List.fold_left
          (fun (r, races) st ->
            let r, reports = Refine.observe r st in
            (r, races @ reports))
          (Refine.racer_init ~nprocs, [])
          prog
      in
      races <> [])

(* And the mirror sanity check: a properly flag-ordered handoff is
   race-free. *)
let t_racer_handoff_clean () =
  let prog =
    [ Refine.S_store { node = 0; block = 0; value = 5 };
      Refine.S_flag_set { node = 0; id = 0 };
      Refine.S_flag_wait { node = 1; id = 0 };
      Refine.S_load { node = 1; block = 0; value = 5 } ]
  in
  let _, races =
    List.fold_left
      (fun (r, races) st ->
        let r, reports = Refine.observe r st in
        (r, races @ reports))
      (Refine.racer_init ~nprocs, [])
      prog
  in
  Alcotest.(check (list string)) "flag handoff is race-free" [] races

(* ------------------------------------------------------------------ *)
(* Exhaustive refinement, P=2                                          *)
(* ------------------------------------------------------------------ *)

let assert_clean ?injection ?lossy ?crash ?recover tag scs =
  List.iter
    (fun (sc : Mcheck.scenario) ->
      let r =
        Mcheck.check_exhaustive ?injection ?lossy ?crash ?recover
          ~refine:true sc
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s %s explored fully" tag sc.Mcheck.sname)
        false r.Mcheck.truncated;
      match r.Mcheck.violation with
      | None -> ()
      | Some v ->
        Mcheck.pp_violation stderr v;
        Alcotest.fail (Printf.sprintf "%s %s: divergence" tag sc.Mcheck.sname))
    scs

let t_exhaustive_base () =
  assert_clean "base" (Mcheck.refine_scenarios ~nprocs:2)

let t_exhaustive_scale () =
  assert_clean "scale" (Mcheck.scale_scenarios ~nprocs:2)

let t_exhaustive_lossy () =
  assert_clean ~lossy:2 "lossy" (Mcheck.refine_scenarios ~nprocs:2)

let t_exhaustive_crash () =
  assert_clean ~crash:1 "crash" (Mcheck.crash_scenarios ~nprocs:2);
  assert_clean ~crash:1 ~recover:1 "crash+recover"
    (Mcheck.crash_scenarios ~nprocs:2)

(* Regression for the lost-update bug the crash refinement pass found:
   a salvage adopt at a coordinator with a pending upgrade used to
   clobber its written-in-place longwords with the victim's frozen
   image, silently undoing a committed store (the terminal held the
   PREVIOUS increment).  Pre-refinement invariants all pass on that
   trace; the serial memory does not. *)
let t_crash_lock_increment_refines () =
  let r =
    Mcheck.check_exhaustive ~crash:1 ~recover:1 ~refine:true
      (Mcheck.lock_increment ~nprocs:2)
  in
  (match r.Mcheck.violation with
   | None -> ()
   | Some v ->
     Mcheck.pp_violation stderr v;
     Alcotest.fail "lock-increment diverges under crash/recover");
  Alcotest.(check bool) "explored fully" false r.Mcheck.truncated

(* ------------------------------------------------------------------ *)
(* P=3 fuzz smoke + seed stream                                        *)
(* ------------------------------------------------------------------ *)

let t_fuzz_p3 () =
  List.iter
    (fun (sc : Mcheck.scenario) ->
      let _, v = Mcheck.fuzz ~refine:true ~seed:11 ~runs:60 sc in
      match v with
      | None -> ()
      | Some v ->
        Mcheck.pp_violation stderr v;
        Alcotest.fail (sc.Mcheck.sname ^ ": fuzz divergence"))
    (Mcheck.refine_scenarios ~nprocs:3)

let t_fuzz_p3_crash () =
  List.iter
    (fun (sc : Mcheck.scenario) ->
      let _, v =
        Mcheck.fuzz ~crash:1 ~recover:1 ~refine:true ~seed:13 ~runs:60 sc
      in
      match v with
      | None -> ()
      | Some v ->
        Mcheck.pp_violation stderr v;
        Alcotest.fail (sc.Mcheck.sname ^ ": crash fuzz divergence"))
    (Mcheck.crash_scenarios ~nprocs:3)

(* The per-run seeds must be pairwise distinct, and distinct base
   seeds must not slide into each other's streams (the old derivation
   added the run index into the seed before finalizing, so
   (seed, k+1) collided with (seed+1, k)). *)
let t_fuzz_seeds_unique () =
  let a = Mcheck.fuzz_seeds ~seed:7 ~runs:5000 in
  let b = Mcheck.fuzz_seeds ~seed:8 ~runs:5000 in
  let module S = Set.Make (Int) in
  let sa = S.of_list a and sb = S.of_list b in
  Alcotest.(check int) "runs from one seed all distinct" 5000 (S.cardinal sa);
  Alcotest.(check int) "neighbouring seeds do not collide" 0
    (S.cardinal (S.inter sa sb))

let () =
  Alcotest.run "refine"
    [ ( "spec",
        [ t_spec_deterministic; t_spec_commute; t_spec_load_stable ] );
      ( "racer",
        [ t_racer_no_false_negative;
          Alcotest.test_case "flag handoff race-free" `Quick
            t_racer_handoff_clean ] );
      ( "exhaustive",
        [ Alcotest.test_case "base scenarios refine at P=2" `Quick
            t_exhaustive_base;
          Alcotest.test_case "scale scenarios refine at P=2" `Quick
            t_exhaustive_scale;
          Alcotest.test_case "base scenarios refine under loss" `Quick
            t_exhaustive_lossy;
          Alcotest.test_case "crash scenarios refine at P=2" `Quick
            t_exhaustive_crash;
          Alcotest.test_case "salvage lost-update regression" `Quick
            t_crash_lock_increment_refines ] );
      ( "fuzz",
        [ Alcotest.test_case "scenarios refine at P=3 (fuzz)" `Quick
            t_fuzz_p3;
          Alcotest.test_case "crash scenarios refine at P=3 (fuzz)" `Quick
            t_fuzz_p3_crash;
          Alcotest.test_case "per-run fuzz seeds are unique" `Quick
            t_fuzz_seeds_unique ] ) ]
