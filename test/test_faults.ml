(* Fault-injection suite.

   Two halves:

   - the fault-matrix soak: every pinned workload runs under each row
     of a fault matrix (drop-only, dup-only, reorder-only, combined) at
     several seeds, and must still reproduce the uninstrumented
     single-node ground-truth output — the reliable sublayer makes a
     lossy wire invisible to the protocol, faults only cost cycles.
     The fault counters must move when faults are on and stay at zero
     when they are off.

   - QCheck properties of the reliable sublayer in isolation: the
     receiver half delivers every payload exactly once, in per-channel
     sequence order, with monotonic delivery times, whatever arrival
     order and duplication the wire inflicts; the sender half's
     transmission plan is deterministic in the RNG and respects the
     backoff arithmetic. *)

module Support = Test_support.Support
module Network = Shasta_network.Network
open Shasta_runtime

(* Probabilities are deliberately higher than [Network.standard] (5%
   vs 1-2%) so the counter assertions below can't go flaky: at test
   sizes a 1% coin may simply never fire for one kind on one seed, so
   we also aggregate counters across seeds before asserting. *)
let matrix =
  [ ("drop", { Network.no_faults with drop = 0.05 });
    ("dup", { Network.no_faults with dup = 0.05 });
    ("reorder", { Network.no_faults with reorder = 0.05 });
    ("combined",
     { Network.no_faults with drop = 0.02; dup = 0.02; reorder = 0.02;
       delay = 0.02 })
  ]

let seeds = [ 1; 2; 3 ]

let add_stats (a : Network.fault_stats) (b : Network.fault_stats) =
  { Network.drops = a.drops + b.drops;
    dups = a.dups + b.dups;
    retxs = a.retxs + b.retxs;
    reorders = a.reorders + b.reorders;
    backoff_cycles = a.backoff_cycles + b.backoff_cycles;
    timeouts = a.timeouts + b.timeouts }

(* Run one workload under one fault row at one seed; the data oracle is
   the ground-truth output.  Returns the wire's fault counters. *)
let soak_one ?(canon = Fun.id) name nprocs make expected (f : Network.faults)
    seed =
  let faults = { f with fseed = seed } in
  let got, r = Support.run ~nprocs ~net_faults:faults (make ()) in
  Alcotest.(check string)
    (Printf.sprintf "%s output (seed %d, %s)" name seed
       (Network.describe_faults faults))
    expected (canon got);
  Network.fault_stats r.Api.state.State.net

(* The KV service reports per-operation latencies, and the wire's
   timing legally moves both them and the shard-handoff placement (a
   bucket migrates toward whoever's request lands first).  The data
   oracle for the soak is everything else — operation counts, zero
   violations, final population and checksum — against a fault-free
   run at the same node count. *)
let kv_canon out =
  let module Report = Shasta_workload.Report in
  let r = Report.strip_timing (Report.parse out) in
  let r =
    { r with
      Report.migrations = 0;
      owned = Array.map (fun _ -> 0) r.Report.owned }
  in
  Report.render r

let t_soak (name, nprocs, make) () =
  let canon = if name = "sht" then kv_canon else Fun.id in
  let expected =
    if name = "sht" then canon (fst (Support.run ~nprocs (make ())))
    else Support.ground_truth (make ())
  in
  List.iter
    (fun (row, f) ->
      let total =
        List.fold_left
          (fun acc seed ->
            add_stats acc (soak_one ~canon name nprocs make expected f seed))
          Network.zero_fault_stats seeds
      in
      (* the matrix row must actually have exercised its fault kind
         (aggregated across seeds so a single quiet run can't flake) *)
      let nonzero what n =
        Alcotest.(check bool)
          (Printf.sprintf "%s/%s: %s fired across seeds" name row what)
          true (n > 0)
      in
      match row with
      | "drop" ->
        nonzero "retx" total.Network.retxs;
        nonzero "backoff" total.Network.backoff_cycles
      | "dup" -> nonzero "dup" total.Network.dups
      | "reorder" -> nonzero "reorder" total.Network.reorders
      | _ ->
        nonzero "any fault"
          (total.Network.retxs + total.Network.dups + total.Network.reorders))
    matrix

(* With faults off the counters must be exactly zero — both the wire's
   own statistics and the observability registry's net.* counters. *)
let t_counters_zero_when_off () =
  let _, nprocs, make = List.hd Support.golden_runs in
  let obs = Shasta_obs.Obs.create ~nprocs () in
  let _, r = Support.run ~nprocs ~obs (make ()) in
  let s = Network.fault_stats r.Api.state.State.net in
  Alcotest.(check bool) "wire stats zero" true (s = Network.zero_fault_stats);
  let m = Shasta_obs.Obs.metrics obs in
  List.iter
    (fun c ->
      Alcotest.(check int) (c ^ " zero")
        0
        (Shasta_obs.Obs.Metrics.counter_total m c))
    [ Shasta_obs.Obs.c_net_drop; Shasta_obs.Obs.c_net_dup;
      Shasta_obs.Obs.c_net_retx; Shasta_obs.Obs.c_net_reorder;
      Shasta_obs.Obs.c_net_backoff; Shasta_obs.Obs.c_net_timeout;
      Shasta_obs.Obs.c_node_crash; Shasta_obs.Obs.c_node_recover;
      Shasta_obs.Obs.c_lease_takeover; Shasta_obs.Obs.c_dir_rebuild ]

(* With faults on, the registry counters mirror the wire's statistics:
   the fault tap is the only writer of net.*, so the two must agree. *)
let t_counters_match_wire () =
  let _, nprocs, make = List.hd Support.golden_runs in
  let obs = Shasta_obs.Obs.create ~nprocs () in
  let faults = { Network.standard with drop = 0.05; fseed = 7 } in
  let expected = Support.ground_truth (make ()) in
  let got, r = Support.run ~nprocs ~obs ~net_faults:faults (make ()) in
  Alcotest.(check string) "output under faults" expected got;
  let s = Network.fault_stats r.Api.state.State.net in
  Alcotest.(check bool) "some faults fired" true (s.Network.retxs > 0);
  let m = Shasta_obs.Obs.metrics obs in
  let total c = Shasta_obs.Obs.Metrics.counter_total m c in
  Alcotest.(check int) "net.retx" s.Network.retxs (total Shasta_obs.Obs.c_net_retx);
  Alcotest.(check int) "net.drop" s.Network.drops (total Shasta_obs.Obs.c_net_drop);
  Alcotest.(check int) "net.dup" s.Network.dups (total Shasta_obs.Obs.c_net_dup);
  Alcotest.(check int) "net.reorder" s.Network.reorders
    (total Shasta_obs.Obs.c_net_reorder);
  Alcotest.(check int) "net.backoff_cycles" s.Network.backoff_cycles
    (total Shasta_obs.Obs.c_net_backoff)

(* Seeded faults are deterministic: same spec, same run, same cycle
   count and same fault counters. *)
let t_faults_deterministic () =
  let _, nprocs, make = List.hd Support.golden_runs in
  let go () =
    let _, r = Support.run ~nprocs ~net_faults:Network.standard (make ()) in
    (r.Api.phase.Cluster.wall_cycles, Network.fault_stats r.Api.state.State.net)
  in
  let a = go () and b = go () in
  Alcotest.(check bool) "identical cycles and counters" true (a = b)

(* --- QCheck: the receiver half of the reliable sublayer ------------- *)

(* An adversarial arrival schedule for one channel: sequence numbers
   0..n-1, each transmitted 1..3 times (duplicates), the whole lot
   shuffled (reordering), each copy with its own arrival time. *)
let arrivals_gen =
  let open QCheck2.Gen in
  int_range 1 30 >>= fun n ->
  list_size (return n) (int_range 1 3) >>= fun copies ->
  let frames =
    List.concat (List.mapi (fun seq c -> List.init c (fun _ -> seq)) copies)
  in
  shuffle_l frames >>= fun order ->
  list_size (return (List.length order)) (int_range 0 100_000) >>= fun times ->
  return (n, List.combine order times)

let prop_exactly_once_in_order (n, events) =
  let rx = Network.Sublayer.rx_create () in
  let delivered = ref [] in
  List.iter
    (fun (fseq, arrival) ->
      List.iter
        (fun d -> delivered := d :: !delivered)
        (Network.Sublayer.rx_offer rx ~fseq ~arrival fseq))
    events;
  let ds = List.rev !delivered in
  (* every payload exactly once, in sequence order *)
  List.map snd ds = List.init n Fun.id
  (* delivery times never go backwards (channel FIFO restored) *)
  && fst
       (List.fold_left
          (fun (ok, last) (t, _) -> (ok && t >= last, t))
          (true, min_int) ds)
  (* delivery never precedes the payload's own (first) arrival *)
  && List.for_all
       (fun (t, p) ->
         let first_arrival =
           List.fold_left
             (fun acc (fseq, a) -> if fseq = p then min acc a else acc)
             max_int events
         in
         t >= first_arrival)
       ds
  (* nothing held back once every gap is filled *)
  && Network.Sublayer.rx_held rx = 0
  && Network.Sublayer.rx_expected rx = n

(* Offering a partial, gappy schedule never delivers past the first
   gap, and re-offering a delivered or held frame is a no-op. *)
let prop_gap_holds (n, events) =
  let rx = Network.Sublayer.rx_create () in
  (* withhold sequence number 0 entirely *)
  let events = List.filter (fun (fseq, _) -> fseq <> 0) events in
  List.iter
    (fun (fseq, arrival) ->
      match Network.Sublayer.rx_offer rx ~fseq ~arrival fseq with
      | [] -> ()
      | _ -> failwith "delivered across a sequence gap")
    events;
  Network.Sublayer.rx_expected rx = 0
  && (n <= 1 || Network.Sublayer.rx_held rx > 0)
  && (* dups of held frames are detected *)
  List.for_all
    (fun (fseq, _) -> Network.Sublayer.rx_is_dup rx ~fseq)
    events

(* --- QCheck: the sender half (transmission planning) ---------------- *)

let tx_gen =
  let open QCheck2.Gen in
  int_range 1 1_000_000 >>= fun seed ->
  float_bound_inclusive 0.5 >>= fun drop ->
  float_bound_inclusive 0.3 >>= fun dup ->
  float_bound_inclusive 0.3 >>= fun reorder ->
  float_bound_inclusive 0.3 >>= fun delay ->
  int_range 0 100_000 >>= fun now ->
  int_range 1 5_000 >>= fun flight ->
  int_range 1 10_000 >>= fun rto ->
  return (seed, drop, dup, reorder, delay, now, flight, rto)

let prop_tx_plan (seed, drop, dup, reorder, delay, now, flight, rto) =
  let f =
    { Network.no_faults with drop; dup; reorder; delay; delay_cycles = 2000 }
  in
  let plan () =
    Network.Sublayer.tx_plan f
      (Random.State.make [| seed |])
      ~now ~flight ~rto
  in
  let arrival, dup_arrival, x = plan () in
  (* deterministic in the RNG seed *)
  plan () = (arrival, dup_arrival, x)
  (* bounded retries; the last attempt always survives *)
  && x.Network.retx >= 0
  && x.Network.retx < Network.Sublayer.max_attempts
  (* the frame arrives after its (possibly backed-off) flight *)
  && arrival >= now + flight + x.Network.backoff
  (* backoff is exactly the sum of the doubling timeouts *)
  && (let expect = ref 0 in
      for k = 0 to x.Network.retx - 1 do
        expect := !expect + (rto * (1 lsl min k 10))
      done;
      x.Network.backoff = !expect)
  (* a duplicate copy trails the original *)
  && (match dup_arrival with
      | None -> not x.Network.duplicated
      | Some d -> x.Network.duplicated && d > arrival)

let () =
  Alcotest.run "faults"
    [ ( "soak",
        List.map
          (fun ((name, _, _) as g) ->
            Alcotest.test_case name `Slow (t_soak g))
          Support.golden_runs );
      ( "counters",
        [ Alcotest.test_case "zero when off" `Quick t_counters_zero_when_off;
          Alcotest.test_case "registry matches wire" `Quick
            t_counters_match_wire;
          Alcotest.test_case "deterministic" `Quick t_faults_deterministic ] );
      ( "sublayer",
        [ Support.qtest "exactly-once, in-order delivery" ~count:300
            arrivals_gen prop_exactly_once_in_order;
          Support.qtest "gaps hold delivery" ~count:300 arrivals_gen
            prop_gap_holds;
          Support.qtest "tx plan: deterministic, bounded, backoff arithmetic"
            ~count:500 tx_gen prop_tx_plan ] )
    ]
