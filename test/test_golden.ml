(* Golden-trace regression suite.

   Each pinned workload is run fault-free with a text sink attached;
   the canonical event trace ([Sink.line] per record, in emission
   order) is digested in fixed-size chunks and compared against the
   saved digests in test/support/golden.ml.  Any PR that perturbs
   protocol behaviour unintentionally — an extra message, a shifted
   delivery time, a reordered event — fails here with the first
   diverging window and the lines the current code produces in it.

   The same digests must also hold with the reliable-delivery sublayer
   PRESENT but all fault probabilities zero (--net-faults none takes
   the plain path; Network.no_faults takes the sublayer path): the
   sublayer is pure overhead-free plumbing when the wire is clean.

   Intentional behaviour changes regenerate the goldens:
     dune exec test/gen_golden.exe > test/support/golden.ml *)

module Support = Test_support.Support
module Golden = Test_support.Golden

let find_golden name =
  match List.assoc_opt name Golden.goldens with
  | Some g -> g
  | None ->
    Alcotest.fail
      (Printf.sprintf
         "no golden digests for %s — regenerate test/support/golden.ml" name)

(* Compare chunk digests; on the first mismatch, print the current
   lines of that window (the golden side stores only digests, so the
   diff shows where behaviour diverged and what it looks like now). *)
let check_against name lines =
  let want_total, want = find_golden name in
  let got_total, got = Support.digest_chunks lines in
  let arr = Array.of_list lines in
  let rec first_diff i = function
    | [], [] -> None
    | w :: ws, g :: gs -> if w <> g then Some i else first_diff (i + 1) (ws, gs)
    | _ -> Some i
  in
  (match first_diff 0 (want, got) with
   | None -> ()
   | Some i ->
     let lo = i * Golden.chunk_lines in
     let hi = min (Array.length arr) (lo + Golden.chunk_lines) in
     Printf.eprintf
       "%s: first divergence in trace lines %d..%d (chunk %d/%d)\n" name lo
       (hi - 1) i
       (List.length want);
     Printf.eprintf "current trace in that window:\n";
     for k = lo to hi - 1 do
       Printf.eprintf "  %5d| %s\n" k arr.(k)
     done;
     if hi <= lo then
       Printf.eprintf "  (current trace ends at line %d)\n"
         (Array.length arr);
     Alcotest.fail
       (Printf.sprintf "%s: trace diverges from golden at chunk %d" name i));
  Alcotest.(check int) (name ^ ": trace length") want_total got_total

let t_golden (name, nprocs, make) () =
  let lines, _, _ = Support.run_trace ~nprocs (make ()) in
  check_against name lines

(* The sublayer with zero fault probabilities must not move a single
   event: same messages, same delivery cycles, same trace bytes. *)
let t_golden_sublayer_identity (name, nprocs, make) () =
  let lines, _, _ =
    Support.run_trace ~nprocs
      ~net_faults:Shasta_network.Network.no_faults (make ())
  in
  check_against name lines

(* Sanity on the digesting itself: chunking is stable and sensitive. *)
let t_digest_props () =
  let lines = List.init 1000 (fun i -> Printf.sprintf "line %d" i) in
  let n, d = Support.digest_chunks lines in
  Alcotest.(check int) "total" 1000 n;
  let n', d' = Support.digest_chunks lines in
  Alcotest.(check (pair int (list string))) "deterministic" (n, d) (n', d');
  let tweaked =
    List.mapi (fun i l -> if i = 700 then l ^ "x" else l) lines
  in
  let _, dt = Support.digest_chunks tweaked in
  Alcotest.(check bool) "sensitive to a one-line change" false (d = dt);
  (* only the chunk containing the tweak moves *)
  let diffs =
    List.filteri (fun i _ -> List.nth d i <> List.nth dt i)
      (List.init (List.length d) Fun.id)
  in
  Alcotest.(check (list int)) "exactly one chunk differs"
    [ 700 / Support.chunk_lines ] diffs

let () =
  Alcotest.run "golden"
    [ ( "traces",
        List.map
          (fun ((name, _, _) as g) ->
            Alcotest.test_case name `Quick (t_golden g))
          Support.golden_runs );
      ( "sublayer-identity",
        List.map
          (fun ((name, _, _) as g) ->
            Alcotest.test_case (name ^ " under no_faults") `Quick
              (t_golden_sublayer_identity g))
          Support.golden_runs );
      ("digests", [ Alcotest.test_case "chunking" `Quick t_digest_props ])
    ]
