(* Nodeset laws: the directory organizations behind the protocol's node
   sets.  QCheck drives random add/remove programs against a reference
   [Set.Make(Int)] model and checks, per representation:

   - exact representations (full map; limited pointers before overflow)
     agree with the model exactly;
   - inexact representations (overflowed broadcast, coarse vector) are
     SUPERSETS of the model — the protocol only uses sharer sets to
     fan out invalidations, and a spurious invalidation is absorbed, so
     over-approximation is sound while under-approximation would lose a
     sharer;
   - the structural accessors (mem / cardinal / iter / to_list /
     is_empty) are mutually consistent and [iter] ascends.

   Directed tests pin the limited-pointer overflow step, coarse-vector
   region rounding, exact removal via exclusion lists, and the
   nprocs-vs-capacity validation (including the runtime config error
   message users actually see at P=64). *)

open QCheck2
module Ns = Shasta_protocol.Nodeset
module IntSet = Set.Make (Int)

let qtest name ?(count = 200) ~print gen prop =
  QCheck_alcotest.to_alcotest (Test.make ~name ~count ~print gen prop)

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  go 0

(* --- generators ------------------------------------------------------ *)

type op = Add of int | Remove of int

let show_mode = function
  | Ns.Full -> "full"
  | Ns.Limited k -> Printf.sprintf "limited:%d" k
  | Ns.Coarse g -> Printf.sprintf "coarse:%d" g

let show_op = function
  | Add n -> Printf.sprintf "add %d" n
  | Remove n -> Printf.sprintf "rem %d" n

let case_gen =
  let mode =
    Gen.oneof
      [ Gen.pure Ns.Full;
        Gen.map (fun k -> Ns.Limited k) (Gen.int_range 1 3);
        Gen.map (fun g -> Ns.Coarse g) (Gen.int_range 1 3) ]
  in
  let case =
    Gen.bind (Gen.pair mode (Gen.int_range 1 16)) (fun (mode, nprocs) ->
      let op =
        Gen.map2
          (fun add n -> if add then Add n else Remove n)
          Gen.bool
          (Gen.int_bound (nprocs - 1))
      in
      Gen.map
        (fun ops -> (mode, nprocs, ops))
        (Gen.list_size (Gen.int_range 0 24) op))
  in
  case

let print_case (mode, nprocs, ops) =
  Printf.sprintf "%s P=%d [%s]" (show_mode mode) nprocs
    (String.concat "; " (List.map show_op ops))

let apply_ops mode ~nprocs ops =
  List.fold_left
    (fun (s, m) op ->
      match op with
      | Add x -> (Ns.add s x, IntSet.add x m)
      | Remove x -> (Ns.remove s x, IntSet.remove x m))
    (Ns.empty mode ~nprocs, IntSet.empty)
    ops

(* --- the laws -------------------------------------------------------- *)

let prop_model_agreement (mode, nprocs, ops) =
  let s, model = apply_ops mode ~nprocs ops in
  let members = Ns.to_list s in
  (* never under-approximate: every model member is a member *)
  IntSet.for_all (fun x -> Ns.mem s x) model
  (* never invent out-of-range nodes *)
  && List.for_all (fun x -> x >= 0 && x < nprocs) members
  (* exact representations agree with the model exactly *)
  && ((not (Ns.is_exact s))
      || (IntSet.equal model (IntSet.of_list members)
          && Ns.cardinal s = IntSet.cardinal model))

let prop_accessors_consistent (mode, nprocs, ops) =
  let s, _ = apply_ops mode ~nprocs ops in
  let members = Ns.to_list s in
  let iterated = ref [] in
  Ns.iter (fun x -> iterated := x :: !iterated) s;
  let iterated = List.rev !iterated in
  iterated = members
  && List.sort_uniq compare members = members (* sorted, duplicate-free *)
  && Ns.cardinal s = List.length members
  && Ns.is_empty s = (members = [])
  && List.for_all (fun x -> Ns.mem s x) members
  && Ns.fold (fun _ acc -> acc + 1) s 0 = List.length members

(* removal is exact in EVERY representation (crash recovery strikes a
   dead node from every set, inexact or not) *)
let prop_remove_exact (mode, nprocs, ops) =
  let s, _ = apply_ops mode ~nprocs ops in
  List.for_all
    (fun x -> not (Ns.mem (Ns.remove s x) x))
    (List.init nprocs Fun.id)

(* an overflowed limited-pointer entry is a superset of what a full map
   would hold after the same program *)
let prop_overflow_superset (_, nprocs, ops) =
  let s, model = apply_ops (Ns.Limited 1) ~nprocs ops in
  IntSet.for_all (fun x -> Ns.mem s x) model

(* coarse-vector region soundness: a superset of the model whose every
   member lies in a region some add actually touched — coverage never
   leaks into regions nobody ever occupied (removing a node may leave
   its region-mates covered; that over-approximation is the point) *)
let prop_coarse_regions (_, nprocs, ops) =
  let g = 2 in
  let s, model = apply_ops (Ns.Coarse g) ~nprocs ops in
  let touched =
    List.filter_map (function Add x -> Some (x / g) | Remove _ -> None) ops
  in
  IntSet.for_all (fun x -> Ns.mem s x) model
  && List.for_all
       (fun x -> x < nprocs && List.mem (x / g) touched)
       (Ns.to_list s)

(* --- directed cases -------------------------------------------------- *)

let t_limited_overflow_step () =
  let nprocs = 6 in
  let s0 = Ns.empty (Ns.Limited 2) ~nprocs in
  let s1 = Ns.add (Ns.add s0 1) 4 in
  Alcotest.(check bool) "below k stays exact" true (Ns.is_exact s1);
  Alcotest.(check (list int)) "exact members" [ 1; 4 ] (Ns.to_list s1);
  let s2 = Ns.add s1 2 in
  Alcotest.(check bool) "k+1th member overflows" false (Ns.is_exact s2);
  Alcotest.(check (list int)) "broadcast covers everyone" [ 0; 1; 2; 3; 4; 5 ]
    (Ns.to_list s2);
  let s3 = Ns.remove s2 3 in
  Alcotest.(check bool) "exclusion removes exactly" false (Ns.mem s3 3);
  Alcotest.(check int) "cardinal tracks exclusions" 5 (Ns.cardinal s3);
  (* re-adding an excluded node cancels the exclusion *)
  Alcotest.(check bool) "re-add cancels exclusion" true
    (Ns.mem (Ns.add s3 3) 3)

let t_coarse_rounding () =
  let nprocs = 7 in
  let s = Ns.add (Ns.empty (Ns.Coarse 4) ~nprocs) 5 in
  Alcotest.(check bool) "member present" true (Ns.mem s 5);
  Alcotest.(check bool) "region-mate covered" true (Ns.mem s 4);
  Alcotest.(check bool) "other region clear" false (Ns.mem s 0);
  (* the last region is clipped to nprocs *)
  Alcotest.(check (list int)) "clipped region" [ 4; 5; 6 ] (Ns.to_list s);
  let s = Ns.remove s 6 in
  Alcotest.(check (list int)) "exclusion inside region" [ 4; 5 ]
    (Ns.to_list s)

let t_singleton_masks () =
  List.iter
    (fun mode ->
      let s = Ns.singleton mode ~nprocs:8 3 in
      Alcotest.(check bool)
        (show_mode mode ^ " singleton member") true (Ns.mem s 3))
    [ Ns.Full; Ns.Limited 1; Ns.Coarse 4 ];
  (* full-map singletons are the historical one-hot masks *)
  Alcotest.(check int) "one-hot" (1 lsl 3)
    (Ns.to_mask (Ns.singleton Ns.Full ~nprocs:8 3))

let t_capacity_validation () =
  (match Ns.validate Ns.Full ~nprocs:8 with
   | Ok () -> ()
   | Error e -> Alcotest.fail e);
  (match Ns.validate Ns.Full ~nprocs:64 with
   | Ok () -> Alcotest.fail "full map must reject 64 processors"
   | Error e ->
     Alcotest.(check bool) "error names the capacity" true
       (contains ~affix:"capacity" e));
  (match Ns.validate (Ns.Limited 4) ~nprocs:64 with
   | Ok () -> ()
   | Error e -> Alcotest.fail e);
  (match Ns.validate (Ns.Coarse 4) ~nprocs:64 with
   | Ok () -> ()
   | Error e -> Alcotest.fail e)

(* the error users actually hit: a 64-processor cluster under the
   default full-map directory must fail fast, with the fix in the
   message, and succeed under limited/coarse *)
let t_config_capacity_regression () =
  let module State = Shasta_runtime.State in
  (try
     ignore (State.default_config ~nprocs:64 ());
     Alcotest.fail "default_config accepted 64 procs on a full map"
   with Invalid_argument e ->
     Alcotest.(check bool) "message suggests --dir-mode" true
       (contains ~affix:"dir-mode" e));
  let c = State.default_config ~nprocs:64 ~dir_mode:(Ns.Limited 4) () in
  Alcotest.(check int) "limited accepts 64" 64 c.State.nprocs;
  let c = State.default_config ~nprocs:64 ~dir_mode:(Ns.Coarse 4) () in
  Alcotest.(check int) "coarse accepts 64" 64 c.State.nprocs

let t_mode_of_string () =
  let ok s m =
    match Ns.mode_of_string s with
    | Ok m' -> Alcotest.(check string) s (show_mode m) (show_mode m')
    | Error e -> Alcotest.fail e
  in
  ok "full" Ns.Full;
  ok "limited" (Ns.Limited 4);
  ok "limited:2" (Ns.Limited 2);
  ok "coarse" (Ns.Coarse 4);
  ok "coarse:8" (Ns.Coarse 8);
  match Ns.mode_of_string "sparse" with
  | Ok _ -> Alcotest.fail "junk mode accepted"
  | Error _ -> ()

let () =
  Alcotest.run "nodeset"
    [ ( "laws",
        [ qtest "model agreement (exact = equal, inexact = superset)"
            ~print:print_case case_gen prop_model_agreement;
          qtest "accessors mutually consistent, iter ascends"
            ~print:print_case case_gen prop_accessors_consistent;
          qtest "remove is exact in every representation" ~print:print_case
            case_gen prop_remove_exact;
          qtest "limited-pointer overflow is a superset" ~print:print_case
            case_gen prop_overflow_superset;
          qtest "coarse-vector regions are sound" ~print:print_case case_gen
            prop_coarse_regions ] );
      ( "directed",
        [ Alcotest.test_case "limited overflow step" `Quick
            t_limited_overflow_step;
          Alcotest.test_case "coarse region rounding" `Quick
            t_coarse_rounding;
          Alcotest.test_case "singletons" `Quick t_singleton_masks;
          Alcotest.test_case "capacity validation" `Quick
            t_capacity_validation;
          Alcotest.test_case "P=64 config error is actionable" `Quick
            t_config_capacity_regression;
          Alcotest.test_case "mode parsing" `Quick t_mode_of_string ] ) ]
