(* Node crash/recovery fault-tolerance suite.

   Four layers, bottom up:

   - QCheck properties of the pure lease arithmetic ([Network.Lease]):
     a lease never expires before its grant horizon, heartbeat renewal
     is exactly-once per sequence number and monotone, takeover to the
     current holder is the identity and epoch bumps fence stale
     holders.

   - [Nodefaults] spec parsing: round trips, wildcard victim
     resolution (seeded, deterministic, never node 0), malformed specs
     rejected.

   - Zero-schedule identity: a --node-faults spec with no events must
     leave the canonical event trace byte-identical to a run without
     the layer at all (the golden suite pins the absent case; this
     pins Some-but-empty against it).

   - Live crash runs: a lock held by a crashed node is reclaimed by
     lease takeover so waiters progress; the P=4 KV service survives a
     node crash mid-run (directory reconstruction, salvaged data, the
     crash-aware final sweep) with its data outcome matching the
     [Sht.shadow ~dead] oracle; crash followed by recovery rejoins the
     node to protocol duty; recorded crash inputs replay exactly
     through the pure core; runs are deterministic. *)

module Support = Test_support.Support
module Network = Shasta_network.Network
module Lease = Shasta_network.Network.Lease
module Report = Shasta_workload.Report
module Obs = Shasta_obs.Obs
open Shasta_runtime
open Shasta_apps

(* ------------------------------------------------------------------ *)
(* Lease arithmetic properties                                         *)
(* ------------------------------------------------------------------ *)

let gen_lease =
  QCheck2.Gen.(
    quad (int_range 0 7) (int_range 0 1_000_000) (int_range 1 100_000)
      (small_list (pair small_nat (int_range 0 2_000_000))))

let t_lease_horizon =
  Support.qtest "lease never expires before grant horizon" gen_lease
    (fun (h, now, hz, hbs) ->
      let l = Lease.grant ~holder:h ~now ~horizon:hz in
      Lease.expiry l >= now + hz
      && (not (Lease.expired l ~now))
      && List.for_all
           (fun (seq, at) ->
             let l', _ = Lease.heartbeat l ~seq ~now:at in
             Lease.expiry l' >= Lease.expiry l)
           hbs)

let t_lease_heartbeat =
  Support.qtest "heartbeat renewal is exactly-once per seq" gen_lease
    (fun (h, now, hz, hbs) ->
      let l = ref (Lease.grant ~holder:h ~now ~horizon:hz) in
      List.for_all
        (fun (seq, at) ->
          let l1, fresh1 = Lease.heartbeat !l ~seq ~now:at in
          (* redelivery of the same sequence number is a no-op *)
          let l2, fresh2 = Lease.heartbeat l1 ~seq ~now:(at + 17) in
          let ok =
            (not fresh2) && l2 = l1
            && Lease.expiry l1 >= Lease.expiry !l
            && (fresh1 || l1 = !l)
          in
          l := l1;
          ok)
        hbs)

let t_lease_takeover =
  Support.qtest "takeover idempotent, epoch fences stale holders"
    gen_lease
    (fun (h, now, hz, _) ->
      let l = Lease.grant ~holder:h ~now ~horizon:hz in
      let w = h + 1 in
      let t1 = Lease.takeover l ~new_holder:w ~now:(now + hz) in
      let t2 = Lease.takeover t1 ~new_holder:w ~now:(now + hz + 999) in
      Lease.takeover l ~new_holder:h ~now = l (* to current holder: id *)
      && Lease.holder t1 = w
      && Lease.epoch t1 = Lease.epoch l + 1
      && t2 = t1 (* racing takeovers by the same claimant converge *)
      && Lease.expiry t1 >= now + hz)

(* ------------------------------------------------------------------ *)
(* Schedule parsing                                                    *)
(* ------------------------------------------------------------------ *)

let t_spec_parse () =
  Alcotest.(check bool) "none is None" true (Nodefaults.of_string "none" = None);
  Alcotest.(check bool) "empty is None" true (Nodefaults.of_string "" = None);
  let s = Option.get (Nodefaults.of_string "crash=2@5000,recover=2@90000,lease=1234") in
  Alcotest.(check int) "lease" 1234 s.Nodefaults.lease;
  Alcotest.(check int) "events" 2 (List.length s.Nodefaults.events);
  (match s.Nodefaults.events with
   | [ a; b ] ->
     Alcotest.(check bool) "sorted by cycle" true
       (a.Nodefaults.at = 5000 && a.node = 2 && a.what = Nodefaults.Crash
        && b.at = 90000 && b.what = Nodefaults.Recover)
   | _ -> Alcotest.fail "expected two events");
  let s = Option.get (Nodefaults.of_string "crash=*@100,seed=7") in
  let r1 = Nodefaults.resolve s ~nprocs:4 in
  let r2 = Nodefaults.resolve s ~nprocs:4 in
  Alcotest.(check bool) "wildcard resolution deterministic" true (r1 = r2);
  (match r1.Nodefaults.events with
   | [ e ] ->
     Alcotest.(check bool) "victim in range, never node 0" true
       (e.Nodefaults.node >= 1 && e.node < 4)
   | _ -> Alcotest.fail "expected one event");
  List.iter
    (fun bad ->
      Alcotest.check_raises ("rejects " ^ bad)
        (Invalid_argument
           (match bad with
            | "crash=3" -> "node-faults: expected NODE@CYCLE, got \"3\""
            | "lease=0" -> "node-faults: lease must be positive"
            | _ -> "node-faults: unknown key \"frob\""))
        (fun () -> ignore (Nodefaults.of_string bad)))
    [ "crash=3"; "lease=0"; "frob=1" ]

(* ------------------------------------------------------------------ *)
(* Zero-schedule identity                                              *)
(* ------------------------------------------------------------------ *)

let t_zero_schedule_identity () =
  let _, nprocs, make = List.hd Support.golden_runs in
  let base, out0, _ = Support.run_trace ~nprocs (make ()) in
  let spec = Option.get (Nodefaults.of_string "lease=777") in
  Alcotest.(check bool) "event-free spec is off" true (Nodefaults.is_off spec);
  let got, out1, _ =
    Support.run_trace ~nprocs ~node_faults:spec (make ())
  in
  Alcotest.(check string) "output identical" out0 out1;
  Alcotest.(check int) "trace length identical" (List.length base)
    (List.length got);
  List.iteri
    (fun k (a, b) ->
      if a <> b then
        Alcotest.failf "trace diverges at line %d:\n  -%s\n  +%s" k a b)
    (List.combine base got)

(* ------------------------------------------------------------------ *)
(* Lock-lease takeover: a crashed holder's lock is reclaimed           *)
(* ------------------------------------------------------------------ *)

let locked_prog () =
  let open Shasta_minic.Builder in
  let open Shasta_minic.Ast in
  prog
    ~globals:[ ("cnt", I) ]
    [ proc "appinit" [ gset "cnt" (Gmalloc (i 8)); sti (g "cnt") (i 0) (i 0) ];
      proc "work"
        [ if_ (Pid ==% i 1)
            [ (* acquire, then die holding the lock (the injector fires
                 mid-spin); the unlock below never runs *)
              lock (i 5);
              let_i "x" (i 0);
              for_ "t" (i 0) (i 300_000) [ set "x" (v "x" +% i 1) ];
              sti (g "cnt") (i 0) (ldi (g "cnt") (i 0) +% v "x");
              unlock (i 5)
            ]
            [ lock (i 5);
              sti (g "cnt") (i 0) (ldi (g "cnt") (i 0) +% i 1);
              unlock (i 5)
            ];
          barrier;
          when_ (Pid ==% i 0) [ print_int (ldi (g "cnt") (i 0)) ]
        ]
    ]

let t_lock_takeover () =
  let obs = Obs.create ~nprocs:4 () in
  let spec = Option.get (Nodefaults.of_string "crash=1@60000,lease=5000") in
  let out, r = Support.run ~nprocs:4 ~node_faults:spec ~obs (locked_prog ()) in
  (* nodes 0, 2, 3 each bump the counter; the victim never does *)
  Alcotest.(check string) "survivors' critical sections all ran" "3\n" out;
  let m = Obs.metrics obs in
  let total c = Obs.Metrics.counter_total m c in
  Alcotest.(check int) "one crash" 1 (total Obs.c_node_crash);
  Alcotest.(check bool) "lock lease taken over" true
    (total Obs.c_lease_takeover >= 1);
  Alcotest.(check bool) "victim halted in the pure view" true
    (Shasta_protocol.Transitions.halted_mask r.Api.state.State.proto = 0b10)

(* ------------------------------------------------------------------ *)
(* KV service under a node crash                                       *)
(* ------------------------------------------------------------------ *)

let kv_prog () = Sht.program ~cfg:Apps.sht_test_cfg ~wl:Apps.sht_test_wl ()

let nprocs = 4
let keys_per_node = Apps.sht_test_wl.Shasta_workload.Workload.nkeys / nprocs

(* Crash cycle: mid parallel phase of the fault-free run, derived once
   so the schedule stays meaningful if the workload's length drifts. *)
let mid_run =
  lazy
    (let _, r = Support.run ~nprocs (kv_prog ()) in
     r.Api.phase.Cluster.wall_cycles / 2)

let check_kv_outcome ~dead ~label (r : Report.t) =
  let s = Sht.shadow ~dead ~wl:Apps.sht_test_wl ~nprocs () in
  Alcotest.(check int)
    (label ^ ": no consistency violations") 0
    (r.Report.errors + r.Report.verify_errors);
  Alcotest.(check int)
    (label ^ ": lost keys = crashed shards")
    (keys_per_node * List.length dead)
    r.Report.lost;
  Alcotest.(check int)
    (label ^ ": population matches oracle") s.Sht.s_population
    r.Report.population;
  Alcotest.(check bool)
    (label ^ ": checksum matches oracle") true
    (r.Report.checksum = s.Sht.s_checksum)

let t_kv_crash () =
  let obs = Obs.create ~nprocs () in
  let spec =
    Option.get
      (Nodefaults.of_string
         (Printf.sprintf "crash=2@%d,lease=3000" (Lazy.force mid_run)))
  in
  let out, r = Support.run ~nprocs ~node_faults:spec ~obs (kv_prog ()) in
  check_kv_outcome ~dead:[ 2 ] ~label:"crash" (Report.parse out);
  let m = Obs.metrics obs in
  let total c = Obs.Metrics.counter_total m c in
  Alcotest.(check int) "one crash" 1 (total Obs.c_node_crash);
  Alcotest.(check int) "no recovery" 0 (total Obs.c_node_recover);
  Alcotest.(check bool) "directory entries rebuilt" true
    (total Obs.c_dir_rebuild > 0);
  Alcotest.(check bool) "protocol invariants hold post-crash" true
    (Shasta_protocol.Transitions.invariants r.Api.state.State.tcfg
       r.Api.state.State.proto
     = [])

let t_kv_crash_recover () =
  let obs = Obs.create ~nprocs () in
  let mid = Lazy.force mid_run in
  let spec =
    Option.get
      (Nodefaults.of_string
         (Printf.sprintf "crash=2@%d,recover=2@%d,lease=3000" mid (mid * 3 / 2)))
  in
  let out, r = Support.run ~nprocs ~node_faults:spec ~obs (kv_prog ()) in
  check_kv_outcome ~dead:[ 2 ] ~label:"crash+recover" (Report.parse out);
  let m = Obs.metrics obs in
  let total c = Obs.Metrics.counter_total m c in
  Alcotest.(check int) "one crash" 1 (total Obs.c_node_crash);
  Alcotest.(check int) "one recovery" 1 (total Obs.c_node_recover);
  let v = r.Api.state.State.proto in
  Alcotest.(check int) "no node currently crashed" 0
    (Shasta_protocol.Transitions.crashed_mask v);
  Alcotest.(check int) "victim's halt is permanent" 0b100
    (Shasta_protocol.Transitions.halted_mask v)

(* A wildcard victim at a different seed, for coverage of the seeded
   pick through the whole stack. *)
let t_kv_crash_wildcard () =
  let spec =
    Option.get
      (Nodefaults.of_string
         (Printf.sprintf "crash=*@%d,seed=11,lease=3000" (Lazy.force mid_run)))
  in
  let resolved = Nodefaults.resolve spec ~nprocs in
  let victim =
    match resolved.Nodefaults.events with
    | [ e ] -> e.Nodefaults.node
    | _ -> Alcotest.fail "expected one event"
  in
  let out, _ = Support.run ~nprocs ~node_faults:spec (kv_prog ()) in
  check_kv_outcome ~dead:[ victim ] ~label:"wildcard" (Report.parse out)

(* Crash runs replay exactly through the pure core: the recorded input
   log (which includes I_node_crash with the purged frames) must land
   on the live run's final view. *)
let t_crash_replay () =
  let spec =
    Option.get
      (Nodefaults.of_string
         (Printf.sprintf "crash=2@%d,lease=3000" (Lazy.force mid_run)))
  in
  let api_spec =
    { (Api.default_spec (kv_prog ())) with
      nprocs; node_faults = Some spec }
  in
  let state, _, _ = Api.prepare api_spec in
  state.State.record_inputs <- true;
  let _ = Cluster.run_app state in
  let res = Replay.replay state in
  Alcotest.(check bool) "crash run replays through the pure core" true
    (Replay.ok res);
  Alcotest.(check bool) "crash input recorded" true
    (List.exists
       (fun (_, i) ->
         match i with
         | Shasta_protocol.Transitions.I_node_crash _ -> true
         | _ -> false)
       state.State.inputs_rev)

let t_crash_deterministic () =
  let spec =
    Option.get
      (Nodefaults.of_string
         (Printf.sprintf "crash=2@%d,lease=3000" (Lazy.force mid_run)))
  in
  let go () =
    let out, r = Support.run ~nprocs ~node_faults:spec (kv_prog ()) in
    (out, r.Api.phase.Cluster.wall_cycles)
  in
  let o1, w1 = go () in
  let o2, w2 = go () in
  Alcotest.(check string) "same output" o1 o2;
  Alcotest.(check int) "same wall cycles" w1 w2

(* --- scaling scenarios under the crash adversary (PR-9 gap) --------- *)

(* The scale family (limited-pointer overflow, coarse regions, queue
   lock, combining-tree barrier) was never model-checked against
   crash/recover: directory reconstruction must re-derive inexact
   sharer supersets, a queue lock's chain must survive a dead link,
   and the combining tree's release wave must be re-driven into a dead
   subtree. *)
module Mcheck = Shasta_mcheck.Mcheck

let t_scale_crash_recover_exhaustive () =
  List.iter
    (fun (sc : Mcheck.scenario) ->
      List.iter
        (fun recover ->
          let r = Mcheck.check_exhaustive ~crash:1 ?recover sc in
          Alcotest.(check bool)
            (Printf.sprintf "%s crash%s explored fully" sc.Mcheck.sname
               (if recover = None then "" else "+recover"))
            false r.Mcheck.truncated;
          Alcotest.(check bool)
            (Printf.sprintf "%s reaches terminals" sc.Mcheck.sname)
            true (r.Mcheck.terminals > 0);
          match r.Mcheck.violation with
          | None -> ()
          | Some v ->
            Mcheck.pp_violation stderr v;
            Alcotest.fail (sc.Mcheck.sname ^ ": scale crash violation"))
        [ None; Some 1 ])
    (Mcheck.scale_scenarios ~nprocs:2)

let t_scale_crash_fuzz () =
  List.iter
    (fun (sc : Mcheck.scenario) ->
      let _, v = Mcheck.fuzz ~crash:1 ~recover:1 ~seed:23 ~runs:150 sc in
      match v with
      | None -> ()
      | Some v ->
        Mcheck.pp_violation stderr v;
        Alcotest.fail (sc.Mcheck.sname ^ ": scale crash fuzz violation"))
    (Mcheck.scale_scenarios ~nprocs:3)

(* Regression for the double-crash salvage bug the re-derived fuzz
   seed stream surfaced: a Data_reply re-served on a victim's behalf
   used to be regenerated from the victim's frozen image — but when
   the victim was itself a coordinator that had salvaged those bytes
   for an EARLIER crash, it re-flagged its staging buffer after
   sending, so the second salvage served the flag marker as data.
   Pinned as the directed interleaving the adversary found. *)
let t_double_crash_salvage_chain () =
  let sc = Mcheck.lock_increment ~nprocs:3 in
  let cfg = Mcheck.cfg_of sc in
  let sys = ref (Mcheck.init_sys ~crash:2 sc) in
  let play label =
    match
      List.assoc_opt label (Mcheck.moves cfg ~inj:Mcheck.No_injection !sys)
    with
    | Some next -> sys := next ()
    | None ->
      Alcotest.failf "move %S not enabled; enabled: %s" label
        (String.concat "; "
           (List.map fst (Mcheck.moves cfg ~inj:Mcheck.No_injection !sys)))
  in
  play "n2: lock 0";
  play "deliver 2->0: [2] lock_req @0x0";
  play "deliver 0->2: [0] lock_grant @0x0";
  play "n2: read 0x0";
  play "deliver 2->0: [2] read_req @0x0";
  play "n0: lock 0";
  play "crash n0";
  play "crash n1";
  (* drain: n2 must complete its read against real salvaged data *)
  let rec drain k =
    if k > 100 then Alcotest.fail "n2 never finished its critical section"
    else
      match Mcheck.moves cfg ~inj:Mcheck.No_injection !sys with
      | [] -> ()
      | (_, next) :: _ ->
        sys := next ();
        drain (k + 1)
  in
  drain 0;
  Alcotest.(check (list string)) "terminal quiescent" []
    (Shasta_protocol.Transitions.quiescent_invariants cfg (Mcheck.view !sys));
  (* the salvaged reply must have carried the datum (0), not the flag
     marker: n2's read register saw it, and its increment lands 0+1 *)
  Alcotest.(check int) "n2 read data, not the flag marker" 0
    (Mcheck.reg !sys ~node:2);
  Alcotest.(check (option int)) "n2's increment commits on top" (Some 1)
    (Mcheck.value !sys ~node:2 ~block:0)

let () =
  Alcotest.run "crash"
    [ ( "lease",
        [ t_lease_horizon; t_lease_heartbeat; t_lease_takeover ] );
      ( "schedule",
        [ Alcotest.test_case "spec parsing" `Quick t_spec_parse;
          Alcotest.test_case "zero schedule is byte-identical" `Quick
            t_zero_schedule_identity
        ] );
      ( "takeover",
        [ Alcotest.test_case "lock reclaimed from crashed holder" `Quick
            t_lock_takeover
        ] );
      ( "kv",
        [ Alcotest.test_case "crash mid-run" `Quick t_kv_crash;
          Alcotest.test_case "crash then recover" `Quick t_kv_crash_recover;
          Alcotest.test_case "wildcard victim" `Quick t_kv_crash_wildcard;
          Alcotest.test_case "replay through pure core" `Quick t_crash_replay;
          Alcotest.test_case "deterministic" `Quick t_crash_deterministic
        ] );
      ( "scale",
        [ Alcotest.test_case "scale scenarios clean under crash/recover"
            `Quick t_scale_crash_recover_exhaustive;
          Alcotest.test_case "scale scenarios clean at P=3 (crash fuzz)"
            `Quick t_scale_crash_fuzz;
          Alcotest.test_case "double-crash salvage chain regression" `Quick
            t_double_crash_salvage_chain
        ] )
    ]
