(* Site-level profiler: attribution totals against the metrics
   registry, transaction-span accounting against the raw event stream
   and Network.stats, latency lower bounds from the interconnect cost
   model, and collapsed-stack round-trips. *)

open Shasta_runtime
module Obs = Shasta_obs.Obs
module Event = Shasta_obs.Event
module Metrics = Shasta_obs.Metrics
module Sink = Shasta_obs.Sink
module Profile = Shasta_obs.Obs.Profile

(* Run [migratory] with a profiler and a ring sink on the same stream;
   hand back everything a property could want to cross-check. *)
let profiled_run ?(nprocs = 3) ?(rounds = 16) () =
  let obs = Obs.create ~nprocs () in
  let ring = Sink.ring ~capacity:(1 lsl 17) in
  Obs.attach obs (Sink.ring_sink ring);
  let prof = Profile.create ~nprocs () in
  Obs.attach_profiler obs prof;
  let _, r =
    Test_support.Support.run ~nprocs ~obs
      (Shasta_apps.Micro.migratory ~rounds ())
  in
  assert (Sink.ring_dropped ring = 0);
  (obs, prof, Sink.ring_contents ring, r)

(* --- site attribution ----------------------------------------------- *)

(* The profiler's per-site counters and the registry aggregate the same
   emit stream, so their totals must agree exactly — this is the
   acceptance check ISSUE.md states for --profile runs. *)
let test_site_totals () =
  let obs, prof, records, _ = profiled_run () in
  let reg = Obs.metrics obs in
  let tot = Profile.totals prof in
  Alcotest.(check int) "read misses"
    (Metrics.counter_total reg Obs.c_miss_read) tot.Profile.t_read;
  Alcotest.(check int) "write misses"
    (Metrics.counter_total reg Obs.c_miss_write) tot.Profile.t_write;
  Alcotest.(check int) "upgrade misses"
    (Metrics.counter_total reg Obs.c_miss_upgrade) tot.Profile.t_upgrade;
  Alcotest.(check int) "false misses"
    (Metrics.counter_total reg Obs.c_miss_false) tot.Profile.t_false;
  Alcotest.(check bool) "profiler saw work" true
    (tot.Profile.t_read + tot.Profile.t_write + tot.Profile.t_upgrade > 0);
  (* the sites list is the same data, sorted *)
  let by_sites =
    List.fold_left
      (fun a (_, (s : Profile.site_stats)) -> a + Profile.site_misses s)
      0 (Profile.sites prof)
  in
  Alcotest.(check int) "sites list sums to totals"
    (tot.Profile.t_read + tot.Profile.t_write + tot.Profile.t_upgrade)
    by_sites;
  (* every miss/stall record on the wire carried a code site *)
  Alcotest.(check bool) "miss records carry sites" true
    (List.for_all
       (fun (rec_ : Event.record) ->
         match rec_.ev with
         | Event.Miss _ | Event.False_miss _ | Event.Stall _ ->
           rec_.site <> None
         | _ -> true)
       records)

(* --- transaction spans ---------------------------------------------- *)

let is_request = function
  | "read_req" | "readex_req" | "upgrade_req" | "lock_req" | "flag_wait"
  | "barrier_arrive" ->
    true
  | _ -> false

(* Every request-kind send opens exactly one pending transaction; a
   matching reply converts it into a span, flush flags the rest.  So
   matched + unmatched = requests observed on the raw stream, and the
   per-kind histograms hold exactly the matched population. *)
let test_span_accounting () =
  let _, prof, records, r = profiled_run () in
  let reqs =
    List.fold_left
      (fun a (rec_ : Event.record) ->
        match rec_.ev with
        | Event.Msg_send { kind; _ } when is_request kind -> a + 1
        | _ -> a)
      0 records
  in
  let matched = Profile.span_count prof in
  let unmatched = List.length (Profile.unmatched prof) in
  Alcotest.(check int) "matched + unmatched = request sends" reqs
    (matched + unmatched);
  Alcotest.(check int) "quiescent run leaves nothing open" 0 unmatched;
  Alcotest.(check int) "spans list agrees with count" matched
    (List.length (Profile.spans prof));
  (* request messages are a subset of the network's own send count *)
  let net_sent, _ = Shasta_network.Network.stats r.Api.state.State.net in
  Alcotest.(check bool) "requests bounded by Network.stats" true
    (reqs <= net_sent && reqs > 0);
  (* per-kind latency histograms: population and mass equal the spans *)
  let by_kind = Hashtbl.create 8 in
  List.iter
    (fun (sp : Profile.span) ->
      let n, sum =
        Option.value ~default:(0, 0) (Hashtbl.find_opt by_kind sp.sp_kind)
      in
      Hashtbl.replace by_kind sp.sp_kind (n + 1, sum + sp.sp_dur))
    (Profile.spans prof);
  let m = Profile.span_metrics prof in
  Hashtbl.iter
    (fun kind (n, sum) ->
      let h = Metrics.hist_total m ("span." ^ kind) in
      Alcotest.(check int) (kind ^ " histogram n") n h.Metrics.n;
      Alcotest.(check int) (kind ^ " histogram sum") sum h.Metrics.sum)
    by_kind

(* No reply can outrun the interconnect: every span covers at least one
   network hop, so its latency is bounded below by the wire latency of
   the profile the run used (memory_channel). *)
let test_span_latency_floor () =
  let _, prof, _, _ = profiled_run () in
  let floor = Shasta_network.Network.memory_channel.wire_latency in
  Alcotest.(check bool) "have spans" true (Profile.span_count prof > 0);
  List.iter
    (fun (sp : Profile.span) ->
      if sp.sp_dur < floor then
        Alcotest.failf "span %s @0x%x: %d cycles < wire latency %d"
          sp.sp_kind sp.sp_addr sp.sp_dur floor)
    (Profile.spans prof)

let test_drain_spans_once () =
  let _, prof, _, _ = profiled_run () in
  let n = Profile.span_count prof in
  Alcotest.(check int) "first drain yields every span" n
    (List.length (Profile.drain_spans prof));
  Alcotest.(check int) "second drain yields nothing" 0
    (List.length (Profile.drain_spans prof))

(* --- collapsed stacks ------------------------------------------------ *)

let params_gen = QCheck2.Gen.(pair (int_range 2 4) (int_range 4 24))

(* Rendering to collapsed-stack text and parsing it back loses nothing:
   the counts sum to the profiler's check-fired total, and the text is
   a fixed point (parse . render = id on the pair list). *)
let prop_collapsed_roundtrip (nprocs, rounds) =
  let _, prof, _, r = profiled_run ~nprocs ~rounds () in
  let image = r.Api.state.State.image in
  let text =
    Profile.collapsed prof
      ~name_proc:(Image.proc_name image)
      ~name_site:(Image.site_name image)
  in
  let parsed = Profile.parse_collapsed text in
  let tot = Profile.totals prof in
  let fired =
    tot.Profile.t_read + tot.Profile.t_write + tot.Profile.t_upgrade
    + tot.Profile.t_false
  in
  let sum = List.fold_left (fun a (_, c) -> a + c) 0 parsed in
  let rerendered =
    String.concat "\n"
      (List.map (fun (s, c) -> Printf.sprintf "%s %d" s c) parsed)
  in
  sum = fired
  && List.for_all (fun (s, c) -> c > 0 && s <> "") parsed
  && Profile.parse_collapsed rerendered = parsed

let () =
  Alcotest.run "profile"
    [ ( "attribution",
        [ Alcotest.test_case "site totals equal registry counters" `Quick
            test_site_totals ] );
      ( "spans",
        [ Alcotest.test_case "span accounting vs stream" `Quick
            test_span_accounting;
          Alcotest.test_case "latency >= wire latency" `Quick
            test_span_latency_floor;
          Alcotest.test_case "drain_spans is one-shot" `Quick
            test_drain_spans_once ] );
      ( "flamegraph",
        [ Test_support.Support.qtest "collapsed-stack round-trip" ~count:15
            params_gen prop_collapsed_roundtrip ] ) ]
