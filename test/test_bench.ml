(* BENCH_*.json schema and regression gate: emit/parse round-trips
   (property-based), the gate's exact-vs-tolerance policy, and the KV
   report writer staying on the shared schema. *)

module B = Shasta_obs.Benchjson
module Report = Shasta_workload.Report

let testable_t =
  Alcotest.testable (fun fmt (r : B.t) -> Format.pp_print_string fmt (B.emit r)) ( = )

let contains_sub ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i <= n - m && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* --- generators ------------------------------------------------------ *)

open QCheck2

(* JSON-safe strings exercising the escaper: printable ASCII plus the
   characters that need escaping. *)
let gen_str =
  let gen_char =
    Gen.frequency
      [ (20, Gen.char_range 'a' 'z');
        (5, Gen.char_range '0' '9');
        (1, Gen.return '"');
        (1, Gen.return '\\');
        (1, Gen.return '\n');
        (1, Gen.return '\x07') ]
  in
  Gen.string_size ~gen:gen_char (Gen.int_range 0 12)

(* Finite floats only: JSON has no nan/infinity. *)
let gen_float =
  Gen.oneof
    [ Gen.map (fun i -> float_of_int i) (Gen.int_range (-1000) 1000);
      Gen.map (fun i -> float_of_int i /. 997.0) (Gen.int_range (-1_000_000) 1_000_000);
      Gen.map (fun i -> float_of_int i *. 1.7e9) (Gen.int_range 0 1_000_000) ]

let gen_num =
  Gen.oneof
    [ Gen.map (fun i -> B.Int i) (Gen.int_range (-1_000_000) 1_000_000);
      Gen.map (fun f -> B.Float f) gen_float ]

(* Extra keys must be distinct and must not collide with the fixed
   field names, so tag them. *)
let gen_extra =
  let open Gen in
  int_range 0 6 >>= fun n ->
  flatten_l
    (List.init n (fun i ->
         map (fun v -> (Printf.sprintf "x%d" i, v)) gen_num))

let gen_record =
  let open Gen in
  gen_str >>= fun workload ->
  int_range 1 16 >>= fun nprocs ->
  oneofl [ 32; 64; 128 ] >>= fun line ->
  gen_str >>= fun opts ->
  int_range 0 1_000_000_000 >>= fun sim_cycles ->
  int_range 0 1_000_000 >>= fun messages ->
  int_range 0 1_000_000 >>= fun misses ->
  gen_float >>= fun wall_s ->
  gen_float >>= fun cyc_per_s ->
  gen_float >>= fun minor_words ->
  gen_float >>= fun major_words ->
  int_range 0 10_000 >>= fun minor_collections ->
  int_range 0 1_000 >>= fun major_collections ->
  gen_str >>= fun git_rev ->
  gen_extra >>= fun extra ->
  return
    (B.make ~workload ~nprocs ~line ~opts ~sim_cycles ~messages ~misses
       ~wall_s ~cyc_per_s
       ~gc:{ B.minor_words; major_words; minor_collections; major_collections }
       ~git_rev ~extra ())

(* --- round-trip ------------------------------------------------------ *)

let prop_roundtrip r = B.parse (B.emit r) = r

(* Two emissions of the same record are byte-identical — determinism of
   the wire format itself, which the CI byte-comparison leans on. *)
let prop_emit_stable r = B.emit r = B.emit (B.parse (B.emit r))

let prop_load_string rs =
  let s = String.concat "\n" (List.map B.emit rs) ^ "\n" in
  B.load_string s = rs

(* --- gate policy ----------------------------------------------------- *)

let base_record ?(workload = "lu") ?(sim_cycles = 1_000_000)
    ?(wall_s = 2.0) ?(cyc_per_s = 500_000.0) ?(extra = []) () =
  B.make ~workload ~nprocs:4 ~line:64 ~opts:"full" ~sim_cycles
    ~messages:500 ~misses:120 ~wall_s ~cyc_per_s
    ~gc:{ B.minor_words = 1e6; major_words = 1e4;
          minor_collections = 10; major_collections = 2 }
    ~git_rev:"abc1234" ~extra ()

let gate_ok ?tol ?sim_only baseline candidate =
  snd (B.gate ?tol ?sim_only ~baseline ~candidate ())

let test_gate_identical () =
  let b = [ base_record (); base_record ~workload:"fft" () ] in
  Alcotest.(check bool) "identical files pass" true (gate_ok b b)

let test_gate_sim_regression () =
  let b = [ base_record () ] in
  let c = [ base_record ~sim_cycles:1_000_001 () ] in
  Alcotest.(check bool) "+1 cycle fails" false (gate_ok b c);
  (* ...even when every host metric is fine and even improved *)
  let c' = [ base_record ~sim_cycles:999_999 ~wall_s:1.0 () ] in
  Alcotest.(check bool) "-1 cycle fails too (exact, not <=)" false
    (gate_ok b c')

let test_gate_extra_exact () =
  let b = [ base_record ~extra:[ ("errors", B.Int 0) ] () ] in
  let c = [ base_record ~extra:[ ("errors", B.Int 1) ] () ] in
  Alcotest.(check bool) "extra metrics gate exactly" false (gate_ok b c)

let test_gate_wall_blowup () =
  let b = [ base_record ~wall_s:2.0 () ] in
  let ok_c = [ base_record ~wall_s:2.4 () ] in
  let bad_c = [ base_record ~wall_s:3.0 () ] in
  Alcotest.(check bool) "+20% wall time within default tolerance" true
    (gate_ok b ok_c);
  Alcotest.(check bool) "+50% wall time regresses" false (gate_ok b bad_c);
  Alcotest.(check bool) "+50% passes with a looser --tol" true
    (gate_ok ~tol:0.6 b bad_c);
  Alcotest.(check bool) "+50% passes under --sim-only" true
    (gate_ok ~sim_only:true b bad_c)

let test_gate_host_direction () =
  (* cyc_per_s is higher-is-better: a drop regresses, a rise never does *)
  let b = [ base_record ~cyc_per_s:1_000_000.0 () ] in
  Alcotest.(check bool) "throughput drop regresses" false
    (gate_ok b [ base_record ~cyc_per_s:500_000.0 () ]);
  Alcotest.(check bool) "throughput rise passes" true
    (gate_ok b [ base_record ~cyc_per_s:5_000_000.0 () ]);
  (* wall_s is lower-is-better: getting faster never regresses *)
  Alcotest.(check bool) "wall time drop passes" true
    (gate_ok b [ base_record ~cyc_per_s:1_000_000.0 ~wall_s:0.1 () ])

let test_gate_stripped_baseline () =
  (* a host-stripped (checked-in) baseline never gates host metrics *)
  let b = [ B.strip_host (base_record ()) ] in
  let c = [ base_record ~wall_s:100.0 () ] in
  Alcotest.(check bool) "host skipped when baseline unmeasured" true
    (gate_ok b c)

let test_gate_missing_and_new () =
  let b = [ base_record (); base_record ~workload:"fft" () ] in
  let only_lu = [ base_record () ] in
  Alcotest.(check bool) "baseline record missing from candidate fails"
    false (gate_ok b only_lu);
  let with_new = b @ [ base_record ~workload:"barnes" () ] in
  Alcotest.(check bool) "candidate-only record is fine" true
    (gate_ok b with_new)

(* --- KV report on the shared schema ---------------------------------- *)

let kv_report : Report.t =
  { nprocs = 2; nkeys = 256; ops = 1000; load_ops = 256; gets = 900;
    puts = 100; dels = 0; scans = 0; errors = 0; lat_sum = 50_000;
    lat_max = 900;
    hist = Array.make Shasta_workload.Workload.nb_lat 0;
    per_node = [| (500, 100, 90_100); (500, 120, 90_500) |];
    overflows = 0; migrations = 3; verify_errors = 0; population = 256;
    checksum = 0xbeef; lost = 0; owned = [| 128; 128 |] }

let test_kv_json_shared_schema () =
  let line = Report.to_json ~workload:"b" ~line:64 ~messages:4200 ~misses:77
      kv_report
  in
  let r = B.parse line in
  Alcotest.(check int) "schema version" B.schema_version r.B.schema;
  Alcotest.(check string) "workload" "b" r.B.workload;
  Alcotest.(check int) "messages" 4200 r.B.messages;
  Alcotest.(check int) "misses" 77 r.B.misses;
  let extra k = List.assoc k r.B.extra in
  Alcotest.(check bool) "ops carried" true (extra "ops" = B.Int 1000);
  (* CI greps '"errors": 0' and '"lost": N' out of BENCH_kv files *)
  Alcotest.(check bool) "errors key grep-able" true
    (contains_sub ~sub:"\"errors\": 0" line);
  Alcotest.(check bool) "lost key grep-able" true
    (contains_sub ~sub:"\"lost\": 0" line);
  (* round-trips like any other record *)
  Alcotest.check testable_t "kv record round-trips" r (B.parse (B.emit r))

let test_kv_gate_self () =
  let r = Report.to_bench ~workload:"b" kv_report in
  Alcotest.(check bool) "kv record gates clean against itself" true
    (gate_ok [ r ] [ r ]);
  let worse = { kv_report with errors = 2 } in
  let r' = Report.to_bench ~workload:"b" worse in
  Alcotest.(check bool) "kv errors regression caught" false
    (gate_ok [ r ] [ r' ])

(* --- schema versioning ----------------------------------------------- *)

let test_schema_future_rejected () =
  let line =
    Printf.sprintf "{\"schema\": %d, \"workload\": \"x\", \"nprocs\": 1}"
      (B.schema_version + 1)
  in
  Alcotest.check_raises "future schema rejected"
    (Failure
       (Printf.sprintf
          "Benchjson.parse: schema %d is newer than supported %d"
          (B.schema_version + 1) B.schema_version))
    (fun () -> ignore (B.parse line))

let () =
  Alcotest.run "bench"
    [ ( "roundtrip",
        [ Test_support.Support.qtest "emit/parse round-trip" ~count:200
            gen_record prop_roundtrip;
          Test_support.Support.qtest "emission is stable" ~count:100
            gen_record prop_emit_stable;
          Test_support.Support.qtest "JSONL load" ~count:50
            (Gen.list_size (Gen.int_range 0 5) gen_record)
            prop_load_string ] );
      ( "gate",
        [ Alcotest.test_case "identical files pass" `Quick test_gate_identical;
          Alcotest.test_case "sim regression (+/-1 cycle)" `Quick
            test_gate_sim_regression;
          Alcotest.test_case "extra metrics exact" `Quick test_gate_extra_exact;
          Alcotest.test_case "wall-time blowup" `Quick test_gate_wall_blowup;
          Alcotest.test_case "host metric direction" `Quick
            test_gate_host_direction;
          Alcotest.test_case "stripped baseline skips host" `Quick
            test_gate_stripped_baseline;
          Alcotest.test_case "missing/new records" `Quick
            test_gate_missing_and_new ] );
      ( "kv",
        [ Alcotest.test_case "kv report on shared schema" `Quick
            test_kv_json_shared_schema;
          Alcotest.test_case "kv record gates" `Quick test_kv_gate_self ] );
      ( "schema",
        [ Alcotest.test_case "future version rejected" `Quick
            test_schema_future_rejected ] ) ]
