(* Observability subsystem: sink plumbing, metrics registry semantics,
   and properties tying the typed event stream back to the network's
   own accounting. *)

open Shasta_runtime
module Obs = Shasta_obs.Obs
module Event = Shasta_obs.Event
module Metrics = Shasta_obs.Metrics
module Sink = Shasta_obs.Sink

let mk_rec node time ev = { Event.node; time; ev; site = None }

(* naive substring scan — enough for asserting on rendered output *)
let occurrences ~sub s =
  let n = String.length s and m = String.length sub in
  let c = ref 0 in
  for i = 0 to n - m do
    if String.sub s i m = sub then incr c
  done;
  !c

let contains ~sub s = occurrences ~sub s > 0

(* --- ring buffer ---------------------------------------------------- *)

let test_ring_keeps_latest () =
  let r = Sink.ring ~capacity:4 in
  let s = Sink.ring_sink r in
  for i = 0 to 9 do
    s.on_record (mk_rec 0 i Event.Barrier_passed)
  done;
  Alcotest.(check int) "dropped" 6 (Sink.ring_dropped r);
  Alcotest.(check (list int))
    "latest, oldest first" [ 6; 7; 8; 9 ]
    (List.map (fun (r : Event.record) -> r.time) (Sink.ring_contents r))

let test_ring_partial () =
  let r = Sink.ring ~capacity:8 in
  let s = Sink.ring_sink r in
  for i = 0 to 2 do
    s.on_record (mk_rec 1 (10 * i) (Event.Lock_acquired { id = i }))
  done;
  Alcotest.(check int) "no drops" 0 (Sink.ring_dropped r);
  Alcotest.(check int) "held" 3 (List.length (Sink.ring_contents r))

(* --- fan-out plumbing ----------------------------------------------- *)

let test_fanout () =
  let obs = Obs.create ~nprocs:2 () in
  Alcotest.(check bool) "sinkless" false (Obs.tracing obs);
  let lines = ref [] in
  let ring = Sink.ring ~capacity:16 in
  Obs.attach obs (Sink.text (fun l -> lines := l :: !lines));
  Obs.attach obs (Sink.ring_sink ring);
  Alcotest.(check bool) "tracing on" true (Obs.tracing obs);
  Obs.emit obs ~node:1 ~time:42
    (Event.Miss { kind = Event.Read; addr = 0x1000 });
  Alcotest.(check int) "text sink saw it" 1 (List.length !lines);
  Alcotest.(check int) "ring sink saw it" 1
    (List.length (Sink.ring_contents ring));
  Alcotest.(check bool) "line carries the node" true
    (contains ~sub:"n1" (List.hd !lines));
  (* the same emit also fed the registry *)
  Alcotest.(check int) "registry counted the miss" 1
    (Metrics.counter (Obs.metrics obs) Obs.c_miss_read 1)

(* --- histogram bucketing -------------------------------------------- *)

let test_histogram_buckets () =
  let m = Metrics.create ~nprocs:2 in
  (* bounds: 1;2;4;8;16;... — bucket i counts v <= bounds.(i) *)
  List.iter
    (fun v -> Metrics.observe m ~node:0 "h" v)
    [ 1; 2; 3; 4; 5000 ];
  Metrics.observe m ~node:1 "h" 2_000_000 (* beyond the last bound *);
  let agg = Metrics.hist_total m "h" in
  Alcotest.(check int) "n" 6 agg.Metrics.n;
  Alcotest.(check int) "sum" 2005010 agg.Metrics.sum;
  Alcotest.(check int) "max" 2_000_000 agg.Metrics.hmax;
  Alcotest.(check int) "<=1" 1 agg.Metrics.counts.(0);
  Alcotest.(check int) "<=2" 1 agg.Metrics.counts.(1);
  Alcotest.(check int) "<=4 (3 and 4)" 2 agg.Metrics.counts.(2);
  Alcotest.(check int) "<=16384 (5000)" 1 agg.Metrics.counts.(12);
  Alcotest.(check int) "overflow" 1
    agg.Metrics.counts.(Array.length agg.Metrics.bounds);
  (* per-node cells stay separate *)
  Alcotest.(check int) "node 0 count" 5 (Metrics.hist m "h" 0).Metrics.n;
  Alcotest.(check int) "node 1 count" 1 (Metrics.hist m "h" 1).Metrics.n

let test_copy_sub () =
  let m = Metrics.create ~nprocs:2 in
  Metrics.add m ~node:0 "c" 5;
  Metrics.observe m ~node:0 "h" 3;
  let snap = Metrics.copy m in
  Metrics.add m ~node:0 "c" 2;
  Metrics.add m ~node:1 "c" 7;
  Metrics.observe m ~node:1 "h" 100;
  let d = Metrics.sub m snap in
  Alcotest.(check int) "delta node 0" 2 (Metrics.counter d "c" 0);
  Alcotest.(check int) "delta node 1" 7 (Metrics.counter d "c" 1);
  Alcotest.(check int) "delta hist n" 1 (Metrics.hist_total d "h").Metrics.n;
  (* the snapshot is unaffected by later increments *)
  Alcotest.(check int) "snapshot froze" 5 (Metrics.counter snap "c" 0);
  (* dumps render without raising and mention the metrics *)
  let s = Metrics.to_string m in
  Alcotest.(check bool) "text dump has histogram" true
    (contains ~sub:"histogram h" s);
  let csv = Metrics.to_csv m in
  Alcotest.(check bool) "csv header" true
    (String.length csv >= 17 && String.sub csv 0 17 = "metric,node,value")

(* --- chrome trace sink ---------------------------------------------- *)

let test_chrome_sink () =
  let file = Filename.temp_file "shasta_trace" ".json" in
  let oc = open_out file in
  let sink = Sink.chrome ~nprocs:2 oc in
  sink.on_record (mk_rec 0 10 (Event.Msg_send
    { dst = 1; kind = "read_req"; block = 0x4000; longs = 4 }));
  sink.on_record (mk_rec 1 20 (Event.Stall
    { reason = "miss"; started = 12; cycles = 8 }));
  Sink.flush sink;
  (* flush is idempotent: a second flush (e.g. Obs.flush called twice,
     or an at_exit handler racing an explicit flush) must not emit a
     second terminator, and late records are dropped, not appended
     after the closing bracket *)
  Sink.flush sink;
  sink.on_record (mk_rec 0 30 Event.Barrier_passed);
  Sink.flush sink;
  close_out oc;
  let ic = open_in file in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove file;
  let t = String.trim s in
  Alcotest.(check bool) "opens array" true (t.[0] = '[');
  Alcotest.(check bool) "closes array" true (t.[String.length t - 1] = ']');
  Alcotest.(check int) "two thread_name metadata rows" 2
    (occurrences ~sub:"\"thread_name\"" t);
  Alcotest.(check int) "one complete (stall) event" 1
    (occurrences ~sub:"\"ph\":\"X\"" t);
  Alcotest.(check int) "one instant event" 1
    (occurrences ~sub:"\"ph\":\"i\"" t);
  Alcotest.(check bool) "stall has a duration" true
    (contains ~sub:"\"dur\":8" t);
  Alcotest.(check int) "single closing bracket despite double flush" 1
    (occurrences ~sub:"]" t);
  Alcotest.(check int) "post-flush record dropped" 0
    (occurrences ~sub:"barrier" t)

(* --- properties over real runs -------------------------------------- *)

(* Run [migratory] with a ring sink attached and hand back the records
   plus the legacy network statistics. *)
let traced_run nprocs rounds =
  let obs = Obs.create ~nprocs () in
  let ring = Sink.ring ~capacity:(1 lsl 17) in
  Obs.attach obs (Sink.ring_sink ring);
  let _, r =
    Test_support.Support.run ~nprocs ~obs (Shasta_apps.Micro.migratory ~rounds ())
  in
  assert (Sink.ring_dropped ring = 0);
  (obs, Sink.ring_contents ring, r)

let params_gen = QCheck2.Gen.(pair (int_range 2 4) (int_range 4 40))

(* Point-to-point channels are FIFO and never reorder, so the receive
   timestamps observed on each (src, dst) channel must be monotonically
   non-decreasing; and the event-derived message count must agree with
   the network's own accounting. *)
let prop_stream_consistent (nprocs, rounds) =
  let obs, records, r = traced_run nprocs rounds in
  let last = Hashtbl.create 16 in
  let monotone = ref true in
  let sends = ref 0 and recvs = ref 0 in
  List.iter
    (fun (rec_ : Event.record) ->
      match rec_.ev with
      | Event.Msg_send _ -> incr sends
      | Event.Msg_recv { src; _ } ->
        incr recvs;
        let ch = (src, rec_.node) in
        (match Hashtbl.find_opt last ch with
        | Some t when rec_.time < t -> monotone := false
        | _ -> ());
        Hashtbl.replace last ch rec_.time
      | _ -> ())
    records;
  let net_sent, _ = Shasta_network.Network.stats r.Api.state.State.net in
  let reg = Obs.metrics obs in
  !monotone
  && !sends = net_sent
  && !recvs = net_sent (* quiescent: everything sent was delivered *)
  && Metrics.counter_total reg Obs.c_msg_sent = net_sent
  && Metrics.counter_total reg Obs.c_msg_recv = net_sent

(* Events stamped with the emitting node's own clock never run
   backwards: each node's records appear in its simulated-time order.
   (Msg_recv carries the message's earlier arrival time and Stall spans
   back to when the wait began, so both are exempt.) *)
let prop_node_time_monotone (nprocs, rounds) =
  let _, records, _ = traced_run nprocs rounds in
  let last = Array.make nprocs min_int in
  List.for_all
    (fun (rec_ : Event.record) ->
      match rec_.ev with
      | Event.Stall _ | Event.Msg_recv _ -> true
      | _ ->
        let ok = rec_.time >= last.(rec_.node) in
        last.(rec_.node) <- max last.(rec_.node) rec_.time;
        ok)
    records

let () =
  Alcotest.run "obs"
    [ ( "sinks",
        [ Alcotest.test_case "ring keeps latest" `Quick test_ring_keeps_latest;
          Alcotest.test_case "ring partial fill" `Quick test_ring_partial;
          Alcotest.test_case "fan-out" `Quick test_fanout;
          Alcotest.test_case "chrome trace" `Quick test_chrome_sink ] );
      ( "metrics",
        [ Alcotest.test_case "histogram buckets" `Quick
            test_histogram_buckets;
          Alcotest.test_case "copy/sub deltas" `Quick test_copy_sub ] );
      ( "properties",
        [ Test_support.Support.qtest "event stream matches Network.stats" ~count:20
            params_gen prop_stream_consistent;
          Test_support.Support.qtest "per-node times monotone" ~count:20 params_gen
            prop_node_time_monotone ] ) ]
