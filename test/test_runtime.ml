(* Runtime/protocol end-to-end scenarios: states and directory after
   directed sharing patterns, dirty sharing, synchronization semantics,
   release consistency, and whole-system invariants after runs. *)

open Shasta_minic.Builder
open Shasta_runtime

let prepare ~nprocs prog =
  let spec = { (Api.default_spec prog) with nprocs } in
  let state, _, _ = Api.prepare spec in
  state

let run ~nprocs prog =
  let state = prepare ~nprocs prog in
  let ph = Cluster.run_app state in
  (state, ph)

(* Structural invariants that must hold whenever the system is idle:
   every block has a valid owner whose sharer bit is set; an exclusive
   holder is the unique valid copy; every node holding a valid copy is
   in the sharer vector. *)
let check_invariants (state : State.t) =
  let module T = Shasta_protocol.Transitions in
  let ls = state.config.line_shift in
  (* the pure view's own quiescent invariants (directory/line agreement,
     single exclusive holder, no leftover pending state) *)
  (match T.quiescent_invariants state.tcfg state.proto with
   | [] -> ()
   | vs -> Alcotest.fail (String.concat "; " vs));
  (* and agreement between the view and the per-node state tables the
     inline checks actually read *)
  T.dir_fold
    (fun block e () ->
      Alcotest.(check bool)
        (Printf.sprintf "block 0x%x owner in range" block)
        true
        (e.T.owner >= 0 && e.T.owner < state.config.nprocs);
      Alcotest.(check bool)
        (Printf.sprintf "block 0x%x owner is sharer" block)
        true (T.is_sharer e e.T.owner);
      let valid_nodes =
        Array.to_list state.nodes
        |> List.filter (fun (n : Node.t) ->
          let st = Tables.get_state n ~ls block in
          st = Shasta.Layout.st_exclusive || st = Shasta.Layout.st_shared)
      in
      List.iter
        (fun (n : Node.t) ->
          Alcotest.(check bool)
            (Printf.sprintf "valid holder n%d of 0x%x is a sharer" n.id block)
            true (T.is_sharer e n.id))
        valid_nodes;
      let exclusive_nodes =
        List.filter
          (fun (n : Node.t) ->
            Tables.get_state n ~ls block = Shasta.Layout.st_exclusive)
          valid_nodes
      in
      match exclusive_nodes with
      | [] -> ()
      | [ x ] ->
        Alcotest.(check int)
          (Printf.sprintf "exclusive holder of 0x%x is sole valid copy" block)
          1 (List.length valid_nodes);
        Alcotest.(check int) "exclusive holder is the owner" e.T.owner x.id
      | _ ->
        Alcotest.fail (Printf.sprintf "two exclusive holders of 0x%x" block))
    state.proto ()

(* --- sharing patterns ----------------------------------------------- *)

let t_read_sharing () =
  (* everyone reads a block written during init: all end up sharers *)
  let p =
    prog ~globals:[ ("a", I) ]
      [ proc "appinit"
          [ gset "a" (Gmalloc_b (i 64, i 64)); sti (g "a") (i 0) (i 7) ];
        proc "work"
          [ let_i "x" (ldi (g "a") (i 0));
            barrier;
            when_ (Pid ==% i 0) [ print_int (v "x") ] ]
      ]
  in
  let state, ph = run ~nprocs:4 p in
  Alcotest.(check string) "value read everywhere" "7\n" ph.output;
  let block = Shasta_runtime.State.shared_heap_start in
  let e =
    match Shasta_protocol.Transitions.dir_entry state.proto ~block with
    | Some e -> e
    | None -> Alcotest.fail "block not allocated"
  in
  Alcotest.(check int) "all four share" 4
    (Shasta_protocol.Transitions.sharer_count e);
  check_invariants state

let t_write_invalidates () =
  (* node 1 writes after everyone read: it becomes the sole owner and
     the others' copies are flagged invalid *)
  let p =
    prog ~globals:[ ("a", I) ]
      [ proc "appinit" [ gset "a" (Gmalloc_b (i 64, i 64)) ];
        proc "work"
          [ let_i "x" (ldi (g "a") (i 0));
            barrier;
            when_ (Pid ==% i 1) [ sti (g "a") (i 0) (i 42) ];
            barrier;
            when_ (Pid ==% i 0) [ print_int (ldi (g "a") (i 0) +% v "x") ] ]
      ]
  in
  let state, ph = run ~nprocs:4 p in
  Alcotest.(check string) "new value visible" "42\n" ph.output;
  let block = Shasta_runtime.State.shared_heap_start in
  let ls = state.config.line_shift in
  (* nodes 2 and 3 must hold invalid, flagged copies *)
  List.iter
    (fun id ->
      let n = state.nodes.(id) in
      Alcotest.(check int)
        (Printf.sprintf "n%d invalidated" id)
        Shasta.Layout.st_invalid
        (Tables.get_state n ~ls block);
      Alcotest.(check int)
        (Printf.sprintf "n%d flagged" id)
        Shasta.Layout.flag_pattern
        (Shasta_machine.Memory.read_long_u n.mem block))
    [ 2; 3 ];
  check_invariants state

let t_dirty_sharing () =
  (* the home never gets a copy back when a dirty owner serves a read:
     its memory stays stale (dirty sharing, Section 2.1) *)
  let p =
    prog ~globals:[ ("a", I) ]
      [ proc "appinit" [ gset "a" (Gmalloc_b (i 64, i 64)) ];
        proc "work"
          [ (* node 1 writes, then node 2 reads (forwarded to node 1) *)
            when_ (Pid ==% i 1) [ sti (g "a") (i 0) (i 99) ];
            barrier;
            when_ (Pid ==% i 2) [ sti (g "a") (i 1) (ldi (g "a") (i 0)) ];
            barrier;
            when_ (Pid ==% i 0) [ print_int (ldi (g "a") (i 1)) ] ]
      ]
  in
  let state, ph = run ~nprocs:4 p in
  Alcotest.(check string) "reader got the dirty data" "99\n" ph.output;
  check_invariants state

let t_migratory_ownership () =
  (* the lock-protected counter migrates: every node takes write misses *)
  let _, r = run ~nprocs:4 (Shasta_apps.Micro.migratory ~rounds:8 ()) in
  Array.iteri
    (fun id (c : Node.counters) ->
      if id > 0 then
        Alcotest.(check bool)
          (Printf.sprintf "n%d missed for ownership" id)
          true
          (c.read_misses + c.write_misses + c.upgrade_misses > 0))
    r.counters

(* --- synchronization ------------------------------------------------ *)

let t_lock_mutual_exclusion () =
  (* read-modify-write without atomicity would lose updates; under the
     lock every increment survives at any processor count *)
  let p =
    prog ~globals:[ ("c", I) ]
      [ proc "appinit"
          [ gset "c" (Gmalloc_b (i 64, i 64)); sti (g "c") (i 0) (i 0) ];
        proc "work"
          [ for_ "k" (i 0) (i 25)
              [ lock (i 3);
                sti (g "c") (i 0) (ldi (g "c") (i 0) +% i 1);
                unlock (i 3) ];
            barrier;
            when_ (Pid ==% i 0) [ print_int (ldi (g "c") (i 0)) ] ]
      ]
  in
  List.iter
    (fun np ->
      let _, ph = run ~nprocs:np p in
      Alcotest.(check string)
        (Printf.sprintf "all increments survive at P=%d" np)
        (string_of_int (np * 25) ^ "\n")
        ph.output)
    [ 1; 2; 3; 4 ]

let t_barrier_separates_phases () =
  (* without the barrier node 1 could read 0; with it, it must see 5 *)
  let p =
    prog ~globals:[ ("a", I) ]
      [ proc "appinit" [ gset "a" (Gmalloc_b (i 64, i 64)) ];
        proc "work"
          [ when_ (Pid ==% i 0) [ sti (g "a") (i 0) (i 5) ];
            barrier;
            let_i "x" (ldi (g "a") (i 0));
            sti (g "a") (i 1 +% Pid) (v "x");
            barrier;
            when_ (Pid ==% i 0)
              [ let_i "s" (i 0);
                for_ "p" (i 0) Nprocs
                  [ set "s" (v "s" +% ldi (g "a") (i 1 +% v "p")) ];
                print_int (v "s") ] ]
      ]
  in
  let _, ph = run ~nprocs:4 p in
  Alcotest.(check string) "all nodes saw the pre-barrier write" "20\n"
    ph.output

let t_flags_order () =
  (* flag set/wait transfers data release->acquire between two nodes *)
  let _, ph = run ~nprocs:2 (Shasta_apps.Micro.prodcons ~items:6 ()) in
  let want = List.init 6 (fun k -> (k * k) + 1) |> List.fold_left ( + ) 0 in
  Alcotest.(check string) "pipeline sum" (string_of_int want ^ "\n") ph.output

let t_release_consistency_nonstalling () =
  (* a burst of stores to distinct blocks proceeds without stalling;
     the following unlock is the release that makes them visible *)
  let p =
    prog ~globals:[ ("a", I) ]
      [ proc "appinit" [ gset "a" (Gmalloc (i 4096)) ];
        proc "work"
          [ when_ (Pid ==% i 1)
              [ lock (i 1);
                for_ "k" (i 0) (i 32) [ sti (g "a") (v "k" *% i 8) (v "k") ];
                unlock (i 1) ];
            barrier;
            when_ (Pid ==% i 0)
              [ lock (i 1);
                let_i "s" (i 0);
                for_ "k" (i 0) (i 32)
                  [ set "s" (v "s" +% ldi (g "a") (v "k" *% i 8)) ];
                unlock (i 1);
                print_int (v "s") ] ]
      ]
  in
  let state, ph = run ~nprocs:2 p in
  Alcotest.(check string) "all released stores visible" "496\n" ph.output;
  check_invariants state

let t_invariants_after_stress () =
  List.iter
    (fun prog ->
      let state, _ = run ~nprocs:4 prog in
      check_invariants state)
    [ Shasta_apps.Micro.false_sharing ~iters:40 ();
      Shasta_apps.Micro.migratory ~rounds:12 ();
      Shasta_apps.Ocean.program ~n:18 ~iters:2 () ]

let t_atm_network_also_correct () =
  let p = Shasta_apps.Lu.program ~n:16 ~bs:4 () in
  let expected = Test_support.Support.ground_truth p in
  let got, _ =
    Test_support.Support.run ~nprocs:4 ~net:Shasta_network.Network.atm p
  in
  Alcotest.(check string) "correct over ATM-class network" expected got

let t_sequential_consistency_correct () =
  (* the stricter model must still produce identical results *)
  List.iter
    (fun prog ->
      let expected = Test_support.Support.ground_truth prog in
      let spec =
        { (Api.default_spec prog) with
          nprocs = 4;
          consistency = State.Sequential }
      in
      let r = Api.run spec in
      Alcotest.(check string) "SC results match" expected r.phase.output)
    [ Shasta_apps.Lu.program ~n:16 ~bs:4 ();
      Shasta_apps.Radix.program ~nkeys:512 ();
      Shasta_apps.Ocean.program ~n:18 ~iters:2 () ]

let t_sequential_consistency_slower () =
  let prog = Shasta_apps.Ocean.program ~n:18 ~iters:2 () in
  let run c =
    (Api.run { (Api.default_spec prog) with nprocs = 4; consistency = c })
      .phase
      .wall_cycles
  in
  Alcotest.(check bool) "RC beats SC on write-heavy sharing" true
    (run State.Release < run State.Sequential)

let t_atm_slower_than_mc () =
  let p = Shasta_apps.Ocean.program ~n:18 ~iters:2 () in
  let _, rm =
    Test_support.Support.run ~nprocs:4 ~net:Shasta_network.Network.memory_channel p
  in
  let _, ra =
    Test_support.Support.run ~nprocs:4 ~net:Shasta_network.Network.atm p
  in
  Alcotest.(check bool) "higher latency, longer run" true
    (ra.phase.wall_cycles > rm.phase.wall_cycles)

let () =
  Alcotest.run "runtime"
    [ ( "sharing",
        [ Alcotest.test_case "read sharing" `Quick t_read_sharing;
          Alcotest.test_case "write invalidation" `Quick t_write_invalidates;
          Alcotest.test_case "dirty sharing" `Quick t_dirty_sharing;
          Alcotest.test_case "migratory" `Quick t_migratory_ownership ] );
      ( "synchronization",
        [ Alcotest.test_case "lock mutual exclusion" `Quick
            t_lock_mutual_exclusion;
          Alcotest.test_case "barriers" `Quick t_barrier_separates_phases;
          Alcotest.test_case "event flags" `Quick t_flags_order;
          Alcotest.test_case "non-stalling stores + release" `Quick
            t_release_consistency_nonstalling ] );
      ( "invariants",
        [ Alcotest.test_case "after stress" `Quick t_invariants_after_stress ]
      );
      ( "consistency",
        [ Alcotest.test_case "SC correctness" `Quick
            t_sequential_consistency_correct;
          Alcotest.test_case "RC faster than SC" `Quick
            t_sequential_consistency_slower ] );
      ( "networks",
        [ Alcotest.test_case "atm correctness" `Quick t_atm_network_also_correct;
          Alcotest.test_case "atm slower" `Quick t_atm_slower_than_mc ] )
    ]
