(* Model-checker tests: exhaustive runs of the built-in scenarios must
   find no violation; QCheck-generated random scripts driven through
   random interleavings must keep owner/sharer consistency and
   invalidation-ack conservation at every reachable state; the injected
   dropped-ack bug must be caught with a counterexample; and replaying
   a real workload's recorded inputs through the pure core must
   reproduce its exact final protocol state. *)

open QCheck2
module T = Shasta_protocol.Transitions
module Mcheck = Shasta_mcheck.Mcheck

let qtest name ?(count = 100) gen prop =
  QCheck_alcotest.to_alcotest (Test.make ~name ~count gen prop)

(* --- exhaustive scenarios ------------------------------------------- *)

let t_exhaustive_clean () =
  List.iter
    (fun nprocs ->
      List.iter
        (fun sc ->
          let r = Mcheck.check_exhaustive sc in
          Alcotest.(check bool)
            (Printf.sprintf "%s P=%d explored fully" sc.Mcheck.sname nprocs)
            false r.Mcheck.truncated;
          match r.Mcheck.violation with
          | None -> ()
          | Some v ->
            Mcheck.pp_violation stderr v;
            Alcotest.fail
              (Printf.sprintf "%s P=%d: violation" sc.Mcheck.sname nprocs))
        (Mcheck.scenarios ~nprocs))
    [ 2; 3 ]

let t_injected_bug_caught () =
  (* dropping one invalidation ack must be detected in at least one
     scenario, with a non-empty counterexample trace *)
  let caught =
    List.filter_map
      (fun sc ->
        (Mcheck.check_exhaustive ~injection:Mcheck.Drop_first_inv_ack sc)
          .Mcheck.violation)
      (Mcheck.scenarios ~nprocs:2)
  in
  Alcotest.(check bool) "at least one scenario catches the dropped ack" true
    (caught <> []);
  List.iter
    (fun (v : Mcheck.violation) ->
      Alcotest.(check bool) "counterexample trace is non-empty" true
        (v.Mcheck.vtrace <> []))
    caught

let t_fuzz_clean () =
  List.iter
    (fun sc ->
      let _, v = Mcheck.fuzz ~seed:7 ~runs:200 sc in
      match v with
      | None -> ()
      | Some v ->
        Mcheck.pp_violation stderr v;
        Alcotest.fail (sc.Mcheck.sname ^ ": fuzz violation"))
    (Mcheck.scenarios ~nprocs:3)

(* --- random scripts, random interleavings --------------------------- *)

(* Generate small per-node scripts of synchronized accesses: every data
   access happens under the one lock, so interleavings are racy at the
   protocol level but race-free at the data level. *)
let script_gen ~nprocs ~blocks =
  let block = Gen.oneofl blocks in
  let access =
    Gen.oneof
      [ Gen.map (fun b -> Mcheck.Read b) block;
        Gen.map2 (fun b v -> Mcheck.Write (b, v + 1)) block (Gen.int_bound 99);
        Gen.map (fun b -> Mcheck.Write_reg_plus (b, 1)) block ]
  in
  let section =
    Gen.map
      (fun accs -> (Mcheck.Lock 0 :: accs) @ [ Mcheck.Unlock 0 ])
      (Gen.list_size (Gen.int_range 1 2) access)
  in
  let node_script =
    Gen.map List.concat (Gen.list_size (Gen.int_range 0 2) section)
  in
  Gen.array_size (Gen.pure nprocs) node_script

let scenario_of_scripts scripts ~nprocs ~blocks =
  { Mcheck.sname = "random";
    nprocs;
    blocks;
    scripts;
    oracle = (fun _ -> []);
    drf = true (* every access sits inside a Lock 0 critical section *);
    cfg_mod = Fun.id }

(* Drive one random interleaving to completion, checking the state
   invariants (owner in range and a sharer, single exclusive holder,
   ack conservation against in-flight messages, flag/value coherence)
   after every move; at the end the system must be quiescent. *)
let prop_random_trace (seed, scripts) =
  let nprocs = Array.length scripts in
  let blocks = [ 0; 8192 ] in
  let sc = scenario_of_scripts scripts ~nprocs ~blocks in
  let _, v = Mcheck.fuzz ~seed ~runs:3 sc in
  match v with
  | None -> true
  | Some v ->
    Mcheck.pp_violation stderr v;
    false

let trace_gen =
  Gen.pair (Gen.int_bound 1_000_000) (script_gen ~nprocs:3 ~blocks:[ 0; 8192 ])

(* Owner/sharer consistency, stated directly against the final view of
   an exhaustive exploration: fold over the directory and re-check the
   two core rules for every terminal scenario. *)
let t_owner_sharer_consistency () =
  List.iter
    (fun sc ->
      let sys = Mcheck.init_sys sc in
      let cfg = Mcheck.cfg_of sc in
      (* run one deterministic interleaving: always take the first move *)
      let rec go sys n =
        if n > 10_000 then Alcotest.fail "no quiescence"
        else
          match Mcheck.moves cfg ~inj:Mcheck.No_injection sys with
          | [] -> sys
          | (_, next) :: _ -> go (next ()) (n + 1)
      in
      let sys = go sys 0 in
      let v = Mcheck.view sys in
      T.dir_fold
        (fun block e () ->
          Alcotest.(check bool)
            (Printf.sprintf "0x%x owner in range" block)
            true
            (e.T.owner >= 0 && e.T.owner < cfg.T.nprocs);
          Alcotest.(check bool)
            (Printf.sprintf "0x%x owner is a sharer" block)
            true (T.is_sharer e e.T.owner);
          let exclusives =
            List.filter
              (fun n -> T.line_state v ~node:n ~block = T.L_exclusive)
              (List.init cfg.T.nprocs Fun.id)
          in
          Alcotest.(check bool)
            (Printf.sprintf "0x%x at most one exclusive holder" block)
            true
            (List.length exclusives <= 1))
        v ())
    (Mcheck.scenarios ~nprocs:3)

(* --- lossy channels ------------------------------------------------- *)

(* With the adversary allowed a bounded number of drop/dup/swap moves
   per channel, every safety invariant must still hold at every
   reachable state AND every terminal state must have drained its
   channels (eventual delivery => quiescence: a frame the adversary
   dropped is always retransmittable, so a wedged channel is a bug in
   the sublayer model, not an allowed outcome). *)
let t_lossy_exhaustive_clean () =
  List.iter
    (fun sc ->
      let r = Mcheck.check_exhaustive ~lossy:1 sc in
      Alcotest.(check bool)
        (Printf.sprintf "%s P=2 lossy explored fully" sc.Mcheck.sname)
        false r.Mcheck.truncated;
      match r.Mcheck.violation with
      | None -> ()
      | Some v ->
        Mcheck.pp_violation stderr v;
        Alcotest.fail (sc.Mcheck.sname ^ ": lossy violation"))
    (Mcheck.scenarios ~nprocs:2)

let t_lossy_fuzz_clean () =
  List.iter
    (fun sc ->
      let _, v = Mcheck.fuzz ~lossy:2 ~seed:11 ~runs:150 sc in
      match v with
      | None -> ()
      | Some v ->
        Mcheck.pp_violation stderr v;
        Alcotest.fail (sc.Mcheck.sname ^ ": lossy fuzz violation"))
    (Mcheck.scenarios ~nprocs:3)

(* --- the node-crash adversary --------------------------------------- *)

(* Exhaustively at P=2: every interleaving of every crash-safe scenario
   with one adversarial halt (and optionally one restart) keeps every
   invariant, never strands a survivor, and quiesces.  This is the
   fault-tolerance proof for directory reconstruction, lock-lease
   takeover, barrier excusal and in-flight redispatch. *)
let t_crash_exhaustive_clean () =
  List.iter
    (fun (crash, recover, tag) ->
      List.iter
        (fun sc ->
          let r = Mcheck.check_exhaustive ~crash ?recover sc in
          Alcotest.(check bool)
            (Printf.sprintf "%s P=2 %s explored fully" sc.Mcheck.sname tag)
            false r.Mcheck.truncated;
          Alcotest.(check bool)
            (Printf.sprintf "%s %s reaches terminals" sc.Mcheck.sname tag)
            true (r.Mcheck.terminals > 0);
          match r.Mcheck.violation with
          | None -> ()
          | Some v ->
            Mcheck.pp_violation stderr v;
            Alcotest.fail
              (Printf.sprintf "%s %s: violation" sc.Mcheck.sname tag))
        (Mcheck.crash_scenarios ~nprocs:2))
    [ (1, None, "crash"); (1, Some 1, "crash+recover") ]

let t_crash_fuzz_clean () =
  List.iter
    (fun sc ->
      let _, v = Mcheck.fuzz ~crash:2 ~recover:1 ~seed:13 ~runs:150 sc in
      match v with
      | None -> ()
      | Some v ->
        Mcheck.pp_violation stderr v;
        Alcotest.fail (sc.Mcheck.sname ^ ": crash fuzz violation"))
    (Mcheck.crash_scenarios ~nprocs:3)

(* Regression: a node that crashes AFTER arriving at the barrier must
   be excused via the halted mask, not left counted as arrived — the
   interleaving the adversary found when this was wrong.  Driven as a
   directed move sequence so the fix stays pinned even if the
   exhaustive pass's order changes. *)
let t_crash_after_barrier_arrival () =
  let sc =
    { Mcheck.sname = "barrier-crash";
      nprocs = 2;
      blocks = [];
      scripts = [| [ Mcheck.Barrier ]; [ Mcheck.Barrier ] |];
      oracle = (fun _ -> []);
      drf = true;
      cfg_mod = Fun.id }
  in
  let cfg = Mcheck.cfg_of sc in
  let sys = ref (Mcheck.init_sys ~crash:1 sc) in
  let play label =
    match
      List.assoc_opt label (Mcheck.moves cfg ~inj:Mcheck.No_injection !sys)
    with
    | Some next -> sys := next ()
    | None ->
      Alcotest.failf "move %S not enabled (have: %s)" label
        (String.concat "; "
           (List.map fst (Mcheck.moves cfg ~inj:Mcheck.No_injection !sys)))
  in
  play "n1: barrier";
  play "deliver 1->0: [1] barrier_arrive @0x0";
  play "crash n1";
  Alcotest.(check (list string)) "invariants hold" []
    (T.invariants cfg (Mcheck.view !sys));
  (* node 1's arrival must have been excused: node 0 can still pass *)
  play "n0: barrier";
  let rec drain k =
    if k > 50 then Alcotest.fail "survivor never passed the barrier"
    else
      match Mcheck.moves cfg ~inj:Mcheck.No_injection !sys with
      | [] -> ()
      | (_, next) :: _ ->
        sys := next ();
        drain (k + 1)
  in
  drain 0;
  Alcotest.(check (list string)) "terminal quiescent, survivor done" []
    (T.quiescent_invariants cfg (Mcheck.view !sys))

(* --- scaling scenarios: directory modes and scalable sync ----------- *)

(* Exhaustive at P=2 and P=3 over the scale scenarios: limited-pointer
   overflow-to-broadcast (at P=3 with one pointer the entry genuinely
   overflows, so this proves the superset semantics never misses a
   sharer), coarse-vector regions, the MCS-style queue lock and the
   combining-tree barrier. *)
let t_scale_exhaustive_clean () =
  List.iter
    (fun nprocs ->
      List.iter
        (fun sc ->
          let r = Mcheck.check_exhaustive sc in
          Alcotest.(check bool)
            (Printf.sprintf "%s P=%d explored fully" sc.Mcheck.sname nprocs)
            false r.Mcheck.truncated;
          match r.Mcheck.violation with
          | None -> ()
          | Some v ->
            Mcheck.pp_violation stderr v;
            Alcotest.fail
              (Printf.sprintf "%s P=%d: violation" sc.Mcheck.sname nprocs))
        (Mcheck.scale_scenarios ~nprocs))
    [ 2; 3 ]

let t_scale_lossy_exhaustive_clean () =
  List.iter
    (fun sc ->
      let r = Mcheck.check_exhaustive ~lossy:1 sc in
      (* the directed home-stale scenarios are fixed at four nodes;
         under loss their full interleaving space exceeds the budget,
         and the bounded prefix (plus the fuzz pass) is the check *)
      if sc.Mcheck.nprocs <= 2 then
        Alcotest.(check bool)
          (Printf.sprintf "%s P=2 lossy explored fully" sc.Mcheck.sname)
          false r.Mcheck.truncated;
      match r.Mcheck.violation with
      | None -> ()
      | Some v ->
        Mcheck.pp_violation stderr v;
        Alcotest.fail (sc.Mcheck.sname ^ ": lossy violation"))
    (Mcheck.scale_scenarios ~nprocs:2)

let t_scale_crash_exhaustive_clean () =
  List.iter
    (fun sc ->
      let r = Mcheck.check_exhaustive ~crash:1 sc in
      Alcotest.(check bool)
        (Printf.sprintf "%s P=2 crash explored fully" sc.Mcheck.sname)
        false r.Mcheck.truncated;
      Alcotest.(check bool)
        (Printf.sprintf "%s crash reaches terminals" sc.Mcheck.sname)
        true (r.Mcheck.terminals > 0);
      match r.Mcheck.violation with
      | None -> ()
      | Some v ->
        Mcheck.pp_violation stderr v;
        Alcotest.fail (sc.Mcheck.sname ^ ": crash violation"))
    (Mcheck.scale_scenarios ~nprocs:2)

let t_scale_fuzz_clean () =
  List.iter
    (fun sc ->
      let _, v = Mcheck.fuzz ~seed:17 ~runs:150 sc in
      match v with
      | None -> ()
      | Some v ->
        Mcheck.pp_violation stderr v;
        Alcotest.fail (sc.Mcheck.sname ^ ": fuzz violation"))
    (Mcheck.scale_scenarios ~nprocs:3)

(* A sublayer that retransmits but forgets to dedup hands stale frames
   to the protocol; the checker must catch it (stray data replies or
   ack over-delivery), with a printable counterexample. *)
let t_no_dedup_caught () =
  let caught =
    List.filter_map
      (fun sc ->
        (Mcheck.check_exhaustive ~injection:Mcheck.Retransmit_no_dedup
           ~lossy:1 sc)
          .Mcheck.violation)
      (Mcheck.scenarios ~nprocs:2)
  in
  Alcotest.(check bool)
    "at least one scenario catches retransmit-without-dedup" true
    (caught <> []);
  List.iter
    (fun (v : Mcheck.violation) ->
      Alcotest.(check bool) "counterexample trace is non-empty" true
        (v.Mcheck.vtrace <> []))
    caught

(* A store commit reordered past its lock release preserves every
   pre-refinement check — release-order's data oracle deliberately
   tolerates both final outcomes, invariants never see the deferred
   store, quiescence still drains — and ONLY the refinement pass
   catches it, as a divergence at the consumer's stale lock-section
   load, with the committed spec run printed alongside the trace. *)
let t_reordered_release_needs_refinement () =
  let sc = Mcheck.release_order in
  let without =
    Mcheck.check_exhaustive ~injection:Mcheck.Store_past_release sc
  in
  Alcotest.(check bool) "invisible to all pre-refinement checks" true
    (without.Mcheck.violation = None);
  Alcotest.(check bool) "explored fully without refinement" false
    without.Mcheck.truncated;
  let wth =
    Mcheck.check_exhaustive ~injection:Mcheck.Store_past_release ~refine:true
      sc
  in
  match wth.Mcheck.violation with
  | None -> Alcotest.fail "refinement missed the reordered release"
  | Some v ->
    Mcheck.pp_violation stderr v;
    Alcotest.(check bool) "counterexample trace is non-empty" true
      (v.Mcheck.vtrace <> []);
    Alcotest.(check bool) "committed spec run is printed" true
      (v.Mcheck.vcommits <> []);
    Alcotest.(check bool) "the divergence is a refinement error" true
      (List.exists
         (fun e ->
           String.length e >= 11 && String.sub e 0 11 = "refinement:")
         v.Mcheck.verr)

(* The same clean scenario refines without the injection: the weak
   oracle is not what hides the bug. *)
let t_release_order_clean () =
  let r = Mcheck.check_exhaustive ~refine:true Mcheck.release_order in
  (match r.Mcheck.violation with
   | None -> ()
   | Some v ->
     Mcheck.pp_violation stderr v;
     Alcotest.fail "release-order diverges without injection");
  Alcotest.(check bool) "explored fully" false r.Mcheck.truncated

(* --- deterministic replay ------------------------------------------- *)

let t_replay_reproduces () =
  let open Shasta_runtime in
  let prog = Shasta_apps.Lu.program ~n:16 ~bs:4 () in
  let spec = { (Api.default_spec prog) with nprocs = 4 } in
  let state, _, _ = Api.prepare spec in
  state.State.record_inputs <- true;
  let _ = Cluster.run_app state in
  let r = Replay.replay state in
  Alcotest.(check bool) "some protocol steps were recorded" true
    (r.Replay.steps > 0);
  Alcotest.(check bool) "no invariant failures during replay" true
    (r.Replay.invariant_failures = []);
  Alcotest.(check bool) "replayed view equals the live final view" false
    r.Replay.mismatch

let t_replay_under_faults () =
  (* the engine records protocol inputs AFTER the reliable sublayer
     (post-dedup, post-resequencing), so a run over a faulty wire
     replays exactly like a clean one: the log already contains the
     repaired, exactly-once FIFO stream the core consumed *)
  let open Shasta_runtime in
  let prog = Shasta_apps.Lu.program ~n:16 ~bs:4 () in
  let spec =
    { (Api.default_spec prog) with
      nprocs = 4;
      net_faults = Some { Shasta_network.Network.standard with drop = 0.05 } }
  in
  let state, _, _ = Api.prepare spec in
  state.State.record_inputs <- true;
  let _ = Cluster.run_app state in
  Alcotest.(check bool) "faults actually fired" true
    ((Shasta_network.Network.fault_stats state.State.net)
       .Shasta_network.Network.retxs > 0);
  let r = Replay.replay state in
  Alcotest.(check bool) "steps recorded" true (r.Replay.steps > 0);
  Alcotest.(check bool) "replay ok under net faults" true (Replay.ok r)

let t_replay_sc_mode () =
  (* sequential consistency exercises the stalling-store re-entry *)
  let open Shasta_runtime in
  let prog = Shasta_apps.Ocean.program ~n:18 ~iters:2 () in
  let spec =
    { (Api.default_spec prog) with
      nprocs = 4;
      consistency = State.Sequential }
  in
  let state, _, _ = Api.prepare spec in
  state.State.record_inputs <- true;
  let _ = Cluster.run_app state in
  let r = Replay.replay state in
  Alcotest.(check bool) "replay ok under SC" true (Replay.ok r)

let () =
  Alcotest.run "mcheck"
    [ ( "exhaustive",
        [ Alcotest.test_case "scenarios clean at P=2,3" `Quick
            t_exhaustive_clean;
          Alcotest.test_case "owner/sharer consistency" `Quick
            t_owner_sharer_consistency;
          Alcotest.test_case "injected dropped ack caught" `Quick
            t_injected_bug_caught ] );
      ( "fuzz",
        [ Alcotest.test_case "built-in scenarios" `Quick t_fuzz_clean;
          qtest "random scripts keep invariants" ~count:60 trace_gen
            prop_random_trace ] );
      ( "lossy",
        [ Alcotest.test_case "scenarios clean at P=2 (exhaustive)" `Quick
            t_lossy_exhaustive_clean;
          Alcotest.test_case "scenarios clean at P=3 (fuzz)" `Quick
            t_lossy_fuzz_clean;
          Alcotest.test_case "retransmit-without-dedup caught" `Quick
            t_no_dedup_caught ] );
      ( "refine",
        [ Alcotest.test_case "reordered release caught only by refinement"
            `Quick t_reordered_release_needs_refinement;
          Alcotest.test_case "release-order clean without injection" `Quick
            t_release_order_clean ] );
      ( "crash",
        [ Alcotest.test_case "scenarios clean at P=2 (exhaustive)" `Quick
            t_crash_exhaustive_clean;
          Alcotest.test_case "scenarios clean at P=3 (fuzz)" `Quick
            t_crash_fuzz_clean;
          Alcotest.test_case "crash after barrier arrival excused" `Quick
            t_crash_after_barrier_arrival ] );
      ( "scale",
        [ Alcotest.test_case "scale scenarios clean at P=2,3" `Quick
            t_scale_exhaustive_clean;
          Alcotest.test_case "scale scenarios clean under loss (P=2)" `Quick
            t_scale_lossy_exhaustive_clean;
          Alcotest.test_case "scale scenarios clean under crash (P=2)" `Quick
            t_scale_crash_exhaustive_clean;
          Alcotest.test_case "scale scenarios clean at P=3 (fuzz)" `Quick
            t_scale_fuzz_clean ] );
      ( "replay",
        [ Alcotest.test_case "lu reproduces" `Quick t_replay_reproduces;
          Alcotest.test_case "ocean under SC" `Quick t_replay_sc_mode;
          Alcotest.test_case "lu under net faults" `Quick
            t_replay_under_faults ] )
    ]
