(* Workload-subsystem tests: the Zipfian sampler and its quantile
   compression, the latency-percentile estimator, the plan mirror's
   operation accounting against a real run, the shadow-table oracle,
   and byte-level determinism of the rendered report. *)

open Shasta_workload
module Metrics = Shasta_obs.Metrics
module Apps = Shasta_apps.Apps
module Sht = Shasta_apps.Sht
module Prng = Shasta_prng.Prng

let qtest = Test_support.Support.qtest

(* --- keygen -------------------------------------------------------- *)

let t_zipf_pmf () =
  let z = Keygen.zipf ~n:100 ~theta:0.99 in
  let total = ref 0.0 in
  for k = 0 to 99 do
    total := !total +. Keygen.pmf z k;
    if k > 0 then
      Alcotest.(check bool)
        (Printf.sprintf "pmf decreasing at rank %d" k)
        true
        (Keygen.pmf z k < Keygen.pmf z (k - 1))
  done;
  Alcotest.(check bool) "pmf sums to 1" true (Float.abs (!total -. 1.0) < 1e-9)

let t_zipf_draw () =
  let n = 64 in
  let z = Keygen.zipf ~n ~theta:0.99 in
  Alcotest.(check int) "draw 0 is the hottest rank" 0 (Keygen.draw z 0.0);
  Alcotest.(check bool) "draw near 1 stays in range" true
    (Keygen.draw z 0.999999 < n);
  let prev = ref 0 in
  for i = 0 to 999 do
    let r = Keygen.draw z (float_of_int i /. 1000.0) in
    Alcotest.(check bool)
      (Printf.sprintf "draw monotone at %d" i)
      true (r >= !prev);
    prev := r
  done

let quantile_table_ok ~n ~theta ~quanta =
  let t = Keygen.quantile_table ~n ~theta ~quanta in
  Array.length t = quanta + 1
  && t.(0) = 0
  && t.(quanta) = n
  && Array.for_all (fun r -> r >= 0 && r <= n) t
  &&
  let mono = ref true in
  for q = 1 to quanta do
    if t.(q) < t.(q - 1) then mono := false
  done;
  !mono

let t_quantile_table () =
  Alcotest.(check bool) "zipfian table well formed" true
    (quantile_table_ok ~n:256 ~theta:0.99 ~quanta:256);
  (* a hot head rank spans many quanta: the boundary after rank 0
     stays pinned at 1 while its mass accumulates *)
  let t = Keygen.quantile_table ~n:256 ~theta:0.99 ~quanta:256 in
  Alcotest.(check int) "rank 0 covers several quanta" 1 t.(8);
  (* theta = 0 degenerates to (near-)uniform: every quantum advances *)
  let u = Keygen.quantile_table ~n:256 ~theta:0.0 ~quanta:256 in
  Alcotest.(check bool) "uniform table advances every quantum" true
    (Array.for_all (fun q -> u.(q) > u.(q - 1))
       (Array.init 256 (fun i -> i + 1)))

let t_quantile_table_prop =
  qtest "quantile_table well formed" ~count:50
    QCheck2.Gen.(
      triple (int_range 2 512) (float_bound_exclusive 1.0) (int_range 4 512))
    (fun (n, theta, quanta) -> quantile_table_ok ~n ~theta ~quanta)

(* A PRNG draw must never go negative, whatever the seed — this is the
   regression test for the bits63 sign-wrap bug. *)
let t_prng_int_prop =
  qtest "Prng.int stays in [0, bound)" ~count:500
    QCheck2.Gen.(pair int (int_range 1 max_int))
    (fun (seed, bound) ->
      let rng = Prng.create seed in
      let ok = ref true in
      for _ = 1 to 20 do
        let v = Prng.int rng bound in
        if v < 0 || v >= bound then ok := false
      done;
      !ok)

(* --- percentile estimator ------------------------------------------ *)

let hist ~bounds ~counts ~hmax =
  { Metrics.bounds;
    counts;
    n = Array.fold_left ( + ) 0 counts;
    sum = 0;
    hmax }

let t_percentile () =
  (* 100 observations spread across one bucket (0, 100]: linear ranks *)
  let h = hist ~bounds:[| 100 |] ~counts:[| 100; 0 |] ~hmax:100 in
  Alcotest.(check int) "p50 interpolates" 50 (Metrics.percentile h 50.0);
  Alcotest.(check int) "p100 is the max" 100 (Metrics.percentile h 100.0);
  (* overflow bucket interpolates up to hmax, not infinity *)
  let o = hist ~bounds:[| 100 |] ~counts:[| 0; 10 |] ~hmax:500 in
  Alcotest.(check int) "overflow p50" 300 (Metrics.percentile o 50.0);
  Alcotest.(check int) "overflow p100 is the max" 500
    (Metrics.percentile o 100.0);
  (* fractional percentiles resolve inside a bucket: p99.9 lands above
     p99 instead of collapsing onto the same bucket bound *)
  let f = hist ~bounds:[| 1000 |] ~counts:[| 2000; 0 |] ~hmax:1000 in
  Alcotest.(check int) "p99" 990 (Metrics.percentile f 99.0);
  Alcotest.(check int) "p99.9" 1000 (Metrics.percentile f 99.9);
  Alcotest.(check bool) "p99.9 above p99" true
    (Metrics.percentile f 99.9 > Metrics.percentile f 99.0);
  (* empty histogram *)
  let e = hist ~bounds:[| 10 |] ~counts:[| 0; 0 |] ~hmax:0 in
  Alcotest.(check int) "empty" 0 (Metrics.percentile e 50.0)

(* --- plan mirror vs a real run ------------------------------------- *)

let run_sht ~nprocs =
  let prog = (Apps.find "sht").make Apps.Test in
  let out, _ = Test_support.Support.run ~nprocs prog in
  Report.parse out

let t_plan_accounting () =
  let nprocs = 4 in
  let r = run_sht ~nprocs in
  let plans = Workload.plan Apps.sht_test_wl ~nprocs in
  let gets, puts, dels, scans = Workload.plan_counts plans in
  Alcotest.(check int) "gets" gets r.Report.gets;
  Alcotest.(check int) "puts" puts r.Report.puts;
  Alcotest.(check int) "dels" dels r.Report.dels;
  Alcotest.(check int) "scans" scans r.Report.scans;
  Alcotest.(check int) "total ops" (gets + puts + dels + scans) r.Report.ops;
  Alcotest.(check int) "load ops = nkeys" r.Report.nkeys r.Report.load_ops;
  Array.iter
    (fun (o, _, _) ->
      Alcotest.(check int) "per-node share" (r.Report.ops / nprocs) o)
    r.Report.per_node

let t_mix_shares () =
  List.iter
    (fun m ->
      let rd, up, dl, sc = Workload.shares m in
      Alcotest.(check int)
        ("shares of mix " ^ Workload.mix_name m ^ " sum to 10000")
        10000 (rd + up + dl + sc))
    [ Workload.A; B; C; E; M ]

(* --- end-to-end oracle (exercises every operation via mix M) -------- *)

let t_oracle_mix_m () =
  let wl =
    Workload.spec ~nkeys:128 ~ops:1000 ~mix:Workload.M ~quanta:128
      ~disjoint:true ()
  in
  let cfg = { Sht.nbuckets = 64; slots = 8; handoff = 8 } in
  let prog = Sht.program ~cfg ~wl () in
  List.iter
    (fun nprocs ->
      let out, _ = Test_support.Support.run ~nprocs prog in
      let r = Report.parse out in
      let s = Sht.shadow ~wl ~nprocs () in
      Alcotest.(check int)
        (Printf.sprintf "no violations at %d procs" nprocs)
        0
        (r.Report.errors + r.Report.verify_errors);
      Alcotest.(check int) "oracle precondition: no dropped inserts" 0
        r.Report.overflows;
      Alcotest.(check int)
        (Printf.sprintf "population at %d procs" nprocs)
        s.Sht.s_population r.Report.population;
      Alcotest.(check bool)
        (Printf.sprintf "checksum at %d procs" nprocs)
        true
        (r.Report.checksum = s.Sht.s_checksum))
    [ 1; 2; 4 ]

(* --- determinism ---------------------------------------------------- *)

let t_determinism () =
  let render r = Report.render ~label:"det" r in
  let a = render (run_sht ~nprocs:2) in
  let b = render (run_sht ~nprocs:2) in
  Alcotest.(check string) "same seed, byte-identical report" a b;
  let p1 = Workload.plan Apps.sht_test_wl ~nprocs:4 in
  let p2 = Workload.plan Apps.sht_test_wl ~nprocs:4 in
  Alcotest.(check bool) "plan is reproducible" true (p1 = p2)

let () =
  Alcotest.run "workload"
    [ ( "keygen",
        [ Alcotest.test_case "zipf pmf" `Quick t_zipf_pmf;
          Alcotest.test_case "zipf draw" `Quick t_zipf_draw;
          Alcotest.test_case "quantile table" `Quick t_quantile_table;
          t_quantile_table_prop;
          t_prng_int_prop ] );
      ( "metrics",
        [ Alcotest.test_case "percentile" `Quick t_percentile ] );
      ( "driver",
        [ Alcotest.test_case "plan accounting" `Quick t_plan_accounting;
          Alcotest.test_case "mix shares" `Quick t_mix_shares;
          Alcotest.test_case "oracle mix m" `Quick t_oracle_mix_m;
          Alcotest.test_case "determinism" `Quick t_determinism ] )
    ]
