(* A guided protocol trace: two processors exchange one block, printing
   every message from the typed observability stream.  Shows the
   paper's protocol economics directly: a dirty read is served by the
   owner without updating the home, an upgrade carries no data,
   invalidation acks go straight to the requester. *)

open Shasta_minic.Builder
open Shasta_runtime
module Obs = Shasta_obs.Obs
module Event = Shasta_obs.Event
module Sink = Shasta_obs.Sink
module Metrics = Shasta_obs.Metrics

let program =
  prog
    ~globals:[ ("x", I) ]
    [ proc "appinit" [ gset "x" (Gmalloc_b (i 64, i 64)) ];
      proc "work"
        [ (* 1: processor 1 writes the block (read-exclusive miss) *)
          when_ (Pid ==% i 1) [ sti (g "x") (i 0) (i 111) ];
          barrier;
          (* 2: processor 0 reads it (forwarded to the dirty owner) *)
          let_i "a" (ldi (g "x") (i 0));
          barrier;
          (* 3: processor 1 writes again (upgrade, no data transfer) *)
          when_ (Pid ==% i 1) [ sti (g "x") (i 0) (i 222) ];
          barrier;
          when_ (Pid ==% i 0) [ print_int (v "a" +% ldi (g "x") (i 0)) ]
        ]
    ]

let () =
  print_endline "protocol messages (cycle, sender, kind @block):";
  (* capture the typed event stream in a ring buffer and render the
     interesting records ourselves — the stream carries structured
     fields, not preformatted strings *)
  let obs = Obs.create ~nprocs:2 () in
  let ring = Sink.ring ~capacity:65536 in
  Obs.attach obs (Sink.ring_sink ring);
  (* a profiler on the same stream attributes the misses to code sites
     and folds request/reply pairs into latency spans *)
  let prof = Obs.Profile.create ~nprocs:2 () in
  Obs.attach_profiler obs prof;
  let spec = { (Api.default_spec program) with nprocs = 2; obs = Some obs } in
  let r = Api.run spec in
  List.iter
    (fun (rec_ : Event.record) ->
      match rec_.ev with
      | Event.Msg_send _ ->
        Printf.printf "  %8d n%d %s\n" rec_.time rec_.node
          (Event.describe rec_.ev)
      | _ -> ())
    (Sink.ring_contents ring);
  Printf.printf "program output (111 + 222): %s" r.phase.output;
  (* the registry aggregates the same stream into counters *)
  let reg = Obs.metrics obs in
  Printf.printf
    "registry: %d messages, misses rd=%d wr=%d up=%d, %d invalidation(s)\n"
    (Metrics.counter_total reg Obs.c_msg_sent)
    (Metrics.counter_total reg Obs.c_miss_read)
    (Metrics.counter_total reg Obs.c_miss_write)
    (Metrics.counter_total reg Obs.c_miss_upgrade)
    (Metrics.counter_total reg Obs.c_invals);
  (* top miss sites, named fn:line through the frozen image *)
  let image = r.state.State.image in
  print_endline "hot sites (top 5):";
  List.iteri
    (fun i ((proc, pc), (s : Obs.Profile.site_stats)) ->
      if i < 5 then
        Printf.printf "  %-12s rd=%d wr=%d up=%d false=%d stall=%d cyc\n"
          (Image.site_name image ~proc ~pc)
          s.n_read s.n_write s.n_upgrade s.n_false s.stall_cycles)
    (Obs.Profile.sites prof);
  (* one transaction span: the whole remote round trip at one site *)
  (match Obs.Profile.spans prof with
   | sp :: _ ->
     Printf.printf
       "first span: n%d %s @0x%x, %d cycles request-to-reply\n"
       sp.sp_node sp.sp_kind sp.sp_addr sp.sp_dur
   | [] -> ());
  Printf.printf "spans matched: %d (unmatched: %d)\n"
    (Obs.Profile.span_count prof)
    (List.length (Obs.Profile.unmatched prof));
  print_endline
    "Things to observe above:\n\
     - the first write: read_req->readex path with a data reply;\n\
     - the read: home forwards to the dirty owner, who answers the\n\
       requester directly (dirty sharing - no message back to home);\n\
     - the second write: upgrade_req/upgrade_ack with no block payload;\n\
     - invalidation acks travel straight to the requester."
