test/support/support.ml: Alcotest Api QCheck2 QCheck_alcotest Shasta Shasta_minic Shasta_network Shasta_runtime
