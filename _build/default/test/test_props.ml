(* Property-based tests (qcheck): memory model vs a reference map,
   instruction semantics, granularity algebra, network FIFO order, and
   randomized data-race-free parallel programs whose results must match
   an OCaml model exactly. *)

open QCheck2

let qtest name ?(count = 100) gen prop =
  QCheck_alcotest.to_alcotest (Test.make ~name ~count gen prop)

(* --- memory vs model ------------------------------------------------ *)

let mem_ops_gen =
  let addr = Gen.map (fun a -> a * 4) (Gen.int_range 0 4095) in
  let op =
    Gen.oneof
      [ Gen.map2 (fun a v -> `Long (a, v land 0xFFFFFFFF)) addr
          (Gen.int_bound 0x3FFFFFFF);
        Gen.map2
          (fun a v -> `Quad (a land lnot 7, v - 0x20000000))
          addr (Gen.int_bound 0x3FFFFFFF);
        Gen.map2 (fun a v -> `Byte (a, v land 0xFF)) addr (Gen.int_bound 255)
      ]
  in
  Gen.list_size (Gen.int_range 1 200) op

let prop_memory_model ops =
  let m = Shasta_machine.Memory.create () in
  let model = Hashtbl.create 64 in
  (* model at byte granularity *)
  let model_get a =
    match Hashtbl.find_opt model a with Some v -> v | None -> 0
  in
  let model_set_long a v =
    for k = 0 to 3 do
      Hashtbl.replace model (a + k) ((v lsr (8 * k)) land 0xFF)
    done
  in
  List.iter
    (fun op ->
      match op with
      | `Long (a, v) ->
        Shasta_machine.Memory.write_long_u m a v;
        model_set_long a v
      | `Quad (a, v) ->
        Shasta_machine.Memory.write_quad m a v;
        model_set_long a (v land 0xFFFFFFFF);
        model_set_long (a + 4) ((v asr 32) land 0xFFFFFFFF)
      | `Byte (a, v) ->
        Shasta_machine.Memory.write_byte m a v;
        Hashtbl.replace model a v)
    ops;
  (* every byte agrees *)
  List.for_all
    (fun op ->
      let a =
        match op with `Long (a, _) | `Quad (a, _) | `Byte (a, _) -> a
      in
      Shasta_machine.Memory.read_byte m a = model_get a)
    ops

(* --- instruction semantics ------------------------------------------ *)

let gen_int_pm = Gen.int_range (-1000000) 1000000

let prop_addl_sign_extends (a, b) =
  let r = Shasta_runtime.Exec.eval_iop Shasta_isa.Insn.Addl a b in
  r >= -0x80000000 && r <= 0x7FFFFFFF
  && (r - (a + b)) mod 0x1_0000_0000 = 0

let prop_div_rem (a, b) =
  let b = if b = 0 then 1 else b in
  let q = Shasta_runtime.Exec.eval_iop Shasta_isa.Insn.Divq a b in
  let r = Shasta_runtime.Exec.eval_iop Shasta_isa.Insn.Remq a b in
  (q * b) + r = a && abs r < abs b

let prop_cmp_trichotomy (a, b) =
  let v op = Shasta_runtime.Exec.eval_iop op a b in
  let lt = v Shasta_isa.Insn.Cmplt
  and eq = v Shasta_isa.Insn.Cmpeq
  and le = v Shasta_isa.Insn.Cmple in
  le = (lt lor eq) && lt land eq = 0

let prop_shifts (a, n) =
  let n = n land 63 in
  let a = abs a in
  Shasta_runtime.Exec.eval_iop Shasta_isa.Insn.Srl a n = a lsr n
  && Shasta_runtime.Exec.eval_iop Shasta_isa.Insn.Sll a n = a lsl n

(* --- granularity algebra -------------------------------------------- *)

let prop_legalize size =
  let g = Shasta_protocol.Granularity.create ~line_bytes:64 () in
  let b = Shasta_protocol.Granularity.legalize g size in
  b >= 64 && b <= 8192 && b land (b - 1) = 0

let prop_heuristic size =
  let g = Shasta_protocol.Granularity.create ~line_bytes:64 () in
  let b = Shasta_protocol.Granularity.heuristic_block g ~size in
  if size > 1024 then b = 64 else b >= 64 && b >= min size 64

let prop_block_base addr_and_size =
  let page, off, bsize_pow = addr_and_size in
  let g = Shasta_protocol.Granularity.create ~line_bytes:64 () in
  let bsize = 64 lsl bsize_pow in
  Shasta_protocol.Granularity.set_page_block g ~page ~block_bytes:bsize;
  let addr = (page * 8192) + off in
  let base = Shasta_protocol.Granularity.block_base g addr in
  base mod bsize = 0 && base <= addr && addr < base + bsize

(* --- network FIFO ---------------------------------------------------- *)

let prop_network_fifo payloads =
  let net =
    Shasta_network.Network.create ~nprocs:2
      Shasta_network.Network.memory_channel
  in
  List.iteri
    (fun k p ->
      ignore
        (Shasta_network.Network.send net ~src:0 ~dst:1 ~now:(k * 3)
           ~payload_longs:p k))
    payloads;
  let rec drain acc =
    match Shasta_network.Network.recv net ~dst:1 ~now:max_int with
    | Some (_, m) -> drain (m :: acc)
    | None -> List.rev acc
  in
  drain [] = List.mapi (fun k _ -> k) payloads

(* --- randomized data-race-free parallel programs --------------------- *)

(* Each round: every processor writes a random value into each of its
   own slots, barrier, every processor reads a random selection of all
   slots into a private accumulator, barrier.  At the end each
   accumulator lands in a per-processor result slot and processor 0
   prints them all.  Any stale read, lost write, or protocol violation
   changes the output.  The OCaml model computes the expected result. *)
type rw_case = {
  nprocs : int;
  slots_per : int;
  rounds : (int array * int array) list;
      (* (value per slot owner-major, reads: slot index per processor) *)
}

let rw_gen =
  let open Gen in
  int_range 2 4 >>= fun nprocs ->
  int_range 1 3 >>= fun slots_per ->
  let nslots = nprocs * slots_per in
  list_size (int_range 1 4)
    (pair
       (array_size (return nslots) (int_bound 1000))
       (array_size (return (nprocs * 2)) (int_bound (nslots - 1))))
  >>= fun rounds -> return { nprocs; slots_per; rounds }

let build_rw_program c =
  let open Shasta_minic.Builder in
  let nslots = c.nprocs * c.slots_per in
  let work =
    [ let_i "acc" (i 0) ]
    @ List.concat_map
        (fun (values, reads) ->
          (* writes: each processor updates its own slots *)
          List.concat
            (List.init c.nprocs (fun p ->
                 [ Shasta_minic.Ast.If
                     ( Shasta_minic.Ast.Bin (Eq, Pid, i p),
                       List.init c.slots_per (fun k ->
                           let slot = (p * c.slots_per) + k in
                           sti (g "data") (i slot) (i values.(slot))),
                       [] )
                 ]))
          @ [ barrier ]
          @ (* reads: processor p reads its two assigned slots *)
          List.concat
            (List.init c.nprocs (fun p ->
                 [ Shasta_minic.Ast.If
                     ( Shasta_minic.Ast.Bin (Eq, Pid, i p),
                       [ set "acc"
                           (v "acc"
                            +% ldi (g "data") (i reads.((2 * p)))
                            +% ldi (g "data") (i reads.((2 * p) + 1)));
                         set "acc" (v "acc" %% i 1000003)
                       ],
                       [] )
                 ]))
          @ [ barrier ])
        c.rounds
    @ [ sti (g "res") Pid (v "acc");
        barrier;
        when_ (Pid ==% i 0)
          [ for_ "p" (i 0) Nprocs [ print_int (ldi (g "res") (v "p")) ] ]
      ]
  in
  prog
    ~globals:[ ("data", I); ("res", I) ]
    [ proc "appinit"
        [ gset "data" (Gmalloc (i (8 * nslots)));
          gset "res" (Gmalloc_b (i (8 * c.nprocs), i 64)) ];
      proc "work" work
    ]

let model_rw c =
  let nslots = c.nprocs * c.slots_per in
  let data = Array.make nslots 0 in
  let acc = Array.make c.nprocs 0 in
  List.iter
    (fun (values, reads) ->
      Array.blit values 0 data 0 nslots;
      for p = 0 to c.nprocs - 1 do
        acc.(p) <-
          (acc.(p) + data.(reads.(2 * p)) + data.(reads.((2 * p) + 1)))
          mod 1000003
      done)
    c.rounds;
  String.concat "" (List.init c.nprocs (fun p -> string_of_int acc.(p) ^ "\n"))

let prop_drf_program c =
  let p = build_rw_program c in
  let got, _ = Test_support.Support.run ~nprocs:c.nprocs p in
  got = model_rw c

(* the same programs over the slower network and with 128-byte lines *)
let prop_drf_program_atm c =
  let p = build_rw_program c in
  let got, _ =
    Test_support.Support.run ~nprocs:c.nprocs
      ~net:Shasta_network.Network.atm p
  in
  got = model_rw c

let () =
  Alcotest.run "props"
    [ ( "memory",
        [ qtest "memory agrees with byte model" ~count:100 mem_ops_gen
            prop_memory_model ] );
      ( "semantics",
        [ qtest "addl sign extension" ~count:200
            (Gen.pair gen_int_pm gen_int_pm)
            prop_addl_sign_extends;
          qtest "div/rem identity" ~count:200
            (Gen.pair gen_int_pm gen_int_pm)
            prop_div_rem;
          qtest "comparison trichotomy" ~count:200
            (Gen.pair gen_int_pm gen_int_pm)
            prop_cmp_trichotomy;
          qtest "logical shifts" ~count:200
            (Gen.pair gen_int_pm (Gen.int_bound 63))
            prop_shifts ] );
      ( "granularity",
        [ qtest "legalize" ~count:200 (Gen.int_range 1 100000) prop_legalize;
          qtest "heuristic" ~count:200 (Gen.int_range 1 100000) prop_heuristic;
          qtest "block base" ~count:200
            Gen.(triple (int_range 0 1000) (int_range 0 8191) (int_range 0 7))
            prop_block_base ] );
      ( "network",
        [ qtest "fifo order" ~count:100
            Gen.(list_size (int_range 1 30) (int_bound 200))
            prop_network_fifo ] );
      ( "coherence",
        [ qtest "random DRF programs match the model" ~count:40 rw_gen
            prop_drf_program;
          qtest "random DRF programs over ATM" ~count:15 rw_gen
            prop_drf_program_atm ] )
    ]
