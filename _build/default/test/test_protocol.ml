(* Protocol component tests: directory bookkeeping, granularity tables,
   message metadata, network ordering. *)

open Shasta_protocol

(* --- directory ------------------------------------------------------ *)

let t_dir_homes () =
  let d = Directory.create ~nprocs:4 () in
  Alcotest.(check int) "round robin page 0" 0 (Directory.home_of d 0);
  Alcotest.(check int) "round robin page 1" 1 (Directory.home_of d 8192);
  Alcotest.(check int) "round robin wraps" 0 (Directory.home_of d (4 * 8192));
  Directory.set_home d ~page:2 ~home:3;
  Alcotest.(check int) "explicit placement" 3
    (Directory.home_of d (2 * 8192));
  Alcotest.check_raises "home must exist" (Invalid_argument "Directory.set_home")
    (fun () -> Directory.set_home d ~page:0 ~home:7)

let t_dir_entries () =
  let d = Directory.create ~nprocs:4 () in
  Directory.add_block d ~block:0x1000 ~owner:2;
  let e = Directory.entry d 0x1000 in
  Alcotest.(check int) "owner" 2 e.owner;
  Alcotest.(check bool) "owner is sharer" true (Directory.is_sharer e 2);
  Directory.add_sharer e 0;
  Directory.add_sharer e 3;
  Alcotest.(check int) "sharer count" 3 (Directory.sharer_count e);
  Alcotest.(check (list int)) "sharer list" [ 0; 2; 3 ]
    (Directory.sharer_list e ~nprocs:4);
  Directory.remove_sharer e 2;
  Alcotest.(check bool) "removed" false (Directory.is_sharer e 2);
  Alcotest.(check bool) "unallocated block rejected" true
    (try ignore (Directory.entry d 0x2000); false
     with Invalid_argument _ -> true)

(* --- granularity ---------------------------------------------------- *)

let t_gran_heuristic () =
  let g = Granularity.create ~line_bytes:64 () in
  (* small objects: block = rounded object size (Section 4.2) *)
  Alcotest.(check int) "tiny object" 64 (Granularity.heuristic_block g ~size:8);
  Alcotest.(check int) "100-byte object" 128
    (Granularity.heuristic_block g ~size:100);
  Alcotest.(check int) "1KB object" 1024
    (Granularity.heuristic_block g ~size:1024);
  (* large objects fall back to the line size *)
  Alcotest.(check int) "big array" 64
    (Granularity.heuristic_block g ~size:100_000)

let t_gran_legalize () =
  let g = Granularity.create ~line_bytes:64 () in
  Alcotest.(check int) "round to power of two" 256 (Granularity.legalize g 200);
  Alcotest.(check int) "at least a line" 64 (Granularity.legalize g 1);
  Alcotest.(check int) "at most a page" 8192 (Granularity.legalize g 100_000)

let t_gran_block_map () =
  let g = Granularity.create ~line_bytes:64 () in
  Granularity.set_page_block g ~page:10 ~block_bytes:512;
  let addr = (10 * 8192) + 1000 in
  Alcotest.(check int) "block bytes" 512 (Granularity.block_bytes_at g addr);
  Alcotest.(check int) "block base" ((10 * 8192) + 512)
    (Granularity.block_base g addr);
  Alcotest.(check int) "lines per block" 8 (Granularity.lines_per_block g addr);
  (* unset pages default to line-sized blocks *)
  Alcotest.(check int) "default" 64 (Granularity.block_bytes_at g 0);
  Alcotest.(check bool) "conflicting resize rejected" true
    (try Granularity.set_page_block g ~page:10 ~block_bytes:64; false
     with Invalid_argument _ -> true)

(* --- messages ------------------------------------------------------- *)

let t_message_payloads () =
  let mk kind = { Message.src = 0; addr = 0x1000; kind } in
  let data = Array.make 16 0 in
  Alcotest.(check bool) "data reply carries the block" true
    (Message.payload_longs
       (mk (Coh (Data_reply { data; exclusive = true; acks = 0 })))
     > Message.payload_longs (mk (Coh Read_req)));
  Alcotest.(check bool) "describe mentions kind" true
    (String.length (Message.describe (mk (Coh Read_req))) > 0)

(* --- network -------------------------------------------------------- *)

let t_net_fifo () =
  let net = Shasta_network.Network.create ~nprocs:2
      Shasta_network.Network.ideal in
  (* a big message sent first must still arrive first (point-to-point
     order, which the protocol depends on) *)
  ignore
    (Shasta_network.Network.send net ~src:0 ~dst:1 ~now:0 ~payload_longs:1000
       "big");
  ignore
    (Shasta_network.Network.send net ~src:0 ~dst:1 ~now:1 ~payload_longs:0
       "small");
  let t1, m1 =
    Option.get (Shasta_network.Network.recv net ~dst:1 ~now:max_int)
  in
  let t2, m2 =
    Option.get (Shasta_network.Network.recv net ~dst:1 ~now:max_int)
  in
  Alcotest.(check string) "fifo first" "big" m1;
  Alcotest.(check string) "fifo second" "small" m2;
  Alcotest.(check bool) "delivery times monotone" true (t2 >= t1)

let t_net_costs () =
  let mc = Shasta_network.Network.memory_channel
  and atm = Shasta_network.Network.atm in
  Alcotest.(check bool) "atm slower than memory channel" true
    (atm.wire_latency > mc.wire_latency
     && atm.recv_overhead > mc.recv_overhead);
  let net = Shasta_network.Network.create ~nprocs:2 mc in
  let done_at =
    Shasta_network.Network.send net ~src:0 ~dst:1 ~now:100 ~payload_longs:16
      "m"
  in
  Alcotest.(check int) "sender pays the send overhead"
    (100 + mc.send_overhead) done_at;
  Alcotest.(check bool) "not deliverable before latency" true
    (Shasta_network.Network.recv net ~dst:1 ~now:(100 + mc.send_overhead)
     = None);
  Alcotest.(check int) "in flight" 1 (Shasta_network.Network.in_flight net)

let t_net_next_arrival () =
  let net = Shasta_network.Network.create ~nprocs:2
      Shasta_network.Network.ideal in
  Alcotest.(check (option int)) "empty" None
    (Shasta_network.Network.next_arrival net ~dst:1);
  ignore
    (Shasta_network.Network.send net ~src:0 ~dst:1 ~now:5 ~payload_longs:0 "x");
  Alcotest.(check bool) "arrival known" true
    (Shasta_network.Network.next_arrival net ~dst:1 <> None)

let () =
  Alcotest.run "protocol"
    [ ( "directory",
        [ Alcotest.test_case "homes" `Quick t_dir_homes;
          Alcotest.test_case "entries" `Quick t_dir_entries ] );
      ( "granularity",
        [ Alcotest.test_case "heuristic" `Quick t_gran_heuristic;
          Alcotest.test_case "legalize" `Quick t_gran_legalize;
          Alcotest.test_case "block map" `Quick t_gran_block_map ] );
      ("messages", [ Alcotest.test_case "payloads" `Quick t_message_payloads ]);
      ( "network",
        [ Alcotest.test_case "fifo order" `Quick t_net_fifo;
          Alcotest.test_case "cost model" `Quick t_net_costs;
          Alcotest.test_case "next arrival" `Quick t_net_next_arrival ] )
    ]
