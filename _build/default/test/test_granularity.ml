(* Allocation and coherence-granularity behavior at the system level:
   the size heuristic, the explicit block-size malloc, page pooling,
   fixed-block override, and whole-block transfer. *)

open Shasta_minic.Builder
open Shasta_runtime

let prepare ?fixed_block ~nprocs prog =
  let spec = { (Api.default_spec prog) with nprocs; fixed_block } in
  let state, _, _ = Api.prepare spec in
  state

let heap = Shasta_runtime.State.shared_heap_start

let t_heuristic_applied () =
  (* a 256-byte object gets a 256-byte block; a large array gets
     line-sized blocks (Section 4.2) *)
  let p =
    prog ~globals:[ ("small", I); ("big", I) ]
      [ proc "appinit"
          [ gset "small" (Gmalloc (i 256)); gset "big" (Gmalloc (i 65536)) ];
        proc "work" [ print_int (i 0) ]
      ]
  in
  let state = prepare ~nprocs:2 p in
  ignore (Cluster.run_app state);
  Alcotest.(check int) "small object one block" 256
    (Shasta_protocol.Granularity.block_bytes_at state.gran heap);
  (* the big array went to fresh pages after the pool page *)
  let big_addr = heap + 8192 in
  Alcotest.(check int) "big array line blocks" 64
    (Shasta_protocol.Granularity.block_bytes_at state.gran big_addr)

let t_explicit_block_size () =
  let p =
    prog ~globals:[ ("a", I) ]
      [ proc "appinit" [ gset "a" (Gmalloc_b (i 4096, i 1024)) ];
        proc "work" [ print_int (i 0) ]
      ]
  in
  let state = prepare ~nprocs:2 p in
  ignore (Cluster.run_app state);
  Alcotest.(check int) "programmer-chosen block size" 1024
    (Shasta_protocol.Granularity.block_bytes_at state.gran heap)

let t_fixed_block_override () =
  let p =
    prog ~globals:[ ("a", I) ]
      [ proc "appinit" [ gset "a" (Gmalloc (i 256)) ];
        proc "work" [ print_int (i 0) ]
      ]
  in
  let state = prepare ~fixed_block:512 ~nprocs:2 p in
  ignore (Cluster.run_app state);
  Alcotest.(check int) "ablation override" 512
    (Shasta_protocol.Granularity.block_bytes_at state.gran heap)

let t_pool_separates_block_sizes () =
  (* allocations with different block sizes never share a page *)
  let p =
    prog ~globals:[ ("a", I); ("b", I); ("c", I) ]
      [ proc "appinit"
          [ gset "a" (Gmalloc_b (i 128, i 128));
            gset "b" (Gmalloc_b (i 128, i 512));
            gset "c" (Gmalloc_b (i 128, i 128)) ];
        proc "work"
          [ print_int (g "a" /% i 8192);
            print_int (g "b" /% i 8192);
            print_int (g "c" /% i 8192) ]
      ]
  in
  let state = prepare ~nprocs:1 p in
  let ph = Cluster.run_app state in
  match String.split_on_char '\n' (String.trim ph.output) with
  | [ pa; pb; pc ] ->
    Alcotest.(check bool) "different sizes on different pages" true (pa <> pb);
    Alcotest.(check string) "same size shares its page" pa pc
  | _ -> Alcotest.fail "unexpected output"

let t_whole_block_transfer () =
  (* with a 512-byte block, reading one word moves all 8 lines: the
     other words are then local hits (one read miss total) *)
  let p =
    prog ~globals:[ ("a", I) ]
      [ proc "appinit"
          [ gset "a" (Gmalloc_b (i 512, i 512));
            for_ "k" (i 0) (i 64) [ sti (g "a") (v "k") (v "k") ] ];
        proc "work"
          [ when_ (Pid ==% i 1)
              [ let_i "s" (i 0);
                for_ "k" (i 0) (i 64)
                  [ set "s" (v "s" +% ldi (g "a") (v "k")) ];
                sti (g "a") (i 0) (v "s") ];
            barrier;
            when_ (Pid ==% i 0) [ print_int (ldi (g "a") (i 0)) ] ]
      ]
  in
  let state = prepare ~nprocs:2 p in
  let ph = Cluster.run_app state in
  Alcotest.(check string) "sum correct" "2016\n" ph.output;
  let c1 = state.nodes.(1).counters in
  Alcotest.(check int) "single read miss for 8 lines" 1 c1.read_misses

let t_fine_blocks_more_misses () =
  (* the same scan with 64-byte blocks takes 8 read misses *)
  let p =
    prog ~globals:[ ("a", I) ]
      [ proc "appinit"
          [ gset "a" (Gmalloc_b (i 512, i 64));
            for_ "k" (i 0) (i 64) [ sti (g "a") (v "k") (v "k") ] ];
        proc "work"
          [ when_ (Pid ==% i 1)
              [ let_i "s" (i 0);
                for_ "k" (i 0) (i 64)
                  [ set "s" (v "s" +% ldi (g "a") (v "k")) ];
                sti (g "a") (i 0) (v "s") ];
            barrier;
            when_ (Pid ==% i 0) [ print_int (ldi (g "a") (i 0)) ] ]
      ]
  in
  let state = prepare ~nprocs:2 p in
  let ph = Cluster.run_app state in
  Alcotest.(check string) "sum correct" "2016\n" ph.output;
  Alcotest.(check int) "one miss per line" 8 state.nodes.(1).counters.read_misses

let t_line_128 () =
  (* the other line size the paper configures *)
  let p = Shasta_apps.Ocean.program ~n:18 ~iters:2 () in
  let expected = Test_support.Support.ground_truth p in
  let opts = { Shasta.Opts.full with line_shift = 7 } in
  let got, _ = Test_support.Support.run ~opts:(Some opts) ~nprocs:4 p in
  Alcotest.(check string) "128-byte lines correct in parallel" expected got

let () =
  Alcotest.run "granularity"
    [ ( "allocation",
        [ Alcotest.test_case "size heuristic" `Quick t_heuristic_applied;
          Alcotest.test_case "explicit block size" `Quick
            t_explicit_block_size;
          Alcotest.test_case "fixed-block override" `Quick
            t_fixed_block_override;
          Alcotest.test_case "page pooling" `Quick t_pool_separates_block_sizes
        ] );
      ( "coherence unit",
        [ Alcotest.test_case "whole-block transfer" `Quick
            t_whole_block_transfer;
          Alcotest.test_case "fine blocks miss per line" `Quick
            t_fine_blocks_more_misses;
          Alcotest.test_case "128-byte lines" `Quick t_line_128 ] )
    ]
