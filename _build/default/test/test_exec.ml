(* Interpreter semantics: each instruction class executed directly
   through a one-node cluster built around a hand-written executable. *)

open Shasta_isa
open Shasta_runtime

(* Build a one-node state around a raw procedure and run it. *)
let run_raw body =
  let compiled =
    Shasta_minic.Compile.compile
      (Shasta_minic.Builder.prog [ Shasta_minic.Builder.proc "work" [] ])
  in
  let program =
    Program.validate
      { Program.procs =
          [ { pname = "work"; body } ];
        entry = "work" }
  in
  let config = State.default_config ~nprocs:1 () in
  let state = Cluster.create ~config ~compiled:{ compiled with program } () in
  let node = state.nodes.(0) in
  Cluster.reset_node_for state node ~proc:"work";
  Cluster.run_until_done state;
  node

let reg node r = node.Node.regs.(r)
let freg node f = node.Node.fregs.(f)

let li d n : Insn.t = Lda (d, n, Reg.zero)

let t_alu () =
  let node =
    run_raw
      [ li 1 20; li 2 22;
        Opi (Addq, 3, Reg 2, 1);
        Opi (Subq, 4, Reg 1, 2);
        Opi (Mulq, 5, Reg 1, 2);
        Opi (And_, 6, Imm 0xF, 1);
        Opi (Or_, 7, Imm 0x40, 1);
        Opi (Xor_, 8, Reg 1, 1);
        Opi (Sll, 9, Imm 3, 1);
        Opi (Srl, 10, Imm 2, 1);
        Opi (Sra, 11, Imm 1, 4);
        Ret ]
  in
  Alcotest.(check int) "addq" 42 (reg node 3);
  Alcotest.(check int) "subq" 2 (reg node 4);
  Alcotest.(check int) "mulq" 440 (reg node 5);
  Alcotest.(check int) "and" 4 (reg node 6);
  Alcotest.(check int) "or" 84 (reg node 7);
  Alcotest.(check int) "xor" 0 (reg node 8);
  Alcotest.(check int) "sll" 160 (reg node 9);
  Alcotest.(check int) "srl" 5 (reg node 10);
  Alcotest.(check int) "sra negative" 1 (reg node 11)

let t_addl_wraps () =
  let node =
    run_raw
      [ li 1 0x7FFFFFFF; li 2 1; Opi (Addl, 3, Reg 2, 1); Ret ]
  in
  Alcotest.(check int) "addl wraps to negative" (-0x80000000) (reg node 3)

let t_compares_and_branches () =
  let node =
    run_raw
      [ li 1 5; li 2 9;
        Opi (Cmplt, 3, Reg 2, 1);
        Opi (Cmpeq, 4, Reg 2, 1);
        Bc (Ne, 3, "taken");
        li 5 111; (* skipped *)
        Lab "taken";
        li 6 222;
        Ret ]
  in
  Alcotest.(check int) "cmplt true" 1 (reg node 3);
  Alcotest.(check int) "cmpeq false" 0 (reg node 4);
  Alcotest.(check int) "branch skipped the load" 0 (reg node 5);
  Alcotest.(check int) "fallthrough executed" 222 (reg node 6)

let t_memory_ops () =
  let sp = Reg.sp in
  let node =
    run_raw
      [ li 1 0x12345678;
        Stq (1, -16, sp);
        Ldq (2, -16, sp);
        Ldl (3, -16, sp);
        Stl (1, -8, sp);
        Ldl (4, -8, sp);
        Ldq_u (5, -13, sp); (* unaligned: rounds down to -16 *)
        Ret ]
  in
  Alcotest.(check int) "stq/ldq" 0x12345678 (reg node 2);
  Alcotest.(check int) "ldl low longword" 0x12345678 (reg node 3);
  Alcotest.(check int) "stl/ldl" 0x12345678 (reg node 4);
  Alcotest.(check int) "ldq_u aligns" 0x12345678 (reg node 5)

let t_extbl () =
  let node =
    run_raw
      [ li 1 0x0403_0201;
        Stl (1, -8, Reg.sp);
        Lda (2, -6, Reg.sp); (* byte 2 of the longword *)
        Ldq_u (3, 0, 2);
        Extbl (4, 3, 2);
        Ret ]
  in
  Alcotest.(check int) "extbl picks byte (addr & 7)" 3 (reg node 4)

let t_float_ops () =
  let node =
    run_raw
      [ li 1 7;
        Cvtqt (1, 1);
        Opf (Addt, 2, 1, 1);
        Opf (Mult, 3, 2, 1);
        Opf (Sqrtt, 4, 3, Reg.fzero);
        Opf (Cmptlt, 5, 1, 2);
        Cvttq (2, 6);
        Ret ]
  in
  Alcotest.(check (float 1e-9)) "cvtqt+addt" 14.0 (freg node 2);
  Alcotest.(check (float 1e-9)) "mult" 98.0 (freg node 3);
  Alcotest.(check (float 1e-9)) "sqrtt" (sqrt 98.0) (freg node 4);
  Alcotest.(check (float 0.0)) "cmptlt true is 1.0" 1.0 (freg node 5);
  Alcotest.(check int) "cvttq truncates" 14 (reg node 6)

let t_fp_branches () =
  let node =
    run_raw
      [ Opf (Subt, 1, 1, 1); (* f1 = 0.0 *)
        Fbne (1, "no");
        li 2 1;
        Lab "no";
        Fbeq (1, "yes");
        li 3 999; (* skipped *)
        Lab "yes";
        Ret ]
  in
  Alcotest.(check int) "fbne not taken on zero" 1 (reg node 2);
  Alcotest.(check int) "fbeq taken on zero" 0 (reg node 3)

let t_call_ret () =
  let compiled =
    Shasta_minic.Compile.compile
      (Shasta_minic.Builder.prog [ Shasta_minic.Builder.proc "work" [] ])
  in
  let program =
    Program.validate
      { Program.procs =
          [ { pname = "work"; body = [ li 1 5; Jsr "callee"; li 3 30; Ret ] };
            { pname = "callee";
              body = [ Opi (Addq, 2, Imm 7, 1); Ret ] } ];
        entry = "work" }
  in
  let config = State.default_config ~nprocs:1 () in
  let state = Cluster.create ~config ~compiled:{ compiled with program } () in
  let node = state.nodes.(0) in
  Cluster.reset_node_for state node ~proc:"work";
  Cluster.run_until_done state;
  Alcotest.(check int) "callee ran" 12 (reg node 2);
  Alcotest.(check int) "control returned" 30 (reg node 3)

let t_zero_register () =
  let node = run_raw [ li Reg.zero 42; Opi (Addq, 1, Imm 1, Reg.zero); Ret ] in
  Alcotest.(check int) "writes to r31 discarded" 1 (reg node 1)

let t_div_by_zero_detected () =
  Alcotest.check_raises "division by zero is a simulation error"
    (Exec.Sim_error "integer division by zero")
    (fun () ->
      ignore (run_raw [ li 1 1; li 2 0; Opi (Divq, 3, Reg 2, 1); Ret ]))

let () =
  Alcotest.run "exec"
    [ ( "semantics",
        [ Alcotest.test_case "integer alu" `Quick t_alu;
          Alcotest.test_case "addl wraps" `Quick t_addl_wraps;
          Alcotest.test_case "compares/branches" `Quick
            t_compares_and_branches;
          Alcotest.test_case "memory ops" `Quick t_memory_ops;
          Alcotest.test_case "extbl" `Quick t_extbl;
          Alcotest.test_case "float ops" `Quick t_float_ops;
          Alcotest.test_case "fp branches" `Quick t_fp_branches;
          Alcotest.test_case "call/ret" `Quick t_call_ret;
          Alcotest.test_case "zero register" `Quick t_zero_register;
          Alcotest.test_case "div by zero" `Quick t_div_by_zero_detected ] )
    ]
