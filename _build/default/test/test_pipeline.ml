(* Timing-model tests: the pipeline features the paper's overhead
   analysis depends on — dual issue, load-use and shift-use delays,
   static branch prediction, the single memory port. *)

open Shasta_isa
open Shasta_machine

let issue_seq ?(config = Pipeline.alpha_21064a) insns =
  let p = Pipeline.create config in
  List.iter
    (fun i -> Pipeline.issue p i ~iaddr:0 ~maddr:None ~branch:Pipeline.B_none)
    insns;
  Pipeline.cycle p

let add d a b : Insn.t = Opi (Addq, d, Reg a, b)
let shift d a : Insn.t = Opi (Srl, d, Imm 6, a)

let t_dual_issue () =
  let two = issue_seq [ add 1 2 3; add 4 5 6 ] in
  let four =
    issue_seq ~config:Pipeline.alpha_21164
      [ add 1 2 3; add 4 5 6; add 7 8 9; add 10 11 12 ]
  in
  Alcotest.(check int) "two adds in one group (21064A)" 0 two;
  Alcotest.(check int) "four adds in one group (21164)" 0 four

let t_dependent_serializes () =
  let c = issue_seq [ add 1 2 3; add 4 1 5 ] in
  Alcotest.(check bool) "dependent add waits" true (c >= 1)

let t_shift_use_delay () =
  (* the 21064A's shift result delay: srl ; use stalls one extra cycle
     compared to srl ; unrelated ; use (Figure 4's motivation) *)
  let stalled = issue_seq [ shift 1 2; add 3 1 4 ] in
  let filled = issue_seq [ shift 1 2; add 9 10 11; add 3 1 4 ] in
  Alcotest.(check bool) "shift-use stalls" true (stalled >= 1);
  Alcotest.(check bool) "delay slot fill is free" true (filled <= stalled + 1);
  let fast =
    issue_seq ~config:Pipeline.alpha_21164 [ shift 1 2; add 3 1 4 ]
  in
  Alcotest.(check bool) "21164 shift cheaper" true (fast <= stalled)

let t_load_use_delay () =
  let quick = issue_seq [ Ldq (1, 0, 2); add 5 6 7 ] in
  let stalled = issue_seq [ Ldq (1, 0, 2); add 5 1 7 ] in
  Alcotest.(check bool) "load-use stalls more than load-other" true
    (stalled > quick)

let t_single_memory_port () =
  let c = issue_seq [ Ldq (1, 0, 30); Ldq (2, 8, 30) ] in
  Alcotest.(check bool) "two loads cannot share a cycle" true (c >= 1)

let t_branch_prediction () =
  let p = Pipeline.create Pipeline.alpha_21064a in
  Pipeline.issue p (Insn.Bc (Eq, 1, "x")) ~iaddr:0 ~maddr:None
    ~branch:(Pipeline.B_taken { backward = false });
  let mispredicted = Pipeline.cycle p in
  let p2 = Pipeline.create Pipeline.alpha_21064a in
  Pipeline.issue p2 (Insn.Bc (Eq, 1, "x")) ~iaddr:0 ~maddr:None
    ~branch:(Pipeline.B_taken { backward = true });
  Alcotest.(check bool) "mispredict costs" true
    (mispredicted > Pipeline.cycle p2)

let t_fp_latency () =
  let dep = issue_seq [ Opf (Addt, 1, 2, 3); Opf (Mult, 4, 1, 5) ] in
  let indep = issue_seq [ Opf (Addt, 1, 2, 3); Opf (Mult, 4, 6, 5) ] in
  Alcotest.(check bool) "fp dependence stalls fp latency" true
    (dep >= Pipeline.alpha_21064a.fp_latency);
  Alcotest.(check bool) "independent fp cheaper" true (indep < dep)

let t_caches_charge_misses () =
  let caches = Cache.alpha_hierarchy () in
  let p = Pipeline.create ~caches Pipeline.alpha_21064a in
  Pipeline.issue p (Insn.Ldq (1, 0, 2)) ~iaddr:0 ~maddr:(Some 0x10000)
    ~branch:Pipeline.B_none;
  Pipeline.issue p (add 3 1 4) ~iaddr:4 ~maddr:None ~branch:Pipeline.B_none;
  let cold = Pipeline.cycle p in
  Alcotest.(check bool) "cold miss costs more than the hit latency" true
    (cold > Pipeline.alpha_21064a.load_latency)

let t_stall_resets_group () =
  let p = Pipeline.create Pipeline.alpha_21064a in
  Pipeline.issue p (add 1 2 3) ~iaddr:0 ~maddr:None ~branch:Pipeline.B_none;
  Pipeline.stall p 10;
  Alcotest.(check int) "stall advances time" 10 (Pipeline.cycle p);
  Pipeline.advance_to p 5;
  Alcotest.(check int) "advance_to never goes backward" 10 (Pipeline.cycle p)

let () =
  Alcotest.run "pipeline"
    [ ( "issue",
        [ Alcotest.test_case "dual issue" `Quick t_dual_issue;
          Alcotest.test_case "dependences" `Quick t_dependent_serializes;
          Alcotest.test_case "shift-use delay" `Quick t_shift_use_delay;
          Alcotest.test_case "load-use delay" `Quick t_load_use_delay;
          Alcotest.test_case "memory port" `Quick t_single_memory_port;
          Alcotest.test_case "branch prediction" `Quick t_branch_prediction;
          Alcotest.test_case "fp latency" `Quick t_fp_latency;
          Alcotest.test_case "cache misses" `Quick t_caches_charge_misses;
          Alcotest.test_case "stalls" `Quick t_stall_resets_group ] )
    ]
