test/test_minic.ml: Alcotest List Shasta_minic String Test_support
