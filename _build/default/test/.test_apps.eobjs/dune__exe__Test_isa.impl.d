test/test_isa.ml: Alcotest Asm Insn Program Shasta Shasta_isa
