test/test_exec.ml: Alcotest Array Cluster Exec Insn Node Program Reg Shasta_isa Shasta_minic Shasta_runtime State
