test/test_pipeline.ml: Alcotest Cache Insn List Pipeline Shasta_isa Shasta_machine
