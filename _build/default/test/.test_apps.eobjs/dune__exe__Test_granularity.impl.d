test/test_granularity.ml: Alcotest Api Array Cluster Shasta Shasta_apps Shasta_minic Shasta_protocol Shasta_runtime String Test_support
