test/test_instrument.ml: Alcotest Asm Check Insn Instrument List Opts Printf Program Reg Shasta Shasta_isa Shasta_minic String Test_support
