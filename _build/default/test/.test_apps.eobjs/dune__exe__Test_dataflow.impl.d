test/test_dataflow.ml: Alcotest Array Flow Insn List Liveness Private_track Reg Shasta_dataflow Shasta_isa
