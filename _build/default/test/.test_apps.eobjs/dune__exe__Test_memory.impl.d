test/test_memory.ml: Alcotest Cache Float List Memory Shasta Shasta_machine
