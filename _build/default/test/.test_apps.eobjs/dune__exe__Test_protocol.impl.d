test/test_protocol.ml: Alcotest Array Directory Granularity Message Option Shasta_network Shasta_protocol String
