test/test_props.ml: Alcotest Array Gen Hashtbl List QCheck2 QCheck_alcotest Shasta_isa Shasta_machine Shasta_minic Shasta_network Shasta_protocol Shasta_runtime String Test Test_support
