test/test_runtime.ml: Alcotest Api Array Cluster List Node Printf Shasta Shasta_apps Shasta_machine Shasta_minic Shasta_network Shasta_protocol Shasta_runtime State Tables Test_support
