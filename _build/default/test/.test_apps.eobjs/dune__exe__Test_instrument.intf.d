test/test_instrument.mli:
