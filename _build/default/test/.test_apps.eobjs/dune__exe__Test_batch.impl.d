test/test_batch.ml: Alcotest Array Flow Insn List Private_track Reg Shasta Shasta_dataflow Shasta_isa
