test/test_apps.ml: Alcotest Apps Em3d Fft Float List Lu Micro Ocean Printf Radiosity Radix Shasta_apps String Test_support Water
