(* Instrumenter tests.

   The central property: rewriting an executable with miss checks at ANY
   optimization level (every column of Table 2) must not change its
   behaviour — on one node, where all shared data is exclusive and only
   false misses can occur, the check code paths (range check, state
   table, flag compare, exclusive table, batch endpoints) all execute
   for real.  Plus structural checks that the generated sequences are
   the paper's Figures 2, 4, 5 and 6. *)

open Shasta
open Shasta_isa
open Shasta_minic.Builder

(* A torture program exercising every access kind the checks cover:
   integer and float shared loads/stores, private stack/static/heap
   accesses, field runs off one base (batching), conditional access
   patterns, quadword loads of pointers, calls inside loops (polls). *)
let torture =
  prog
    ~globals:[ ("a", I); ("fa", I); ("obj", I) ]
    [ proc "sum3" ~params:[ ("p", I) ] ~ret:I
        [ ret (fld_i (v "p") 0 +% fld_i (v "p") 8 +% fld_i (v "p") 16) ];
      proc "appinit"
        [ gset "a" (Gmalloc (i (8 * 128)));
          gset "fa" (Gmalloc (i (8 * 64)));
          gset "obj" (Gmalloc_b (i 64, i 64));
          for_ "k" (i 0) (i 128) [ sti (g "a") (v "k") (v "k" *% i 3) ];
          for_ "k" (i 0) (i 64)
            [ stf (g "fa") (v "k") (i2f (v "k") *. f 0.25) ];
          set_fld_i (g "obj") 0 (i 10);
          set_fld_i (g "obj") 8 (i 20);
          set_fld_i (g "obj") 16 (i 30);
          set_fld_f (g "obj") 24 (f 0.5)
        ];
      proc "work"
        [ (* integer shared loop *)
          let_i "s" (i 0);
          for_ "k" (i 0) (i 128) [ set "s" (v "s" +% ldi (g "a") (v "k")) ];
          print_int (v "s");
          (* float shared loop *)
          let_f "x" (f 0.0);
          for_ "k" (i 0) (i 64) [ set "x" (v "x" +. ldf (g "fa") (v "k")) ];
          print_flt (v "x");
          (* field runs off one base register: batched *)
          let_i "p" (g "obj");
          print_int (fld_i (v "p") 0 +% fld_i (v "p") 8 +% fld_i (v "p") 16);
          print_flt (fld_f (v "p") 24);
          set_fld_i (v "p") 0 (i 11);
          set_fld_i (v "p") 8 (i 22);
          print_int (fld_i (v "p") 0 +% fld_i (v "p") 8);
          (* call with shared pointer, polls at entry and backedges *)
          print_int (call "sum3" [ g "obj" ]);
          (* conditional shared accesses: cross-basic-block batching *)
          let_i "t" (i 0);
          for_ "k" (i 0) (i 32)
            [ if_ (ldi (g "a") (v "k") %% i 2 ==% i 0)
                [ set "t" (v "t" +% ldi (g "a") (v "k")) ]
                [ set "t" (v "t" -% i 1) ]
            ];
          print_int (v "t");
          (* private data: stack, static and private heap *)
          let_i "ph" (Pmalloc (i 256));
          for_ "k" (i 0) (i 32) [ sti (v "ph") (v "k") (v "k" <<% i 1) ];
          let_i "u" (i 0);
          for_ "k" (i 0) (i 32) [ set "u" (v "u" +% ldi (v "ph") (v "k")) ];
          print_int (v "u");
          (* store then load same shared location *)
          sti (g "a") (i 5) (i 777);
          print_int (ldi (g "a") (i 5))
        ]
    ]

let expected = Test_support.Support.ground_truth torture

let equiv_test (name, opts) =
  Alcotest.test_case ("equivalence " ^ name) `Quick (fun () ->
    let got, _ = Test_support.Support.run ~opts:(Some opts) ~nprocs:1 torture in
    Alcotest.(check string) name expected got)

(* 128-byte lines as well (the paper's other configuration) *)
let equiv_128 =
  Alcotest.test_case "equivalence line=128" `Quick (fun () ->
    let opts = { Opts.full with line_shift = 7 } in
    let got, _ = Test_support.Support.run ~opts:(Some opts) ~nprocs:1 torture in
    Alcotest.(check string) "line=128" expected got)

(* --- structural shape of the generated checks ---------------------- *)

let fresh_gen () =
  let n = ref 0 in
  fun () ->
    incr n;
    Printf.sprintf "L%d" !n

let asm l = List.map Asm.to_string l

let t_store_check_figure2 () =
  (* basic (unscheduled) state-table store check: Figure 2 order *)
  let w =
    Check.store_check Opts.basic ~fresh:(fresh_gen ()) ~free:[ 1; 2 ]
      ~base:3 ~disp:16 ~ssize:Insn.Quad
  in
  Alcotest.(check (list string)) "figure 2"
    [ "\tlda r1, 16(r3)";
      "\tsrl r1, 39, r2";
      "\tbeq r2, L1";
      "\tsrl r1, 6, r1";
      "\tldq_u r2, 0(r1)";
      "\textbl r2, r1, r2";
      "\tbeq r2, L1";
      "\tcall_store_miss.q 16(r3)";
      "L1:" ]
    (asm w.pre);
  Alcotest.(check (list string)) "nothing after store" [] (asm w.post)

let t_store_check_figure4 () =
  (* rescheduled: second shift in the first shift's delay slot, first
     three instructions hoisted above the store (Section 3.1) *)
  let w =
    Check.store_check Opts.with_schedule ~fresh:(fresh_gen ()) ~free:[ 1; 2 ]
      ~base:3 ~disp:16 ~ssize:Insn.Quad
  in
  Alcotest.(check (list string)) "before the store"
    [ "\tlda r1, 16(r3)"; "\tsrl r1, 39, r2"; "\tsrl r1, 6, r1" ]
    (asm w.pre);
  Alcotest.(check (list string)) "after the store"
    [ "\tbeq r2, L1";
      "\tldq_u r2, 0(r1)";
      "\textbl r2, r1, r2";
      "\tbeq r2, L1";
      "\tcall_store_miss.q 16(r3) (store done)";
      "L1:" ]
    (asm w.post)

let t_store_zero_offset () =
  (* "Line 1 can be eliminated if the offset of the store is zero" *)
  let w =
    Check.store_check Opts.with_schedule ~fresh:(fresh_gen ()) ~free:[ 1; 2 ]
      ~base:3 ~disp:0 ~ssize:Insn.Quad
  in
  Alcotest.(check (list string)) "no lda, shifts read the base register"
    [ "\tsrl r3, 39, r2"; "\tsrl r3, 6, r1" ]
    (asm w.pre)

let t_load_check_figure5a () =
  let w =
    Check.load_check Opts.with_flag ~fresh:(fresh_gen ()) ~free:[ 1 ] ~base:2
      ~disp:8
      ~refill:(Insn.Rint (4, Insn.Quad))
  in
  Alcotest.(check (list string)) "nothing before the load" [] (asm w.pre);
  Alcotest.(check (list string)) "figure 5(a)"
    [ "\taddl r4, 253, r1";
      "\tbne r1, L1";
      "\tcall_load_miss 8(r2) -> r4.q";
      "L1:" ]
    (asm w.post)

let t_load_check_figure5b () =
  let w =
    Check.load_check Opts.with_flag ~fresh:(fresh_gen ()) ~free:[ 1 ] ~base:2
      ~disp:8 ~refill:(Insn.Rflt 5)
  in
  Alcotest.(check (list string)) "figure 5(b): extra integer load"
    [ "\tldl r1, 8(r2)";
      "\taddl r1, 253, r1";
      "\tbne r1, L1";
      "\tcall_load_miss 8(r2) -> f5";
      "L1:" ]
    (asm w.post)

let t_load_dest_is_base () =
  (* ldq r2, 8(r2): the handler must still learn the address *)
  let w =
    Check.load_check Opts.with_flag ~fresh:(fresh_gen ()) ~free:[ 1; 6 ]
      ~base:2 ~disp:8
      ~refill:(Insn.Rint (2, Insn.Quad))
  in
  Alcotest.(check (list string)) "address captured before the load"
    [ "\tlda r6, 8(r2)" ] (asm w.pre);
  Alcotest.(check bool) "miss call uses the captured address" true
    (List.exists
       (function
         | Insn.Call_load_miss { base = 6; disp = 0; _ } -> true
         | _ -> false)
       w.post)

let t_excl_table_store_check () =
  (* Section 3.3: the store check reads the bit-per-line exclusive
     table, not the state table *)
  let w =
    Check.store_check Opts.with_excl ~fresh:(fresh_gen ()) ~free:[ 1; 2; 3 ]
      ~base:4 ~disp:0 ~ssize:Insn.Quad
  in
  let all = asm w.pre @ asm w.post in
  Alcotest.(check bool) "uses a 9-bit shift (line shift + 3)" true
    (List.exists (fun s -> s = "\tsrl r4, 9, r3") all);
  Alcotest.(check bool) "tests the low bit with blbs" true
    (List.exists
       (fun s -> String.length s > 5 && String.sub s 0 5 = "\tblbs")
       all);
  Alcotest.(check bool) "no state-table byte extract" false
    (List.exists (fun s -> String.length s > 6 && String.sub s 0 6 = "\textbl") all)

let t_batch_check_figure6 () =
  (* a single load-only range: Figure 6's interleaved endpoint checks
     with the fall-through into the miss code *)
  let w =
    Check.batch_check Opts.with_batch ~fresh:(fresh_gen ())
      ~free:[ 1; 2; 3; 4 ]
      { Insn.ranges =
          [ { rbase = 5;
              accesses =
                [ { disp = 0; asize = Insn.Quad; is_store = false };
                  { disp = 40; asize = Insn.Quad; is_store = false } ] }
          ] }
  in
  Alcotest.(check (list string)) "figure 6"
    [ "\tldl r1, 0(r5)";
      "\tldl r2, 40(r5)";
      "\taddl r1, 253, r1";
      "\taddl r2, 253, r2";
      "\tbeq r1, L1";
      "\tbne r2, L2";
      "L1:";
      "\tcall_batch_miss r5:[0r,40r]";
      "L2:" ]
    (asm w.pre)

let t_spill_when_no_free_regs () =
  (* with no free registers the generator must save/restore *)
  let w =
    Check.load_check Opts.with_flag ~fresh:(fresh_gen ()) ~free:[] ~base:2
      ~disp:8
      ~refill:(Insn.Rint (4, Insn.Quad))
  in
  let all = w.pre @ w.post in
  Alcotest.(check bool) "has a save" true
    (List.exists
       (function Insn.Stq (_, d, b) -> b = Reg.sp && d < 0 | _ -> false)
       all);
  Alcotest.(check bool) "has a restore" true
    (List.exists
       (function Insn.Ldq (_, d, b) -> b = Reg.sp && d < 0 | _ -> false)
       all)

(* --- instrumentation statistics ------------------------------------- *)

let t_private_not_instrumented () =
  let p =
    prog
      [ proc "work"
          [ let_i "x" (i 1);
            let_i "y" (v "x" +% i 2);
            print_int (v "y")
          ]
      ]
  in
  let compiled = Shasta_minic.Compile.compile p in
  let _, stats = Instrument.instrument ~opts:Opts.full compiled.program in
  Alcotest.(check int) "all loads private" 0 stats.loads_instrumented;
  Alcotest.(check int) "all stores private" 0 stats.stores_instrumented

let t_shared_instrumented () =
  let compiled = Shasta_minic.Compile.compile torture in
  let _, stats = Instrument.instrument ~opts:Opts.full compiled.program in
  Alcotest.(check bool) "some loads instrumented" true
    (stats.loads_instrumented > 0);
  Alcotest.(check bool) "some stores instrumented" true
    (stats.stores_instrumented > 0);
  Alcotest.(check bool) "most accesses are private" true
    (stats.loads_instrumented * 2 < stats.loads_total);
  Alcotest.(check bool) "batches formed" true (stats.batches > 0)

let t_code_growth () =
  let compiled = Shasta_minic.Compile.compile torture in
  let _, s_basic = Instrument.instrument ~opts:Opts.basic compiled.program in
  let _, s_full = Instrument.instrument ~opts:Opts.full compiled.program in
  Alcotest.(check bool) "instrumentation grows code" true
    (s_basic.insns_after > s_basic.insns_before);
  Alcotest.(check bool) "optimized checks are smaller" true
    (s_full.insns_after < s_basic.insns_after)

let t_polls_inserted () =
  let compiled = Shasta_minic.Compile.compile torture in
  let count_polls (prog : Program.t) =
    List.fold_left
      (fun a (p : Program.proc) ->
        a + List.length (List.filter (fun insn -> insn = Insn.Poll) p.body))
      0 prog.procs
  in
  let p_none, _ =
    Instrument.instrument ~opts:Opts.with_batch compiled.program
  in
  let p_fn, _ =
    Instrument.instrument ~opts:Opts.with_fn_poll compiled.program
  in
  let p_loop, _ =
    Instrument.instrument ~opts:Opts.with_loop_poll compiled.program
  in
  Alcotest.(check int) "no polls" 0 (count_polls p_none);
  Alcotest.(check int) "one poll per function" 3 (count_polls p_fn);
  Alcotest.(check bool) "loop polls present" true (count_polls p_loop > 0)

let () =
  Alcotest.run "instrument"
    [ ( "equivalence",
        List.map equiv_test Opts.table2_columns @ [ equiv_128 ] );
      ( "check shapes",
        [ Alcotest.test_case "store figure 2" `Quick t_store_check_figure2;
          Alcotest.test_case "store figure 4" `Quick t_store_check_figure4;
          Alcotest.test_case "zero offset" `Quick t_store_zero_offset;
          Alcotest.test_case "load figure 5a" `Quick t_load_check_figure5a;
          Alcotest.test_case "load figure 5b" `Quick t_load_check_figure5b;
          Alcotest.test_case "dest = base" `Quick t_load_dest_is_base;
          Alcotest.test_case "exclusive table" `Quick t_excl_table_store_check;
          Alcotest.test_case "batch figure 6" `Quick t_batch_check_figure6;
          Alcotest.test_case "register spilling" `Quick
            t_spill_when_no_free_regs ] );
      ( "statistics",
        [ Alcotest.test_case "private exempt" `Quick
            t_private_not_instrumented;
          Alcotest.test_case "shared instrumented" `Quick t_shared_instrumented;
          Alcotest.test_case "code growth" `Quick t_code_growth;
          Alcotest.test_case "poll insertion" `Quick t_polls_inserted ] )
    ]
