(* ISA structural tests: instruction classification, program validation,
   text layout, disassembly. *)

open Shasta_isa

let i_ldq : Insn.t = Ldq (1, 8, 2)
let i_stl : Insn.t = Stl (3, 0, 4)
let i_add : Insn.t = Opi (Addq, 5, Reg 6, 7)

let t_classify () =
  Alcotest.(check bool) "ldq is load" true (Insn.is_load i_ldq);
  Alcotest.(check bool) "ldq not store" false (Insn.is_store i_ldq);
  Alcotest.(check bool) "stl is store" true (Insn.is_store i_stl);
  Alcotest.(check bool) "stl is mem" true (Insn.is_mem i_stl);
  Alcotest.(check bool) "add not mem" false (Insn.is_mem i_add)

let t_mem_operand () =
  Alcotest.(check (option (pair int int)))
    "ldq base/disp" (Some (2, 8)) (Insn.mem_operand i_ldq);
  Alcotest.(check (option (pair int int)))
    "stl base/disp" (Some (4, 0)) (Insn.mem_operand i_stl);
  Alcotest.(check (option (pair int int))) "add none" None
    (Insn.mem_operand i_add)

let t_uses_def () =
  Alcotest.(check (list int)) "ldq uses base" [ 2 ] (Insn.uses i_ldq);
  Alcotest.(check (option int)) "ldq defs dest" (Some 1) (Insn.def i_ldq);
  Alcotest.(check (list int)) "stl uses value+base" [ 3; 4 ] (Insn.uses i_stl);
  Alcotest.(check (option int)) "stl defs nothing" None (Insn.def i_stl);
  Alcotest.(check (list int)) "add uses both" [ 6; 7 ] (Insn.uses i_add);
  Alcotest.(check (option int)) "add defs" (Some 5) (Insn.def i_add)

let t_sizes () =
  Alcotest.(check int) "lab is empty" 0 (Insn.bytes (Insn.Lab "x"));
  Alcotest.(check int) "batch_end is empty" 0 (Insn.bytes Insn.Batch_end);
  Alcotest.(check int) "poll is 3 insns" 12 (Insn.bytes Insn.Poll);
  Alcotest.(check int) "alu is 4 bytes" 4 (Insn.bytes i_add)

let t_validate_ok () =
  let p =
    { Program.procs =
        [ { pname = "f";
            body = [ Insn.Lab "top"; i_add; Insn.Bc (Ne, 5, "top"); Insn.Ret ]
          }
        ];
      entry = "f" }
  in
  ignore (Program.validate p)

let t_validate_bad_label () =
  let p =
    { Program.procs = [ { pname = "f"; body = [ Insn.Br "nowhere" ] } ];
      entry = "f" }
  in
  Alcotest.check_raises "undefined label"
    (Invalid_argument "Program.validate: undefined label nowhere in f")
    (fun () -> ignore (Program.validate p))

let t_validate_bad_call () =
  let p =
    { Program.procs = [ { pname = "f"; body = [ Insn.Jsr "ghost" ] } ];
      entry = "f" }
  in
  Alcotest.check_raises "unknown callee"
    (Invalid_argument "Program.validate: call to unknown procedure ghost from f")
    (fun () -> ignore (Program.validate p))

let t_validate_dup_label () =
  let p =
    { Program.procs =
        [ { pname = "f"; body = [ Insn.Lab "l"; Insn.Lab "l" ] } ];
      entry = "f" }
  in
  Alcotest.check_raises "duplicate label"
    (Invalid_argument "Program.validate: duplicate label l in f") (fun () ->
      ignore (Program.validate p))

let t_counts () =
  let p =
    { Program.procs =
        [ { pname = "f"; body = [ i_ldq; i_stl; i_add; Insn.Lab "x" ] } ];
      entry = "f" }
  in
  let c = Program.count_accesses p in
  Alcotest.(check int) "loads" 1 c.loads;
  Alcotest.(check int) "stores" 1 c.stores;
  Alcotest.(check int) "insns exclude labels" 3 c.insns

let t_asm () =
  Alcotest.(check string) "ldq" "\tldq r1, 8(r2)" (Asm.to_string i_ldq);
  Alcotest.(check string) "addq" "\taddq r7, r6, r5" (Asm.to_string i_add);
  Alcotest.(check string) "branch" "\tbne r5, out"
    (Asm.to_string (Insn.Bc (Ne, 5, "out")))

let t_branch_targets () =
  Alcotest.(check (list string)) "bc" [ "l" ]
    (Insn.branch_targets (Insn.Bc (Eq, 1, "l")));
  Alcotest.(check bool) "br no fallthrough" false
    (Insn.falls_through (Insn.Br "l"));
  Alcotest.(check bool) "bc falls through" true
    (Insn.falls_through (Insn.Bc (Eq, 1, "l")))

let t_layout_regions () =
  let open Shasta.Layout in
  Alcotest.(check bool) "shared detected" true (is_shared (shared_base + 64));
  Alcotest.(check bool) "stack private" false (is_shared stack_top);
  Alcotest.(check bool) "static private" false (is_shared static_base);
  (* the state table of a 64-byte line is its address shifted by 6 *)
  Alcotest.(check int) "state table base" (state_table_base ~line_shift:6)
    (state_addr ~line_shift:6 shared_base);
  (* regions must not overlap the tables *)
  Alcotest.(check bool) "excl table above stack" true
    (excl_table_base ~line_shift:6 >= stack_top);
  Alcotest.(check bool) "state table above excl" true
    (state_table_base ~line_shift:6 >= excl_table_limit ~line_shift:6);
  Alcotest.(check bool) "shared above state table" true
    (shared_base >= state_table_limit ~line_shift:6);
  (* and for 128-byte lines as well *)
  Alcotest.(check bool) "excl table above stack (128B)" true
    (excl_table_base ~line_shift:7 >= stack_top)

let t_flag_pattern () =
  let open Shasta.Layout in
  Alcotest.(check int) "flag is -253 as a longword" flag_pattern
    (flag_value land 0xFFFFFFFF);
  (* addl value, 253 must be zero exactly for the flag *)
  Alcotest.(check int) "flag + 253 = 0" 0 (flag_value + flag_imm)

let () =
  Alcotest.run "isa"
    [ ( "insn",
        [ Alcotest.test_case "classification" `Quick t_classify;
          Alcotest.test_case "mem operands" `Quick t_mem_operand;
          Alcotest.test_case "uses/defs" `Quick t_uses_def;
          Alcotest.test_case "sizes" `Quick t_sizes ] );
      ( "program",
        [ Alcotest.test_case "validate ok" `Quick t_validate_ok;
          Alcotest.test_case "bad label" `Quick t_validate_bad_label;
          Alcotest.test_case "bad call" `Quick t_validate_bad_call;
          Alcotest.test_case "dup label" `Quick t_validate_dup_label;
          Alcotest.test_case "counts" `Quick t_counts ] );
      ("asm", [ Alcotest.test_case "disassembly" `Quick t_asm;
                Alcotest.test_case "branch targets" `Quick t_branch_targets ]);
      ( "layout",
        [ Alcotest.test_case "regions" `Quick t_layout_regions;
          Alcotest.test_case "flag value" `Quick t_flag_pattern ] )
    ]
