(* Memory model tests: longword/quadword/byte aliasing, sign extension,
   float bit patterns, the flag value, page copying, plus cache model
   behaviour. *)

open Shasta_machine

let t_long_roundtrip () =
  let m = Memory.create () in
  Memory.write_long_u m 0x1000 0xDEADBEEF;
  Alcotest.(check int) "unsigned read" 0xDEADBEEF (Memory.read_long_u m 0x1000);
  Alcotest.(check int) "signed read" (0xDEADBEEF - 0x1_0000_0000)
    (Memory.read_long m 0x1000);
  Memory.write_long_u m 0x1004 0x7FFFFFFF;
  Alcotest.(check int) "positive signed" 0x7FFFFFFF (Memory.read_long m 0x1004)

let t_quad_longword_aliasing () =
  let m = Memory.create () in
  Memory.write_quad m 0x2000 0x11223344_55667788;
  Alcotest.(check int) "low longword" 0x55667788 (Memory.read_long_u m 0x2000);
  Alcotest.(check int) "high longword" 0x11223344 (Memory.read_long_u m 0x2004);
  Memory.write_long_u m 0x2000 0xAAAAAAAA;
  Alcotest.(check int) "quad sees longword write"
    0x11223344_AAAAAAAA (Memory.read_quad m 0x2000)

let t_negative_quad () =
  let m = Memory.create () in
  Memory.write_quad m 0x3000 (-42);
  Alcotest.(check int) "negative roundtrip" (-42) (Memory.read_quad m 0x3000);
  Memory.write_quad m 0x3008 (-1);
  Alcotest.(check int) "low pattern all ones" 0xFFFFFFFF
    (Memory.read_long_u m 0x3008)

let t_bytes () =
  let m = Memory.create () in
  Memory.write_byte m 0x4001 0xAB;
  Alcotest.(check int) "byte read" 0xAB (Memory.read_byte m 0x4001);
  Alcotest.(check int) "neighbours untouched" 0 (Memory.read_byte m 0x4000);
  Alcotest.(check int) "in longword" 0xAB00 (Memory.read_long_u m 0x4000);
  Memory.write_byte m 0x4001 0x01;
  Alcotest.(check int) "byte overwrite" 0x0100 (Memory.read_long_u m 0x4000)

let t_floats () =
  let m = Memory.create () in
  List.iter
    (fun x ->
      Memory.write_float m 0x5000 x;
      Alcotest.(check (float 0.0)) "float roundtrip" x
        (Memory.read_float m 0x5000))
    [ 0.0; 1.5; -3.25; 1e300; -1e-300; Float.pi ]

let t_flag_longword () =
  let m = Memory.create () in
  Memory.write_long_u m 0x6000 Shasta.Layout.flag_pattern;
  Alcotest.(check int) "flag reads as -253" (-253) (Memory.read_long m 0x6000);
  (* a quadword load of a fully flagged region: low longword drives the
     addl-based check *)
  Memory.write_long_u m 0x6004 Shasta.Layout.flag_pattern;
  let q = Memory.read_quad m 0x6000 in
  Alcotest.(check int) "quad low 32 bits are the flag" 0
    ((q + 253) land 0xFFFFFFFF)

let t_unaligned_rejected () =
  let m = Memory.create () in
  Alcotest.check_raises "unaligned longword"
    (Invalid_argument "Memory: unaligned longword access at 0x1001")
    (fun () -> ignore (Memory.read_long_u m 0x1001));
  Alcotest.check_raises "unaligned quadword"
    (Invalid_argument "Memory: unaligned quadword access at 0x1004")
    (fun () -> ignore (Memory.read_quad m 0x1004))

let t_ldq_u_alignment () =
  let m = Memory.create () in
  Memory.write_quad m 0x7000 12345;
  Alcotest.(check int) "ldq_u ignores low bits" 12345
    (Memory.read_quad_unaligned m 0x7003)

let t_copy_pages () =
  let src = Memory.create () and dst = Memory.create () in
  Memory.write_quad src 0x10000 111;
  Memory.write_quad src 0x18000 222;
  Memory.write_quad src 0x40000 333;
  Memory.copy_pages ~src ~dst ~addr:0x10000 ~len:0x10000;
  Alcotest.(check int) "first page copied" 111 (Memory.read_quad dst 0x10000);
  Alcotest.(check int) "second page copied" 222 (Memory.read_quad dst 0x18000);
  Alcotest.(check int) "outside range untouched" 0
    (Memory.read_quad dst 0x40000)

let t_blit () =
  let m = Memory.create () in
  Memory.blit_in m ~addr:0x8000 [| 1; 2; 3; 4 |];
  Alcotest.(check (array int)) "blit roundtrip" [| 1; 2; 3; 4 |]
    (Memory.blit_out m ~addr:0x8000 ~nlongs:4)

(* --- caches --- *)

let t_cache_basics () =
  let c = Cache.create ~name:"t" ~size_bytes:1024 ~line_bytes:32 in
  Alcotest.(check bool) "first access misses" false (Cache.access c 0);
  Alcotest.(check bool) "same line hits" true (Cache.access c 16);
  Alcotest.(check bool) "next line misses" false (Cache.access c 32);
  (* direct-mapped conflict: 0 and 1024 map to the same set *)
  Alcotest.(check bool) "conflict evicts" false (Cache.access c 1024);
  Alcotest.(check bool) "original evicted" false (Cache.access c 0)

let t_cache_invalidate () =
  let c = Cache.create ~name:"t" ~size_bytes:1024 ~line_bytes:32 in
  ignore (Cache.access c 64);
  Cache.invalidate_range c ~addr:64 ~len:4;
  Alcotest.(check bool) "invalidated line misses" false (Cache.access c 64)

let t_hierarchy () =
  let h = Cache.alpha_hierarchy () in
  let first = Cache.daccess h 0x1000 in
  Alcotest.(check bool) "cold access costs" true (first > 0);
  Alcotest.(check int) "warm access free" 0 (Cache.daccess h 0x1000);
  (* L2 hit after L1 conflict eviction costs the L1 penalty only *)
  ignore (Cache.daccess h (0x1000 + (16 * 1024)));
  Alcotest.(check int) "l2 hit penalty" h.l1_miss_cycles
    (Cache.daccess h 0x1000)

let () =
  Alcotest.run "memory"
    [ ( "memory",
        [ Alcotest.test_case "longwords" `Quick t_long_roundtrip;
          Alcotest.test_case "quad aliasing" `Quick t_quad_longword_aliasing;
          Alcotest.test_case "negative quads" `Quick t_negative_quad;
          Alcotest.test_case "bytes" `Quick t_bytes;
          Alcotest.test_case "floats" `Quick t_floats;
          Alcotest.test_case "flag longword" `Quick t_flag_longword;
          Alcotest.test_case "alignment" `Quick t_unaligned_rejected;
          Alcotest.test_case "ldq_u" `Quick t_ldq_u_alignment;
          Alcotest.test_case "copy pages" `Quick t_copy_pages;
          Alcotest.test_case "blit" `Quick t_blit ] );
      ( "cache",
        [ Alcotest.test_case "basics" `Quick t_cache_basics;
          Alcotest.test_case "invalidate" `Quick t_cache_invalidate;
          Alcotest.test_case "hierarchy" `Quick t_hierarchy ] )
    ]
