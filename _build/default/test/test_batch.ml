(* Batching scan tests (Section 3.4.1): which access runs form batches,
   where the scan terminates, and the restrictions the protocol needs. *)

open Shasta_isa
open Shasta_dataflow

let scan body =
  let flow = Flow.of_body (Array.of_list body) in
  let derived = Private_track.analyze flow in
  Shasta.Batch.scan flow derived ~line_bytes:64

let ld d off b : Insn.t = Ldq (d, off, b)
let st r off b : Insn.t = Stq (r, off, b)
let add d a b : Insn.t = Opi (Addq, d, Reg a, b)

let t_simple_run () =
  (* four loads off one base within a line: one batch of four *)
  let batches = scan [ ld 1 0 9; ld 2 8 9; ld 3 16 9; ld 4 24 9; Ret ] in
  match batches with
  | [ b ] ->
    Alcotest.(check int) "starts at 0" 0 b.start;
    Alcotest.(check int) "covers 4 accesses" 4 (List.length b.covered);
    (match b.ranges with
     | [ r ] ->
       Alcotest.(check int) "one range base" 9 r.rbase;
       Alcotest.(check int) "four accesses" 4 (List.length r.accesses)
     | _ -> Alcotest.fail "expected a single range")
  | _ -> Alcotest.fail "expected exactly one batch"

let t_single_access_not_batched () =
  (* "normal miss checks are used if there is only a single load or
     store for each base register" *)
  let batches = scan [ ld 1 0 9; ld 2 0 10; Ret ] in
  Alcotest.(check int) "no batch for singles" 0 (List.length batches)

let t_span_limit () =
  (* offsets spanning more than a line end the batch *)
  let batches = scan [ ld 1 0 9; ld 2 8 9; ld 3 256 9; ld 4 264 9; Ret ] in
  Alcotest.(check int) "two batches" 2 (List.length batches)

let t_base_modification_terminates () =
  let batches = scan [ ld 1 0 9; add 9 9 1; ld 2 8 9; Ret ] in
  (* after r9 is modified the second load cannot join the first batch *)
  List.iter
    (fun (b : Shasta.Batch.t) ->
      Alcotest.(check bool) "no batch spans the modification" true
        (List.length b.covered <= 1 || not (List.mem 2 b.covered)))
    batches

let t_call_terminates () =
  let batches =
    scan [ ld 1 0 9; ld 2 8 9; Jsr "f"; ld 3 16 9; ld 4 24 9; Ret ]
  in
  Alcotest.(check int) "calls split batches" 2 (List.length batches);
  List.iter
    (fun (b : Shasta.Batch.t) ->
      Alcotest.(check int) "each side has two accesses" 2
        (List.length b.covered))
    batches

let t_backedge_terminates () =
  let batches =
    scan [ Lab "top"; ld 1 0 9; ld 2 8 9; Bc (Ne, 1, "top"); Ret ]
  in
  Alcotest.(check int) "loop body forms one batch" 1 (List.length batches)

let t_multi_base () =
  (* interleaved accesses off two bases: one batch, two ranges *)
  let batches = scan [ ld 1 0 9; ld 2 0 10; ld 3 8 9; ld 4 8 10; Ret ] in
  match batches with
  | [ b ] ->
    Alcotest.(check int) "two ranges" 2 (List.length b.ranges);
    Alcotest.(check int) "four covered" 4 (List.length b.covered)
  | _ -> Alcotest.fail "expected one batch"

let t_private_excluded () =
  (* SP-relative accesses pass through without joining batches *)
  let batches =
    scan [ ld 1 0 9; ld 2 0 Reg.sp; ld 3 8 9; st 1 16 Reg.sp; Ret ]
  in
  match batches with
  | [ b ] ->
    Alcotest.(check int) "only the shared accesses" 2 (List.length b.covered)
  | _ -> Alcotest.fail "expected one batch"

let t_forked_loads_included () =
  (* loads on both arms of a forward branch can join the batch
     ("batching across basic blocks") *)
  let batches =
    scan
      [ ld 1 0 9; Bc (Eq, 1, "else"); ld 2 8 9; Br "join"; Lab "else";
        ld 3 16 9; Lab "join"; ld 4 24 9; Ret ]
  in
  match batches with
  | [ b ] ->
    Alcotest.(check bool) "all four loads covered" true
      (List.length b.covered = 4)
  | _ -> Alcotest.fail "expected one batch"

let t_forked_store_terminates_path () =
  (* a store on only one execution path may not be batched (the handler
     must know exactly which stores will execute) *)
  let batches =
    scan
      [ ld 1 0 9; Bc (Eq, 1, "else"); st 2 8 9; Br "join"; Lab "else";
        ld 3 16 9; Lab "join"; Ret ]
  in
  List.iter
    (fun (b : Shasta.Batch.t) ->
      List.iter
        (fun (r : Insn.range) ->
          List.iter
            (fun (a : Insn.access) ->
              Alcotest.(check bool) "no store in forked batch" false
                a.is_store)
            r.accesses)
        b.ranges)
    batches

let t_stores_before_fork_ok () =
  let batches = scan [ st 1 0 9; st 2 8 9; ld 3 16 9; Ret ] in
  match batches with
  | [ b ] ->
    Alcotest.(check int) "stores batch in straight line" 3
      (List.length b.covered)
  | _ -> Alcotest.fail "expected one batch"

let t_ends_recorded () =
  let batches = scan [ ld 1 0 9; ld 2 8 9; Jsr "f"; Ret ] in
  match batches with
  | [ b ] ->
    Alcotest.(check bool) "end marker before the call" true
      (List.mem 2 b.ends)
  | _ -> Alcotest.fail "expected one batch"

let () =
  Alcotest.run "batch"
    [ ( "scan",
        [ Alcotest.test_case "simple run" `Quick t_simple_run;
          Alcotest.test_case "singles not batched" `Quick
            t_single_access_not_batched;
          Alcotest.test_case "span limit" `Quick t_span_limit;
          Alcotest.test_case "base modification" `Quick
            t_base_modification_terminates;
          Alcotest.test_case "calls terminate" `Quick t_call_terminates;
          Alcotest.test_case "backedges terminate" `Quick
            t_backedge_terminates;
          Alcotest.test_case "multiple bases" `Quick t_multi_base;
          Alcotest.test_case "private excluded" `Quick t_private_excluded;
          Alcotest.test_case "forked loads" `Quick t_forked_loads_included;
          Alcotest.test_case "forked stores" `Quick
            t_forked_store_terminates_path;
          Alcotest.test_case "straight-line stores" `Quick
            t_stores_before_fork_ok;
          Alcotest.test_case "end markers" `Quick t_ends_recorded ] )
    ]
