(* Dataflow analysis tests: liveness (free registers for checks) and
   SP/GP-derived tracking (which accesses are private, Section 2.3). *)

open Shasta_isa
open Shasta_dataflow

let add d a b : Insn.t = Opi (Addq, d, Reg a, b)
let addi d n b : Insn.t = Opi (Addq, d, Imm n, b)

(* --- liveness ------------------------------------------------------- *)

let t_live_straightline () =
  (* r1 <- r2+r3 ; r4 <- r1+r1 ; ret r4 in r0 *)
  let body = [| add 1 2 3; add 4 1 1; add 0 4 4; Insn.Ret |] in
  let flow = Flow.of_body body in
  let live = Liveness.analyze flow in
  let is_live i r = live.(i) land (1 lsl r) <> 0 in
  Alcotest.(check bool) "r2 live at entry" true (is_live 0 2);
  Alcotest.(check bool) "r1 dead at entry" false (is_live 0 1);
  Alcotest.(check bool) "r1 live after def" true (is_live 1 1);
  Alcotest.(check bool) "r1 dead after last use" false (is_live 2 1);
  Alcotest.(check bool) "r4 live before its use" true (is_live 2 4)

let t_live_through_branch () =
  (* r5 is only used on one arm: live at the branch anyway *)
  let body =
    [| Insn.Bc (Eq, 1, "skip"); add 2 5 5; Insn.Lab "skip"; add 0 3 3;
       Insn.Ret |]
  in
  let live = Liveness.analyze (Flow.of_body body) in
  Alcotest.(check bool) "r5 live at branch" true (live.(0) land (1 lsl 5) <> 0);
  Alcotest.(check bool) "r3 live at branch (both paths)" true
    (live.(0) land (1 lsl 3) <> 0)

let t_live_loop () =
  (* a loop-carried register stays live around the backedge *)
  let body =
    [| Insn.Lab "top"; add 1 1 2; Insn.Bc (Ne, 1, "top"); Insn.Ret |]
  in
  let live = Liveness.analyze (Flow.of_body body) in
  Alcotest.(check bool) "loop register live at head" true
    (live.(0) land (1 lsl 1) <> 0)

let t_free_regs () =
  let body = [| add 1 2 3; add 0 1 1; Insn.Ret |] in
  let live = Liveness.analyze (Flow.of_body body) in
  let free = Liveness.free_regs live 0 ~pool:[ 1; 2; 3; 4; 5 ] in
  Alcotest.(check bool) "r4 free at entry" true (List.mem 4 free);
  Alcotest.(check bool) "r2 not free at entry" false (List.mem 2 free)

let t_call_clobbers () =
  (* caller-saved registers are dead across a call site's def set *)
  let body = [| Insn.Jsr "f"; add 0 9 9; Insn.Ret |] in
  let live = Liveness.analyze (Flow.of_body body) in
  (* r5 (caller-saved, unused after) must be dead before the call *)
  Alcotest.(check bool) "unused caller-saved dead before call" false
    (live.(0) land (1 lsl 5) <> 0)

(* --- SP/GP-derived tracking ----------------------------------------- *)

let sp = Reg.sp
let gp = Reg.gp

let derived_at _flow derived i r = derived.(i) land (1 lsl r) <> 0

let t_private_basics () =
  let body =
    [| Insn.Lda (1, 16, sp); (* r1 = sp+16: derived *)
       Insn.Lda (2, 8, gp); (* r2 = gp+8: derived *)
       Insn.Ldq (3, 0, 1); (* r3 loaded: not derived *)
       Insn.Ldq (4, 0, 3); (* access via r3: shared candidate *)
       Insn.Ret |]
  in
  let flow = Flow.of_body body in
  let d = Private_track.analyze flow in
  Alcotest.(check bool) "sp derived" true (derived_at flow d 0 sp);
  Alcotest.(check bool) "r1 derived after lda" true (derived_at flow d 1 1);
  Alcotest.(check bool) "r2 derived after lda" true (derived_at flow d 2 2);
  Alcotest.(check bool) "r3 not derived after load" false
    (derived_at flow d 3 3);
  Alcotest.(check bool) "access 2 private" true
    (Private_track.access_is_private flow d 2);
  Alcotest.(check bool) "access 3 instrumented" false
    (Private_track.access_is_private flow d 3)

let t_private_arith_chain () =
  (* sp + constant chains stay derived; adding a loaded value does not *)
  let body =
    [| Insn.Lda (1, 0, sp); addi 2 32 1; Insn.Ldq (3, 0, 2);
       add 4 3 1; Insn.Ldq (5, 0, 4); Insn.Ret |]
  in
  let flow = Flow.of_body body in
  let d = Private_track.analyze flow in
  Alcotest.(check bool) "sp+const derived" true
    (Private_track.access_is_private flow d 2);
  Alcotest.(check bool) "derived + loaded not derived" false
    (Private_track.access_is_private flow d 4)

let t_private_meet_at_join () =
  (* derived on one path, not on the other: not derived at the join *)
  let body =
    [| Insn.Bc (Eq, 9, "else");
       Insn.Lda (1, 0, sp);
       Insn.Br "join";
       Insn.Lab "else";
       Insn.Ldq (1, 0, 10);
       Insn.Lab "join";
       Insn.Ldq (2, 0, 1);
       Insn.Ret |]
  in
  let flow = Flow.of_body body in
  let d = Private_track.analyze flow in
  Alcotest.(check bool) "join is conservative" false
    (Private_track.access_is_private flow d 6)

let t_private_call_conservative () =
  (* after a call, previously derived registers (other than SP/GP) are
     conservatively not derived (the paper's interprocedural caveat) *)
  let body =
    [| Insn.Lda (9, 0, sp); Insn.Jsr "f"; Insn.Ldq (1, 0, 9); Insn.Ret |]
  in
  let flow = Flow.of_body body in
  let d = Private_track.analyze flow in
  Alcotest.(check bool) "derived reg invalidated by call" false
    (Private_track.access_is_private flow d 2);
  Alcotest.(check bool) "sp survives the call" true (derived_at flow d 2 sp)

let t_flow_backedge () =
  let body =
    [| Insn.Lab "top"; add 1 1 1; Insn.Bc (Ne, 1, "top");
       Insn.Br "top"; Insn.Ret |]
  in
  let flow = Flow.of_body body in
  Alcotest.(check bool) "conditional backedge" true (Flow.is_backedge flow 2);
  Alcotest.(check bool) "unconditional backedge" true (Flow.is_backedge flow 3);
  Alcotest.(check (list int)) "branch successors" [ 3; 0 ] (Flow.succs flow 2)

let () =
  Alcotest.run "dataflow"
    [ ( "liveness",
        [ Alcotest.test_case "straight line" `Quick t_live_straightline;
          Alcotest.test_case "branches" `Quick t_live_through_branch;
          Alcotest.test_case "loops" `Quick t_live_loop;
          Alcotest.test_case "free registers" `Quick t_free_regs;
          Alcotest.test_case "calls" `Quick t_call_clobbers ] );
      ( "private tracking",
        [ Alcotest.test_case "basics" `Quick t_private_basics;
          Alcotest.test_case "arithmetic chains" `Quick t_private_arith_chain;
          Alcotest.test_case "join meet" `Quick t_private_meet_at_join;
          Alcotest.test_case "call conservatism" `Quick
            t_private_call_conservative ] );
      ("flow", [ Alcotest.test_case "backedges" `Quick t_flow_backedge ])
    ]
