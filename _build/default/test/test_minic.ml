(* MiniC compiler semantics: each program runs uninstrumented on one
   node; its printed output is checked against the value computed in
   OCaml.  These pin down the code generator (expressions, control flow,
   calls, spills, the register cache for locals, floats) that everything
   else builds on. *)

open Shasta_minic.Builder

let run_seq prog = Test_support.Support.ground_truth prog

let check name prog expected =
  Alcotest.test_case name `Quick (fun () ->
    Alcotest.(check string) name expected (run_seq prog))

let lines l = String.concat "" (List.map (fun s -> s ^ "\n") l)

let t_arith =
  check "integer arithmetic"
    (prog
       [ proc "work"
           [ print_int (i 2 +% i 3);
             print_int (i 10 -% i 4);
             print_int (i 6 *% i 7);
             print_int (i 17 /% i 5);
             print_int (i 17 %% i 5);
             print_int (neg (i 17) /% i 5);
             print_int (i 1 <<% i 10);
             print_int (i 1024 >>% i 3);
             print_int (i 0xF0 &% i 0x3C);
             print_int (i 0xF0 |% i 0x0F);
             print_int (i 0xF0 ^% i 0xFF)
           ]
       ])
    (lines [ "5"; "6"; "42"; "3"; "2"; "-3"; "1024"; "128"; "48"; "255"; "15" ])

let t_compare =
  check "comparisons"
    (prog
       [ proc "work"
           [ print_int (i 3 <% i 4);
             print_int (i 4 <% i 3);
             print_int (i 3 <=% i 3);
             print_int (i 3 >% i 4);
             print_int (i 4 >=% i 4);
             print_int (i 5 ==% i 5);
             print_int (i 5 <>% i 5);
             print_int (not_ (i 0));
             print_int (not_ (i 7))
           ]
       ])
    (lines [ "1"; "0"; "1"; "0"; "1"; "1"; "0"; "1"; "0" ])

let t_control =
  check "if/while/for control flow"
    (prog
       [ proc "work"
           [ let_i "s" (i 0);
             for_ "k" (i 0) (i 10) [ set "s" (v "s" +% v "k") ];
             print_int (v "s");
             let_i "n" (i 1);
             while_ (v "n" <% i 100) [ set "n" (v "n" *% i 2) ];
             print_int (v "n");
             if_ (v "n" ==% i 128) [ print_int (i 1) ] [ print_int (i 0) ];
             when_ (v "n" >% i 0) [ print_int (i 99) ]
           ]
       ])
    (lines [ "45"; "128"; "1"; "99" ])

let t_floats =
  check "floating point"
    (prog
       [ proc "work"
           [ let_f "x" (f 1.5 +. f 2.25);
             print_flt (v "x");
             print_flt (v "x" *. f 2.0);
             print_flt (f 10.0 /. f 4.0);
             print_flt (fneg (v "x"));
             print_int (f 1.0 <. f 2.0);
             print_int (f 2.0 <=. f 2.0);
             print_int (f 2.0 ==. f 3.0);
             print_int (f2i (f 3.99));
             print_flt (i2f (i 7))
           ]
       ])
    (lines [ "3.75"; "7.5"; "2.5"; "-3.75"; "1"; "1"; "0"; "3"; "7" ])

let t_calls =
  check "procedure calls and recursion"
    (prog
       [ proc "add" ~params:[ ("a", I); ("b", I) ] ~ret:I
           [ ret (v "a" +% v "b") ];
         proc "fib" ~params:[ ("n", I) ] ~ret:I
           [ if_ (v "n" <% i 2)
               [ ret (v "n") ]
               [ ret (call "fib" [ v "n" -% i 1 ] +% call "fib" [ v "n" -% i 2 ]) ]
           ];
         proc "work"
           [ print_int (call "add" [ i 20; i 22 ]);
             print_int (call "fib" [ i 15 ]);
             (* spills: a live temporary across nested calls *)
             print_int (i 1000 +% call "add" [ call "add" [ i 1; i 2 ]; i 3 ])
           ]
       ])
    (lines [ "42"; "610"; "1006" ])

let t_float_calls =
  check "float parameters and returns"
    (prog
       [ proc "fma" ~params:[ ("a", F); ("b", F); ("c", F) ] ~ret:F
           [ ret ((v "a" *. v "b") +. v "c") ];
         proc "work" [ print_flt (call "fma" [ f 2.0; f 3.0; f 0.5 ]) ]
       ])
    (lines [ "6.5" ])

let t_globals =
  check "globals and appinit"
    (prog
       ~globals:[ ("gi", I); ("gf", F) ]
       [ proc "appinit" [ gset "gi" (i 41); gset "gf" (f 2.5) ];
         proc "work"
           [ gset "gi" (g "gi" +% i 1);
             print_int (g "gi");
             print_flt (g "gf")
           ]
       ])
    (lines [ "42"; "2.5" ])

let t_shared_memory =
  check "shared heap loads and stores"
    (prog
       ~globals:[ ("a", I) ]
       [ proc "appinit"
           [ gset "a" (Gmalloc (i 512));
             for_ "k" (i 0) (i 64) [ sti (g "a") (v "k") (v "k" *% v "k") ]
           ];
         proc "work"
           [ let_i "s" (i 0);
             for_ "k" (i 0) (i 64) [ set "s" (v "s" +% ldi (g "a") (v "k")) ];
             print_int (v "s")
           ]
       ])
    (lines [ string_of_int (let s = ref 0 in
                            for k = 0 to 63 do s := !s + (k * k) done;
                            !s) ])

let t_float_arrays =
  check "float arrays in shared memory"
    (prog
       ~globals:[ ("a", I) ]
       [ proc "appinit"
           [ gset "a" (Gmalloc (i 256));
             for_ "k" (i 0) (i 32)
               [ stf (g "a") (v "k") (i2f (v "k") *. f 0.5) ]
           ];
         proc "work"
           [ let_f "s" (f 0.0);
             for_ "k" (i 0) (i 32) [ set "s" (v "s" +. ldf (g "a") (v "k")) ];
             print_flt (v "s")
           ]
       ])
    (lines [ "248" ])

let t_private_heap =
  check "private heap allocation"
    (prog
       [ proc "work"
           [ let_i "p" (Pmalloc (i 256));
             for_ "k" (i 0) (i 32) [ sti (v "p") (v "k") (v "k" +% i 1) ];
             let_i "s" (i 0);
             for_ "k" (i 0) (i 32) [ set "s" (v "s" +% ldi (v "p") (v "k")) ];
             print_int (v "s")
           ]
       ])
    (lines [ "528" ])

let t_struct_fields =
  check "struct-style field access"
    (prog
       ~globals:[ ("obj", I) ]
       [ proc "appinit"
           [ gset "obj" (Gmalloc (i 32));
             set_fld_i (g "obj") 0 (i 7);
             set_fld_i (g "obj") 8 (i 11);
             set_fld_f (g "obj") 16 (f 1.25);
             set_fld_i (g "obj") 24 (i 100)
           ];
         proc "work"
           [ let_i "p" (g "obj");
             print_int (fld_i (v "p") 0 +% fld_i (v "p") 8 +% fld_i (v "p") 24);
             print_flt (fld_f (v "p") 16)
           ]
       ])
    (lines [ "118"; "1.25" ])

let t_register_cache =
  (* x = x + 1 style updates where the cached register must not go
     stale, plus a call in the middle that spills the cached pointer *)
  check "register cache consistency"
    (prog
       ~globals:[ ("a", I) ]
       [ proc "bump" ~params:[ ("x", I) ] ~ret:I [ ret (v "x" +% i 1) ];
         proc "appinit" [ gset "a" (Gmalloc (i 64)) ];
         proc "work"
           [ let_i "p" (g "a");
             let_i "x" (i 1);
             set "x" (v "x" +% v "x");
             set "x" (v "x" *% v "x");
             sti (v "p") (i 0) (v "x");
             set "x" (call "bump" [ v "x" ]);
             sti (v "p") (i 1) (v "x");
             print_int (ldi (v "p") (i 0));
             print_int (ldi (v "p") (i 1))
           ]
       ])
    (lines [ "4"; "5" ])

let t_deep_exprs =
  check "deep expressions"
    (prog
       [ proc "work"
           [ print_int
               ((i 1 +% i 2) *% (i 3 +% i 4) +% ((i 5 +% i 6) *% (i 7 +% i 8)))
           ]
       ])
    (lines [ "186" ])

let t_ult =
  check "unsigned comparison"
    (prog
       [ proc "work"
           [ print_int (Bin (Ult, i 3, i 5));
             print_int (Bin (Ult, i 5, i 3));
             print_int (Bin (Ult, neg (i 1), i 5))
             (* -1 unsigned is huge *)
           ]
       ])
    (lines [ "1"; "0"; "0" ])

let () =
  Alcotest.run "minic"
    [ ( "semantics",
        [ t_arith; t_compare; t_control; t_floats; t_calls; t_float_calls;
          t_globals; t_shared_memory; t_float_arrays; t_private_heap;
          t_struct_fields; t_register_cache; t_deep_exprs; t_ult ] )
    ]
