lib/minic/builder.ml: Ast
