lib/minic/compile.mli: Ast Program Shasta_isa
