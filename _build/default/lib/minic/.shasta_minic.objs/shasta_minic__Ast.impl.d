lib/minic/ast.ml:
