lib/minic/compile.ml: Ast Hashtbl Insn Int64 List Option Printf Program Reg Shasta Shasta_isa
