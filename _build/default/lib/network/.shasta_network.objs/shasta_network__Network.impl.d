lib/network/network.ml: Array Queue
