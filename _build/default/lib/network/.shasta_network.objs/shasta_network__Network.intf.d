lib/network/network.mli:
