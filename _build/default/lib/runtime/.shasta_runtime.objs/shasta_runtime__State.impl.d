lib/runtime/state.ml: Array Buffer Costs Directory Granularity Hashtbl Image Message Node Pipeline Printf Queue Shasta Shasta_machine Shasta_network Shasta_protocol
