lib/runtime/engine.ml: Array Cache Directory Granularity Hashtbl Layout List Memory Message Node Pipeline Printf Queue Shasta Shasta_machine Shasta_network Shasta_protocol State Tables
