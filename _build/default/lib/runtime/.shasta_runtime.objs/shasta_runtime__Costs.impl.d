lib/runtime/costs.ml:
