lib/runtime/cluster.ml: Array Buffer Engine Exec Hashtbl Image List Memory Node Pipeline Printf Shasta Shasta_isa Shasta_machine Shasta_minic Shasta_network Shasta_protocol State String Tables
