lib/runtime/node.ml: Array Cache Hashtbl List Memory Pipeline Queue Shasta Shasta_machine Shasta_protocol
