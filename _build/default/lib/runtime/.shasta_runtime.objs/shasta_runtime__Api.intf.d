lib/runtime/api.mli: Ast Cluster Shasta Shasta_isa Shasta_machine Shasta_minic Shasta_network State
