lib/runtime/image.ml: Array Hashtbl Insn List Program Shasta Shasta_isa
