lib/runtime/alloc.ml: Array Directory Granularity Hashtbl Node Shasta Shasta_machine Shasta_protocol State Tables
