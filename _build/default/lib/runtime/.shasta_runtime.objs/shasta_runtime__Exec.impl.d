lib/runtime/exec.ml: Alloc Array Buffer Engine Image Insn Int64 List Memory Node Pipeline Printf Reg Shasta Shasta_isa Shasta_machine State
