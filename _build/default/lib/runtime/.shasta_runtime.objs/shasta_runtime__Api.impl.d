lib/runtime/api.ml: Ast Cluster Compile Shasta Shasta_isa Shasta_machine Shasta_minic Shasta_network State
