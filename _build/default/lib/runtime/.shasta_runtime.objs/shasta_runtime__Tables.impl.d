lib/runtime/tables.ml: Array Cache Hashtbl Layout Memory Node Shasta Shasta_machine
