(* Cycle costs of runtime/protocol actions that are not inline code.

   The inline checks are real simulated instructions; everything the
   handlers do (saving "all integer registers so as not to interfere
   with the state of the application", directory lookups, building
   messages) is host code charged through these constants.  Values are
   first-order estimates for a 275 MHz Alpha; the shapes of the paper's
   results depend on their relative, not absolute, magnitudes. *)

type t = {
  handler_entry : int; (* enter a miss handler: register save, dispatch *)
  false_miss : int; (* extra work to discover a false miss *)
  request_issue : int; (* build and issue one protocol request *)
  message_handle : int; (* protocol processing of one received message *)
  poll_cycles : int; (* the three-instruction inline poll sequence *)
  sync_local : int; (* servicing a synchronization event locally *)
  malloc_base : int;
  batch_record : int; (* record one base-register range (Section 4.3) *)
}

let default =
  { handler_entry = 60; false_miss = 30; request_issue = 40;
    message_handle = 70; poll_cycles = 3; sync_local = 50; malloc_base = 250;
    batch_record = 15 }
