(* Per-node runtime state: architectural state, the Shasta runtime's
   bookkeeping (pending lines, invalidation-ack counts, deferred
   invalidations, batch state), and counters. *)

open Shasta_machine

type wait =
  | W_blocks of int list (* until none of these blocks is pending *)
  | W_release (* until no pending blocks and no outstanding acks *)
  | W_sync (* until a synchronization signal (grant/release/wake) *)

type pending_kind = P_read | P_readex | P_upgrade

type pending = {
  mutable pkind : pending_kind;
  (* longwords this node stored while the block was pending: absolute
     address -> stored longword pattern.  The values are kept so that a
     racing invalidation may flag the whole block in memory and the
     eventual reply merge can still overlay the node's own stores
     (Section 4.1's merge of reply data with newly written data). *)
  written : (int, int) Hashtbl.t;
  mutable invalidated : bool; (* an Inv overtook the reply *)
}

type ackstate = { mutable acks_got : int; mutable acks_expected : int option }

(* Invalidations/downgrades deferred while inside batched code
   (Section 4.3): applied at the Batch_end marker. *)
type deferred = D_inv of int | D_downgrade of int

type status = Running | Waiting of wait | Finished

type counters = {
  mutable read_misses : int;
  mutable write_misses : int; (* read-exclusive *)
  mutable upgrade_misses : int;
  mutable batch_misses : int;
  mutable false_misses : int;
  mutable stall_cycles : int;
  mutable polls : int;
  mutable msgs_handled : int;
  mutable lock_acquires : int;
  mutable barriers_passed : int;
  mutable insns : int;
  mutable store_reissues : int;
  (* dynamic access mix, for the instrumented-frequency table *)
  mutable dyn_loads : int;
  mutable dyn_loads_shared : int;
  mutable dyn_stores : int;
  mutable dyn_stores_shared : int;
}

let fresh_counters () =
  { read_misses = 0; write_misses = 0; upgrade_misses = 0; batch_misses = 0;
    false_misses = 0; stall_cycles = 0; polls = 0; msgs_handled = 0;
    lock_acquires = 0; barriers_passed = 0; insns = 0; store_reissues = 0;
    dyn_loads = 0; dyn_loads_shared = 0; dyn_stores = 0;
    dyn_stores_shared = 0 }

type t = {
  id : int;
  mem : Memory.t;
  caches : Cache.hierarchy;
  pipe : Pipeline.t;
  regs : int array;
  fregs : float array;
  mutable pc_proc : int;
  mutable pc_idx : int;
  mutable call_stack : (int * int) list;
  mutable status : status;
  mutable on_wake : unit -> unit;
  mutable wait_started : int; (* cycle when the current wait began *)
  (* Shasta runtime state *)
  mutable in_batch : bool;
  mutable batch_stores : (int * int) list; (* absolute addr, byte size *)
  pending : (int, pending) Hashtbl.t; (* block base -> pending *)
  acks : (int, ackstate) Hashtbl.t; (* block base -> outstanding acks *)
  mutable unacked : int; (* #blocks with incomplete invalidation acks *)
  mutable deferred : deferred list;
  waitq : (int, Shasta_protocol.Message.t Queue.t) Hashtbl.t;
  mutable sync_signal : bool;
  mutable priv_brk : int; (* private heap bump pointer *)
  counters : counters;
}

let create ~id ~pipe_config =
  let caches = Cache.alpha_hierarchy () in
  { id;
    mem = Memory.create ();
    caches;
    pipe = Pipeline.create ~caches pipe_config;
    regs = Array.make 32 0;
    fregs = Array.make 32 0.0;
    pc_proc = 0;
    pc_idx = 0;
    call_stack = [];
    status = Running;
    on_wake = (fun () -> ());
    wait_started = 0;
    in_batch = false;
    batch_stores = [];
    pending = Hashtbl.create 64;
    acks = Hashtbl.create 16;
    unacked = 0;
    deferred = [];
    waitq = Hashtbl.create 16;
    sync_signal = false;
    priv_brk = Shasta.Layout.static_limit + 0x0800_0000 (* 0x1800_0000 *);
    counters = fresh_counters () }

let time t = Pipeline.cycle t.pipe

let is_pending t block = Hashtbl.mem t.pending block

let wait_satisfied t =
  match t.status with
  | Running | Finished -> true
  | Waiting w ->
    (match w with
     | W_blocks bs -> List.for_all (fun b -> not (is_pending t b)) bs
     | W_release -> Hashtbl.length t.pending = 0 && t.unacked = 0
     | W_sync -> t.sync_signal)

(* Record a write of [bytes] at absolute address [addr] into the pending
   entry's written map, capturing the stored longword values from memory
   (the store has already executed). *)
let record_written (p : pending) ~mem ~addr ~bytes =
  let first = addr land lnot 3 in
  let n = (addr + bytes - 1 - first) / 4 in
  for k = 0 to n do
    let a = first + (4 * k) in
    Hashtbl.replace p.written a (Shasta_machine.Memory.read_long_u mem a)
  done

let enqueue_waiter t block msg =
  let q =
    match Hashtbl.find_opt t.waitq block with
    | Some q -> q
    | None ->
      let q = Queue.create () in
      Hashtbl.add t.waitq block q;
      q
  in
  Queue.push msg q

let take_waiters t block =
  match Hashtbl.find_opt t.waitq block with
  | Some q ->
    Hashtbl.remove t.waitq block;
    List.of_seq (Queue.to_seq q)
  | None -> []
