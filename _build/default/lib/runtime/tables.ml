(* State-table, exclusive-table and flag maintenance.

   These write the very memory the inline checks read: the byte-per-line
   state table at addr >> line_shift, the bit-per-line exclusive table
   (Section 3.3), and the -253 flag longwords of invalid lines
   (Section 3.2).  All handler-side writes invalidate the corresponding
   hardware cache lines, since on a real machine the protocol code's
   stores would displace/update them behind the checks. *)

open Shasta_machine
open Shasta

let line_bytes ~ls = 1 lsl ls

(* --- state table ---------------------------------------------------- *)

let set_state (node : Node.t) ~ls addr st =
  let saddr = addr lsr ls in
  Memory.write_byte node.mem saddr st;
  Cache.dinvalidate node.caches ~addr:saddr ~len:1

let get_state (node : Node.t) ~ls addr =
  Memory.read_byte node.mem (addr lsr ls)

let set_state_range (node : Node.t) ~ls ~addr ~len st =
  let lb = line_bytes ~ls in
  let first = addr land lnot (lb - 1) in
  let last = addr + len - 1 in
  let n = ((last - first) / lb) + 1 in
  for k = 0 to n - 1 do
    Memory.write_byte node.mem ((first + (k * lb)) lsr ls) st
  done;
  Cache.dinvalidate node.caches ~addr:(first lsr ls) ~len:(max n 1)

(* --- exclusive table -------------------------------------------------- *)

let set_excl (node : Node.t) ~ls addr v =
  let byte_addr = addr lsr (ls + 3) in
  let bit = (addr lsr ls) land 7 in
  let b = Memory.read_byte node.mem byte_addr in
  let b' = if v then b lor (1 lsl bit) else b land lnot (1 lsl bit) in
  if b' <> b then begin
    Memory.write_byte node.mem byte_addr b';
    Cache.dinvalidate node.caches ~addr:byte_addr ~len:1
  end

let set_excl_range (node : Node.t) ~ls ~addr ~len v =
  let lb = line_bytes ~ls in
  let first = addr land lnot (lb - 1) in
  let last = addr + len - 1 in
  let n = ((last - first) / lb) + 1 in
  for k = 0 to n - 1 do
    set_excl node ~ls (first + (k * lb)) v
  done

(* Mark a whole private region exclusive in the table so that store
   checks without the range check (the paper's last Table 2 column)
   succeed on private data. *)
let mark_private_exclusive (node : Node.t) ~ls ~addr ~len =
  let lb = line_bytes ~ls in
  (* fast path: whole bytes of the exclusive table (8 lines each) *)
  let first_line = addr / lb and last_line = (addr + len - 1) / lb in
  (* the exclusive-table byte address for line L is simply L / 8 *)
  for b = first_line / 8 to last_line / 8 do
    Memory.write_byte node.mem b 0xFF
  done

(* --- flags ------------------------------------------------------------ *)

(* Store the flag value into every longword of [addr, addr+len) except
   those for which [skip] holds (pending written longwords must survive,
   Section 4.1). *)
let flag_range ?(skip = fun _ -> false) (node : Node.t) ~addr ~len =
  let n = len / 4 in
  for k = 0 to n - 1 do
    let a = addr + (4 * k) in
    if not (skip a) then Memory.write_long_u node.mem a Layout.flag_pattern
  done;
  Cache.dinvalidate node.caches ~addr ~len

(* --- block-level transitions ----------------------------------------- *)

let make_exclusive (node : Node.t) ~ls ~addr ~len =
  set_state_range node ~ls ~addr ~len Layout.st_exclusive;
  set_excl_range node ~ls ~addr ~len true

let make_shared (node : Node.t) ~ls ~addr ~len =
  set_state_range node ~ls ~addr ~len Layout.st_shared;
  set_excl_range node ~ls ~addr ~len false

let make_invalid ?skip (node : Node.t) ~ls ~addr ~len =
  set_state_range node ~ls ~addr ~len Layout.st_invalid;
  set_excl_range node ~ls ~addr ~len false;
  flag_range ?skip node ~addr ~len

let make_pending (node : Node.t) ~ls ~addr ~len ~shared =
  set_state_range node ~ls ~addr ~len
    (if shared then Layout.st_pending_shared else Layout.st_pending_invalid);
  set_excl_range node ~ls ~addr ~len false

(* Copy a block's longwords out of a node's memory (for data replies). *)
let read_block (node : Node.t) ~addr ~len =
  Memory.blit_out node.mem ~addr ~nlongs:(len / 4)

(* Merge reply data into memory, then overlay the longwords the node
   wrote while the block was pending (non-stalling stores, Section 4.1:
   "merge the reply data with the newly written data"). *)
let merge_block_data (node : Node.t) ~addr ~(written : (int, int) Hashtbl.t)
    (data : int array) =
  Array.iteri
    (fun k v ->
      let a = addr + (4 * k) in
      match Hashtbl.find_opt written a with
      | Some mine -> Memory.write_long_u node.mem a mine
      | None -> Memory.write_long_u node.mem a v)
    data;
  Cache.dinvalidate node.caches ~addr ~len:(4 * Array.length data)
