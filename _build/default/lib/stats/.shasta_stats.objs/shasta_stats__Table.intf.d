lib/stats/table.mli:
