(* LU: blocked dense LU factorization without pivoting, the contiguous
   blocks version of SPLASH-2.

   Blocks are stored contiguously (block (I,J) occupies one bs*bs*8-byte
   run), assigned to processors round-robin over the 2D block index.
   Each outer step factors the diagonal block, solves the row and column
   panels, then applies the rank-bs update to the trailing matrix, with
   barriers between the phases.  The access pattern is the paper's
   coarse-grain-friendly case: blocks are single-writer between
   barriers and migrate as units. *)

open Shasta_minic.Builder
open Shasta_minic.Ast

(* element (r,c) of the bs x bs block at pointer p *)
let eaddr ~bs p r c = p +% (((r *% i bs) +% c) <<% i 3)
let eld ~bs p r c = Load (F, eaddr ~bs p r c, 0)
let est ~bs p r c x = Store (F, eaddr ~bs p r c, 0, x)

let program ?(n = 64) ?(bs = 8) () =
  if n mod bs <> 0 then invalid_arg "Lu.program: bs must divide n";
  let nb = n / bs in
  let eld = eld ~bs and est = est ~bs in
  prog
    ~globals:[ ("A", I) ]
    [ (* base address of block (bi, bj) *)
      proc "blk" ~params:[ ("bi", I); ("bj", I) ] ~ret:I
        [ ret (g "A" +% (((v "bi" *% i nb) +% v "bj") *% i (bs * bs * 8))) ];
      (* in-place LU of the diagonal block (L unit lower, U upper) *)
      proc "lu0" ~params:[ ("d", I) ]
        [ for_ "k" (i 0) (i bs)
            [ let_f "pivot" (eld (v "d") (v "k") (v "k"));
              for_ "r" (v "k" +% i 1) (i bs)
                [ est (v "d") (v "r") (v "k")
                    (eld (v "d") (v "r") (v "k") /. v "pivot");
                  let_f "m" (eld (v "d") (v "r") (v "k"));
                  for_ "c" (v "k" +% i 1) (i bs)
                    [ est (v "d") (v "r") (v "c")
                        (eld (v "d") (v "r") (v "c")
                         -. (v "m" *. eld (v "d") (v "k") (v "c")))
                    ]
                ]
            ]
        ];
      (* column panel: a := a * u^-1 (solve X U = A by forward subst) *)
      proc "bdiv" ~params:[ ("a", I); ("u", I) ]
        [ for_ "r" (i 0) (i bs)
            [ for_ "c" (i 0) (i bs)
                [ let_f "s" (eld (v "a") (v "r") (v "c"));
                  for_ "t" (i 0) (v "c")
                    [ set "s"
                        (v "s"
                         -. (eld (v "a") (v "r") (v "t")
                             *. eld (v "u") (v "t") (v "c")))
                    ];
                  est (v "a") (v "r") (v "c")
                    (v "s" /. eld (v "u") (v "c") (v "c"))
                ]
            ]
        ];
      (* row panel: a := l^-1 * a (unit lower triangular solve) *)
      proc "bmodd" ~params:[ ("l", I); ("a", I) ]
        [ for_ "c" (i 0) (i bs)
            [ for_ "r" (i 0) (i bs)
                [ let_f "s" (eld (v "a") (v "r") (v "c"));
                  for_ "t" (i 0) (v "r")
                    [ set "s"
                        (v "s"
                         -. (eld (v "l") (v "r") (v "t")
                             *. eld (v "a") (v "t") (v "c")))
                    ];
                  est (v "a") (v "r") (v "c") (v "s")
                ]
            ]
        ];
      (* interior update: aij -= aik * akj *)
      proc "bmod" ~params:[ ("aij", I); ("aik", I); ("akj", I) ]
        [ for_ "r" (i 0) (i bs)
            [ for_ "c" (i 0) (i bs)
                [ let_f "s" (eld (v "aij") (v "r") (v "c"));
                  for_ "t" (i 0) (i bs)
                    [ set "s"
                        (v "s"
                         -. (eld (v "aik") (v "r") (v "t")
                             *. eld (v "akj") (v "t") (v "c")))
                    ];
                  est (v "aij") (v "r") (v "c") (v "s")
                ]
            ]
        ];
      proc "appinit"
        [ gset "A" (Gmalloc (i (n * n * 8)));
          (* diagonally dominant matrix so no pivoting is needed *)
          for_ "gi" (i 0) (i n)
            [ for_ "gj" (i 0) (i n)
                [ let_i "p"
                    (call "blk" [ v "gi" /% i bs; v "gj" /% i bs ]);
                  let_f "x"
                    (f 1.0 /. i2f (v "gi" +% v "gj" +% i 1));
                  when_ (v "gi" ==% v "gj") [ set "x" (f (float_of_int n)) ];
                  est (v "p") (v "gi" %% i bs) (v "gj" %% i bs) (v "x")
                ]
            ]
        ];
      proc "work"
        [ for_ "k" (i 0) (i nb)
            [ (* diagonal factorization by its owner *)
              when_ (((v "k" *% i nb) +% v "k") %% Nprocs ==% Pid)
                [ expr (Call ("lu0", [ call "blk" [ v "k"; v "k" ] ])) ];
              barrier;
              (* panels *)
              for_ "j" (v "k" +% i 1) (i nb)
                [ when_ (((v "k" *% i nb) +% v "j") %% Nprocs ==% Pid)
                    [ expr
                        (Call
                           ( "bmodd",
                             [ call "blk" [ v "k"; v "k" ];
                               call "blk" [ v "k"; v "j" ] ] ))
                    ]
                ];
              for_ "r" (v "k" +% i 1) (i nb)
                [ when_ (((v "r" *% i nb) +% v "k") %% Nprocs ==% Pid)
                    [ expr
                        (Call
                           ( "bdiv",
                             [ call "blk" [ v "r"; v "k" ];
                               call "blk" [ v "k"; v "k" ] ] ))
                    ]
                ];
              barrier;
              (* trailing update *)
              for_ "r" (v "k" +% i 1) (i nb)
                [ for_ "j" (v "k" +% i 1) (i nb)
                    [ when_ (((v "r" *% i nb) +% v "j") %% Nprocs ==% Pid)
                        [ expr
                            (Call
                               ( "bmod",
                                 [ call "blk" [ v "r"; v "j" ];
                                   call "blk" [ v "r"; v "k" ];
                                   call "blk" [ v "k"; v "j" ] ] ))
                        ]
                    ]
                ];
              barrier
            ];
          (* deterministic checksum by processor 0 *)
          when_ (Pid ==% i 0)
            [ let_f "sum" (f 0.0);
              for_ "bi" (i 0) (i nb)
                [ for_ "bj" (i 0) (i nb)
                    [ let_i "p" (call "blk" [ v "bi"; v "bj" ]);
                      for_ "r" (i 0) (i bs)
                        [ for_ "c" (i 0) (i bs)
                            [ set "sum" (v "sum" +. eld (v "p") (v "r") (v "c")) ]
                        ]
                    ]
                ];
              print_flt (v "sum")
            ]
        ]
    ]

(* Reference factorization with the same operation order, for tests. *)
let reference_checksum ~n ~bs =
  let ( +. ) = Stdlib.( +. ) and ( -. ) = Stdlib.( -. ) in
  let ( *. ) = Stdlib.( *. ) and ( /. ) = Stdlib.( /. ) in

  let a = Array.make_matrix n n 0.0 in
  for gi = 0 to n - 1 do
    for gj = 0 to n - 1 do
      a.(gi).(gj) <-
        (if gi = gj then float_of_int n else 1.0 /. float_of_int (gi + gj + 1))
    done
  done;
  let nb = n / bs in
  let eget bi bj r c = a.((bi * bs) + r).((bj * bs) + c) in
  let eset bi bj r c x = a.((bi * bs) + r).((bj * bs) + c) <- x in
  for k = 0 to nb - 1 do
    (* lu0 *)
    for kk = 0 to bs - 1 do
      let pivot = eget k k kk kk in
      for r = kk + 1 to bs - 1 do
        eset k k r kk (eget k k r kk /. pivot);
        let m = eget k k r kk in
        for c = kk + 1 to bs - 1 do
          eset k k r c (eget k k r c -. (m *. eget k k kk c))
        done
      done
    done;
    (* bmodd row panel *)
    for j = k + 1 to nb - 1 do
      for c = 0 to bs - 1 do
        for r = 0 to bs - 1 do
          let s = ref (eget k j r c) in
          for t = 0 to r - 1 do
            s := !s -. (eget k k r t *. eget k j t c)
          done;
          eset k j r c !s
        done
      done
    done;
    (* bdiv column panel *)
    for r0 = k + 1 to nb - 1 do
      for r = 0 to bs - 1 do
        for c = 0 to bs - 1 do
          let s = ref (eget r0 k r c) in
          for t = 0 to c - 1 do
            s := !s -. (eget r0 k r t *. eget k k t c)
          done;
          eset r0 k r c (!s /. eget k k c c)
        done
      done
    done;
    (* bmod trailing *)
    for r0 = k + 1 to nb - 1 do
      for j = k + 1 to nb - 1 do
        for r = 0 to bs - 1 do
          for c = 0 to bs - 1 do
            let s = ref (eget r0 j r c) in
            for t = 0 to bs - 1 do
              s := !s -. (eget r0 k r t *. eget k j t c)
            done;
            eset r0 j r c !s
          done
        done
      done
    done
  done;
  let sum = ref 0.0 in
  for bi = 0 to nb - 1 do
    for bj = 0 to nb - 1 do
      for r = 0 to bs - 1 do
        for c = 0 to bs - 1 do
          sum := !sum +. eget bi bj r c
        done
      done
    done
  done;
  !sum
