(* EM3D-like: electromagnetic wave propagation on a bipartite graph —
   the classic fine-grain irregular benchmark of the software-DSM
   literature (Split-C; used by Blizzard and in Shasta-era comparisons).

   E nodes update from randomly chosen H nodes through weighted edges
   and vice versa, alternating with barriers.  The remote reads are
   data-dependent and scattered: exactly the access pattern fine-grain
   coherence targets, since page- or region-grain systems would ship
   far more than the single values needed.  Each value is updated by
   one owner from previous-phase values, so results are deterministic
   at any processor count. *)

open Shasta_minic.Builder
open Shasta_minic.Ast

let program ?(nnodes = 128) ?(degree = 4) ?(iters = 3) () =
  let edges = nnodes * degree in
  prog
    ~globals:
      [ ("eval", I); ("hval", I); ("edep", I); ("hdep", I); ("w", I) ]
    [ proc "appinit"
        [ gset "eval" (Gmalloc (i (nnodes * 8)));
          gset "hval" (Gmalloc (i (nnodes * 8)));
          gset "edep" (Gmalloc (i (edges * 8)));
          gset "hdep" (Gmalloc (i (edges * 8)));
          gset "w" (Gmalloc (i (edges * 8)));
          let_i "seed" (i 7);
          for_ "k" (i 0) (i nnodes)
            [ stf (g "eval") (v "k") (i2f (v "k" %% i 13) *. f 0.5);
              stf (g "hval") (v "k") (i2f (v "k" %% i 7) *. f 0.25)
            ];
          for_ "k" (i 0) (i edges)
            [ set "seed"
                (((v "seed" *% i 1103515245) +% i 12345) &% i 0x7FFFFFFF);
              sti (g "edep") (v "k") (v "seed" %% i nnodes);
              set "seed"
                (((v "seed" *% i 1103515245) +% i 12345) &% i 0x7FFFFFFF);
              sti (g "hdep") (v "k") (v "seed" %% i nnodes);
              stf (g "w") (v "k")
                (f 0.01 *. i2f ((v "k" %% i 9) +% i 1))
            ]
        ];
      proc "work"
        [ let_i "per" ((i nnodes +% Nprocs -% i 1) /% Nprocs);
          let_i "lo" (Pid *% v "per");
          let_i "hi" (v "lo" +% v "per");
          when_ (v "hi" >% i nnodes) [ set "hi" (i nnodes) ];
          for_ "it" (i 0) (i iters)
            [ (* E phase: gather from dependent H nodes *)
              for_ "n" (v "lo") (v "hi")
                [ let_f "acc" (ldf (g "eval") (v "n"));
                  for_ "d" (i 0) (i degree)
                    [ let_i "e" ((v "n" *% i degree) +% v "d");
                      set "acc"
                        (v "acc"
                         -. (ldf (g "w") (v "e")
                             *. ldf (g "hval") (ldi (g "edep") (v "e"))))
                    ];
                  stf (g "eval") (v "n") (v "acc")
                ];
              barrier;
              (* H phase: gather from dependent E nodes *)
              for_ "n" (v "lo") (v "hi")
                [ let_f "acc" (ldf (g "hval") (v "n"));
                  for_ "d" (i 0) (i degree)
                    [ let_i "e" ((v "n" *% i degree) +% v "d");
                      set "acc"
                        (v "acc"
                         -. (ldf (g "w") (v "e")
                             *. ldf (g "eval") (ldi (g "hdep") (v "e"))))
                    ];
                  stf (g "hval") (v "n") (v "acc")
                ];
              barrier
            ];
          when_ (Pid ==% i 0)
            [ let_f "sum" (f 0.0);
              for_ "k" (i 0) (i nnodes)
                [ set "sum"
                    (v "sum" +. ldf (g "eval") (v "k")
                     +. ldf (g "hval") (v "k"))
                ];
              print_flt (v "sum")
            ]
        ]
    ]

let reference_checksum ~nnodes ~degree ~iters =
  let ( +. ) = Stdlib.( +. ) and ( -. ) = Stdlib.( -. ) in
  let ( *. ) = Stdlib.( *. ) in
  let edges = nnodes * degree in
  let eval = Array.init nnodes (fun k -> float_of_int (k mod 13) *. 0.5) in
  let hval = Array.init nnodes (fun k -> float_of_int (k mod 7) *. 0.25) in
  let edep = Array.make edges 0 and hdep = Array.make edges 0 in
  let w = Array.make edges 0.0 in
  let seed = ref 7 in
  for k = 0 to edges - 1 do
    seed := ((!seed * 1103515245) + 12345) land 0x7FFFFFFF;
    edep.(k) <- !seed mod nnodes;
    seed := ((!seed * 1103515245) + 12345) land 0x7FFFFFFF;
    hdep.(k) <- !seed mod nnodes;
    w.(k) <- 0.01 *. float_of_int ((k mod 9) + 1)
  done;
  for _ = 1 to iters do
    let snapshot = Array.copy hval in
    for n = 0 to nnodes - 1 do
      let acc = ref eval.(n) in
      for d = 0 to degree - 1 do
        let e = (n * degree) + d in
        acc := !acc -. (w.(e) *. snapshot.(edep.(e)))
      done;
      eval.(n) <- !acc
    done;
    let snapshot = Array.copy eval in
    for n = 0 to nnodes - 1 do
      let acc = ref hval.(n) in
      for d = 0 to degree - 1 do
        let e = (n * degree) + d in
        acc := !acc -. (w.(e) *. snapshot.(hdep.(e)))
      done;
      hval.(n) <- !acc
    done
  done;
  (* same accumulation order as the MiniC checksum loop *)
  let sum = ref 0.0 in
  for k = 0 to nnodes - 1 do
    sum := !sum +. eval.(k) +. hval.(k)
  done;
  !sum
