(* Barnes-like: hierarchical N-body force computation over an irregular
   linked structure.

   Particles are hashed into a uniform grid of cells; each cell keeps a
   linked particle list built in parallel under per-cell locks, and a
   centre-of-mass summary.  Force evaluation walks the cell array: near
   cells are expanded by chasing the particle list (pointer-chasing
   loads of small records — Barnes' irregular access pattern), far
   cells contribute through their summary.  All arithmetic is integer,
   so sums are independent of list order and the result is
   deterministic at any processor count. *)

open Shasta_minic.Builder
open Shasta_minic.Ast

(* particle record: x y z mass ax next  (8 bytes each) *)
let p_bytes = 48
let p_x = 0 and p_y = 8 and p_z = 16 and p_m = 24 and p_ax = 32 and p_next = 40

(* cell record: mx my mz mass head *)
let c_bytes = 40
let c_mx = 0 and c_my = 8 and c_mz = 16 and c_m = 24 and c_head = 32

let program ?(nparts = 128) ?(cdim = 4) () =
  let ncells = cdim * cdim * cdim in
  let span = 64 (* coordinate range per cell axis *) in
  prog
    ~globals:[ ("parts", I); ("cells", I) ]
    [ proc "cell_of" ~params:[ ("x", I); ("y", I); ("z", I) ] ~ret:I
        [ ret
            ((((v "z" /% i span *% i cdim) +% (v "y" /% i span)) *% i cdim)
             +% (v "x" /% i span))
        ];
      proc "appinit"
        [ gset "parts" (Gmalloc (i (nparts * p_bytes)));
          gset "cells" (Gmalloc (i (ncells * c_bytes)));
          let_i "seed" (i 99);
          for_ "k" (i 0) (i nparts)
            [ let_i "p" (g "parts" +% (v "k" *% i p_bytes));
              set "seed" (((v "seed" *% i 1103515245) +% i 12345)
                          &% i 0x7FFFFFFF);
              set_fld_i (v "p") p_x (v "seed" %% i (span * cdim));
              set "seed" (((v "seed" *% i 1103515245) +% i 12345)
                          &% i 0x7FFFFFFF);
              set_fld_i (v "p") p_y (v "seed" %% i (span * cdim));
              set "seed" (((v "seed" *% i 1103515245) +% i 12345)
                          &% i 0x7FFFFFFF);
              set_fld_i (v "p") p_z (v "seed" %% i (span * cdim));
              set_fld_i (v "p") p_m ((v "k" %% i 7) +% i 1);
              set_fld_i (v "p") p_ax (i 0);
              set_fld_i (v "p") p_next (neg (i 1))
            ];
          for_ "c" (i 0) (i ncells)
            [ let_i "cp" (g "cells" +% (v "c" *% i c_bytes));
              set_fld_i (v "cp") c_mx (i 0);
              set_fld_i (v "cp") c_my (i 0);
              set_fld_i (v "cp") c_mz (i 0);
              set_fld_i (v "cp") c_m (i 0);
              set_fld_i (v "cp") c_head (neg (i 1))
            ]
        ];
      proc "work"
        [ let_i "per" ((i nparts +% Nprocs -% i 1) /% Nprocs);
          let_i "lo" (Pid *% v "per");
          let_i "hi" (v "lo" +% v "per");
          when_ (v "hi" >% i nparts) [ set "hi" (i nparts) ];
          (* phase 1: insert own particles into cell lists under locks *)
          for_ "k" (v "lo") (v "hi")
            [ let_i "p" (g "parts" +% (v "k" *% i p_bytes));
              let_i "c"
                (call "cell_of"
                   [ fld_i (v "p") p_x; fld_i (v "p") p_y; fld_i (v "p") p_z ]);
              let_i "cp" (g "cells" +% (v "c" *% i c_bytes));
              lock (v "c");
              set_fld_i (v "p") p_next (fld_i (v "cp") c_head);
              set_fld_i (v "cp") c_head (v "k");
              unlock (v "c")
            ];
          barrier;
          (* phase 2: per-cell summaries (cells partitioned) *)
          let_i "cper" ((i ncells +% Nprocs -% i 1) /% Nprocs);
          let_i "clo" (Pid *% v "cper");
          let_i "chi" (v "clo" +% v "cper");
          when_ (v "chi" >% i ncells) [ set "chi" (i ncells) ];
          for_ "c" (v "clo") (v "chi")
            [ let_i "cp" (g "cells" +% (v "c" *% i c_bytes));
              let_i "cur" (fld_i (v "cp") c_head);
              while_ (v "cur" >=% i 0)
                [ let_i "q" (g "parts" +% (v "cur" *% i p_bytes));
                  let_i "m" (fld_i (v "q") p_m);
                  set_fld_i (v "cp") c_mx
                    (fld_i (v "cp") c_mx +% (v "m" *% fld_i (v "q") p_x));
                  set_fld_i (v "cp") c_my
                    (fld_i (v "cp") c_my +% (v "m" *% fld_i (v "q") p_y));
                  set_fld_i (v "cp") c_mz
                    (fld_i (v "cp") c_mz +% (v "m" *% fld_i (v "q") p_z));
                  set_fld_i (v "cp") c_m (fld_i (v "cp") c_m +% v "m");
                  set "cur" (fld_i (v "q") p_next)
                ]
            ];
          barrier;
          (* phase 3: forces on own particles *)
          for_ "k" (v "lo") (v "hi")
            [ let_i "p" (g "parts" +% (v "k" *% i p_bytes));
              let_i "px" (fld_i (v "p") p_x);
              let_i "mycell"
                (call "cell_of"
                   [ v "px"; fld_i (v "p") p_y; fld_i (v "p") p_z ]);
              let_i "acc" (i 0);
              for_ "c" (i 0) (i ncells)
                [ let_i "cp" (g "cells" +% (v "c" *% i c_bytes));
                  let_i "cm" (fld_i (v "cp") c_m);
                  when_ (v "cm" >% i 0)
                    [ (* near cell (same x/y/z slab distance <= 1): exact *)
                      let_i "dz" ((v "c" /% i (cdim * cdim))
                                  -% (v "mycell" /% i (cdim * cdim)));
                      when_ (v "dz" <% i 0) [ set "dz" (neg (v "dz")) ];
                      if_ (v "dz" <=% i 1)
                        [ let_i "cur" (fld_i (v "cp") c_head);
                          while_ (v "cur" >=% i 0)
                            [ let_i "q" (g "parts" +% (v "cur" *% i p_bytes));
                              when_ (v "cur" <>% v "k")
                                [ let_i "dx" (fld_i (v "q") p_x -% v "px");
                                  let_i "r2"
                                    ((v "dx" *% v "dx") +% i 16);
                                  set "acc"
                                    (v "acc"
                                     +% (fld_i (v "q") p_m *% v "dx" *% i 256
                                         /% v "r2"))
                                ];
                              set "cur" (fld_i (v "q") p_next)
                            ]
                        ]
                        [ (* far cell: use the centre of mass *)
                          let_i "comx" (fld_i (v "cp") c_mx /% v "cm");
                          let_i "dx" (v "comx" -% v "px");
                          let_i "r2" ((v "dx" *% v "dx") +% i 16);
                          set "acc"
                            (v "acc" +% (v "cm" *% v "dx" *% i 256 /% v "r2"))
                        ]
                    ]
                ];
              set_fld_i (v "p") p_ax (v "acc")
            ];
          barrier;
          when_ (Pid ==% i 0)
            [ let_i "sum" (i 0);
              for_ "k" (i 0) (i nparts)
                [ let_i "p" (g "parts" +% (v "k" *% i p_bytes));
                  set "sum"
                    ((v "sum" +% (fld_i (v "p") p_ax *% (v "k" +% i 1)))
                     %% i 1000000007)
                ];
              when_ (v "sum" <% i 0) [ set "sum" (v "sum" +% i 1000000007) ];
              print_int (v "sum")
            ]
        ]
    ]
