(* Ocean-like: iterative 5-point Jacobi relaxation on a 2D grid,
   row-partitioned across processors with a barrier per sweep.

   This reproduces Ocean's check-relevant character: FP loads dominate,
   the inner loop reads neighbouring rows (nearest-neighbour sharing at
   partition boundaries), and accesses stride contiguously (good spatial
   locality, so the coarse-grain protocol behaviour matters at row
   boundaries only). *)

open Shasta_minic.Builder
open Shasta_minic.Ast

let addr grid n r c = grid +% (((r *% i n) +% c) <<% i 3)
let gld grid n r c = Load (F, addr grid n r c, 0)
let gst grid n r c x = Store (F, addr grid n r c, 0, x)

let program ?(n = 34) ?(iters = 4) () =
  prog
    ~globals:[ ("cur", I); ("next", I) ]
    [ proc "sweep" ~params:[ ("src", I); ("dst", I); ("lo", I); ("hi", I) ]
        [ for_ "r" (v "lo") (v "hi")
            [ for_ "c" (i 1) (i (n - 1))
                [ gst (v "dst") n (v "r") (v "c")
                    (f 0.25
                     *. (gld (v "src") n (v "r" -% i 1) (v "c")
                         +. gld (v "src") n (v "r" +% i 1) (v "c")
                         +. gld (v "src") n (v "r") (v "c" -% i 1)
                         +. gld (v "src") n (v "r") (v "c" +% i 1)))
                ]
            ]
        ];
      proc "appinit"
        [ gset "cur" (Gmalloc (i (n * n * 8)));
          gset "next" (Gmalloc (i (n * n * 8)));
          for_ "r" (i 0) (i n)
            [ for_ "c" (i 0) (i n)
                [ let_f "x" (f 0.0);
                  (* hot boundary on two edges *)
                  when_ (v "r" ==% i 0) [ set "x" (f 1.0) ];
                  when_ (v "c" ==% i 0) [ set "x" (f 0.5) ];
                  gst (g "cur") n (v "r") (v "c") (v "x");
                  gst (g "next") n (v "r") (v "c") (v "x")
                ]
            ]
        ];
      proc "work"
        [ (* interior rows 1..n-2 split across processors *)
          let_i "rows" (i (n - 2));
          let_i "per" ((v "rows" +% Nprocs -% i 1) /% Nprocs);
          let_i "lo" (i 1 +% (Pid *% v "per"));
          let_i "hi" (v "lo" +% v "per");
          when_ (v "hi" >% i (n - 1)) [ set "hi" (i (n - 1)) ];
          when_ (v "lo" >% i (n - 1)) [ set "lo" (i (n - 1)) ];
          for_ "it" (i 0) (i iters)
            [ expr (Call ("sweep", [ g "cur"; g "next"; v "lo"; v "hi" ]));
              barrier;
              (* every node swaps its local view of the grid pointers *)
              let_i "tmp" (g "cur");
              gset "cur" (g "next");
              gset "next" (v "tmp");
              barrier
            ];
          when_ (Pid ==% i 0)
            [ let_f "sum" (f 0.0);
              for_ "r" (i 0) (i n)
                [ for_ "c" (i 0) (i n)
                    [ set "sum" (v "sum" +. gld (g "cur") n (v "r") (v "c")) ]
                ];
              print_flt (v "sum")
            ]
        ]
    ]

let reference_checksum ~n ~iters =
  let ( +. ) = Stdlib.( +. ) and ( *. ) = Stdlib.( *. ) in

  let cur = Array.make_matrix n n 0.0 and next = Array.make_matrix n n 0.0 in
  for r = 0 to n - 1 do
    for c = 0 to n - 1 do
      let x = if c = 0 then 0.5 else if r = 0 then 1.0 else 0.0 in
      cur.(r).(c) <- x;
      next.(r).(c) <- x
    done
  done;
  let cur = ref cur and next = ref next in
  for _ = 1 to iters do
    for r = 1 to n - 2 do
      for c = 1 to n - 2 do
        !next.(r).(c) <-
          0.25
          *. (!cur.(r - 1).(c) +. !cur.(r + 1).(c) +. !cur.(r).(c - 1)
              +. !cur.(r).(c + 1))
      done
    done;
    let t = !cur in
    cur := !next;
    next := t
  done;
  let sum = ref 0.0 in
  Array.iter (Array.iter (fun x -> sum := !sum +. x)) !cur;
  !sum
