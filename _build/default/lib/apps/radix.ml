(* Radix: parallel radix sort of integer keys, modelled on SPLASH-2's.

   Per digit pass: each processor histograms its slice of the keys, a
   prefix over the (processor x bucket) histogram matrix assigns stable
   scatter offsets, and each processor permutes its keys to their
   destinations.  The permutation writes are effectively random — the
   access pattern with the worst spatial locality in the suite, which is
   what makes Radix the paper's showcase for the exclusive table
   (Section 3.3): store checks take many hardware cache misses on the
   check metadata. *)

open Shasta_minic.Builder
open Shasta_minic.Ast

let program ?(nkeys = 2048) ?(radix_bits = 4) ?(max_bits = 16) () =
  let buckets = 1 lsl radix_bits in
  let passes = (max_bits + radix_bits - 1) / radix_bits in
  prog
    ~globals:[ ("keys0", I); ("keys1", I); ("hist", I); ("src", I); ("dst", I) ]
    [ proc "appinit"
        [ gset "keys0" (Gmalloc (i (nkeys * 8)));
          gset "keys1" (Gmalloc (i (nkeys * 8)));
          gset "hist" (Gmalloc (i (64 * buckets * 8)));
          (* pseudo-random keys from a small LCG, bounded to max_bits *)
          let_i "x" (i 12345);
          for_ "k" (i 0) (i nkeys)
            [ set "x" (((v "x" *% i 1103515245) +% i 12345)
                       &% i 0x7FFFFFFF);
              sti (g "keys0") (v "k") (v "x" %% i (1 lsl max_bits))
            ];
          gset "src" (g "keys0");
          gset "dst" (g "keys1")
        ];
      proc "work"
        [ let_i "per" ((i nkeys +% Nprocs -% i 1) /% Nprocs);
          let_i "lo" (Pid *% v "per");
          let_i "hi" (v "lo" +% v "per");
          when_ (v "hi" >% i nkeys) [ set "hi" (i nkeys) ];
          for_ "pass" (i 0) (i passes)
            [ let_i "shift" (v "pass" *% i radix_bits);
              (* local histogram into this processor's row *)
              let_i "row" (g "hist" +% ((Pid *% i buckets) <<% i 3));
              for_ "b" (i 0) (i buckets) [ sti (v "row") (v "b") (i 0) ];
              for_ "k" (v "lo") (v "hi")
                [ let_i "d"
                    ((ldi (g "src") (v "k") >>% v "shift") &% i (buckets - 1));
                  sti (v "row") (v "d") (ldi (v "row") (v "d") +% i 1)
                ];
              barrier;
              (* processor 0 turns counts into stable scatter offsets:
                 bucket-major, processor-minor *)
              when_ (Pid ==% i 0)
                [ let_i "off" (i 0);
                  for_ "b" (i 0) (i buckets)
                    [ for_ "p" (i 0) Nprocs
                        [ let_i "cell"
                            (g "hist" +% (((v "p" *% i buckets) +% v "b") <<% i 3));
                          let_i "c" (Load (I, v "cell", 0));
                          Store (I, v "cell", 0, v "off");
                          set "off" (v "off" +% v "c")
                        ]
                    ]
                ];
              barrier;
              (* scatter: stable within each processor's slice *)
              for_ "k" (v "lo") (v "hi")
                [ let_i "key" (ldi (g "src") (v "k"));
                  let_i "d" ((v "key" >>% v "shift") &% i (buckets - 1));
                  let_i "pos" (ldi (v "row") (v "d"));
                  sti (v "row") (v "d") (v "pos" +% i 1);
                  sti (g "dst") (v "pos") (v "key")
                ];
              barrier;
              (* swap source and destination (locally, identically) *)
              let_i "tmp" (g "src");
              gset "src" (g "dst");
              gset "dst" (v "tmp");
              barrier
            ];
          when_ (Pid ==% i 0)
            [ (* verify sortedness and print a permutation checksum *)
              let_i "sorted" (i 1);
              let_i "sum" (i 0);
              for_ "k" (i 0) (i nkeys)
                [ let_i "x" (ldi (g "src") (v "k"));
                  set "sum" ((v "sum" +% (v "x" *% (v "k" +% i 1)))
                             %% i 1000000007);
                  when_ (v "k" >% i 0)
                    [ when_ (ldi (g "src") (v "k" -% i 1) >% v "x")
                        [ set "sorted" (i 0) ]
                    ]
                ];
              print_int (v "sorted");
              print_int (v "sum")
            ]
        ]
    ]

(* The same sort in OCaml, same key generator, for tests. *)
let reference ~nkeys ~radix_bits:_ ~max_bits =
  let keys = Array.make nkeys 0 in
  let x = ref 12345 in
  for k = 0 to nkeys - 1 do
    x := ((!x * 1103515245) + 12345) land 0x7FFFFFFF;
    keys.(k) <- !x mod (1 lsl max_bits)
  done;
  Array.sort compare keys;
  let sum = ref 0 in
  Array.iteri (fun k v -> sum := (!sum + (v * (k + 1))) mod 1000000007) keys;
  (1, !sum)
