lib/apps/raytrace.ml: Shasta_minic
