lib/apps/barnes.ml: Shasta_minic
