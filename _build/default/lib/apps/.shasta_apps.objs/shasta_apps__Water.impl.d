lib/apps/water.ml: Array Shasta_minic Stdlib
