lib/apps/radiosity.ml: Shasta_minic
