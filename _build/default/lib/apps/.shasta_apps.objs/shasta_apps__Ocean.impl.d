lib/apps/ocean.ml: Array Shasta_minic Stdlib
