lib/apps/lu.ml: Array Shasta_minic Stdlib
