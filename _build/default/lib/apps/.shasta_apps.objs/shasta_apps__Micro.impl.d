lib/apps/micro.ml: Shasta_minic
