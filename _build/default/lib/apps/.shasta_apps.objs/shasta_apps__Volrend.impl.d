lib/apps/volrend.ml: Shasta_minic
