lib/apps/radix.ml: Array Shasta_minic
