lib/apps/fft.ml: Float Shasta_minic Stdlib
