lib/apps/apps.ml: Barnes Em3d Fft List Lu Ocean Radiosity Radix Raytrace Shasta_minic Volrend Water
