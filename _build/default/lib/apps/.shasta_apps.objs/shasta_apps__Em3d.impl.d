lib/apps/em3d.ml: Array Shasta_minic Stdlib
