(* Radiosity-like: iterative energy distribution over patches driven by
   a lock-protected shared task queue.

   Matches Radiosity's profile: migratory, lock-protected task and
   patch records, irregular write sharing, work stealing through the
   central queue.  Energy is integral and exactly conserved, so the
   total printed at the end is independent of the (timing-dependent)
   task interleaving. *)

open Shasta_minic.Builder
open Shasta_minic.Ast

(* patch record: energy, nlinks, then up to 4 neighbour ids *)
let pat_bytes = 48
let q_lock = 9000 (* lock id for the task queue *)
let patch_lock k = Bin (Add, Int 9100, k)

let program ?(npatches = 32) ?(threshold = 8) () =
  let initial = 4096 in
  prog
    ~globals:[ ("patches", I); ("queue", I); ("qhead", I); ("qtail", I) ]
    [ proc "patch" ~params:[ ("k", I) ] ~ret:I
        [ ret (g "patches" +% (v "k" *% i pat_bytes)) ];
      (* push a patch id onto the shared work queue *)
      proc "push" ~params:[ ("k", I) ]
        [ lock (i q_lock);
          let_i "t" (Load (I, g "qtail", 0));
          sti (g "queue") (v "t" %% i 4096) (v "k");
          Store (I, g "qtail", 0, v "t" +% i 1);
          unlock (i q_lock)
        ];
      (* pop a patch id, or -1 when the queue is empty *)
      proc "pop" ~ret:I
        [ let_i "r" (neg (i 1));
          lock (i q_lock);
          let_i "h" (Load (I, g "qhead", 0));
          when_ (v "h" <% Load (I, g "qtail", 0))
            [ set "r" (ldi (g "queue") (v "h" %% i 4096));
              Store (I, g "qhead", 0, v "h" +% i 1)
            ];
          unlock (i q_lock);
          ret (v "r")
        ];
      proc "appinit"
        [ gset "patches" (Gmalloc (i (npatches * pat_bytes)));
          (* queue storage and head/tail cells *)
          gset "queue" (Gmalloc (i (4096 * 8)));
          gset "qhead" (Gmalloc_b (i 8, i 64));
          gset "qtail" (Gmalloc_b (i 8, i 64));
          Store (I, g "qhead", 0, i 0);
          Store (I, g "qtail", 0, i 0);
          for_ "k" (i 0) (i npatches)
            [ let_i "p" (call "patch" [ v "k" ]);
              set_fld_i (v "p") 0 (i initial);
              set_fld_i (v "p") 8 (i 4);
              (* 4 neighbours in a ring with a twist *)
              set_fld_i (v "p") 16 ((v "k" +% i 1) %% i npatches);
              set_fld_i (v "p") 24
                ((v "k" +% i (npatches - 1)) %% i npatches);
              set_fld_i (v "p") 32 ((v "k" +% i 7) %% i npatches);
              set_fld_i (v "p") 40 ((v "k" *% i 3 +% i 1) %% i npatches)
            ];
          (* seed the queue with every patch *)
          for_ "k" (i 0) (i npatches) [ expr (Call ("push", [ v "k" ])) ]
        ];
      (* the form-factor integration that makes real radiosity tasks
         compute-heavy: a small numeric quadrature per interaction *)
      proc "formfactor" ~params:[ ("a", I); ("b", I) ] ~ret:F
        [ let_f "s" (f 0.0);
          let_f "d" (i2f ((v "a" -% v "b") *% (v "a" -% v "b")) +. f 1.0);
          for_ "q" (i 0) (i 24)
            [ set "s"
                (v "s"
                 +. (f 1.0 /. (v "d" +. (i2f (v "q") *. f 0.25)))) ];
          ret (v "s")
        ];
      (* distribute half of a patch's energy equally to its neighbours *)
      proc "relax" ~params:[ ("k", I) ]
        [ let_i "p" (call "patch" [ v "k" ]);
          let_f "ff" (f 0.0);
          lock (patch_lock (v "k"));
          let_i "e" (fld_i (v "p") 0);
          let_i "give" (v "e" /% i 2 /% i 4 *% i 4);
          set_fld_i (v "p") 0 (v "e" -% v "give");
          unlock (patch_lock (v "k"));
          when_ (v "give" >% i 0)
            [ let_i "share" (v "give" /% i 4);
              for_ "j" (i 0) (i 4)
                [ let_i "nb" (Load (I, v "p" +% (v "j" <<% i 3), 16));
                  set "ff" (v "ff" +. call "formfactor" [ v "k"; v "nb" ]);
                  let_i "np" (call "patch" [ v "nb" ]);
                  lock (patch_lock (v "nb"));
                  set_fld_i (v "np") 0 (fld_i (v "np") 0 +% v "share");
                  unlock (patch_lock (v "nb"));
                  (* re-enqueue energetic neighbours *)
                  when_ (fld_i (v "np") 0 >% i threshold)
                    [ expr (Call ("push", [ v "nb" ])) ]
                ]
            ]
        ];
      proc "work"
        [ (* fixed total work: the task budget is split across nodes *)
          let_i "budget" ((i (npatches * 16) +% Nprocs -% i 1) /% Nprocs);
          let_i "task" (i 0);
          while_ (v "task" >=% i 0)
            [ set "task" (call "pop" []);
              when_ (v "task" >=% i 0)
                [ expr (Call ("relax", [ v "task" ]));
                  set "budget" (v "budget" -% i 1);
                  when_ (v "budget" <=% i 0) [ set "task" (neg (i 1)) ]
                ]
            ];
          barrier;
          when_ (Pid ==% i 0)
            [ (* energy is conserved exactly *)
              let_i "total" (i 0);
              for_ "k" (i 0) (i npatches)
                [ set "total" (v "total" +% fld_i (call "patch" [ v "k" ]) 0) ];
              print_int (v "total")
            ]
        ]
    ]

let expected_total ~npatches = npatches * 4096
