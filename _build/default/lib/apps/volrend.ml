(* Volrend-like: ray casting through a read-shared 3D volume with early
   ray termination, opacity lookup through a per-node private table.

   Matches Volrend's profile in the paper: most inner-loop data is
   private (the transfer table lives in the per-node private heap, so
   its accesses are instrumented but caught by the dynamic range check,
   and stack temporaries dominate), the volume itself is read-mostly
   shared, and the per-ray loop has a data-dependent exit. *)

open Shasta_minic.Builder
open Shasta_minic.Ast

let program ?(vol = 16) ?(img = 24) () =
  let voxels = vol * vol * vol in
  prog
    ~globals:[ ("volume", I); ("image", I) ]
    [ proc "appinit"
        [ gset "volume" (Gmalloc (i (voxels * 8)));
          gset "image" (Gmalloc (i (img * img * 8)));
          (* a blobby density field *)
          for_ "z" (i 0) (i vol)
            [ for_ "y" (i 0) (i vol)
                [ for_ "x" (i 0) (i vol)
                    [ let_i "d"
                        (((v "x" *% v "y") +% (v "y" *% v "z") +% (v "z" *% v "x"))
                         %% i 256);
                      sti (g "volume")
                        ((((v "z" *% i vol) +% v "y") *% i vol) +% v "x")
                        (v "d")
                    ]
                ]
            ]
        ];
      proc "work"
        [ (* per-node private opacity transfer table *)
          let_i "table" (Pmalloc (i (256 * 8)));
          for_ "k" (i 0) (i 256)
            [ stf (v "table") (v "k") (i2f (v "k" *% v "k") /. f 262144.0) ];
          let_i "per" ((i img +% Nprocs -% i 1) /% Nprocs);
          let_i "lo" (Pid *% v "per");
          let_i "hi" (v "lo" +% v "per");
          when_ (v "hi" >% i img) [ set "hi" (i img) ];
          for_ "py" (v "lo") (v "hi")
            [ for_ "px" (i 0) (i img)
                [ (* map pixel to a volume column *)
                  let_i "vx" (v "px" *% i vol /% i img);
                  let_i "vy" (v "py" *% i vol /% i img);
                  let_f "light" (f 1.0);
                  let_f "acc" (f 0.0);
                  let_i "z" (i 0);
                  while_ (v "z" <% i vol)
                    [ let_i "d"
                        (ldi (g "volume")
                           ((((v "z" *% i vol) +% v "vy") *% i vol) +% v "vx"));
                      let_f "op" (ldf (v "table") (v "d"));
                      set "acc" (v "acc" +. (v "light" *. v "op"));
                      set "light" (v "light" *. (f 1.0 -. v "op"));
                      (* early ray termination *)
                      if_ (v "light" <. f 0.05)
                        [ set "z" (i vol) ]
                        [ set "z" (v "z" +% i 1) ]
                    ];
                  stf (g "image") ((v "py" *% i img) +% v "px") (v "acc")
                ]
            ];
          barrier;
          when_ (Pid ==% i 0)
            [ let_f "sum" (f 0.0);
              for_ "k" (i 0) (i (img * img))
                [ set "sum" (v "sum" +. ldf (g "image") (v "k")) ];
              print_flt (v "sum")
            ]
        ]
    ]
