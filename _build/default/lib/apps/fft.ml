(* FFT: parallel radix-2 in-place complex FFT with a shared twiddle
   table, bit-reversal scatter, and per-stage barriers; butterflies are
   split evenly across processors by global butterfly index.

   Verification transforms forward then inverse and checks the data
   comes back (to within roundoff) — processor-count independent, since
   every butterfly computes from the previous stage's values. *)

open Shasta_minic.Builder
open Shasta_minic.Ast

let re arr k = Load (F, arr +% (v k <<% i 4), 0)
let im arr k = Load (F, arr +% (v k <<% i 4), 8)
let set_re arr k x = Store (F, arr +% (v k <<% i 4), 0, x)
let set_im arr k x = Store (F, arr +% (v k <<% i 4), 8, x)

let program ?(n = 256) () =
  if n land (n - 1) <> 0 then invalid_arg "Fft.program: n must be a power of 2";
  let log2n =
    let rec go k = if 1 lsl k = n then k else go (k + 1) in
    go 0
  in
  (* the per-unit twiddle rotation, emitted as literals *)
  let angle = Stdlib.( /. ) (Stdlib.( *. ) (-2.0) Float.pi) (float_of_int n) in
  let wr = cos angle and wi = sin angle in
  prog
    ~globals:[ ("data", I); ("tw", I); ("scr", I) ]
    [ proc "appinit"
        [ gset "data" (Gmalloc (i (n * 16)));
          gset "tw" (Gmalloc (i (n / 2 * 16)));
          gset "scr" (Gmalloc (i (n * 16)));
          (* input: small integer-valued signal *)
          for_ "k" (i 0) (i n)
            [ set_re (g "data") "k" (i2f ((v "k" %% i 5) -% i 2));
              set_im (g "data") "k" (f 0.0)
            ];
          (* twiddles tw[j] = w^j by recurrence *)
          let_f "cr" (f 1.0);
          let_f "ci" (f 0.0);
          for_ "j" (i 0) (i (n / 2))
            [ set_re (g "tw") "j" (v "cr");
              set_im (g "tw") "j" (v "ci");
              let_f "nr" ((v "cr" *. f wr) -. (v "ci" *. f wi));
              set "ci" ((v "cr" *. f wi) +. (v "ci" *. f wr));
              set "cr" (v "nr")
            ]
        ];
      (* one full FFT over [arr]; [inverse] conjugates the twiddles *)
      proc "fft1" ~params:[ ("arr", I); ("scratch", I); ("inverse", I) ]
        [ let_i "per" ((i n +% Nprocs -% i 1) /% Nprocs);
          let_i "lo" (Pid *% v "per");
          let_i "hi" (v "lo" +% v "per");
          when_ (v "hi" >% i n) [ set "hi" (i n) ];
          (* bit-reversal scatter into scratch *)
          for_ "k" (v "lo") (v "hi")
            [ let_i "rv" (i 0);
              let_i "t" (v "k");
              for_ "b" (i 0) (i log2n)
                [ set "rv" ((v "rv" <<% i 1) |% (v "t" &% i 1));
                  set "t" (v "t" >>% i 1)
                ];
              Store (F, v "scratch" +% (v "rv" <<% i 4), 0, re (v "arr") "k");
              Store (F, v "scratch" +% (v "rv" <<% i 4), 8, im (v "arr") "k")
            ];
          barrier;
          (* copy back *)
          for_ "k" (v "lo") (v "hi")
            [ set_re (v "arr") "k" (re (v "scratch") "k");
              set_im (v "arr") "k" (im (v "scratch") "k")
            ];
          barrier;
          (* butterfly stages *)
          let_i "bper" ((i (n / 2) +% Nprocs -% i 1) /% Nprocs);
          let_i "blo" (Pid *% v "bper");
          let_i "bhi" (v "blo" +% v "bper");
          when_ (v "bhi" >% i (n / 2)) [ set "bhi" (i (n / 2)) ];
          let_i "len" (i 2);
          while_ (v "len" <=% i n)
            [ let_i "half" (v "len" >>% i 1);
              let_i "stride" (i n /% v "len");
              for_ "m" (v "blo") (v "bhi")
                [ let_i "grp" (v "m" /% v "half");
                  let_i "j" (v "m" %% v "half");
                  let_i "p" ((v "grp" *% v "len") +% v "j");
                  let_i "q" (v "p" +% v "half");
                  let_i "ti" (v "j" *% v "stride");
                  let_f "twr" (re (g "tw") "ti");
                  let_f "twi" (im (g "tw") "ti");
                  when_ (v "inverse" <>% i 0) [ set "twi" (fneg (v "twi")) ];
                  let_f "ur" (re (v "arr") "p");
                  let_f "ui" (im (v "arr") "p");
                  let_f "xr" (re (v "arr") "q");
                  let_f "xi" (im (v "arr") "q");
                  let_f "tr" ((v "twr" *. v "xr") -. (v "twi" *. v "xi"));
                  let_f "tz" ((v "twr" *. v "xi") +. (v "twi" *. v "xr"));
                  set_re (v "arr") "p" (v "ur" +. v "tr");
                  set_im (v "arr") "p" (v "ui" +. v "tz");
                  set_re (v "arr") "q" (v "ur" -. v "tr");
                  set_im (v "arr") "q" (v "ui" -. v "tz")
                ];
              barrier;
              set "len" (v "len" <<% i 1)
            ]
        ];
      proc "work"
        [ expr (Call ("fft1", [ g "data"; g "scr"; i 0 ]));
          (* spectral checksum on node 0 *)
          when_ (Pid ==% i 0)
            [ let_f "s" (f 0.0);
              for_ "k" (i 0) (i n)
                [ set "s"
                    (v "s"
                     +. ((re (g "data") "k" *. re (g "data") "k")
                         +. (im (g "data") "k" *. im (g "data") "k")))
                ];
              print_flt (v "s" /. i2f (i n))
            ];
          barrier;
          (* inverse transform and scale *)
          expr (Call ("fft1", [ g "data"; g "scr"; i 1 ]));
          let_i "per" ((i n +% Nprocs -% i 1) /% Nprocs);
          let_i "lo" (Pid *% v "per");
          let_i "hi" (v "lo" +% v "per");
          when_ (v "hi" >% i n) [ set "hi" (i n) ];
          for_ "k" (v "lo") (v "hi")
            [ set_re (g "data") "k" (re (g "data") "k" /. i2f (i n));
              set_im (g "data") "k" (im (g "data") "k" /. i2f (i n))
            ];
          barrier;
          (* roundtrip error check on node 0 *)
          when_ (Pid ==% i 0)
            [ let_i "ok" (i 1);
              for_ "k" (i 0) (i n)
                [ let_f "want" (i2f ((v "k" %% i 5) -% i 2));
                  let_f "dr" (re (g "data") "k" -. v "want");
                  let_f "di" (im (g "data") "k");
                  when_ (f 1e-12 <. ((v "dr" *. v "dr") +. (v "di" *. v "di")))
                    [ set "ok" (i 0) ]
                ];
              print_int (v "ok")
            ]
        ]
    ]
