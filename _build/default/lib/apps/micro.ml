(* Protocol microworkloads, used by the granularity and protocol
   benchmarks (Section 4.2's claim that different data wants different
   block sizes) and by the runtime tests.

   - false_sharing: each processor repeatedly increments its own
     64-byte-spaced counter.  With line-sized blocks there is no
     interference; larger blocks put independent counters in one
     coherence unit and ping-pong.
   - stream: one processor produces a large contiguous array, everyone
     consumes it.  Large blocks amortize the per-miss overhead.
   - migratory: a single lock-protected accumulator visits every
     processor in turn.
   - prodcons: a flag-synchronized producer/consumer pipeline. *)

open Shasta_minic.Builder
open Shasta_minic.Ast

let false_sharing ?(iters = 200) ?(block = 0) () =
  prog
    ~globals:[ ("counters", I) ]
    [ proc "appinit"
        [ gset "counters"
            (if block = 0 then Gmalloc (i (16 * 64))
             else Gmalloc_b (i (16 * 64), i block));
          for_ "p" (i 0) (i 16)
            [ Store (I, g "counters" +% (v "p" <<% i 6), 0, i 0) ]
        ];
      proc "work"
        [ let_i "mine" (g "counters" +% (Pid <<% i 6));
          for_ "k" (i 0) (i iters)
            [ Store (I, v "mine", 0, Load (I, v "mine", 0) +% i 1) ];
          barrier;
          when_ (Pid ==% i 0)
            [ let_i "sum" (i 0);
              for_ "p" (i 0) Nprocs
                [ set "sum"
                    (v "sum" +% Load (I, g "counters" +% (v "p" <<% i 6), 0))
                ];
              print_int (v "sum")
            ]
        ]
    ]

let stream ?(nwords = 4096) ?(block = 0) () =
  prog
    ~globals:[ ("buf", I) ]
    [ proc "appinit"
        [ gset "buf"
            (if block = 0 then Gmalloc (i (nwords * 8))
             else Gmalloc_b (i (nwords * 8), i block))
        ];
      proc "work"
        [ when_ (Pid ==% i 0)
            [ for_ "k" (i 0) (i nwords)
                [ sti (g "buf") (v "k") (v "k" *% i 7) ]
            ];
          barrier;
          let_i "sum" (i 0);
          for_ "k" (i 0) (i nwords)
            [ set "sum" (v "sum" +% ldi (g "buf") (v "k")) ];
          barrier;
          when_ (Pid ==% i 0) [ print_int (v "sum") ]
        ]
    ]

let migratory ?(rounds = 64) () =
  prog
    ~globals:[ ("cell", I) ]
    [ proc "appinit"
        [ gset "cell" (Gmalloc_b (i 8, i 64));
          Store (I, g "cell", 0, i 0)
        ];
      proc "work"
        [ for_ "k" (i 0) (i rounds)
            [ lock (i 1);
              Store (I, g "cell", 0, Load (I, g "cell", 0) +% i 1);
              unlock (i 1)
            ];
          barrier;
          when_ (Pid ==% i 0) [ print_int (Load (I, g "cell", 0)) ]
        ]
    ]

let prodcons ?(items = 32) () =
  prog
    ~globals:[ ("slot", I) ]
    [ proc "appinit"
        [ gset "slot" (Gmalloc_b (i 64, i 64));
          Store (I, g "slot", 0, i 0)
        ];
      proc "work"
        [ (* processor 0 produces; processor nprocs-1 consumes (data
             flag forward, ack flag back); anyone else just meets the
             barrier.  On one processor the two roles interleave. *)
          let_i "sum" (i 0);
          for_ "k" (i 0) (i items)
            [ when_ (Pid ==% i 0)
                [ Store (I, g "slot", 0, (v "k" *% v "k") +% i 1);
                  flag_set ((v "k" <<% i 1) +% i 2)
                ];
              when_ (Pid ==% (Nprocs -% i 1))
                [ flag_wait ((v "k" <<% i 1) +% i 2);
                  set "sum" (v "sum" +% Load (I, g "slot", 0));
                  flag_set ((v "k" <<% i 1) +% i 3)
                ];
              (* the producer may not overwrite the slot until the
                 consumer acknowledged the previous item *)
              when_ (Pid ==% i 0) [ flag_wait ((v "k" <<% i 1) +% i 3) ]
            ];
          barrier;
          when_ (Pid ==% (Nprocs -% i 1)) [ print_int (v "sum") ];
          barrier
        ]
    ]
