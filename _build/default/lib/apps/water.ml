(* Water-like: the O(n^2) molecular dynamics pattern of Water-Nsquared.

   Molecules live in a shared array of 80-byte records (position,
   velocity, force — ten doubles).  Each timestep every processor
   computes forces on its own molecules by reading all other molecules
   (all-to-all read sharing of small records — the case the paper's
   size-based granularity heuristic targets), then integrates its own.
   Field accesses run off a single base register, so the force loop is
   heavily batched. *)

open Shasta_minic.Builder
open Shasta_minic.Ast

let rec_bytes = 80
let f_px = 0 and f_py = 8 and f_pz = 16
let f_vx = 24 and f_vy = 32 and f_vz = 40
let f_fx = 48 and f_fy = 56 and f_fz = 64

let program ?(nmol = 64) ?(steps = 2) () =
  let mol k = g "mols" +% (k *% i rec_bytes) in
  prog
    ~globals:[ ("mols", I) ]
    [ (* softened inverse-square pairwise force accumulation *)
      proc "force" ~params:[ ("a", I); ("b", I) ]
        [ let_f "dx" (fld_f (v "b") f_px -. fld_f (v "a") f_px);
          let_f "dy" (fld_f (v "b") f_py -. fld_f (v "a") f_py);
          let_f "dz" (fld_f (v "b") f_pz -. fld_f (v "a") f_pz);
          let_f "r2"
            ((v "dx" *. v "dx") +. (v "dy" *. v "dy") +. (v "dz" *. v "dz")
             +. f 0.5);
          let_f "inv" (f 1.0 /. (v "r2" *. fsqrt (v "r2")));
          set_fld_f (v "a") f_fx (fld_f (v "a") f_fx +. (v "dx" *. v "inv"));
          set_fld_f (v "a") f_fy (fld_f (v "a") f_fy +. (v "dy" *. v "inv"));
          set_fld_f (v "a") f_fz (fld_f (v "a") f_fz +. (v "dz" *. v "inv"))
        ];
      proc "appinit"
        [ gset "mols" (Gmalloc (i (nmol * rec_bytes)));
          for_ "k" (i 0) (i nmol)
            [ let_i "m" (mol (v "k"));
              set_fld_f (v "m") f_px (i2f (v "k" %% i 8) *. f 1.0);
              set_fld_f (v "m") f_py (i2f ((v "k" /% i 8) %% i 8) *. f 1.0);
              set_fld_f (v "m") f_pz (i2f (v "k" /% i 64) *. f 1.0);
              set_fld_f (v "m") f_vx (f 0.0);
              set_fld_f (v "m") f_vy (f 0.0);
              set_fld_f (v "m") f_vz (f 0.0);
              set_fld_f (v "m") f_fx (f 0.0);
              set_fld_f (v "m") f_fy (f 0.0);
              set_fld_f (v "m") f_fz (f 0.0)
            ]
        ];
      proc "work"
        [ let_i "per" ((i nmol +% Nprocs -% i 1) /% Nprocs);
          let_i "lo" (Pid *% v "per");
          let_i "hi" (v "lo" +% v "per");
          when_ (v "hi" >% i nmol) [ set "hi" (i nmol) ];
          for_ "step" (i 0) (i steps)
            [ (* force computation: own molecules, reading all others *)
              for_ "a" (v "lo") (v "hi")
                [ let_i "ma" (mol (v "a"));
                  set_fld_f (v "ma") f_fx (f 0.0);
                  set_fld_f (v "ma") f_fy (f 0.0);
                  set_fld_f (v "ma") f_fz (f 0.0);
                  for_ "b" (i 0) (i nmol)
                    [ when_ (v "a" <>% v "b")
                        [ expr (Call ("force", [ mol (v "a"); mol (v "b") ])) ]
                    ]
                ];
              barrier;
              (* integrate own molecules *)
              for_ "a" (v "lo") (v "hi")
                [ let_i "m" (mol (v "a"));
                  set_fld_f (v "m") f_vx
                    (fld_f (v "m") f_vx +. (f 0.01 *. fld_f (v "m") f_fx));
                  set_fld_f (v "m") f_vy
                    (fld_f (v "m") f_vy +. (f 0.01 *. fld_f (v "m") f_fy));
                  set_fld_f (v "m") f_vz
                    (fld_f (v "m") f_vz +. (f 0.01 *. fld_f (v "m") f_fz));
                  set_fld_f (v "m") f_px
                    (fld_f (v "m") f_px +. (f 0.01 *. fld_f (v "m") f_vx));
                  set_fld_f (v "m") f_py
                    (fld_f (v "m") f_py +. (f 0.01 *. fld_f (v "m") f_vy));
                  set_fld_f (v "m") f_pz
                    (fld_f (v "m") f_pz +. (f 0.01 *. fld_f (v "m") f_vz))
                ];
              barrier
            ];
          when_ (Pid ==% i 0)
            [ let_f "sum" (f 0.0);
              for_ "k" (i 0) (i nmol)
                [ let_i "m" (mol (v "k"));
                  set "sum"
                    (v "sum" +. fld_f (v "m") f_px +. fld_f (v "m") f_py
                     +. fld_f (v "m") f_pz)
                ];
              print_flt (v "sum")
            ]
        ]
    ]

let reference_checksum ~nmol ~steps =
  let ( +. ) = Stdlib.( +. ) and ( -. ) = Stdlib.( -. ) in
  let ( *. ) = Stdlib.( *. ) and ( /. ) = Stdlib.( /. ) in

  let px = Array.make nmol 0.0 and py = Array.make nmol 0.0
  and pz = Array.make nmol 0.0 in
  let vx = Array.make nmol 0.0 and vy = Array.make nmol 0.0
  and vz = Array.make nmol 0.0 in
  let fx = Array.make nmol 0.0 and fy = Array.make nmol 0.0
  and fz = Array.make nmol 0.0 in
  for k = 0 to nmol - 1 do
    px.(k) <- float_of_int (k mod 8);
    py.(k) <- float_of_int (k / 8 mod 8);
    pz.(k) <- float_of_int (k / 64)
  done;
  for _ = 1 to steps do
    for a = 0 to nmol - 1 do
      fx.(a) <- 0.0;
      fy.(a) <- 0.0;
      fz.(a) <- 0.0;
      for b = 0 to nmol - 1 do
        if a <> b then begin
          let dx = px.(b) -. px.(a)
          and dy = py.(b) -. py.(a)
          and dz = pz.(b) -. pz.(a) in
          let r2 = (dx *. dx) +. (dy *. dy) +. (dz *. dz) +. 0.5 in
          let inv = 1.0 /. (r2 *. sqrt r2) in
          fx.(a) <- fx.(a) +. (dx *. inv);
          fy.(a) <- fy.(a) +. (dy *. inv);
          fz.(a) <- fz.(a) +. (dz *. inv)
        end
      done
    done;
    for a = 0 to nmol - 1 do
      vx.(a) <- vx.(a) +. (0.01 *. fx.(a));
      vy.(a) <- vy.(a) +. (0.01 *. fy.(a));
      vz.(a) <- vz.(a) +. (0.01 *. fz.(a));
      px.(a) <- px.(a) +. (0.01 *. vx.(a));
      py.(a) <- py.(a) +. (0.01 *. vy.(a));
      pz.(a) <- pz.(a) +. (0.01 *. vz.(a))
    done
  done;
  let sum = ref 0.0 in
  for k = 0 to nmol - 1 do
    sum := !sum +. px.(k) +. py.(k) +. pz.(k)
  done;
  !sum
