(* Raytrace-like: orthographic rays cast through a read-shared scene of
   spheres, writing a shared image partitioned by pixel rows.

   The intersection loop is the paper's Raytrace profile: the most
   frequently executed code is full of conditionals, so batching across
   basic blocks (Section 3.4.1's multi-path scan) is what recovers the
   checking overhead — "batching across basic blocks is particularly
   effective in Raytrace".  The scene is read-only during the parallel
   phase (wide read sharing). *)

open Shasta_minic.Builder
open Shasta_minic.Ast

let sphere_bytes = 40
let s_cx = 0 and s_cy = 8 and s_cz = 16 and s_r2 = 24 and s_shade = 32

let program ?(width = 32) ?(height = 32) ?(nspheres = 16) () =
  prog
    ~globals:[ ("scene", I); ("image", I) ]
    [ (* nearest positive intersection depth of the ray from (x,y,-10)
         along +z with sphere [s]; a large value when missed *)
      proc "hit" ~params:[ ("s", I); ("x", F); ("y", F) ] ~ret:F
        [ let_f "dx" (v "x" -. fld_f (v "s") s_cx);
          let_f "dy" (v "y" -. fld_f (v "s") s_cy);
          let_f "d2" ((v "dx" *. v "dx") +. (v "dy" *. v "dy"));
          if_ (fld_f (v "s") s_r2 <. v "d2")
            [ ret (f 1e30) ]
            [ let_f "dz" (fsqrt (fld_f (v "s") s_r2 -. v "d2"));
              let_f "t" (fld_f (v "s") s_cz -. v "dz" +. f 10.0);
              if_ (v "t" <. f 0.0) [ ret (f 1e30) ] [ ret (v "t") ]
            ]
        ];
      proc "trace" ~params:[ ("x", F); ("y", F) ] ~ret:F
        [ let_f "best" (f 1e30);
          let_f "shade" (f 0.0);
          for_ "k" (i 0) (i nspheres)
            [ let_i "s" (g "scene" +% (v "k" *% i sphere_bytes));
              let_f "t" (call "hit" [ v "s"; v "x"; v "y" ]);
              when_ (v "t" <. v "best")
                [ set "best" (v "t");
                  (* depth-attenuated shading *)
                  set "shade" (fld_f (v "s") s_shade /. (f 1.0 +. (v "t" *. f 0.05)))
                ]
            ];
          ret (v "shade")
        ];
      proc "appinit"
        [ gset "scene" (Gmalloc (i (nspheres * sphere_bytes)));
          gset "image" (Gmalloc (i (width * height * 8)));
          for_ "k" (i 0) (i nspheres)
            [ let_i "s" (g "scene" +% (v "k" *% i sphere_bytes));
              set_fld_f (v "s") s_cx
                (i2f ((v "k" *% i 7) %% i width) -. f (float_of_int (width / 2)));
              set_fld_f (v "s") s_cy
                (i2f ((v "k" *% i 13) %% i height)
                 -. f (float_of_int (height / 2)));
              set_fld_f (v "s") s_cz (i2f (v "k" %% i 5) *. f 3.0);
              set_fld_f (v "s") s_r2
                (f 4.0 +. (i2f (v "k" %% i 3) *. f 2.0));
              set_fld_f (v "s") s_shade (f 0.25 +. (i2f (v "k" %% i 4) *. f 0.25))
            ]
        ];
      proc "work"
        [ let_i "per" ((i height +% Nprocs -% i 1) /% Nprocs);
          let_i "lo" (Pid *% v "per");
          let_i "hi" (v "lo" +% v "per");
          when_ (v "hi" >% i height) [ set "hi" (i height) ];
          for_ "py" (v "lo") (v "hi")
            [ for_ "px" (i 0) (i width)
                [ let_f "x" (i2f (v "px") -. f (float_of_int (width / 2)));
                  let_f "y" (i2f (v "py") -. f (float_of_int (height / 2)));
                  stf (g "image") ((v "py" *% i width) +% v "px")
                    (call "trace" [ v "x"; v "y" ])
                ]
            ];
          barrier;
          when_ (Pid ==% i 0)
            [ let_f "sum" (f 0.0);
              for_ "k" (i 0) (i (width * height))
                [ set "sum" (v "sum" +. ldf (g "image") (v "k")) ];
              print_flt (v "sum")
            ]
        ]
    ]
