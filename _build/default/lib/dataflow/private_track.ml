(* SP/GP-derived register tracking (Section 2.3 of the paper).

   Shasta does not instrument loads and stores whose base register is
   the stack pointer or the global pointer, nor ones whose base register
   currently holds a value *calculated from* SP or GP.  This is a
   forward dataflow problem: a register is "derived" at a point if on
   every path to that point its value was computed from SP/GP by
   address arithmetic the analysis understands (register+constant).

   As in the paper, the analysis is intraprocedural and conservative
   around calls: any register that might be clobbered by a call — or
   saved and restored around one — is treated as not derived
   afterwards. *)

open Shasta_isa

(* Bit set in the mask = register known SP/GP-derived at that point. *)
let initial = (1 lsl Reg.sp) lor (1 lsl Reg.gp)

let transfer (i : Insn.t) derived =
  let derived_bit r = derived land (1 lsl r) <> 0 in
  let set d v m = if v then m lor (1 lsl d) else m land lnot (1 lsl d) in
  match i with
  | Lda (d, _, b) -> set d (derived_bit b) derived
  | Opi ((Addq | Subq | Addl | Subl), d, Imm _, b) ->
    set d (derived_bit b) derived
  | Opi ((Addq | Addl), d, Reg ra, rb) ->
    (* pointer + offset: derived only if both inputs are derived (e.g.
       SP-relative indexing with a value itself derived) — the common
       base+index case with a loaded index is not derived *)
    set d (derived_bit ra && derived_bit rb) derived
  | Jsr _ | Rt_call _ ->
    (* caller-saved clobbered; callee-saved conservatively undefined
       after the call per the paper (no interprocedural analysis); only
       SP and GP survive *)
    initial
  | _ ->
    (match Insn.def i with
     | Some d -> set d false derived
     | None -> derived)

(* derived.(i) is the mask of derived registers immediately before
   instruction i. *)
let analyze (flow : Flow.t) =
  let n = Flow.length flow in
  let full = -1 in
  let derived = Array.make n full in
  if n > 0 then derived.(0) <- initial;
  let changed = ref true in
  while !changed do
    changed := false;
    for i = 0 to n - 1 do
      let out = transfer (Flow.insn flow i) derived.(i) in
      List.iter
        (fun s ->
          let met = derived.(s) land out in
          if met <> derived.(s) then begin
            derived.(s) <- met;
            changed := true
          end)
        (Flow.succs flow i)
    done
  done;
  derived

(* Is the memory access at index [i] known private (not instrumented)? *)
let access_is_private (flow : Flow.t) derived i =
  match Insn.mem_operand (Flow.insn flow i) with
  | Some (base, _) -> derived.(i) land (1 lsl base) <> 0
  | None -> false
