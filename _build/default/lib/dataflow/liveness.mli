(** Live-register analysis: "the Shasta compiler does live register
    analysis to determine which registers are unused at the point where
    it inserts the miss check and uses those registers" (Section 2.4).

    Register sets are bitmasks over the 32 integer registers; calls are
    treated conservatively (arguments read, caller-saved clobbered,
    callee-saved live across). *)

open Shasta_isa

val caller_saved : int
val callee_saved : int

val analyze : Flow.t -> int array
(** [analyze flow].(i) is the live-in mask before instruction [i]. *)

val free_regs : int array -> int -> pool:Reg.ireg list -> Reg.ireg list
(** Registers from [pool] dead before the given instruction. *)
