(* Live-register analysis.

   "The Shasta compiler does live register analysis to determine which
   registers are unused at the point where it inserts the miss check and
   uses those registers" (Section 2.4).  Register sets are bitmasks over
   the 32 integer registers, so the fixpoint is cheap even on large
   procedures.

   Calls are handled conservatively from the rewriter's point of view:
   a Jsr is assumed to read all six argument registers and to define all
   caller-saved registers; callee-saved registers r9..r15 plus SP and GP
   are assumed live across calls (the callee may read the values it
   saves).  Ret is assumed to read the return-value register and all
   callee-saved registers. *)

open Shasta_isa

let mask_of_list = List.fold_left (fun m r -> m lor (1 lsl r)) 0

let caller_saved =
  mask_of_list [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 16; 17; 18; 19; 20; 21;
                 22; 23; 24; 25 ]

let callee_saved = mask_of_list [ 9; 10; 11; 12; 13; 14; 15; Reg.sp; Reg.gp ]

let uses_mask (i : Insn.t) =
  match i with
  | Jsr _ ->
    mask_of_list [ 16; 17; 18; 19; 20; 21 ] lor mask_of_list [ Reg.sp; Reg.gp ]
  | Ret -> (1 lsl Reg.rv) lor callee_saved
  | _ -> mask_of_list (Insn.uses i)

let defs_mask (i : Insn.t) =
  match i with
  | Jsr _ -> caller_saved
  | _ -> (match Insn.def i with Some d -> 1 lsl d | None -> 0)

(* live.(i) is the set of integer registers live immediately *before*
   instruction i (live-in). *)
let analyze (flow : Flow.t) =
  let n = Flow.length flow in
  let live = Array.make (n + 1) 0 in
  let changed = ref true in
  while !changed do
    changed := false;
    for i = n - 1 downto 0 do
      let insn = Flow.insn flow i in
      let out =
        List.fold_left (fun m s -> m lor live.(s)) 0 (Flow.succs flow i)
      in
      (* a Ret (or fallthrough exit) keeps callee-saved registers live *)
      let out =
        if Flow.succs flow i = [] then out lor (1 lsl Reg.rv) lor callee_saved
        else out
      in
      let inn = uses_mask insn lor (out land lnot (defs_mask insn)) in
      let inn = inn land lnot (1 lsl Reg.zero) in
      if inn <> live.(i) then begin
        live.(i) <- inn;
        changed := true
      end
    done
  done;
  live

(* Registers from [pool] that are dead before instruction [i]. *)
let free_regs live i ~pool =
  List.filter (fun r -> live.(i) land (1 lsl r) = 0) pool
