(** SP/GP-derived register tracking (paper Section 2.3): loads and
    stores whose base register provably holds a value computed from the
    stack or global pointer are private and need no checks.

    Forward dataflow with intersection at joins; intraprocedural and
    conservative around calls, as in the paper. *)

val initial : int
(** The entry mask: SP and GP derived. *)

val transfer : Shasta_isa.Insn.t -> int -> int

val analyze : Flow.t -> int array
(** [analyze flow].(i) is the derived-register mask before
    instruction [i]. *)

val access_is_private : Flow.t -> int array -> int -> bool
(** Is the memory access at the index exempt from instrumentation? *)
