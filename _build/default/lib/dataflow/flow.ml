(* Control flow over a flat procedure body.

   The instrumenter views a procedure exactly as a binary rewriter does:
   a flat instruction array with embedded labels.  This module resolves
   labels and exposes successor edges; the dataflow analyses and the
   batching scan are built on top of it. *)

open Shasta_isa

type t = {
  body : Insn.t array;
  label_index : (string, int) Hashtbl.t;
}

let of_body (body : Insn.t array) =
  let label_index = Hashtbl.create 16 in
  Array.iteri
    (fun i insn ->
      match insn with
      | Insn.Lab l -> Hashtbl.replace label_index l i
      | _ -> ())
    body;
  { body; label_index }

let of_list body = of_body (Array.of_list body)

let length t = Array.length t.body
let insn t i = t.body.(i)

let target t l =
  match Hashtbl.find_opt t.label_index l with
  | Some i -> i
  | None -> invalid_arg ("Flow.target: undefined label " ^ l)

(* Successor indices of instruction [i].  Falling off the end of the
   body is an implicit return (no successors). *)
let succs t i =
  let insn = t.body.(i) in
  let branch = List.map (target t) (Insn.branch_targets insn) in
  let fall =
    if Insn.falls_through insn && i + 1 < Array.length t.body then [ i + 1 ]
    else []
  in
  fall @ branch

(* A branch at [i] is a loop backedge if its target precedes it. *)
let is_backedge t i =
  match Insn.branch_targets t.body.(i) with
  | [ l ] -> target t l <= i
  | _ -> false
