lib/dataflow/flow.mli: Insn Shasta_isa
