lib/dataflow/liveness.mli: Flow Reg Shasta_isa
