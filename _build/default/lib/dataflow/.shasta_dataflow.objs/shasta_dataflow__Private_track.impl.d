lib/dataflow/private_track.ml: Array Flow Insn List Reg Shasta_isa
