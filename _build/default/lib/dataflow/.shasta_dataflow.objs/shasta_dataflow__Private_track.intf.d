lib/dataflow/private_track.mli: Flow Shasta_isa
