lib/dataflow/liveness.ml: Array Flow Insn List Reg Shasta_isa
