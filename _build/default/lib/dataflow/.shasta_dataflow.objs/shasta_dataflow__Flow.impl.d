lib/dataflow/flow.ml: Array Hashtbl Insn List Shasta_isa
