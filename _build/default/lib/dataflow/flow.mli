(** Control flow over a flat procedure body — the binary rewriter's view
    of a procedure: an instruction array with embedded labels. *)

open Shasta_isa

type t

val of_body : Insn.t array -> t
val of_list : Insn.t list -> t
val length : t -> int
val insn : t -> int -> Insn.t

val target : t -> string -> int
(** Index of a label; raises [Invalid_argument] if undefined. *)

val succs : t -> int -> int list
(** Successor indices; empty past a return or the end of the body. *)

val is_backedge : t -> int -> bool
(** True if the branch at the index targets itself or an earlier
    instruction (a loop, for batching and poll placement purposes). *)
