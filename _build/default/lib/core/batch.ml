(* Greedy batching scan (Section 3.4.1 of the paper).

   A batch is a set of loads and stores, each relative to an unmodified
   base register with offsets spanning at most one line size (hence
   touching at most two consecutive lines), whose checks are combined
   into one check of the range endpoints placed at the start of the
   batched code.

   The scan follows the paper's algorithm: instructions are consumed in
   execution order; a conditional branch that is not a loop backedge
   forks the scan down both paths; paths merge when they reach an
   already-scanned instruction, and a path reaching a point where
   another path already terminated terminates as well.  A path is
   terminated by: an access whose base register was modified since the
   batch began, an access stretching a base register's offset span
   beyond the line size, a procedure call / return / runtime call, a
   loop branch, or a store encountered after the scan has forked (the
   protocol requires the batch miss handler to know exactly which
   stores will execute, so stores appearing on only one of two parallel
   paths end the scan there — a conservative reading of the paper's
   last condition).  Unlike the paper we terminate on constant
   modifications of a live base register rather than tracking the
   delta; the pattern is rare in compiled inner loops, where bases stay
   fixed and offsets vary.

   After a scan completes, the batch is kept only if some base register
   has at least two accesses — "the normal shared miss checks are used
   if there is only a single load or store for each base register,
   since batching can actually increase overhead in this case". *)

open Shasta_isa
open Shasta_dataflow

type t = {
  start : int; (* index where the batch check is inserted *)
  ranges : Insn.range list;
  covered : int list; (* indices of accesses checked by this batch *)
  ends : int list; (* indices before which Batch_end markers go *)
}

type path = { pc : int; defined : int (* regs modified since start *) }

let max_paths = 4
let size_bytes = function Insn.Long -> 4 | Insn.Quad -> 8

(* Scan one batch starting at [start].  Returns the candidate batch and
   the set of instruction indices consumed by the scan. *)
let scan_one flow derived ~line_bytes ~start =
  let n = Flow.length flow in
  let consumed = Hashtbl.create 32 in
  let bases : (Reg.ireg, Insn.access list ref) Hashtbl.t = Hashtbl.create 4 in
  let covered = ref [] in
  let ends = ref [] in
  let forked = ref false in
  let add_end i = if not (List.mem i !ends) then ends := i :: !ends in
  let span_ok b (acc : Insn.access) =
    let accs =
      match Hashtbl.find_opt bases b with Some r -> !r | None -> []
    in
    let lo, hi =
      List.fold_left
        (fun (lo, hi) (a : Insn.access) ->
          (min lo a.disp, max hi (a.disp + size_bytes a.asize)))
        (acc.disp, acc.disp + size_bytes acc.asize)
        accs
    in
    hi - lo <= line_bytes
  in
  let add_access b acc i =
    let r =
      match Hashtbl.find_opt bases b with
      | Some r -> r
      | None ->
        let r = ref [] in
        Hashtbl.add bases b r;
        r
    in
    r := acc :: !r;
    covered := i :: !covered
  in
  let rec step paths steps =
    if steps > 4 * n then List.iter (fun p -> add_end p.pc) paths
    else
      match paths with
      | [] -> ()
      | p :: rest ->
        if p.pc >= n then begin
          add_end p.pc;
          step rest (steps + 1)
        end
        else if Hashtbl.mem consumed p.pc then step rest (steps + 1)
        else if List.mem p.pc !ends then step rest (steps + 1)
        else begin
          let i = p.pc in
          let ins = Flow.insn flow i in
          let terminate () = add_end i; step rest (steps + 1) in
          let consume k =
            Hashtbl.replace consumed i ();
            k ()
          in
          match ins with
          | Insn.Jsr _ | Insn.Ret | Insn.Rt_call _ | Insn.Poll
          | Insn.Call_load_miss _ | Insn.Call_store_miss _
          | Insn.Call_batch_miss _ | Insn.Batch_end ->
            terminate ()
          | Insn.Br l ->
            let t = Flow.target flow l in
            if t <= i then terminate ()
            else consume (fun () -> step ({ p with pc = t } :: rest) (steps + 1))
          | Insn.Bc (_, _, l) | Insn.Fbeq (_, l) | Insn.Fbne (_, l) ->
            let t = Flow.target flow l in
            if t <= i then terminate ()
            else if List.length paths >= max_paths then terminate ()
            else
              consume (fun () ->
                forked := true;
                step
                  ({ p with pc = i + 1 } :: { p with pc = t } :: rest)
                  (steps + 1))
          | _ when Insn.is_mem ins
                   && not (Private_track.access_is_private flow derived i) ->
            let base, disp =
              match Insn.mem_operand ins with
              | Some (b, d) -> (b, d)
              | None -> assert false
            in
            let sz = Option.get (Insn.mem_size ins) in
            let acc : Insn.access =
              { disp; asize = sz; is_store = Insn.is_store ins }
            in
            if p.defined land (1 lsl base) <> 0 then terminate ()
            else if not (span_ok base acc) then terminate ()
            else if acc.is_store && !forked then terminate ()
            else
              consume (fun () ->
                add_access base acc i;
                step ({ p with pc = i + 1 } :: rest) (steps + 1))
          | _ ->
            let defined =
              match Insn.def ins with
              | Some d -> p.defined lor (1 lsl d)
              | None -> p.defined
            in
            consume (fun () ->
              step ({ pc = i + 1; defined } :: rest) (steps + 1))
        end
  in
  step [ { pc = start; defined = 0 } ] 0;
  let ranges =
    Hashtbl.fold
      (fun rbase accs l -> { Insn.rbase; accesses = List.rev !accs } :: l)
      bases []
    |> List.sort compare
  in
  let worthwhile =
    List.exists (fun (r : Insn.range) -> List.length r.accesses >= 2) ranges
  in
  let batch =
    if worthwhile then
      Some { start; ranges; covered = List.rev !covered; ends = !ends }
    else None
  in
  (batch, consumed)

(* Scan a whole procedure body; returns all accepted batches. *)
let scan flow derived ~line_bytes =
  let n = Flow.length flow in
  let scanned = Array.make (max n 1) false in
  let batches = ref [] in
  let i = ref 0 in
  while !i < n do
    if scanned.(!i) then incr i
    else begin
      let batch, consumed = scan_one flow derived ~line_bytes ~start:!i in
      (match batch with Some b -> batches := b :: !batches | None -> ());
      Hashtbl.iter (fun j () -> if j < n then scanned.(j) <- true) consumed;
      (* the starting instruction itself was consumed or was a
         terminator; either way move past anything scanned *)
      if not (Hashtbl.mem consumed !i) then scanned.(!i) <- true;
      incr i
    end
  done;
  List.rev !batches
