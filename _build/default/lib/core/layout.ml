(* Address-space layout (Figure 3 of the paper).

   All shared data — and no private data — lives above 2^39, so a single
   `srl addr, 39` implements the shared-range check.  The state table is
   placed so that `srl addr, line_shift` of a shared address directly
   yields the address of the line's byte-size state entry; the exclusive
   table (Section 3.3, one bit per line) is placed so that
   `srl addr, line_shift + 3` yields the address of the quadword group
   of bits containing the line's bit, reachable with a single ldq_u. *)

let shared_shift = 39
let shared_base = 1 lsl shared_shift
let shared_limit = 1 lsl 40

(* Private regions, all below 2^39 and disjoint from the tables. *)
let text_base = 0x0100_0000
let static_base = 0x0800_0000
let static_limit = 0x1000_0000
let stack_top = 0x1400_0000 (* grows down *)
let stack_limit = 0x1000_0000

(* The tables are indexed by shifts of shared addresses, so their
   positions follow from the bases above. *)
let state_table_base ~line_shift = shared_base lsr line_shift
let state_table_limit ~line_shift = shared_limit lsr line_shift
let excl_table_base ~line_shift = shared_base lsr (line_shift + 3)
let excl_table_limit ~line_shift = shared_limit lsr (line_shift + 3)

let line_bytes ~line_shift = 1 lsl line_shift
let is_shared addr = addr lsr shared_shift <> 0

(* Address of the state-table byte for the line containing [addr]. *)
let state_addr ~line_shift addr = addr lsr line_shift

(* Quadword of the exclusive table containing [addr]'s bit, and the bit
   position within it — exactly what the generated check computes. *)
let excl_quad_addr ~line_shift addr = (addr lsr (line_shift + 3)) land lnot 7
let excl_bit_pos ~line_shift addr = (addr lsr line_shift) land 63

(* Line states as stored in the state table.  Exclusive is zero so the
   store check tests it with a single beq (Section 2.4). *)
let st_exclusive = 0
let st_shared = 1
let st_invalid = 2
let st_pending_invalid = 3
let st_pending_shared = 4

(* The load-miss flag value (Section 3.2): stored into every longword of
   an invalid line; chosen so `addl r, 253` tests it in one
   instruction. *)
let flag_value = -253
let flag_imm = 253
let flag_pattern = 0xFFFF_FF03 (* -253 as a 32-bit pattern *)
