(* The Shasta compiler: rewrites an executable, inserting shared miss
   checks at loads and stores (Figure 1 of the paper).

   Per procedure:
   1. dataflow analyses: SP/GP-derived base tracking (which accesses are
      private and exempt, Section 2.3) and live-register analysis (free
      registers for the check code, Section 2.4);
   2. the greedy batching scan when enabled (Section 3.4);
   3. check insertion: batch checks at batch starts, flag checks after
      loads, store checks split around stores;
   4. flag-check sinking below the load to hide the load-use delay
      (Section 3.2, "we attempt to move the entire check down");
   5. poll insertion (Section 2.2). *)

open Shasta_isa
open Shasta_dataflow

type stats = {
  mutable loads_total : int;
  mutable loads_instrumented : int;
  mutable stores_total : int;
  mutable stores_instrumented : int;
  mutable batches : int;
  mutable batched_accesses : int;
  mutable insns_before : int;
  mutable insns_after : int;
  mutable spills : int;
}

let empty_stats () =
  { loads_total = 0; loads_instrumented = 0; stores_total = 0;
    stores_instrumented = 0; batches = 0; batched_accesses = 0;
    insns_before = 0; insns_after = 0; spills = 0 }

(* Registers the instrumenter may claim when dead. *)
let scratch_pool = Reg.int_temps

(* --- flag-check sinking ------------------------------------------- *)

(* A flag check group begins with `addl rx, 253, loaded` (integer case)
   or `ldl rx, d(b)` followed by `addl` (FP case) and ends at its Lab.
   Sink the whole group past following instructions that do not touch
   the registers it depends on, to hide the load-use latency. *)

let max_sink = 3

let rec split_group acc = function
  | Insn.Lab l :: rest -> (List.rev (Insn.Lab l :: acc), rest)
  | i :: rest -> split_group (i :: acc) rest
  | [] -> (List.rev acc, [])

(* integer and float use/def masks of one instruction *)
let insn_masks i =
  let u = List.fold_left (fun m r -> m lor (1 lsl r)) 0 (Insn.uses i) in
  let d = match Insn.def i with Some r -> 1 lsl r | None -> 0 in
  let fu = List.fold_left (fun m r -> m lor (1 lsl r)) 0 (Insn.fuses i) in
  let fd = match Insn.fdef i with Some r -> 1 lsl r | None -> 0 in
  (u, d, fu, fd)

let group_regs group =
  List.fold_left
    (fun (uses, defs, fuses, fdefs) i ->
      let u, d, fu, fd = insn_masks i in
      (uses lor u, defs lor d, fuses lor fu, fdefs lor fd))
    (0, 0, 0, 0) group

let blocks_sinking i =
  Insn.is_branch i || Insn.is_call i
  (* never sink a check past a store: on a miss the handler re-reads
     memory to refill the destination, so a store that moved above the
     check could alias the loaded location *)
  || Insn.is_store i
  || (match i with
      | Insn.Lab _ | Insn.Ret | Insn.Poll | Insn.Rt_call _
      | Insn.Call_load_miss _ | Insn.Call_store_miss _
      | Insn.Call_batch_miss _ | Insn.Batch_end -> true
      | _ -> false)


(* Is [i] the start of a flag-check group?  The generator tags groups by
   their shape: addl reg, 253 immediately followed by a bne to a label,
   or the extra ldl of an FP check. *)
let starts_group = function
  | Insn.Opi (Addl, _, Imm imm, _) :: Insn.Bc (Ne, _, _) :: _ ->
    imm = Layout.flag_imm
  | Insn.Ldl (_, _, _)
    :: Insn.Opi (Addl, _, Imm imm, _)
    :: Insn.Bc (Ne, _, _) :: _ ->
    imm = Layout.flag_imm
  | _ -> false

let sink_flag_checks body =
  let rec go = function
    | [] -> []
    | insns when starts_group insns ->
      let group, rest = split_group [] insns in
      let guses, gdefs, gfuses, gfdefs = group_regs group in
      let rec sink moved rest n =
        match rest with
        | i :: tl when n < max_sink && not (blocks_sinking i) ->
          let u, d, fu, fd = insn_masks i in
          (* the bystander must not read what the group defines, nor
             write what the group reads or writes — in either register
             file (the FP check's miss call refills a float register) *)
          if d land (guses lor gdefs) = 0
             && u land gdefs = 0
             && fd land (gfuses lor gfdefs) = 0
             && fu land gfdefs = 0
          then sink (i :: moved) tl (n + 1)
          else (List.rev moved, rest)
        | _ -> (List.rev moved, rest)
      in
      let moved, rest = sink [] rest 0 in
      moved @ group @ go rest
    | i :: rest -> i :: go rest
  in
  go body

(* --- main driver --------------------------------------------------- *)

let instrument_proc (opts : Opts.t) stats (p : Program.proc) =
  let body = Array.of_list p.body in
  let n = Array.length body in
  let flow = Flow.of_body body in
  let derived = Private_track.analyze flow in
  let live = Liveness.analyze flow in
  let batches =
    if opts.batching then
      Batch.scan flow derived ~line_bytes:(Opts.line_bytes opts)
    else []
  in
  let covered = Hashtbl.create 32 in
  List.iter
    (fun (b : Batch.t) ->
      List.iter (fun i -> Hashtbl.replace covered i ()) b.covered)
    batches;
  let batch_starts = Hashtbl.create 8 in
  List.iter
    (fun (b : Batch.t) -> Hashtbl.replace batch_starts b.start b)
    batches;
  let batch_ends = Hashtbl.create 8 in
  List.iter
    (fun (b : Batch.t) ->
      List.iter (fun i -> Hashtbl.replace batch_ends i ()) b.ends)
    batches;
  let label_counter = ref 0 in
  let fresh () =
    incr label_counter;
    Printf.sprintf "__sc%s_%d" p.pname !label_counter
  in
  let free_at i =
    Liveness.free_regs live (min i (n - 1)) ~pool:scratch_pool
  in
  let out = ref [] in
  let emit i = out := i :: !out in
  let emit_all l = List.iter emit l in
  for i = 0 to n - 1 do
    if Hashtbl.mem batch_ends i then emit Insn.Batch_end;
    (match Hashtbl.find_opt batch_starts i with
     | Some b ->
       stats.batches <- stats.batches + 1;
       stats.batched_accesses <- stats.batched_accesses + List.length b.covered;
       let w =
         Check.batch_check opts ~fresh ~free:(free_at i)
           { Insn.ranges = b.ranges }
       in
       emit_all w.pre
     | None -> ());
    let ins = body.(i) in
    if Insn.is_load ins then stats.loads_total <- stats.loads_total + 1;
    if Insn.is_store ins then stats.stores_total <- stats.stores_total + 1;
    let private_ = Private_track.access_is_private flow derived i in
    let batched = Hashtbl.mem covered i in
    if Insn.is_mem ins && not private_ then begin
      if Insn.is_load ins then
        stats.loads_instrumented <- stats.loads_instrumented + 1
      else stats.stores_instrumented <- stats.stores_instrumented + 1
    end;
    if (not (Insn.is_mem ins)) || private_ || batched then emit ins
    else begin
      let base, disp = Option.get (Insn.mem_operand ins) in
      let w =
        if Insn.is_load ins then begin
          let refill =
            match ins with
            | Insn.Ldl (d, _, _) -> Insn.Rint (d, Insn.Long)
            | Insn.Ldq (d, _, _) | Insn.Ldq_u (d, _, _) ->
              Insn.Rint (d, Insn.Quad)
            | Insn.Ldt (f, _, _) -> Insn.Rflt f
            | _ -> assert false
          in
          Check.load_check opts ~fresh ~free:(free_at i) ~base ~disp ~refill
        end
        else begin
          let ssize = Option.get (Insn.mem_size ins) in
          Check.store_check opts ~fresh ~free:(free_at i) ~base ~disp ~ssize
        end
      in
      emit_all w.pre;
      emit ins;
      emit_all w.post
    end
  done;
  if Hashtbl.mem batch_ends n then emit Insn.Batch_end;
  let body = List.rev !out in
  let body = if opts.schedule then sink_flag_checks body else body in
  let body = Poll.insert opts.poll body in
  body

let instrument ?(opts = Opts.full) (prog : Program.t) =
  let stats = empty_stats () in
  let before = Program.count_accesses prog in
  stats.insns_before <- before.insns;
  let prog' = Program.map_procs (instrument_proc opts stats) prog in
  let after = Program.count_accesses prog' in
  stats.insns_after <- after.insns;
  (Program.validate prog', stats)

let pp_stats ppf (s : stats) =
  Fmt.pf ppf
    "loads %d/%d stores %d/%d batches %d (%d accesses) insns %d -> %d"
    s.loads_instrumented s.loads_total s.stores_instrumented s.stores_total
    s.batches s.batched_accesses s.insns_before s.insns_after
