(* Instrumentation options.

   Each field corresponds to one of the overhead-reduction techniques of
   Sections 2–3; the accumulating columns of Table 2 are successive
   values of this record (see [table2_columns]). *)

type poll_mode = Poll_none | Poll_fn_entry | Poll_loop

type t = {
  line_shift : int; (* log2 of the line size; 6 = 64 bytes *)
  range_check : bool; (* shared-address range check before table lookups *)
  schedule : bool; (* Section 3.1: reorder checks, split store checks *)
  flag_loads : bool; (* Section 3.2: value-based load checks *)
  excl_table : bool; (* Section 3.3: store checks via the exclusive table *)
  batching : bool; (* Section 3.4: batch checks for access runs *)
  poll : poll_mode; (* Section 2.2: message polling placement *)
}

let basic =
  { line_shift = 6; range_check = true; schedule = false; flag_loads = false;
    excl_table = false; batching = false; poll = Poll_none }

let with_schedule = { basic with schedule = true }
let with_flag = { with_schedule with flag_loads = true }
let with_excl = { with_flag with excl_table = true }
let with_batch = { with_excl with batching = true }
let with_fn_poll = { with_batch with poll = Poll_fn_entry }
let with_loop_poll = { with_batch with poll = Poll_loop }
let no_range_check = { with_loop_poll with range_check = false }

(* The fully optimized configuration used for parallel runs: everything
   on, loop polling, range checks kept (the paper keeps them "since
   [they] can significantly reduce" overhead for private-heavy apps). *)
let full = with_loop_poll

let line_bytes t = 1 lsl t.line_shift

(* The accumulating optimization levels reported in Table 2, in column
   order. *)
let table2_columns =
  [ ("basic", basic);
    ("+sched", with_schedule);
    ("+flag", with_flag);
    ("+excl", with_excl);
    ("+batch", with_batch);
    ("+fnpoll", with_fn_poll);
    ("+looppoll", with_loop_poll);
    ("norange", no_range_check) ]

let name t =
  Printf.sprintf "line=%d%s%s%s%s%s%s" (line_bytes t)
    (if t.range_check then "" else " norange")
    (if t.schedule then " sched" else "")
    (if t.flag_loads then " flag" else "")
    (if t.excl_table then " excl" else "")
    (if t.batching then " batch" else "")
    (match t.poll with
     | Poll_none -> ""
     | Poll_fn_entry -> " fnpoll"
     | Poll_loop -> " looppoll")
