(** Address-space layout (paper Figure 3).

    All shared data lives above 2^39 so a single `srl addr, 39`
    implements the range check; the state table sits where
    `srl addr, line_shift` of a shared address directly yields the
    line's state-byte address; the exclusive table (Section 3.3) sits
    where `srl addr, line_shift + 3` yields its bit group. *)

val shared_shift : int
val shared_base : int
val shared_limit : int

val text_base : int
val static_base : int
val static_limit : int

(** The stack grows down from [stack_top]. *)

val stack_top : int
val stack_limit : int

val state_table_base : line_shift:int -> int
val state_table_limit : line_shift:int -> int
val excl_table_base : line_shift:int -> int
val excl_table_limit : line_shift:int -> int

val line_bytes : line_shift:int -> int
val is_shared : int -> bool

val state_addr : line_shift:int -> int -> int
(** Address of the state-table byte of the line containing the given
    address — exactly what the inline check computes with one shift. *)

val excl_quad_addr : line_shift:int -> int -> int
(** Aligned quadword of the exclusive table holding the line's bit. *)

val excl_bit_pos : line_shift:int -> int -> int

(** Line states stored in the state table; exclusive is zero so a store
    check tests it with a single [beq] (Section 2.4). *)

val st_exclusive : int
val st_shared : int
val st_invalid : int
val st_pending_invalid : int
val st_pending_shared : int

val flag_value : int
(** -253, the load-miss flag (Section 3.2): written into every longword
    of an invalid line and detected with a single [addl]. *)

val flag_imm : int
val flag_pattern : int
(** The flag value as a 32-bit memory pattern. *)
