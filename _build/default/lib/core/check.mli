(** Shared-miss check code generation — the instruction sequences of
    the paper's Figures 2, 4, 5 and 6.

    Checks are generated against a list of free registers supplied by
    live-register analysis; with too few free registers the generator
    spills to the stack red zone (rarely needed in practice, as the
    paper observes). *)

open Shasta_isa

type wrapped = { pre : Insn.t list; post : Insn.t list }
(** Code to insert before and after the original access. *)

val no_check : wrapped

val store_check :
  Opts.t ->
  fresh:(unit -> string) ->
  free:Reg.ireg list ->
  base:Reg.ireg ->
  disp:int ->
  ssize:Insn.size ->
  wrapped
(** Figure 2 (basic order) / Figure 4 (rescheduled and split around the
    store) when [opts.schedule]; the Section 3.3 exclusive-table variant
    when [opts.excl_table]; the address setup is elided for zero
    displacements. *)

val load_check :
  Opts.t ->
  fresh:(unit -> string) ->
  free:Reg.ireg list ->
  base:Reg.ireg ->
  disp:int ->
  refill:Insn.refill ->
  wrapped
(** Figure 5(a)/(b) flag checks when [opts.flag_loads] (FP loads get the
    extra integer load of the same longword); otherwise the
    pre-flag-technique state-table load check.  When the load overwrites
    its own base register the address is captured first so the miss
    handler can still identify the line. *)

val batch_check :
  Opts.t ->
  fresh:(unit -> string) ->
  free:Reg.ireg list ->
  Insn.batch ->
  wrapped
(** Figure 6: per-range endpoint checks chained to one batch-miss call;
    load-only ranges use interleaved flag compares, ranges containing
    stores use interleaved exclusive tests on both endpoints. *)

val range_bounds : Insn.range -> int * int
val range_has_store : Insn.range -> bool
