(** The greedy batching scan of paper Section 3.4.1.

    Finds runs of loads and stores off unmodified base registers whose
    offsets span at most one line size, following execution order across
    forward branches (forking and merging paths) and terminating on base
    modification, span overflow, calls, loop branches, returns, and
    stores appearing after the scan has forked. *)

open Shasta_isa
open Shasta_dataflow

type t = {
  start : int;  (** index where the batch check is inserted *)
  ranges : Insn.range list;
  covered : int list;  (** access indices checked by this batch *)
  ends : int list;  (** indices before which [Batch_end] markers go *)
}

val scan : Flow.t -> int array -> line_bytes:int -> t list
(** [scan flow derived ~line_bytes] scans a whole procedure, starting
    each new scan at the earliest unscanned instruction; batches where
    no base register has at least two accesses are discarded ("normal
    miss checks are used if there is only a single load or store for
    each base register"). *)
