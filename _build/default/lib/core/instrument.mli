(** The Shasta compiler (paper Figure 1): rewrites an executable,
    inserting shared miss checks at loads and stores.

    Per procedure: SP/GP-derived base tracking decides which accesses
    are private and exempt (Section 2.3); live-register analysis finds
    free registers for the checks (Section 2.4); the batching scan
    combines checks for access runs (Section 3.4); check insertion
    follows Figures 2/4/5/6; flag checks are sunk below their loads to
    hide the load-use delay; polls are inserted last (Section 2.2). *)

open Shasta_isa

type stats = {
  mutable loads_total : int;
  mutable loads_instrumented : int;
  mutable stores_total : int;
  mutable stores_instrumented : int;
  mutable batches : int;
  mutable batched_accesses : int;
  mutable insns_before : int;
  mutable insns_after : int;
  mutable spills : int;
}

val empty_stats : unit -> stats

val instrument : ?opts:Opts.t -> Program.t -> Program.t * stats
(** Rewrite the executable (default options: {!Opts.full}).  The result
    is validated; the statistics feed the Table 3 characterization. *)

val pp_stats : Format.formatter -> stats -> unit
