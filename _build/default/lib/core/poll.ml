(* Message-poll insertion (Section 2.2 of the paper).

   Besides polling while the protocol waits for a reply (done by the
   runtime), polls are inserted either at every function entry or at
   every loop backedge.  For loop polling, no poll is inserted for small
   loops: loops with no function calls that execute at most 15
   instructions per iteration.  The Poll pseudo-instruction stands for
   the three-instruction sequence (address setup, load of the poll
   location, conditional branch); the timing model charges it as such,
   and the runtime services pending messages when it executes. *)

open Shasta_isa
open Shasta_dataflow

let small_loop_insns = 15

(* Count executable instructions and calls in [body] between indices
   [lo, hi] inclusive. *)
let loop_profile body lo hi =
  let count = ref 0 and calls = ref false in
  for i = lo to hi do
    if Insn.bytes body.(i) > 0 then incr count;
    if Insn.is_call body.(i) then calls := true
  done;
  (!count, !calls)

let insert_loop_polls body =
  let flow = Flow.of_list body in
  let arr = Array.of_list body in
  let out = ref [] in
  Array.iteri
    (fun i ins ->
      let is_backedge =
        match Insn.branch_targets ins with
        | [ l ] -> Flow.target flow l <= i
        | _ -> false
      in
      if is_backedge then begin
        let target = Flow.target flow (List.hd (Insn.branch_targets ins)) in
        let insns, calls = loop_profile arr target i in
        if calls || insns > small_loop_insns then out := Insn.Poll :: !out
      end;
      out := ins :: !out)
    arr;
  List.rev !out

let insert_fn_entry_poll body = Insn.Poll :: body

let insert (mode : Opts.poll_mode) body =
  match mode with
  | Opts.Poll_none -> body
  | Opts.Poll_fn_entry -> insert_fn_entry_poll body
  | Opts.Poll_loop -> insert_loop_polls body
