(** Instrumentation options: one field per overhead-reduction technique
    of the paper's Sections 2–3.  The accumulating columns of Table 2
    are successive values of this record. *)

type poll_mode = Poll_none | Poll_fn_entry | Poll_loop

type t = {
  line_shift : int;  (** log2 of the line size; 6 = 64 B, 7 = 128 B *)
  range_check : bool;
      (** shared-address range check before table lookups (Section 2.4) *)
  schedule : bool;
      (** Section 3.1: Figure 4 ordering, store checks split around the
          store, flag checks sunk below the load *)
  flag_loads : bool;  (** Section 3.2: value-based load checks *)
  excl_table : bool;
      (** Section 3.3: store checks read the bit-per-line exclusive
          table instead of the state table *)
  batching : bool;  (** Section 3.4: combined checks for access runs *)
  poll : poll_mode;  (** Section 2.2: message polling placement *)
}

val basic : t
(** Well-laid-out checks with free registers, nothing else — the
    paper's fourth Table 2 column. *)

val with_schedule : t
val with_flag : t
val with_excl : t
val with_batch : t
(** The paper's bold Table 2 column. *)

val with_fn_poll : t
val with_loop_poll : t
val no_range_check : t

val full : t
(** The configuration used for parallel runs: every optimization on,
    loop polling, range checks kept. *)

val line_bytes : t -> int

val table2_columns : (string * t) list
(** The accumulating optimization levels of Table 2, in column order. *)

val name : t -> string
