(** Message-poll insertion (paper Section 2.2): polls at every function
    entry or every loop backedge, skipping small loops (no calls, at
    most 15 instructions per iteration). *)

open Shasta_isa

val small_loop_insns : int

val insert : Opts.poll_mode -> Insn.t list -> Insn.t list
