lib/core/batch.mli: Flow Insn Shasta_dataflow Shasta_isa
