lib/core/opts.mli:
