lib/core/layout.mli:
