lib/core/instrument.ml: Array Batch Check Flow Fmt Hashtbl Insn Layout List Liveness Option Opts Poll Printf Private_track Program Reg Shasta_dataflow Shasta_isa
