lib/core/poll.mli: Insn Opts Shasta_isa
