lib/core/check.mli: Insn Opts Reg Shasta_isa
