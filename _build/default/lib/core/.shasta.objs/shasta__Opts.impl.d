lib/core/opts.ml: Printf
