lib/core/layout.ml:
