lib/core/instrument.mli: Format Opts Program Shasta_isa
