lib/core/poll.ml: Array Flow Insn List Opts Shasta_dataflow Shasta_isa
