lib/core/batch.ml: Array Flow Hashtbl Insn List Option Private_track Reg Shasta_dataflow Shasta_isa
