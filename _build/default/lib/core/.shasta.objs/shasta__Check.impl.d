lib/core/check.ml: Insn Layout List Opts Reg Shasta_isa
