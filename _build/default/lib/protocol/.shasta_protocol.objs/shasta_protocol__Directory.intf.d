lib/protocol/directory.mli:
