lib/protocol/granularity.ml: Hashtbl
