lib/protocol/granularity.mli: Hashtbl
