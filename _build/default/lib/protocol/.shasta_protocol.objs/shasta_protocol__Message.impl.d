lib/protocol/message.ml: Array Printf
