lib/protocol/directory.ml: Hashtbl Printf
