(** Multiple coherence granularities (paper Section 4.2): every shared
    page has one block size, chosen at allocation time, known to all
    nodes; blocks are the unit of communication and coherence. *)

type t = {
  line_bytes : int;
  page_bytes : int;
  threshold : int;
  block_of_page : (int, int) Hashtbl.t;
}

val create : ?page_bytes:int -> ?threshold:int -> line_bytes:int -> unit -> t

val legalize : t -> int -> int
(** Round a block-size request to a legal value: a power-of-two multiple
    of the line size, at most a page. *)

val heuristic_block : t -> size:int -> int
(** The paper's allocation heuristic: objects up to [threshold] travel
    as one block; larger objects use line-size blocks to avoid false
    sharing. *)

val set_page_block : t -> page:int -> block_bytes:int -> unit
val page_of : t -> int -> int
val block_bytes_at : t -> int -> int
val block_base : t -> int -> int
val lines_per_block : t -> int -> int
