(* Multiple coherence granularities (Section 4.2 of the paper).

   The block size — the unit of communication and coherence — varies
   across the shared address space: every page has a single block size,
   chosen when data is allocated onto it, and "the block size for each
   page is communicated to all the nodes at the time the pool of shared
   pages are allocated", so every node can map an address to its block
   without asking the home.

   The allocation heuristic is the paper's: objects up to a threshold
   get a block size equal to the (line-rounded) object size, so small
   objects travel as a unit; larger objects use the base line size to
   avoid false sharing.  An explicit block size (the special version of
   malloc) overrides the heuristic. *)

type t = {
  line_bytes : int;
  page_bytes : int;
  threshold : int; (* heuristic cutoff for object-sized blocks *)
  block_of_page : (int, int) Hashtbl.t; (* page number -> block bytes *)
}

let create ?(page_bytes = 8192) ?(threshold = 1024) ~line_bytes () =
  if line_bytes land (line_bytes - 1) <> 0 then
    invalid_arg "Granularity.create: line size must be a power of two";
  { line_bytes; page_bytes; threshold; block_of_page = Hashtbl.create 64 }

let round_up v m = (v + m - 1) / m * m

(* Round a block-size request to a legal value: a multiple of the line
   size ("the size of each block must be a multiple of the fixed line
   size"), a power of two for alignment, at most a page. *)
let legalize t bytes =
  let b = max t.line_bytes (min bytes t.page_bytes) in
  let rec pow2 p = if p >= b then p else pow2 (2 * p) in
  pow2 t.line_bytes

(* Heuristic block size for an object of [size] bytes (Section 4.2). *)
let heuristic_block t ~size =
  if size <= t.threshold then legalize t (round_up (max size 1) t.line_bytes)
  else t.line_bytes

let set_page_block t ~page ~block_bytes =
  (match Hashtbl.find_opt t.block_of_page page with
   | Some b when b <> block_bytes ->
     invalid_arg "Granularity.set_page_block: page already has a block size"
   | _ -> ());
  Hashtbl.replace t.block_of_page page block_bytes

let page_of t addr = addr / t.page_bytes

let block_bytes_at t addr =
  match Hashtbl.find_opt t.block_of_page (page_of t addr) with
  | Some b -> b
  | None -> t.line_bytes

(* Base address of the block containing [addr]. *)
let block_base t addr =
  let b = block_bytes_at t addr in
  addr land lnot (b - 1)

let lines_per_block t addr = block_bytes_at t addr / t.line_bytes
