(** Disassembler: Alpha-style assembler syntax for instructions,
    procedures and whole programs (used by tests, the protocol-trace
    example and the Figure 2/4/5/6 bench section). *)

val iop_name : Insn.iop -> string
val fop_name : Insn.fop -> string
val cond_name : Insn.cond -> string
val to_string : Insn.t -> string
val pp : Format.formatter -> Insn.t -> unit
val proc_to_string : Program.proc -> string
val program_to_string : Program.t -> string
