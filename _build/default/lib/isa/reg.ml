(* Register conventions of the simulated Alpha-like target.

   Integer registers r0..r31 and floating-point registers f0..f31.
   r31 and f31 always read as zero, as on the Alpha.  The software
   conventions mirror the Alpha calling standard closely enough that the
   Shasta instrumenter's special-casing of SP and GP (Section 2.3 of the
   paper) is meaningful. *)

type ireg = int
type freg = int

let zero = 31
let fzero = 31
let sp = 30
let gp = 29
let ra = 26

(* Return-value registers. *)
let rv = 0
let frv = 0

(* Argument registers a0..a5 = r16..r21, fa0..fa5 = f16..f21. *)
let arg i =
  if i < 0 || i > 5 then invalid_arg "Reg.arg";
  16 + i

let farg i =
  if i < 0 || i > 5 then invalid_arg "Reg.farg";
  16 + i

(* Caller-saved temporaries available to compiled code.  The code
   generator draws expression temporaries from this pool; everything it
   does not use at a given program point is free for the instrumenter. *)
let int_temps = [ 1; 2; 3; 4; 5; 6; 7; 8; 22; 23; 24; 25 ]
let float_temps = [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ]

let is_int_temp r = List.mem r int_temps
let name r = if r = zero then "zero" else Printf.sprintf "r%d" r
let fname f = if f = fzero then "fzero" else Printf.sprintf "f%d" f

let pp ppf r = Fmt.string ppf (name r)
let ppf_ ppf f = Fmt.string ppf (fname f)
