lib/isa/asm.mli: Format Insn Program
