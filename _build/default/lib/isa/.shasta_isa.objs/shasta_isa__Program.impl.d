lib/isa/program.ml: Hashtbl Insn List Printf
