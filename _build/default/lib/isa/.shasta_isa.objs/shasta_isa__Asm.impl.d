lib/isa/asm.ml: Buffer Fmt Insn List Printf Program Reg String
