lib/isa/insn.ml: List Reg
