(** Register conventions of the simulated Alpha-like target.

    Thirty-two integer and thirty-two floating-point registers; [r31]
    and [f31] read as zero.  The software conventions mirror the Alpha
    calling standard so the instrumenter's special treatment of SP and
    GP (paper Section 2.3) is meaningful. *)

type ireg = int
(** An integer register number in [0, 31]. *)

type freg = int
(** A floating-point register number in [0, 31]. *)

val zero : ireg
(** [r31], hardwired to zero. *)

val fzero : freg
(** [f31], hardwired to zero. *)

val sp : ireg
(** The stack pointer, [r30]; SP-based accesses are private. *)

val gp : ireg
(** The global pointer, [r29]; GP-based accesses are private. *)

val ra : ireg
(** The return-address register, [r26]. *)

val rv : ireg
(** Integer return-value register, [r0]. *)

val frv : freg
(** Floating-point return-value register, [f0]. *)

val arg : int -> ireg
(** [arg i] is the i-th (0-based, i <= 5) integer argument register. *)

val farg : int -> freg
(** [farg i] is the i-th floating-point argument register. *)

val int_temps : ireg list
(** Caller-saved temporaries used by the code generator; registers from
    this pool that are dead at a program point are what the live-register
    analysis hands to the check generator. *)

val float_temps : freg list
(** Caller-saved floating-point temporaries. *)

val is_int_temp : ireg -> bool

val name : ireg -> string
val fname : freg -> string
val pp : Format.formatter -> ireg -> unit
val ppf_ : Format.formatter -> freg -> unit
