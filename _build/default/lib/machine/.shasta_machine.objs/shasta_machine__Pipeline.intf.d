lib/machine/pipeline.mli: Cache Shasta_isa
