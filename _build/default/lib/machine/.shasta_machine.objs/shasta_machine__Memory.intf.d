lib/machine/memory.mli:
