lib/machine/cache.mli:
