lib/machine/memory.ml: Array Hashtbl Int64 List Printf
