lib/machine/pipeline.ml: Array Cache Insn List Shasta_isa
