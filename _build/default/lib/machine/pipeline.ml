(* Static in-order issue timing model.

   Models the features of the Alpha 21064A and 21164 the paper's
   overhead analysis depends on (Sections 3.1, 5.1): multiple issue with
   a single memory port, the one-cycle shift-use delay on the 21064A
   (why Figure 4 beats Figure 2), load-use delay (why the flag compare
   is sunk below the load), long FP compare/branch latency (why FP loads
   are checked through an extra integer load), and static branch
   prediction (backward taken / forward not-taken).  A register
   scoreboard tracks result availability; issue is in order. *)

open Shasta_isa

type config = {
  cpu_name : string;
  issue_width : int;
  load_latency : int;
  shift_latency : int;
  int_latency : int;
  mul_latency : int;
  div_latency : int;
  fp_latency : int;
  fp_div_latency : int;
  fp_branch_cost : int; (* extra cycles to resolve an FP branch *)
  mispredict_cycles : int;
  call_cycles : int; (* jsr/ret overhead beyond issue *)
}

(* 275 MHz 21064A: dual issue, 3-cycle loads, shift results delayed one
   cycle (Section 3.1). *)
let alpha_21064a =
  { cpu_name = "21064A"; issue_width = 2; load_latency = 3;
    shift_latency = 2; int_latency = 1; mul_latency = 12; div_latency = 40;
    fp_latency = 6; fp_div_latency = 34; fp_branch_cost = 4;
    mispredict_cycles = 4; call_cycles = 2 }

(* 21164: quad issue, 2-cycle loads, single-cycle shifts — "fewer
   pipeline stalls and dual-issue of some of the checking code". *)
let alpha_21164 =
  { cpu_name = "21164"; issue_width = 4; load_latency = 2;
    shift_latency = 1; int_latency = 1; mul_latency = 8; div_latency = 30;
    fp_latency = 4; fp_div_latency = 22; fp_branch_cost = 3;
    mispredict_cycles = 5; call_cycles = 2 }

type branch_info =
  | B_none
  | B_taken of { backward : bool }
  | B_not_taken of { backward : bool }

type t = {
  config : config;
  caches : Cache.hierarchy option; (* None = ideal memory, used by Table 1 *)
  ireg_ready : int array;
  freg_ready : int array;
  mutable cycle : int;
  mutable slots_used : int;
  mutable mem_used : bool;
  mutable insns : int;
}

let create ?caches config =
  { config; caches;
    ireg_ready = Array.make 32 0;
    freg_ready = Array.make 32 0;
    cycle = 0; slots_used = 0; mem_used = false; insns = 0 }

let cycle t = t.cycle
let insns t = t.insns

let reset t =
  Array.fill t.ireg_ready 0 32 0;
  Array.fill t.freg_ready 0 32 0;
  t.cycle <- 0;
  t.slots_used <- 0;
  t.mem_used <- false;
  t.insns <- 0

(* Advance time by [n] stall cycles (handler entry, polling, ...). *)
let stall t n =
  if n > 0 then begin
    t.cycle <- t.cycle + n;
    t.slots_used <- 0;
    t.mem_used <- false
  end

let advance_to t when_ =
  if when_ > t.cycle then begin
    t.cycle <- when_;
    t.slots_used <- 0;
    t.mem_used <- false
  end

let result_latency config (i : Insn.t) =
  match i with
  | Ldl _ | Ldq _ | Ldq_u _ | Ldt _ -> config.load_latency
  | Opi ((Sll | Srl | Sra), _, _, _) -> config.shift_latency
  | Opi (Mulq, _, _, _) | Opi (Mull, _, _, _) -> config.mul_latency
  | Opi ((Divq | Remq), _, _, _) -> config.div_latency
  | Opf ((Divt | Sqrtt), _, _, _) -> config.fp_div_latency
  | Opf _ | Cvtqt _ | Cvttq _ | Fmov _ -> config.fp_latency
  | _ -> config.int_latency

(* Static prediction: backward branches predicted taken, forward
   branches predicted not-taken. *)
let mispredicted info =
  match info with
  | B_none -> false
  | B_taken { backward } -> not backward
  | B_not_taken { backward } -> backward

(* Issue one instruction.  [iaddr] is its text address (for the I-cache),
   [maddr] the data address of a memory access (for the D-cache). *)
let issue t (i : Insn.t) ~iaddr ~maddr ~branch =
  let c = t.config in
  t.insns <- t.insns + 1;
  (* instruction fetch *)
  (match t.caches with
   | Some h ->
     let extra = Cache.iaccess h iaddr in
     if extra > 0 then stall t extra
   | None -> ());
  (* wait for source operands *)
  let ready = ref t.cycle in
  List.iter (fun r -> if r < 31 then ready := max !ready t.ireg_ready.(r))
    (Insn.uses i);
  List.iter (fun f -> if f < 31 then ready := max !ready t.freg_ready.(f))
    (Insn.fuses i);
  advance_to t !ready;
  (* structural constraints: issue width, single memory port *)
  if t.slots_used >= c.issue_width then begin
    t.cycle <- t.cycle + 1;
    t.slots_used <- 0;
    t.mem_used <- false
  end;
  if Insn.is_mem i && t.mem_used then begin
    t.cycle <- t.cycle + 1;
    t.slots_used <- 0;
    t.mem_used <- false
  end;
  t.slots_used <- t.slots_used + 1;
  if Insn.is_mem i then t.mem_used <- true;
  (* data cache *)
  let dextra =
    match (maddr, t.caches) with
    | Some a, Some h -> Cache.daccess h a
    | _ -> 0
  in
  (* record result availability *)
  let lat = result_latency c i + dextra in
  (match Insn.def i with
   | Some d when d < 31 -> t.ireg_ready.(d) <- t.cycle + lat
   | _ -> ());
  (match Insn.fdef i with
   | Some d when d < 31 -> t.freg_ready.(d) <- t.cycle + lat
   | _ -> ());
  (* stores that miss stall the single memory port *)
  if Insn.is_store i && dextra > 0 then stall t dextra;
  (* control flow *)
  (match i with
   | Fbeq _ | Fbne _ -> stall t c.fp_branch_cost
   | Jsr _ | Ret -> stall t c.call_cycles
   | _ -> ());
  if mispredicted branch then stall t c.mispredict_cycles
  else
    match branch with
    | B_taken _ ->
      (* a taken branch ends the issue group *)
      t.cycle <- t.cycle + 1;
      t.slots_used <- 0;
      t.mem_used <- false
    | _ -> ()
