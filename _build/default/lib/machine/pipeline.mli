(** Static in-order issue timing model.

    Models the features the paper's overhead analysis depends on
    (Sections 3.1, 5.1): multiple issue with a single memory port, the
    21064A's shift-use delay (why Figure 4 beats Figure 2), load-use
    delay (why the flag compare is sunk below the load), long FP
    compare/branch latency (why FP loads are checked through an extra
    integer load), and static branch prediction. *)

type config = {
  cpu_name : string;
  issue_width : int;
  load_latency : int;
  shift_latency : int;
  int_latency : int;
  mul_latency : int;
  div_latency : int;
  fp_latency : int;
  fp_div_latency : int;
  fp_branch_cost : int;
  mispredict_cycles : int;
  call_cycles : int;
}

val alpha_21064a : config
(** The 275 MHz dual-issue 21064A of the paper's measurements. *)

val alpha_21164 : config
(** The quad-issue 21164 of the paper's second cycle-count column. *)

type branch_info =
  | B_none
  | B_taken of { backward : bool }
  | B_not_taken of { backward : bool }

type t

val create : ?caches:Cache.hierarchy -> config -> t
(** Without [caches], memory is ideal (used for static cost studies). *)

val cycle : t -> int
val insns : t -> int
val reset : t -> unit

val stall : t -> int -> unit
(** Advance time by stall cycles (handler entry, polls, waiting). *)

val advance_to : t -> int -> unit
(** Advance to an absolute cycle (message arrival); never goes back. *)

val issue :
  t ->
  Shasta_isa.Insn.t ->
  iaddr:int ->
  maddr:int option ->
  branch:branch_info ->
  unit
(** Issue one instruction: waits for source operands (scoreboard),
    respects issue width and the single memory port, charges I/D cache
    misses, records result latency, and applies branch costs. *)
