(** Sparse simulated memory.

    A table of 8 KB pages of 32-bit longword patterns.  The longword is
    primitive because the Shasta flag technique (paper Section 3.2)
    stores the -253 flag value into every longword of an invalid line.

    Quadword integers are OCaml ints carrying the sign-extended 64-bit
    value (values outside [-2^62, 2^62) wrap; simulated programs keep
    integer data well inside).  Floating-point data takes the exact
    [Int64] path. *)

type t

val create : unit -> t
val page_bytes : int

val allocated_bytes : t -> int
(** Bytes of backing store materialized so far. *)

(** {1 Longwords} *)

val read_long_u : t -> int -> int
(** Raw 32-bit pattern in [0, 2^32).  The address must be 4-aligned. *)

val write_long_u : t -> int -> int -> unit

val read_long : t -> int -> int
(** Sign-extended longword, as the [ldl] instruction sees it. *)

val sext32 : int -> int

(** {1 Bytes} *)

val read_byte : t -> int -> int
val write_byte : t -> int -> int -> unit

(** {1 Quadwords} *)

val read_quad : t -> int -> int
(** Sign-extended quadword (see module comment for range).  8-aligned. *)

val write_quad : t -> int -> int -> unit

val read_quad_unaligned : t -> int -> int
(** [ldq_u] semantics: the low three address bits are ignored. *)

val read_quad_bits : t -> int -> int64
(** Exact 64-bit pattern, used for floating-point data. *)

val write_quad_bits : t -> int -> int64 -> unit
val read_float : t -> int -> float
val write_float : t -> int -> float -> unit

(** {1 Bulk operations} *)

val copy_pages : src:t -> dst:t -> addr:int -> len:int -> unit
(** Copy every materialized page of [src] overlapping the range into
    [dst]; used for process-creation-time copying of the static area. *)

val blit_out : t -> addr:int -> nlongs:int -> int array
val blit_in : t -> addr:int -> int array -> unit
