(* Sparse simulated memory.

   Memory is a table of 8 KB pages, each an array of 32-bit longword
   patterns (stored as non-negative OCaml ints in [0, 2^32)).  The
   longword is the unit Shasta cares about: the flag value of the load
   miss check (Section 3.2 of the paper) is written into every longword
   of an invalid line, so longword granularity must be primitive.

   Quadword integer values are represented as OCaml ints carrying the
   sign-extended 64-bit value; values outside [-2^62, 2^62) are not
   representable and wrap — simulated programs keep integer data well
   inside that range (addresses are < 2^40).  Floating-point data takes
   the Int64 path and is exact. *)

type t = {
  pages : (int, int array) Hashtbl.t;
  mutable allocated_pages : int;
}

let page_bytes = 8192
let page_longs = page_bytes / 4

let create () = { pages = Hashtbl.create 1024; allocated_pages = 0 }

let page t addr =
  let pno = addr / page_bytes in
  match Hashtbl.find_opt t.pages pno with
  | Some p -> p
  | None ->
    let p = Array.make page_longs 0 in
    Hashtbl.add t.pages pno p;
    t.allocated_pages <- t.allocated_pages + 1;
    p

let allocated_bytes t = t.allocated_pages * page_bytes

let check_align addr n what =
  if addr land (n - 1) <> 0 then
    invalid_arg
      (Printf.sprintf "Memory: unaligned %s access at 0x%x" what addr)

(* Raw longword pattern in [0, 2^32). *)
let read_long_u t addr =
  check_align addr 4 "longword";
  (page t addr).(addr mod page_bytes / 4)

let write_long_u t addr v =
  check_align addr 4 "longword";
  (page t addr).(addr mod page_bytes / 4) <- v land 0xFFFFFFFF

(* Sign-extended longword, as the ldl instruction sees it. *)
let sext32 v = if v land 0x80000000 <> 0 then v - 0x1_0000_0000 else v
let read_long t addr = sext32 (read_long_u t addr)

let read_byte t addr =
  let lw = read_long_u t (addr land lnot 3) in
  (lw lsr (8 * (addr land 3))) land 0xFF

let write_byte t addr v =
  let base = addr land lnot 3 in
  let shift = 8 * (addr land 3) in
  let lw = read_long_u t base in
  let lw = lw land lnot (0xFF lsl shift) lor ((v land 0xFF) lsl shift) in
  write_long_u t base lw

(* Quadword as a sign-extended OCaml int (see module comment). *)
let read_quad t addr =
  check_align addr 8 "quadword";
  let lo = read_long_u t addr and hi = read_long_u t (addr + 4) in
  (sext32 hi * 0x1_0000_0000) + lo

let write_quad t addr v =
  check_align addr 8 "quadword";
  write_long_u t addr (v land 0xFFFFFFFF);
  write_long_u t (addr + 4) ((v asr 32) land 0xFFFFFFFF)

(* Exact 64-bit pattern access, used for floating-point data. *)
let read_quad_bits t addr =
  check_align addr 8 "quadword";
  let lo = Int64.of_int (read_long_u t addr) in
  let hi = Int64.of_int (read_long_u t (addr + 4)) in
  Int64.logor (Int64.shift_left hi 32) lo

let write_quad_bits t addr bits =
  check_align addr 8 "quadword";
  write_long_u t addr Int64.(to_int (logand bits 0xFFFFFFFFL));
  write_long_u t (addr + 4)
    Int64.(to_int (logand (shift_right_logical bits 32) 0xFFFFFFFFL))

let read_float t addr = Int64.float_of_bits (read_quad_bits t addr)
let write_float t addr v = write_quad_bits t addr (Int64.bits_of_float v)

(* Aligned quadword load used by the check code (ldq_u ignores the low
   three address bits, as on the Alpha). *)
let read_quad_unaligned t addr = read_quad t (addr land lnot 7)

(* Copy every allocated page of [src] overlapping [addr, addr+len) into
   [dst] (page-aligned range).  Used for process-creation-time copying
   of the static data area. *)
let copy_pages ~src ~dst ~addr ~len =
  let to_copy =
    Hashtbl.fold
      (fun pno pg acc ->
        let pstart = pno * page_bytes in
        if pstart >= addr && pstart < addr + len then (pstart, pg) :: acc
        else acc)
      src.pages []
  in
  List.iter
    (fun (pstart, pg) -> Array.blit pg 0 (page dst pstart) 0 page_longs)
    to_copy

(* Bulk copy of [nlongs] longwords starting at [addr] (both 4-aligned). *)
let blit_out t ~addr ~nlongs =
  Array.init nlongs (fun i -> read_long_u t (addr + (4 * i)))

let blit_in t ~addr longs =
  Array.iteri (fun i v -> write_long_u t (addr + (4 * i)) v) longs
