(* LU across processor counts: the library as a user would drive it for
   a scaling study.  Prints checksum (verified against the sequential
   run), speedups, and the communication behind them. *)

open Shasta_runtime

let () =
  let prog = Shasta_apps.Lu.program ~n:48 ~bs:8 () in
  let expected =
    (Api.run { (Api.default_spec prog) with opts = None }).phase.output
  in
  Printf.printf "sequential checksum: %s" expected;
  let base = ref 0 in
  List.iter
    (fun nprocs ->
      let r = Api.run { (Api.default_spec prog) with nprocs } in
      if r.phase.output <> expected then failwith "parallel result differs!";
      if nprocs = 1 then base := r.phase.wall_cycles;
      let misses =
        Array.fold_left
          (fun a (c : Node.counters) ->
            a + c.read_misses + c.write_misses + c.upgrade_misses)
          0 r.phase.counters
      in
      Printf.printf
        "P=%d: %9d cycles  speedup %.2f  %5d msgs  %5d misses  (result ok)\n"
        nprocs r.phase.wall_cycles
        (float_of_int !base /. float_of_int r.phase.wall_cycles)
        r.phase.msgs_sent misses)
    [ 1; 2; 4; 8 ]
