(* Tuning coherence granularity per data structure (Section 4.2).

   The same two workloads run under different block-size policies:
   - false sharing: per-processor counters spaced one line apart — small
     blocks isolate the writers;
   - streaming: a producer fills a buffer every consumer then reads —
     large blocks amortize miss overhead.

   "Since the choice of the block size does not affect the correctness
   of the program, the programmer can freely experiment" — exactly what
   this example does, including the special version of malloc that
   requests an explicit block size. *)

open Shasta_runtime

let run ?fixed_block prog =
  let r = Api.run { (Api.default_spec prog) with nprocs = 8; fixed_block } in
  (r.phase.wall_cycles, r.phase.msgs_sent)

let () =
  Printf.printf "false sharing (8 writers, 64B-spaced counters):\n";
  List.iter
    (fun (name, fb) ->
      let c, m =
        run ?fixed_block:fb (Shasta_apps.Micro.false_sharing ~iters:300 ())
      in
      Printf.printf "  %-30s %9d cycles  %6d msgs\n" name c m)
    [ ("64B blocks (per-line)", Some 64);
      ("512B blocks", Some 512);
      ("heuristic (one 1KB object!)", None) ];
  Printf.printf
    "  (the size heuristic makes the whole small counter array one\n\
    \   block - the classic false-sharing trap the programmer fixes by\n\
    \   asking for line-sized blocks, as the paper describes)\n";
  Printf.printf "\nstreaming (1 producer, 7 consumers, 32KB buffer):\n";
  List.iter
    (fun (name, prog) ->
      let c, m = run prog in
      Printf.printf "  %-30s %9d cycles  %6d msgs\n" name c m)
    [ ("64B blocks (heuristic)", Shasta_apps.Micro.stream ~nwords:4096 ());
      ( "2KB blocks (special malloc)",
        Shasta_apps.Micro.stream ~nwords:4096 ~block:2048 () ) ];
  Printf.printf
    "\nNo single block size wins both: that is the paper's case for\n\
     multiple coherence granularities within one application.\n"
