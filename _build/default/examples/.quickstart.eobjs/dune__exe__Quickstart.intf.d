examples/quickstart.mli:
