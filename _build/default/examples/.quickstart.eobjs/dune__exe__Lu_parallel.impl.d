examples/lu_parallel.ml: Api Array List Node Printf Shasta_apps Shasta_runtime
