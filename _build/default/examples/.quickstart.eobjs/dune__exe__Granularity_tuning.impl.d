examples/granularity_tuning.ml: Api List Printf Shasta_apps Shasta_runtime
