examples/granularity_tuning.mli:
