examples/protocol_trace.ml: Api Printf Shasta_minic Shasta_runtime
