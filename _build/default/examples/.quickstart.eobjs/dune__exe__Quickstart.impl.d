examples/quickstart.ml: Array Printf Shasta Shasta_minic Shasta_runtime String
