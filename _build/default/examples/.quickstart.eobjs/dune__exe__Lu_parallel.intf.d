examples/lu_parallel.mli:
