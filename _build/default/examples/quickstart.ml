(* Quickstart: write a small parallel program, compile it, let the
   Shasta compiler insert the miss checks, and run it on a simulated
   cluster.

   The program sums an array: the initializer (run on node 0, like the
   sequential start of a SPLASH-2 application) fills a shared array;
   each processor then sums its contiguous slice into a per-processor
   cell of a shared result array; processor 0 reduces the cells after a
   barrier.  `dune exec examples/quickstart.exe` prints the result and
   the run statistics. *)

open Shasta_minic.Builder

let n = 4096

let program =
  prog
    ~globals:[ ("data", I); ("partial", I) ]
    [ proc "appinit"
        [ gset "data" (Gmalloc (i (8 * n)));
          gset "partial" (Gmalloc_b (i (8 * 16), i 64));
          for_ "k" (i 0) (i n) [ sti (g "data") (v "k") (v "k" %% i 100) ]
        ];
      proc "work"
        [ let_i "chunk" (i n /% Nprocs);
          let_i "lo" (v "chunk" *% Pid);
          let_i "hi" (v "lo" +% v "chunk");
          let_i "sum" (i 0);
          for_ "k" (v "lo") (v "hi")
            [ set "sum" (v "sum" +% ldi (g "data") (v "k")) ];
          sti (g "partial") Pid (v "sum");
          barrier;
          when_ (Pid ==% i 0)
            [ let_i "total" (i 0);
              for_ "p" (i 0) Nprocs
                [ set "total" (v "total" +% ldi (g "partial") (v "p")) ];
              print_int (v "total")
            ]
        ]
    ]

let expected =
  let s = ref 0 in
  for k = 0 to n - 1 do
    s := !s + (k mod 100)
  done;
  !s

let () =
  let nprocs = 4 in
  let spec =
    { (Shasta_runtime.Api.default_spec program) with
      nprocs;
      opts = Some Shasta.Opts.full }
  in
  let r = Shasta_runtime.Api.run spec in
  Printf.printf "expected total : %d\n" expected;
  Printf.printf "program output : %s" r.phase.output;
  Printf.printf "parallel cycles: %d on %d processors\n" r.phase.wall_cycles
    nprocs;
  (match r.inst_stats with
   | Some s ->
     Printf.printf "instrumented   : %d/%d loads, %d/%d stores, %d batches\n"
       s.loads_instrumented s.loads_total s.stores_instrumented s.stores_total
       s.batches
   | None -> ());
  Array.iteri
    (fun i (c : Shasta_runtime.Node.counters) ->
      Printf.printf
        "  node %d: %d insns, %d read / %d write / %d upgrade misses, %d polls\n"
        i c.insns c.read_misses c.write_misses c.upgrade_misses c.polls)
    r.phase.counters;
  if String.trim r.phase.output = string_of_int expected then
    print_endline "OK: parallel result matches sequential expectation"
  else begin
    print_endline "MISMATCH";
    exit 1
  end
