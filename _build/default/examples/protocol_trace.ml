(* A guided protocol trace: two processors exchange one block, printing
   every message.  Shows the paper's protocol economics directly: a
   dirty read is served by the owner without updating the home, an
   upgrade carries no data, invalidation acks go straight to the
   requester. *)

open Shasta_minic.Builder
open Shasta_runtime

let program =
  prog
    ~globals:[ ("x", I) ]
    [ proc "appinit" [ gset "x" (Gmalloc_b (i 64, i 64)) ];
      proc "work"
        [ (* 1: processor 1 writes the block (read-exclusive miss) *)
          when_ (Pid ==% i 1) [ sti (g "x") (i 0) (i 111) ];
          barrier;
          (* 2: processor 0 reads it (forwarded to the dirty owner) *)
          let_i "a" (ldi (g "x") (i 0));
          barrier;
          (* 3: processor 1 writes again (upgrade, no data transfer) *)
          when_ (Pid ==% i 1) [ sti (g "x") (i 0) (i 222) ];
          barrier;
          when_ (Pid ==% i 0) [ print_int (v "a" +% ldi (g "x") (i 0)) ]
        ]
    ]

let () =
  print_endline "protocol messages (cycle, src -> dst, kind @block):";
  let spec =
    { (Api.default_spec program) with
      nprocs = 2;
      trace = Some (fun s -> print_endline ("  " ^ s)) }
  in
  let r = Api.run spec in
  Printf.printf "program output (111 + 222): %s" r.phase.output;
  print_endline
    "Things to observe above:\n\
     - the first write: read_req->readex path with a data reply;\n\
     - the read: home forwards to the dirty owner, who answers the\n\
       requester directly (dirty sharing - no message back to home);\n\
     - the second write: upgrade_req/upgrade_ack with no block payload;\n\
     - invalidation acks travel straight to the requester."
