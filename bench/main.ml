(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Section 5), plus the ablations DESIGN.md calls out.

   Usage: dune exec bench/main.exe [-- --quick] [--json-out FILE]
            [--json-no-host] [--progress N] [section ...]
   Sections: figures table1 table2 table3 parallel granularity polling
             excltable consistency messages faults throughput kv crash
             scaling micro (default: all).

   Absolute numbers differ from the paper (the substrate is a simulator,
   not a 275 MHz Alpha cluster); the shapes — which technique helps
   which application, who wins and by roughly what factor — are the
   reproduction target.  EXPERIMENTS.md records paper-vs-measured.

   --json-out appends every emitting section's versioned BENCH records
   (one JSON line each, the Benchjson schema) to FILE for the perf
   trajectory; --json-no-host zeroes the machine-dependent host fields
   so the file can serve as a checked-in baseline; bin/bench_gate.exe
   compares two such files.  Oracle/consistency failures make the
   harness exit non-zero. *)

open Shasta
open Shasta_minic.Builder
open Shasta_runtime
module Table = Shasta_stats.Table
module Obs = Shasta_obs.Obs
module Metrics = Shasta_obs.Metrics
module Benchjson = Shasta_obs.Benchjson
module Perf = Shasta_obs.Perf

let quick = ref false
let json_out : string option ref = ref None
let json_no_host = ref false
let progress : int option ref = ref None

let app_size () =
  if !quick then Shasta_apps.Apps.Test else Shasta_apps.Apps.Small

(* ------------------------------------------------------------------ *)
(* helpers                                                              *)
(* ------------------------------------------------------------------ *)

(* Oracle/consistency checks: a failed check is reported immediately
   and makes the harness exit non-zero, so CI cannot silently pass a
   wrong bench run. *)
let failures = ref 0

let check ~what cond =
  if not cond then begin
    incr failures;
    Printf.eprintf "BENCH FAILURE: %s\n%!" what
  end

(* BENCH records accumulated by the emitting sections, written as JSON
   lines at exit when --json-out is set. *)
let bench_records : Benchjson.t list ref = ref []

let emit_bench r = bench_records := r :: !bench_records

let write_bench path =
  let recs = List.rev !bench_records in
  let recs =
    if !json_no_host then List.map Benchjson.strip_host recs else recs
  in
  let oc = open_out path in
  List.iter
    (fun r ->
      output_string oc (Benchjson.emit r);
      output_char oc '\n')
    recs;
  close_out oc;
  Printf.printf "wrote %d BENCH record(s) to %s\n" (List.length recs) path

let run_cycles ?(opts = Some Opts.full) ?(nprocs = 1)
    ?(pipe = Shasta_machine.Pipeline.alpha_21064a)
    ?(net = Shasta_network.Network.memory_channel) ?net_faults ?node_faults
    ?fixed_block ?obs prog =
  let spec =
    { (Api.default_spec prog) with
      opts; nprocs; pipe; net; net_faults; node_faults; fixed_block; obs;
      progress = !progress }
  in
  let r = Api.run spec in
  (r.phase.wall_cycles, r)

(* Like [run_cycles] but under host-side measurement, for the sections
   that emit BENCH records. *)
let run_measured ?(opts = Some Opts.full) ?(nprocs = 1) ?node_faults
    ?fixed_block ?obs prog =
  let spec =
    { (Api.default_spec prog) with
      opts; nprocs; node_faults; fixed_block; obs; progress = !progress }
  in
  let r, perf = Api.run_measured spec in
  (spec, r, perf)

(* Drive the phases by hand so the cache model's counters are visible. *)
let run_with_caches ~opts prog =
  let spec = { (Api.default_spec prog) with opts = Some opts; nprocs = 1 } in
  let state, _, _ = Api.prepare spec in
  let ph = Cluster.run_app state in
  let dmisses =
    Array.fold_left
      (fun a (n : Node.t) -> a + n.caches.l1d.misses)
      0 state.nodes
  in
  (ph, dmisses)

let fresh_gen () =
  let n = ref 0 in
  fun () ->
    incr n;
    Printf.sprintf "L%d" !n

(* ------------------------------------------------------------------ *)
(* figures: the generated check code next to the paper's listings       *)
(* ------------------------------------------------------------------ *)

let print_code title (w : Check.wrapped) ~around =
  Printf.printf "%s\n" title;
  List.iter (fun i -> Printf.printf "  %s\n" (Shasta_isa.Asm.to_string i)) w.pre;
  (match around with
   | Some s -> Printf.printf "  %s   <-- original access\n" s
   | None -> ());
  List.iter (fun i -> Printf.printf "  %s\n" (Shasta_isa.Asm.to_string i)) w.post;
  print_newline ()

let section_figures () =
  Table.section "Figures 2/4/5/6: generated miss-check code";
  print_code "Figure 2 - basic store miss check (state table):"
    (Check.store_check Opts.basic ~fresh:(fresh_gen ()) ~free:[ 1; 2 ] ~base:3
       ~disp:16 ~ssize:Shasta_isa.Insn.Quad)
    ~around:(Some "\tstq r9, 16(r3)");
  print_code
    "Figure 4 - rescheduled store check (shift delay slot filled,\n\
    \           first three instructions hoisted above the store):"
    (Check.store_check Opts.with_schedule ~fresh:(fresh_gen ()) ~free:[ 1; 2 ]
       ~base:3 ~disp:16 ~ssize:Shasta_isa.Insn.Quad)
    ~around:(Some "\tstq r9, 16(r3)");
  print_code "Figure 5(a) - flag-technique integer load check:"
    (Check.load_check Opts.with_flag ~fresh:(fresh_gen ()) ~free:[ 1 ] ~base:2
       ~disp:8
       ~refill:(Shasta_isa.Insn.Rint (4, Shasta_isa.Insn.Quad)))
    ~around:(Some "\tldq r4, 8(r2)");
  print_code
    "Figure 5(b) - flag-technique FP load check (extra integer load):"
    (Check.load_check Opts.with_flag ~fresh:(fresh_gen ()) ~free:[ 1 ] ~base:2
       ~disp:8 ~refill:(Shasta_isa.Insn.Rflt 5))
    ~around:(Some "\tldt f5, 8(r2)");
  print_code "Section 3.3 - exclusive-table store check:"
    (Check.store_check Opts.with_excl ~fresh:(fresh_gen ()) ~free:[ 1; 2; 3 ]
       ~base:4 ~disp:0 ~ssize:Shasta_isa.Insn.Quad)
    ~around:(Some "\tstq r9, 0(r4)");
  print_code "Figure 6 - batched load check (two endpoints, interleaved):"
    (Check.batch_check Opts.with_batch ~fresh:(fresh_gen ())
       ~free:[ 1; 2; 3; 4 ]
       { Shasta_isa.Insn.ranges =
           [ { rbase = 5;
               accesses =
                 [ { disp = 0; asize = Quad; is_store = false };
                   { disp = 40; asize = Quad; is_store = false } ] }
           ] })
    ~around:None

(* ------------------------------------------------------------------ *)
(* table 1: static instruction and measured cycle costs per check       *)
(* ------------------------------------------------------------------ *)

(* A microbenchmark with checked accesses of one kind per iteration; the
   per-check cycle cost is the cycle delta against the uninstrumented
   binary divided by the dynamic check count. *)
let t1_prog body =
  prog
    ~globals:[ ("a", I) ]
    [ proc "appinit" [ gset "a" (Gmalloc (i 8192)) ];
      proc "work"
        ([ let_i "s" (i 0); let_f "x" (f 0.0); let_i "p" (g "a") ]
         @ [ for_ "k" (i 0) (i 500) (body ()) ]
         @ [ print_int (v "s"); print_flt (v "x") ])
    ]

(* one access per distinct base register: not batchable *)
let t1_iload () =
  [ set "s" (v "s" +% ldi (g "a") (v "k" &% i 63));
    set "s" (v "s" +% ldi (g "a") ((v "k" +% i 64) &% i 127)) ]

let t1_fload () =
  [ set "x" (v "x" +. ldf (g "a") (v "k" &% i 63));
    set "x" (v "x" +. ldf (g "a") ((v "k" +% i 64) &% i 127)) ]

let t1_istore () =
  [ sti (g "a") (v "k" &% i 63) (v "k");
    sti (g "a") ((v "k" +% i 64) &% i 127) (v "k") ]

let t1_batch_load () =
  [ set "s"
      (v "s" +% fld_i (v "p") 0 +% fld_i (v "p") 8 +% fld_i (v "p") 16
       +% fld_i (v "p") 24)
  ]

let t1_batch_store () =
  [ set_fld_i (v "p") 0 (v "k");
    set_fld_i (v "p") 8 (v "k");
    set_fld_i (v "p") 16 (v "k");
    set_fld_i (v "p") 24 (v "k")
  ]

let static_count (w : Check.wrapped) =
  List.length
    (List.filter
       (fun i ->
         Shasta_isa.Insn.bytes i > 0
         &&
         match i with
         | Shasta_isa.Insn.Call_load_miss _ | Call_store_miss _
         | Call_batch_miss _ ->
           false
         | _ -> true)
       (w.pre @ w.post))

let section_table1 () =
  Table.section "Table 1: instruction and cycle counts for miss checks";
  let insns_load =
    static_count
      (Check.load_check Opts.full ~fresh:(fresh_gen ()) ~free:[ 1 ] ~base:2
         ~disp:8 ~refill:(Rint (4, Quad)))
  in
  let insns_fload =
    static_count
      (Check.load_check Opts.full ~fresh:(fresh_gen ()) ~free:[ 1 ] ~base:2
         ~disp:8 ~refill:(Rflt 5))
  in
  let insns_store =
    static_count
      (Check.store_check Opts.full ~fresh:(fresh_gen ()) ~free:[ 1; 2; 3 ]
         ~base:2 ~disp:8 ~ssize:Quad)
  in
  let insns_batch_ld =
    static_count
      (Check.batch_check Opts.full ~fresh:(fresh_gen ()) ~free:[ 1; 2; 3; 4 ]
         { ranges =
             [ { rbase = 5;
                 accesses =
                   [ { disp = 0; asize = Quad; is_store = false };
                     { disp = 24; asize = Quad; is_store = false } ] }
             ] })
  in
  let insns_batch_st =
    static_count
      (Check.batch_check Opts.full ~fresh:(fresh_gen ()) ~free:[ 1; 2; 3; 4 ]
         { ranges =
             [ { rbase = 5;
                 accesses =
                   [ { disp = 0; asize = Quad; is_store = true };
                     { disp = 24; asize = Quad; is_store = true } ] }
             ] })
  in
  let measure pipe body checks_per_iter =
    let p = t1_prog body in
    let base, _ = run_cycles ~opts:None ~pipe p in
    let inst, _ = run_cycles ~opts:(Some Opts.with_loop_poll) ~pipe p in
    Stdlib.( /. ) (float_of_int (inst - base)) (Stdlib.( *. ) 500.0 checks_per_iter)
  in
  let t =
    Table.create [ "check"; "insns"; "cycles 21064A"; "cycles 21164" ]
  in
  let row name insns body per_iter =
    Table.add_row t
      [ name; string_of_int insns;
        Table.f1 (measure Shasta_machine.Pipeline.alpha_21064a body per_iter);
        Table.f1 (measure Shasta_machine.Pipeline.alpha_21164 body per_iter) ]
  in
  row "integer load (flag)" insns_load t1_iload 2.0;
  row "FP load (flag)" insns_fload t1_fload 2.0;
  row "store (excl table)" insns_store t1_istore 2.0;
  row "batch of 4 loads" insns_batch_ld t1_batch_load 1.0;
  row "batch of 4 stores" insns_batch_st t1_batch_store 1.0;
  let c64 = Shasta_machine.Pipeline.alpha_21064a
  and c164 = Shasta_machine.Pipeline.alpha_21164 in
  Table.add_row t
    [ "(ref) load latency"; "1"; string_of_int c64.load_latency;
      string_of_int c164.load_latency ];
  Table.add_row t
    [ "(ref) integer op"; "1"; string_of_int c64.int_latency;
      string_of_int c164.int_latency ];
  Table.add_row t
    [ "(ref) FP op"; "1"; string_of_int c64.fp_latency;
      string_of_int c164.fp_latency ];
  Table.print t;
  print_string
    "Cycle figures are measured dynamically (delta vs the original\n\
     binary / dynamic checks); batch rows are per batch check covering 4\n\
     accesses.  Expected shape: store checks several times a flag load\n\
     check; a batch check well under the cost of 4 individual checks;\n\
     21164 cheaper than 21064A.\n"

(* ------------------------------------------------------------------ *)
(* table 2: single-processor checking overhead per application          *)
(* ------------------------------------------------------------------ *)

let section_table2 () =
  Table.section
    "Table 2: run-time overhead factor of miss checks (1 processor)";
  let cols = Opts.table2_columns in
  let t = Table.create ("application" :: List.map fst cols) in
  List.iter
    (fun (e : Shasta_apps.Apps.entry) ->
      let p = e.make (app_size ()) in
      let base, _ = run_cycles ~opts:None p in
      let row =
        List.map
          (fun (_, opts) ->
            let c, _ = run_cycles ~opts:(Some opts) p in
            Table.f2 (Table.ratio c base))
          cols
      in
      Table.add_row t (e.name :: row))
    Shasta_apps.Apps.all;
  Table.print t;
  print_string
    "Columns accumulate the paper's techniques left to right: basic\n\
     checks, +instruction scheduling, +flag loads, +exclusive table,\n\
     +batching (the bold column of the paper), then polling at function\n\
     entries / loop backedges, and finally dropping the range check.\n"

(* ------------------------------------------------------------------ *)
(* table 3: frequency of instrumented accesses                          *)
(* ------------------------------------------------------------------ *)

let section_table3 () =
  Table.section "Table 3: frequency of instrumented accesses";
  let t =
    Table.create
      [ "application"; "static loads"; "static stores"; "dyn shared loads";
        "dyn shared stores"; "batches" ]
  in
  List.iter
    (fun (e : Shasta_apps.Apps.entry) ->
      let p = e.make (app_size ()) in
      let _, r = run_cycles ~opts:(Some Opts.full) p in
      let s = Option.get r.inst_stats in
      let c = r.phase.counters.(0) in
      Table.add_row t
        [ e.name;
          Printf.sprintf "%d/%d (%s)" s.loads_instrumented s.loads_total
            (Table.pct (Table.ratio s.loads_instrumented s.loads_total));
          Printf.sprintf "%d/%d (%s)" s.stores_instrumented s.stores_total
            (Table.pct (Table.ratio s.stores_instrumented s.stores_total));
          Table.pct (Table.ratio c.dyn_loads_shared c.dyn_loads);
          Table.pct (Table.ratio c.dyn_stores_shared c.dyn_stores);
          string_of_int s.batches ])
    Shasta_apps.Apps.all;
  Table.print t;
  print_string
    "Static columns: accesses the rewriter instruments (not provably\n\
     SP/GP-derived).  Dynamic columns: executed loads/stores whose\n\
     target is in the shared range; the gap is pointer-reached private\n\
     data, which the inline range check filters at run time.\n"

(* ------------------------------------------------------------------ *)
(* parallel performance                                                 *)
(* ------------------------------------------------------------------ *)

let section_parallel () =
  Table.section "Section 5.4: parallel speedups (Memory Channel, full opts)";
  (* larger problems: the paper's parallel runs are seconds of real
     computation, so communication must not dominate trivially *)
  let psize () =
    if !quick then Shasta_apps.Apps.Test else Shasta_apps.Apps.Large
  in
  let procs = if !quick then [ 1; 2; 4 ] else [ 1; 2; 4; 8 ] in
  let t =
    Table.create
      (("application" :: List.map (fun p -> Printf.sprintf "P=%d" p) procs)
       @ [ "msgs@Pmax"; "misses@Pmax" ])
  in
  List.iter
    (fun (e : Shasta_apps.Apps.entry) ->
      let p = e.make (psize ()) in
      let c1, _ = run_cycles ~opts:(Some Opts.full) ~nprocs:1 p in
      let cells, last =
        List.fold_left
          (fun (acc, _) np ->
            let c, r = run_cycles ~opts:(Some Opts.full) ~nprocs:np p in
            (acc @ [ Table.f2 (Table.ratio c1 c) ], Some r))
          ([], None) procs
      in
      let last = Option.get last in
      (* message and miss totals come from the phase's metrics
         registry: the parallel-phase delta of the typed event stream *)
      let total = Metrics.counter_total last.phase.metrics in
      let misses =
        total Obs.c_miss_read + total Obs.c_miss_write
        + total Obs.c_miss_upgrade
      in
      Table.add_row t
        ((e.name :: cells)
         @ [ string_of_int (total Obs.c_msg_sent); string_of_int misses ]))
    Shasta_apps.Apps.all;
  Table.print t;
  print_string
    "Speedup over the instrumented 1-processor run.  Modest speedups\n\
     are the expected shape for a software DSM on a workstation cluster\n\
     (matching the spirit of the paper's preliminary parallel results):\n\
     compute-dense applications scale best; fine-grain communicators\n\
     are bounded by message latency and handling.\n"

(* ------------------------------------------------------------------ *)
(* granularity ablation                                                 *)
(* ------------------------------------------------------------------ *)

let section_granularity () =
  Table.section
    "Section 4.2: multiple coherence granularities (block-size ablation)";
  let np = if !quick then 2 else 8 in
  let t =
    Table.create
      [ "workload"; "64B blocks"; "512B blocks"; "2048B blocks"; "variable" ]
  in
  let run_fixed prog fb =
    let c, _ =
      run_cycles ~opts:(Some Opts.full) ~nprocs:np ?fixed_block:fb prog
    in
    c
  in
  let row name prog =
    let v = run_fixed prog None in
    Table.add_row t
      [ name;
        Table.f2 (Table.ratio (run_fixed prog (Some 64)) v);
        Table.f2 (Table.ratio (run_fixed prog (Some 512)) v);
        Table.f2 (Table.ratio (run_fixed prog (Some 2048)) v);
        "1.00" ]
  in
  row "false sharing"
    (Shasta_apps.Micro.false_sharing ~iters:(if !quick then 50 else 400) ());
  row "streaming"
    (Shasta_apps.Micro.stream ~nwords:(if !quick then 512 else 4096) ());
  (* the paper's special version of malloc: the programmer requests a
     2 KB block size for the streamed buffer, overriding the heuristic *)
  let tuned =
    run_fixed
      (Shasta_apps.Micro.stream ~nwords:(if !quick then 512 else 4096)
         ~block:2048 ())
      None
  and untuned =
    run_fixed
      (Shasta_apps.Micro.stream ~nwords:(if !quick then 512 else 4096) ())
      None
  in
  Table.add_row t
    [ "streaming (tuned malloc)"; "-"; "-"; "-";
      Table.f2 (Table.ratio tuned untuned) ];
  row "water (records)"
    (Shasta_apps.Water.program ~nmol:(if !quick then 24 else 64) ~steps:1 ());
  row "lu" (Shasta_apps.Lu.program ~n:(if !quick then 16 else 32) ~bs:8 ());
  Table.print t;
  print_string
    "Cells are run time relative to the variable (per-allocation\n\
     heuristic) granularity; above 1.00 means that fixed size is slower.\n\
     No single fixed size wins everywhere: false sharing wants per-line\n\
     blocks (its small hot array is exactly the case where the\n\
     programmer overrides the size heuristic with the special malloc),\n\
     streaming and blocked LU want large ones, record-sharing Water is\n\
     hurt by anything coarser than its records — the paper's argument\n\
     for multiple granularities within one application.\n"

(* ------------------------------------------------------------------ *)
(* polling ablation                                                     *)
(* ------------------------------------------------------------------ *)

let section_polling () =
  Table.section "Section 2.2: polling placement (parallel run time)";
  let np = if !quick then 2 else 4 in
  let t =
    Table.create
      [ "application"; "fn-entry polls"; "loop polls"; "polls/insn" ]
  in
  List.iter
    (fun name ->
      let e = Shasta_apps.Apps.find name in
      let p = e.make (app_size ()) in
      let cf, _ = run_cycles ~opts:(Some Opts.with_fn_poll) ~nprocs:np p in
      let cl, r = run_cycles ~opts:(Some Opts.with_loop_poll) ~nprocs:np p in
      let polls =
        Array.fold_left
          (fun a (c : Node.counters) -> a + c.polls)
          0 r.phase.counters
      in
      let insns =
        Array.fold_left
          (fun a (c : Node.counters) -> a + c.insns)
          0 r.phase.counters
      in
      Table.add_row t
        [ name; Table.f2 (Table.ratio cf cl); "1.00";
          Table.pct (Table.ratio polls insns) ])
    [ "lu"; "ocean"; "water"; "raytrace" ];
  Table.print t;
  print_string
    "Run time with function-entry polling relative to loop-backedge\n\
     polling.  Loop polling services requests sooner at slightly higher\n\
     inline cost (within a few percent on one processor, per Table 2).\n"

(* ------------------------------------------------------------------ *)
(* exclusive-table ablation (Radix, poor locality)                      *)
(* ------------------------------------------------------------------ *)

let section_excltable () =
  Table.section
    "Section 3.3: exclusive table vs state table under poor locality";
  let t =
    Table.create [ "workload"; "check metadata"; "cycles"; "L1D misses" ]
  in
  (* the effect needs the check metadata to outgrow the caches: at full
     size the keys span 4 MB, so the state table (64 KB) thrashes while
     the exclusive table (8 KB) stays resident *)
  let p =
    Shasta_apps.Radix.program
      ~nkeys:(if !quick then 1024 else 1 lsl 18)
      ~max_bits:20 ()
  in
  let with_state = { Opts.with_flag with batching = false } in
  let with_excl = { Opts.with_excl with batching = false } in
  let base, _ = run_cycles ~opts:None p in
  let ph_s, dm_s = run_with_caches ~opts:with_state p in
  let ph_e, dm_e = run_with_caches ~opts:with_excl p in
  Table.addf t "radix\tstate table (byte/line)\t%d (overhead %s)\t%d"
    ph_s.wall_cycles
    (Table.f2 (Table.ratio ph_s.wall_cycles base))
    dm_s;
  Table.addf t "radix\texclusive table (bit/line)\t%d (overhead %s)\t%d"
    ph_e.wall_cycles
    (Table.f2 (Table.ratio ph_e.wall_cycles base))
    dm_e;
  Table.add_row t
    [ "radix"; "excl/state ratio";
      Table.f2 (Table.ratio ph_e.wall_cycles ph_s.wall_cycles);
      Table.f2 (Table.ratio dm_e dm_s) ];
  Table.print t;
  print_string
    "The exclusive table packs 8 lines of store-check metadata per byte,\n\
     cutting the hardware cache misses the checks add on scattered\n\
     writes — the paper singles out Radix for exactly this effect.\n"

(* ------------------------------------------------------------------ *)
(* consistency-model ablation                                           *)
(* ------------------------------------------------------------------ *)

let section_consistency () =
  Table.section
    "Section 4.1/4.3: release vs sequential consistency (parallel)";
  let np = if !quick then 2 else 4 in
  let t = Table.create [ "application"; "RC cycles"; "SC cycles"; "SC/RC" ] in
  List.iter
    (fun name ->
      let e = Shasta_apps.Apps.find name in
      let p = e.make (app_size ()) in
      let run c =
        Api.run
          { (Api.default_spec p) with nprocs = np; consistency = c }
      in
      let rc_r = run State.Release and sc_r = run State.Sequential in
      (* both models must compute the same answer — a divergence is a
         protocol bug, not a data point *)
      check
        ~what:(Printf.sprintf "consistency: %s RC/SC outputs differ" name)
        (rc_r.Api.phase.output = sc_r.Api.phase.output);
      let rc = rc_r.Api.phase.wall_cycles
      and sc = sc_r.Api.phase.wall_cycles in
      Table.add_row t
        [ name; string_of_int rc; string_of_int sc;
          Table.f2 (Table.ratio sc rc) ])
    [ "lu"; "ocean"; "water"; "radix" ];
  Table.print t;
  print_string
    "Under sequential consistency every store miss stalls until
     ownership and all invalidation acknowledgements arrive, and batch
     handlers wait for exclusive requests too (Section 4.3) — the cost
     the paper's non-stalling stores and relaxed model avoid.
"

(* ------------------------------------------------------------------ *)
(* message economy                                                      *)
(* ------------------------------------------------------------------ *)

let section_messages () =
  Table.section
    "Section 4: message counts per miss (no home confirmations,\n\
     piggybacked acks, upgrades without data)";
  let np = 4 in
  let t =
    Table.create
      [ "workload"; "read misses"; "write misses"; "upgrades"; "msgs";
        "msgs/miss"; "hot site" ]
  in
  List.iter
    (fun (name, p) ->
      (* run with a site profiler attached so a regression in any column
         is attributable to the code location that moved *)
      let obs = Obs.create ~nprocs:np () in
      let prof = Obs.Profile.create ~nprocs:np () in
      Obs.attach_profiler obs prof;
      let spec =
        { (Api.default_spec p) with
          opts = Some Opts.full; nprocs = np; obs = Some obs }
      in
      let r = Api.run spec in
      (* read straight from the observability registry (the parallel
         phase delta) rather than the per-node raw counters *)
      let total = Metrics.counter_total r.phase.metrics in
      let rd = total Obs.c_miss_read in
      let wr = total Obs.c_miss_write in
      let up = total Obs.c_miss_upgrade in
      let msgs = total Obs.c_msg_sent in
      let misses = max 1 (rd + wr + up) in
      let hot =
        match Obs.Profile.sites prof with
        | ((proc, pc), s) :: _ ->
          Printf.sprintf "%s (%d)"
            (Image.site_name r.state.State.image ~proc ~pc)
            (Obs.Profile.site_misses s + s.n_false)
        | [] -> "-"
      in
      Table.addf t "%s\t%d\t%d\t%d\t%d\t%s\t%s" name rd wr up msgs
        (Table.f2 (Table.ratio msgs misses))
        hot)
    [ ("stream", Shasta_apps.Micro.stream ~nwords:1024 ());
      ("migratory", Shasta_apps.Micro.migratory ~rounds:64 ());
      ("false sharing", Shasta_apps.Micro.false_sharing ~iters:100 ());
      ("ocean", Shasta_apps.Ocean.program ~n:34 ~iters:2 ()) ];
  Table.print t;
  print_string
    "A remote read miss costs 2 messages (request + data) when the home\n\
     has the data, 3 when forwarded to a dirty owner; upgrades avoid\n\
     the data transfer; invalidation acks go straight to the requester\n\
     with the expected count piggybacked on the reply.  Synchronization\n\
     messages are included in the totals.\n"

(* ------------------------------------------------------------------ *)
(* fault overhead: the reliable sublayer over an unreliable wire        *)
(* ------------------------------------------------------------------ *)

let section_faults () =
  Table.section
    "Unreliable network: overhead of the reliable-delivery sublayer\n\
     (standard fault matrix: drop 1%, dup 1%, reorder 2%)";
  let np = if !quick then 2 else 4 in
  let faults = Shasta_network.Network.standard in
  let t =
    Table.create
      [ "application"; "clean cycles"; "faulty cycles"; "overhead";
        "retx"; "dup"; "reorder"; "backoff cyc" ]
  in
  List.iter
    (fun (e : Shasta_apps.Apps.entry) ->
      let p = e.make (app_size ()) in
      let clean, clean_r = run_cycles ~opts:(Some Opts.full) ~nprocs:np p in
      let faulty, r =
        run_cycles ~opts:(Some Opts.full) ~nprocs:np ~net_faults:faults p
      in
      (* the reliable sublayer must hide the faults completely: the
         faulty run may only differ in time, never in output.  The sht
         output is a KV report whose latency/timestamp fields (and the
         timing-driven shard handoffs) legally move with the wire, so
         compare its timing-invariant projection — same canonicalization
         as the fault-matrix soak in test_faults.ml. *)
      let canon out =
        if e.name <> "sht" then out
        else
          let module Report = Shasta_workload.Report in
          let r = Report.strip_timing (Report.parse out) in
          Report.render
            { r with
              Report.migrations = 0;
              owned = Array.map (fun _ -> 0) r.Report.owned }
      in
      check
        ~what:
          (Printf.sprintf "faults: %s output differs under faulty wire" e.name)
        (canon clean_r.Api.phase.output = canon r.Api.phase.output);
      let fs = Shasta_network.Network.fault_stats r.state.State.net in
      Table.addf t "%s\t%d\t%d\t%s\t%d\t%d\t%d\t%d" e.name clean faulty
        (Table.f2 (Table.ratio faulty clean))
        fs.Shasta_network.Network.retxs fs.dups fs.reorders fs.backoff_cycles)
    Shasta_apps.Apps.all;
  Table.print t;
  print_string
    "Both runs compute identical results; the only cost of the faulty\n\
     wire is time: retransmission timeouts (exponential backoff) on\n\
     dropped frames, plus resequencing delay on reordered ones.\n\
     Duplicates are discarded at the receiver and cost nothing.\n"

(* ------------------------------------------------------------------ *)
(* perf trajectory: every seed app at P=1/2/4/8, with host metrics      *)
(* ------------------------------------------------------------------ *)

let section_throughput () =
  Table.section
    "Perf trajectory: seed apps at P=1/2/4/8 (full opts)\n\
     simulated cycles per run; host Mcyc/s = simulated cycles retired\n\
     per host second of the timed parallel phase";
  let procs = [ 1; 2; 4; 8 ] in
  let t =
    Table.create
      (("application"
        :: List.map (fun p -> Printf.sprintf "cyc P=%d" p) procs)
       @ [ "Mcyc/s @P=1" ])
  in
  List.iter
    (fun (e : Shasta_apps.Apps.entry) ->
      let p = e.make (app_size ()) in
      let cells, mcyc1 =
        List.fold_left
          (fun (acc, m1) np ->
            let spec, r, perf = run_measured ~nprocs:np p in
            emit_bench (Api.bench_record ~workload:e.name ~perf spec r);
            let m1 =
              if np = 1 then
                Stdlib.( /. )
                  (Perf.cyc_per_s perf ~sim_cycles:r.Api.phase.wall_cycles)
                  1e6
              else m1
            in
            (acc @ [ string_of_int r.Api.phase.wall_cycles ], m1))
          ([], 0.0) procs
      in
      Table.add_row t ((e.name :: cells) @ [ Table.f1 mcyc1 ]))
    Shasta_apps.Apps.all;
  Table.print t;
  print_string
    "The simulated-cycle columns are deterministic (byte-identical\n\
     across runs and machines) and gate on exact equality; the host\n\
     throughput column is what the multicore-engine work (ROADMAP item\n\
     3) is trying to push up, gated within a tolerance.\n"

(* ------------------------------------------------------------------ *)
(* KV service: YCSB-style mixes over the sharded hash table             *)
(* ------------------------------------------------------------------ *)

let section_kv () =
  Table.section
    "KV service: YCSB-style mixes on the sharded hash table\n\
     (Zipfian 0.99 keys; latency percentiles in simulated cycles)";
  let module W = Shasta_workload.Workload in
  let module Report = Shasta_workload.Report in
  let nkeys = if !quick then 256 else 1024 in
  let ops = if !quick then 2_000 else 20_000 in
  let cfg =
    { Shasta_apps.Sht.nbuckets = (if !quick then 128 else 512);
      slots = 8;
      handoff = 8 }
  in
  let procs = if !quick then [ 2; 4 ] else [ 2; 4; 8 ] in
  let t =
    Table.create
      [ "mix"; "procs"; "block"; "cycles"; "ops/Mcyc"; "p50"; "p95"; "p99";
        "handoffs" ]
  in
  List.iter
    (fun mix ->
      let wl = W.spec ~nkeys ~ops ~mix ~quanta:(min nkeys 1024) () in
      let prog = Shasta_apps.Sht.program ~cfg ~wl () in
      List.iter
        (fun np ->
          List.iter
            (fun block ->
              let _, r, perf =
                run_measured ~nprocs:np ~fixed_block:block prog
              in
              let rep = Report.parse r.Api.phase.output in
              check
                ~what:
                  (Printf.sprintf
                     "kv: mix %s P=%d block=%d reported %d error(s)"
                     (W.mix_name mix) np block
                     (rep.Report.errors + rep.Report.verify_errors))
                (rep.Report.errors + rep.Report.verify_errors = 0);
              emit_bench
                (Report.to_bench
                   ~workload:("kv-" ^ W.mix_name mix)
                   ~line:block ~messages:r.Api.phase.msgs_sent
                   ~misses:(Api.phase_misses r.Api.phase) ~perf rep);
              Table.addf t "%s\t%d\t%d\t%d\t%s\t%d\t%d\t%d\t%d"
                (W.mix_name mix) np block
                (Report.run_cycles rep)
                (Table.f2 (Report.ops_per_mcycle rep))
                (Report.percentile rep 50.0) (Report.percentile rep 95.0)
                (Report.percentile rep 99.0) rep.Report.migrations)
            [ 64; 128 ])
        procs)
    [ W.A; W.B; W.C ];
  Table.print t;
  print_string
    "Read-heavy mixes (b, c) scale with read-sharing of hot lines; the\n\
     update share of mix a turns popular buckets into migratory lines\n\
     and shows up directly in the p95/p99 tail.  Doubling the line size\n\
     trades fetch count against false sharing on adjacent buckets.\n"

(* ------------------------------------------------------------------ *)
(* Node crashes: the KV service surviving halt and halt+restart         *)
(* ------------------------------------------------------------------ *)

let section_crash () =
  Table.section
    "Node crash tolerance: KV service (b mix) with a node killed mid-run\n\
     (lease-expiry detection, directory rebuild, lock-lease takeover)";
  let module W = Shasta_workload.Workload in
  let module Report = Shasta_workload.Report in
  let module Obs = Shasta_obs.Obs in
  let nkeys = if !quick then 256 else 1024 in
  let ops = if !quick then 2_000 else 20_000 in
  let cfg =
    { Shasta_apps.Sht.nbuckets = (if !quick then 128 else 512);
      slots = 8;
      handoff = 8 }
  in
  let np = 4 in
  let wl = W.spec ~nkeys ~ops ~mix:W.B ~quanta:(min nkeys 1024) () in
  let prog = Shasta_apps.Sht.program ~cfg ~wl () in
  let clean, _ = run_cycles ~nprocs:np prog in
  let t =
    Table.create
      [ "schedule"; "cycles"; "vs clean"; "ops/Mcyc"; "lost keys";
        "takeovers"; "dir rebuilds" ]
  in
  let row name slug spec_str =
    let nf = Option.get (Nodefaults.of_string spec_str) in
    let obs = Obs.create ~nprocs:np () in
    let _, r, perf = run_measured ~nprocs:np ~node_faults:nf ~obs prog in
    let cycles = r.Api.phase.wall_cycles in
    let rep = Report.parse r.Api.phase.output in
    (* survivors must stay consistent: lost keys are accounted, errors
       are not tolerated *)
    check
      ~what:
        (Printf.sprintf "crash: %s reported %d consistency error(s)" name
           (rep.Report.errors + rep.Report.verify_errors))
      (rep.Report.errors + rep.Report.verify_errors = 0);
    emit_bench
      (Report.to_bench ~workload:slug ~messages:r.Api.phase.msgs_sent
         ~misses:(Api.phase_misses r.Api.phase) ~perf rep);
    let m = Obs.metrics obs in
    let total c = Obs.Metrics.counter_total m c in
    Table.addf t "%s\t%d\t%s\t%s\t%d\t%d\t%d" name cycles
      (Table.f2 (Table.ratio cycles clean))
      (Table.f2 (Report.ops_per_mcycle rep))
      rep.Report.lost
      (total Obs.c_lease_takeover)
      (total Obs.c_dir_rebuild)
  in
  Table.addf t "none\t%d\t%s\t-\t0\t0\t0" clean (Table.f2 1.0);
  let mid = clean / 2 in
  row "crash 1 node" "kv-crash" (Printf.sprintf "crash=2@%d,lease=3000" mid);
  row "crash+recover" "kv-crash-recover"
    (Printf.sprintf "crash=2@%d,recover=2@%d,lease=3000" mid (mid * 3 / 2));
  Table.print t;
  print_string
    "Survivors keep serving their shards: zero consistency errors in\n\
     every run, with the final sweep accounting the dead node's keys as\n\
     lost.  A recovered node rejoins protocol duty (its directory homes\n\
     route normally again) but its program stays dead, so the lost-key\n\
     count is unchanged.\n"

(* ------------------------------------------------------------------ *)
(* scaling past P=8: directory modes, home policies, scalable sync      *)
(* ------------------------------------------------------------------ *)

module Ns = Shasta_protocol.Nodeset

let dir_modes = [ ("full", Ns.Full); ("limited4", Ns.Limited 4);
                  ("coarse4", Ns.Coarse 4) ]

let run_scale ?(sync = false) ?(dmode = Ns.Full)
    ?(policy = State.Round_robin) ?(migrate = false) ?(placement = []) ?obs
    ~nprocs prog =
  let spec =
    { (Api.default_spec prog) with
      opts = Some Opts.full; nprocs; obs; progress = !progress;
      dir_mode = dmode; home_policy = policy; placement;
      scalable_sync = sync; migrate }
  in
  let r, perf = Api.run_measured spec in
  (spec, r, perf)

(* Count the synchronization messages of a run (lock, barrier and flag
   traffic) straight off the typed event stream.  Besides the total we
   track the per-destination fan-in: centralized sync funnels every
   arrival and release through one home node, and that hot-spot — not
   the edge count, which a combining tree leaves unchanged — is what
   the scalable primitives exist to flatten. *)
let sync_counting_obs ~nprocs =
  let sync_kinds =
    [ "lock_req"; "lock_grant"; "unlock"; "barrier_arrive";
      "barrier_release"; "flag_set"; "flag_wait"; "flag_wake" ]
  in
  let count = ref 0 in
  let per_dst = Array.make nprocs 0 in
  let obs = Obs.create ~nprocs () in
  Obs.attach obs
    { Shasta_obs.Sink.on_record =
        (fun r ->
          match r.Shasta_obs.Event.ev with
          | Shasta_obs.Event.Msg_send { kind; dst; _ }
            when List.mem kind sync_kinds ->
            incr count;
            per_dst.(dst) <- per_dst.(dst) + 1
          | _ -> ());
      flush = (fun () -> ()) };
  let hotspot () = Array.fold_left max 0 per_dst in
  (obs, count, hotspot)

let section_scaling () =
  Table.section
    "Scaling past P=8: directory organizations, home policies and\n\
     scalable synchronization (LU sweep, KV service, sync traffic)";
  (* 1. the P=1..64 sweep per directory organization.  The full map
     stops at its 61-node capacity; limited pointers and the coarse
     vector carry the same program to 64.  All modes must compute the
     same answer. *)
  let sweep_procs = [ 1; 2; 4; 8; 16; 32; 64 ] in
  let lu =
    if !quick then Shasta_apps.Lu.program ~n:16 ~bs:4 ()
    else Shasta_apps.Lu.program ~n:32 ~bs:8 ()
  in
  let t =
    Table.create
      ("lu / dir mode"
       :: List.map (fun p -> Printf.sprintf "cyc P=%d" p) sweep_procs)
  in
  let reference = Hashtbl.create 8 in (* nprocs -> full-map output *)
  List.iter
    (fun (mname, dmode) ->
      let cells =
        List.map
          (fun np ->
            match Ns.validate dmode ~nprocs:np with
            | Error _ -> "-" (* beyond this mode's capacity *)
            | Ok () ->
              let spec, r, perf = run_scale ~dmode ~nprocs:np lu in
              emit_bench
                (Api.bench_record ~workload:("lu-scale-" ^ mname) ~perf spec
                   r);
              (match Hashtbl.find_opt reference np with
               | None -> Hashtbl.add reference np r.Api.phase.output
               | Some out ->
                 check
                   ~what:
                     (Printf.sprintf
                        "scaling: lu P=%d %s output differs from %s" np
                        mname
                        (fst (List.hd dir_modes)))
                   (out = r.Api.phase.output));
              string_of_int r.Api.phase.wall_cycles)
          sweep_procs
      in
      Table.add_row t (mname :: cells))
    dir_modes;
  Table.print t;
  (* 2. the KV service at P=16/32/64, directory mode as a column *)
  let module W = Shasta_workload.Workload in
  let module Report = Shasta_workload.Report in
  let nkeys = if !quick then 256 else 1024 in
  let ops = if !quick then 2_000 else 8_000 in
  let cfg =
    { Shasta_apps.Sht.nbuckets = (if !quick then 128 else 512);
      slots = 8; handoff = 8 }
  in
  let wl = W.spec ~nkeys ~ops ~mix:W.B ~quanta:(min nkeys 1024) () in
  let kv_prog = Shasta_apps.Sht.program ~cfg ~wl () in
  let t =
    Table.create
      [ "kv (b mix)"; "procs"; "cycles"; "ops/Mcyc"; "p50"; "p99"; "msgs" ]
  in
  List.iter
    (fun (mname, dmode) ->
      List.iter
        (fun np ->
          match Ns.validate dmode ~nprocs:np with
          | Error _ -> ()
          | Ok () ->
            let _, r, perf = run_scale ~dmode ~nprocs:np kv_prog in
            let rep = Report.parse r.Api.phase.output in
            check
              ~what:
                (Printf.sprintf "scaling: kv P=%d %s reported errors" np
                   mname)
              (rep.Report.errors + rep.Report.verify_errors = 0);
            emit_bench
              (Report.to_bench
                 ~workload:("kv-scale-" ^ mname)
                 ~messages:r.Api.phase.msgs_sent
                 ~misses:(Api.phase_misses r.Api.phase) ~perf rep);
            Table.addf t "%s\t%d\t%d\t%s\t%d\t%d\t%d" mname np
              (Report.run_cycles rep)
              (Table.f2 (Report.ops_per_mcycle rep))
              (Report.percentile rep 50.0) (Report.percentile rep 99.0)
              r.Api.phase.msgs_sent)
        [ 16; 32; 64 ])
    dir_modes;
  Table.print t;
  (* 3. central vs scalable synchronization at P=32: the queue lock
     hands a contended lock straight to its successor (1 hop instead of
     release-to-home + home-to-next) and the combining tree replaces
     the home's P-wide arrival/release fan with log-depth combining.
     The tree moves the same number of edges, so the gated metric is
     the hot-spot: the worst per-node sync fan-in must drop. *)
  let t =
    Table.create
      [ "app @P=32"; "sync"; "cycles"; "sync msgs"; "hot-spot";
        "total msgs" ]
  in
  List.iter
    (fun (aname, prog) ->
      let counts =
        List.map
          (fun sync ->
            let obs, count, hotspot = sync_counting_obs ~nprocs:32 in
            let spec, r, perf = run_scale ~sync ~obs ~nprocs:32 prog in
            let hot = hotspot () in
            emit_bench
              (Api.bench_record
                 ~workload:
                   (Printf.sprintf "%s-sync-%s" aname
                      (if sync then "scalable" else "central"))
                 ~perf
                 ~extra:
                   [ ("sync_msgs", Shasta_obs.Benchjson.Int !count);
                     ("sync_hotspot", Shasta_obs.Benchjson.Int hot) ]
                 spec r);
            Table.addf t "%s\t%s\t%d\t%d\t%d\t%d" aname
              (if sync then "scalable" else "central")
              r.Api.phase.wall_cycles !count hot r.Api.phase.msgs_sent;
            hot)
          [ false; true ]
      in
      match counts with
      | [ central; scalable ] ->
        check
          ~what:
            (Printf.sprintf
               "scaling: %s P=32 scalable sync hot-spot %d, central %d — \
                no reduction"
               aname scalable central)
          (scalable < central)
      | _ -> assert false)
    [ ("lu", lu);
      ("ocean",
       if !quick then Shasta_apps.Ocean.program ~n:18 ~iters:2 ()
       else Shasta_apps.Ocean.program ~n:34 ~iters:4 ()) ];
  Table.print t;
  (* 4. home policies at P=16: round-robin vs first-touch vs
     profile-guided placement vs run-time migration *)
  let t =
    Table.create [ "lu @P=16"; "policy"; "cycles"; "msgs" ]
  in
  List.iter
    (fun (pname, policy, migrate) ->
      let placement =
        if policy = State.Profiled then begin
          let pobs = Obs.create ~nprocs:16 () in
          let prof = Obs.Profile.create ~nprocs:16 () in
          Obs.attach_profiler pobs prof;
          ignore
            (Api.run
               { (Api.default_spec lu) with
                 opts = Some Opts.full; nprocs = 16; obs = Some pobs });
          Api.placement_of_profile prof ~nprocs:16
        end
        else []
      in
      let spec, r, perf =
        run_scale ~policy ~migrate ~placement ~nprocs:16 lu
      in
      emit_bench
        (Api.bench_record ~workload:("lu-homes-" ^ pname) ~perf spec r);
      Table.addf t "%s\t%s\t%d\t%d" "lu" pname r.Api.phase.wall_cycles
        r.Api.phase.msgs_sent)
    [ ("rr", State.Round_robin, false);
      ("first-touch", State.First_touch, false);
      ("profiled", State.Profiled, false);
      ("migrate", State.Round_robin, true) ];
  Table.print t;
  print_string
    "The full map stops at 61 nodes (its int-bitmask capacity); limited\n\
     pointers overflow hot entries to broadcast-with-exclusions and the\n\
     coarse vector invalidates per region, trading spurious\n\
     invalidations for directory storage while computing identical\n\
     results.  Scalable sync must flatten the per-node sync hot-spot\n\
     at P=32 (gated above): queue locks hand contended locks\n\
     peer-to-peer and the combining tree spreads the home's P-wide\n\
     barrier fan over log-depth combining nodes.  Placement policies\n\
     cut remote-home traffic on allocator-owned data.\n"

(* ------------------------------------------------------------------ *)
(* bechamel microbenchmarks of the instrumenter itself                  *)
(* ------------------------------------------------------------------ *)

let section_micro () =
  Table.section "Microbenchmarks: instrumenter throughput (bechamel)";
  let open Bechamel in
  let open Toolkit in
  let lu = Shasta_apps.Lu.program ~n:32 ~bs:8 () in
  let compiled = Shasta_minic.Compile.compile lu in
  let body =
    Array.of_list (Shasta_isa.Program.entry_proc compiled.program).body
  in
  let flow = Shasta_dataflow.Flow.of_body body in
  let tests =
    Test.make_grouped ~name:"shasta"
      [ Test.make ~name:"compile-lu"
          (Staged.stage (fun () -> ignore (Shasta_minic.Compile.compile lu)));
        Test.make ~name:"instrument-lu-full"
          (Staged.stage (fun () ->
             ignore (Instrument.instrument ~opts:Opts.full compiled.program)));
        Test.make ~name:"instrument-lu-basic"
          (Staged.stage (fun () ->
             ignore (Instrument.instrument ~opts:Opts.basic compiled.program)));
        Test.make ~name:"liveness-work-proc"
          (Staged.stage (fun () ->
             ignore (Shasta_dataflow.Liveness.analyze flow)));
        Test.make ~name:"batch-scan-work-proc"
          (Staged.stage (fun () ->
             let derived = Shasta_dataflow.Private_track.analyze flow in
             ignore (Batch.scan flow derived ~line_bytes:64)))
      ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000
      ~quota:(Time.second (if !quick then 0.2 else 0.7))
      ~stabilize:true ()
  in
  let raw = Benchmark.all cfg instances tests in
  let results = List.map (fun i -> Analyze.all ols i raw) instances in
  let results = Analyze.merge ols instances results in
  Hashtbl.iter
    (fun _measure tbl ->
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some (est :: _) -> Printf.printf "  %-32s %12.0f ns/run\n" name est
          | _ -> Printf.printf "  %-32s (no estimate)\n" name)
        tbl)
    results;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* driver                                                               *)
(* ------------------------------------------------------------------ *)

let sections =
  [ ("figures", section_figures);
    ("table1", section_table1);
    ("table2", section_table2);
    ("table3", section_table3);
    ("parallel", section_parallel);
    ("granularity", section_granularity);
    ("polling", section_polling);
    ("excltable", section_excltable);
    ("consistency", section_consistency);
    ("messages", section_messages);
    ("faults", section_faults);
    ("throughput", section_throughput);
    ("kv", section_kv);
    ("crash", section_crash);
    ("scaling", section_scaling);
    ("micro", section_micro) ]

let usage () =
  Printf.eprintf
    "usage: bench [--quick] [--json-out FILE] [--json-no-host]\n\
    \             [--progress N] [section ...]\n\
     sections: %s\n"
    (String.concat " " (List.map fst sections));
  exit 1

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let args = List.filter (fun a -> a <> "--") args in
  let named = ref [] in
  let rec parse = function
    | [] -> ()
    | "--quick" :: rest ->
      quick := true;
      parse rest
    | "--json-no-host" :: rest ->
      json_no_host := true;
      parse rest
    | "--json-out" :: file :: rest ->
      json_out := Some file;
      parse rest
    | "--progress" :: n :: rest ->
      (match int_of_string_opt n with
       | Some n when n > 0 -> progress := Some n
       | _ ->
         Printf.eprintf "--progress expects a positive integer\n";
         exit 1);
      parse rest
    | a :: rest when String.length a > 0 && a.[0] <> '-' ->
      named := !named @ [ a ];
      parse rest
    | a :: _ ->
      Printf.eprintf "unknown flag %s\n" a;
      usage ()
  in
  parse args;
  let chosen =
    if !named = [] then sections
    else
      List.map
        (fun n ->
          match List.assoc_opt n sections with
          | Some f -> (n, f)
          | None ->
            Printf.eprintf "unknown section %s (have: %s)\n" n
              (String.concat " " (List.map fst sections));
            exit 1)
        !named
  in
  Printf.printf "Shasta benchmark harness (%s sizes)\n"
    (if !quick then "quick/test" else "standard");
  List.iter (fun (_, f) -> f ()) chosen;
  (match !json_out with Some path -> write_bench path | None -> ());
  if !failures > 0 then begin
    Printf.eprintf "bench: %d check(s) FAILED\n" !failures;
    exit 1
  end
