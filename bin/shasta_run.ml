(* shasta_run: compile, instrument and run a workload on the simulated
   cluster from the command line.

     dune exec bin/shasta_run.exe -- --app lu --procs 8 --net mc
     dune exec bin/shasta_run.exe -- --app radix --no-batch --line 128
     dune exec bin/shasta_run.exe -- --app lu --trace-out /tmp/lu.json
     dune exec bin/shasta_run.exe -- --app ocean --metrics
     dune exec bin/shasta_run.exe -- --list *)

open Cmdliner
open Shasta_runtime
module Obs = Shasta_obs.Obs
module Metrics = Shasta_obs.Metrics
module Sink = Shasta_obs.Sink
module Mcheck = Shasta_mcheck.Mcheck

(* --check: enumerate every interleaving of the small built-in protocol
   scenarios and verify invariants, quiescence and the data oracles.
   With --lossy N the channels become the unreliable wire under the
   reliable-delivery sublayer, with an adversarial per-channel fault
   budget of N drop/dup/reorder moves.  With --inject drop-ack, the
   routing layer drops the first invalidation acknowledgement; with
   --inject no-dedup, the sublayer's receiver-side dedup is removed so
   retransmitted/duplicated frames hit the protocol twice.  Success
   under an injection inverts: the checker must FIND the violation and
   print its counterexample trace. *)
let model_check nprocs inject fuzz_seed fuzz_runs lossy crash recover
    fuzz_only scale refine dir_mode sync =
  let injection =
    match inject with
    | None -> Mcheck.No_injection
    | Some "drop-ack" -> Mcheck.Drop_first_inv_ack
    | Some "no-dedup" -> Mcheck.Retransmit_no_dedup
    | Some "reorder-release" -> Mcheck.Store_past_release
    | Some s -> failwith ("unknown injection " ^ s)
  in
  (match (injection, lossy) with
   | Mcheck.Retransmit_no_dedup, None ->
     failwith "--inject no-dedup needs --lossy N (it is a sublayer bug)"
   | _ -> ());
  if crash > 0 && lossy <> None then
    failwith "--crash needs the reliable wire (drop --lossy)";
  if recover > 0 && crash = 0 then
    failwith "--recover needs --crash N (nothing to restart otherwise)";
  let dmode =
    match Shasta_protocol.Nodeset.mode_of_string dir_mode with
    | Ok m -> m
    | Error e -> failwith e
  in
  let scalable_sync =
    match sync with
    | "central" -> false
    | "scalable" -> true
    | s -> failwith ("unknown sync kind " ^ s)
  in
  (* exhaustive enumeration only stays tractable on tiny configs *)
  let np = max 2 (min nprocs 3) in
  if np <> nprocs then
    Printf.printf "(clamped to %d processors for exhaustive search)\n" np;
  (* the CLI's --dir-mode/--sync select the configuration every
     scenario runs over (scale scenarios still pin their own) *)
  let base =
    { Shasta_protocol.Transitions.nprocs = np; page_bytes = 8192; sc = false;
      dmode; scalable_sync; migrate = false }
  in
  Printf.printf "== model check: %d processors, %s%s%s%s%s%s\n" np
    (match injection with
     | Mcheck.No_injection -> "no fault injection"
     | Mcheck.Drop_first_inv_ack -> "dropping first invalidation ack"
     | Mcheck.Retransmit_no_dedup -> "retransmit without receiver dedup"
     | Mcheck.Store_past_release -> "store commit reordered past release")
    (match lossy with
     | Some b -> Printf.sprintf ", lossy channels (budget %d)" b
     | None -> "")
    (if crash > 0 then
       Printf.sprintf ", crash adversary (%d halt%s)" crash
         (if recover > 0 then Printf.sprintf ", %d restart" recover else "")
     else "")
    (if scale then ", scaling scenarios" else "")
    (if refine then ", refinement against the serial-memory spec" else "")
    (if dmode <> Shasta_protocol.Nodeset.Full || scalable_sync then
       Printf.sprintf " [dir-mode %s, sync %s]"
         (Shasta_protocol.Nodeset.mode_name dmode)
         (if scalable_sync then "scalable" else "central")
     else "");
  let scenario_set ~nprocs =
    if injection = Mcheck.Store_past_release then
      (* the mutation defers a store under a held lock: the directed
         release-order scenario isolates it (other lock scenarios'
         strong oracles would also trip, muddying the demonstration
         that refinement alone sees it) *)
      [ Mcheck.release_order ]
    else if scale then Mcheck.scale_scenarios ~nprocs
    else if crash > 0 then Mcheck.crash_scenarios ~nprocs
    else if refine then Mcheck.refine_scenarios ~nprocs
    else Mcheck.scenarios ~nprocs
  in
  let crash = if crash > 0 then Some crash else None in
  let recover = match recover with 0 -> None | r -> Some r in
  let results =
    if fuzz_only then []
    else
      List.map
        (fun sc ->
          Mcheck.run_scenario ~injection ?lossy ?crash ?recover ~refine ~base
            stdout sc)
        (scenario_set ~nprocs:np)
  in
  let states = List.fold_left (fun a (r : Mcheck.result) -> a + r.states) 0 results in
  let transitions =
    List.fold_left (fun a (r : Mcheck.result) -> a + r.transitions) 0 results
  in
  let violations =
    List.filter_map (fun (r : Mcheck.result) -> r.violation) results
  in
  Printf.printf "total: %d states, %d transitions, %d scenario(s), %d violation(s)\n"
    states transitions (List.length results) (List.length violations);
  (* seeded random-walk fuzzing on top of the exhaustive pass *)
  let fuzz_violations = ref 0 in
  if fuzz_runs > 0 then begin
    List.iter
      (fun sc ->
        let steps, v =
          Mcheck.fuzz ~injection ?lossy ?crash ?recover ~refine ~base
            ~seed:fuzz_seed ~runs:fuzz_runs sc
        in
        Printf.printf "fuzz %-17s %d runs, %d steps%s\n" sc.Mcheck.sname
          fuzz_runs steps
          (match v with None -> "" | Some _ -> " VIOLATION");
        match v with
        | Some v ->
          incr fuzz_violations;
          Mcheck.pp_violation stdout v
        | None -> ())
      (scenario_set ~nprocs:np)
  end;
  let found = List.length violations + !fuzz_violations > 0 in
  match injection with
  | Mcheck.No_injection ->
    if found then begin
      print_endline "FAIL: protocol violation found";
      exit 1
    end
    else print_endline "OK: no violations in any explored interleaving"
  | Mcheck.Drop_first_inv_ack | Mcheck.Retransmit_no_dedup
  | Mcheck.Store_past_release ->
    if found then
      print_endline "OK: injected fault caught (counterexample above)"
    else begin
      print_endline "FAIL: injected fault was not detected";
      exit 1
    end

(* --replay: run the workload with input recording on, then fold the
   recorded inputs through the pure core from the initial view and
   demand the exact same final protocol state. *)
let replay_run spec app =
  let state, _, _ = Api.prepare spec in
  state.State.record_inputs <- true;
  let phase = Cluster.run_app state in
  let r = Replay.replay state in
  Printf.printf "== replay: %s, %d processor(s)\n" app spec.Api.nprocs;
  Printf.printf "live run    : %d wall cycles, %d messages\n" phase.wall_cycles
    phase.msgs_sent;
  Printf.printf "replayed    : %d protocol steps through the pure core\n"
    r.Replay.steps;
  List.iter
    (fun (k, errs) ->
      Printf.printf "invariants broken at step %d:\n" k;
      List.iter (fun e -> Printf.printf "  %s\n" e) errs)
    r.Replay.invariant_failures;
  if r.Replay.mismatch then
    print_endline "FAIL: replayed view differs from the live run's final view"
  else if r.Replay.invariant_failures <> [] then
    print_endline "FAIL: invariant violations during replay"
  else
    print_endline "OK: replay reproduces the live run's final protocol state";
  if not (Replay.ok r) then exit 1

(* --kv: drive the sharded hash table with a YCSB-style workload built
   from the command line instead of the registry's preset, and print
   the parsed end-of-run report (throughput in simulated cycles,
   per-op latency percentiles, table/shard accounting). *)
type kv_opts = {
  kv : bool;
  kv_ops : int;
  kv_mix : string;
  kv_theta : float;
  kv_keys : int option;
  kv_seed : int;
  kv_report : bool;
  bench_out : string option;
}

let kv_workload size kvo =
  let module W = Shasta_workload.Workload in
  let nkeys, quanta =
    match size with
    | Shasta_apps.Apps.Test -> (256, 256)
    | Shasta_apps.Apps.Small -> (1024, 1024)
    | Shasta_apps.Apps.Large -> (4096, 1024)
  in
  let nkeys = Option.value kvo.kv_keys ~default:nkeys in
  let dist =
    if kvo.kv_theta <= 0.0 then W.Uniform else W.Zipfian kvo.kv_theta
  in
  let wl =
    W.spec ~nkeys ~ops:kvo.kv_ops ~quanta
      ~mix:(W.mix_of_string kvo.kv_mix)
      ~dist ~seed:kvo.kv_seed ()
  in
  (wl, Shasta_apps.Sht.default_cfg ~nkeys)

let run app size nprocs net net_faults node_faults cpu line_bytes
    no_instrument no_sched no_flag no_excl no_batch poll no_range fixed_block
    threshold sc trace trace_out metrics metrics_csv profile profile_out
    flame_out top show_asm replay progress dir_mode home_policy sync kvo =
  let entry = Shasta_apps.Apps.find app in
  let dmode =
    match Shasta_protocol.Nodeset.mode_of_string dir_mode with
    | Ok m -> m
    | Error e -> failwith e
  in
  let policy, migrate =
    match home_policy with
    | "rr" -> (State.Round_robin, false)
    | "first-touch" -> (State.First_touch, false)
    | "profiled" -> (State.Profiled, false)
    | "migrate" -> (State.Round_robin, true)
    | s -> failwith ("unknown home policy " ^ s)
  in
  let scalable_sync =
    match sync with
    | "central" -> false
    | "scalable" -> true
    | s -> failwith ("unknown sync kind " ^ s)
  in
  let faults =
    match net_faults with
    | None -> None
    | Some s -> Shasta_network.Network.faults_of_string s
  in
  let nfaults =
    match node_faults with
    | None -> None
    | Some s -> Nodefaults.of_string s
  in
  (* the spec's max-retx knob rides on the network's fault layer: give
     it a fault-free wire to carry the bound when none was asked for
     (Some no_faults is trace-identical to None) *)
  let faults =
    match (nfaults, faults) with
    | Some nf, _ when nf.Nodefaults.max_retx = 0 -> faults
    | Some nf, Some f -> Some { f with max_retx = nf.Nodefaults.max_retx }
    | Some nf, None ->
      Some
        { Shasta_network.Network.no_faults with
          max_retx = nf.Nodefaults.max_retx }
    | None, _ -> faults
  in
  let size =
    match size with
    | "test" -> Shasta_apps.Apps.Test
    | "small" -> Shasta_apps.Apps.Small
    | "large" -> Shasta_apps.Apps.Large
    | s -> failwith ("unknown size " ^ s)
  in
  let kv_wl =
    if kvo.kv || kvo.bench_out <> None then begin
      if app <> "sht" then
        failwith "--kv drives the sharded hash table; use --app sht";
      Some (kv_workload size kvo)
    end
    else None
  in
  let prog =
    match kv_wl with
    | Some (wl, cfg) -> Shasta_apps.Sht.program ~cfg ~wl ()
    | None -> entry.make size
  in
  let opts =
    if no_instrument then None
    else
      Some
        { Shasta.Opts.line_shift =
            (match line_bytes with
             | 64 -> 6
             | 128 -> 7
             | _ -> failwith "line size must be 64 or 128");
          schedule = not no_sched;
          flag_loads = not no_flag;
          excl_table = not no_excl;
          batching = not no_batch;
          range_check = not no_range;
          poll =
            (match poll with
             | "none" -> Shasta.Opts.Poll_none
             | "fn" -> Shasta.Opts.Poll_fn_entry
             | "loop" -> Shasta.Opts.Poll_loop
             | s -> failwith ("unknown poll mode " ^ s)) }
  in
  (* Observability: attach the requested sinks before the run; the
     metrics registry is always on. *)
  let obs = Obs.create ~nprocs () in
  if trace then Obs.attach obs (Sink.text prerr_endline);
  let open_out_or_die file =
    try open_out file
    with Sys_error e ->
      prerr_endline ("shasta_run: cannot open output file: " ^ e);
      exit 1
  in
  let chrome_oc =
    match trace_out with
    | None -> None
    | Some file ->
      let oc = open_out_or_die file in
      Obs.attach obs (Sink.chrome ~nprocs oc);
      Some oc
  in
  (* the site profiler piggybacks on the same event stream *)
  let want_profile =
    profile || profile_out <> None || flame_out <> None || kvo.kv_report
  in
  let prof =
    if want_profile then begin
      let line =
        match line_bytes with 128 -> 128 | _ -> 64
      in
      let p =
        Obs.Profile.create ~nprocs ~block_of:(fun a -> a land lnot (line - 1))
          ()
      in
      Obs.attach_profiler obs p;
      Some p
    end
    else None
  in
  let spec =
    { (Api.default_spec prog) with
      opts;
      nprocs;
      pipe =
        (match cpu with
         | "21064a" -> Shasta_machine.Pipeline.alpha_21064a
         | "21164" -> Shasta_machine.Pipeline.alpha_21164
         | s -> failwith ("unknown cpu " ^ s));
      net = Shasta_network.Network.profile_of_string net;
      net_faults = faults;
      node_faults = nfaults;
      fixed_block;
      granularity_threshold = threshold;
      consistency = (if sc then State.Sequential else State.Release);
      obs = Some obs;
      progress;
      dir_mode = dmode;
      home_policy = policy;
      scalable_sync;
      migrate }
  in
  (* the Profiled policy is a two-pass protocol: a silent pilot run
     with a private profiler discovers contention, and the measured run
     below executes with the derived placement installed *)
  let spec =
    if policy = State.Profiled then begin
      let pobs = Obs.create ~nprocs () in
      let pprof = Obs.Profile.create ~nprocs () in
      Obs.attach_profiler pobs pprof;
      ignore
        (Api.run
           { spec with
             Api.obs = Some pobs;
             home_policy = State.Round_robin;
             progress = None });
      let placement = Api.placement_of_profile pprof ~nprocs in
      Printf.eprintf "profiled placement: %d page override(s)\n%!"
        (List.length placement);
      { spec with Api.placement }
    end
    else spec
  in
  if replay then replay_run spec app
  else begin
  let r, perf = Api.run_measured spec in
  Obs.flush obs;
  Option.iter close_out chrome_oc;
  if show_asm then print_string (Shasta_isa.Asm.program_to_string r.program);
  Printf.printf "== %s (%s), %d processor(s), %s network%s%s\n" app
    entry.descr nprocs net
    (match faults with
     | Some f ->
       " (faulty: " ^ Shasta_network.Network.describe_faults f ^ ")"
     | None -> "")
    (match nfaults with
     | Some nf when not (Nodefaults.is_off nf) ->
       ", node faults: "
       ^ Nodefaults.describe (Nodefaults.resolve nf ~nprocs)
     | _ -> "");
  if dmode <> Shasta_protocol.Nodeset.Full || scalable_sync
     || policy <> State.Round_robin || migrate then
    Printf.printf "scaling     : dir-mode %s, homes %s, sync %s\n"
      (Shasta_protocol.Nodeset.mode_name dmode)
      home_policy
      (if scalable_sync then "scalable" else "central");
  (match kv_wl with
   | Some _ -> () (* the raw output block is the report's wire format *)
   | None -> Printf.printf "output:\n%s" r.phase.output);
  Printf.printf "wall cycles : %d\n" r.phase.wall_cycles;
  Printf.printf "host        : %.3f s (%s), %.1f Mcyc/s\n"
    perf.Shasta_obs.Perf.wall_s
    (String.concat ", "
       (List.map
          (fun (n, s) -> Printf.sprintf "%s %.3fs" n s)
          perf.Shasta_obs.Perf.phases))
    (Shasta_obs.Perf.cyc_per_s perf ~sim_cycles:r.phase.wall_cycles /. 1e6);
  Printf.printf "messages    : %d (%d payload longwords)\n" r.phase.msgs_sent
    r.phase.payload_longs;
  (match faults with
   | Some _ ->
     let fs = Shasta_network.Network.fault_stats r.state.State.net in
     Printf.printf
       "net faults  : %d dropped (retransmitted), %d duplicated, \
        %d reordered, %d backoff cycles\n"
       fs.Shasta_network.Network.drops fs.dups fs.reorders fs.backoff_cycles
   | None -> ());
  (match nfaults with
   | Some nf when not (Nodefaults.is_off nf) ->
     let m = Obs.metrics obs in
     let total c = Obs.Metrics.counter_total m c in
     Printf.printf
       "node faults : %d crashed, %d recovered, %d lock leases taken over, \
        %d directory entries rebuilt\n"
       (total Obs.c_node_crash) (total Obs.c_node_recover)
       (total Obs.c_lease_takeover) (total Obs.c_dir_rebuild)
   | _ -> ());
  (match r.inst_stats with
   | Some s ->
     Printf.printf
       "instrumented: %d/%d loads, %d/%d stores, %d batches (%d accesses)\n"
       s.loads_instrumented s.loads_total s.stores_instrumented s.stores_total
       s.batches s.batched_accesses;
     Printf.printf "code size   : %d -> %d instructions\n" s.insns_before
       s.insns_after
   | None -> Printf.printf "instrumented: no (original binary)\n");
  Array.iteri
    (fun id (c : Node.counters) ->
      Printf.printf
        "node %d: %9d insns, misses rd=%d wr=%d up=%d batch=%d false=%d, \
         stall=%d cyc, polls=%d, locks=%d\n"
        id c.insns c.read_misses c.write_misses c.upgrade_misses
        c.batch_misses c.false_misses c.stall_cycles c.polls c.lock_acquires)
    r.phase.counters;
  (match prof with
   | None -> ()
   | Some p ->
     let image = r.state.State.image in
     let name_site = Image.site_name image in
     let report = Obs.Profile.report ~top p ~name_site in
     Printf.printf "\n== site profile (top %d)\n%s" top report;
     (* cross-check: the profiler and the registry consumed the same
        stream, so per-site miss totals must sum to the registry's
        counters exactly *)
     let reg = Obs.metrics obs in
     let tot = Obs.Profile.totals p in
     Printf.printf
       "site totals vs registry: read %d/%d write %d/%d upgrade %d/%d \
        false %d/%d\n"
       tot.Obs.Profile.t_read
       (Metrics.counter_total reg Obs.c_miss_read)
       tot.Obs.Profile.t_write
       (Metrics.counter_total reg Obs.c_miss_write)
       tot.Obs.Profile.t_upgrade
       (Metrics.counter_total reg Obs.c_miss_upgrade)
       tot.Obs.Profile.t_false
       (Metrics.counter_total reg Obs.c_miss_false);
     (match profile_out with
      | None -> ()
      | Some file ->
        let oc = open_out_or_die file in
        output_string oc (Obs.Profile.report ~top:max_int p ~name_site);
        close_out oc);
     (match flame_out with
      | None -> ()
      | Some file ->
        let oc = open_out_or_die file in
        output_string oc
          (Obs.Profile.collapsed p ~name_proc:(Image.proc_name image)
             ~name_site);
        close_out oc));
  (match kv_wl with
   | None -> ()
   | Some (wl, _) ->
     let module W = Shasta_workload.Workload in
     let module Report = Shasta_workload.Report in
     let rep = Report.parse r.phase.output in
     let label =
       Printf.sprintf "%s mix, %s, %d procs" (W.mix_name wl.W.mix)
         (W.dist_name wl.W.dist) nprocs
     in
     print_newline ();
     print_string (Report.render ~label rep);
     (match prof with
      | Some p when kvo.kv_report ->
        (* protocol-level view of the same run: per-request-kind
           latency percentiles from the profiler's span histograms *)
        let sm = Obs.Profile.span_metrics p in
        Printf.printf "protocol spans:\n";
        List.iter
          (fun name ->
            let h = Metrics.hist_total sm name in
            if h.Metrics.n > 0 then
              Printf.printf
                "  %-14s n=%-7d p50 %-6d p95 %-6d p99 %-6d p99.9 %d cycles\n"
                name h.Metrics.n
                (Metrics.percentile h 50.0)
                (Metrics.percentile h 95.0)
                (Metrics.percentile h 99.0)
                (Metrics.percentile h 99.9))
          (Metrics.hist_names sm)
      | _ -> ());
     (match kvo.bench_out with
      | None -> ()
      | Some file ->
        (* versioned BENCH record: simulated KV metrics plus the host
           measurements of this run, parseable by Benchjson *)
        let opts_name =
          match opts with
          | None -> "orig"
          | Some o ->
            if { o with Shasta.Opts.line_shift = 6 } = Shasta.Opts.full then
              "full"
            else "custom"
        in
        let oc = open_out_or_die file in
        output_string oc
          (Report.to_json ~line:line_bytes ~opts:opts_name
             ~messages:r.phase.msgs_sent ~misses:(Api.phase_misses r.phase)
             ~perf ~workload:(W.mix_name wl.W.mix) rep);
        output_string oc "\n";
        close_out oc));
  if metrics then begin
    let reg = Obs.metrics obs in
    Printf.printf "\n== metrics registry (whole run, per node + aggregate)\n";
    print_string (Metrics.to_string reg);
    (* cross-check: the registry's protocol-message totals must agree
       with the interconnect's own accounting *)
    let sent, pay = Shasta_network.Network.stats r.state.net in
    Printf.printf
      "\nnetwork cross-check: registry msg.sent=%d msg.recv=%d, \
       Network.stats sent=%d (%d payload longwords)\n"
      (Metrics.counter_total reg Obs.c_msg_sent)
      (Metrics.counter_total reg Obs.c_msg_recv)
      sent pay
  end;
  match metrics_csv with
  | None -> ()
  | Some file ->
    let oc = open_out_or_die file in
    output_string oc (Metrics.to_csv (Obs.metrics obs));
    close_out oc
  end

let list_apps () =
  List.iter
    (fun (e : Shasta_apps.Apps.entry) ->
      Printf.printf "%-10s %s\n" e.name e.descr)
    Shasta_apps.Apps.all

let cmd =
  let app_t =
    Arg.(value & opt string "lu" & info [ "app"; "a" ] ~doc:"Workload name.")
  in
  let size_t =
    Arg.(value & opt string "small"
         & info [ "size" ] ~doc:"Problem size: test, small or large.")
  in
  let procs_t =
    Arg.(value & opt int 4 & info [ "procs"; "p" ] ~doc:"Processor count.")
  in
  let net_t =
    Arg.(value & opt string "mc"
         & info [ "net" ] ~doc:"Network profile: mc, atm or ideal.")
  in
  let net_faults_t =
    Arg.(value & opt (some string) None
         & info [ "net-faults" ] ~docv:"SPEC"
             ~doc:"Make the wire unreliable beneath the reliable-delivery \
                   sublayer.  SPEC is 'none', 'standard' (drop 1%, dup \
                   1%, reorder 2%) or comma-separated key=value pairs \
                   among drop, dup, reorder, delay, delay-cycles, seed, \
                   rto (e.g. 'drop=0.05,seed=3').  Deterministic per \
                   seed.")
  in
  let node_faults_t =
    Arg.(value & opt (some string) None
         & info [ "node-faults" ] ~docv:"SPEC"
             ~doc:"Crash (and optionally restart) whole nodes mid-run.  \
                   SPEC is 'none' or comma-separated key=value pairs \
                   among crash=NODE@CYCLE (NODE may be '*' for a seeded \
                   victim), recover=NODE@CYCLE, lease=CYCLES (liveness \
                   lease horizon driving detection), max-retx=N (bound \
                   per-channel retransmissions) and seed=S.  The \
                   surviving coordinator reconstructs the directory, \
                   takes over the victim's locks and re-serves its \
                   in-flight replies from salvaged memory; the run's \
                   report then skips the dead node's shards.  \
                   Deterministic per seed.")
  in
  let cpu_t =
    Arg.(value & opt string "21064a"
         & info [ "cpu" ] ~doc:"Pipeline model: 21064a or 21164.")
  in
  let line_t =
    Arg.(value & opt int 64 & info [ "line" ] ~doc:"Line size (64 or 128).")
  in
  let no_instrument_t =
    Arg.(value & flag
         & info [ "no-instrument" ]
             ~doc:"Run the original binary (one processor only).")
  in
  let no_sched_t = Arg.(value & flag & info [ "no-sched" ] ~doc:"Disable check scheduling.") in
  let no_flag_t = Arg.(value & flag & info [ "no-flag" ] ~doc:"Disable flag load checks.") in
  let no_excl_t = Arg.(value & flag & info [ "no-excl" ] ~doc:"Disable the exclusive table.") in
  let no_batch_t = Arg.(value & flag & info [ "no-batch" ] ~doc:"Disable batching.") in
  let poll_t =
    Arg.(value & opt string "loop"
         & info [ "poll" ] ~doc:"Polling: none, fn or loop.")
  in
  let no_range_t = Arg.(value & flag & info [ "no-range" ] ~doc:"Drop the range check.") in
  let fixed_block_t =
    Arg.(value & opt (some int) None
         & info [ "block" ] ~doc:"Force one block size in bytes (ablation).")
  in
  let threshold_t =
    Arg.(value & opt int 1024
         & info [ "threshold" ]
             ~doc:"Size cutoff of the block-size heuristic (Section 4.2).")
  in
  let sc_t =
    Arg.(value & flag
         & info [ "sc" ]
             ~doc:"Sequential consistency (stores stall; default is the \
                   paper's release-consistent protocol).")
  in
  let trace_t =
    Arg.(value & flag
         & info [ "trace" ]
             ~doc:"Print the typed event stream as text on stderr.")
  in
  let trace_out_t =
    Arg.(value & opt (some string) None
         & info [ "trace-out" ] ~docv:"FILE"
             ~doc:"Write a Chrome trace_event JSON trace (open in \
                   chrome://tracing or Perfetto; one track per node).")
  in
  let metrics_t =
    Arg.(value & flag
         & info [ "metrics" ]
             ~doc:"Print the metrics registry: per-node and aggregate \
                   counters and histograms.")
  in
  let metrics_csv_t =
    Arg.(value & opt (some string) None
         & info [ "metrics-csv" ] ~docv:"FILE"
             ~doc:"Dump the metrics registry as CSV.")
  in
  let profile_t =
    Arg.(value & flag
         & info [ "profile" ]
             ~doc:"Print the site profile: top-N hot sites (misses, \
                   stalls per code location), contended blocks with a \
                   false-sharing verdict, and protocol span latencies.")
  in
  let profile_out_t =
    Arg.(value & opt (some string) None
         & info [ "profile-out" ] ~docv:"FILE"
             ~doc:"Write the full (untruncated) site profile to FILE.")
  in
  let flame_out_t =
    Arg.(value & opt (some string) None
         & info [ "flame-out" ] ~docv:"FILE"
             ~doc:"Write collapsed call stacks (fn;fn;site count) to \
                   FILE, for flamegraph tools.")
  in
  let top_t =
    Arg.(value & opt int 10
         & info [ "top" ] ~docv:"N"
             ~doc:"Rows shown in the profile tables (default 10).")
  in
  let show_asm_t =
    Arg.(value & flag
         & info [ "asm" ] ~doc:"Disassemble the instrumented executable.")
  in
  let list_t =
    Arg.(value & flag & info [ "list" ] ~doc:"List available workloads.")
  in
  let check_t =
    Arg.(value & flag
         & info [ "check" ]
             ~doc:"Model-check the protocol core: exhaustively enumerate \
                   every interleaving of small built-in scenarios and \
                   verify coherence invariants, quiescence and data \
                   oracles.  Exits non-zero on a violation.")
  in
  let inject_t =
    Arg.(value & opt (some string) None
         & info [ "inject" ] ~docv:"FAULT"
             ~doc:"With --check: inject a bug (drop-ack drops the first \
                   invalidation acknowledgement; no-dedup removes the \
                   sublayer's receiver-side dedup, needs --lossy; \
                   reorder-release sinks a store commit past its lock \
                   release — invisible to every invariant, caught only \
                   by --refine).  Success inverts: the checker must \
                   find and print a counterexample.")
  in
  let lossy_t =
    Arg.(value & opt (some int) None
         & info [ "lossy" ] ~docv:"BUDGET"
             ~doc:"With --check: model-check over the unreliable wire \
                   under the reliable-delivery sublayer, giving the \
                   adversary BUDGET drop/dup/reorder moves per channel.")
  in
  let crash_t =
    Arg.(value & opt int 0
         & info [ "crash" ] ~docv:"N"
             ~doc:"With --check: give the node-crash adversary N halt \
                   moves — at any state it may kill any node (while two \
                   or more are live), with the surviving coordinator \
                   reconstructing directory, lock and in-flight state.  \
                   Data oracles are skipped once a crash fires; \
                   invariants, survivor liveness and quiescence are \
                   still required.  Needs the reliable wire.")
  in
  let recover_t =
    Arg.(value & opt int 0
         & info [ "recover" ] ~docv:"N"
             ~doc:"With --check --crash: also give the adversary N \
                   restart moves that bring crashed nodes back into \
                   protocol duty; terminal states must be quiescent \
                   post-recovery.")
  in
  let fuzz_only_t =
    Arg.(value & flag
         & info [ "fuzz-only" ]
             ~doc:"With --check: skip the exhaustive pass and only run \
                   the seeded random-walk fuzzer (for configurations \
                   whose full state space is too large, e.g. --lossy at \
                   3 processors).")
  in
  let fuzz_seed_t =
    Arg.(value & opt int 1 & info [ "fuzz-seed" ] ~doc:"Fuzzer seed.")
  in
  let fuzz_runs_t =
    Arg.(value & opt int 50
         & info [ "fuzz-runs" ]
             ~doc:"Random interleavings per scenario after the exhaustive \
                   pass (0 disables).")
  in
  let kv_t =
    Arg.(value & flag
         & info [ "kv" ]
             ~doc:"Drive the sharded hash table (--app sht) with a \
                   YCSB-style key-value workload built from the --kv-* \
                   flags, and print the end-of-run report (simulated \
                   throughput, per-operation latency percentiles, \
                   table and shard-handoff accounting).")
  in
  let kv_ops_t =
    Arg.(value & opt int 100_000
         & info [ "kv-ops" ] ~docv:"N"
             ~doc:"Total run-phase operations across all nodes.")
  in
  let kv_mix_t =
    Arg.(value & opt string "b"
         & info [ "kv-mix" ] ~docv:"MIX"
             ~doc:"Operation mix: a (50/50 read/update), b (95/5), c \
                   (read-only), e (95/5 scan/insert) or m \
                   (40/40/10/10 read/update/delete/scan).")
  in
  let kv_theta_t =
    Arg.(value & opt float 0.99
         & info [ "kv-theta" ] ~docv:"THETA"
             ~doc:"Zipfian skew of the key popularity (0 or negative \
                   selects the uniform distribution).")
  in
  let kv_keys_t =
    Arg.(value & opt (some int) None
         & info [ "kv-keys" ] ~docv:"N"
             ~doc:"Key-space size (default picked by --size).")
  in
  let kv_seed_t =
    Arg.(value & opt int 42
         & info [ "kv-seed" ]
             ~doc:"Workload seed; identical seeds give byte-identical \
                   reports.")
  in
  let kv_report_t =
    Arg.(value & flag
         & info [ "kv-report" ]
             ~doc:"With --kv: also attach the site profiler and print \
                   per-request-kind protocol span latency percentiles \
                   under the report.")
  in
  let bench_out_t =
    Arg.(value & opt (some string) None
         & info [ "bench-out" ] ~docv:"FILE"
             ~doc:"Write the KV report as one JSON object to FILE \
                   (implies --kv).")
  in
  let kv_opts_t =
    let mk kv kv_ops kv_mix kv_theta kv_keys kv_seed kv_report bench_out =
      { kv; kv_ops; kv_mix; kv_theta; kv_keys; kv_seed; kv_report;
        bench_out }
    in
    Term.(
      const mk $ kv_t $ kv_ops_t $ kv_mix_t $ kv_theta_t $ kv_keys_t
      $ kv_seed_t $ kv_report_t $ bench_out_t)
  in
  let replay_t =
    Arg.(value & flag
         & info [ "replay" ]
             ~doc:"Record every protocol-core input during the run, then \
                   replay the log through the pure transition core and \
                   verify it reproduces the exact final protocol state.")
  in
  let progress_t =
    Arg.(value & opt (some int) None
         & info [ "progress" ] ~docv:"N"
             ~doc:"Print a heartbeat line to stderr (and emit a runtime \
                   heartbeat event) every N million simulated cycles. Off \
                   by default so runs stay byte-identical.")
  in
  let dir_mode_t =
    Arg.(value & opt string "full"
         & info [ "dir-mode" ] ~docv:"MODE"
             ~doc:"Directory organization: full (one presence bit per \
                   node, up to 61 nodes), limited[:K] (K sharer pointers \
                   per entry, overflowing to broadcast-with-exclusions; \
                   default K=4) or coarse[:G] (one presence bit per \
                   G-node region; default G=4).  The processor count is \
                   validated against the mode's capacity.")
  in
  let home_policy_t =
    Arg.(value & opt string "rr"
         & info [ "home-policy" ] ~docv:"POLICY"
             ~doc:"Home assignment: rr (pages round-robin across nodes, \
                   the default), first-touch (pages homed at the \
                   allocating node), profiled (a silent pilot run's \
                   contention tables place hot pages at their dominant \
                   accessor) or migrate (a page's home follows sustained \
                   remote access at run time).")
  in
  let sync_t =
    Arg.(value & opt string "central"
         & info [ "sync" ] ~docv:"KIND"
             ~doc:"Synchronization primitives: central (home-node lock \
                   grants and a flat barrier) or scalable (MCS-style \
                   queue locks with direct release-to-successor handoff \
                   and a combining-tree barrier).")
  in
  let refine_t =
    Arg.(value & flag
         & info [ "refine" ]
             ~doc:"With --check: also check state-machine refinement \
                   against an atomic-step serial-memory specification — \
                   every load/store/sync commit maps to exactly one \
                   spec step, all other protocol activity is \
                   stuttering, crash boundaries resolve in-flight \
                   stores to committed-before-or-never, and a \
                   vector-clock race detector validates each \
                   scenario's DRF claim.  Divergence counterexamples \
                   print the full commit history.")
  in
  let scale_check_t =
    Arg.(value & flag
         & info [ "scale" ]
             ~doc:"With --check: model-check the scaling scenarios \
                   instead of the base set (limited-pointer overflow to \
                   broadcast, coarse-vector regions, the queue lock and \
                   the combining-tree barrier).")
  in
  let main list check inject lossy crash recover fuzz_only fuzz_seed
      fuzz_runs scale_check refine app size procs net net_faults node_faults
      cpu line no_instrument no_sched no_flag no_excl no_batch poll no_range
      fixed_block threshold sc trace trace_out metrics metrics_csv profile
      profile_out flame_out top show_asm replay progress dir_mode
      home_policy sync kvo =
    try
      if list then list_apps ()
      else if check then
        model_check procs inject fuzz_seed fuzz_runs lossy crash recover
          fuzz_only scale_check refine dir_mode sync
      else
        run app size procs net net_faults node_faults cpu line no_instrument
          no_sched no_flag no_excl no_batch poll no_range fixed_block
          threshold sc trace trace_out metrics metrics_csv profile
          profile_out flame_out top show_asm replay progress dir_mode
          home_policy sync kvo
    with Failure e | Invalid_argument e ->
      prerr_endline ("shasta_run: " ^ e);
      exit 2
  in
  let term =
    Term.(
      const main $ list_t $ check_t $ inject_t $ lossy_t $ crash_t
      $ recover_t $ fuzz_only_t $ fuzz_seed_t $ fuzz_runs_t $ scale_check_t
      $ refine_t
      $ app_t $ size_t $ procs_t $ net_t $ net_faults_t $ node_faults_t
      $ cpu_t
      $ line_t $ no_instrument_t $ no_sched_t $ no_flag_t $ no_excl_t
      $ no_batch_t $ poll_t $ no_range_t $ fixed_block_t $ threshold_t
      $ sc_t $ trace_t $ trace_out_t $ metrics_t $ metrics_csv_t
      $ profile_t $ profile_out_t $ flame_out_t $ top_t $ show_asm_t
      $ replay_t $ progress_t $ dir_mode_t $ home_policy_t $ sync_t
      $ kv_opts_t)
  in
  Cmd.v
    (Cmd.info "shasta_run"
       ~doc:"Run a workload under the Shasta fine-grain software DSM")
    term

let () = exit (Cmd.eval cmd)
