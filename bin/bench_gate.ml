(* CI perf regression gate over versioned BENCH_*.json files.

   Usage: bench_gate --baseline bench/baseline/BENCH_seed.json BENCH_new.json

   Loads both files through Benchjson (JSON Lines, one record per
   workload/nprocs/line/opts configuration), runs the per-metric gate —
   simulated metrics on exact equality, host metrics on a relative
   tolerance, skipped when the baseline never measured them — prints a
   delta table, and exits 1 when any metric regressed or a baseline
   record disappeared.  All policy lives in {!Shasta_obs.Benchjson.gate};
   this binary is argument parsing and rendering. *)

module B = Shasta_obs.Benchjson

(* display-only rendering: floats get trimmed to readable precision
   (the files themselves keep full round-trip precision) *)
let num_opt_str = function
  | None -> "-"
  | Some (B.Int i) -> string_of_int i
  | Some (B.Float f) -> Printf.sprintf "%.5g" f

let delta_str (c : B.check) =
  match (c.c_base, c.c_cand) with
  | Some b, Some cv ->
    let b = match b with B.Int i -> float_of_int i | B.Float f -> f in
    let v = match cv with B.Int i -> float_of_int i | B.Float f -> f in
    if b = v then "="
    else if b = 0.0 then "new"
    else Printf.sprintf "%+.2f%%" (100.0 *. (v -. b) /. b)
  | _ -> "-"

let print_table checks ~verbose =
  (* one row per check; without --verbose, passing host/sim rows other
     than sim_cycles and wall_s are folded away to keep the table
     readable on big files *)
  let interesting (c : B.check) =
    verbose || (not c.c_ok)
    || c.c_metric = "sim_cycles"
    || c.c_metric = "wall_s"
    || c.c_status = B.New
  in
  let rows = List.filter interesting checks in
  let widths = [ 30; 22; 14; 14; 9; 10 ] in
  let pad w s =
    if String.length s >= w then s else s ^ String.make (w - String.length s) ' '
  in
  let line cells =
    print_endline
      (String.concat "  " (List.map2 pad widths cells) |> String.trim
       |> fun s -> "  " ^ s)
  in
  line [ "record"; "metric"; "baseline"; "candidate"; "delta"; "status" ];
  line [ "------"; "------"; "--------"; "---------"; "-----"; "------" ];
  List.iter
    (fun (c : B.check) ->
      line
        [ c.c_key; c.c_metric; num_opt_str c.c_base; num_opt_str c.c_cand;
          delta_str c; B.status_str c.c_status ])
    rows;
  let hidden = List.length checks - List.length rows in
  if hidden > 0 then
    Printf.printf "  (%d passing metric(s) not shown; --verbose prints all)\n"
      hidden

let run baseline candidate tol sim_only verbose =
  let base = B.load_file baseline in
  let cand = B.load_file candidate in
  let checks, ok = B.gate ~tol ~sim_only ~baseline:base ~candidate:cand () in
  Printf.printf "bench_gate: %s (baseline, %d record(s)) vs %s (%d record(s))\n"
    baseline (List.length base) candidate (List.length cand);
  Printf.printf "  policy: simulated metrics exact; host metrics ±%.0f%%%s\n\n"
    (100.0 *. tol)
    (if sim_only then " (host comparison disabled: --sim-only)" else "");
  print_table checks ~verbose;
  let regressions =
    List.filter (fun (c : B.check) -> not c.B.c_ok) checks
  in
  print_newline ();
  if ok then begin
    Printf.printf "PASS: %d metric(s) checked, no regressions\n"
      (List.length checks);
    0
  end
  else begin
    Printf.printf "FAIL: %d regression(s) out of %d metric(s) checked\n"
      (List.length regressions) (List.length checks);
    List.iter
      (fun (c : B.check) ->
        Printf.printf "  %s %s: %s (baseline %s, candidate %s)\n" c.B.c_key
          c.B.c_metric c.B.c_note (num_opt_str c.B.c_base)
          (num_opt_str c.B.c_cand))
      regressions;
    1
  end

open Cmdliner

let baseline =
  Arg.(
    required
    & opt (some file) None
    & info [ "baseline" ] ~docv:"FILE"
        ~doc:"Baseline BENCH_*.json file (JSON Lines, Benchjson schema).")

let candidate =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"CANDIDATE" ~doc:"Candidate BENCH_*.json file to gate.")

let tol =
  Arg.(
    value & opt float 0.25
    & info [ "tol"; "tolerance" ] ~docv:"FRACTION"
        ~doc:
          "Relative tolerance for host metrics (wall time, cycles/s, GC); \
           default 0.25 = ±25%. Simulated metrics always gate on exact \
           equality.")

let sim_only =
  Arg.(
    value & flag
    & info [ "sim-only" ]
        ~doc:
          "Compare only the deterministic simulated metrics and ignore the \
           host-side ones entirely (e.g. when comparing runs from different \
           machines, or two runs of the same build for byte-determinism).")

let verbose =
  Arg.(
    value & flag
    & info [ "verbose" ] ~doc:"Print every compared metric, not a digest.")

let cmd =
  let doc = "gate a candidate BENCH file against a baseline" in
  let man =
    [ `S Manpage.s_description;
      `P
        "Compares every record of the baseline against the candidate (matched \
         on workload/nprocs/line/opts). Simulated metrics — cycles, messages, \
         misses and per-workload extras — are deterministic and must match \
         exactly; host metrics may drift within the tolerance. Exits 1 on any \
         regression or missing record.";
      `S Manpage.s_examples;
      `Pre
        "  dune exec bench/main.exe -- --quick --json-out BENCH_quick.json\n\
        \  dune exec bin/bench_gate.exe -- \\\n\
        \    --baseline bench/baseline/BENCH_seed.json BENCH_quick.json" ]
  in
  Cmd.v
    (Cmd.info "bench_gate" ~doc ~man)
    Term.(const run $ baseline $ candidate $ tol $ sim_only $ verbose)

let () = exit (Cmd.eval' cmd)
