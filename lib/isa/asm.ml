(* Disassembler: renders instructions in Alpha assembler syntax, used by
   tests, the protocol trace example, and the Figure 2/4/5/6 sections of
   the bench harness. *)

let iop_name : Insn.iop -> string = function
  | Addq -> "addq" | Subq -> "subq" | Mulq -> "mulq"
  | Divq -> "divq" | Remq -> "remq"
  | Addl -> "addl" | Subl -> "subl" | Mull -> "mull"
  | And_ -> "and" | Or_ -> "bis" | Xor_ -> "xor"
  | Sll -> "sll" | Srl -> "srl" | Sra -> "sra"
  | Cmpeq -> "cmpeq" | Cmplt -> "cmplt" | Cmple -> "cmple"
  | Cmpult -> "cmpult" | Cmpule -> "cmpule"

let fop_name : Insn.fop -> string = function
  | Addt -> "addt" | Subt -> "subt" | Mult -> "mult" | Divt -> "divt"
  | Sqrtt -> "sqrtt"
  | Cmpteq -> "cmpteq" | Cmptlt -> "cmptlt" | Cmptle -> "cmptle"

let cond_name : Insn.cond -> string = function
  | Eq -> "beq" | Ne -> "bne" | Lt -> "blt" | Le -> "ble"
  | Gt -> "bgt" | Ge -> "bge" | Lbs -> "blbs" | Lbc -> "blbc"

let operand = function
  | Insn.Reg r -> Reg.name r
  | Insn.Imm i -> string_of_int i

let size_tag = function Insn.Long -> "l" | Insn.Quad -> "q"

let rt_name : Insn.rt -> string = function
  | Malloc { size; bsize; dest } ->
    Printf.sprintf "g_malloc %s, %s, %s" (Reg.name dest) (Reg.name size)
      (Reg.name bsize)
  | Malloc_priv { size; dest } ->
    Printf.sprintf "p_malloc %s, %s" (Reg.name dest) (Reg.name size)
  | Lock r -> "lock " ^ Reg.name r
  | Unlock r -> "unlock " ^ Reg.name r
  | Barrier -> "barrier"
  | Flag_set r -> "flag_set " ^ Reg.name r
  | Flag_wait r -> "flag_wait " ^ Reg.name r
  | Print_int r -> "print_int " ^ Reg.name r
  | Print_float f -> "print_float " ^ Reg.fname f
  | Rdcycle r -> "rdcycle " ^ Reg.name r
  | Exit_thread -> "exit_thread"

let to_string (i : Insn.t) =
  match i with
  | Lab l -> l ^ ":"
  | Lda (d, disp, b) ->
    Printf.sprintf "\tlda %s, %d(%s)" (Reg.name d) disp (Reg.name b)
  | Opi (op, d, a, b) ->
    Printf.sprintf "\t%s %s, %s, %s" (iop_name op) (Reg.name b) (operand a)
      (Reg.name d)
  | Opf (op, d, a, b) ->
    Printf.sprintf "\t%s %s, %s, %s" (fop_name op) (Reg.fname a)
      (Reg.fname b) (Reg.fname d)
  | Ldl (d, disp, b) ->
    Printf.sprintf "\tldl %s, %d(%s)" (Reg.name d) disp (Reg.name b)
  | Ldq (d, disp, b) ->
    Printf.sprintf "\tldq %s, %d(%s)" (Reg.name d) disp (Reg.name b)
  | Ldq_u (d, disp, b) ->
    Printf.sprintf "\tldq_u %s, %d(%s)" (Reg.name d) disp (Reg.name b)
  | Extbl (d, a, b) ->
    Printf.sprintf "\textbl %s, %s, %s" (Reg.name a) (Reg.name b)
      (Reg.name d)
  | Stl (r, disp, b) ->
    Printf.sprintf "\tstl %s, %d(%s)" (Reg.name r) disp (Reg.name b)
  | Stq (r, disp, b) ->
    Printf.sprintf "\tstq %s, %d(%s)" (Reg.name r) disp (Reg.name b)
  | Ldt (f, disp, b) ->
    Printf.sprintf "\tldt %s, %d(%s)" (Reg.fname f) disp (Reg.name b)
  | Stt (f, disp, b) ->
    Printf.sprintf "\tstt %s, %d(%s)" (Reg.fname f) disp (Reg.name b)
  | Cvtqt (r, f) -> Printf.sprintf "\tcvtqt %s, %s" (Reg.name r) (Reg.fname f)
  | Cvttq (f, r) -> Printf.sprintf "\tcvttq %s, %s" (Reg.fname f) (Reg.name r)
  | Fmov (d, s) -> Printf.sprintf "\tfmov %s, %s" (Reg.fname s) (Reg.fname d)
  | Br l -> Printf.sprintf "\tbr %s" l
  | Bc (c, r, l) -> Printf.sprintf "\t%s %s, %s" (cond_name c) (Reg.name r) l
  | Fbeq (f, l) -> Printf.sprintf "\tfbeq %s, %s" (Reg.fname f) l
  | Fbne (f, l) -> Printf.sprintf "\tfbne %s, %s" (Reg.fname f) l
  | Jsr p -> Printf.sprintf "\tjsr %s" p
  | Ret -> "\tret"
  | Poll -> "\tpoll"
  | Call_load_miss { base; disp; refill } ->
    let dst =
      match refill with
      | Rint (r, sz) -> Reg.name r ^ "." ^ size_tag sz
      | Rflt f -> Reg.fname f
    in
    Printf.sprintf "\tcall_load_miss %d(%s) -> %s" disp (Reg.name base) dst
  | Call_store_miss { base; disp; ssize; store_done } ->
    Printf.sprintf "\tcall_store_miss.%s %d(%s)%s" (size_tag ssize) disp
      (Reg.name base)
      (if store_done then " (store done)" else "")
  | Call_batch_miss { ranges } ->
    let range (r : Insn.range) =
      let disps =
        List.map
          (fun (a : Insn.access) ->
            Printf.sprintf "%d%s" a.disp (if a.is_store then "w" else "r"))
          r.accesses
      in
      Printf.sprintf "%s:[%s]" (Reg.name r.rbase) (String.concat "," disps)
    in
    Printf.sprintf "\tcall_batch_miss %s"
      (String.concat " " (List.map range ranges))
  | Batch_end -> "\tbatch_end"
  | Rt_call rt -> "\t" ^ rt_name rt

let pp ppf i = Fmt.string ppf (to_string i)

let proc_to_string (p : Program.proc) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (p.pname ^ ":\n");
  List.iter
    (fun i ->
      Buffer.add_string buf (to_string i);
      Buffer.add_char buf '\n')
    p.body;
  Buffer.contents buf

let program_to_string (t : Program.t) =
  String.concat "\n" (List.map proc_to_string t.procs)
