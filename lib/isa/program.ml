(* Executable representation: a set of named procedures, each a flat
   instruction list with embedded labels, exactly the view a binary
   rewriter such as ATOM has of a linked program.  The instrumenter
   transforms these lists; the interpreter later freezes them to arrays
   with resolved label indices. *)

type proc = { pname : string; body : Insn.t list }

type t = { procs : proc list; entry : string }

let proc_exn t name =
  match List.find_opt (fun p -> p.pname = name) t.procs with
  | Some p -> p
  | None -> invalid_arg ("Program.proc_exn: unknown procedure " ^ name)

let entry_proc t = proc_exn t t.entry

(* Map a transformation over every procedure body. *)
let map_procs f t =
  { t with procs = List.map (fun p -> { p with body = f p }) t.procs }

(* --- source-location markers ---------------------------------------- *)

(* Zero-byte labels the MiniC compiler plants in front of every
   statement: "$src:<proc>:<n>".  They survive instrumentation like any
   other label (checks are inserted around them, never into them), are
   never branch targets, and let [Image.freeze] rebuild a statement
   table over the rewritten code so profiler sites render as fn:line. *)

let src_prefix = "$src:"

let src_marker ~pname n = Printf.sprintf "%s%s:%d" src_prefix pname n

let src_of_label l =
  let pl = String.length src_prefix in
  if String.length l > pl && String.sub l 0 pl = src_prefix then
    Some (String.sub l pl (String.length l - pl))
  else None

let text_bytes_proc p =
  List.fold_left (fun a i -> a + Insn.bytes i) 0 p.body

let text_bytes t =
  List.fold_left (fun a p -> a + text_bytes_proc p) 0 t.procs

(* Assign a text address to every procedure, starting at [base].
   Returns an association list proc-name -> start address. *)
let layout_text ~base t =
  let _, acc =
    List.fold_left
      (fun (addr, acc) p ->
        let next = addr + text_bytes_proc p in
        (* round each procedure start to a 64-byte boundary *)
        let next = (next + 63) land lnot 63 in
        (next, (p.pname, addr) :: acc))
      (base, []) t.procs
  in
  List.rev acc

(* Counts used by the instrumentation statistics (Table 3). *)
type counts = { loads : int; stores : int; insns : int }

let count_accesses t =
  List.fold_left
    (fun c p ->
      List.fold_left
        (fun c i ->
          { loads = (c.loads + if Insn.is_load i then 1 else 0);
            stores = (c.stores + if Insn.is_store i then 1 else 0);
            insns = (c.insns + if Insn.bytes i > 0 then 1 else 0) })
        c p.body)
    { loads = 0; stores = 0; insns = 0 }
    t.procs

(* Verify structural sanity: labels unique within a procedure, every
   branch target defined in the same procedure, every Jsr target a known
   procedure.  Raises [Invalid_argument] describing the first problem. *)
let validate t =
  let proc_names = List.map (fun p -> p.pname) t.procs in
  if not (List.mem t.entry proc_names) then
    invalid_arg ("Program.validate: missing entry " ^ t.entry);
  List.iter
    (fun p ->
      let labels = Hashtbl.create 16 in
      List.iter
        (fun i ->
          match i with
          | Insn.Lab l ->
            if Hashtbl.mem labels l then
              invalid_arg
                (Printf.sprintf "Program.validate: duplicate label %s in %s" l
                   p.pname);
            Hashtbl.add labels l ()
          | _ -> ())
        p.body;
      List.iter
        (fun i ->
          List.iter
            (fun l ->
              if not (Hashtbl.mem labels l) then
                invalid_arg
                  (Printf.sprintf
                     "Program.validate: undefined label %s in %s" l p.pname))
            (Insn.branch_targets i);
          match i with
          | Insn.Jsr callee ->
            if not (List.mem callee proc_names) then
              invalid_arg
                (Printf.sprintf
                   "Program.validate: call to unknown procedure %s from %s"
                   callee p.pname)
          | _ -> ())
        p.body)
    t.procs;
  t
