(** Executable representation: named procedures, each a flat instruction
    list with embedded labels — the view a binary rewriter such as ATOM
    has of a linked program. *)

type proc = { pname : string; body : Insn.t list }
type t = { procs : proc list; entry : string }

val proc_exn : t -> string -> proc
val entry_proc : t -> proc

val map_procs : (proc -> Insn.t list) -> t -> t
(** Rewrite every procedure body (how instrumentation passes apply). *)

val src_marker : pname:string -> int -> string
(** Label text of the [n]-th source-location marker of procedure
    [pname] — a zero-byte [Lab] the MiniC compiler plants before every
    statement so sites survive instrumentation. *)

val src_of_label : string -> string option
(** ["proc:line"] if the label is a source marker, [None] otherwise. *)

val text_bytes_proc : proc -> int
val text_bytes : t -> int

val layout_text : base:int -> t -> (string * int) list
(** Assign 64-byte-aligned text addresses to procedures. *)

type counts = { loads : int; stores : int; insns : int }

val count_accesses : t -> counts

val validate : t -> t
(** Check structural sanity (unique labels, defined branch targets,
    known callees, existing entry); raises [Invalid_argument]. *)
