(* Instruction set of the simulated target.

   The set is a compact subset of the Alpha ISA plus a handful of pseudo
   instructions that stand for calls into the Shasta runtime (miss
   handlers, polling, synchronization).  In the real system those calls
   are ordinary code reached through a `jsr`; here they are single
   opcodes whose cost is charged explicitly by the timing model, so the
   common-case (no-miss) instruction counts — what Tables 1 and 2 of the
   paper measure — are carried entirely by genuine instructions. *)

type label = string

type size = Long | Quad

(* Integer ALU operations.  The -l forms operate on the low 32 bits and
   sign-extend the result, as on the Alpha.  Divq/Remq are pseudo-ops
   (the Alpha has no integer divide; the compiler would call a millicode
   routine) and are charged a high latency by the timing model. *)
type iop =
  | Addq | Subq | Mulq | Divq | Remq
  | Addl | Subl | Mull
  | And_ | Or_ | Xor_
  | Sll | Srl | Sra
  | Cmpeq | Cmplt | Cmple | Cmpult | Cmpule

type fop = Addt | Subt | Mult | Divt | Sqrtt | Cmpteq | Cmptlt | Cmptle

type operand = Reg of Reg.ireg | Imm of int

(* Branch conditions on an integer register. *)
type cond = Eq | Ne | Lt | Le | Gt | Ge | Lbs | Lbc

(* Destination to refill after a load miss is serviced. *)
type refill = Rint of Reg.ireg * size | Rflt of Reg.freg

(* One access inside a batch: displacement off the batch base register. *)
type access = { disp : int; asize : size; is_store : bool }

(* One base-register range of a batch (Section 3.4): every access uses
   the same base register, unmodified during the batch. *)
type range = { rbase : Reg.ireg; accesses : access list }

type batch = { ranges : range list }

(* Runtime (protocol library) entry points exposed to compiled code. *)
type rt =
  | Malloc of { size : Reg.ireg; bsize : Reg.ireg; dest : Reg.ireg }
    (* bsize = block size request; register holding 0 means "use the
       allocation-size heuristic" of Section 4.2. *)
  | Malloc_priv of { size : Reg.ireg; dest : Reg.ireg }
    (* private (per-node, unshared) heap allocation; such pointers are
       below the shared range and exercise the dynamic range check *)
  | Lock of Reg.ireg
  | Unlock of Reg.ireg
  | Barrier
  | Flag_set of Reg.ireg
  | Flag_wait of Reg.ireg
  | Print_int of Reg.ireg
  | Print_float of Reg.freg
  | Rdcycle of Reg.ireg
    (* dest <- the node's current cycle counter; stands for reading the
       Alpha's processor cycle counter (rpcc), used by workload drivers
       to timestamp operations in simulated time *)
  | Exit_thread

type t =
  | Lab of label
  | Lda of Reg.ireg * int * Reg.ireg            (* rd <- rb + disp *)
  | Opi of iop * Reg.ireg * operand * Reg.ireg  (* rd <- ra op rb/imm *)
  | Opf of fop * Reg.freg * Reg.freg * Reg.freg
  | Ldl of Reg.ireg * int * Reg.ireg
  | Ldq of Reg.ireg * int * Reg.ireg
  | Ldq_u of Reg.ireg * int * Reg.ireg          (* aligned quad load *)
  | Extbl of Reg.ireg * Reg.ireg * Reg.ireg     (* rd <- byte (ra >> 8*(rb&7)) *)
  | Stl of Reg.ireg * int * Reg.ireg
  | Stq of Reg.ireg * int * Reg.ireg
  | Ldt of Reg.freg * int * Reg.ireg
  | Stt of Reg.freg * int * Reg.ireg
  | Cvtqt of Reg.ireg * Reg.freg                (* int -> double *)
  | Cvttq of Reg.freg * Reg.ireg                (* double -> int, truncating *)
  | Fmov of Reg.freg * Reg.freg
  | Br of label
  | Bc of cond * Reg.ireg * label
  | Fbeq of Reg.freg * label
  | Fbne of Reg.freg * label
  | Jsr of string                               (* direct call by name *)
  | Ret
  (* Shasta runtime pseudo-instructions. *)
  | Poll
  | Call_load_miss of { base : Reg.ireg; disp : int; refill : refill }
  | Call_store_miss of { base : Reg.ireg; disp : int; ssize : size;
                         store_done : bool }
  | Call_batch_miss of batch
  | Batch_end
  | Rt_call of rt

(* Instruction size in bytes, used for text layout and the I-cache
   model.  Labels and batch-end markers occupy no space; the handler
   call pseudo-ops stand for a short two-instruction calling sequence. *)
let bytes = function
  | Lab _ | Batch_end -> 0
  | Call_load_miss _ | Call_store_miss _ | Call_batch_miss _ -> 8
  | Poll -> 12 (* three instructions: address setup, load, branch *)
  | _ -> 4

let is_load = function
  | Ldl _ | Ldq _ | Ldq_u _ | Ldt _ -> true
  | _ -> false

let is_store = function Stl _ | Stq _ | Stt _ -> true | _ -> false
let is_mem i = is_load i || is_store i

(* Base register and displacement of a memory access. *)
let mem_operand = function
  | Ldl (_, d, b) | Ldq (_, d, b) | Ldq_u (_, d, b)
  | Stl (_, d, b) | Stq (_, d, b) -> Some (b, d)
  | Ldt (_, d, b) | Stt (_, d, b) -> Some (b, d)
  | _ -> None

let mem_size = function
  | Ldl _ | Stl _ -> Some Long
  | Ldq _ | Ldq_u _ | Stq _ -> Some Quad
  | Ldt _ | Stt _ -> Some Quad
  | _ -> None

(* Integer registers read by an instruction. *)
let uses = function
  | Lab _ | Br _ | Ret | Poll | Batch_end -> []
  | Lda (_, _, b) -> [ b ]
  | Opi (_, _, ra, rb) ->
    (match ra with Reg r -> [ r; rb ] | Imm _ -> [ rb ])
  | Opf _ -> []
  | Ldl (_, _, b) | Ldq (_, _, b) | Ldq_u (_, _, b) | Ldt (_, _, b) -> [ b ]
  | Extbl (_, ra, rb) -> [ ra; rb ]
  | Stl (r, _, b) | Stq (r, _, b) -> [ r; b ]
  | Stt (_, _, b) -> [ b ]
  | Cvtqt (r, _) -> [ r ]
  | Cvttq _ | Fmov _ -> []
  | Bc (_, r, _) -> [ r ]
  | Fbeq _ | Fbne _ -> []
  | Jsr _ -> [ 16; 17; 18; 19; 20; 21 ] (* conservatively: argument regs *)
  | Call_load_miss { base; _ } -> [ base ]
  | Call_store_miss { base; _ } -> [ base ]
  | Call_batch_miss { ranges } -> List.map (fun r -> r.rbase) ranges
  | Rt_call rt ->
    (match rt with
     | Malloc { size; bsize; _ } -> [ size; bsize ]
     | Malloc_priv { size; _ } -> [ size ]
     | Lock r | Unlock r | Flag_set r | Flag_wait r | Print_int r -> [ r ]
     | Barrier | Print_float _ | Rdcycle _ | Exit_thread -> [])

(* Integer register written by an instruction, if any. *)
let def = function
  | Lda (d, _, _) -> Some d
  | Opi (_, d, _, _) -> Some d
  | Ldl (d, _, _) | Ldq (d, _, _) | Ldq_u (d, _, _) -> Some d
  | Extbl (d, _, _) -> Some d
  | Cvttq (_, d) -> Some d
  | Jsr _ -> Some Reg.rv (* plus temps; see Liveness for call handling *)
  | Call_load_miss { refill = Rint (d, _); _ } -> Some d
  | Rt_call (Malloc { dest; _ }) -> Some dest
  | Rt_call (Malloc_priv { dest; _ }) -> Some dest
  | Rt_call (Rdcycle dest) -> Some dest
  | _ -> None

let fuses = function
  | Opf (_, _, fa, fb) -> [ fa; fb ]
  | Stt (f, _, _) -> [ f ]
  | Cvttq (f, _) -> [ f ]
  | Fmov (_, f) -> [ f ]
  | Fbeq (f, _) | Fbne (f, _) -> [ f ]
  | Rt_call (Print_float f) -> [ f ]
  | _ -> []

let fdef = function
  | Opf (_, fd, _, _) -> Some fd
  | Ldt (fd, _, _) -> Some fd
  | Cvtqt (_, fd) -> Some fd
  | Fmov (fd, _) -> Some fd
  | Call_load_miss { refill = Rflt fd; _ } -> Some fd
  | _ -> None

(* Labels an instruction may branch to. *)
let branch_targets = function
  | Br l | Bc (_, _, l) | Fbeq (_, l) | Fbne (_, l) -> [ l ]
  | _ -> []

(* Does control fall through to the next instruction? *)
let falls_through = function
  | Br _ | Ret | Rt_call Exit_thread -> false
  | _ -> true

let is_branch = function
  | Br _ | Bc _ | Fbeq _ | Fbne _ -> true
  | _ -> false

let is_call = function Jsr _ -> true | _ -> false
