(* Sets of node ids under a configurable directory organization.

   The pure protocol core historically represented every node set — a
   directory entry's sharer vector, the barrier-arrival mask, the
   crashed/halted masks — as one OCaml [int] bitmask, which caps the
   simulator at [Sys.int_size - 2] processors and charges every
   directory entry the full-map storage cost the paper's critics point
   at.  This module abstracts the representation behind three classic
   directory organizations:

   - [Full]: the exact full-map bit vector (the seed behaviour, and the
     default — byte-identical traces).
   - [Limited k]: k exact pointers; adding a (k+1)-th distinct member
     overflows to broadcast, i.e. the set becomes the SUPERSET of all
     nodes.  Correct because the protocol only ever uses sharer sets to
     send invalidations, and a spurious invalidation is acknowledged
     and absorbed at every receiver state.
   - [Coarse g]: a coarse bit vector where bit i stands for the region
     of g consecutive nodes [i*g, i*g+g).  Also a superset scheme.

   Inexact representations still support exact [remove] (needed by
   crash recovery, which must strike a dead node from every set): the
   broadcast and coarse forms carry an explicit exclusion list.

   All list components are kept sorted, so structurally equal values
   denote equal sets reached by any operation order — required by the
   model checker's canonical-string state dedup. *)

(* Bits usable in one int mask: one bit reserved for the sign, one kept
   free so [(1 lsl n) - 1] style arithmetic in callers can never hit
   the sign bit. *)
let max_bits = Sys.int_size - 2

type mode = Full | Limited of int | Coarse of int

type t =
  | Bits of int (* exact bitmask *)
  | Ptrs of { k : int; n : int; ps : int list }
    (* exact sorted pointer list, |ps| <= k; k = max_int doubles as the
       unbounded exact fallback for nprocs beyond [max_bits] *)
  | Bcast of { n : int; excl : int list }
    (* limited-pointer overflow: {0..n-1} minus the sorted exclusions *)
  | Cv of { g : int; n : int; bits : int; excl : int list }
    (* coarse vector: union of g-wide regions minus sorted exclusions *)

(* --- bit iteration (popcount-style, no O(nprocs) scan) -------------- *)

(* Number of trailing zeros of a one-hot word, by binary search. *)
let ntz m =
  let k = ref 0 and m = ref m in
  if !m land 0xFFFFFFFF = 0 then begin k := !k + 32; m := !m lsr 32 end;
  if !m land 0xFFFF = 0 then begin k := !k + 16; m := !m lsr 16 end;
  if !m land 0xFF = 0 then begin k := !k + 8; m := !m lsr 8 end;
  if !m land 0xF = 0 then begin k := !k + 4; m := !m lsr 4 end;
  if !m land 0x3 = 0 then begin k := !k + 2; m := !m lsr 2 end;
  if !m land 0x1 = 0 then incr k;
  !k

(* Visit the set bits of [m] in ascending order, peeling the lowest set
   bit each round — cost proportional to the population count, not to
   nprocs. *)
let iter_bits f m =
  let m = ref m in
  while !m <> 0 do
    let low = !m land (- !m) in
    f (ntz low);
    m := !m lxor low
  done

let popcount m =
  let rec go m acc = if m = 0 then acc else go (m land (m - 1)) (acc + 1) in
  go m 0

(* --- sorted-list helpers -------------------------------------------- *)

let rec sorted_insert x = function
  | [] -> [ x ]
  | y :: _ as l when x < y -> x :: l
  | y :: _ as l when x = y -> l
  | y :: rest -> y :: sorted_insert x rest

(* --- construction ---------------------------------------------------- *)

let empty mode ~nprocs =
  match mode with
  | Full -> Bits 0
  | Limited k -> Ptrs { k; n = nprocs; ps = [] }
  | Coarse g -> Cv { g; n = nprocs; bits = 0; excl = [] }

(* An exact set regardless of directory mode — for the masks that must
   never over-approximate (barrier arrivals, crashed, halted). *)
let exact_empty ~nprocs =
  if nprocs <= max_bits then Bits 0
  else Ptrs { k = max_int; n = nprocs; ps = [] }

(* --- queries --------------------------------------------------------- *)

let mem t x =
  match t with
  | Bits m -> m land (1 lsl x) <> 0
  | Ptrs { ps; _ } -> List.mem x ps
  | Bcast { n; excl } -> x >= 0 && x < n && not (List.mem x excl)
  | Cv { g; n; bits; excl } ->
    x >= 0 && x < n
    && bits land (1 lsl (x / g)) <> 0
    && not (List.mem x excl)

let cardinal t =
  match t with
  | Bits m -> popcount m
  | Ptrs { ps; _ } -> List.length ps
  | Bcast { n; excl } -> n - List.length excl
  | Cv { g; n; bits; excl } ->
    (* exclusions are always inside covered regions, so the difference
       is the exact member count *)
    let c = ref 0 in
    iter_bits (fun r -> c := !c + min ((r + 1) * g) n - (r * g)) bits;
    !c - List.length excl

let is_empty t =
  match t with
  | Bits m -> m = 0
  | Ptrs { ps; _ } -> ps = []
  | Bcast _ | Cv _ -> cardinal t = 0

(* Members in ascending order. *)
let iter f t =
  match t with
  | Bits m -> iter_bits f m
  | Ptrs { ps; _ } -> List.iter f ps
  | Bcast { n; excl } ->
    for x = 0 to n - 1 do
      if not (List.mem x excl) then f x
    done
  | Cv { g; n; bits; excl } ->
    iter_bits
      (fun r ->
        let hi = min ((r + 1) * g) n in
        for x = r * g to hi - 1 do
          if not (List.mem x excl) then f x
        done)
      bits

let fold f t acc =
  let acc = ref acc in
  iter (fun x -> acc := f x !acc) t;
  !acc

let to_list t = List.rev (fold (fun x l -> x :: l) t [])

(* --- updates --------------------------------------------------------- *)

let add t x =
  match t with
  | Bits m -> Bits (m lor (1 lsl x))
  | Ptrs { k; n; ps } ->
    if List.mem x ps then t
    else if List.length ps < k then Ptrs { k; n; ps = sorted_insert x ps }
    else Bcast { n; excl = [] } (* i-pointer overflow => broadcast *)
  | Bcast { n; excl } ->
    if List.mem x excl then Bcast { n; excl = List.filter (( <> ) x) excl }
    else t
  | Cv { g; n; bits; excl } ->
    Cv
      { g; n;
        bits = bits lor (1 lsl (x / g));
        excl = List.filter (( <> ) x) excl }

let remove t x =
  match t with
  | Bits m -> Bits (m land lnot (1 lsl x))
  | Ptrs { k; n; ps } -> Ptrs { k; n; ps = List.filter (( <> ) x) ps }
  | Bcast { n; excl } ->
    if x >= 0 && x < n && not (List.mem x excl) then
      Bcast { n; excl = sorted_insert x excl }
    else t
  | Cv { g; n; bits; excl } ->
    if
      x >= 0 && x < n
      && bits land (1 lsl (x / g)) <> 0
      && not (List.mem x excl)
    then Cv { g; n; bits; excl = sorted_insert x excl }
    else t

let singleton mode ~nprocs x = add (empty mode ~nprocs) x

(* --- relations ------------------------------------------------------- *)

let subset a b = List.for_all (mem b) (to_list a)
let disjoint a b = not (List.exists (mem b) (to_list a))
let equal_members a b = to_list a = to_list b

(* --- representation probes ------------------------------------------ *)

(* [true] when membership is exact (no over-approximation possible). *)
let is_exact = function
  | Bits _ | Ptrs _ -> true
  | Bcast _ -> false
  | Cv { g; _ } -> g <= 1

let as_bits = function Bits m -> Some m | _ -> None

(* Collapse to an int bitmask (members must fit below [Sys.int_size]). *)
let to_mask t = fold (fun x m -> m lor (1 lsl x)) t 0

(* Canonical rendering: equal strings <=> structurally equal values.
   The leading character disambiguates representations so the model
   checker's visited set never conflates them. *)
let to_string t =
  let ints l = String.concat "," (List.map string_of_int l) in
  match t with
  | Bits m -> Printf.sprintf "%x" m
  | Ptrs { ps; _ } -> Printf.sprintf "P(%s)" (ints ps)
  | Bcast { excl; _ } -> Printf.sprintf "*(-%s)" (ints excl)
  | Cv { g; bits; excl; _ } -> Printf.sprintf "C%d(%x;-%s)" g bits (ints excl)

(* --- mode plumbing --------------------------------------------------- *)

let capacity = function
  | Full -> max_bits
  | Limited _ -> max_int (* overflow-to-broadcast scales to any nprocs *)
  | Coarse g -> g * max_bits

let mode_name = function
  | Full -> "full"
  | Limited k -> Printf.sprintf "limited:%d" k
  | Coarse g -> Printf.sprintf "coarse:%d" g

let mode_of_string s =
  let parse_param name p default =
    match p with
    | None -> Ok default
    | Some p -> (
      match int_of_string_opt p with
      | Some v when v >= 1 -> Ok v
      | _ -> Error (Printf.sprintf "%s parameter must be a positive int" name))
  in
  let base, param =
    match String.index_opt s ':' with
    | None -> (s, None)
    | Some i ->
      ( String.sub s 0 i,
        Some (String.sub s (i + 1) (String.length s - i - 1)) )
  in
  match base with
  | "full" -> (
    match param with
    | None -> Ok Full
    | Some _ -> Error "full takes no parameter")
  | "limited" ->
    Result.map (fun k -> Limited k) (parse_param "limited" param 4)
  | "coarse" ->
    Result.map (fun g -> Coarse g) (parse_param "coarse" param 4)
  | _ ->
    Error
      (Printf.sprintf
         "unknown directory mode %S (expected full, limited[:K], coarse[:G])"
         s)

(* Reject configurations whose node sets cannot represent all of
   [nprocs] — the guard for the historical silent int-mask wraparound. *)
let validate mode ~nprocs =
  if nprocs < 1 then Error (Printf.sprintf "nprocs must be >= 1, got %d" nprocs)
  else
    match mode with
    | Full when nprocs > max_bits ->
      Error
        (Printf.sprintf
           "nprocs %d exceeds the full-map directory capacity of %d \
            (an int bitmask); use --dir-mode limited[:K] or coarse[:G]"
           nprocs max_bits)
    | Limited k when k < 1 ->
      Error (Printf.sprintf "limited-pointer count must be >= 1, got %d" k)
    | Coarse g when g < 1 ->
      Error (Printf.sprintf "coarse-vector region must be >= 1, got %d" g)
    | Coarse g when nprocs > g * max_bits ->
      Error
        (Printf.sprintf
           "nprocs %d exceeds the coarse-vector capacity %d (region %d x %d \
            bits); raise the region size"
           nprocs (g * max_bits) g max_bits)
    | _ -> Ok ()
