(* Directory state (Section 2.1 of the paper).

   Per block, the home node keeps (i) a pointer to the current owner —
   the last node that held an exclusive copy, guaranteed to be able to
   service a forwarded request — and (ii) a node set of the nodes
   sharing the data, represented under the configured directory
   organization ([Nodeset.mode]: full-map, limited-pointer with
   overflow-to-broadcast, or coarse vector).  Dirty sharing is
   supported: the home's own memory need not be up to date; whether the
   home has a valid copy is exactly "home is in the sharer set or home
   is the owner and still valid", which the engine tracks through the
   sharer set (the owner stays a member while its copy is valid).

   Homes are assigned to virtual pages round-robin by default and can
   be placed explicitly (Section 2.1). *)

type entry = {
  mutable owner : int;
  mutable sharers : Nodeset.t; (* includes the owner while valid *)
}

type t = {
  nprocs : int;
  mode : Nodeset.mode;
  entries : (int, entry) Hashtbl.t; (* block base -> entry *)
  home_override : (int, int) Hashtbl.t; (* page -> home *)
  page_bytes : int;
}

let create ?(page_bytes = 8192) ?(mode = Nodeset.Full) ~nprocs () =
  (match Nodeset.validate mode ~nprocs with
   | Ok () -> ()
   | Error e -> invalid_arg ("Directory.create: " ^ e));
  { nprocs; mode; entries = Hashtbl.create 4096;
    home_override = Hashtbl.create 16; page_bytes }

let home_of t addr =
  let page = addr / t.page_bytes in
  match Hashtbl.find_opt t.home_override page with
  | Some h -> h
  | None -> page mod t.nprocs

let set_home t ~page ~home =
  if home < 0 || home >= t.nprocs then invalid_arg "Directory.set_home";
  Hashtbl.replace t.home_override page home

(* Create the entry for a freshly allocated block, owned exclusively by
   [owner]. *)
let add_block t ~block ~owner =
  Hashtbl.replace t.entries block
    { owner; sharers = Nodeset.singleton t.mode ~nprocs:t.nprocs owner }

let entry t block =
  match Hashtbl.find_opt t.entries block with
  | Some e -> e
  | None ->
    invalid_arg
      (Printf.sprintf "Directory.entry: unallocated block 0x%x" block)

let mem t block = Hashtbl.mem t.entries block

let is_sharer e node = Nodeset.mem e.sharers node
let add_sharer e node = e.sharers <- Nodeset.add e.sharers node
let remove_sharer e node = e.sharers <- Nodeset.remove e.sharers node

let sharer_list e ~nprocs:_ = Nodeset.to_list e.sharers

let sharer_count e = Nodeset.cardinal e.sharers

let iter t f = Hashtbl.iter f t.entries

let blocks t = Hashtbl.length t.entries
