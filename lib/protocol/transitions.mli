(* Pure protocol transition core.

   [step] is the entire Shasta coherence/synchronization protocol as a
   pure function over an immutable [view]; the runtime engine interprets
   the returned [action] list against Pipeline/Network/Memory, and the
   model checker ([lib/mcheck]) and the deterministic-replay driver
   (shasta_run --replay) drive [step] directly.  Types are transparent
   so checkers can build and inspect views. *)

module Imap : Map.S with type key = int

type line = L_invalid | L_shared | L_exclusive | L_pending_invalid
          | L_pending_shared

type pending_kind = P_read | P_readex | P_upgrade

type pend = {
  pkind : pending_kind;
  written : int Imap.t;
  invalidated : bool;
}

type ackst = { got : int; expected : int option }

type wait = W_blocks of int list | W_release | W_sync

type resume =
  | R_none
  | R_refill
  | R_store_retry of { addr : int; bytes : int; store_done : bool }
  | R_store_commit of { then_release : bool }
  | R_then_release
  | R_done
  | R_lock_acquired of int
  | R_unlock of int
  | R_barrier_enter
  | R_barrier_passed
  | R_flag_set of int
  | R_flag_woken of int

type nstatus = N_running | N_waiting of wait

type deferred = D_inv of int | D_downgrade of int

type nview = {
  lines : line Imap.t;
  pending : pend Imap.t;
  acks : ackst Imap.t;
  unacked : int;
  waiters : Message.t list Imap.t;
  deferred : deferred list;
  in_batch : bool;
  nstat : nstatus;
  resume : resume;
  sync_signal : bool;
}

type dirent = { owner : int; sharers : Nodeset.t }
type lockst = { holder : int option; lq : int list }
type flagst = { fset : bool; fwaiters : int list }

type view = {
  dir : dirent Imap.t;
  nodes : nview Imap.t;
  locks : lockst Imap.t;
  flags : flagst Imap.t;
  barrier_arrived : Nodeset.t; (* nodes waiting at the barrier (exact) *)
  crashed : Nodeset.t; (* currently-down nodes *)
  halted : Nodeset.t; (* ever-crashed nodes (monotone): a recovered
                         node serves the protocol again but its program
                         is gone, so barriers excuse it permanently *)
  homes : int Imap.t; (* page -> home override (placement/migration) *)
  heat : (int * int) Imap.t; (* page -> (last remote requester, streak) *)
  brelease : Nodeset.t; (* tree barrier: nodes the release wave owes *)
}

type cfg = {
  nprocs : int;
  page_bytes : int;
  sc : bool;
  dmode : Nodeset.mode; (* directory organization for sharer sets *)
  scalable_sync : bool; (* queue locks + combining-tree barrier *)
  migrate : bool; (* hot-page directory-home migration *)
}

type cost =
  | Request_issue
  | Message_handle
  | Sync_local
  | False_miss
  | Batch_record of int

type counter =
  | C_read_miss
  | C_write_miss
  | C_upgrade_miss
  | C_batch_miss
  | C_false_miss
  | C_msg_handled
  | C_lock_acquire
  | C_barrier_passed
  | C_store_reissue

type miss_kind = MK_read | MK_write | MK_upgrade

type ev =
  | E_miss of miss_kind * int
  | E_false_miss of int
  | E_invalidated of { block : int; requester : int }
  | E_downgraded of { block : int; requester : int }
  | E_store_reissue of int
  | E_batch_run of { nranges : int; waited : int }
  | E_lock_acquired of int
  | E_barrier_passed
  | E_flag_raised of int
  | E_flag_woken of int
  | E_lease_takeover of { id : int; from : int }
  | E_dir_rebuild of { block : int; from : int }
  | E_home_migrated of { page : int; to_ : int }

type memop =
  | M_make_exclusive of int
  | M_make_shared of int
  | M_make_invalid of int
  | M_make_pending of { block : int; shared : bool }
  | M_flag of { block : int; keep : int list }
  | M_merge of { block : int; written : (int * int) list }
  | M_adopt of { block : int; from : int }
    (* crash salvage: copy the block's bytes out of dead node [from]'s
       frozen memory image into the acting node's memory (no line-state
       change) *)

type post =
  | P_register_acks of { block : int; acks : int }
  | P_flush_waiters of int
  | P_invalidate_flush of int
  | P_check_wake

type action =
  | A_charge of cost
  | A_count of counter
  | A_emit of ev
  | A_send of { dst : int; msg : Message.t }
  | A_local of Message.t
  | A_mem of memop
  | A_block of wait
  | A_stall of wait
  | A_refill
  | A_commit_store
  | A_reenter_store of
      { addr : int; bytes : int; store_done : bool; post : post list }

type input =
  | I_msg of Message.t
  | I_load_miss of { addr : int; block : int; st : line }
  | I_store_miss of
      { addr : int; block : int; st : line; bytes : int; store_done : bool;
        stored : (int * int) list }
  | I_batch_miss of
      { nranges : int;
        blocks : (int * bool * line) list;
        stores : (int * int) list }
  | I_batch_end of
      { values : (int * int * int) list; order : deferred list }
  | I_lock of int
  | I_unlock of int
  | I_barrier
  | I_flag_set of int
  | I_flag_wait of int
  | I_alloc of { owner : int; blocks : int list }
  | I_set_home of { page : int; home : int }
    (* install a home-placement override for [page] (first-touch or
       profile-guided policies) *)
  | I_continue of post list
  | I_node_crash of { victim : int; lost : (int * Message.t) list }
    (* stepped at a surviving coordinator: marks [victim] dead,
       reconstructs directory entries it owned, reclaims its locks by
       lease takeover, and re-dispatches/answers the purged [lost]
       frames ([(dst, msg)] in send order) on its behalf *)
  | I_node_recover of int

val empty_nview : nview
val init : cfg -> view

(* The transition function.  Applying the returned actions in order
   against the machine reproduces the historical engine's effect order
   exactly.  An [A_reenter_store] is always the LAST action: the step
   was truncated and the interpreter must re-enter the store-miss path,
   then resume the carried [post] list via [I_continue]. *)
val step : cfg -> view -> node:int -> input -> action list * view

val home_of : cfg -> int -> int
(* Natural (round-robin) home of a block, ignoring overrides. *)

val home_for : cfg -> view -> int -> int
(* Effective home of a block under placement policies: the homes
   override when installed, else the natural round-robin home. *)

val route : cfg -> view -> int -> int
(* Crash routing: the given home, or its ring successor among live
   nodes while it is crashed.  Identity when nothing is crashed. *)

val tree_fanout : int
(* Combining-tree barrier arity (scalable_sync). *)

(* Accessors *)
val node_view : view -> node:int -> nview
val deferred_of : view -> node:int -> deferred list
val line_state : view -> node:int -> block:int -> line
val is_pending : view -> node:int -> block:int -> bool
val in_batch : view -> node:int -> bool
val dir_entry : view -> block:int -> dirent option
val dir_fold : (int -> dirent -> 'a -> 'a) -> view -> 'a -> 'a
val wait_satisfied : view -> node:int -> wait -> bool
val crashed_mask : view -> int
val halted_mask : view -> int
val is_live : view -> node:int -> bool

val locks_held_by : view -> node:int -> int list
(** Lock ids whose holder is [node], ascending. *)

val is_sharer : dirent -> int -> bool
val sharer_list : dirent -> nprocs:int -> int list
val sharer_count : dirent -> int

(* Invariant checking: [] means consistent.  [invariants] holds in every
   reachable view (but only after any pending [I_continue] has run);
   [quiescent_invariants] additionally requires all activity drained. *)
val invariants : cfg -> view -> string list
val quiescent_invariants : cfg -> view -> string list

(* Canonical string: equal strings <=> equal views (map-shape
   independent).  Visited-set keys and replay comparison. *)
val canon : view -> string

val string_of_wait : wait -> string
val string_of_ev : ev -> string
val string_of_action : action -> string
val string_of_input : input -> string
