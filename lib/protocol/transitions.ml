(* The pure protocol transition core.

   Everything the Shasta engine decides — directory updates, pending and
   invalidation-ack bookkeeping, waiter deferral, sync objects — lives
   here as a pure function

       step : cfg -> view -> node:int -> input -> action list * view

   over an immutable [view].  Inputs are miss-check outcomes, protocol
   messages and sync ops; effects (network sends, pipeline charges,
   state-table writes, observability events, blocking/waking) come back
   as an ordered [action] list for the runtime interpreter
   ([Engine]) to apply against Pipeline/Network/Memory.  The ordering
   contract is strict: applying the actions left to right reproduces the
   exact effect order of the historical monolithic engine, so event
   streams and cycle counts are byte-for-byte identical.

   Because the core is pure it can also be driven without a machine
   underneath: [lib/mcheck] explores all interleavings of small
   configurations against the invariants below, and the recorded input
   trace of a real run can be re-fed through [step] to reproduce the
   final view deterministically (shasta_run --replay).

   Two host artifacts are passed IN as inputs rather than recomputed,
   to keep bit-exact fidelity with the old engine: the per-block
   iteration order of a batch miss and the dedup order of deferred
   invalidations (both historically OCaml-Hashtbl orders), and the
   memory values of batched stores (the core holds no data memory). *)

module Imap = Map.Make (Int)
module Ns = Nodeset

(* ------------------------------------------------------------------ *)
(* State                                                                *)
(* ------------------------------------------------------------------ *)

(* Per-block line state as the state table sees it (one byte per line in
   the real tables; the core tracks it per block, which is exact because
   every table write the engine performs covers whole blocks). *)
type line = L_invalid | L_shared | L_exclusive | L_pending_invalid
          | L_pending_shared

type pending_kind = P_read | P_readex | P_upgrade

type pend = {
  pkind : pending_kind;
  written : int Imap.t; (* longword addr -> value stored while pending *)
  invalidated : bool; (* an Inv overtook the reply *)
}

type ackst = { got : int; expected : int option }

type wait =
  | W_blocks of int list (* until none of these blocks is pending *)
  | W_release (* until no pending blocks and no outstanding acks *)
  | W_sync (* until a synchronization signal (grant/release/wake) *)

(* What to run when the current wait is satisfied — the pure analogue of
   the engine's [on_wake] continuation closures. *)
type resume =
  | R_none
  | R_refill (* re-run the stalled load (interpreter-side closure) *)
  | R_store_retry of { addr : int; bytes : int; store_done : bool }
  | R_store_commit of { then_release : bool }
    (* stalled non-scheduled store: commit its memory effect first, so
       the value is visible before any queued request is served *)
  | R_then_release (* SC store/batch: now wait for the release point *)
  | R_done
  | R_lock_acquired of int
  | R_unlock of int
  | R_barrier_enter
  | R_barrier_passed
  | R_flag_set of int
  | R_flag_woken of int

type nstatus = N_running | N_waiting of wait

(* Invalidations/downgrades deferred while inside batched code
   (Section 4.3): applied at the Batch_end marker. *)
type deferred = D_inv of int | D_downgrade of int

type nview = {
  lines : line Imap.t; (* block base -> state (absent = invalid) *)
  pending : pend Imap.t; (* block base -> pending request *)
  acks : ackst Imap.t; (* block base -> outstanding invalidation acks *)
  unacked : int; (* #blocks with incomplete invalidation acks *)
  waiters : Message.t list Imap.t; (* deferred fwd requests, head oldest *)
  deferred : deferred list; (* head newest, as in the engine *)
  in_batch : bool;
  nstat : nstatus;
  resume : resume;
  sync_signal : bool;
}

type dirent = { owner : int; sharers : Ns.t (* node set, incl. owner *) }
type lockst = { holder : int option; lq : int list (* head next *) }
type flagst = { fset : bool; fwaiters : int list (* head oldest *) }

type view = {
  dir : dirent Imap.t; (* block base -> directory entry *)
  nodes : nview Imap.t;
  locks : lockst Imap.t;
  flags : flagst Imap.t;
  barrier_arrived : Ns.t; (* nodes waiting at the barrier (exact) *)
  crashed : Ns.t; (* currently-down nodes (home duties routed around
                     them; sends to them are suppressed) *)
  halted : Ns.t; (* ever-crashed nodes.  Monotone — a recovered node
                    resumes protocol duties (crashed bit cleared) but
                    its program died with it, so barriers treat it as
                    permanently arrived. *)
  homes : int Imap.t; (* page -> home override (policy-driven placement
                         and hot-page migration); absent = round-robin *)
  heat : (int * int) Imap.t; (* page -> (last remote requester, streak)
                                — only populated under [cfg.migrate] *)
  brelease : Ns.t; (* combining-tree barrier: nodes the current release
                      wave still has to reach (empty under centralized
                      sync) *)
}

type cfg = {
  nprocs : int;
  page_bytes : int; (* home assignment: (block / page_bytes) mod nprocs *)
  sc : bool; (* sequential consistency (stalling stores) *)
  dmode : Ns.mode; (* directory organization for sharer sets *)
  scalable_sync : bool; (* MCS-style queue locks + combining-tree
                           barrier instead of centralized home sync *)
  migrate : bool; (* migrate a page's home to a persistently remote
                     requester (directory-entry migration) *)
}

let empty_nview =
  { lines = Imap.empty; pending = Imap.empty; acks = Imap.empty; unacked = 0;
    waiters = Imap.empty; deferred = []; in_batch = false; nstat = N_running;
    resume = R_none; sync_signal = false }

let init (cfg : cfg) : view =
  let nodes = ref Imap.empty in
  for n = 0 to cfg.nprocs - 1 do
    nodes := Imap.add n empty_nview !nodes
  done;
  let e = Ns.exact_empty ~nprocs:cfg.nprocs in
  { dir = Imap.empty; nodes = !nodes; locks = Imap.empty; flags = Imap.empty;
    barrier_arrived = e; crashed = e; halted = e;
    homes = Imap.empty; heat = Imap.empty; brelease = e }

(* ------------------------------------------------------------------ *)
(* Actions and inputs                                                   *)
(* ------------------------------------------------------------------ *)

(* Symbolic pipeline charges — the interpreter owns the cycle values. *)
type cost =
  | Request_issue
  | Message_handle
  | Sync_local
  | False_miss
  | Batch_record of int (* nranges *)

type counter =
  | C_read_miss
  | C_write_miss
  | C_upgrade_miss
  | C_batch_miss
  | C_false_miss
  | C_msg_handled
  | C_lock_acquire
  | C_barrier_passed
  | C_store_reissue

type miss_kind = MK_read | MK_write | MK_upgrade

(* Observability events, mirrored to Shasta_obs.Event by the engine. *)
type ev =
  | E_miss of miss_kind * int (* access addr *)
  | E_false_miss of int
  | E_invalidated of { block : int; requester : int }
  | E_downgraded of { block : int; requester : int }
  | E_store_reissue of int
  | E_batch_run of { nranges : int; waited : int }
  | E_lock_acquired of int
  | E_barrier_passed
  | E_flag_raised of int
  | E_flag_woken of int
  | E_lease_takeover of { id : int; from : int }
    (* a lock held by crashed node [from] was reclaimed for its waiters *)
  | E_dir_rebuild of { block : int; from : int }
    (* a directory entry involving crashed node [from] was repaired *)
  | E_home_migrated of { page : int; to_ : int }
    (* hot-page migration: the page's directory home moved to a
       persistently remote requester *)

(* State-table / memory effects, applied by the interpreter via Tables
   (block length resolution lives there). *)
type memop =
  | M_make_exclusive of int
  | M_make_shared of int
  | M_make_invalid of int
  | M_make_pending of { block : int; shared : bool }
  | M_flag of { block : int; keep : int list }
    (* flag-fill the block's longwords, except [keep] — longwords the
       node stored while the request was pending must survive the
       stamping (Section 4.1), or its own loads of them (which the
       inline checks let through) would read the flag as data *)
  | M_merge of { block : int; written : (int * int) list }
    (* merge the triggering Data_reply's longwords into memory,
       overlaying the node's own pending stores *)
  | M_adopt of { block : int; from : int }
    (* crash recovery: copy the block's bytes out of dead node [from]'s
       (frozen) memory image into the acting node's memory.  A pure byte
       salvage — no line-state change; pair with M_make_* to claim. *)

(* Residual pure work to run after an interpreter re-entry (store
   retry).  The engine's continuation closures captured "the rest of the
   current handler"; here that rest is reified so it can cross the
   pure/impure boundary and be resumed with [I_continue]. *)
type post =
  | P_register_acks of { block : int; acks : int }
  | P_flush_waiters of int
  | P_invalidate_flush of int (* make_invalid + flush (late inv reply) *)
  | P_check_wake

type action =
  | A_charge of cost
  | A_count of counter
  | A_emit of ev
  | A_send of { dst : int; msg : Message.t }
    (* Data_reply is sent with [data = [||]]: the interpreter reads the
       block out of node memory at apply time (no memory effect can
       intervene between the pure send point and the apply point). *)
  | A_local of Message.t (* same-node delivery (handled inside the core) *)
  | A_mem of memop
  | A_block of wait (* node blocks; record wait start *)
  | A_stall of wait (* wait satisfied; emit the stall, resume running *)
  | A_refill (* run the interpreter's stalled-load continuation *)
  | A_commit_store
    (* run the stalled store's memory write (non-scheduled checks: the
       store instruction itself only executes after the thread resumes) *)
  | A_reenter_store of
      { addr : int; bytes : int; store_done : bool; post : post list }
    (* must be the LAST action of a step: the interpreter re-enters
       [store_miss] (drain and all), then feeds [post] back via
       [I_continue] *)

type input =
  | I_msg of Message.t
  | I_load_miss of { addr : int; block : int; st : line }
  | I_store_miss of
      { addr : int; block : int; st : line; bytes : int; store_done : bool;
        stored : (int * int) list (* longword cover of the store's value *) }
  | I_batch_miss of
      { nranges : int;
        blocks : (int * bool * line) list; (* block, need_excl, state *)
        stores : (int * int) list (* addr, bytes *) }
  | I_batch_end of
      { values : (int * int * int) list; (* longword addr, block, value *)
        order : deferred list (* deduped, in application order *) }
  | I_lock of int
  | I_unlock of int
  | I_barrier
  | I_flag_set of int
  | I_flag_wait of int
  | I_alloc of { owner : int; blocks : int list }
  | I_set_home of { page : int; home : int }
    (* home-placement policy (first-touch / profile-guided): subsequent
       requests for the page's blocks are issued to [home] *)
  | I_continue of post list
  | I_node_crash of { victim : int; lost : (int * Message.t) list }
    (* [victim] was declared dead; [lost] are the frames purged off the
       wire (still queued to or from it) as [(dst, msg)] in send order.
       Stepped at a surviving coordinator node, which reconstructs the
       directory, reclaims the victim's locks, and re-dispatches or
       answers the lost frames on the victim's behalf. *)
  | I_node_recover of int
    (* the victim rejoins protocol duties (its program stays dead) *)

(* ------------------------------------------------------------------ *)
(* Step context                                                         *)
(* ------------------------------------------------------------------ *)

type ctx = {
  cfg : cfg;
  node : int; (* the stepping node: all actions target it *)
  mutable v : view;
  mutable racc : action list; (* reverse accumulation *)
  mutable stopped : bool; (* an A_reenter_store truncated this step *)
}

let act c a = if not c.stopped then c.racc <- a :: c.racc

let nv c = Imap.find c.node c.v.nodes
let set_nv c n = c.v <- { c.v with nodes = Imap.add c.node n c.v.nodes }
let upd c f = set_nv c (f (nv c))

let home_of (cfg : cfg) block = block / cfg.page_bytes mod cfg.nprocs

(* Effective home under placement policies: the homes override when one
   was installed (first-touch, profile-guided, migration), else the
   natural round-robin home.  Default runs carry an empty override map,
   so routing — and traces — are unchanged. *)
let eff_home (cfg : cfg) (v : view) block =
  if Imap.is_empty v.homes then home_of cfg block
  else
    match Imap.find_opt (block / cfg.page_bytes) v.homes with
    | Some h -> h
    | None -> home_of cfg block

let dir_entry_exn c block =
  match Imap.find_opt block c.v.dir with
  | Some e -> e
  | None ->
    invalid_arg
      (Printf.sprintf "Directory.entry: unallocated block 0x%x" block)

let set_dir c block e = c.v <- { c.v with dir = Imap.add block e c.v.dir }

let is_sharer (e : dirent) node = Ns.mem e.sharers node

let sharer_list (e : dirent) ~nprocs:_ = Ns.to_list e.sharers

let line_of (n : nview) block =
  match Imap.find_opt block n.lines with Some l -> l | None -> L_invalid

(* Emit a table/memory effect and mirror the resulting line state. *)
let mem_op c (op : memop) =
  if not c.stopped then begin
    act c (A_mem op);
    match op with
    | M_make_exclusive b -> upd c (fun n -> { n with lines = Imap.add b L_exclusive n.lines })
    | M_make_shared b -> upd c (fun n -> { n with lines = Imap.add b L_shared n.lines })
    | M_make_invalid b -> upd c (fun n -> { n with lines = Imap.add b L_invalid n.lines })
    | M_make_pending { block; shared } ->
      upd c (fun n ->
        { n with
          lines =
            Imap.add block
              (if shared then L_pending_shared else L_pending_invalid)
              n.lines })
    | M_flag _ | M_merge _ | M_adopt _ -> ()
  end

let is_crashed (v : view) node = Ns.mem v.crashed node

(* Effective home: the natural home, or — while it is down — its ring
   successor among the live nodes.  Identity whenever no node is
   crashed, so fault-free runs route (and trace) exactly as before. *)
let route (cfg : cfg) (v : view) h =
  if Ns.is_empty v.crashed then h
  else begin
    let rec go k =
      let n = (h + k) mod cfg.nprocs in
      if is_crashed v n then go (k + 1) else n
    in
    go 0
  end

let wait_sat (n : nview) = function
  | W_blocks bs -> List.for_all (fun b -> not (Imap.mem b n.pending)) bs
  | W_release -> Imap.is_empty n.pending && n.unacked = 0
  | W_sync -> n.sync_signal

(* A sharer set holding exactly one node, in the configured directory
   organization (the full-map default yields the historical [1 lsl n]). *)
let ns_singleton (cfg : cfg) node =
  Ns.singleton cfg.dmode ~nprocs:cfg.nprocs node

(* --- combining-tree barrier topology -------------------------------- *)

(* Static d-ary tree over node ids, rooted at 0: arrivals combine up the
   tree (each interior node forwards one trigger once its subtree is
   in), the root releases down it.  At P=32 the root handles [fanout]
   messages per episode instead of 31. *)
let tree_fanout = 4
let tree_parent n = (n - 1) / tree_fanout

let tree_children (cfg : cfg) n =
  let base = (tree_fanout * n) + 1 in
  let rec go i acc =
    if i < 0 then acc
    else
      let k = base + i in
      go (i - 1) (if k < cfg.nprocs then k :: acc else acc)
  in
  go (tree_fanout - 1) []

(* Every node in [p]'s subtree has arrived or is excused as halted. *)
let subtree_complete (cfg : cfg) (v : view) p =
  let rec go n =
    (Ns.mem v.barrier_arrived n || Ns.mem v.halted n)
    && List.for_all go (tree_children cfg n)
  in
  go p

(* [p]'s subtree still contains nodes the current release wave owes. *)
let subtree_has_release (cfg : cfg) (v : view) p =
  let rec go n = Ns.mem v.brelease n || List.exists go (tree_children cfg n) in
  go p

(* The barrier completes when every node has arrived or halted. *)
let barrier_complete (cfg : cfg) (v : view) =
  (not (Ns.is_empty v.barrier_arrived))
  &&
  let rec go n =
    n >= cfg.nprocs
    || ((Ns.mem v.barrier_arrived n || Ns.mem v.halted n) && go (n + 1))
  in
  go 0

(* Hot-page home migration (under [cfg.migrate]): count consecutive
   remote requests for a page from the same node at its current home; a
   run of [migrate_threshold] moves the page's directory home to that
   requester.  In-flight requests to the old home still resolve there —
   every node can serve any page's directory, the home only names where
   requests are SENT — so migration is race-free. *)
let migrate_threshold = 8

let heat_bump c ~block ~requester =
  if c.cfg.migrate && requester <> c.node then begin
    let page = block / c.cfg.page_bytes in
    let streak =
      match Imap.find_opt page c.v.heat with
      | Some (last, k) when last = requester -> k + 1
      | _ -> 1
    in
    if streak >= migrate_threshold then begin
      act c (A_emit (E_home_migrated { page; to_ = requester }));
      c.v <-
        { c.v with
          homes = Imap.add page requester c.v.homes;
          heat = Imap.remove page c.v.heat }
    end
    else c.v <- { c.v with heat = Imap.add page (requester, streak) c.v.heat }
  end

(* ------------------------------------------------------------------ *)
(* Messaging, blocking, waking                                          *)
(* ------------------------------------------------------------------ *)

(* The mutually recursive protocol logic.  Function-for-function this is
   the old engine with every side effect replaced by an [act] and every
   continuation by a [resume]/[post]. *)

let rec send c ~dst ~addr kind =
  let msg = { Message.src = c.node; addr; kind } in
  if is_crashed c.v dst then
    (* crash-stop: the frame would be purged at the dead node's door
       anyway; suppressing it here keeps replay exact *)
    ()
  else if dst = c.node then begin
    (* local delivery: handled immediately at local handler cost *)
    act c (A_charge Sync_local);
    act c (A_local msg);
    handle c msg
  end
  else act c (A_send { dst; msg })

and block_on c w r =
  if wait_sat (nv c) w then begin
    (match w with
     | W_sync -> upd c (fun n -> { n with sync_signal = false })
     | _ -> ());
    (* satisfied on entry: run the continuation with no stall event *)
    dispatch c r []
  end
  else begin
    upd c (fun n -> { n with nstat = N_waiting w; resume = r });
    act c (A_block w)
  end

and check_wake c ~post =
  let n = nv c in
  match n.nstat with
  | N_running -> run_post c post
  | N_waiting w ->
    if wait_sat n w then begin
      (match w with
       | W_sync -> upd c (fun n -> { n with sync_signal = false })
       | _ -> ());
      act c (A_stall w);
      let r = (nv c).resume in
      upd c (fun n -> { n with nstat = N_running; resume = R_none });
      dispatch c r post
    end
    else run_post c post

(* Run a resume (the satisfied wait's continuation), then the residual
   [post] work.  A store retry crosses back into the interpreter: it
   truncates the step and carries [post] with it. *)
and dispatch c r post =
  match r with
  | R_none -> run_post c post
  | R_refill ->
    act c A_refill;
    run_post c post
  | R_store_retry { addr; bytes; store_done } ->
    act c (A_reenter_store { addr; bytes; store_done; post });
    c.stopped <- true
  | R_store_commit { then_release } ->
    act c A_commit_store;
    if then_release then block_on c W_release R_done;
    run_post c post
  | R_then_release ->
    block_on c W_release R_done;
    run_post c post
  | R_done -> run_post c post
  | R_lock_acquired id ->
    act c (A_emit (E_lock_acquired id));
    run_post c post
  | R_unlock id ->
    (if c.cfg.scalable_sync then begin
       (* MCS-style queue lock: the releaser reads the queue itself and
          hands the lock DIRECTLY to its successor — no round trip
          through the lock's home.  Contended handoff costs one message
          (vs unlock+grant), an uncontended release costs none. *)
       act c (A_charge Sync_local);
       home_unlock c ~id
     end
     else
       let h = route c.cfg c.v (id mod c.cfg.nprocs) in
       if h = c.node then begin
         act c (A_charge Sync_local);
         home_unlock c ~id
       end
       else send c ~dst:h ~addr:id (Message.Sync Unlock_msg));
    run_post c post
  | R_barrier_enter ->
    (if c.cfg.scalable_sync then begin
       (* combining-tree barrier: record the arrival in place, then
          combine triggers up the tree *)
       act c (A_charge Sync_local);
       block_on c W_sync R_barrier_passed;
       c.v <-
         { c.v with barrier_arrived = Ns.add c.v.barrier_arrived c.node };
       tree_barrier_check c
     end
     else
       let bh = route c.cfg c.v 0 in
       if c.node = bh then begin
         act c (A_charge Sync_local);
         block_on c W_sync R_barrier_passed;
         home_barrier_arrive c ~who:c.node
       end
       else begin
         send c ~dst:bh ~addr:0 (Message.Sync Barrier_arrive);
         block_on c W_sync R_barrier_passed
       end);
    run_post c post
  | R_barrier_passed ->
    act c (A_count C_barrier_passed);
    act c (A_emit E_barrier_passed);
    run_post c post
  | R_flag_set id ->
    act c (A_emit (E_flag_raised id));
    let h = route c.cfg c.v (id mod c.cfg.nprocs) in
    if h = c.node then begin
      act c (A_charge Sync_local);
      home_flag_set c ~id
    end
    else send c ~dst:h ~addr:id (Message.Sync Flag_set_msg);
    run_post c post
  | R_flag_woken id ->
    act c (A_emit (E_flag_woken id));
    run_post c post

and run_post c = function
  | [] -> ()
  | _ when c.stopped -> () (* carried by the A_reenter_store's [post] *)
  | P_register_acks { block; acks } :: rest ->
    register_acks c block acks;
    run_post c rest
  | P_flush_waiters block :: rest ->
    flush_waiters c block;
    run_post c rest
  | P_invalidate_flush block :: rest ->
    (* serve queued forwarded reads BEFORE stamping the copy: their
       reads serialize before the invalidating write, and the reply
       data is read out of this node's memory at send time — flagging
       first would ship the flag pattern as data *)
    flush_waiters c block;
    mem_op c (M_make_invalid block);
    run_post c rest
  | P_check_wake :: rest -> check_wake c ~post:rest

(* ------------------------------------------------------------------ *)
(* Invalidation-ack bookkeeping                                         *)
(* ------------------------------------------------------------------ *)

and finish_acks c block =
  upd c (fun n ->
    { n with acks = Imap.remove block n.acks; unacked = n.unacked - 1 });
  flush_waiters c block

and register_acks c block expected =
  match Imap.find_opt block (nv c).acks with
  | None ->
    if expected > 0 then
      upd c (fun n ->
        { n with
          acks = Imap.add block { got = 0; expected = Some expected } n.acks;
          unacked = n.unacked + 1 })
    else flush_waiters c block
  | Some a ->
    upd c (fun n ->
      { n with acks = Imap.add block { a with expected = Some expected } n.acks });
    if a.got >= expected then finish_acks c block

and recv_inv_ack c block =
  if
    Ns.mem c.v.halted c.node
    && (not (Imap.mem block (nv c).acks))
    && not (Imap.mem block (nv c).pending)
  then
    (* a late ack for a request that died with this node's crash (an
       Inv between two live nodes still names the dead requester; see
       [complete_data_reply]).  A LIVE node may legitimately see acks
       before its reply registers the expected count, but then its
       request is still pending — a recovered node's is not, and a
       provisional entry here would count unacked forever. *)
    ()
  else begin
  let a =
    match Imap.find_opt block (nv c).acks with
    | Some a -> a
    | None ->
      let a = { got = 0; expected = None } in
      upd c (fun n ->
        { n with acks = Imap.add block a n.acks; unacked = n.unacked + 1 });
      a
  in
  let a = { a with got = a.got + 1 } in
  upd c (fun n -> { n with acks = Imap.add block a n.acks });
  match a.expected with
  | Some e when a.got >= e -> finish_acks c block
  | _ -> ()
  end

(* Service requests that were deferred while the block was pending or
   had outstanding acks. *)
and flush_waiters c block =
  let n = nv c in
  if (not (Imap.mem block n.pending)) && not (Imap.mem block n.acks) then begin
    match Imap.find_opt block n.waiters with
    | None -> ()
    | Some msgs ->
      upd c (fun n -> { n with waiters = Imap.remove block n.waiters });
      List.iter (fun msg -> handle c msg) msgs
  end

(* ------------------------------------------------------------------ *)
(* Request issue (requester side)                                       *)
(* ------------------------------------------------------------------ *)

and issue_request c block kind ~count =
  act c (A_charge Request_issue);
  count ();
  send c ~dst:(route c.cfg c.v (eff_home c.cfg c.v block)) ~addr:block kind

and start_pending c block pkind =
  upd c (fun n ->
    { n with
      pending =
        Imap.add block
          { pkind; written = Imap.empty; invalidated = false }
          n.pending });
  mem_op c (M_make_pending { block; shared = pkind = P_upgrade })

(* ------------------------------------------------------------------ *)
(* Home-side handlers                                                   *)
(* ------------------------------------------------------------------ *)

and home_read c ~requester ~block =
  heat_bump c ~block ~requester;
  let e = dir_entry_exn c block in
  let h = c.node in
  (* membership in an inexact sharer superset does not prove the home's
     copy is valid (a region-mate's read covers the home too), so only
     trust it when the set is exact; otherwise the owner path serves the
     authoritative copy *)
  let home_valid =
    requester <> h && (e.owner = h || (Ns.is_exact e.sharers && is_sharer e h))
  in
  set_dir c block { e with sharers = Ns.add e.sharers requester };
  if home_valid then
    (* home has a valid copy: serve it directly, going through the owner
       path so the home's own copy is downgraded — and deferred while it
       is pending or awaiting invalidation acks *)
    owner_fwd_read c ~requester ~block
  else
    send c ~dst:e.owner ~addr:block
      (Message.Coh (Fwd_read { requester }))

and home_readex c ~requester ~block =
  heat_bump c ~block ~requester;
  let e = dir_entry_exn c block in
  let h = c.node in
  let o = e.owner in
  if o = requester then begin
    (* requester already owns the block (held shared after a downgrade):
       grant exclusivity like an upgrade.  Inexact sharer supersets can
       re-cover a crashed node (a fresh singleton spans its whole
       region), so the fan-out filters the dead: a suppressed Inv must
       not be counted either, or the requester waits on a ghost ack *)
    let others =
      List.filter (fun s -> s <> requester && not (is_crashed c.v s))
        (sharer_list e ~nprocs:c.cfg.nprocs)
    in
    set_dir c block { e with sharers = ns_singleton c.cfg requester };
    List.iter
      (fun s ->
        send c ~dst:s ~addr:block (Message.Coh (Inv { requester })))
      others;
    send c ~dst:requester ~addr:block
      (Message.Coh (Upgrade_ack { acks = List.length others }))
  end
  else begin
    let others =
      List.filter
        (fun s -> s <> requester && s <> o && not (is_crashed c.v s))
        (sharer_list e ~nprocs:c.cfg.nprocs)
    in
    let nacks = List.length others in
    set_dir c block { owner = requester; sharers = ns_singleton c.cfg requester };
    List.iter
      (fun s ->
        send c ~dst:s ~addr:block (Message.Coh (Inv { requester })))
      others;
    if o = h then
      owner_fwd_readex c ~requester ~block ~acks:nacks
    else
      send c ~dst:o ~addr:block
        (Message.Coh (Fwd_readex { requester; acks = nacks }))
  end

and home_upgrade c ~requester ~block =
  let e = dir_entry_exn c block in
  (* an inexact superset cannot prove the requester's copy survived: a
     region-mate's read-exclusive may have invalidated it while leaving
     it covered, and granting the upgrade would bless stale data (and
     invalidate the real owner).  Supersets are only sound for Inv
     fan-out, so demand exact membership and otherwise convert to a
     read-exclusive, which refetches the data *)
  if Ns.is_exact e.sharers && is_sharer e requester then begin
    heat_bump c ~block ~requester;
    let others =
      List.filter (fun s -> s <> requester && not (is_crashed c.v s))
        (sharer_list e ~nprocs:c.cfg.nprocs)
    in
    set_dir c block { owner = requester; sharers = ns_singleton c.cfg requester };
    List.iter
      (fun s ->
        send c ~dst:s ~addr:block (Message.Coh (Inv { requester })))
      others;
    send c ~dst:requester ~addr:block
      (Message.Coh (Upgrade_ack { acks = List.length others }))
  end
  else
    (* an invalidation raced ahead of the upgrade: the requester's copy
       is gone, so convert to a read-exclusive (Section 2.1) *)
    home_readex c ~requester ~block

(* ------------------------------------------------------------------ *)
(* Owner-side handlers                                                  *)
(* ------------------------------------------------------------------ *)

and owner_busy (n : nview) block =
  Imap.mem block n.acks
  ||
  match Imap.find_opt block n.pending with
  | None -> false
  | Some p -> not (p.pkind = P_upgrade && not p.invalidated)

and enqueue_waiter c block msg =
  upd c (fun n ->
    let q =
      match Imap.find_opt block n.waiters with Some q -> q | None -> []
    in
    { n with waiters = Imap.add block (q @ [ msg ]) n.waiters })

and owner_fwd_read c ~requester ~block =
  if requester = c.node && Imap.mem block (nv c).pending then
    (* post-crash only: recovery salvaged the dead owner's bytes into
       this node and named it owner while its own read request was still
       in flight to the home — the forward arriving back here IS the
       data grant, served from the salvaged copy (queueing it behind the
       pending entry would deadlock on itself) *)
    complete_data_reply c ~block ~exclusive:false ~acks:0
      ~tail:[ P_check_wake ]
  else if owner_busy (nv c) block then
    enqueue_waiter c block
      { Message.src = c.node; addr = block;
        kind = Coh (Fwd_read { requester }) }
  else begin
    act c (A_emit (E_downgraded { block; requester }));
    send c ~dst:requester ~addr:block
      (Message.Coh (Data_reply { data = [||]; exclusive = false; acks = 0 }));
    let n = nv c in
    if n.in_batch then
      upd c (fun n -> { n with deferred = D_downgrade block :: n.deferred })
    else if not (Imap.mem block n.pending) then
      (* a pending upgrade keeps its pending-shared state bytes *)
      mem_op c (M_make_shared block)
  end

and owner_fwd_readex c ~requester ~block ~acks =
  if requester = c.node && Imap.mem block (nv c).pending then
    (* see owner_fwd_read: self-forward after crash recovery *)
    complete_data_reply c ~block ~exclusive:true ~acks
      ~tail:[ P_check_wake ]
  else if owner_busy (nv c) block then
    enqueue_waiter c block
      { Message.src = c.node; addr = block;
        kind = Coh (Fwd_readex { requester; acks }) }
  else begin
    send c ~dst:requester ~addr:block
      (Message.Coh (Data_reply { data = [||]; exclusive = true; acks }));
    let n = nv c in
    if n.in_batch then
      upd c (fun n -> { n with deferred = D_inv block :: n.deferred })
    else
      match Imap.find_opt block n.pending with
      | Some p ->
        (* our own upgrade is in flight and will be converted by the
           home; treat this like an invalidation racing it *)
        upd c (fun n ->
          { n with
            pending = Imap.add block { p with invalidated = true } n.pending });
        mem_op c
          (M_flag { block; keep = List.map fst (Imap.bindings p.written) })
      | None -> mem_op c (M_make_invalid block)
  end

(* ------------------------------------------------------------------ *)
(* Requester-side completions                                           *)
(* ------------------------------------------------------------------ *)

and apply_inv c ~block ~requester =
  act c (A_emit (E_invalidated { block; requester }));
  send c ~dst:requester ~addr:block (Message.Coh Inv_ack);
  let n = nv c in
  if n.in_batch then
    upd c (fun n -> { n with deferred = D_inv block :: n.deferred })
  else if line_of n block = L_exclusive then
    (* stale invalidation: it targeted a sharer copy we have since
       replaced by exclusive ownership; nothing beyond the ack *)
    ()
  else
    match Imap.find_opt block n.pending with
    | Some p ->
      upd c (fun n ->
        { n with
          pending = Imap.add block { p with invalidated = true } n.pending });
      mem_op c
        (M_flag { block; keep = List.map fst (Imap.bindings p.written) })
    | None -> mem_op c (M_make_invalid block)

and complete_data_reply c ~block ~exclusive ~acks ~tail =
  match Imap.find_opt block (nv c).pending with
  | None when Ns.mem c.v.halted c.node ->
    (* a reply to a request that died with this node's crash: the
       purge only covers frames to/from the victim, so a forward
       between two LIVE nodes naming it as requester can still produce
       a reply after it recovers.  Directory recovery already removed
       the dead request's promise, so dropping the reply is consistent;
       the recovered node's program is gone and nothing awaits it. *)
    ()
  | None ->
    invalid_arg
      (Printf.sprintf "Engine: stray data reply at node %d block 0x%x"
         c.node block)
  | Some p ->
    mem_op c (M_merge { block; written = Imap.bindings p.written });
    upd c (fun n -> { n with pending = Imap.remove block n.pending });
    (* the node's own stalled access must consume the reply (the refill
       runs) BEFORE deferred forwarded requests are serviced *)
    if exclusive then begin
      mem_op c (M_make_exclusive block);
      (* any deferred invalidation of this block predates our ownership *)
      upd c (fun n ->
        { n with
          deferred =
            List.filter
              (function D_inv b -> b <> block | _ -> true)
              n.deferred });
      check_wake c ~post:(P_register_acks { block; acks } :: tail)
    end
    else if p.invalidated then begin
      (* late invalidation: let the stalled load consume the value, then
         apply the invalidation *)
      mem_op c (M_make_shared block);
      check_wake c ~post:(P_invalidate_flush block :: tail)
    end
    else begin
      mem_op c (M_make_shared block);
      check_wake c ~post:(P_flush_waiters block :: tail)
    end

and complete_upgrade_ack c ~block ~acks ~tail =
  match Imap.find_opt block (nv c).pending with
  | None when Ns.mem c.v.halted c.node ->
    (* late ack to a request that died with this node's crash; see
       [complete_data_reply] *)
    ()
  | None ->
    invalid_arg
      (Printf.sprintf "Engine: stray upgrade ack at node %d block 0x%x"
         c.node block)
  | Some _ ->
    upd c (fun n -> { n with pending = Imap.remove block n.pending });
    mem_op c (M_make_exclusive block);
    check_wake c ~post:(P_register_acks { block; acks } :: tail)

(* ------------------------------------------------------------------ *)
(* Synchronization (home side)                                          *)
(* ------------------------------------------------------------------ *)

and lock_of c id =
  match Imap.find_opt id c.v.locks with
  | Some l -> l
  | None -> { holder = None; lq = [] }

and set_lock c id l = c.v <- { c.v with locks = Imap.add id l c.v.locks }

and flag_of c id =
  match Imap.find_opt id c.v.flags with
  | Some f -> f
  | None -> { fset = false; fwaiters = [] }

and set_flag c id f = c.v <- { c.v with flags = Imap.add id f c.v.flags }

and grant_lock c ~to_ ~id =
  if to_ = c.node then begin
    upd c (fun n -> { n with sync_signal = true });
    check_wake c ~post:[]
  end
  else send c ~dst:to_ ~addr:id (Message.Sync Lock_grant)

and home_lock_req c ~requester ~id =
  let l = lock_of c id in
  match l.holder with
  | None ->
    set_lock c id { l with holder = Some requester };
    grant_lock c ~to_:requester ~id
  | Some _ -> set_lock c id { l with lq = l.lq @ [ requester ] }

and home_unlock c ~id =
  let l = lock_of c id in
  match l.lq with
  | next :: rest ->
    set_lock c id { holder = Some next; lq = rest };
    grant_lock c ~to_:next ~id
  | [] -> set_lock c id { l with holder = None }

and home_barrier_arrive c ~who =
  c.v <- { c.v with barrier_arrived = Ns.add c.v.barrier_arrived who };
  barrier_maybe_release c

(* Release when every node has either arrived or halted: a crashed
   node's program never reaches the barrier, so its slot is excused
   ([halted] is monotone — recovered nodes stay excused too).  With no
   crashes the condition is exactly the old "all arrived" count. *)
and barrier_maybe_release c =
  if barrier_complete c.cfg c.v then begin
    let arrived = c.v.barrier_arrived in
    c.v <-
      { c.v with barrier_arrived = Ns.exact_empty ~nprocs:c.cfg.nprocs };
    for n = 0 to c.cfg.nprocs - 1 do
      if Ns.mem arrived n then
        if n = c.node then begin
          upd c (fun nn -> { nn with sync_signal = true });
          check_wake c ~post:[]
        end
        else send c ~dst:n ~addr:0 (Message.Sync Barrier_release)
    done
  end

(* --- combining-tree barrier (cfg.scalable_sync) ---------------------

   Arrival bits live in the global view (the simulator's stand-in for
   each node's tree-node record); Barrier_arrive messages are pure
   TRIGGERS that model the combining traffic.  A node that arrives — or
   any node receiving a trigger — forwards one trigger to its nearest
   live ancestor whenever its own subtree is complete; triggers are
   forwarded unconditionally on completeness (no dedup state), so the
   LAST arrival's trigger chain always climbs to the root.  The root
   duty holder (node 0, or its ring successor while 0 is down) checks
   GLOBAL completion and fans the release down the tree, skipping dead
   interiors by recursing into their children. *)

and tree_root_duty c = route c.cfg c.v 0

(* Nearest live proper ancestor of [n]; the structural root's duties
   fall to its route target. *)
and live_ancestor c n =
  let rec go n =
    if n = 0 then tree_root_duty c
    else
      let p = tree_parent n in
      if p = 0 then tree_root_duty c
      else if is_crashed c.v p then go p
      else p
  in
  go n

and tree_barrier_check c =
  let m = c.node in
  if m = tree_root_duty c then tree_maybe_release c
  else if subtree_complete c.cfg c.v m then begin
    let p = live_ancestor c m in
    if p = m then tree_maybe_release c
    else send c ~dst:p ~addr:0 (Message.Sync Barrier_arrive)
  end

and tree_maybe_release c =
  if barrier_complete c.cfg c.v then begin
    let arrived = c.v.barrier_arrived in
    c.v <-
      { c.v with
        barrier_arrived = Ns.exact_empty ~nprocs:c.cfg.nprocs;
        brelease = arrived };
    tree_release_fan c 0
  end

(* Deliver the release wave into [n]'s structural subtree if it still
   holds owed nodes: to [n] itself when live, else recursively to its
   children's subtrees. *)
and tree_release_fan c n =
  if subtree_has_release c.cfg c.v n then begin
    if is_crashed c.v n then
      List.iter (tree_release_fan c) (tree_children c.cfg n)
    else if n = c.node then tree_release_self c
    else send c ~dst:n ~addr:0 (Message.Sync Barrier_release)
  end

(* The stepping node consumes its own release (if owed) and forwards
   the wave into its child subtrees. *)
and tree_release_self c =
  if Ns.mem c.v.brelease c.node then begin
    c.v <- { c.v with brelease = Ns.remove c.v.brelease c.node };
    upd c (fun n -> { n with sync_signal = true })
  end;
  List.iter (tree_release_fan c) (tree_children c.cfg c.node);
  check_wake c ~post:[]

and wake_flag_waiter c ~to_ ~id =
  if to_ = c.node then begin
    upd c (fun n -> { n with sync_signal = true });
    check_wake c ~post:[]
  end
  else send c ~dst:to_ ~addr:id (Message.Sync Flag_wake)

and home_flag_set c ~id =
  let f = flag_of c id in
  set_flag c id { fset = true; fwaiters = [] };
  List.iter (fun w -> wake_flag_waiter c ~to_:w ~id) f.fwaiters

and home_flag_wait c ~requester ~id =
  let f = flag_of c id in
  if f.fset then wake_flag_waiter c ~to_:requester ~id
  else set_flag c id { f with fwaiters = f.fwaiters @ [ requester ] }

(* ------------------------------------------------------------------ *)
(* Message dispatch                                                     *)
(* ------------------------------------------------------------------ *)

and handle c (msg : Message.t) =
  act c (A_count C_msg_handled);
  act c (A_charge Message_handle);
  let block = msg.addr in
  match msg.kind with
  | Coh Read_req ->
    home_read c ~requester:msg.src ~block;
    check_wake c ~post:[]
  | Coh Readex_req ->
    home_readex c ~requester:msg.src ~block;
    check_wake c ~post:[]
  | Coh Upgrade_req ->
    home_upgrade c ~requester:msg.src ~block;
    check_wake c ~post:[]
  | Coh (Fwd_read { requester }) ->
    owner_fwd_read c ~requester ~block;
    check_wake c ~post:[]
  | Coh (Fwd_readex { requester; acks }) ->
    owner_fwd_readex c ~requester ~block ~acks;
    check_wake c ~post:[]
  | Coh (Data_reply { data = _; exclusive; acks }) ->
    (* the trailing check_wake rides in the post list: a store retry in
       the wake must not lose it *)
    complete_data_reply c ~block ~exclusive ~acks ~tail:[ P_check_wake ]
  | Coh (Upgrade_ack { acks }) ->
    complete_upgrade_ack c ~block ~acks ~tail:[ P_check_wake ]
  | Coh (Inv { requester }) ->
    apply_inv c ~block ~requester;
    check_wake c ~post:[]
  | Coh Inv_ack ->
    recv_inv_ack c block;
    check_wake c ~post:[]
  | Sync Lock_req ->
    home_lock_req c ~requester:msg.src ~id:msg.addr;
    check_wake c ~post:[]
  | Sync Lock_grant ->
    upd c (fun n -> { n with sync_signal = true });
    check_wake c ~post:[]
  | Sync Unlock_msg ->
    home_unlock c ~id:msg.addr;
    check_wake c ~post:[]
  | Sync Barrier_arrive ->
    (* centralized: the home records [src]'s arrival.  Tree mode:
       arrivals are already recorded globally — the message is a
       combining trigger, re-evaluated at this tree node *)
    if c.cfg.scalable_sync then tree_barrier_check c
    else home_barrier_arrive c ~who:msg.src;
    check_wake c ~post:[]
  | Sync Barrier_release ->
    (if c.cfg.scalable_sync then tree_release_self c
     else upd c (fun n -> { n with sync_signal = true }));
    check_wake c ~post:[]
  | Sync Flag_set_msg ->
    home_flag_set c ~id:msg.addr;
    check_wake c ~post:[]
  | Sync Flag_wait_req ->
    home_flag_wait c ~requester:msg.src ~id:msg.addr;
    check_wake c ~post:[]
  | Sync Flag_wake ->
    upd c (fun n -> { n with sync_signal = true });
    check_wake c ~post:[]

(* ------------------------------------------------------------------ *)
(* Inline miss handlers (step entry points)                             *)
(* ------------------------------------------------------------------ *)

let false_miss c addr =
  act c (A_count C_false_miss);
  act c (A_emit (E_false_miss addr));
  act c (A_charge False_miss)

let add_written c block stored =
  match Imap.find_opt block (nv c).pending with
  | None -> ()
  | Some p ->
    let written =
      List.fold_left (fun w (a, v) -> Imap.add a v w) p.written stored
    in
    upd c (fun n ->
      { n with pending = Imap.add block { p with written } n.pending })

let load_miss c ~addr ~block ~st =
  match st with
  | L_exclusive | L_shared ->
    false_miss c addr;
    act c A_refill
  | L_pending_shared ->
    (* pending-shared loads proceed — the node has a copy — unless an
       invalidation overtook the upgrade and flagged this longword *)
    (match Imap.find_opt block (nv c).pending with
     | Some p
       when p.invalidated && not (Imap.mem (addr land lnot 3) p.written) ->
       block_on c (W_blocks [ block ]) R_refill
     | _ ->
       false_miss c addr;
       act c A_refill)
  | L_pending_invalid ->
    (match Imap.find_opt block (nv c).pending with
     | Some p
       when (not p.invalidated) && Imap.mem (addr land lnot 3) p.written ->
       (* load from a longword this node itself stored while pending:
          valid section of the line (Section 4.1) *)
       act c A_refill
     | _ -> block_on c (W_blocks [ block ]) R_refill)
  | L_invalid ->
    act c (A_count C_read_miss);
    act c (A_emit (E_miss (MK_read, addr)));
    start_pending c block P_read;
    issue_request c block (Message.Coh Read_req) ~count:(fun () -> ());
    block_on c (W_blocks [ block ]) R_refill

let store_miss c ~addr ~block ~st ~bytes ~store_done ~stored =
  match st with
  | L_exclusive ->
    (* resolved while the message queue drained: false miss *)
    false_miss c addr
  | L_pending_invalid | L_pending_shared ->
    (match Imap.find_opt block (nv c).pending with
     | Some _ ->
       if store_done then add_written c block stored
       else
         block_on c (W_blocks [ block ])
           (R_store_retry { addr; bytes; store_done })
     | None ->
       (* the pending state byte was stale; re-enter with a fresh read *)
       act c (A_reenter_store { addr; bytes; store_done; post = [] });
       c.stopped <- true)
  | L_shared | L_invalid ->
    (if st = L_shared then begin
       act c (A_count C_upgrade_miss);
       act c (A_emit (E_miss (MK_upgrade, addr)));
       start_pending c block P_upgrade;
       if store_done then add_written c block stored;
       issue_request c block (Message.Coh Upgrade_req) ~count:(fun () -> ())
     end
     else begin
       act c (A_count C_write_miss);
       act c (A_emit (E_miss (MK_write, addr)));
       start_pending c block P_readex;
       if store_done then add_written c block stored;
       issue_request c block (Message.Coh Readex_req) ~count:(fun () -> ())
     end);
    if c.cfg.sc then
      (* sequential consistency: the store completes — ownership AND all
         invalidation acknowledgements — before execution continues *)
      block_on c (W_blocks [ block ])
        (if store_done then R_then_release
         else R_store_commit { then_release = true })
    else if not store_done then
      block_on c (W_blocks [ block ]) (R_store_commit { then_release = false })

(* Batch miss (Section 4.3): [blocks] carries (block, need_excl, state)
   in the engine's historical per-block iteration order, states as the
   tables read them at entry. *)
let batch_miss c ~nranges ~blocks =
  act c (A_count C_batch_miss);
  act c (A_charge (Batch_record nranges));
  upd c (fun n -> { n with in_batch = true });
  let waits = ref [] in
  List.iter
    (fun (block, need_excl, st) ->
      let pending_invalidated =
        match Imap.find_opt block (nv c).pending with
        | Some p -> p.invalidated
        | None -> false
      in
      if need_excl then begin
        match st with
        | L_exclusive -> ()
        | L_pending_invalid -> waits := block :: !waits
        | L_pending_shared ->
          if pending_invalidated then waits := block :: !waits
        | L_shared ->
          act c (A_count C_upgrade_miss);
          act c (A_emit (E_miss (MK_upgrade, block)));
          start_pending c block P_upgrade;
          issue_request c block (Message.Coh Upgrade_req)
            ~count:(fun () -> ())
        | L_invalid ->
          act c (A_count C_write_miss);
          act c (A_emit (E_miss (MK_write, block)));
          start_pending c block P_readex;
          issue_request c block (Message.Coh Readex_req)
            ~count:(fun () -> ());
          waits := block :: !waits
      end
      else begin
        match st with
        | L_exclusive | L_shared -> ()
        | L_pending_shared ->
          if pending_invalidated then waits := block :: !waits
        | L_pending_invalid -> waits := block :: !waits
        | L_invalid ->
          act c (A_count C_read_miss);
          act c (A_emit (E_miss (MK_read, block)));
          start_pending c block P_read;
          issue_request c block (Message.Coh Read_req) ~count:(fun () -> ());
          waits := block :: !waits
      end)
    blocks;
  act c (A_emit (E_batch_run { nranges; waited = List.length !waits }));
  if c.cfg.sc then begin
    (* Section 4.3: under SC the handler waits for ALL requests,
       including exclusive ones and their acknowledgements *)
    let all = List.rev_map (fun (b, _, _) -> b) blocks in
    block_on c (W_blocks all) R_then_release
  end
  else if !waits <> [] then block_on c (W_blocks !waits) R_done

(* Deferred invalidations/downgrades at Batch_end (Section 4.3).
   [order] is the deduped application order; [values] the longword
   values of the batch's stores (addr, owning block, value). *)
let apply_deferred c ~order ~values =
  upd c (fun n -> { n with deferred = [] });
  let written_for block =
    List.fold_left
      (fun m (a, b, v) -> if b = block then Imap.add a v m else m)
      Imap.empty values
  in
  List.iter
    (fun d ->
      match d with
      | D_inv block ->
        let written = written_for block in
        (match Imap.find_opt block (nv c).pending with
         | Some p ->
           (* a request is already outstanding: fold the invalidation
              into it rather than issuing a duplicate *)
           let w = Imap.union (fun _ _ v -> Some v) p.written written in
           upd c (fun n ->
             { n with
               pending =
                 Imap.add block
                   { p with written = w; invalidated = true }
                   n.pending });
           mem_op c (M_flag { block; keep = List.map fst (Imap.bindings w) })
         | None ->
           if not (Imap.is_empty written) then begin
             (* the batch stored into a block invalidated under it: keep
                the stored longwords, reissue the store miss *)
             act c (A_count C_store_reissue);
             act c (A_emit (E_store_reissue block));
             mem_op c
               (M_flag
                  { block; keep = List.map fst (Imap.bindings written) });
             start_pending c block P_readex;
             add_written c block (Imap.bindings written);
             issue_request c block (Message.Coh Readex_req) ~count:(fun () ->
               act c (A_count C_write_miss);
               act c (A_emit (E_miss (MK_write, block))))
           end
           else mem_op c (M_make_invalid block))
      | D_downgrade block ->
        let written = written_for block in
        if Imap.mem block (nv c).pending then
          (* an outstanding request already covers this block *)
          ()
        else if not (Imap.is_empty written) then begin
          act c (A_count C_store_reissue);
          act c (A_emit (E_store_reissue block));
          start_pending c block P_upgrade;
          add_written c block (Imap.bindings written);
          issue_request c block (Message.Coh Upgrade_req) ~count:(fun () ->
            act c (A_count C_upgrade_miss);
            act c (A_emit (E_miss (MK_upgrade, block))))
        end
        else mem_op c (M_make_shared block))
    order

let batch_end c ~values ~order =
  if (nv c).in_batch then begin
    (* transfer batched store longwords into still-pending blocks *)
    List.iter
      (fun (a, block, v) ->
        match Imap.find_opt block (nv c).pending with
        | Some p ->
          upd c (fun n ->
            { n with
              pending =
                Imap.add block
                  { p with written = Imap.add a v p.written }
                  n.pending })
        | None -> ())
      values;
    upd c (fun n -> { n with in_batch = false });
    apply_deferred c ~order ~values
  end

(* ------------------------------------------------------------------ *)
(* Synchronization entry points                                         *)
(* ------------------------------------------------------------------ *)

let rt_lock c id =
  act c (A_count C_lock_acquire);
  let h = route c.cfg c.v (id mod c.cfg.nprocs) in
  if h = c.node then begin
    act c (A_charge Sync_local);
    let l = lock_of c id in
    match l.holder with
    | None ->
      set_lock c id { l with holder = Some c.node };
      act c (A_emit (E_lock_acquired id))
    | Some _ ->
      set_lock c id { l with lq = l.lq @ [ c.node ] };
      block_on c W_sync (R_lock_acquired id)
  end
  else begin
    send c ~dst:h ~addr:id (Message.Sync Lock_req);
    block_on c W_sync (R_lock_acquired id)
  end

let rt_flag_wait c id =
  let h = route c.cfg c.v (id mod c.cfg.nprocs) in
  if h = c.node then begin
    act c (A_charge Sync_local);
    let f = flag_of c id in
    if not f.fset then begin
      set_flag c id { f with fwaiters = f.fwaiters @ [ c.node ] };
      block_on c W_sync (R_flag_woken id)
    end
    else act c (A_emit (E_flag_woken id))
  end
  else begin
    send c ~dst:h ~addr:id (Message.Sync Flag_wait_req);
    block_on c W_sync (R_flag_woken id)
  end

let alloc c ~owner ~blocks =
  let sharers = ns_singleton c.cfg owner in
  List.iter
    (fun block ->
      c.v <- { c.v with dir = Imap.add block { owner; sharers } c.v.dir };
      upd c (fun n -> { n with lines = Imap.add block L_exclusive n.lines }))
    blocks

let set_home c ~page ~home =
  c.v <- { c.v with homes = Imap.add page home c.v.homes }

(* ------------------------------------------------------------------ *)
(* Crash recovery                                                       *)
(* ------------------------------------------------------------------ *)

(* All recovery logic runs inside ONE coordinator step (the lowest live
   node), fed by the engine/model-checker with the frames it purged off
   the wire.  The crash model is crash-stop with a salvageable memory
   image: the victim's volatile protocol state (pending requests, ack
   counts, queued service work) is gone, but its memory bytes are frozen
   at the crash point and can be copied out ([M_adopt]) — the software
   analogue of recovering a node's pages over RDMA from NVM.

   Why no extra bookkeeping is needed for the victim's ack debts: the
   interconnect is per-channel FIFO and the purge returns EVERY frame
   still queued to or from the victim.  An invalidation the victim never
   acked is therefore either still on the wire to it (we ack on its
   behalf), or its ack is on the wire back (we re-send it) — there is no
   third state.  Likewise a Data_reply captured on the wire carries its
   data bytes, so re-sending it verbatim loses nothing. *)

(* Salvage the victim's frozen bytes for [block] into this node's
   memory.  If this node has a pending miss of its own with written
   longwords (Shasta stores write in place before the miss resolves —
   an upgrade never gets a data reply to merge them back from), the
   adopt must not clobber them: re-apply them over the adopted image. *)
let salvage_adopt c ~victim ~block =
  act c (A_mem (M_adopt { block; from = victim }));
  match Imap.find_opt block (nv c).pending with
  | Some p when not (Imap.is_empty p.written) ->
    mem_op c (M_merge { block; written = Imap.bindings p.written })
  | _ -> ()

let redispatch c ~victim ((dst : int), (msg : Message.t)) =
  let live n = not (is_crashed c.v n) in
  let block = msg.addr in
  let reply_from_salvage ~requester ~exclusive ~acks =
    if live requester then begin
      salvage_adopt c ~victim ~block;
      send c ~dst:requester ~addr:block
        (Message.Coh (Data_reply { data = [||]; exclusive; acks }));
      (* the adopt staged the victim's bytes here only so the reply
         could carry them; if this node holds no copy of its own,
         re-flag the line so the salvage buffer is not mistaken for
         coherent data *)
      if line_of (nv c) block = L_invalid then
        mem_op c (M_make_invalid block)
    end
  in
  let resend ~dst (msg : Message.t) =
    (* forward a purged frame unchanged (its origin may be the victim:
       receivers never key on [src] for these kinds) *)
    if live dst then act c (A_send { dst; msg })
  in
  if msg.src = victim && dst = victim then ()
  else if dst = victim then begin
    (* a frame the dead node will never receive: requests addressed to
       it as home run at the coordinator (which now routes for it);
       forwards to it as owner are answered from its salvaged memory;
       replies and wakeups meant for it evaporate with it *)
    if live msg.src then
      match msg.kind with
      | Coh Read_req -> home_read c ~requester:msg.src ~block
      | Coh Readex_req -> home_readex c ~requester:msg.src ~block
      | Coh Upgrade_req -> home_upgrade c ~requester:msg.src ~block
      | Coh (Fwd_read { requester }) ->
        reply_from_salvage ~requester ~exclusive:false ~acks:0
      | Coh (Fwd_readex { requester; acks }) ->
        reply_from_salvage ~requester ~exclusive:true ~acks
      | Coh (Inv { requester }) ->
        (* the victim's sharer copy died with it; ack on its behalf so
           the requester's count closes *)
        if live requester then
          send c ~dst:requester ~addr:block (Message.Coh Inv_ack)
      | Coh (Data_reply _) | Coh (Upgrade_ack _) | Coh Inv_ack -> ()
      | Sync Lock_req -> home_lock_req c ~requester:msg.src ~id:msg.addr
      | Sync Unlock_msg -> home_unlock c ~id:msg.addr
      | Sync Flag_set_msg -> home_flag_set c ~id:msg.addr
      | Sync Flag_wait_req -> home_flag_wait c ~requester:msg.src ~id:msg.addr
      | Sync Barrier_arrive ->
        (* tree mode: arrivals are global bits, the lost trigger is
           re-derived by the coordinator's completion recheck *)
        if not c.cfg.scalable_sync then home_barrier_arrive c ~who:msg.src
      | Sync Barrier_release ->
        (* tree mode: the victim would have forwarded the wave into its
           subtree — do it on its behalf *)
        if c.cfg.scalable_sync then
          List.iter (tree_release_fan c) (tree_children c.cfg victim)
      | Sync Lock_grant | Sync Flag_wake -> ()
  end
  else begin
    (* a frame the dead node sent but that never arrived: completed
       protocol obligations (replies, acks, grants, forwards it issued
       as home) are re-driven; its own unfinished requests die with it *)
    match msg.kind with
    | Coh (Data_reply { data; exclusive; acks }) ->
      (* a captured reply carries its own bytes — re-send it verbatim.
         Re-serving from the victim's frozen image is wrong here: if
         the victim was itself a coordinator that salvaged these bytes
         for an earlier crash, it re-flagged its staging buffer after
         sending, so under back-to-back crashes its image holds the
         flag marker while the data survives only in this frame.
         Salvage remains the fallback for a reply whose payload was
         never filled in. *)
      if Array.length data > 0 then resend ~dst msg
      else reply_from_salvage ~requester:dst ~exclusive ~acks
    | Coh (Upgrade_ack _) | Coh Inv_ack -> resend ~dst msg
    | Coh (Inv { requester }) -> if live requester then resend ~dst msg
    | Coh (Fwd_read { requester }) | Coh (Fwd_readex { requester; _ }) ->
      if live requester then resend ~dst msg
    | Sync Lock_grant | Sync Flag_wake | Sync Barrier_release ->
      resend ~dst msg
    | Coh Read_req | Coh Readex_req | Coh Upgrade_req
    | Sync Lock_req | Sync Unlock_msg | Sync Flag_set_msg
    | Sync Flag_wait_req | Sync Barrier_arrive -> ()
  end

let recover_directory c ~victim ~served =
  Imap.iter
    (fun block (e : dirent) ->
      (* exact removal works in every directory mode: inexact sets
         carry an explicit exclusion list *)
      let sharers = Ns.remove e.sharers victim in
      (* requesters the re-dispatch pass will definitely answer with
         data salvaged from the victim (purged forwards addressed to it,
         replies it had already sent, forwards parked in its service
         queue) — the only nodes recovery may promise data to *)
      let svd =
        List.filter_map
          (fun (b, n) ->
            if b = block && not (is_crashed c.v n) then Some n else None)
          served
        |> List.sort_uniq compare
      in
      if e.owner = victim then begin
        act c (A_emit (E_dir_rebuild { block; from = victim }));
        (* nodes about to receive salvaged data hold valid copies the
           rebuilt entry must cover (a no-op for exact sets, which
           already contain them) *)
        let sharers = List.fold_left Ns.add sharers svd in
        (* prefer a surviving sharer that still holds a valid copy.
           Under an inexact set this scans the superset, but the
           line-state test keeps the choice sound. *)
        let candidate =
          let rec go n =
            if n >= c.cfg.nprocs then None
            else if
              Ns.mem sharers n
              && not (is_crashed c.v n)
              &&
              match line_of (Imap.find n c.v.nodes) block with
              | L_shared | L_exclusive -> true
              | _ -> false
            then Some n
            else go (n + 1)
          in
          go 0
        in
        match candidate with
        | Some n -> set_dir c block { owner = n; sharers }
        | None ->
          (* no live copy: salvage the victim's bytes here.  If a live
             sharer's request is still pending its re-dispatched reply
             resolves it; naming the lowest pending sharer owner keeps
             the entry well-formed without claiming a copy we'd then
             have to invalidate.  An exact pending sharer is always
             re-served (its forward or reply necessarily involved the
             victim), but an inexact superset also covers nodes whose
             request never reached the home — promising those data
             would leave them to complete against bytes that never
             arrive, so inexact modes may only name a node the
             re-dispatch provably serves. *)
          salvage_adopt c ~victim ~block;
          let pending_sharer =
            if Ns.is_exact sharers then
              let rec go n =
                if n >= c.cfg.nprocs then None
                else if Ns.mem sharers n && not (is_crashed c.v n) then
                  Some n
                else go (n + 1)
              in
              go 0
            else
              match svd with n :: _ -> Some n | [] -> None
          in
          (match pending_sharer with
           | Some n ->
             set_dir c block { owner = n; sharers };
             (* the adopted bytes were staging only — the pending
                sharer's data arrives via its re-dispatched reply *)
             if line_of (nv c) block = L_invalid then
               mem_op c (M_make_invalid block)
           | None ->
             let cset = ns_singleton c.cfg c.node in
             if Imap.mem block (nv c).pending then
               (* our own request is in flight: the re-dispatched (or
                  self-forwarded) reply completes it against this entry *)
               set_dir c block { owner = c.node; sharers = cset }
             else begin
               mem_op c (M_make_exclusive block);
               set_dir c block { owner = c.node; sharers = cset }
             end)
      end
      else if sharers <> e.sharers then begin
        act c (A_emit (E_dir_rebuild { block; from = victim }));
        set_dir c block { e with sharers }
      end)
    c.v.dir

let recover_locks c ~victim =
  Imap.iter
    (fun id (l : lockst) ->
      let lq = List.filter (fun n -> n <> victim) l.lq in
      match l.holder with
      | Some h when h = victim -> begin
        (* lease takeover: the dead holder never unlocks; grant the
           next waiter so the queue makes progress *)
        act c (A_emit (E_lease_takeover { id; from = victim }));
        match lq with
        | next :: rest ->
          set_lock c id { holder = Some next; lq = rest };
          grant_lock c ~to_:next ~id
        | [] -> set_lock c id { holder = None; lq = [] }
      end
      | _ -> if lq <> l.lq then set_lock c id { l with lq })
    c.v.locks

let recover_flags c ~victim =
  Imap.iter
    (fun id (f : flagst) ->
      let fw = List.filter (fun n -> n <> victim) f.fwaiters in
      if fw <> f.fwaiters then set_flag c id { f with fwaiters = fw })
    c.v.flags

(* Forwarded requests parked in live nodes' service queues on behalf of
   a now-dead requester would be answered into the void; drop them. *)
let drop_dead_waiters c ~victim =
  let keep (m : Message.t) =
    match m.kind with
    | Coh (Fwd_read { requester }) | Coh (Fwd_readex { requester; _ }) ->
      requester <> victim
    | _ -> true
  in
  let nodes =
    Imap.mapi
      (fun id (n : nview) ->
        if id = victim || Imap.is_empty n.waiters then n
        else
          { n with
            waiters =
              Imap.filter_map
                (fun _ q ->
                  match List.filter keep q with [] -> None | q -> Some q)
                n.waiters })
      c.v.nodes
  in
  c.v <- { c.v with nodes }

let node_crash c ~victim ~lost =
  if not (Ns.mem c.v.crashed victim) then begin
    let vv = Imap.find victim c.v.nodes in
    c.v <-
      { c.v with
        crashed = Ns.add c.v.crashed victim;
        halted = Ns.add c.v.halted victim;
        (* a victim that had already arrived at the barrier is excused
           via [halted], not counted as arrived — the masks must stay
           disjoint.  A victim still owed a tree release needs none. *)
        barrier_arrived = Ns.remove c.v.barrier_arrived victim;
        brelease = Ns.remove c.v.brelease victim;
        nodes = Imap.add victim empty_nview c.v.nodes };
    (* (block, requester) pairs the re-dispatch below will answer with
       salvaged data: forwards to the victim as owner (on the wire or
       parked in its service queue) and data replies it had sent *)
    let served =
      let of_frame acc ((dst : int), (m : Message.t)) =
        if dst = victim && m.src <> victim then
          match m.kind with
          | Message.Coh (Fwd_read { requester })
          | Message.Coh (Fwd_readex { requester; _ }) ->
            (m.addr, requester) :: acc
          | _ -> acc
        else if m.src = victim && dst <> victim then
          match m.kind with
          | Message.Coh (Data_reply _) -> (m.addr, dst) :: acc
          | _ -> acc
        else acc
      in
      let acc =
        Imap.fold
          (fun _ q acc ->
            List.fold_left
              (fun acc (m : Message.t) ->
                (* parked under the victim's own [src]; see re-dispatch *)
                let m =
                  if m.src = victim then { m with src = c.node } else m
                in
                of_frame acc (victim, m))
              acc q)
          vv.waiters []
      in
      List.fold_left of_frame acc lost
    in
    recover_directory c ~victim ~served;
    recover_locks c ~victim;
    recover_flags c ~victim;
    drop_dead_waiters c ~victim;
    (* forwarded requests parked in the victim's own service queue are
       indistinguishable from forwards lost on the wire to it — except
       that [enqueue_waiter] parked them under the victim's own [src],
       which re-dispatch would mistake for a dead node's request and
       drop; re-attribute them to the coordinator *)
    Imap.iter
      (fun _ q ->
        List.iter
          (fun (m : Message.t) ->
            let m = if m.src = victim then { m with src = c.node } else m in
            redispatch c ~victim (victim, m))
          q)
      vv.waiters;
    List.iter (redispatch c ~victim) lost;
    (* the victim will never arrive at the barrier: its absence may be
       what the current episode was waiting on.  The coordinator holds
       the global view, so in tree mode it performs the root's
       completion recheck directly (this also re-derives any combining
       trigger that was lost with the victim). *)
    if c.cfg.scalable_sync then tree_maybe_release c
    else barrier_maybe_release c;
    check_wake c ~post:[]
  end

let node_recover c ~victim =
  c.v <- { c.v with crashed = Ns.remove c.v.crashed victim }

(* ------------------------------------------------------------------ *)
(* The transition function                                              *)
(* ------------------------------------------------------------------ *)

let step (cfg : cfg) (v : view) ~node (input : input) : action list * view =
  let c = { cfg; node; v; racc = []; stopped = false } in
  (match input with
   | I_msg msg -> handle c msg
   | I_load_miss { addr; block; st } -> load_miss c ~addr ~block ~st
   | I_store_miss { addr; block; st; bytes; store_done; stored } ->
     store_miss c ~addr ~block ~st ~bytes ~store_done ~stored
   | I_batch_miss { nranges; blocks; stores = _ } ->
     batch_miss c ~nranges ~blocks
   | I_batch_end { values; order } -> batch_end c ~values ~order
   | I_lock id -> rt_lock c id
   | I_unlock id -> block_on c W_release (R_unlock id)
   | I_barrier -> block_on c W_release R_barrier_enter
   | I_flag_set id -> block_on c W_release (R_flag_set id)
   | I_flag_wait id -> rt_flag_wait c id
   | I_alloc { owner; blocks } -> alloc c ~owner ~blocks
   | I_set_home { page; home } -> set_home c ~page ~home
   | I_continue post -> run_post c post
   | I_node_crash { victim; lost } -> node_crash c ~victim ~lost
   | I_node_recover victim -> node_recover c ~victim);
  (List.rev c.racc, c.v)

(* ------------------------------------------------------------------ *)
(* Accessors (engine, tests, model checker)                             *)
(* ------------------------------------------------------------------ *)

let node_view (v : view) ~node = Imap.find node v.nodes
let deferred_of v ~node = (node_view v ~node).deferred
let line_state v ~node ~block = line_of (node_view v ~node) block
let is_pending v ~node ~block = Imap.mem block (node_view v ~node).pending
let in_batch v ~node = (node_view v ~node).in_batch
let dir_entry v ~block = Imap.find_opt block v.dir
let dir_fold f v acc = Imap.fold (fun b e a -> f b e a) v.dir acc
let wait_satisfied v ~node = wait_sat (node_view v ~node)

(* Int-mask views of the crash sets, for callers that mirror them into
   program-visible cells; meaningful only for nodes below the int
   width (crash injection targets small configurations). *)
let crashed_mask (v : view) = Ns.to_mask v.crashed
let halted_mask (v : view) = Ns.to_mask v.halted
let is_live (v : view) ~node = not (is_crashed v node)
let home_for (cfg : cfg) (v : view) block = eff_home cfg v block

(* Lock ids currently held by [node], ascending.  Refinement checkers
   use this to decide when an injected deferred store may fire and
   which locks a crash must force-release in the spec machine. *)
let locks_held_by (v : view) ~node =
  Imap.fold
    (fun id (l : lockst) acc -> if l.holder = Some node then id :: acc else acc)
    v.locks []
  |> List.sort compare

let sharer_count (e : dirent) = Ns.cardinal e.sharers

(* ------------------------------------------------------------------ *)
(* Invariants                                                           *)
(* ------------------------------------------------------------------ *)

(* Properties that hold in EVERY reachable view, including mid-protocol
   (requests and invalidations in flight).  Returns human-readable
   violation strings; [] means the view is consistent.

   Caveat for drivers: a step whose action list ends in
   [A_reenter_store] is truncated — its residual [post] work has not run
   yet — so invariants should be checked only after the matching
   [I_continue]. *)
let invariants (cfg : cfg) (v : view) : string list =
  let errs = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errs := s :: !errs) fmt in
  let out_of_range ns =
    List.exists (fun x -> x < 0 || x >= cfg.nprocs) (Ns.to_list ns)
  in
  Imap.iter
    (fun block (e : dirent) ->
      if e.owner < 0 || e.owner >= cfg.nprocs then
        err "block 0x%x: owner %d out of range" block e.owner;
      if out_of_range e.sharers then
        err "block 0x%x: sharer set %s beyond %d procs" block
          (Ns.to_string e.sharers) cfg.nprocs;
      if not (Ns.mem e.sharers e.owner) then
        err "block 0x%x: owner %d missing from sharer set %s" block
          e.owner (Ns.to_string e.sharers))
    v.dir;
  (* single-writer: at most one node holds an exclusive copy of a block *)
  let excl = Hashtbl.create 16 in
  Imap.iter
    (fun id (n : nview) ->
      Imap.iter
        (fun block l ->
          if l = L_exclusive then begin
            (match Hashtbl.find_opt excl block with
             | Some other ->
               err "block 0x%x: exclusive at both node %d and node %d" block
                 other id
             | None -> Hashtbl.add excl block id);
            if not (Imap.mem block v.dir) then
              err "block 0x%x: exclusive at node %d but not in directory"
                block id
          end)
        n.lines;
      (* ack-count conservation *)
      if Imap.cardinal n.acks <> n.unacked then
        err "node %d: unacked=%d but %d ack entries" id n.unacked
          (Imap.cardinal n.acks);
      Imap.iter
        (fun block (a : ackst) ->
          if a.got < 0 then err "node %d block 0x%x: negative acks" id block;
          match a.expected with
          | Some e when a.got >= e ->
            err "node %d block 0x%x: %d acks received, %d expected — entry \
                 should have completed"
              id block a.got e
          | Some e when e <= 0 ->
            err "node %d block 0x%x: nonpositive expected acks %d" id block e
          | _ -> ())
        n.acks;
      (* pending lines and pending entries agree *)
      Imap.iter
        (fun block l ->
          let pl = l = L_pending_invalid || l = L_pending_shared in
          if pl && not (Imap.mem block n.pending) then
            err "node %d block 0x%x: pending line without pending entry" id
              block)
        n.lines;
      Imap.iter
        (fun block _ ->
          match line_of n block with
          | L_pending_invalid | L_pending_shared -> ()
          | _ ->
            err "node %d block 0x%x: pending entry but line not pending" id
              block)
        n.pending;
      (* deferred requests only wait on a genuinely busy block *)
      Imap.iter
        (fun block msgs ->
          if msgs = [] then
            err "node %d block 0x%x: empty waiter queue entry" id block
          else if
            (not (Imap.mem block n.pending)) && not (Imap.mem block n.acks)
          then
            err "node %d block 0x%x: %d deferred requests but block not busy"
              id block (List.length msgs))
        n.waiters;
      (* a waiting node's wait really is unsatisfied *)
      match n.nstat with
      | N_waiting w when wait_sat n w ->
        err "node %d: waiting on a satisfied condition" id
      | N_waiting _ when n.resume = R_none ->
        err "node %d: waiting with no resume" id
      | _ -> ())
    v.nodes;
  if out_of_range v.barrier_arrived then
    err "barrier_arrived %s has members beyond %d procs"
      (Ns.to_string v.barrier_arrived) cfg.nprocs;
  if not (Ns.disjoint v.barrier_arrived v.halted) then
    err "barrier_arrived %s includes halted nodes %s"
      (Ns.to_string v.barrier_arrived) (Ns.to_string v.halted);
  (* centralized sync releases atomically with the completing arrival;
     the combining tree releases when the trigger wave reaches the
     root, so the condition may transiently hold there *)
  if (not cfg.scalable_sync) && barrier_complete cfg v then
    err "barrier_arrived %s: release condition met but not released"
      (Ns.to_string v.barrier_arrived);
  if (not cfg.scalable_sync) && not (Ns.is_empty v.brelease) then
    err "brelease %s nonempty under centralized sync"
      (Ns.to_string v.brelease);
  (* a node owed a release has not been woken, so it cannot have
     re-arrived; and crash strikes victims from the wave *)
  if not (Ns.disjoint v.brelease v.barrier_arrived) then
    err "brelease %s overlaps barrier_arrived %s" (Ns.to_string v.brelease)
      (Ns.to_string v.barrier_arrived);
  if not (Ns.disjoint v.brelease v.crashed) then
    err "brelease %s includes crashed nodes" (Ns.to_string v.brelease);
  (* crash-mask sanity: crashed ⊆ halted ⊆ procs, and no dead node may
     appear in post-recovery protocol state *)
  if out_of_range v.halted then
    err "halted set %s has members beyond %d procs" (Ns.to_string v.halted)
      cfg.nprocs;
  if not (Ns.subset v.crashed v.halted) then
    err "crashed set %s not contained in halted set %s"
      (Ns.to_string v.crashed) (Ns.to_string v.halted);
  if not (Ns.is_empty v.crashed) then
    Imap.iter
      (fun block (e : dirent) ->
        if Ns.mem v.crashed e.owner then
          err "block 0x%x: owner %d is crashed" block e.owner;
        (* exact sets must have been scrubbed by recovery; inexact
           supersets may re-cover a dead node (sends to it are
           suppressed), so only the exact claim is checkable *)
        if Ns.is_exact e.sharers && not (Ns.disjoint e.sharers v.crashed)
        then
          err "block 0x%x: crashed nodes in sharer set %s" block
            (Ns.to_string e.sharers))
      v.dir;
  Imap.iter
    (fun id (l : lockst) ->
      (match l.holder with
       | Some h when h < 0 || h >= cfg.nprocs ->
         err "lock %d: holder %d out of range" id h
       | Some h when Ns.mem v.crashed h ->
         err "lock %d: holder %d is crashed (missed takeover)" id h
       | None when l.lq <> [] ->
         err "lock %d: free but %d queued requesters" id (List.length l.lq)
       | _ -> ());
      if List.exists (Ns.mem v.crashed) l.lq then
        err "lock %d: crashed node still queued" id;
      let sorted = List.sort_uniq compare l.lq in
      if List.length sorted <> List.length l.lq then
        err "lock %d: duplicate queued requester" id)
    v.locks;
  Imap.iter
    (fun id (f : flagst) ->
      if List.exists (Ns.mem v.crashed) f.fwaiters then
        err "flag %d: crashed node still waiting" id)
    v.flags;
  Imap.iter
    (fun page h ->
      if h < 0 || h >= cfg.nprocs then
        err "page %d: home override %d out of range" page h)
    v.homes;
  List.rev !errs

(* Additional properties of QUIESCENT views: no requests in flight, all
   nodes running (the driver must separately ensure no messages are in
   transit).  Here the directory must agree exactly with the line
   states. *)
let quiescent_invariants (cfg : cfg) (v : view) : string list =
  let errs = ref (invariants cfg v) in
  let err fmt = Printf.ksprintf (fun s -> errs := s :: !errs) fmt in
  Imap.iter
    (fun id (n : nview) ->
      if not (Imap.is_empty n.pending) then
        err "node %d: %d pending blocks at quiescence" id
          (Imap.cardinal n.pending);
      if n.unacked <> 0 then
        err "node %d: %d unacked blocks at quiescence" id n.unacked;
      if not (Imap.is_empty n.waiters) then
        err "node %d: deferred requests at quiescence" id;
      if n.in_batch then err "node %d: still in a batch at quiescence" id;
      match n.nstat with
      | N_waiting _ -> err "node %d: still waiting at quiescence" id
      | N_running -> ())
    v.nodes;
  if not (Ns.is_empty v.brelease) then
    err "release wave %s undelivered at quiescence" (Ns.to_string v.brelease);
  Imap.iter
    (fun block (e : dirent) ->
      (* inexact sharer sets are supersets by design: membership without
         a valid copy is the cost of the representation, but a valid
         copy OUTSIDE the set — or a wrong owner — is still a bug in
         every mode *)
      let exact = Ns.is_exact e.sharers in
      Imap.iter
        (fun id n ->
          let l = line_of n block in
          let valid = l = L_shared || l = L_exclusive in
          if exact && is_sharer e id && not valid then
            err "block 0x%x: node %d in sharer set but line %s" block id
              (match l with
               | L_invalid -> "invalid"
               | L_pending_invalid -> "pending-invalid"
               | L_pending_shared -> "pending-shared"
               | _ -> "?");
          if valid && not (is_sharer e id) then
            err "block 0x%x: node %d holds a valid copy but is not in the \
                 sharer set"
              block id;
          if l = L_exclusive then begin
            if e.owner <> id then
              err "block 0x%x: exclusive at node %d but directory owner is %d"
                block id e.owner;
            if exact && sharer_count e <> 1 then
              err "block 0x%x: exclusive at node %d with %d sharers" block id
                (sharer_count e)
          end)
        v.nodes)
    v.dir;
  List.rev !errs

(* ------------------------------------------------------------------ *)
(* Canonical serialization                                              *)
(* ------------------------------------------------------------------ *)

(* A canonical string for a view, built from ordered map bindings.
   (Marshalling the view directly would NOT be canonical: balanced-tree
   shapes depend on insertion order.)  Equal strings <=> equal views;
   used for visited-state deduplication in the model checker and for
   comparing a replayed trace against the live run. *)
let canon (v : view) : string =
  let b = Buffer.create 1024 in
  let pf fmt = Printf.bprintf b fmt in
  (* full-map sets print as the historical hex/decimal masks so default
     configurations stay byte-identical to the seed traces; other
     representations use Nodeset's canonical rendering *)
  let ns_hex ns =
    match Ns.as_bits ns with
    | Some m -> Printf.sprintf "%x" m
    | None -> Ns.to_string ns
  in
  let ns_dec ns =
    match Ns.as_bits ns with
    | Some m -> string_of_int m
    | None -> Ns.to_string ns
  in
  Imap.iter
    (fun blk (e : dirent) -> pf "D%x:%d,%s;" blk e.owner (ns_hex e.sharers))
    v.dir;
  Imap.iter
    (fun id (n : nview) ->
      pf "N%d{" id;
      Imap.iter
        (fun blk l ->
          pf "l%x=%c;" blk
            (match l with
             | L_invalid -> 'i'
             | L_shared -> 's'
             | L_exclusive -> 'e'
             | L_pending_invalid -> 'p'
             | L_pending_shared -> 'q'))
        n.lines;
      Imap.iter
        (fun blk (p : pend) ->
          pf "p%x=%c%b[" blk
            (match p.pkind with
             | P_read -> 'r'
             | P_readex -> 'x'
             | P_upgrade -> 'u')
            p.invalidated;
          Imap.iter (fun a w -> pf "%x:%x," a w) p.written;
          pf "];")
        n.pending;
      Imap.iter
        (fun blk (a : ackst) ->
          pf "a%x=%d/%s;" blk a.got
            (match a.expected with Some e -> string_of_int e | None -> "?"))
        n.acks;
      pf "u%d;" n.unacked;
      Imap.iter
        (fun blk msgs ->
          pf "w%x=[" blk;
          List.iter (fun m -> pf "%s;" (Message.describe m)) msgs;
          pf "];")
        n.waiters;
      List.iter
        (fun d ->
          match d with
          | D_inv blk -> pf "di%x;" blk
          | D_downgrade blk -> pf "dd%x;" blk)
        n.deferred;
      if n.in_batch then pf "B;";
      (match n.nstat with
       | N_running -> ()
       | N_waiting w ->
         pf "W%s;"
           (match w with
            | W_blocks bs ->
              "b" ^ String.concat "," (List.map (Printf.sprintf "%x") bs)
            | W_release -> "r"
            | W_sync -> "s"));
      (match n.resume with
       | R_none -> ()
       | R_refill -> pf "Rf;"
       | R_store_retry { addr; bytes; store_done } ->
         pf "Rs%x,%d,%b;" addr bytes store_done
       | R_store_commit { then_release } -> pf "Rc%b;" then_release
       | R_then_release -> pf "Rr;"
       | R_done -> pf "Rd;"
       | R_lock_acquired id -> pf "Rl%d;" id
       | R_unlock id -> pf "Ru%d;" id
       | R_barrier_enter -> pf "Rb;"
       | R_barrier_passed -> pf "Rp;"
       | R_flag_set id -> pf "Rg%d;" id
       | R_flag_woken id -> pf "Rw%d;" id);
      if n.sync_signal then pf "S;";
      pf "}")
    v.nodes;
  Imap.iter
    (fun id (l : lockst) ->
      pf "L%d:%s,[%s];" id
        (match l.holder with Some h -> string_of_int h | None -> "-")
        (String.concat "," (List.map string_of_int l.lq)))
    v.locks;
  Imap.iter
    (fun id (f : flagst) ->
      pf "F%d:%b,[%s];" id f.fset
        (String.concat "," (List.map string_of_int f.fwaiters)))
    v.flags;
  pf "B%s" (ns_dec v.barrier_arrived);
  if not (Ns.is_empty v.halted) then
    pf ";X%s,%s" (ns_hex v.crashed) (ns_hex v.halted);
  (* scaling-layer state prints only when populated, so default-config
     strings stay byte-identical to the seed *)
  if not (Ns.is_empty v.brelease) then pf ";R%s" (ns_dec v.brelease);
  if not (Imap.is_empty v.homes) then begin
    pf ";H";
    Imap.iter (fun page h -> pf "%x:%d," page h) v.homes
  end;
  if not (Imap.is_empty v.heat) then begin
    pf ";h";
    Imap.iter (fun page (who, k) -> pf "%x:%d*%d," page who k) v.heat
  end;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Printers (counterexample traces)                                     *)
(* ------------------------------------------------------------------ *)

let string_of_wait = function
  | W_blocks bs ->
    Printf.sprintf "blocks[%s]"
      (String.concat "," (List.map (Printf.sprintf "0x%x") bs))
  | W_release -> "release"
  | W_sync -> "sync"

let string_of_ev = function
  | E_miss (MK_read, a) -> Printf.sprintf "miss(read,0x%x)" a
  | E_miss (MK_write, a) -> Printf.sprintf "miss(write,0x%x)" a
  | E_miss (MK_upgrade, a) -> Printf.sprintf "miss(upgrade,0x%x)" a
  | E_false_miss a -> Printf.sprintf "false_miss(0x%x)" a
  | E_invalidated { block; requester } ->
    Printf.sprintf "invalidated(0x%x,ack->%d)" block requester
  | E_downgraded { block; requester } ->
    Printf.sprintf "downgraded(0x%x,->%d)" block requester
  | E_store_reissue b -> Printf.sprintf "store_reissue(0x%x)" b
  | E_batch_run { nranges; waited } ->
    Printf.sprintf "batch_run(%d ranges,%d waits)" nranges waited
  | E_lock_acquired id -> Printf.sprintf "lock_acquired(%d)" id
  | E_barrier_passed -> "barrier_passed"
  | E_flag_raised id -> Printf.sprintf "flag_raised(%d)" id
  | E_flag_woken id -> Printf.sprintf "flag_woken(%d)" id
  | E_lease_takeover { id; from } ->
    Printf.sprintf "lease_takeover(%d,from=%d)" id from
  | E_dir_rebuild { block; from } ->
    Printf.sprintf "dir_rebuild(0x%x,from=%d)" block from
  | E_home_migrated { page; to_ } ->
    Printf.sprintf "home_migrated(page=%d,to=%d)" page to_

let string_of_action = function
  | A_charge Request_issue -> "charge(request_issue)"
  | A_charge Message_handle -> "charge(message_handle)"
  | A_charge Sync_local -> "charge(sync_local)"
  | A_charge False_miss -> "charge(false_miss)"
  | A_charge (Batch_record n) -> Printf.sprintf "charge(batch_record*%d)" n
  | A_count _ -> "count"
  | A_emit e -> "emit " ^ string_of_ev e
  | A_send { dst; msg } ->
    Printf.sprintf "send->%d %s" dst (Message.describe msg)
  | A_local msg -> Printf.sprintf "local %s" (Message.describe msg)
  | A_mem (M_make_exclusive b) -> Printf.sprintf "mem(exclusive 0x%x)" b
  | A_mem (M_make_shared b) -> Printf.sprintf "mem(shared 0x%x)" b
  | A_mem (M_make_invalid b) -> Printf.sprintf "mem(invalid 0x%x)" b
  | A_mem (M_make_pending { block; shared }) ->
    Printf.sprintf "mem(pending-%s 0x%x)"
      (if shared then "shared" else "invalid")
      block
  | A_mem (M_flag { block; keep }) ->
    Printf.sprintf "mem(flag 0x%x,%d kept)" block (List.length keep)
  | A_mem (M_merge { block; written }) ->
    Printf.sprintf "mem(merge 0x%x,%d written)" block (List.length written)
  | A_mem (M_adopt { block; from }) ->
    Printf.sprintf "mem(adopt 0x%x from %d)" block from
  | A_block w -> "block " ^ string_of_wait w
  | A_stall w -> "wake " ^ string_of_wait w
  | A_refill -> "refill"
  | A_commit_store -> "commit_store"
  | A_reenter_store { addr; bytes; store_done; post } ->
    Printf.sprintf "reenter_store(0x%x,%dB,done=%b,%d post)" addr bytes
      store_done (List.length post)

let string_of_input = function
  | I_msg m -> "deliver " ^ Message.describe m
  | I_load_miss { addr; _ } -> Printf.sprintf "load_miss 0x%x" addr
  | I_store_miss { addr; bytes; store_done; _ } ->
    Printf.sprintf "store_miss 0x%x %dB%s" addr bytes
      (if store_done then "" else " (stalling)")
  | I_batch_miss { nranges; blocks; _ } ->
    Printf.sprintf "batch_miss %d ranges, %d blocks" nranges
      (List.length blocks)
  | I_batch_end { order; _ } ->
    Printf.sprintf "batch_end (%d deferred)" (List.length order)
  | I_lock id -> Printf.sprintf "lock %d" id
  | I_unlock id -> Printf.sprintf "unlock %d" id
  | I_barrier -> "barrier"
  | I_flag_set id -> Printf.sprintf "flag_set %d" id
  | I_flag_wait id -> Printf.sprintf "flag_wait %d" id
  | I_alloc { owner; blocks } ->
    Printf.sprintf "alloc owner=%d (%d blocks)" owner (List.length blocks)
  | I_set_home { page; home } ->
    Printf.sprintf "set_home page=%d home=%d" page home
  | I_continue post -> Printf.sprintf "continue (%d post)" (List.length post)
  | I_node_crash { victim; lost } ->
    Printf.sprintf "node_crash victim=%d (%d lost frames)" victim
      (List.length lost)
  | I_node_recover victim -> Printf.sprintf "node_recover %d" victim
