(* Protocol message types (Sections 2.1 and 4 of the paper).

   Design points carried over from the paper:
   - three request types: read, read-exclusive and exclusive (upgrade);
   - all directory state changes complete when a request first reaches
     the home, so there are no confirmation messages back to the home;
   - the number of invalidation acknowledgements a requester should
     expect is piggybacked on the data/upgrade reply rather than sent
     separately, and sharers acknowledge directly to the requester;
   - synchronization (locks, barriers, event flags) is message-based. *)

type coherence =
  | Read_req (* requester -> home *)
  | Readex_req
  | Upgrade_req
  | Fwd_read of { requester : int } (* home -> owner *)
  | Fwd_readex of { requester : int; acks : int }
  | Data_reply of { data : int array; exclusive : bool; acks : int }
    (* owner/home -> requester; [data] holds the block's longwords *)
  | Upgrade_ack of { acks : int } (* home -> requester *)
  | Inv of { requester : int }
    (* home -> sharer; [addr] names the block; ack goes to [requester] *)
  | Inv_ack (* sharer -> requester *)

type sync =
  | Lock_req
  | Lock_grant
  | Unlock_msg
  | Barrier_arrive
  | Barrier_release
  | Flag_set_msg
  | Flag_wait_req
  | Flag_wake

type kind = Coh of coherence | Sync of sync

type t = {
  src : int;
  addr : int; (* block base address, or lock/barrier/flag id for Sync *)
  kind : kind;
}

(* Payload size in longwords, used by the network cost model.  Control
   messages are small; data replies carry the block. *)
let payload_longs m =
  match m.kind with
  | Coh (Data_reply { data; _ }) -> 4 + Array.length data
  | _ -> 4

(* Short, stable kind name — the label typed observability events and
   trace tracks carry. *)
let kind_name m =
  match m.kind with
  | Coh Read_req -> "read_req"
  | Coh Readex_req -> "readex_req"
  | Coh Upgrade_req -> "upgrade_req"
  | Coh (Fwd_read _) -> "fwd_read"
  | Coh (Fwd_readex _) -> "fwd_readex"
  | Coh (Data_reply _) -> "data_reply"
  | Coh (Upgrade_ack _) -> "upgrade_ack"
  | Coh (Inv _) -> "inv"
  | Coh Inv_ack -> "inv_ack"
  | Sync Lock_req -> "lock_req"
  | Sync Lock_grant -> "lock_grant"
  | Sync Unlock_msg -> "unlock"
  | Sync Barrier_arrive -> "barrier_arrive"
  | Sync Barrier_release -> "barrier_release"
  | Sync Flag_set_msg -> "flag_set"
  | Sync Flag_wait_req -> "flag_wait"
  | Sync Flag_wake -> "flag_wake"

let describe m =
  let k =
    match m.kind with
    | Coh (Fwd_read { requester }) -> Printf.sprintf "fwd_read(r%d)" requester
    | Coh (Fwd_readex { requester; acks }) ->
      Printf.sprintf "fwd_readex(r%d,a%d)" requester acks
    | Coh (Data_reply { exclusive; acks; data }) ->
      Printf.sprintf "data_reply(%s,a%d,%dB)"
        (if exclusive then "excl" else "shared")
        acks
        (4 * Array.length data)
    | Coh (Upgrade_ack { acks }) -> Printf.sprintf "upgrade_ack(a%d)" acks
    | Coh (Inv { requester }) -> Printf.sprintf "inv(ack->%d)" requester
    | _ -> kind_name m
  in
  Printf.sprintf "[%d] %s @0x%x" m.src k m.addr
