(** Sets of node ids under a configurable directory organization.

    Three classic schemes, selected per configuration ([--dir-mode]):
    the exact full-map bit vector (the default, byte-identical to the
    historical int masks), limited-pointer with overflow-to-broadcast,
    and coarse bit vectors over regions of [g] consecutive nodes.  The
    inexact schemes may over-approximate membership (supersets only —
    the protocol absorbs spurious invalidations), but [remove] is
    always exact, which crash recovery relies on.

    Values are canonical: structurally equal values denote equal sets
    regardless of the operation order that built them. *)

type mode = Full | Limited of int | Coarse of int

type t =
  | Bits of int
  | Ptrs of { k : int; n : int; ps : int list }
  | Bcast of { n : int; excl : int list }
  | Cv of { g : int; n : int; bits : int; excl : int list }

val max_bits : int
(** Capacity of one int bitmask (Sys.int_size - 2). *)

val empty : mode -> nprocs:int -> t
val exact_empty : nprocs:int -> t
(** An exact (never over-approximating) empty set, regardless of mode —
    for barrier/crash masks. *)

val singleton : mode -> nprocs:int -> int -> t
val add : t -> int -> t
val remove : t -> int -> t

val mem : t -> int -> bool
val is_empty : t -> bool
val cardinal : t -> int

val iter : (int -> unit) -> t -> unit
(** Members in ascending order; cost proportional to the population,
    not to nprocs (lowest-set-bit peeling on bit vectors). *)

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
val to_list : t -> int list

val subset : t -> t -> bool
val disjoint : t -> t -> bool
val equal_members : t -> t -> bool

val is_exact : t -> bool
(** [false] when membership may be over-approximated (broadcast or
    multi-node coarse regions). *)

val as_bits : t -> int option
(** [Some mask] for the full-map representation — the canonical-string
    fast path that keeps default-mode traces byte-identical. *)

val to_mask : t -> int
(** Collapse to an int bitmask; members must be below [Sys.int_size]. *)

val to_string : t -> string
(** Canonical rendering (equal strings <=> equal values). *)

val capacity : mode -> int
val mode_name : mode -> string
val mode_of_string : string -> (mode, string) result
val validate : mode -> nprocs:int -> (unit, string) result
(** Reject nprocs beyond the mode's representable capacity, with an
    actionable message — the guard against silent mask wraparound. *)

(**/**)

val ntz : int -> int
val iter_bits : (int -> unit) -> int -> unit
val popcount : int -> int
