(* Protocol message types (Sections 2.1 and 4 of the paper).

   Three request kinds (read, read-exclusive, upgrade), forwarded
   requests and replies with piggybacked invalidation-ack counts, and
   message-based synchronization.  The variants are transparent: both
   the pure transition core and the runtime interpreter pattern-match
   on them. *)

type coherence =
  | Read_req (* requester -> home *)
  | Readex_req
  | Upgrade_req
  | Fwd_read of { requester : int } (* home -> owner *)
  | Fwd_readex of { requester : int; acks : int }
  | Data_reply of { data : int array; exclusive : bool; acks : int }
    (* owner/home -> requester; [data] holds the block's longwords *)
  | Upgrade_ack of { acks : int } (* home -> requester *)
  | Inv of { requester : int }
    (* home -> sharer; [addr] names the block; ack goes to [requester] *)
  | Inv_ack (* sharer -> requester *)

type sync =
  | Lock_req
  | Lock_grant
  | Unlock_msg
  | Barrier_arrive
  | Barrier_release
  | Flag_set_msg
  | Flag_wait_req
  | Flag_wake

type kind = Coh of coherence | Sync of sync

type t = {
  src : int;
  addr : int; (* block base address, or lock/barrier/flag id for Sync *)
  kind : kind;
}

(* Payload size in longwords, used by the network cost model. *)
val payload_longs : t -> int

(* Short, stable kind name — the label typed observability events and
   trace tracks carry. *)
val kind_name : t -> string

val describe : t -> string
