(** Directory state (paper Section 2.1): per block, an owner pointer —
    the last node that held an exclusive copy, guaranteed to service
    forwarded requests — and a sharer node set under the configured
    directory organization (full-map, limited-pointer, coarse vector;
    the owner stays a member while its copy is valid, supporting dirty
    sharing).  Homes are assigned to pages round-robin, with explicit
    placement available. *)

type entry = { mutable owner : int; mutable sharers : Nodeset.t }

type t

val create : ?page_bytes:int -> ?mode:Nodeset.mode -> nprocs:int -> unit -> t
val home_of : t -> int -> int
val set_home : t -> page:int -> home:int -> unit
val add_block : t -> block:int -> owner:int -> unit
val entry : t -> int -> entry
val mem : t -> int -> bool
val is_sharer : entry -> int -> bool
val add_sharer : entry -> int -> unit
val remove_sharer : entry -> int -> unit
val sharer_list : entry -> nprocs:int -> int list
val sharer_count : entry -> int
val iter : t -> (int -> entry -> unit) -> unit
val blocks : t -> int
