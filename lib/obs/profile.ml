(* Site-level profiler (mirrors the paper's Section 5.1/5.3 analyses).

   Fed the same typed event stream as the sinks, the profiler answers
   *where* the protocol overhead lands instead of just *what* happened:

   - per-site counters: every miss/false-miss/stall event arrives with
     an [Event.site] (procedure index, instruction index, call stack)
     attached by the engine, and is aggregated per (proc, pc) — the
     "which line of LU eats the read-miss stalls" table;
   - per-block contention: reader/writer node sets, invalidation
     counts and ping-pong (consecutive invalidations from different
     requesters), plus per-longword access masks that separate true
     sharing from false sharing (distinct nodes writing disjoint
     longwords of one block);
   - protocol transaction spans: request sends are matched with their
     replies (read_req/readex_req/upgrade_req against
     data_reply/upgrade_ack — an upgrade may be converted to a
     read-exclusive by the home, so either reply closes it — and the
     lock/flag/barrier round trips), giving miss-to-grant latency
     histograms per request type; requests still open at flush are
     reported as unmatched.

   The profiler never touches the runtime's types: rendering takes
   naming closures ([name_proc], [name_site]) so the caller can map
   sites through the frozen image's source-location table. *)

type site_stats = {
  mutable n_read : int;
  mutable n_write : int;
  mutable n_upgrade : int;
  mutable n_false : int;
  mutable n_stall : int;
  mutable stall_cycles : int;
}

let fresh_site () =
  { n_read = 0; n_write = 0; n_upgrade = 0; n_false = 0; n_stall = 0;
    stall_cycles = 0 }

let site_misses s = s.n_read + s.n_write + s.n_upgrade

type block_stats = {
  mutable readers : int; (* node bitmask of read-missing nodes *)
  mutable writers : int; (* node bitmask of write/upgrade-missing nodes *)
  mutable invals : int;
  mutable pingpong : int; (* invalidations whose requester changed *)
  mutable last_req : int;
  word_writers : (int, int) Hashtbl.t; (* longword offset -> node mask *)
  word_readers : (int, int) Hashtbl.t;
}

let fresh_block () =
  { readers = 0; writers = 0; invals = 0; pingpong = 0; last_req = -1;
    word_writers = Hashtbl.create 8; word_readers = Hashtbl.create 8 }

type span = {
  sp_node : int;
  sp_kind : string; (* request kind that opened the transaction *)
  sp_addr : int;
  sp_start : int;
  sp_dur : int;
}

type open_req = { or_kind : string; or_start : int }

type t = {
  nprocs : int;
  block_of : int -> int;
  sites : (int * int, site_stats) Hashtbl.t;
  stacks : ((int * int) list * (int * int), int ref) Hashtbl.t;
  blocks : (int, block_stats) Hashtbl.t;
  (* (node, addr, class) -> open request; Hashtbl.add/remove so a
     shadowed duplicate (a protocol anomaly) surfaces as unmatched *)
  open_spans : (int * int * string, open_req) Hashtbl.t;
  mutable matched : span list; (* newest first *)
  mutable n_matched : int;
  span_metrics : Metrics.t;
  mutable drained : bool;
}

let create ?(nprocs = 1) ?(block_of = fun a -> a land lnot 63) () =
  { nprocs; block_of;
    sites = Hashtbl.create 64;
    stacks = Hashtbl.create 64;
    blocks = Hashtbl.create 64;
    open_spans = Hashtbl.create 32;
    matched = [];
    n_matched = 0;
    span_metrics = Metrics.create ~nprocs;
    drained = false }

let site_cell t key =
  match Hashtbl.find_opt t.sites key with
  | Some s -> s
  | None ->
    let s = fresh_site () in
    Hashtbl.add t.sites key s;
    s

let block_cell t base =
  match Hashtbl.find_opt t.blocks base with
  | Some b -> b
  | None ->
    let b = fresh_block () in
    Hashtbl.add t.blocks base b;
    b

let bump_stack t (site : Event.site) =
  let key = (site.sstack, (site.sproc, site.spc)) in
  match Hashtbl.find_opt t.stacks key with
  | Some r -> incr r
  | None -> Hashtbl.add t.stacks key (ref 1)

let mask_or tbl key bit =
  let prev = match Hashtbl.find_opt tbl key with Some m -> m | None -> 0 in
  Hashtbl.replace tbl key (prev lor bit)

(* --- span matching -------------------------------------------------- *)

(* Request kinds and the class shared with their replies.  Only remote
   transactions appear: local deliveries never reach the network taps,
   and they are local on both legs (a node never sends a remote request
   answered locally or vice versa). *)
let span_class_of_request = function
  | "read_req" | "readex_req" | "upgrade_req" -> Some "coh"
  | "lock_req" -> Some "lock"
  | "flag_wait" -> Some "flag"
  | "barrier_arrive" -> Some "barrier"
  | _ -> None

let span_class_of_reply = function
  | "data_reply" | "upgrade_ack" -> Some "coh"
  | "lock_grant" -> Some "lock"
  | "flag_wake" -> Some "flag"
  | "barrier_release" -> Some "barrier"
  | _ -> None

let span_hist_name kind = "span." ^ kind

let open_span t ~node ~addr ~kind ~time cls =
  Hashtbl.add t.open_spans (node, addr, cls)
    { or_kind = kind; or_start = time }

let close_span t ~node ~addr ~time cls =
  let key = (node, addr, cls) in
  match Hashtbl.find_opt t.open_spans key with
  | None -> () (* e.g. tracing attached mid-run; drop silently *)
  | Some { or_kind; or_start } ->
    Hashtbl.remove t.open_spans key;
    let dur = time - or_start in
    Metrics.observe t.span_metrics ~node (span_hist_name or_kind) dur;
    t.matched <-
      { sp_node = node; sp_kind = or_kind; sp_addr = addr;
        sp_start = or_start; sp_dur = dur }
      :: t.matched;
    t.n_matched <- t.n_matched + 1

(* --- the feed ------------------------------------------------------- *)

let feed t (r : Event.record) =
  let node = r.node in
  match r.ev with
  | Miss { kind; addr } ->
    (match r.site with
     | Some site ->
       let s = site_cell t (site.sproc, site.spc) in
       (match kind with
        | Event.Read -> s.n_read <- s.n_read + 1
        | Event.Write -> s.n_write <- s.n_write + 1
        | Event.Upgrade -> s.n_upgrade <- s.n_upgrade + 1);
       bump_stack t site
     | None -> ());
    let base = t.block_of addr in
    let b = block_cell t base in
    let word = (addr - base) lsr 2 in
    (match kind with
     | Event.Read ->
       b.readers <- b.readers lor (1 lsl node);
       mask_or b.word_readers word (1 lsl node)
     | Event.Write | Event.Upgrade ->
       b.writers <- b.writers lor (1 lsl node);
       mask_or b.word_writers word (1 lsl node))
  | False_miss _ ->
    (match r.site with
     | Some site ->
       let s = site_cell t (site.sproc, site.spc) in
       s.n_false <- s.n_false + 1;
       bump_stack t site
     | None -> ())
  | Stall { cycles; _ } ->
    (match r.site with
     | Some site ->
       let s = site_cell t (site.sproc, site.spc) in
       s.n_stall <- s.n_stall + 1;
       s.stall_cycles <- s.stall_cycles + cycles
     | None -> ())
  | Invalidated { addr; requester } ->
    let b = block_cell t (t.block_of addr) in
    b.invals <- b.invals + 1;
    if b.last_req >= 0 && b.last_req <> requester then
      b.pingpong <- b.pingpong + 1;
    b.last_req <- requester
  | Msg_send { kind; block; _ } ->
    (match span_class_of_request kind with
     | Some cls -> open_span t ~node ~addr:block ~kind ~time:r.time cls
     | None -> ())
  | Msg_recv { kind; block; _ } ->
    (match span_class_of_reply kind with
     | Some cls -> close_span t ~node ~addr:block ~time:r.time cls
     | None -> ())
  | _ -> ()

(* --- accessors ------------------------------------------------------ *)

type totals = { t_read : int; t_write : int; t_upgrade : int; t_false : int }

let totals t =
  Hashtbl.fold
    (fun _ s acc ->
      { t_read = acc.t_read + s.n_read;
        t_write = acc.t_write + s.n_write;
        t_upgrade = acc.t_upgrade + s.n_upgrade;
        t_false = acc.t_false + s.n_false })
    t.sites
    { t_read = 0; t_write = 0; t_upgrade = 0; t_false = 0 }

let sites t =
  Hashtbl.fold (fun k s acc -> (k, s) :: acc) t.sites []
  |> List.sort (fun (_, a) (_, b) ->
    compare
      (site_misses b + b.n_false, b.stall_cycles)
      (site_misses a + a.n_false, a.stall_cycles))

let spans t = List.rev t.matched
let span_count t = t.n_matched
let span_metrics t = t.span_metrics

let unmatched t =
  Hashtbl.fold
    (fun (node, addr, _) { or_kind; or_start } acc ->
      (node, addr, or_kind, or_start) :: acc)
    t.open_spans []
  |> List.sort compare

(* --- false sharing -------------------------------------------------- *)

let rec popcount m = if m = 0 then 0 else (m land 1) + popcount (m lsr 1)

(* True sharing shows as a longword-level conflict: some longword is
   written by two nodes, or read by a node that did not write it while
   another wrote it.  A block with invalidation traffic, several nodes
   involved, and no such longword is a false-sharing suspect. *)
let block_truly_shared (b : block_stats) =
  Hashtbl.fold
    (fun word wmask acc ->
      acc
      || popcount wmask >= 2
      ||
      let rmask =
        match Hashtbl.find_opt b.word_readers word with
        | Some m -> m
        | None -> 0
      in
      wmask <> 0 && rmask land lnot wmask <> 0)
    b.word_writers false

let is_suspect (b : block_stats) =
  b.invals >= 2
  && popcount (b.readers lor b.writers) >= 2
  && b.writers <> 0
  && not (block_truly_shared b)

let false_sharing_suspects t =
  Hashtbl.fold
    (fun base b acc -> if is_suspect b then (base, b) :: acc else acc)
    t.blocks []
  |> List.sort (fun (_, a) (_, b) -> compare b.invals a.invals)

let contended_blocks t =
  Hashtbl.fold
    (fun base b acc -> if b.invals > 0 then (base, b) :: acc else acc)
    t.blocks []
  |> List.sort (fun (_, a) (_, b) -> compare b.invals a.invals)

(* --- reports -------------------------------------------------------- *)

let report ?(top = 10) t ~name_site =
  let module Table = Shasta_stats.Table in
  let buf = Buffer.create 1024 in
  let all = sites t in
  let tot = totals t in
  let tbl =
    Table.create
      [ "site"; "read"; "write"; "upgrade"; "false"; "stalls"; "stall cyc" ]
  in
  List.iteri
    (fun i ((proc, pc), s) ->
      if i < top then
        Table.add_row tbl
          [ name_site ~proc ~pc;
            string_of_int s.n_read; string_of_int s.n_write;
            string_of_int s.n_upgrade; string_of_int s.n_false;
            string_of_int s.n_stall; string_of_int s.stall_cycles ])
    all;
  Buffer.add_string buf
    (Printf.sprintf "top %d of %d sites (by checks fired, stall cycles):\n"
       (min top (List.length all)) (List.length all));
  Buffer.add_string buf (Table.render tbl);
  Buffer.add_string buf
    (Printf.sprintf
       "all sites: read=%d write=%d upgrade=%d false=%d\n"
       tot.t_read tot.t_write tot.t_upgrade tot.t_false);
  (* contention *)
  let contended = contended_blocks t in
  if contended <> [] then begin
    let ct =
      Table.create
        [ "block"; "readers"; "writers"; "invals"; "ping-pong"; "verdict" ]
    in
    List.iteri
      (fun i (base, b) ->
        if i < top then
          Table.add_row ct
            [ Printf.sprintf "0x%x" base;
              string_of_int (popcount b.readers);
              string_of_int (popcount b.writers);
              string_of_int b.invals; string_of_int b.pingpong;
              (if is_suspect b then "false-sharing suspect"
               else if block_truly_shared b then "true sharing"
               else "-") ])
      contended;
    Buffer.add_string buf "\ncontended blocks (by invalidations):\n";
    Buffer.add_string buf (Table.render ct)
  end;
  (* spans *)
  Buffer.add_string buf
    (Printf.sprintf "\nprotocol spans: %d matched, %d unmatched at flush\n"
       t.n_matched (Hashtbl.length t.open_spans));
  List.iter
    (fun name ->
      let h = Metrics.hist_total t.span_metrics name in
      if h.Metrics.n > 0 then
        Buffer.add_string buf
          (Printf.sprintf
             "  %-22s n=%-6d mean=%-8.1f p50<=%-6d p95<=%-6d max=%d\n" name
             h.Metrics.n
             (float_of_int h.Metrics.sum /. float_of_int h.Metrics.n)
             (Metrics.percentile h 50.0) (Metrics.percentile h 95.0)
             h.Metrics.hmax))
    (Metrics.hist_names t.span_metrics);
  List.iter
    (fun (node, addr, kind, start) ->
      Buffer.add_string buf
        (Printf.sprintf "  unmatched: n%d %s @0x%x since cycle %d\n" node kind
           addr start))
    (unmatched t);
  Buffer.contents buf

(* Collapsed call stacks for flamegraph tools: one line per distinct
   (stack, site) pair, root frame first, the leaf being the site label,
   the count the number of checks (misses + false misses) that fired
   there.  Frames are the procedures on [Node.call_stack]. *)
let collapsed t ~name_proc ~name_site =
  let buf = Buffer.create 1024 in
  let lines =
    Hashtbl.fold
      (fun (stack, (proc, pc)) count acc ->
        let frames =
          List.rev_map (fun (fproc, _ret) -> name_proc fproc) stack
        in
        let line =
          String.concat ";" (frames @ [ name_site ~proc ~pc ])
        in
        (line, !count) :: acc)
      t.stacks []
    |> List.sort compare
  in
  List.iter
    (fun (line, count) ->
      Buffer.add_string buf (Printf.sprintf "%s %d\n" line count))
    lines;
  Buffer.contents buf

(* Parse collapsed-stack text back to (stack, count) pairs — the
   round-trip direction used by tests and by flamegraph tooling. *)
let parse_collapsed s =
  String.split_on_char '\n' s
  |> List.filter_map (fun line ->
    match String.rindex_opt line ' ' with
    | None -> None
    | Some i ->
      let stack = String.sub line 0 i in
      let count =
        int_of_string (String.sub line (i + 1) (String.length line - i - 1))
      in
      Some (stack, count))

(* Matched spans as emittable records (for the Chrome sink's async
   tracks), oldest first.  Draining is one-shot: a second flush gets
   nothing, keeping sinks duplicate-free. *)
let drain_spans t =
  if t.drained then []
  else begin
    t.drained <- true;
    List.rev_map
      (fun sp ->
        { Event.node = sp.sp_node; time = sp.sp_start;
          ev =
            Event.Span
              { kind = sp.sp_kind; addr = sp.sp_addr; dur = sp.sp_dur };
          site = None })
      t.matched
  end
