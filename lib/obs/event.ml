(* Typed observability events.

   Every interesting runtime occurrence — protocol messages, miss-check
   outcomes, invalidations, stalls, synchronization, batch handling —
   is one constructor here, stamped (in [record]) with the emitting
   node and its simulated cycle time.  The stream replaces the old
   printf-style [State.trace] callback: sinks render records as text,
   keep them in memory for tests, or export Chrome trace_event JSON. *)

type miss_kind = Read | Write | Upgrade

let miss_kind_name = function
  | Read -> "read"
  | Write -> "write"
  | Upgrade -> "upgrade"

(* Code location of the emitting node when the event happened: procedure
   index and instruction index into the frozen image, plus the call
   stack by reference ([Node.call_stack] is an immutable list, so
   storing it costs nothing).  The profiler aggregates per-site; the
   image maps (sproc, spc) back to a source label. *)
type site = { sproc : int; spc : int; sstack : (int * int) list }

type t =
  | Msg_send of { dst : int; kind : string; block : int; longs : int }
      (* a message actually handed to the interconnect (local
         deliveries never reach the network and are not counted,
         keeping event-derived totals equal to [Network.stats]) *)
  | Msg_recv of { src : int; kind : string; block : int; longs : int }
  | Miss of { kind : miss_kind; addr : int }
  | False_miss of { addr : int }
      (* the inline check fired but the state lookup resolved it *)
  | Invalidated of { addr : int; requester : int }
  | Downgraded of { addr : int; requester : int }
  | Stall of { reason : string; started : int; cycles : int }
      (* emitted at wake-up, when the duration is known *)
  | Lock_acquired of { id : int }
  | Barrier_passed
  | Flag_raised of { id : int }
  | Flag_woken of { id : int }
  | Batch_run of { nranges : int; waited : int }
  | Store_reissue of { addr : int }
  | Node_finished
  | Span of { kind : string; addr : int; dur : int }
      (* a matched protocol transaction (request to reply), synthesized
         by the profiler and drained into sinks at flush; [record.time]
         is the span's start *)
  | Net_fault of
      { dst : int; kind : string; retx : int; backoff : int;
        duplicated : bool; reordered : bool; timed_out : bool }
      (* the fault layer perturbed one logical send: [retx] attempts
         were dropped and retransmitted ([backoff] cycles of timeout),
         a duplicate arrived and was discarded, the frame was reordered
         and resequenced, or — on a bounded channel — the
         retransmission budget ran out and the frame was abandoned
         ([timed_out]).  Emitted at the sender's time with the sender's
         site, so retransmission stalls attribute to the code that paid
         for them. *)
  | Node_crash of { victim : int }
      (* crash-marker: the injector halted [victim]; stamped with the
         crash cycle so recovery cost is measurable from the trace *)
  | Node_recover of { victim : int }
      (* the injector brought [victim] back (protocol duties only — its
         program died with it) *)
  | Lease_takeover of { id : int; from : int }
      (* a lock/flag lease held by crashed node [from] was reclaimed so
         waiters make progress *)
  | Dir_rebuild of { block : int; from : int }
      (* a directory entry owned by (or homed on) crashed node [from]
         was reconstructed from surviving sharer state *)
  | Heartbeat of { cycles : int; live : int }
      (* progress pulse under --progress N: the cluster crossed another
         N million simulated cycles with [live] nodes still running —
         proof of life on long otherwise-silent runs *)
  | Home_migrated of { page : int; to_ : int }
      (* hot-page home migration (--home-policy migrate): directory
         requests for [page] now go to [to_], the node whose repeated
         remote misses earned it the entry *)

type record = { node : int; time : int; ev : t; site : site option }

let describe = function
  | Msg_send { dst; kind; block; longs } ->
    Printf.sprintf "-> n%d %s @0x%x (%d lw)" dst kind block longs
  | Msg_recv { src; kind; block; longs } ->
    Printf.sprintf "<- n%d %s @0x%x (%d lw)" src kind block longs
  | Miss { kind; addr } ->
    Printf.sprintf "miss %s @0x%x" (miss_kind_name kind) addr
  | False_miss { addr } -> Printf.sprintf "false-miss @0x%x" addr
  | Invalidated { addr; requester } ->
    Printf.sprintf "inval @0x%x (ack->n%d)" addr requester
  | Downgraded { addr; requester } ->
    Printf.sprintf "downgrade @0x%x (for n%d)" addr requester
  | Stall { reason; started; cycles } ->
    Printf.sprintf "stall %s %d cyc (since %d)" reason cycles started
  | Lock_acquired { id } -> Printf.sprintf "lock %d" id
  | Barrier_passed -> "barrier"
  | Flag_raised { id } -> Printf.sprintf "flag-set %d" id
  | Flag_woken { id } -> Printf.sprintf "flag-wake %d" id
  | Batch_run { nranges; waited } ->
    Printf.sprintf "batch %d range(s), %d wait(s)" nranges waited
  | Store_reissue { addr } -> Printf.sprintf "store-reissue @0x%x" addr
  | Node_finished -> "finished"
  | Span { kind; addr; dur } ->
    Printf.sprintf "span %s @0x%x %d cyc" kind addr dur
  | Net_fault { dst; kind; retx; backoff; duplicated; reordered; timed_out } ->
    Printf.sprintf "net-fault -> n%d %s%s%s%s%s" dst kind
      (if retx > 0 then Printf.sprintf " retx=%d (+%d cyc)" retx backoff
       else "")
      (if duplicated then " dup" else "")
      (if reordered then " reorder" else "")
      (if timed_out then " timeout" else "")
  | Node_crash { victim } -> Printf.sprintf "node-crash n%d" victim
  | Node_recover { victim } -> Printf.sprintf "node-recover n%d" victim
  | Lease_takeover { id; from } ->
    Printf.sprintf "lease-takeover %d (from n%d)" id from
  | Dir_rebuild { block; from } ->
    Printf.sprintf "dir-rebuild @0x%x (from n%d)" block from
  | Heartbeat { cycles; live } ->
    Printf.sprintf "heartbeat %d Mcyc (%d live)" (cycles / 1_000_000) live
  | Home_migrated { page; to_ } ->
    Printf.sprintf "home-migrate page %d -> n%d" page to_

(* Short name used as the Chrome trace_event [name] field. *)
let chrome_name = function
  | Msg_send { kind; _ } -> "send:" ^ kind
  | Msg_recv { kind; _ } -> "recv:" ^ kind
  | Miss { kind; _ } -> "miss:" ^ miss_kind_name kind
  | False_miss _ -> "false-miss"
  | Invalidated _ -> "inval"
  | Downgraded _ -> "downgrade"
  | Stall { reason; _ } -> "stall:" ^ reason
  | Lock_acquired _ -> "lock"
  | Barrier_passed -> "barrier"
  | Flag_raised _ -> "flag-set"
  | Flag_woken _ -> "flag-wake"
  | Batch_run _ -> "batch"
  | Store_reissue _ -> "store-reissue"
  | Node_finished -> "finished"
  | Span { kind; _ } -> "span:" ^ kind
  | Net_fault { kind; _ } -> "net-fault:" ^ kind
  | Node_crash _ -> "node-crash"
  | Node_recover _ -> "node-recover"
  | Lease_takeover _ -> "lease-takeover"
  | Dir_rebuild _ -> "dir-rebuild"
  | Heartbeat _ -> "heartbeat"
  | Home_migrated _ -> "home-migrate"
