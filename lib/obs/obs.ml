(* Observability facade: one value the whole runtime reports into.

   [emit] is the single entry point: it folds the event into the
   metrics registry (always on — plain integer bumps) and fans it out
   to the attached sinks (none attached means no work beyond the
   registry update).  Hot paths that only need a counter and have no
   event worth streaming use [incr]/[observe] directly. *)

module Event = Event
module Metrics = Metrics
module Sink = Sink
module Profile = Profile
module Perf = Perf
module Benchjson = Benchjson

type t = {
  metrics : Metrics.t;
  mutable sinks : Sink.t list;
  mutable profiler : Profile.t option;
}

let create ~nprocs () =
  { metrics = Metrics.create ~nprocs; sinks = []; profiler = None }

let metrics t = t.metrics

let attach t sink = t.sinks <- t.sinks @ [ sink ]

let attach_profiler t p = t.profiler <- Some p

let profiler t = t.profiler

let tracing t = t.sinks <> []

let flush t =
  (* drain the profiler's matched transactions into the sinks first, so
     a Chrome trace gets its async span tracks before the array closes;
     [Profile.drain_spans] is one-shot, so repeated flushes (which the
     sinks themselves also tolerate) add nothing twice *)
  (match t.profiler with
   | Some p when t.sinks <> [] ->
     List.iter
       (fun r -> List.iter (fun (s : Sink.t) -> s.on_record r) t.sinks)
       (Profile.drain_spans p)
   | _ -> ());
  List.iter Sink.flush t.sinks

(* Counter names, fixed here so that every layer and every consumer
   (CLI tables, bench, tests) agrees on them. *)
let c_msg_sent = "msg.sent"
let c_msg_recv = "msg.recv"

(* Same-node deliveries: the engine's local fast path never reaches the
   network taps, so without this counter local protocol traffic would be
   invisible in the registry. *)
let c_msg_local = "msg.local"
let c_miss_read = "miss.read"
let c_miss_write = "miss.write"
let c_miss_upgrade = "miss.upgrade"
let c_miss_false = "miss.false"
let c_miss_batch = "miss.batch"
let c_invals = "protocol.invalidations"
let c_downgrades = "protocol.downgrades"
let c_store_reissues = "protocol.store_reissues"
let c_stalls = "stall.count"
let c_locks = "sync.lock_acquires"
let c_barriers = "sync.barriers"
let c_flag_sets = "sync.flag_sets"
let c_flag_wakes = "sync.flag_wakes"
let c_polls = "runtime.polls"
let c_finished = "runtime.threads_finished"
let c_spans = "span.matched"

(* Fault-layer activity under --net-faults: dropped transmission
   attempts, discarded duplicate arrivals, retransmissions (== drops:
   every dropped attempt is retransmitted), resequenced reorderings,
   and total cycles spent waiting out retransmission timeouts. *)
let c_net_drop = "net.drop"
let c_net_dup = "net.dup"
let c_net_retx = "net.retx"
let c_net_reorder = "net.reorder"
let c_net_backoff = "net.backoff_cycles"
let c_net_timeout = "net.timeout"

(* Node-level fault tolerance under --node-faults: injected halts and
   restarts, lock/flag leases reclaimed from dead holders, and
   directory entries reconstructed from surviving sharer state.  The
   takeover/rebuild counters are the measurable cost of one recovery. *)
let c_node_crash = "node.crash"
let c_node_recover = "node.recover"
let c_lease_takeover = "lease.takeover"
let c_dir_rebuild = "dir.rebuild"

(* Progress pulses emitted under --progress N. *)
let c_heartbeat = "runtime.heartbeat"

(* Hot-page directory-home migrations under --home-policy migrate. *)
let c_home_migrate = "dir.home_migrate"

let h_payload = "msg.payload_longs"
let h_stall = "stall.cycles"
let h_miss_latency = "miss.latency_cycles"

(* Invalidation fan-out: sharers invalidated per directory-driven
   invalidation run — the distribution that separates the directory
   organizations (broadcast/coarse modes fan wider than full-map). *)
let h_fanout = "dir.fanout"

let count_event t ~node (ev : Event.t) =
  let m = t.metrics in
  match ev with
  | Msg_send { longs; _ } ->
    Metrics.incr m ~node c_msg_sent;
    Metrics.observe m ~node h_payload longs
  | Msg_recv _ -> Metrics.incr m ~node c_msg_recv
  | Miss { kind = Read; _ } -> Metrics.incr m ~node c_miss_read
  | Miss { kind = Write; _ } -> Metrics.incr m ~node c_miss_write
  | Miss { kind = Upgrade; _ } -> Metrics.incr m ~node c_miss_upgrade
  | False_miss _ -> Metrics.incr m ~node c_miss_false
  | Invalidated _ -> Metrics.incr m ~node c_invals
  | Downgraded _ -> Metrics.incr m ~node c_downgrades
  | Stall { reason; cycles; _ } ->
    Metrics.incr m ~node c_stalls;
    Metrics.observe m ~node h_stall cycles;
    if reason = "miss" then Metrics.observe m ~node h_miss_latency cycles
  | Lock_acquired _ -> Metrics.incr m ~node c_locks
  | Barrier_passed -> Metrics.incr m ~node c_barriers
  | Flag_raised _ -> Metrics.incr m ~node c_flag_sets
  | Flag_woken _ -> Metrics.incr m ~node c_flag_wakes
  | Batch_run _ -> Metrics.incr m ~node c_miss_batch
  | Store_reissue _ -> Metrics.incr m ~node c_store_reissues
  | Node_finished -> Metrics.incr m ~node c_finished
  | Span _ -> Metrics.incr m ~node c_spans
  | Net_fault { retx; backoff; duplicated; reordered; timed_out; _ } ->
    if retx > 0 then begin
      Metrics.add m ~node c_net_drop retx;
      Metrics.add m ~node c_net_retx retx;
      Metrics.add m ~node c_net_backoff backoff
    end;
    if duplicated then Metrics.incr m ~node c_net_dup;
    if reordered then Metrics.incr m ~node c_net_reorder;
    if timed_out then Metrics.incr m ~node c_net_timeout
  | Node_crash _ -> Metrics.incr m ~node c_node_crash
  | Node_recover _ -> Metrics.incr m ~node c_node_recover
  | Lease_takeover _ -> Metrics.incr m ~node c_lease_takeover
  | Dir_rebuild _ -> Metrics.incr m ~node c_dir_rebuild
  | Heartbeat _ -> Metrics.incr m ~node c_heartbeat
  | Home_migrated _ -> Metrics.incr m ~node c_home_migrate

let emit t ?site ~node ~time ev =
  count_event t ~node ev;
  match (t.sinks, t.profiler) with
  | [], None -> ()
  | sinks, profiler ->
    let r = { Event.node; time; ev; site } in
    (match profiler with Some p -> Profile.feed p r | None -> ());
    List.iter (fun (s : Sink.t) -> s.on_record r) sinks

let incr t ~node name = Metrics.incr t.metrics ~node name
let observe t ~node name v = Metrics.observe t.metrics ~node name v
