(* Host-side performance counters.

   Everything else in the registry measures the *simulated* machine;
   this module measures the simulator itself: monotonic wall time
   (bechamel's clock — immune to NTP steps), a per-phase breakdown
   (compile / load / run / drain), and OCaml GC deltas over the
   measured region.  A [t] is an accumulator: [phase] times a closure
   and charges it to a named bucket, [report] closes the measurement
   and snapshots the GC.  The clock is injectable so tests can drive
   deterministic timings.

   Host numbers are machine-dependent by nature; they feed the
   tolerance-gated half of {!Benchjson.gate} and the
   simulated-cycles-per-host-second figure that the perf trajectory
   tracks across PRs. *)

type t = {
  clock : unit -> float;  (* monotonic seconds *)
  t0 : float;
  gc0 : Gc.stat;
  mutable phases : (string * float) list;  (* insertion order, reversed *)
}

type report = {
  wall_s : float;
  phases : (string * float) list;  (* seconds per phase, insertion order *)
  gc : Benchjson.gc;
}

let monotonic_clock () =
  Int64.to_float (Monotonic_clock.now ()) *. 1e-9

let create ?(clock = monotonic_clock) () =
  { clock; t0 = clock (); gc0 = Gc.quick_stat (); phases = [] }

let add_phase (t : t) name seconds =
  match List.assoc_opt name t.phases with
  | Some _ ->
    t.phases <-
      List.map (fun (n, v) -> if n = name then (n, v +. seconds) else (n, v))
        t.phases
  | None -> t.phases <- t.phases @ [ (name, seconds) ]

let phase t name f =
  let start = t.clock () in
  Fun.protect ~finally:(fun () -> add_phase t name (t.clock () -. start)) f

let report t =
  let gc1 = Gc.quick_stat () in
  { wall_s = t.clock () -. t.t0;
    phases = t.phases;
    gc =
      { Benchjson.minor_words = gc1.Gc.minor_words -. t.gc0.Gc.minor_words;
        major_words = gc1.Gc.major_words -. t.gc0.Gc.major_words;
        minor_collections =
          gc1.Gc.minor_collections - t.gc0.Gc.minor_collections;
        major_collections =
          gc1.Gc.major_collections - t.gc0.Gc.major_collections } }

(* Simulated cycles retired per host second.  Charged against the "run"
   phase when one was measured (compile/load time is not the
   simulator's fault), else against total wall time. *)
let cyc_per_s r ~sim_cycles =
  let denom =
    match List.assoc_opt "run" r.phases with
    | Some s when s > 0.0 -> s
    | _ -> r.wall_s
  in
  if denom <= 0.0 then 0.0 else float_of_int sim_cycles /. denom

(* Fold a report into the metrics registry (node 0 — host metrics have
   no per-node meaning) so `--metrics` dumps and CSV exports carry the
   host numbers next to the simulated ones.  Times in microseconds:
   the registry stores ints. *)
let us s = int_of_float (s *. 1e6)

let publish m r =
  Metrics.add m ~node:0 "perf.wall_us" (us r.wall_s);
  List.iter
    (fun (name, s) -> Metrics.add m ~node:0 ("perf." ^ name ^ "_us") (us s))
    r.phases;
  Metrics.add m ~node:0 "perf.gc.minor_words"
    (int_of_float r.gc.Benchjson.minor_words);
  Metrics.add m ~node:0 "perf.gc.major_words"
    (int_of_float r.gc.Benchjson.major_words);
  Metrics.add m ~node:0 "perf.gc.minor_collections"
    r.gc.Benchjson.minor_collections;
  Metrics.add m ~node:0 "perf.gc.major_collections"
    r.gc.Benchjson.major_collections

(* Current git revision for the [git_rev] record field.  Memoized; the
   SHASTA_GIT_REV environment variable overrides (CI sets it to the
   exact SHA under test), and a tree without git yields "unknown". *)
let git_rev_memo = ref None

let git_rev () =
  match !git_rev_memo with
  | Some r -> r
  | None ->
    let r =
      match Sys.getenv_opt "SHASTA_GIT_REV" with
      | Some r when r <> "" -> r
      | _ -> (
        try
          let ic =
            Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null"
          in
          let line = try input_line ic with End_of_file -> "" in
          match (Unix.close_process_in ic, line) with
          | Unix.WEXITED 0, l when l <> "" -> l
          | _ -> "unknown"
        with _ -> "unknown")
    in
    git_rev_memo := Some r;
    r
