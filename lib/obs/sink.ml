(* Pluggable event sinks.

   A sink is a pair of closures: [on_record] consumes each event
   record as it is emitted, [flush] finalizes any buffered output
   (closing the Chrome JSON array, for instance).  Three sinks cover
   the subsystem's uses: an in-memory ring buffer for tests, a
   line-oriented text log subsuming the old [State.trace] callback,
   and Chrome trace_event JSON that opens directly in
   chrome://tracing or Perfetto with one track per node. *)

type t = {
  on_record : Event.record -> unit;
  flush : unit -> unit;
}

let flush t = t.flush ()

(* ------------------------------------------------------------------ *)
(* Ring buffer                                                         *)
(* ------------------------------------------------------------------ *)

type ring = {
  cap : int;
  buf : Event.record option array;
  mutable next : int; (* total records ever pushed *)
}

let ring ~capacity =
  if capacity <= 0 then invalid_arg "Sink.ring: capacity must be positive";
  { cap = capacity; buf = Array.make capacity None; next = 0 }

let ring_sink r =
  { on_record =
      (fun rec_ ->
        r.buf.(r.next mod r.cap) <- Some rec_;
        r.next <- r.next + 1);
    flush = (fun () -> ()) }

(* Records still held, oldest first. *)
let ring_contents r =
  let kept = min r.next r.cap in
  List.init kept (fun i ->
    Option.get r.buf.((r.next - kept + i) mod r.cap))

(* Records pushed out of the buffer by later ones. *)
let ring_dropped r = max 0 (r.next - r.cap)

(* ------------------------------------------------------------------ *)
(* Text log                                                            *)
(* ------------------------------------------------------------------ *)

(* One line per record: "  <cycle> n<node> <description>", matching the
   shape of the printf trace this subsystem replaces; site-stamped
   records carry their (proc, pc) so traces can be read next to the
   disassembly. *)
let line (r : Event.record) =
  let site =
    match r.site with
    | Some s -> Printf.sprintf " [%d:%d]" s.sproc s.spc
    | None -> ""
  in
  Printf.sprintf "%8d n%d %s%s" r.time r.node (Event.describe r.ev) site

let text out = { on_record = (fun r -> out (line r)); flush = (fun () -> ()) }

(* ------------------------------------------------------------------ *)
(* Chrome trace_event JSON                                             *)
(* ------------------------------------------------------------------ *)

(* The "JSON array format": a top-level array of event objects, which
   both chrome://tracing and Perfetto accept.  Cycles are written as
   the microsecond timestamps the format expects — the UI then simply
   displays simulated cycles as "us".  All nodes share pid 0 and get
   one track (tid) each.  Stalls become complete ("X") events spanning
   their duration; everything else is an instant ("i"). *)

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let chrome_args (ev : Event.t) =
  let kv = Printf.sprintf in
  match ev with
  | Msg_send { dst; kind = _; block; longs } ->
    [ kv "\"dst\":%d" dst; kv "\"block\":\"0x%x\"" block;
      kv "\"longs\":%d" longs ]
  | Msg_recv { src; kind = _; block; longs } ->
    [ kv "\"src\":%d" src; kv "\"block\":\"0x%x\"" block;
      kv "\"longs\":%d" longs ]
  | Miss { addr; _ } | False_miss { addr } | Store_reissue { addr } ->
    [ kv "\"addr\":\"0x%x\"" addr ]
  | Invalidated { addr; requester } | Downgraded { addr; requester } ->
    [ kv "\"addr\":\"0x%x\"" addr; kv "\"requester\":%d" requester ]
  | Stall _ -> []
  | Span { addr; dur; _ } ->
    [ kv "\"addr\":\"0x%x\"" addr; kv "\"dur\":%d" dur ]
  | Lock_acquired { id } | Flag_raised { id } | Flag_woken { id } ->
    [ kv "\"id\":%d" id ]
  | Batch_run { nranges; waited } ->
    [ kv "\"nranges\":%d" nranges; kv "\"waited\":%d" waited ]
  | Net_fault { dst; retx; backoff; duplicated; reordered; timed_out; _ } ->
    [ kv "\"dst\":%d" dst; kv "\"retx\":%d" retx;
      kv "\"backoff\":%d" backoff;
      kv "\"dup\":%b" duplicated; kv "\"reorder\":%b" reordered;
      kv "\"timeout\":%b" timed_out ]
  | Node_crash { victim } | Node_recover { victim } ->
    [ kv "\"victim\":%d" victim ]
  | Lease_takeover { id; from } ->
    [ kv "\"id\":%d" id; kv "\"from\":%d" from ]
  | Dir_rebuild { block; from } ->
    [ kv "\"block\":\"0x%x\"" block; kv "\"from\":%d" from ]
  | Heartbeat { cycles; live } ->
    [ kv "\"cycles\":%d" cycles; kv "\"live\":%d" live ]
  | Home_migrated { page; to_ } ->
    [ kv "\"page\":%d" page; kv "\"to\":%d" to_ ]
  | Barrier_passed | Node_finished -> []

let chrome_record (r : Event.record) =
  let name = json_escape (Event.chrome_name r.ev) in
  let args = String.concat "," (chrome_args r.ev) in
  match r.ev with
  | Stall { started; cycles; _ } ->
    Printf.sprintf
      "{\"name\":\"%s\",\"ph\":\"X\",\"ts\":%d,\"dur\":%d,\"pid\":0,\
       \"tid\":%d,\"args\":{%s}}"
      name started cycles r.node args
  | _ ->
    Printf.sprintf
      "{\"name\":\"%s\",\"ph\":\"i\",\"ts\":%d,\"pid\":0,\"tid\":%d,\
       \"s\":\"t\",\"args\":{%s}}"
      name r.time r.node args

(* Streaming writer: records go out as they arrive; [flush] closes the
   array — exactly once, however often it is called (the CLI and a
   library user may both flush the same [Obs.t]; a second terminator
   would corrupt the JSON).  Records arriving after the close are
   dropped.  A metadata record names each node's track; profiler spans
   become async ("b"/"e") pairs on the emitting node's track. *)
let chrome ?(nprocs = 0) oc =
  let first = ref true in
  let closed = ref false in
  let next_span = ref 0 in
  let emit s =
    if !first then first := false else output_string oc ",\n";
    output_string oc s
  in
  output_string oc "[\n";
  for n = 0 to nprocs - 1 do
    emit
      (Printf.sprintf
         "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":%d,\
          \"args\":{\"name\":\"node %d\"}}"
         n n)
  done;
  { on_record =
      (fun r ->
        if not !closed then
          match r.ev with
          | Event.Span { kind; addr; dur } ->
            incr next_span;
            let name = json_escape ("span:" ^ kind) in
            emit
              (Printf.sprintf
                 "{\"name\":\"%s\",\"cat\":\"span\",\"ph\":\"b\",\"ts\":%d,\
                  \"pid\":0,\"tid\":%d,\"id\":%d,\"args\":{\"addr\":\"0x%x\"}}"
                 name r.time r.node !next_span addr);
            emit
              (Printf.sprintf
                 "{\"name\":\"%s\",\"cat\":\"span\",\"ph\":\"e\",\"ts\":%d,\
                  \"pid\":0,\"tid\":%d,\"id\":%d,\"args\":{}}"
                 name (r.time + dur) r.node !next_span)
          | _ -> emit (chrome_record r));
    flush =
      (fun () ->
        if not !closed then begin
          closed := true;
          output_string oc "\n]\n";
          Stdlib.flush oc
        end) }
