(** Versioned BENCH_*.json records: the one schema every benchmark
    artifact in the repo is written in and parsed from.

    Files are JSON Lines — one record per line — so emitters can
    append section by section.  Simulated metrics (sim_cycles,
    messages, misses and the per-workload [extra] fields) are
    deterministic and gate on exact equality; host metrics (wall_s,
    cyc_per_s, gc) gate on a relative tolerance. *)

type gc = {
  minor_words : float;
  major_words : float;
  minor_collections : int;
  major_collections : int;
}

val no_gc : gc

(** Extra metrics keep their JSON numeric kind so emit/parse
    round-trips byte-identically. *)
type num = Int of int | Float of float

type t = {
  schema : int;
  workload : string;
  nprocs : int;
  line : int;
  opts : string;
  sim_cycles : int;
  messages : int;
  misses : int;
  wall_s : float;
  cyc_per_s : float;
  gc : gc;
  git_rev : string;
  extra : (string * num) list;
}

val schema_version : int

val make :
  workload:string ->
  nprocs:int ->
  ?line:int ->
  ?opts:string ->
  sim_cycles:int ->
  ?messages:int ->
  ?misses:int ->
  ?wall_s:float ->
  ?cyc_per_s:float ->
  ?gc:gc ->
  ?git_rev:string ->
  ?extra:(string * num) list ->
  unit ->
  t

val key : t -> string * int * int * string
(** Identity of a record: [(workload, nprocs, line, opts)].  Baseline
    and candidate records are matched on it. *)

val key_str : t -> string

val strip_host : t -> t
(** Zero the host-side fields (wall_s, cyc_per_s, gc) — used to build
    machine-independent checked-in baselines. *)

val float_str : float -> string
(** Shortest decimal rendering that round-trips exactly. *)

val num_str : num -> string

val emit : t -> string
(** One record as a single JSON object line (no trailing newline).
    Keys are formatted as ["key": value] with a space after the colon,
    which CI greps rely on. *)

val parse : string -> t
(** Parse one record line.  @raise Failure on malformed input or a
    schema version newer than {!schema_version}. *)

val load_string : string -> t list
(** Parse a whole BENCH file: JSON Lines, or a single top-level JSON
    array. *)

val load_file : string -> t list

(** {2 Regression gate} *)

type status = Ok | Regression | Missing | New | Skipped

type check = {
  c_key : string;
  c_metric : string;
  c_class : [ `Sim | `Host ];
  c_base : num option;
  c_cand : num option;
  c_ok : bool;
  c_status : status;
  c_note : string;
}

val gate :
  ?tol:float ->
  ?sim_only:bool ->
  baseline:t list ->
  candidate:t list ->
  unit ->
  check list * bool
(** Compare candidate records against baseline records.  Simulated
    metrics must match exactly; host metrics may drift up to [tol]
    (default 0.25) in the regression direction, and are skipped when
    the baseline value is zero (unmeasured) or [sim_only] is set.  A
    baseline record absent from the candidate fails; a candidate-only
    record is reported [New] and passes.  Returns all checks and
    whether the gate passes. *)

val status_str : status -> string
