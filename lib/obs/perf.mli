(** Host-side performance counters: monotonic wall time, per-phase
    breakdown (compile / load / run / drain), and GC deltas over the
    measured region — the simulator measuring itself rather than the
    simulated machine. *)

type t

type report = {
  wall_s : float;  (** total wall seconds from [create] to [report] *)
  phases : (string * float) list;
      (** seconds charged per phase, in first-use order *)
  gc : Benchjson.gc;  (** GC delta over the measured region *)
}

val monotonic_clock : unit -> float
(** Monotonic seconds (bechamel's clock). *)

val create : ?clock:(unit -> float) -> unit -> t
(** Start a measurement.  [clock] (default {!monotonic_clock}) is
    injectable for deterministic tests. *)

val phase : t -> string -> (unit -> 'a) -> 'a
(** Time the closure and charge it to the named phase bucket;
    re-entering a name accumulates.  Exceptions propagate, the time
    still lands in the bucket. *)

val add_phase : t -> string -> float -> unit
(** Charge seconds to a bucket directly (for regions not expressible
    as a closure). *)

val report : t -> report

val cyc_per_s : report -> sim_cycles:int -> float
(** Simulated cycles per host second, charged against the "run" phase
    when one was measured, else total wall time. *)

val publish : Metrics.t -> report -> unit
(** Fold the report into the registry as node-0 counters
    ([perf.wall_us], [perf.<phase>_us], [perf.gc.*]). *)

val git_rev : unit -> string
(** Short git revision of the working tree; [SHASTA_GIT_REV] overrides;
    "unknown" when neither is available.  Memoized. *)
