(* Metrics registry: named counters and fixed-bucket histograms with
   per-node values and cluster-wide aggregation.

   Counters are plain per-node int arrays keyed by name; histograms
   have a fixed, monotonically increasing bound array (bucket i counts
   observations <= bounds.(i); one extra overflow bucket).  The
   registry is cheap enough to stay always-on: the runtime reports
   into it at every emit point, and phase deltas are taken with
   [copy]/[sub] (the scheduler runs several phases per simulation; the
   benchmark tables only want the timed parallel phase). *)

type hist = {
  bounds : int array;
  counts : int array; (* length = Array.length bounds + 1 (overflow) *)
  mutable n : int;
  mutable sum : int;
  mutable hmax : int;
}

type t = {
  nprocs : int;
  counters : (string, int array) Hashtbl.t;
  hists : (string, hist array) Hashtbl.t;
  (* registration order, reversed; keeps dumps stable *)
  mutable counter_order : string list;
  mutable hist_order : string list;
}

let create ~nprocs =
  { nprocs;
    counters = Hashtbl.create 32;
    hists = Hashtbl.create 8;
    counter_order = [];
    hist_order = [] }

(* Power-of-two-ish buckets covering both payload sizes (longwords)
   and latencies (cycles up to the millions). *)
let default_bounds =
  [| 1; 2; 4; 8; 16; 32; 64; 128; 256; 512; 1024; 4096; 16384; 65536;
     262144; 1048576 |]

let counter_cells t name =
  match Hashtbl.find_opt t.counters name with
  | Some c -> c
  | None ->
    let c = Array.make t.nprocs 0 in
    Hashtbl.add t.counters name c;
    t.counter_order <- name :: t.counter_order;
    c

let add t ~node name by =
  let c = counter_cells t name in
  c.(node) <- c.(node) + by

let incr t ~node name = add t ~node name 1

let counter t name node =
  match Hashtbl.find_opt t.counters name with
  | Some c -> c.(node)
  | None -> 0

let counter_total t name =
  match Hashtbl.find_opt t.counters name with
  | Some c -> Array.fold_left ( + ) 0 c
  | None -> 0

let counter_names t = List.rev t.counter_order
let hist_names t = List.rev t.hist_order

let fresh_hist bounds =
  { bounds; counts = Array.make (Array.length bounds + 1) 0;
    n = 0; sum = 0; hmax = 0 }

let hist_cells t ?(bounds = default_bounds) name =
  match Hashtbl.find_opt t.hists name with
  | Some h -> h
  | None ->
    let h = Array.init t.nprocs (fun _ -> fresh_hist bounds) in
    Hashtbl.add t.hists name h;
    t.hist_order <- name :: t.hist_order;
    h

let bucket_of bounds v =
  let n = Array.length bounds in
  let rec go i = if i >= n || v <= bounds.(i) then i else go (i + 1) in
  go 0

let observe t ?bounds ~node name v =
  let h = (hist_cells t ?bounds name).(node) in
  let b = bucket_of h.bounds v in
  h.counts.(b) <- h.counts.(b) + 1;
  h.n <- h.n + 1;
  h.sum <- h.sum + v;
  if v > h.hmax then h.hmax <- v

let hist t name node = (hist_cells t name).(node)

(* Percentile estimate from the bucket counts: find the bucket holding
   the rank-[ceil(p/100 * n)] observation and interpolate linearly
   within it by rank position.  The bucket's upper edge is clamped to
   [hmax] (for the overflow bucket and for bounds beyond the observed
   maximum), so p100 = max exactly; fractional percentiles such as
   99.9 resolve to distinct values instead of all collapsing onto the
   same bucket bound. *)
let percentile (h : hist) p =
  if h.n = 0 then 0
  else begin
    let rank =
      max 1 (int_of_float (ceil (p /. 100.0 *. float_of_int h.n)))
    in
    let nb = Array.length h.bounds in
    let rec go i seen =
      if i > nb then h.hmax
      else
        let c = h.counts.(i) in
        if seen + c >= rank then begin
          let lo = if i = 0 then 0 else h.bounds.(i - 1) in
          let hi = if i >= nb then h.hmax else min h.bounds.(i) h.hmax in
          if hi <= lo then min hi h.hmax
          else
            (* rank-th observation is the (rank-seen)-th of the [c] in
               this bucket; spread them evenly across (lo, hi]. *)
            let frac = float_of_int (rank - seen) /. float_of_int c in
            lo + int_of_float (ceil (frac *. float_of_int (hi - lo)))
        end
        else go (i + 1) (seen + c)
    in
    go 0 0
  end

(* Cluster-wide aggregate of a histogram (bounds are shared). *)
let hist_total t name =
  let hs = hist_cells t name in
  let agg = fresh_hist hs.(0).bounds in
  Array.iter
    (fun h ->
      Array.iteri (fun i c -> agg.counts.(i) <- agg.counts.(i) + c) h.counts;
      agg.n <- agg.n + h.n;
      agg.sum <- agg.sum + h.sum;
      if h.hmax > agg.hmax then agg.hmax <- h.hmax)
    hs;
  agg

(* ------------------------------------------------------------------ *)
(* Snapshots: copy and pointwise subtraction, for phase deltas         *)
(* ------------------------------------------------------------------ *)

let copy t =
  let r = create ~nprocs:t.nprocs in
  Hashtbl.iter (fun k v -> Hashtbl.add r.counters k (Array.copy v)) t.counters;
  Hashtbl.iter
    (fun k hs ->
      Hashtbl.add r.hists k
        (Array.map
           (fun h ->
             { h with counts = Array.copy h.counts; bounds = h.bounds })
           hs))
    t.hists;
  r.counter_order <- t.counter_order;
  r.hist_order <- t.hist_order;
  r

(* [sub a b] = a - b, per node and per bucket.  Metrics present only in
   [a] pass through; [b] must be an earlier snapshot of the same
   registry.  Histogram [hmax] is the later snapshot's max (maxima are
   not invertible). *)
let sub a b =
  let r = copy a in
  Hashtbl.iter
    (fun k v ->
      match Hashtbl.find_opt b.counters k with
      | Some old ->
        for i = 0 to Array.length v - 1 do
          v.(i) <- v.(i) - old.(i)
        done
      | None -> ())
    r.counters;
  Hashtbl.iter
    (fun k hs ->
      match Hashtbl.find_opt b.hists k with
      | Some olds ->
        Array.iteri
          (fun i h ->
            let o = olds.(i) in
            for j = 0 to Array.length h.counts - 1 do
              h.counts.(j) <- h.counts.(j) - o.counts.(j)
            done;
            h.n <- h.n - o.n;
            h.sum <- h.sum - o.sum)
          hs
      | None -> ())
    r.hists;
  r

(* ------------------------------------------------------------------ *)
(* Dumps                                                               *)
(* ------------------------------------------------------------------ *)

let bound_label bounds i =
  if i >= Array.length bounds then Printf.sprintf "> %d" bounds.(Array.length bounds - 1)
  else Printf.sprintf "<= %d" bounds.(i)

(* Aligned text tables: per-node columns plus the aggregate. *)
let to_string t =
  let module Table = Shasta_stats.Table in
  let buf = Buffer.create 1024 in
  let nodes = List.init t.nprocs (fun i -> Printf.sprintf "n%d" i) in
  let ct = Table.create (("counter" :: nodes) @ [ "total" ]) in
  List.iter
    (fun name ->
      Table.add_row ct
        ((name
          :: List.init t.nprocs (fun i -> string_of_int (counter t name i)))
         @ [ string_of_int (counter_total t name) ]))
    (List.sort compare (counter_names t));
  Buffer.add_string buf (Table.render ct);
  List.iter
    (fun name ->
      let agg = hist_total t name in
      Buffer.add_string buf
        (Printf.sprintf
           "\nhistogram %s: n=%d sum=%d max=%d mean=%.1f p50<=%d p95<=%d \
            p99<=%d\n"
           name agg.n agg.sum agg.hmax
           (if agg.n = 0 then 0.0
            else float_of_int agg.sum /. float_of_int agg.n)
           (percentile agg 50.0) (percentile agg 95.0)
           (percentile agg 99.0));
      let ht =
        Table.create (("bucket" :: nodes) @ [ "total" ])
      in
      Array.iteri
        (fun i total ->
          if total > 0 then
            Table.add_row ht
              ((bound_label agg.bounds i
                :: List.init t.nprocs (fun nd ->
                  string_of_int (hist t name nd).counts.(i)))
               @ [ string_of_int total ]))
        agg.counts;
      Buffer.add_string buf (Table.render ht))
    (List.sort compare (hist_names t));
  Buffer.contents buf

(* Machine-readable dump: one line per (metric, node) cell. *)
let to_csv t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "metric,node,value\n";
  List.iter
    (fun name ->
      for i = 0 to t.nprocs - 1 do
        Buffer.add_string buf
          (Printf.sprintf "%s,%d,%d\n" name i (counter t name i))
      done;
      Buffer.add_string buf
        (Printf.sprintf "%s,total,%d\n" name (counter_total t name)))
    (List.sort compare (counter_names t));
  List.iter
    (fun name ->
      let agg = hist_total t name in
      Array.iteri
        (fun i c ->
          Buffer.add_string buf
            (Printf.sprintf "%s[%s],total,%d\n" name
               (bound_label agg.bounds i) c))
        agg.counts)
    (List.sort compare (hist_names t));
  Buffer.contents buf
