(* Versioned BENCH_*.json records: one schema for every benchmark
   artifact in the tree.

   A BENCH file is JSON Lines — one record per line, append-friendly so
   each bench section can add its rows as it finishes.  Every record
   carries the schema version, the identifying key (workload, nprocs,
   line, opts), the deterministic simulated metrics (sim_cycles,
   messages, misses, plus workload-specific [extra] fields such as the
   KV latency percentiles), and the host-side metrics measured by
   {!Perf} (wall seconds, simulated cycles per host second, GC deltas).
   Simulated metrics are byte-identical across runs of the same seed;
   host metrics vary with the machine, which is why [gate] applies
   exact equality to the former and a tolerance to the latter.

   Emit and parse live together here so that one module defines the
   wire format: the KV --bench-out writer, the bench harness --json-out
   emitter, the regression gate and the tests all go through it.  The
   parser is a minimal self-contained JSON reader (objects, arrays,
   strings, numbers, booleans, null) — no external JSON dependency. *)

type gc = {
  minor_words : float;
  major_words : float;
  minor_collections : int;
  major_collections : int;
}

let no_gc =
  { minor_words = 0.0; major_words = 0.0; minor_collections = 0;
    major_collections = 0 }

type num = Int of int | Float of float

type t = {
  schema : int;
  workload : string;
  nprocs : int;
  line : int;  (* coherence line size in bytes *)
  opts : string;  (* instrumentation option set, e.g. "full" *)
  sim_cycles : int;
  messages : int;
  misses : int;
  wall_s : float;  (* host: 0.0 when not measured *)
  cyc_per_s : float;  (* host: simulated cycles per host second *)
  gc : gc;  (* host: GC delta over the measured run *)
  git_rev : string;
  extra : (string * num) list;
      (* workload-specific simulated metrics (KV percentiles, op and
         error counts, ...) — gated with exact equality like the fixed
         simulated fields *)
}

let schema_version = 1

let make ~workload ~nprocs ?(line = 64) ?(opts = "full") ~sim_cycles
    ?(messages = 0) ?(misses = 0) ?(wall_s = 0.0) ?(cyc_per_s = 0.0)
    ?(gc = no_gc) ?(git_rev = "") ?(extra = []) () =
  { schema = schema_version; workload; nprocs; line; opts; sim_cycles;
    messages; misses; wall_s; cyc_per_s; gc; git_rev; extra }

(* The identifying key: records in a baseline and a candidate file are
   matched on it. *)
let key r = (r.workload, r.nprocs, r.line, r.opts)

let key_str r = Printf.sprintf "%s p=%d line=%d %s" r.workload r.nprocs r.line r.opts

let strip_host r = { r with wall_s = 0.0; cyc_per_s = 0.0; gc = no_gc }

(* ------------------------------------------------------------------ *)
(* Emit                                                                *)
(* ------------------------------------------------------------------ *)

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Shortest decimal rendering that round-trips the float exactly, so
   emit/parse is lossless and two emissions of the same value are
   byte-identical. *)
let float_str f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let num_str = function Int i -> string_of_int i | Float f -> float_str f

(* One record as a single JSON object line.  Keys are emitted as
   ["key": value] (space after the colon) — CI greps such as
   '"errors": 0' key on that shape. *)
let emit r =
  let b = Buffer.create 256 in
  let first = ref true in
  let field k v =
    if !first then first := false else Buffer.add_string b ", ";
    Buffer.add_string b (Printf.sprintf "\"%s\": %s" (escape k) v)
  in
  Buffer.add_char b '{';
  field "schema" (string_of_int r.schema);
  field "workload" (Printf.sprintf "\"%s\"" (escape r.workload));
  field "nprocs" (string_of_int r.nprocs);
  field "line" (string_of_int r.line);
  field "opts" (Printf.sprintf "\"%s\"" (escape r.opts));
  field "sim_cycles" (string_of_int r.sim_cycles);
  field "messages" (string_of_int r.messages);
  field "misses" (string_of_int r.misses);
  field "wall_s" (float_str r.wall_s);
  field "cyc_per_s" (float_str r.cyc_per_s);
  field "gc"
    (Printf.sprintf
       "{\"minor_words\": %s, \"major_words\": %s, \
        \"minor_collections\": %d, \"major_collections\": %d}"
       (float_str r.gc.minor_words) (float_str r.gc.major_words)
       r.gc.minor_collections r.gc.major_collections);
  field "git_rev" (Printf.sprintf "\"%s\"" (escape r.git_rev));
  List.iter (fun (k, v) -> field k (num_str v)) r.extra;
  Buffer.add_char b '}';
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Parse                                                               *)
(* ------------------------------------------------------------------ *)

type json =
  | Jnull
  | Jbool of bool
  | Jnum of num
  | Jstr of string
  | Jlist of json list
  | Jobj of (string * json) list

exception Malformed of string

let malformed fmt = Printf.ksprintf (fun s -> raise (Malformed s)) fmt

let parse_json s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> malformed "expected '%c', found '%c' at %d" c c' !pos
    | None -> malformed "expected '%c', found end of input" c
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> malformed "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
         | Some 'n' -> Buffer.add_char buf '\n'
         | Some 't' -> Buffer.add_char buf '\t'
         | Some 'r' -> Buffer.add_char buf '\r'
         | Some 'b' -> Buffer.add_char buf '\b'
         | Some 'f' -> Buffer.add_char buf '\012'
         | Some 'u' ->
           if !pos + 4 >= n then malformed "truncated \\u escape";
           let code = int_of_string ("0x" ^ String.sub s (!pos + 1) 4) in
           pos := !pos + 4;
           if code < 0x80 then Buffer.add_char buf (Char.chr code)
           else Buffer.add_char buf '?'
         | Some c -> Buffer.add_char buf c
         | None -> malformed "truncated escape");
        advance ();
        go ()
      | Some c ->
        Buffer.add_char buf c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    let raw = String.sub s start (!pos - start) in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') raw then
      match float_of_string_opt raw with
      | Some f -> Float f
      | None -> malformed "bad number %S" raw
    else
      match int_of_string_opt raw with
      | Some i -> Int i
      | None -> (
        (* an integer literal too large for an OCaml int *)
        match float_of_string_opt raw with
        | Some f -> Float f
        | None -> malformed "bad number %S" raw)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Jobj []
      end
      else begin
        let fields = ref [] in
        let rec members () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          fields := (k, v) :: !fields;
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ()
          | Some '}' -> advance ()
          | _ -> malformed "expected ',' or '}' at %d" !pos
        in
        members ();
        Jobj (List.rev !fields)
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Jlist []
      end
      else begin
        let items = ref [] in
        let rec elems () =
          let v = parse_value () in
          items := v :: !items;
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elems ()
          | Some ']' -> advance ()
          | _ -> malformed "expected ',' or ']' at %d" !pos
        in
        elems ();
        Jlist (List.rev !items)
      end
    | Some '"' -> Jstr (parse_string ())
    | Some 't' ->
      if !pos + 4 <= n && String.sub s !pos 4 = "true" then begin
        pos := !pos + 4;
        Jbool true
      end
      else malformed "bad literal at %d" !pos
    | Some 'f' ->
      if !pos + 5 <= n && String.sub s !pos 5 = "false" then begin
        pos := !pos + 5;
        Jbool false
      end
      else malformed "bad literal at %d" !pos
    | Some 'n' ->
      if !pos + 4 <= n && String.sub s !pos 4 = "null" then begin
        pos := !pos + 4;
        Jnull
      end
      else malformed "bad literal at %d" !pos
    | Some _ -> Jnum (parse_number ())
    | None -> malformed "empty input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then malformed "trailing input at %d" !pos;
  v

let to_int name = function
  | Jnum (Int i) -> i
  | Jnum (Float f) when Float.is_integer f -> int_of_float f
  | _ -> malformed "field %s: expected an integer" name

let to_float name = function
  | Jnum (Int i) -> float_of_int i
  | Jnum (Float f) -> f
  | _ -> malformed "field %s: expected a number" name

let to_str name = function
  | Jstr s -> s
  | _ -> malformed "field %s: expected a string" name

let of_json = function
  | Jobj fields ->
    let find k = List.assoc_opt k fields in
    let int k d = match find k with Some v -> to_int k v | None -> d in
    let flt k d = match find k with Some v -> to_float k v | None -> d in
    let str k d = match find k with Some v -> to_str k v | None -> d in
    let schema =
      match find "schema" with
      | Some v -> to_int "schema" v
      | None -> malformed "record has no \"schema\" field"
    in
    if schema > schema_version then
      malformed "schema %d is newer than supported %d" schema schema_version;
    let gc =
      match find "gc" with
      | Some (Jobj g) ->
        let gint k d =
          match List.assoc_opt k g with Some v -> to_int k v | None -> d
        in
        let gflt k d =
          match List.assoc_opt k g with Some v -> to_float k v | None -> d
        in
        { minor_words = gflt "minor_words" 0.0;
          major_words = gflt "major_words" 0.0;
          minor_collections = gint "minor_collections" 0;
          major_collections = gint "major_collections" 0 }
      | Some _ -> malformed "field gc: expected an object"
      | None -> no_gc
    in
    let known =
      [ "schema"; "workload"; "nprocs"; "line"; "opts"; "sim_cycles";
        "messages"; "misses"; "wall_s"; "cyc_per_s"; "gc"; "git_rev" ]
    in
    let extra =
      List.filter_map
        (fun (k, v) ->
          if List.mem k known then None
          else match v with Jnum num -> Some (k, num) | _ -> None)
        fields
    in
    { schema;
      workload = str "workload" "";
      nprocs = int "nprocs" 0;
      line = int "line" 64;
      opts = str "opts" "";
      sim_cycles = int "sim_cycles" 0;
      messages = int "messages" 0;
      misses = int "misses" 0;
      wall_s = flt "wall_s" 0.0;
      cyc_per_s = flt "cyc_per_s" 0.0;
      gc;
      git_rev = str "git_rev" "";
      extra }
  | _ -> malformed "record is not a JSON object"

let parse line =
  try of_json (parse_json line)
  with Malformed m -> failwith ("Benchjson.parse: " ^ m)

(* A whole BENCH file: JSON Lines (possibly with blank lines), or — for
   tolerance of hand-built files — a single top-level JSON array. *)
let load_string contents =
  let trimmed = String.trim contents in
  if trimmed = "" then []
  else if trimmed.[0] = '[' then
    match parse_json trimmed with
    | Jlist items -> List.map of_json items
    | _ -> failwith "Benchjson.load_string: expected an array"
  else
    String.split_on_char '\n' contents
    |> List.filter (fun l -> String.trim l <> "")
    |> List.map parse

let load_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let contents = really_input_string ic len in
  close_in ic;
  try load_string contents
  with Failure m | Malformed m ->
    failwith (Printf.sprintf "Benchjson.load_file %s: %s" path m)

(* ------------------------------------------------------------------ *)
(* Regression gate                                                     *)
(* ------------------------------------------------------------------ *)

(* Per-metric policy: simulated metrics come from a deterministic
   simulator, so the only acceptable delta is zero; host metrics wobble
   with the machine and load, so they gate on a relative tolerance —
   and only in the direction that is a regression (slower wall clock,
   lower cycles-per-second throughput, more allocation).  A host metric
   whose baseline is zero/absent (e.g. the checked-in seed baseline,
   which is simulated-only) is skipped. *)

type status = Ok | Regression | Missing | New | Skipped

type check = {
  c_key : string;  (* record key, [key_str] form *)
  c_metric : string;
  c_class : [ `Sim | `Host ];
  c_base : num option;
  c_cand : num option;
  c_ok : bool;
  c_status : status;
  c_note : string;
}

let num_value = function Int i -> float_of_int i | Float f -> f

let sim_metrics r =
  [ ("sim_cycles", Int r.sim_cycles);
    ("messages", Int r.messages);
    ("misses", Int r.misses) ]
  @ r.extra

(* (name, value, lower_is_better) *)
let host_metrics r =
  [ ("wall_s", Float r.wall_s, true);
    ("cyc_per_s", Float r.cyc_per_s, false);
    ("gc.minor_words", Float r.gc.minor_words, true);
    ("gc.major_words", Float r.gc.major_words, true);
    ("gc.minor_collections", Int r.gc.minor_collections, true);
    ("gc.major_collections", Int r.gc.major_collections, true) ]

let check_record ~tol ~sim_only (base : t) (cand : t) =
  let k = key_str base in
  let sim =
    let cand_sim = sim_metrics cand in
    List.map
      (fun (name, bv) ->
        match List.assoc_opt name cand_sim with
        | None ->
          { c_key = k; c_metric = name; c_class = `Sim; c_base = Some bv;
            c_cand = None; c_ok = false; c_status = Missing;
            c_note = "metric missing from candidate" }
        | Some cv ->
          let ok = num_value bv = num_value cv in
          { c_key = k; c_metric = name; c_class = `Sim; c_base = Some bv;
            c_cand = Some cv; c_ok = ok;
            c_status = (if ok then Ok else Regression);
            c_note =
              (if ok then "exact" else "simulated metric must match exactly") })
      (sim_metrics base)
  in
  let new_sim =
    let base_sim = sim_metrics base in
    List.filter_map
      (fun (name, cv) ->
        if List.mem_assoc name base_sim then None
        else
          Some
            { c_key = k; c_metric = name; c_class = `Sim; c_base = None;
              c_cand = Some cv; c_ok = true; c_status = New;
              c_note = "no baseline value" })
      (sim_metrics cand)
  in
  let host =
    if sim_only then []
    else
      List.map2
        (fun (name, bv, lower_better) (_, cv, _) ->
          let b = num_value bv and c = num_value cv in
          if b <= 0.0 then
            { c_key = k; c_metric = name; c_class = `Host; c_base = Some bv;
              c_cand = Some cv; c_ok = true; c_status = Skipped;
              c_note = "baseline not measured" }
          else begin
            let rel = (c -. b) /. b in
            let worse = if lower_better then rel > tol else rel < -.tol in
            { c_key = k; c_metric = name; c_class = `Host; c_base = Some bv;
              c_cand = Some cv; c_ok = not worse;
              c_status = (if worse then Regression else Ok);
              c_note =
                Printf.sprintf "%+.1f%% (tolerance %.0f%%)" (100.0 *. rel)
                  (100.0 *. tol) }
          end)
        (host_metrics base) (host_metrics cand)
  in
  sim @ new_sim @ host

let gate ?(tol = 0.25) ?(sim_only = false) ~baseline ~candidate () =
  let checks =
    List.concat_map
      (fun (b : t) ->
        match List.find_opt (fun c -> key c = key b) candidate with
        | Some c -> check_record ~tol ~sim_only b c
        | None ->
          [ { c_key = key_str b; c_metric = "record"; c_class = `Sim;
              c_base = Some (Int b.sim_cycles); c_cand = None; c_ok = false;
              c_status = Missing;
              c_note = "record missing from candidate" } ])
      baseline
  in
  let news =
    List.filter_map
      (fun (c : t) ->
        if List.exists (fun b -> key b = key c) baseline then None
        else
          Some
            { c_key = key_str c; c_metric = "record"; c_class = `Sim;
              c_base = None; c_cand = Some (Int c.sim_cycles); c_ok = true;
              c_status = New; c_note = "no baseline record" })
      candidate
  in
  let all = checks @ news in
  (all, List.for_all (fun c -> c.c_ok) all)

let status_str = function
  | Ok -> "ok"
  | Regression -> "REGRESSION"
  | Missing -> "MISSING"
  | New -> "new"
  | Skipped -> "skipped"
