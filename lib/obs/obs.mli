(** Structured observability: typed event tracing plus a metrics
    registry, reported into by every layer of the runtime.

    Create one [t] per simulated cluster (the [State.config] carries
    it), attach zero or more sinks, and read the registry after the
    run.  With no sinks attached, [emit] only bumps registry counters
    — cheap enough to leave on unconditionally. *)

module Event = Event
module Metrics = Metrics
module Sink = Sink
module Profile = Profile
module Perf = Perf
module Benchjson = Benchjson

type t

val create : nprocs:int -> unit -> t

val metrics : t -> Metrics.t

val attach : t -> Sink.t -> unit
(** Add a sink; events are fanned out to all attached sinks in
    attachment order. *)

val attach_profiler : t -> Profile.t -> unit
(** Feed every emitted record to [p] (at most one profiler). *)

val profiler : t -> Profile.t option

val tracing : t -> bool
(** [true] when at least one sink is attached — lets emit sites skip
    building expensive event payloads when nobody is listening. *)

val flush : t -> unit
(** Drain the profiler's matched spans into the sinks, then finalize
    every sink (e.g. close the Chrome JSON array).  Idempotent. *)

val emit : t -> ?site:Event.site -> node:int -> time:int -> Event.t -> unit
(** Record one event: folded into the registry, then streamed to the
    profiler and sinks (if any).  [site] attributes the event to the
    emitting node's current code location. *)

val incr : t -> node:int -> string -> unit
(** Bump a registry counter directly (hot paths with no event). *)

val observe : t -> node:int -> string -> int -> unit
(** Observe into a registry histogram directly. *)

(** Registry metric names used by the runtime's emit points. *)

val c_msg_sent : string
val c_msg_recv : string

val c_msg_local : string
(** Same-node deliveries taken by the engine's local fast path, which
    bypasses the network send/recv taps. *)

val c_miss_read : string
val c_miss_write : string
val c_miss_upgrade : string
val c_miss_false : string
val c_miss_batch : string
val c_invals : string
val c_downgrades : string
val c_store_reissues : string
val c_stalls : string
val c_locks : string
val c_barriers : string
val c_flag_sets : string
val c_flag_wakes : string
val c_polls : string
val c_finished : string
val c_spans : string

val c_net_drop : string
(** Transmission attempts lost by the faulty wire (each retransmitted). *)

val c_net_dup : string
(** Duplicate arrivals discarded by receiver-side dedup. *)

val c_net_retx : string
(** Retransmissions performed by the reliable sublayer (== [c_net_drop]). *)

val c_net_reorder : string
(** Frames that overtook their channel and were resequenced. *)

val c_net_backoff : string
(** Total cycles spent waiting out retransmission timeouts. *)

val c_net_timeout : string
(** Frames abandoned: retransmission budget exhausted ([max_retx]) or
    destination already declared dead. *)

val c_node_crash : string
(** Nodes halted by the crash injector. *)

val c_node_recover : string
(** Crashed nodes brought back (protocol duties only). *)

val c_lease_takeover : string
(** Lock/flag leases reclaimed from dead holders. *)

val c_dir_rebuild : string
(** Directory entries reconstructed after a crash. *)

val c_heartbeat : string
(** Progress pulses emitted under [--progress N]. *)

val c_home_migrate : string
(** Hot-page directory-home migrations ([--home-policy migrate]). *)

val h_payload : string
val h_stall : string
val h_miss_latency : string

val h_fanout : string
(** Sharers invalidated per directory-driven invalidation run — the
    distribution that separates directory organizations. *)
