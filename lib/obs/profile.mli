(** Site-level profiler over the typed event stream.

    Aggregates miss/false-miss/stall events by code site (using the
    [Event.site] attached by the protocol engine), tracks per-block
    contention (reader/writer sets, invalidation ping-pong, a
    false-sharing verdict from per-longword access masks), and matches
    protocol request/reply message pairs into latency spans.

    Attach one to an [Obs.t] with [Obs.attach_profiler] before the run;
    read the aggregates afterwards.  Rendering takes naming closures so
    sites print as ["fn:line"] via the runtime's frozen image without
    this module depending on it. *)

type site_stats = {
  mutable n_read : int;
  mutable n_write : int;
  mutable n_upgrade : int;
  mutable n_false : int;
  mutable n_stall : int;
  mutable stall_cycles : int;
}

val site_misses : site_stats -> int
(** [n_read + n_write + n_upgrade]. *)

type block_stats = {
  mutable readers : int; (** node bitmask *)
  mutable writers : int; (** node bitmask *)
  mutable invals : int;
  mutable pingpong : int;
      (** invalidations whose requester differs from the previous one *)
  mutable last_req : int;
  word_writers : (int, int) Hashtbl.t; (** longword offset -> node mask *)
  word_readers : (int, int) Hashtbl.t;
}

type span = {
  sp_node : int;
  sp_kind : string; (** request kind that opened the transaction *)
  sp_addr : int;
  sp_start : int;
  sp_dur : int;
}

type t

val create : ?nprocs:int -> ?block_of:(int -> int) -> unit -> t
(** [block_of] maps a data address to the base used for contention
    grouping (default: 64-byte lines). *)

val feed : t -> Event.record -> unit
(** Consume one event record ([Obs.emit] calls this for an attached
    profiler). *)

type totals = { t_read : int; t_write : int; t_upgrade : int; t_false : int }

val totals : t -> totals
(** Sum of per-site counters over every site — equals the registry's
    miss counters when profiler and registry fed from the same stream. *)

val sites : t -> ((int * int) * site_stats) list
(** All sites, hottest (most checks fired, then stall cycles) first. *)

val spans : t -> span list
(** Matched request/reply transactions, oldest first. *)

val span_count : t -> int
val span_metrics : t -> Metrics.t
(** Per-request-kind latency histograms, named ["span.<kind>"]. *)

val unmatched : t -> (int * int * string * int) list
(** Requests never answered: (node, addr, kind, send time). *)

val popcount : int -> int

val block_truly_shared : block_stats -> bool
val is_suspect : block_stats -> bool
val false_sharing_suspects : t -> (int * block_stats) list
(** Blocks with invalidation traffic, several nodes involved, and no
    longword-level conflict — sorted by invalidation count. *)

val contended_blocks : t -> (int * block_stats) list

val report :
  ?top:int -> t -> name_site:(proc:int -> pc:int -> string) -> string
(** Hot-site table (top-N), contended blocks, and span latency summary. *)

val collapsed :
  t ->
  name_proc:(int -> string) ->
  name_site:(proc:int -> pc:int -> string) ->
  string
(** Collapsed-stack text ("fn;fn;site count" lines) for flamegraph
    tools; counts are checks fired (misses + false misses). *)

val parse_collapsed : string -> (string * int) list
(** Parse collapsed-stack text back to (stack, count) pairs. *)

val drain_spans : t -> Event.record list
(** Matched spans as [Event.Span] records, oldest first; one-shot (a
    second call returns []). *)
