(* Serial-memory spec machine and vector-clock race detector.  See
   refine.mli for the model; mcheck.ml owns the abstraction function
   that turns protocol moves into the [sstep] commit stream fed here. *)

open Shasta_protocol
module Imap = Transitions.Imap

type sstep =
  | S_load of { node : int; block : int; value : int }
  | S_store of { node : int; block : int; value : int }
  | S_lock of { node : int; id : int }
  | S_unlock of { node : int; id : int }
  | S_flag_set of { node : int; id : int }
  | S_flag_wait of { node : int; id : int }
  | S_barrier_arrive of { node : int }
  | S_barrier_pass of { node : int; excused : int }
  | S_crash of {
      victim : int;
      held : int list;
      admissible : (int * int list) list;
    }

let vals_to_string vs = String.concat "," (List.map string_of_int vs)

let string_of_sstep = function
  | S_load { node; block; value } ->
    Printf.sprintf "n%d: load 0x%x = %d" node block value
  | S_store { node; block; value } ->
    Printf.sprintf "n%d: store 0x%x <- %d" node block value
  | S_lock { node; id } -> Printf.sprintf "n%d: acquire lock %d" node id
  | S_unlock { node; id } -> Printf.sprintf "n%d: release lock %d" node id
  | S_flag_set { node; id } -> Printf.sprintf "n%d: set flag %d" node id
  | S_flag_wait { node; id } ->
    Printf.sprintf "n%d: pass flag %d" node id
  | S_barrier_arrive { node } -> Printf.sprintf "n%d: arrive at barrier" node
  | S_barrier_pass { node; excused } ->
    if excused = 0 then Printf.sprintf "n%d: pass barrier" node
    else Printf.sprintf "n%d: pass barrier (excused mask 0x%x)" node excused
  | S_crash { victim; held; admissible } ->
    Printf.sprintf "crash n%d%s%s" victim
      (match held with
       | [] -> ""
       | l ->
         Printf.sprintf ", locks {%s} force-released"
           (vals_to_string l))
      (String.concat ""
         (List.map
            (fun (b, vs) ->
              Printf.sprintf ", 0x%x widens to {%s}" b (vals_to_string vs))
            admissible))

(* ------------------------------------------------------------------ *)
(* The spec machine                                                     *)
(* ------------------------------------------------------------------ *)

type spec = {
  nprocs : int;
  smem : int list Imap.t; (* block -> sorted admissible values *)
  swriter : int Imap.t; (* block -> last committed writer *)
  slocks : int Imap.t; (* lock id -> holder *)
  sflags : int list; (* set flag ids, sorted *)
  sarr : int Imap.t; (* barrier episode -> arrived-node mask *)
  sdone : int Imap.t; (* barrier episode -> passed-node mask *)
  spass : int Imap.t; (* node -> barrier episodes completed *)
}

let init ~nprocs ~blocks =
  { nprocs;
    smem =
      List.fold_left (fun m b -> Imap.add b [ 0 ] m) Imap.empty blocks;
    swriter = Imap.empty;
    slocks = Imap.empty;
    sflags = [];
    sarr = Imap.empty;
    sdone = Imap.empty;
    spass = Imap.empty }

let mem_values sp block =
  match Imap.find_opt block sp.smem with Some vs -> vs | None -> [ 0 ]

let writer_of sp block = Imap.find_opt block sp.swriter
let held_locks sp node =
  Imap.fold
    (fun id h acc -> if h = node then id :: acc else acc)
    sp.slocks []
  |> List.sort compare

let episodes_of sp node =
  match Imap.find_opt node sp.spass with Some k -> k | None -> 0

(* Drop a barrier episode once every node has passed or is excused:
   [halted] is monotone (an ever-crashed node's program never reaches
   another barrier), so nobody consults the episode again and the
   canonical string stays bounded. *)
let gc_episode sp ep excused =
  let all = (1 lsl sp.nprocs) - 1 in
  let passed = match Imap.find_opt ep sp.sdone with Some m -> m | None -> 0 in
  if (passed lor excused) land all = all then
    { sp with sarr = Imap.remove ep sp.sarr; sdone = Imap.remove ep sp.sdone }
  else sp

let apply_crash sp ~victim ~held ~admissible =
  let slocks = List.fold_left (fun m id -> Imap.remove id m) sp.slocks held in
  let smem, swriter =
    List.fold_left
      (fun (smem, swriter) (b, vs) ->
        let vs = List.sort_uniq compare vs in
        ( Imap.add b (if vs = [] then mem_values sp b else vs) smem,
          Imap.remove b swriter ))
      (sp.smem, sp.swriter) admissible
  in
  ignore victim;
  { sp with slocks; smem; swriter }

let step sp (st : sstep) : (spec, string) result =
  match st with
  | S_load { node; block; value } ->
    let vs = mem_values sp block in
    if List.mem value vs then
      (* observation collapses the admissible set *)
      Ok { sp with smem = Imap.add block [ value ] sp.smem }
    else
      Error
        (Printf.sprintf
           "n%d load 0x%x observed %d but the serial memory holds {%s}" node
           block value (vals_to_string vs))
  | S_store { node; block; value } ->
    Ok
      { sp with
        smem = Imap.add block [ value ] sp.smem;
        swriter = Imap.add block node sp.swriter }
  | S_lock { node; id } -> (
    match Imap.find_opt id sp.slocks with
    | Some h ->
      Error
        (Printf.sprintf "n%d acquires lock %d already held by n%d" node id h)
    | None -> Ok { sp with slocks = Imap.add id node sp.slocks })
  | S_unlock { node; id } -> (
    match Imap.find_opt id sp.slocks with
    | Some h when h = node -> Ok { sp with slocks = Imap.remove id sp.slocks }
    | Some h ->
      Error (Printf.sprintf "n%d releases lock %d held by n%d" node id h)
    | None -> Error (Printf.sprintf "n%d releases free lock %d" node id))
  | S_flag_set { node = _; id } ->
    Ok { sp with sflags = List.sort_uniq compare (id :: sp.sflags) }
  | S_flag_wait { node; id } ->
    if List.mem id sp.sflags then Ok sp
    else Error (Printf.sprintf "n%d passes flag %d while it is unset" node id)
  | S_barrier_arrive { node } ->
    let ep = episodes_of sp node in
    let m = match Imap.find_opt ep sp.sarr with Some m -> m | None -> 0 in
    if m land (1 lsl node) <> 0 then
      Error
        (Printf.sprintf "n%d arrives twice at barrier episode %d" node ep)
    else Ok { sp with sarr = Imap.add ep (m lor (1 lsl node)) sp.sarr }
  | S_barrier_pass { node; excused } ->
    let ep = episodes_of sp node in
    let arrived =
      match Imap.find_opt ep sp.sarr with Some m -> m | None -> 0
    in
    let all = (1 lsl sp.nprocs) - 1 in
    if arrived land (1 lsl node) = 0 then
      Error
        (Printf.sprintf "n%d passes barrier episode %d without arriving" node
           ep)
    else if (arrived lor excused) land all <> all then
      Error
        (Printf.sprintf
           "n%d passes barrier episode %d before all arrive (arrived 0x%x, \
            excused 0x%x)"
           node ep arrived excused)
    else
      let passed =
        match Imap.find_opt ep sp.sdone with Some m -> m | None -> 0
      in
      let sp =
        { sp with
          sdone = Imap.add ep (passed lor (1 lsl node)) sp.sdone;
          spass = Imap.add node (ep + 1) sp.spass }
      in
      Ok (gc_episode sp ep excused)
  | S_crash { victim; held; admissible } ->
    Ok (apply_crash sp ~victim ~held ~admissible)

(* Resynchronize after an excused divergence: apply the step's state
   change without its precondition.  Only racy scenarios reach this. *)
let force sp (st : sstep) =
  match step sp st with
  | Ok sp -> sp
  | Error _ -> (
    match st with
    | S_load { block; value; _ } ->
      { sp with smem = Imap.add block [ value ] sp.smem }
    | S_store { node; block; value } ->
      { sp with
        smem = Imap.add block [ value ] sp.smem;
        swriter = Imap.add block node sp.swriter }
    | S_lock { node; id } -> { sp with slocks = Imap.add id node sp.slocks }
    | S_unlock { id; _ } -> { sp with slocks = Imap.remove id sp.slocks }
    | S_flag_set _ | S_flag_wait _ -> sp
    | S_barrier_arrive { node } ->
      let ep = episodes_of sp node in
      let m = match Imap.find_opt ep sp.sarr with Some m -> m | None -> 0 in
      { sp with sarr = Imap.add ep (m lor (1 lsl node)) sp.sarr }
    | S_barrier_pass { node; excused } ->
      let ep = episodes_of sp node in
      let passed =
        match Imap.find_opt ep sp.sdone with Some m -> m | None -> 0
      in
      gc_episode
        { sp with
          sdone = Imap.add ep (passed lor (1 lsl node)) sp.sdone;
          spass = Imap.add node (ep + 1) sp.spass }
        ep excused
    | S_crash { victim; held; admissible } ->
      apply_crash sp ~victim ~held ~admissible)

let canon sp =
  let b = Buffer.create 128 in
  Imap.iter
    (fun blk vs ->
      Buffer.add_string b (Printf.sprintf "m%x={%s}" blk (vals_to_string vs)))
    sp.smem;
  Imap.iter
    (fun blk w -> Buffer.add_string b (Printf.sprintf "w%x:%d" blk w))
    sp.swriter;
  Imap.iter
    (fun id h -> Buffer.add_string b (Printf.sprintf "l%d:%d" id h))
    sp.slocks;
  List.iter (fun id -> Buffer.add_string b (Printf.sprintf "f%d" id)) sp.sflags;
  Imap.iter
    (fun ep m -> Buffer.add_string b (Printf.sprintf "a%d:%x" ep m))
    sp.sarr;
  Imap.iter
    (fun ep m -> Buffer.add_string b (Printf.sprintf "d%d:%x" ep m))
    sp.sdone;
  Imap.iter
    (fun n k -> Buffer.add_string b (Printf.sprintf "p%d:%d" n k))
    sp.spass;
  Buffer.contents b

let equal a b = canon a = canon b

(* ------------------------------------------------------------------ *)
(* Vector-clock race detection                                          *)
(* ------------------------------------------------------------------ *)

(* Clocks are sparse int maps (missing component = 0).  The detector is
   FastTrack-shaped: each block carries the last write (writer plus the
   writer's full clock at the write) and a read map (each node's own
   clock component at its last read since that write).  Synchronizing
   edges: lock release->acquire, flag set->wait, barrier episodes
   (arrivals accumulate, passes join the accumulated clock), and crash
   cuts (the victim's clock joins every node). *)

type vc = int Imap.t

let vc_get (c : vc) n = match Imap.find_opt n c with Some k -> k | None -> 0
let vc_leq a b = Imap.for_all (fun n k -> k <= vc_get b n) a
let vc_join a b = Imap.union (fun _ x y -> Some (max x y)) a b
let vc_tick c n = Imap.add n (vc_get c n + 1) c

type racer = {
  rnp : int;
  nvc : vc Imap.t; (* node -> clock *)
  lkc : vc Imap.t; (* lock id -> clock stored at last release *)
  flc : vc Imap.t; (* flag id -> accumulated setter clocks *)
  bar : vc Imap.t; (* barrier episode -> accumulated arrival clocks *)
  rpass : int Imap.t; (* node -> barrier episodes completed *)
  wrc : (int * vc) Imap.t; (* block -> (last writer, clock at write) *)
  rdc : vc Imap.t; (* block -> read map since the last write *)
}

let racer_init ~nprocs =
  { rnp = nprocs;
    nvc = Imap.empty;
    lkc = Imap.empty;
    flc = Imap.empty;
    bar = Imap.empty;
    rpass = Imap.empty;
    wrc = Imap.empty;
    rdc = Imap.empty }

let clock_of r n = match Imap.find_opt n r.nvc with Some c -> c | None -> Imap.empty
let set_clock r n c = { r with nvc = Imap.add n c r.nvc }
let finish r n c = set_clock r n (vc_tick c n)

let observe r (st : sstep) : racer * string list =
  match st with
  | S_store { node; block; _ } ->
    let me = clock_of r node in
    let races = ref [] in
    (match Imap.find_opt block r.wrc with
     | Some (w, wc) when w <> node && not (vc_leq wc me) ->
       races :=
         Printf.sprintf "write-write race on 0x%x: n%d's store vs n%d's store"
           block node w
         :: !races
     | _ -> ());
    (match Imap.find_opt block r.rdc with
     | Some rm ->
       Imap.iter
         (fun m k ->
           if m <> node && k > vc_get me m then
             races :=
               Printf.sprintf
                 "read-write race on 0x%x: n%d's store vs n%d's load" block
                 node m
               :: !races)
         rm
     | None -> ());
    (* the recorded write timestamp must cover the write event itself
       (the post-tick clock): an un-ticked first event is vacuously
       ordered before everything and its races would be missed *)
    let r =
      { r with wrc = Imap.add block (node, vc_tick me node) r.wrc;
        rdc = Imap.remove block r.rdc }
    in
    (finish r node me, List.rev !races)
  | S_load { node; block; _ } ->
    let me = clock_of r node in
    let races =
      match Imap.find_opt block r.wrc with
      | Some (w, wc) when w <> node && not (vc_leq wc me) ->
        [ Printf.sprintf "write-read race on 0x%x: n%d's load vs n%d's store"
            block node w ]
      | _ -> []
    in
    let rm =
      match Imap.find_opt block r.rdc with Some m -> m | None -> Imap.empty
    in
    (* post-tick component, for the same reason as the write clock *)
    let r =
      { r with
        rdc = Imap.add block (Imap.add node (vc_get me node + 1) rm) r.rdc }
    in
    (finish r node me, races)
  | S_lock { node; id } ->
    let me = clock_of r node in
    let me =
      match Imap.find_opt id r.lkc with Some c -> vc_join me c | None -> me
    in
    (finish r node me, [])
  | S_unlock { node; id } ->
    let me = clock_of r node in
    (finish { r with lkc = Imap.add id me r.lkc } node me, [])
  | S_flag_set { node; id } ->
    let me = clock_of r node in
    let acc =
      match Imap.find_opt id r.flc with Some c -> vc_join c me | None -> me
    in
    (finish { r with flc = Imap.add id acc r.flc } node me, [])
  | S_flag_wait { node; id } ->
    let me = clock_of r node in
    let me =
      match Imap.find_opt id r.flc with Some c -> vc_join me c | None -> me
    in
    (finish r node me, [])
  | S_barrier_arrive { node } ->
    let me = clock_of r node in
    let ep = match Imap.find_opt node r.rpass with Some k -> k | None -> 0 in
    let acc =
      match Imap.find_opt ep r.bar with Some c -> vc_join c me | None -> me
    in
    (finish { r with bar = Imap.add ep acc r.bar } node me, [])
  | S_barrier_pass { node; _ } ->
    let ep = match Imap.find_opt node r.rpass with Some k -> k | None -> 0 in
    let me = clock_of r node in
    let me =
      match Imap.find_opt ep r.bar with Some c -> vc_join me c | None -> me
    in
    let r = { r with rpass = Imap.add node (ep + 1) r.rpass } in
    (finish r node me, [])
  | S_crash { victim; held; _ } ->
    (* the crash detector's cut is itself a synchronizing event: every
       survivor observes the reconstruction before touching salvaged
       state, and a taken-over lock hands the victim's critical section
       to the next holder *)
    let vclk = clock_of r victim in
    let nvc =
      List.fold_left
        (fun m n ->
          Imap.add n (vc_join (match Imap.find_opt n m with
                               | Some c -> c
                               | None -> Imap.empty)
                        vclk) m)
        r.nvc
        (List.init r.rnp Fun.id)
    in
    let lkc =
      List.fold_left
        (fun m id ->
          Imap.add id
            (vc_join
               (match Imap.find_opt id m with Some c -> c | None -> Imap.empty)
               vclk)
            m)
        r.lkc held
    in
    ({ r with nvc; lkc }, [])
