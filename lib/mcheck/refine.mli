(* The serial-memory specification machine and the vector-clock race
   detector behind [Mcheck]'s refinement mode.

   The spec is the atomic-step serial memory of the SC-for-DRF
   theorem: a flat word array plus lock/flag/barrier state, advanced
   by one indivisible step per user-visible operation.  The checker
   maps every explored protocol interleaving onto a spec run — each
   load/store/sync *commit* refines to exactly one [sstep], every
   other protocol move (transfers, invalidations, acks, migration,
   retransmission) refines to a stuttering no-op — and any
   interleaving whose commits the spec rejects is a refinement
   counterexample.

   Memory is kept as a per-block set of ADMISSIBLE values, not a
   single word, so crash boundaries have a semantics: when a node
   dies as the unobserved last writer of a block, its in-flight store
   either committed before the cut or never happened, and the spec
   widens that block to the set of values physically surviving in the
   cluster.  Loads collapse the set back to the observed value.
   Fault-free runs only ever see singletons.

   The race detector discharges the theorem's precondition: it runs
   vector clocks over the same commit stream and reports every pair of
   conflicting accesses unordered by locks, flags, barriers or crash
   cuts.  A scenario declared DRF must come out race-free on every
   explored trace; a racy scenario's divergences after a detected race
   are excused (SC is only promised to race-free programs). *)

open Shasta_protocol
module Imap = Transitions.Imap

type sstep =
  | S_load of { node : int; block : int; value : int }
  | S_store of { node : int; block : int; value : int }
  | S_lock of { node : int; id : int }
  | S_unlock of { node : int; id : int }
  | S_flag_set of { node : int; id : int }
  | S_flag_wait of { node : int; id : int }
  | S_barrier_arrive of { node : int }
  | S_barrier_pass of { node : int; excused : int (* halted-node mask *) }
  | S_crash of {
      victim : int;
      held : int list; (* locks the spec force-releases *)
      admissible : (int * int list) list;
          (* blocks last written by the victim, each widened to the
             value set still physically present in the cluster *)
    }

val string_of_sstep : sstep -> string

type spec

val init : nprocs:int -> blocks:int list -> spec
(** Every block starts as the singleton {0}, matching the allocator's
    zeroed exclusive copy at node 0. *)

val step : spec -> sstep -> (spec, string) result
(** Advance the serial memory by one atomic step; [Error] carries the
    human-readable divergence (the refinement counterexample's
    "violated" line). *)

val force : spec -> sstep -> spec
(** Apply the step's state change ignoring its precondition — used to
    resynchronize the spec after an excused divergence in a racy
    scenario (a load adopts the value it observed, etc.). *)

val canon : spec -> string
(** Canonical string, folded into the model checker's visited-set key
    (the spec state is path-dependent, so two protocol states with
    different spec shadows must not be merged). *)

val equal : spec -> spec -> bool

(* Accessors for the abstraction glue and terminal checks. *)
val mem_values : spec -> int -> int list
(** The block's admissible value set (sorted; [0] if never touched). *)

val writer_of : spec -> int -> int option
(** The block's last committed writer, if any survives a crash cut. *)

val held_locks : spec -> int -> int list
(** Lock ids the node holds in the spec, ascending. *)

(* --- the vector-clock race detector -------------------------------- *)

type racer

val racer_init : nprocs:int -> racer

val observe : racer -> sstep -> racer * string list
(** Feed one committed step; returns the advanced clocks and the
    conflicting-access reports this step completes (empty = no race).
    Lock release/acquire, flag set/wait, barrier episodes and crash
    cuts are the synchronizing edges; a crash joins the victim's clock
    into every node (the runtime's crash detector is a consistent cut
    every survivor observes before touching salvaged state). *)
