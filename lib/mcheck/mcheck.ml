(* Explicit-state model checker for the pure protocol core.

   Because [Transitions.step] is a pure function over an immutable
   [view], a closed system — the view, per-pair in-flight message
   queues, per-node scripts and a one-longword-per-block shadow memory —
   is a small immutable value, and every reachable interleaving of small
   configurations can be enumerated outright.

   Moves are the nondeterminism the real cluster exhibits: any running
   node may issue its next scripted operation, and the head of any
   non-empty (src, dst) channel may be delivered (the network never
   reorders a pair, so per-pair FIFOs are exact).  A DFS over the move
   graph with a visited set keyed on canonical state strings checks, at
   every state, the core's structural invariants, invalidation-ack
   conservation against the in-flight messages, and flag/value
   coherence of the shadow memory; terminal states must be quiescent
   (no waiting node, no unissued script, oracle satisfied).

   A fault can be injected at the routing layer (drop the first
   invalidation acknowledgement); the checker then demonstrates the
   protocol's reliance on it by printing a counterexample trace.  A
   seeded random-walk fuzzer covers larger configurations the
   exhaustive search cannot.

   With [~lossy:budget] the channels model the UNRELIABLE wire under
   the reliable-delivery sublayer of [Shasta_network]: every sent
   message becomes a sequence-numbered frame; the adversary may spend a
   bounded per-channel fault budget to drop the frame at the wire head,
   duplicate it, or let the next frame overtake it; a lost frame is
   eventually retransmitted (a move that costs no budget and is enabled
   exactly while the frame survives nowhere); the receiver dedups and
   resequences, delivering each payload to the protocol exactly once,
   in order.  Terminal states additionally require every channel fully
   drained — frames in flight, held out of order, or lost-but-unacked
   all contradict quiescence — which is the "eventual delivery implies
   quiescence" liveness obligation.  [Retransmit_no_dedup] removes the
   receiver's dedup so stale retransmitted/duplicated frames reach the
   protocol twice: the checker must catch the resulting double-counted
   acknowledgements or stale data.

   With [~crash:budget] a node-crash adversary joins the move set: at
   any state it may halt any node (while at least two are live and the
   budget lasts), purging every frame queued to or from the victim and
   feeding the purged list to the lowest surviving node's
   [I_node_crash] step — exactly what the runtime's crash detector
   does.  [~recover:budget] adds restart moves for crashed nodes.  The
   obligations become fault-tolerance theorems: every invariant holds
   through crash and recovery, no survivor is ever stuck at a terminal
   state (locks held by the dead are taken over, barriers excuse the
   halted, purged replies are re-served from salvaged memory), and
   terminal states are quiescent even after recovery.  Data oracles
   are skipped once a crash fires — a victim dies at an arbitrary
   script position, so final values are unknowable; structural and
   liveness obligations still apply in full.  Crash moves require the
   reliable wire (the runtime layers crash detection above the
   delivery sublayer, so the combination is not modeled). *)

open Shasta_protocol
module T = Transitions
module Imap = T.Imap

let marker = Shasta.Layout.flag_pattern

(* ------------------------------------------------------------------ *)
(* Scripts                                                              *)
(* ------------------------------------------------------------------ *)

type op =
  | Read of int (* block *)
  | Write of int * int (* block, value *)
  | Write_reg_plus of int * int (* block, increment over last read *)
  | Lock of int
  | Unlock of int
  | Flag_set of int
  | Flag_wait of int
  | Barrier

let string_of_op = function
  | Read b -> Printf.sprintf "read 0x%x" b
  | Write (b, v) -> Printf.sprintf "write 0x%x <- %d" b v
  | Write_reg_plus (b, k) -> Printf.sprintf "write 0x%x <- reg+%d" b k
  | Lock id -> Printf.sprintf "lock %d" id
  | Unlock id -> Printf.sprintf "unlock %d" id
  | Flag_set id -> Printf.sprintf "flag_set %d" id
  | Flag_wait id -> Printf.sprintf "flag_wait %d" id
  | Barrier -> "barrier"

(* [Store_past_release] is the refinement-teeth mutation: the first
   store issued while the issuing node holds a lock is not performed —
   its value is stashed, and a later nondeterministic move applies it
   once the node holds no lock, i.e. the store commit has sunk past
   the release.  Every structural invariant, flag-coherence and
   quiescence obligation still holds (the deferred store is an
   ordinary store when it fires); only the refinement checker, which
   pins each commit to its program-order spec step, can see it. *)
type injection =
  | No_injection
  | Drop_first_inv_ack
  | Retransmit_no_dedup
  | Store_past_release

(* ------------------------------------------------------------------ *)
(* The closed system                                                    *)
(* ------------------------------------------------------------------ *)

(* One frame of the reliable-delivery sublayer: a protocol message
   stamped with its per-channel sequence number. *)
type frame = { fseq : int; fmsg : Message.t }

(* Per-channel sublayer state in lossy mode.  [wire] is the physical
   channel, head arrives first; [rx_buf] holds frames received out of
   order (sorted by fseq); [unacked] are frames sent but not yet
   delivered up to the protocol — a frame absent from both wire and
   rx_buf is lost and retransmittable.  [budget] bounds the adversary's
   remaining fault moves on this channel. *)
type chanst = {
  tx_next : int;
  rx_expected : int;
  wire : frame list;
  rx_buf : frame list;
  unacked : frame list;
  budget : int;
}

(* Refinement bookkeeping carried through a run when [~refine] is on:
   the serial-memory spec state, the race detector's clocks, and the
   per-node issued-but-uncommitted operation ([uops]).  Stores commit
   at issue (release consistency makes them non-stalling), loads and
   sync operations commit at the move that leaves the node running
   again; a barrier is two half-steps (arrive at issue, pass at
   wake). *)
type refst = {
  rspec : Refine.spec;
  racer : Refine.racer;
  uops : op Imap.t; (* node -> issued op awaiting its commit *)
  racy : bool; (* the detector reported a race on this path *)
  rcommits : string list; (* committed spec steps, newest first *)
}

type sys = {
  v : T.view;
  chans : Message.t list Imap.t; (* src * nprocs + dst -> FIFO, head next *)
  scripts : op list Imap.t; (* node -> remaining operations *)
  shadow : int Imap.t Imap.t; (* node -> block -> value ([marker] = flagged) *)
  regs : int Imap.t; (* node -> last value read *)
  pending_read : int Imap.t; (* node -> block of the outstanding load *)
  dropped : bool; (* the injected fault already fired *)
  stash : (int * int * int) option;
      (* Store_past_release: (node, block, value) of the deferred store *)
  lossy : int option; (* per-channel fault budget; None = reliable wire *)
  lchans : chanst Imap.t; (* sublayer state per channel (lossy mode) *)
  crash_budget : int; (* remaining node-crash adversary moves *)
  recover_budget : int; (* remaining node-restart adversary moves *)
  refine : refst option; (* refinement checking state, when enabled *)
}

type scenario = {
  sname : string;
  nprocs : int;
  blocks : int list;
  scripts : op list array;
  oracle : sys -> string list; (* extra checks at terminal states *)
  drf : bool;
      (* the scripts are data-race-free: the race detector must stay
         silent and spec divergences are hard violations.  On a racy
         scenario divergences after a detected race are excused (SC is
         only promised to race-free programs). *)
  cfg_mod : T.cfg -> T.cfg;
      (* configuration override applied over the default (full-map,
         centralized sync) — how scale scenarios select limited-pointer
         or coarse directories and the queue-lock/tree-barrier path *)
}

let value (sys : sys) ~node ~block =
  match Imap.find_opt block (Imap.find node sys.shadow) with
  | Some v when v <> marker -> Some v
  | _ -> None

let reg (sys : sys) ~node =
  match Imap.find_opt node sys.regs with Some v -> v | None -> 0

let view (sys : sys) = sys.v

let cfg_of ?base (sc : scenario) =
  let dflt =
    { T.nprocs = sc.nprocs; page_bytes = 8192; sc = false;
      dmode = Nodeset.Full; scalable_sync = false; migrate = false }
  in
  (* [base] carries the CLI's --dir-mode/--sync choice into every
     scenario; the scenario's own processor count and cfg_mod still
     win (scale scenarios pin the organization they exercise) *)
  let c = match base with Some b -> { b with T.nprocs = sc.nprocs } | None -> dflt in
  sc.cfg_mod c

let init_sys ?lossy ?(crash = 0) ?(recover = 0) ?(refine = false) ?base
    (sc : scenario) =
  if crash > 0 && lossy <> None then
    invalid_arg "mcheck: the crash adversary needs the reliable wire";
  let cfg = cfg_of ?base sc in
  let v0 = T.init cfg in
  (* every block starts exclusively owned by node 0 (the allocator) *)
  let _, v =
    T.step cfg v0 ~node:0 (T.I_alloc { owner = 0; blocks = sc.blocks })
  in
  let shadow =
    List.init sc.nprocs (fun n ->
      ( n,
        List.fold_left
          (fun m b -> Imap.add b (if n = 0 then 0 else marker) m)
          Imap.empty sc.blocks ))
    |> List.to_seq |> Imap.of_seq
  in
  { v;
    chans = Imap.empty;
    scripts = Array.to_seqi sc.scripts |> Imap.of_seq;
    shadow;
    regs = Imap.empty;
    pending_read = Imap.empty;
    dropped = false;
    stash = None;
    lossy;
    lchans = Imap.empty;
    crash_budget = crash;
    recover_budget = recover;
    refine =
      (if refine then
         Some
           { rspec = Refine.init ~nprocs:sc.nprocs ~blocks:sc.blocks;
             racer = Refine.racer_init ~nprocs:sc.nprocs;
             uops = Imap.empty;
             racy = false;
             rcommits = [] }
       else None) }

(* ------------------------------------------------------------------ *)
(* Applying a step's actions to the closed system                       *)
(* ------------------------------------------------------------------ *)

let shadow_get (sys : sys) ~node ~block =
  match Imap.find_opt block (Imap.find node sys.shadow) with
  | Some v -> v
  | None -> marker

let shadow_set (sys : sys) ~node ~block v =
  { sys with
    shadow =
      Imap.add node (Imap.add block v (Imap.find node sys.shadow)) sys.shadow }

(* Does [node] hold a pending store to [block]'s longword in [v]?  Such
   longwords keep the node's own value through invalidation (the
   written-longword merge of Section 4.1). *)
let has_written v ~node ~block =
  let nv = T.node_view v ~node in
  match Imap.find_opt block nv.T.pending with
  | Some p -> Imap.mem block p.T.written
  | None -> false

exception Unexpected of string

(* Apply one action.  [v'] is the post-step view (consulted for pending
   written-longword state); [reply] holds the data of the message being
   delivered, consumed by the first merge, like the engine's
   [node.reply_data]. *)
let apply_action ~inj ~(reply : int array option ref) v' node sys
    (a : T.action) =
  match a with
  | T.A_charge _ | T.A_count _ | T.A_emit _ -> sys
  | T.A_local _ -> sys
  | T.A_block _ | T.A_stall _ -> sys (* node status lives in the view *)
  | T.A_send { dst; msg } ->
    let msg =
      match msg.Message.kind with
      | Message.Coh (Data_reply { data; exclusive; acks })
        when Array.length data = 0 ->
        { msg with
          Message.kind =
            Message.Coh
              (Data_reply
                 { data = [| shadow_get sys ~node ~block:msg.Message.addr |];
                   exclusive;
                   acks }) }
      | _ -> msg
    in
    let drop =
      (match inj with
       | Drop_first_inv_ack -> msg.Message.kind = Message.Coh Message.Inv_ack
       | No_injection | Retransmit_no_dedup | Store_past_release -> false)
      && not sys.dropped
    in
    (* Drop_first_inv_ack loses the message ABOVE the sublayer — it is
       never sequence-numbered, so retransmission cannot recover it:
       the protocol-layer bug stays detectable even on a lossy wire *)
    if drop then { sys with dropped = true }
    else begin
      let key = (node * 1024) + dst in
      match sys.lossy with
      | None ->
        let q =
          match Imap.find_opt key sys.chans with Some q -> q | None -> []
        in
        { sys with chans = Imap.add key (q @ [ msg ]) sys.chans }
      | Some budget ->
        let cs =
          match Imap.find_opt key sys.lchans with
          | Some cs -> cs
          | None ->
            { tx_next = 0; rx_expected = 0; wire = []; rx_buf = [];
              unacked = []; budget }
        in
        let f = { fseq = cs.tx_next; fmsg = msg } in
        let cs =
          { cs with
            tx_next = cs.tx_next + 1;
            wire = cs.wire @ [ f ];
            unacked = cs.unacked @ [ f ] }
        in
        { sys with lchans = Imap.add key cs sys.lchans }
    end
  | T.A_mem op -> (
    match op with
    | T.M_make_exclusive _ | T.M_make_shared _ | T.M_make_pending _ -> sys
    | T.M_make_invalid b | T.M_flag { block = b; _ } ->
      if has_written v' ~node ~block:b then sys
      else shadow_set sys ~node ~block:b marker
    | T.M_merge { block; written } ->
      let base =
        match !reply with
        | Some d when Array.length d > 0 ->
          reply := None;
          d.(0)
        | _ -> shadow_get sys ~node ~block
      in
      let value =
        match List.assoc_opt block written with Some v -> v | None -> base
      in
      shadow_set sys ~node ~block value
    | T.M_adopt { block; from } ->
      (* crash salvage: copy the dead node's (frozen) shadow value *)
      shadow_set sys ~node ~block (shadow_get sys ~node:from ~block))
  | T.A_refill -> (
    match Imap.find_opt node sys.pending_read with
    | Some b ->
      { sys with
        regs = Imap.add node (shadow_get sys ~node ~block:b) sys.regs;
        pending_read = Imap.remove node sys.pending_read }
    | None -> sys)
  | T.A_reenter_store _ ->
    raise (Unexpected "A_reenter_store under non-stalling stores")
  | T.A_commit_store ->
    raise (Unexpected "A_commit_store under non-stalling stores")

let run_step cfg ~inj ?reply (sys : sys) node input =
  let acts, v' = T.step cfg sys.v ~node input in
  let sys = { sys with v = v' } in
  let reply = ref reply in
  List.fold_left (apply_action ~inj ~reply v' node) sys acts

(* ------------------------------------------------------------------ *)
(* Moves                                                                *)
(* ------------------------------------------------------------------ *)

let running (sys : sys) ~node =
  (T.node_view sys.v ~node).T.nstat = T.N_running
  && not (Imap.mem node sys.pending_read)

(* Issue [node]'s next scripted operation.  Loads and stores follow the
   inline-check semantics: a load hits iff the longword is unflagged
   (the node's own pending stores satisfy its loads); a store hits iff
   the line is exclusive.  Stores are non-stalling (release consistency,
   Section 4.1): the value goes to shadow memory immediately and the
   miss input carries it as the written longword. *)
let issue cfg ~inj (sys : sys) node op rest =
  let sys = { sys with scripts = Imap.add node rest sys.scripts } in
  match op with
  | Read b ->
    if shadow_get sys ~node ~block:b <> marker then
      { sys with regs = Imap.add node (shadow_get sys ~node ~block:b) sys.regs }
    else
      let st = T.line_state sys.v ~node ~block:b in
      let sys = { sys with pending_read = Imap.add node b sys.pending_read } in
      run_step cfg ~inj sys node (T.I_load_miss { addr = b; block = b; st })
  | Write (b, _) | Write_reg_plus (b, _) ->
    let value =
      match op with
      | Write_reg_plus (_, k) -> reg sys ~node + k
      | Write (_, v) -> v
      | _ -> assert false
    in
    if
      inj = Store_past_release && (not sys.dropped)
      && T.locks_held_by sys.v ~node <> []
    then
      (* the mutation: the store's program-order slot is consumed but
         its effect is withheld until the node has released its locks
         (see [stash_moves]) — a store commit sunk past the release *)
      { sys with dropped = true; stash = Some (node, b, value) }
    else begin
      let st = T.line_state sys.v ~node ~block:b in
      let sys = shadow_set sys ~node ~block:b value in
      if st = T.L_exclusive then sys
      else
        run_step cfg ~inj sys node
          (T.I_store_miss
             { addr = b;
               block = b;
               st;
               bytes = 4;
               store_done = true;
               stored = [ (b, value) ] })
    end
  | Lock id -> run_step cfg ~inj sys node (T.I_lock id)
  | Unlock id -> run_step cfg ~inj sys node (T.I_unlock id)
  | Flag_set id -> run_step cfg ~inj sys node (T.I_flag_set id)
  | Flag_wait id -> run_step cfg ~inj sys node (T.I_flag_wait id)
  | Barrier -> run_step cfg ~inj sys node T.I_barrier

let deliver cfg ~inj (sys : sys) key =
  match Imap.find key sys.chans with
  | [] -> assert false
  | msg :: rest ->
    let dst = key mod 1024 in
    let chans =
      if rest = [] then Imap.remove key sys.chans
      else Imap.add key rest sys.chans
    in
    let sys = { sys with chans } in
    let reply =
      match msg.Message.kind with
      | Message.Coh (Data_reply { data; _ }) -> Some data
      | _ -> None
    in
    run_step cfg ~inj ?reply sys dst (T.I_msg msg)

(* --- lossy mode: the sublayer's receive path and the adversary ------ *)

let deliver_up cfg ~inj sys ~dst (msg : Message.t) =
  let reply =
    match msg.Message.kind with
    | Message.Coh (Data_reply { data; _ }) -> Some data
    | _ -> None
  in
  run_step cfg ~inj ?reply sys dst (T.I_msg msg)

let has_fseq fseq frames = List.exists (fun g -> g.fseq = fseq) frames
let drop_fseq fseq frames = List.filter (fun g -> g.fseq <> fseq) frames

(* The head frame of [key]'s wire arrives.  Receiver-side dedup and
   resequencing: a duplicate is discarded, a future frame is held, the
   expected frame is delivered up together with everything consecutive
   it unblocks.  Under [Retransmit_no_dedup] the duplicate check is
   gone and stale frames hit the protocol again. *)
let lossy_deliver cfg ~inj (sys : sys) key =
  let cs = Imap.find key sys.lchans in
  match cs.wire with
  | [] -> assert false
  | f :: rest ->
    let dst = key mod 1024 in
    let cs = { cs with wire = rest } in
    let is_dup = f.fseq < cs.rx_expected || has_fseq f.fseq cs.rx_buf in
    if is_dup then
      let sys = { sys with lchans = Imap.add key cs sys.lchans } in
      if inj = Retransmit_no_dedup then deliver_up cfg ~inj sys ~dst f.fmsg
      else sys
    else if f.fseq > cs.rx_expected then
      let rx_buf =
        List.sort (fun a b -> compare a.fseq b.fseq) (f :: cs.rx_buf)
      in
      { sys with lchans = Imap.add key { cs with rx_buf } sys.lchans }
    else begin
      let rec flush cs acc =
        match List.find_opt (fun g -> g.fseq = cs.rx_expected) cs.rx_buf with
        | Some g ->
          flush
            { cs with
              rx_expected = cs.rx_expected + 1;
              rx_buf = drop_fseq g.fseq cs.rx_buf;
              unacked = drop_fseq g.fseq cs.unacked }
            (g.fmsg :: acc)
        | None -> (cs, List.rev acc)
      in
      let cs =
        { cs with
          rx_expected = cs.rx_expected + 1;
          unacked = drop_fseq f.fseq cs.unacked }
      in
      let cs, unblocked = flush cs [] in
      let sys = { sys with lchans = Imap.add key cs sys.lchans } in
      List.fold_left
        (fun sys m -> deliver_up cfg ~inj sys ~dst m)
        (deliver_up cfg ~inj sys ~dst f.fmsg)
        unblocked
    end

(* Frames the sender would eventually time out on: sent, not yet
   delivered up, and surviving neither on the wire nor in the receive
   buffer.  Lowest sequence number first ([unacked] is append-ordered). *)
let lost_frames (cs : chanst) =
  List.filter
    (fun f ->
      f.fseq >= cs.rx_expected
      && (not (has_fseq f.fseq cs.wire))
      && not (has_fseq f.fseq cs.rx_buf))
    cs.unacked

let chan_label key = Printf.sprintf "%d->%d" (key / 1024) (key mod 1024)

(* Adversary and recovery moves on one lossy channel.  Each fault move
   costs one unit of the channel's budget; retransmission is free and
   enabled exactly while a frame is lost, so no terminal state can
   leave a frame undelivered (eventual delivery). *)
let lossy_moves cfg ~inj (sys : sys) key (cs : chanst) =
  let upd cs' = { sys with lchans = Imap.add key cs' sys.lchans } in
  let delivers =
    match cs.wire with
    | f :: _ ->
      [ ( Printf.sprintf "deliver %s: #%d %s" (chan_label key) f.fseq
            (Message.describe f.fmsg),
          fun () -> lossy_deliver cfg ~inj sys key ) ]
    | [] -> []
  in
  let faults =
    if cs.budget <= 0 then []
    else
      let spend cs' = upd { cs' with budget = cs.budget - 1 } in
      (match cs.wire with
       | f :: rest ->
         [ ( Printf.sprintf "fault %s: drop #%d %s" (chan_label key) f.fseq
               (Message.describe f.fmsg),
             fun () -> spend { cs with wire = rest } );
           ( Printf.sprintf "fault %s: dup #%d %s" (chan_label key) f.fseq
               (Message.describe f.fmsg),
             fun () -> spend { cs with wire = (f :: rest) @ [ f ] } ) ]
       | [] -> [])
      @
      (match cs.wire with
       | f1 :: f2 :: rest when f1.fseq <> f2.fseq ->
         [ ( Printf.sprintf "fault %s: reorder #%d behind #%d"
               (chan_label key) f1.fseq f2.fseq,
             fun () -> spend { cs with wire = f2 :: f1 :: rest } ) ]
       | _ -> [])
  in
  let retransmits =
    match lost_frames cs with
    | f :: _ ->
      [ ( Printf.sprintf "retransmit %s: #%d %s" (chan_label key) f.fseq
            (Message.describe f.fmsg),
          fun () -> upd { cs with wire = cs.wire @ [ f ] } ) ]
    | [] -> []
  in
  delivers @ faults @ retransmits

(* --- the node-crash adversary --------------------------------------- *)

(* Halt [victim]: purge every channel to or from it (per-channel FIFO
   order preserved; Map iteration makes the cross-channel order
   deterministic), discard its remaining script and outstanding load,
   and feed the purged frames to the lowest surviving node's
   [I_node_crash] step — the same consistent cut the runtime's crash
   detector takes with [Network.mark_dead]. *)
let crash_node cfg ~inj (sys : sys) victim =
  let purged = ref [] in
  let chans =
    Imap.filter
      (fun key q ->
        if key / 1024 = victim || key mod 1024 = victim then begin
          purged := !purged @ List.map (fun m -> (key mod 1024, m)) q;
          false
        end
        else true)
      sys.chans
  in
  let sys =
    { sys with
      chans;
      scripts = Imap.add victim [] sys.scripts;
      pending_read = Imap.remove victim sys.pending_read;
      stash =
        (match sys.stash with
         | Some (n, _, _) when n = victim -> None
         | s -> s);
      crash_budget = sys.crash_budget - 1 }
  in
  let coord =
    let rec go n =
      if n = victim || not (T.is_live sys.v ~node:n) then go (n + 1) else n
    in
    go 0
  in
  run_step cfg ~inj sys coord (T.I_node_crash { victim; lost = !purged })

let crash_moves cfg ~inj (sys : sys) =
  let crashes =
    if sys.crash_budget <= 0 then []
    else
      let live =
        List.filter
          (fun n -> T.is_live sys.v ~node:n)
          (List.init cfg.T.nprocs Fun.id)
      in
      if List.length live < 2 then []
      else
        List.map
          (fun v ->
            ( Printf.sprintf "crash n%d" v,
              fun () -> crash_node cfg ~inj sys v ))
          live
  in
  let recovers =
    if sys.recover_budget <= 0 then []
    else
      List.filter_map
        (fun v ->
          if T.is_live sys.v ~node:v then None
          else
            Some
              ( Printf.sprintf "recover n%d" v,
                fun () ->
                  run_step cfg ~inj
                    { sys with recover_budget = sys.recover_budget - 1 }
                    v (T.I_node_recover v) ))
        (List.init cfg.T.nprocs Fun.id)
  in
  crashes @ recovers

(* The second half of [Store_past_release]: once the stashing node has
   released every lock, the withheld store may fire at any point — an
   ordinary store miss, indistinguishable from a legal one to every
   structural check, but committed out of program order. *)
let stash_moves cfg ~inj (sys : sys) =
  match sys.stash with
  | Some (node, b, value)
    when T.is_live sys.v ~node && running sys ~node
         && T.locks_held_by sys.v ~node = [] ->
    [ ( Printf.sprintf "n%d: deferred store 0x%x <- %d fires (injected)" node
          b value,
        fun () ->
          let sys = { sys with stash = None } in
          let st = T.line_state sys.v ~node ~block:b in
          let sys = shadow_set sys ~node ~block:b value in
          if st = T.L_exclusive then sys
          else
            run_step cfg ~inj sys node
              (T.I_store_miss
                 { addr = b;
                   block = b;
                   st;
                   bytes = 4;
                   store_done = true;
                   stored = [ (b, value) ] }) ) ]
  | _ -> []

let moves cfg ~inj (sys : sys) =
  let issues =
    Imap.fold
      (fun node script acc ->
        match script with
        | op :: rest when running sys ~node ->
          ( Printf.sprintf "n%d: %s" node (string_of_op op),
            fun () -> issue cfg ~inj sys node op rest )
          :: acc
        | _ -> acc)
      sys.scripts []
  in
  let delivers =
    Imap.fold
      (fun key q acc ->
        match q with
        | msg :: _ when T.is_live sys.v ~node:(key mod 1024) ->
          ( Printf.sprintf "deliver %d->%d: %s" (key / 1024) (key mod 1024)
              (Message.describe msg),
            fun () -> deliver cfg ~inj sys key )
          :: acc
        | _ -> acc)
      sys.chans []
  in
  let lossy_all =
    Imap.fold
      (fun key cs acc -> List.rev_append (lossy_moves cfg ~inj sys key cs) acc)
      sys.lchans []
  in
  List.rev_append issues
    (List.rev_append lossy_all (List.rev delivers))
  @ stash_moves cfg ~inj sys
  @ crash_moves cfg ~inj sys

(* ------------------------------------------------------------------ *)
(* Checks                                                               *)
(* ------------------------------------------------------------------ *)

(* Canonical key for the visited set: the view's canonical string plus
   everything else the closed system carries. *)
let canon_sys (sys : sys) =
  let b = Buffer.create 256 in
  Buffer.add_string b (T.canon sys.v);
  Imap.iter
    (fun key q ->
      Buffer.add_string b (Printf.sprintf "|c%d:" key);
      List.iter (fun m -> Buffer.add_string b (Message.describe m)) q)
    sys.chans;
  Imap.iter
    (fun n s -> Buffer.add_string b (Printf.sprintf "|s%d:%d" n (List.length s)))
    sys.scripts;
  Imap.iter
    (fun n m ->
      Buffer.add_string b (Printf.sprintf "|m%d:" n);
      Imap.iter (fun blk v -> Buffer.add_string b (Printf.sprintf "%x=%d," blk v)) m)
    sys.shadow;
  Imap.iter (fun n v -> Buffer.add_string b (Printf.sprintf "|r%d:%d" n v)) sys.regs;
  Imap.iter
    (fun n blk -> Buffer.add_string b (Printf.sprintf "|p%d:%x" n blk))
    sys.pending_read;
  if sys.dropped then Buffer.add_string b "|D";
  (match sys.stash with
   | Some (n, blk, v) ->
     Buffer.add_string b (Printf.sprintf "|T%d:%x=%d" n blk v)
   | None -> ());
  (* the spec shadow is path-dependent state: two identical protocol
     states under different spec memories must explore separately, or
     a divergence on the pruned branch would be lost.  The racer's
     clocks are deliberately NOT keyed (race detection is per explored
     trace; keying full vector clocks would blow the state space), but
     the racy bit is, since it changes how divergences are judged. *)
  (match sys.refine with
   | Some r ->
     Buffer.add_string b (if r.racy then "|R!" else "|R");
     Buffer.add_string b (Refine.canon r.rspec)
   | None -> ());
  if sys.crash_budget > 0 || sys.recover_budget > 0 then
    Buffer.add_string b
      (Printf.sprintf "|X%d/%d" sys.crash_budget sys.recover_budget);
  Imap.iter
    (fun key cs ->
      Buffer.add_string b
        (Printf.sprintf "|L%d:%d/%d/%d:" key cs.tx_next cs.rx_expected
           cs.budget);
      List.iter
        (fun f ->
          Buffer.add_string b
            (Printf.sprintf "#%d%s;" f.fseq (Message.describe f.fmsg)))
        cs.wire;
      Buffer.add_string b "~";
      List.iter (fun f -> Buffer.add_string b (Printf.sprintf "#%d;" f.fseq))
        cs.rx_buf;
      Buffer.add_string b "~";
      List.iter
        (fun f ->
          Buffer.add_string b
            (Printf.sprintf "#%d%s;" f.fseq (Message.describe f.fmsg)))
        cs.unacked)
    sys.lchans;
  Buffer.contents b

(* Invalidation-ack conservation: a node expecting [e] acks can never
   have received plus in flight more than [e]. *)
let check_ack_conservation cfg (sys : sys) =
  let errs = ref [] in
  for node = 0 to cfg.T.nprocs - 1 do
    let nv = T.node_view sys.v ~node in
    Imap.iter
      (fun block (a : T.ackst) ->
        match a.T.expected with
        | None -> ()
        | Some e ->
          let is_ack (m : Message.t) =
            m.Message.kind = Message.Coh Message.Inv_ack
            && m.Message.addr = block
          in
          let in_flight =
            Imap.fold
              (fun key q acc ->
                if key mod 1024 = node then
                  acc + List.length (List.filter is_ack q)
                else acc)
              sys.chans 0
          in
          (* lossy mode: each unacked frame is delivered up exactly
             once eventually (dedup discards extra copies), so the
             undelivered acks are exactly the unacked ack frames.
             Under Retransmit_no_dedup, stale copies still on the wire
             deliver on top of that and push [got] past [expected] —
             which is precisely the violation this check reports. *)
          let in_flight =
            Imap.fold
              (fun key cs acc ->
                if key mod 1024 = node then
                  acc
                  + List.length
                      (List.filter (fun f -> is_ack f.fmsg) cs.unacked)
                else acc)
              sys.lchans in_flight
          in
          if a.T.got + in_flight > e then
            errs :=
              Printf.sprintf
                "node %d block 0x%x: %d acks received + %d in flight > %d \
                 expected"
                node block a.T.got in_flight e
              :: !errs)
      nv.T.acks
  done;
  !errs

(* Flag/value coherence of the shadow memory: a valid line is never
   flagged; an invalid line with no pending store of its own is always
   flagged (the inline checks depend on exactly this, Section 3.1). *)
let check_flag_coherence cfg blocks (sys : sys) =
  let errs = ref [] in
  let halted = T.halted_mask sys.v in
  for node = 0 to cfg.T.nprocs - 1 do
    (* an ever-crashed node's shadow memory is its frozen crash image:
       unflagged bytes under emptied (invalid) line state is exactly
       what salvage reads from, not a coherence violation *)
    if halted land (1 lsl node) = 0 then
      List.iter
      (fun block ->
        let st = T.line_state sys.v ~node ~block in
        let v = shadow_get sys ~node ~block in
        match st with
        | T.L_shared | T.L_exclusive ->
          if v = marker then
            errs :=
              Printf.sprintf "node %d block 0x%x: valid line holds flag value"
                node block
              :: !errs
        | T.L_invalid ->
          if v <> marker then
            errs :=
              Printf.sprintf
                "node %d block 0x%x: invalid line holds unflagged data" node
                block
              :: !errs
        | T.L_pending_invalid | T.L_pending_shared -> ())
      blocks
  done;
  !errs

(* ------------------------------------------------------------------ *)
(* Refinement: the abstraction function                                 *)
(* ------------------------------------------------------------------ *)

(* Every value the cluster still physically holds for [block]: any
   node's unflagged shadow copy (a fresh crash victim's is its frozen
   image) plus the payloads of in-flight data replies.  This is the
   admissible set a crash widens the spec to: the victim's in-flight
   store either committed before the cut (its value survives in the
   frozen image or a reply) or never happened (the stale copies). *)
let present_values cfg (sys : sys) block =
  let add acc v = if List.mem v acc then acc else v :: acc in
  let acc =
    List.fold_left
      (fun acc n ->
        let v = shadow_get sys ~node:n ~block in
        if v <> marker then add acc v else acc)
      []
      (List.init cfg.T.nprocs Fun.id)
  in
  let from_msg acc (m : Message.t) =
    match m.Message.kind with
    | Message.Coh (Data_reply { data; _ })
      when m.Message.addr = block && Array.length data > 0 ->
      add acc data.(0)
    | _ -> acc
  in
  let acc =
    Imap.fold (fun _ q acc -> List.fold_left from_msg acc q) sys.chans acc
  in
  List.sort compare acc

(* Map one protocol move (the [old_s] -> [sys] delta) onto spec steps.

   Commit points: a store commits at issue (non-stalling under release
   consistency — the written longword is immediately load-visible to
   its own node); a barrier's arrive half commits at issue; every
   other user-visible operation becomes the node's pending [uop] and
   commits at the move that leaves the node running again (a hit
   commits in the issuing move itself; a miss at the refill; a sync op
   at its wake).  Only the stepping node can newly become running —
   remote wakes always travel as messages — so at most one [uop]
   commits per move, after any issue and crash steps of the same move.
   Moves that consume no script and wake no one (transfers,
   invalidations, acks, migration, retransmissions, lossy adversary
   moves) produce no commits: they refine to stuttering.

   A crash move clears the victim's script wholesale (distinguished
   from an issue by the crashed-mask delta), discards the victim's
   uncommitted op ("never happened"), force-releases its spec locks
   and widens every block it last wrote to the physically-present
   value set ("committed before or never happened").

   Each commit first feeds the race detector, then the spec machine.
   A race in a DRF scenario is itself a violation; in a racy scenario
   it sets the sticky [racy] bit and later divergences are excused
   (the spec resynchronizes via [Refine.force]) — SC is only promised
   to race-free programs. *)
let refine_update (sc : scenario) cfg (old_s : sys) (sys : sys) :
    (sys, string list * string list) Stdlib.result =
  match old_s.refine with
  | None -> Ok sys
  | Some r0 ->
    let r = ref r0 in
    let errs = ref [] in
    let commit sst =
      let racer, races = Refine.observe !r.racer sst in
      let racy = !r.racy || races <> [] in
      if sc.drf then
        List.iter
          (fun m -> errs := !errs @ [ "race in a DRF scenario: " ^ m ])
          races;
      let label = Refine.string_of_sstep sst in
      match Refine.step !r.rspec sst with
      | Ok sp ->
        r := { !r with rspec = sp; racer; racy; rcommits = label :: !r.rcommits }
      | Error e ->
        if (not sc.drf) && racy then
          r :=
            { !r with
              rspec = Refine.force !r.rspec sst;
              racer;
              racy;
              rcommits = (label ^ " (excused: racy)") :: !r.rcommits }
        else begin
          errs := !errs @ [ "refinement: " ^ e ];
          r :=
            { !r with
              racer;
              racy;
              rcommits = (label ^ "  <-- DIVERGES") :: !r.rcommits }
        end
    in
    let uops = ref r0.uops in
    let was = T.crashed_mask old_s.v and now = T.crashed_mask sys.v in
    let new_victims =
      List.filter
        (fun n -> now land (1 lsl n) <> 0 && was land (1 lsl n) = 0)
        (List.init cfg.T.nprocs Fun.id)
    in
    (* 1. script consumption = operation issue *)
    for n = 0 to cfg.T.nprocs - 1 do
      if not (List.mem n new_victims) then begin
        let remaining m =
          match Imap.find_opt n m with Some l -> l | None -> []
        in
        let before = remaining old_s.scripts in
        if List.length (remaining sys.scripts) < List.length before then begin
          match List.hd before with
          | Write (b, v) ->
            commit (Refine.S_store { node = n; block = b; value = v })
          | Write_reg_plus (b, k) ->
            commit
              (Refine.S_store
                 { node = n; block = b; value = reg old_s ~node:n + k })
          | Barrier ->
            commit (Refine.S_barrier_arrive { node = n });
            uops := Imap.add n Barrier !uops
          | (Read _ | Lock _ | Unlock _ | Flag_set _ | Flag_wait _) as op ->
            uops := Imap.add n op !uops
        end
      end
    done;
    (* 2. crash steps *)
    List.iter
      (fun v ->
        uops := Imap.remove v !uops;
        let held = Refine.held_locks !r.rspec v in
        let admissible =
          List.filter_map
            (fun b ->
              match Refine.writer_of !r.rspec b with
              | Some w when w = v -> Some (b, present_values cfg sys b)
              | _ -> None)
            sc.blocks
        in
        commit (Refine.S_crash { victim = v; held; admissible }))
      new_victims;
    (* 3. the commit of an earlier issue: its node runs again *)
    for n = 0 to cfg.T.nprocs - 1 do
      match Imap.find_opt n !uops with
      | Some op when T.is_live sys.v ~node:n && running sys ~node:n ->
        uops := Imap.remove n !uops;
        (match op with
         | Read b ->
           commit
             (Refine.S_load { node = n; block = b; value = reg sys ~node:n })
         | Lock id -> commit (Refine.S_lock { node = n; id })
         | Unlock id -> commit (Refine.S_unlock { node = n; id })
         | Flag_set id -> commit (Refine.S_flag_set { node = n; id })
         | Flag_wait id -> commit (Refine.S_flag_wait { node = n; id })
         | Barrier ->
           commit
             (Refine.S_barrier_pass
                { node = n; excused = T.halted_mask sys.v })
         | Write _ | Write_reg_plus _ -> assert false)
      | _ -> ()
    done;
    let r = { !r with uops = !uops } in
    if !errs = [] then Ok { sys with refine = Some r }
    else Error (!errs, List.rev r.rcommits)

let commits_of (sys : sys) =
  match sys.refine with Some r -> List.rev r.rcommits | None -> []

(* Terminal obligations of refinement: no operation left uncommitted
   on a live node, and — when the scenario is DRF and no race was
   detected — every surviving valid copy agrees with the serial
   memory (the SC-for-DRF conclusion itself). *)
let check_refine_terminal (sc : scenario) cfg (sys : sys) =
  match sys.refine with
  | None -> []
  | Some r ->
    let errs = ref [] in
    Imap.iter
      (fun n op ->
        if T.is_live sys.v ~node:n then
          errs :=
            Printf.sprintf "refinement: node %d terminal with uncommitted %s"
              n (string_of_op op)
            :: !errs)
      r.uops;
    if sc.drf && not r.racy then
      List.iter
        (fun b ->
          let allowed = Refine.mem_values r.rspec b in
          for n = 0 to cfg.T.nprocs - 1 do
            (* an ever-crashed node's shadow is its frozen crash
               image, exempt exactly as in flag coherence *)
            if T.halted_mask sys.v land (1 lsl n) = 0 then
              match value sys ~node:n ~block:b with
              | Some v when not (List.mem v allowed) ->
                errs :=
                  Printf.sprintf
                    "refinement: node %d block 0x%x holds %d at terminal, \
                     serial memory allows {%s}"
                    n b v
                    (String.concat "," (List.map string_of_int allowed))
                  :: !errs
              | _ -> ()
          done)
        sc.blocks;
    !errs

let check_state (sc : scenario) cfg (sys : sys) =
  T.invariants cfg sys.v
  @ check_ack_conservation cfg sys
  @ check_flag_coherence cfg sc.blocks sys

let check_terminal (sc : scenario) cfg (sys : sys) =
  let stuck = ref [] in
  (* delivery to a crashed node is disabled, so a frame addressed to
     one would otherwise linger invisibly: the protocol must never
     send to a node it knows is dead *)
  Imap.iter
    (fun key q ->
      if q <> [] && not (T.is_live sys.v ~node:(key mod 1024)) then
        stuck :=
          Printf.sprintf "channel %s: %d frame(s) addressed to crashed node"
            (chan_label key) (List.length q)
          :: !stuck)
    sys.chans;
  Imap.iter
    (fun node script ->
      if script <> [] then
        stuck :=
          Printf.sprintf "node %d stuck with %d operations left (next: %s)"
            node (List.length script)
            (string_of_op (List.hd script))
          :: !stuck)
    sys.scripts;
  for node = 0 to cfg.T.nprocs - 1 do
    (match (T.node_view sys.v ~node).T.nstat with
     | T.N_waiting w ->
       stuck :=
         Printf.sprintf "node %d stuck waiting on %s" node (T.string_of_wait w)
         :: !stuck
     | T.N_running -> ());
    if Imap.mem node sys.pending_read then
      stuck :=
        Printf.sprintf "node %d stuck on an unanswered load" node :: !stuck
  done;
  (* eventual delivery => quiescence: a terminal state must have every
     sublayer channel fully drained — no frame in flight, held out of
     order, or lost-but-unacknowledged.  The retransmit move makes a
     lost frame always recoverable, so anything left here means a
     payload was never delivered to the protocol. *)
  Imap.iter
    (fun key cs ->
      let leak what n =
        if n > 0 then
          stuck :=
            Printf.sprintf
              "channel %s: %d frame(s) %s at terminal (eventual delivery \
               violated)"
              (chan_label key) n what
            :: !stuck
      in
      leak "still on the wire" (List.length cs.wire);
      leak "held out of order" (List.length cs.rx_buf);
      leak "undelivered" (List.length cs.unacked))
    sys.lchans;
  (* once a node has crashed mid-script the scenario's data outcome is
     unknowable (the victim died at an arbitrary position); the
     structural, quiescence and no-survivor-stuck obligations above
     remain in full force *)
  let oracle = if T.halted_mask sys.v = 0 then sc.oracle sys else [] in
  !stuck @ T.quiescent_invariants cfg sys.v @ oracle
  @ check_refine_terminal sc cfg sys

(* ------------------------------------------------------------------ *)
(* Exhaustive search                                                    *)
(* ------------------------------------------------------------------ *)

type violation = {
  verr : string list;
  vtrace : string list;
  vcommits : string list;
      (* the spec steps committed along the trace (refinement mode) *)
}

type result = {
  states : int; (* distinct states visited *)
  transitions : int;
  terminals : int;
  max_depth : int;
  truncated : bool; (* hit the state bound before finishing *)
  violation : violation option;
}

let check_exhaustive ?(injection = No_injection) ?lossy ?crash ?recover
    ?refine ?base ?(max_states = 1_000_000) (sc : scenario) =
  let cfg = cfg_of ?base sc in
  let visited = Hashtbl.create 4096 in
  let states = ref 0 and transitions = ref 0 and terminals = ref 0 in
  let max_depth = ref 0 and truncated = ref false in
  let violation = ref None in
  let rec dfs sys path depth =
    if !violation <> None then ()
    else begin
      if depth > !max_depth then max_depth := depth;
      match check_state sc cfg sys with
      | _ :: _ as errs ->
        violation :=
          Some
            { verr = errs; vtrace = List.rev path; vcommits = commits_of sys }
      | [] -> (
        let ms = moves cfg ~inj:injection sys in
        match ms with
        | [] -> (
          incr terminals;
          match check_terminal sc cfg sys with
          | [] -> ()
          | errs ->
            violation :=
              Some
                { verr = errs;
                  vtrace = List.rev path;
                  vcommits = commits_of sys })
        | ms ->
          List.iter
            (fun (label, next) ->
              if !violation = None && not !truncated then begin
                let sys' =
                  try next ()
                  with Unexpected e | Failure e | Invalid_argument e ->
                    violation :=
                      Some
                        { verr = [ e ];
                          vtrace = List.rev (label :: path);
                          vcommits = commits_of sys };
                    sys
                in
                if !violation = None then begin
                  let sys' =
                    match refine_update sc cfg sys sys' with
                    | Ok sys' -> sys'
                    | Error (errs, commits) ->
                      violation :=
                        Some
                          { verr = errs;
                            vtrace = List.rev (label :: path);
                            vcommits = commits };
                      sys'
                  in
                  if !violation = None then begin
                    incr transitions;
                    let key = canon_sys sys' in
                    if not (Hashtbl.mem visited key) then begin
                      Hashtbl.add visited key ();
                      incr states;
                      if !states >= max_states then truncated := true
                      else dfs sys' (label :: path) (depth + 1)
                    end
                  end
                end
              end)
            ms)
    end
  in
  let sys0 = init_sys ?lossy ?crash ?recover ?refine ?base sc in
  Hashtbl.add visited (canon_sys sys0) ();
  states := 1;
  dfs sys0 [] 0;
  { states = !states;
    transitions = !transitions;
    terminals = !terminals;
    max_depth = !max_depth;
    truncated = !truncated;
    violation = !violation }

(* ------------------------------------------------------------------ *)
(* Seeded random-interleaving fuzzer                                    *)
(* ------------------------------------------------------------------ *)

(* Per-run seeds for [fuzz], drawn from one splitmix64 stream keyed on
   the user's seed.  The old scheme ([Prng.of_list [seed; k]]) summed
   seed and run index before finalizing, so (seed, k) and (seed+1,
   k-1) collided — adjacent seeds largely re-explored each other's
   interleavings.  A single well-mixed stream makes all [runs] draws
   distinct with overwhelming probability. *)
let fuzz_seeds ~seed ~runs =
  let master = Shasta_prng.Prng.of_list [ seed ] in
  List.init runs (fun _ -> Shasta_prng.Prng.bits63 master)

let fuzz ?(injection = No_injection) ?lossy ?crash ?recover ?refine ?base
    ~seed ~runs (sc : scenario) =
  let cfg = cfg_of ?base sc in
  let violation = ref None in
  let total_steps = ref 0 in
  let run_one rs =
    let rng = Shasta_prng.Prng.create rs in
    let sys = ref (init_sys ?lossy ?crash ?recover ?refine ?base sc) in
    let path = ref [] in
    let continue = ref true in
    while !continue && !violation = None do
      (match check_state sc cfg !sys with
       | [] -> ()
       | errs ->
         violation :=
           Some
             { verr = errs;
               vtrace = List.rev !path;
               vcommits = commits_of !sys };
         continue := false);
      if !continue then
        match moves cfg ~inj:injection !sys with
        | [] ->
          (match check_terminal sc cfg !sys with
           | [] -> ()
           | errs ->
             violation :=
               Some
                 { verr = errs;
                   vtrace = List.rev !path;
                   vcommits = commits_of !sys });
          continue := false
        | ms ->
          let label, next =
            List.nth ms (Shasta_prng.Prng.int rng (List.length ms))
          in
          (try
             let sys' = next () in
             (match refine_update sc cfg !sys sys' with
              | Ok sys' ->
                sys := sys';
                path := label :: !path;
                incr total_steps
              | Error (errs, commits) ->
                violation :=
                  Some
                    { verr = errs;
                      vtrace = List.rev (label :: !path);
                      vcommits = commits };
                continue := false)
           with Unexpected e | Failure e | Invalid_argument e ->
             violation :=
               Some
                 { verr = [ e ];
                   vtrace = List.rev (label :: !path);
                   vcommits = commits_of !sys };
             continue := false)
    done
  in
  List.iter
    (fun rs -> if !violation = None then run_one rs)
    (fuzz_seeds ~seed ~runs);
  (!total_steps, !violation)

(* ------------------------------------------------------------------ *)
(* Scenarios                                                            *)
(* ------------------------------------------------------------------ *)

let b0 = 0
let b1 = 8192 (* a different home when nprocs > 1 *)

let no_oracle _ = []

let expect_value ~node ~block ~want sys =
  match value sys ~node ~block with
  | Some v when v = want -> []
  | Some v ->
    [ Printf.sprintf "node %d block 0x%x: final value %d, want %d" node block v
        want ]
  | None ->
    [ Printf.sprintf "node %d block 0x%x: no valid final copy, want %d" node
        block want ]

let expect_reg ~node ~want sys =
  let v = reg sys ~node in
  if v = want then []
  else [ Printf.sprintf "node %d: read %d, want %d" node v want ]

(* Everyone reads a block the allocator wrote: all end as sharers with
   the same value. *)
let read_sharing ~nprocs =
  { sname = "read-sharing";
    nprocs;
    blocks = [ b0 ];
    scripts =
      Array.init nprocs (fun n -> if n = 0 then [ Write (b0, 7); Barrier; Read b0 ] else [ Barrier; Read b0 ]);
    oracle =
      (fun sys ->
        List.concat_map
          (fun n -> expect_reg ~node:n ~want:7 sys)
          (List.init nprocs Fun.id));
    drf = true;
    cfg_mod = Fun.id }

(* Unsynchronized write race: coherence must survive, and the final
   value is one of the two writes (write serialization). *)
let write_race ~nprocs =
  { sname = "write-race";
    nprocs;
    blocks = [ b0 ];
    scripts =
      Array.init nprocs (fun n ->
        if n < 2 then [ Write (b0, 100 + n) ] else []);
    oracle =
      (fun sys ->
        let owner =
          match T.dir_entry sys.v ~block:b0 with
          | Some e -> e.T.owner
          | None -> 0
        in
        match value sys ~node:owner ~block:b0 with
        | Some v when v = 100 || v = 101 -> []
        | Some v -> [ Printf.sprintf "final value %d is neither write" v ]
        | None -> [ "owner holds no valid copy" ]);
    drf = false;
    cfg_mod = Fun.id }

(* Lock-protected increments: every increment survives (the migratory
   pattern; exercises upgrade misses, forwarding, and inv acks). *)
let lock_increment ~nprocs =
  { sname = "lock-increment";
    nprocs;
    blocks = [ b0 ];
    scripts =
      (* the block starts as value 0, exclusive at node 0 *)
      Array.init nprocs (fun _ ->
        [ Lock 0; Read b0; Write_reg_plus (b0, 1); Unlock 0 ]);
    oracle =
      (fun sys ->
        let owner =
          match T.dir_entry sys.v ~block:b0 with
          | Some e -> e.T.owner
          | None -> 0
        in
        expect_value ~node:owner ~block:b0 ~want:nprocs sys);
    drf = true;
    cfg_mod = Fun.id }

(* Producer/consumer over an event flag: the consumer's read must see
   the producer's data (release->acquire ordering). *)
let flag_handoff =
  { sname = "flag-handoff";
    nprocs = 2;
    blocks = [ b0 ];
    scripts =
      [| [ Write (b0, 42); Flag_set 0 ]; [ Flag_wait 0; Read b0 ] |];
    oracle = (fun sys -> expect_reg ~node:1 ~want:42 sys);
    drf = true;
    cfg_mod = Fun.id }

(* Two blocks with different homes, written on opposite sides of a
   barrier: both post-barrier reads see the pre-barrier writes. *)
let barrier_exchange =
  { sname = "barrier-exchange";
    nprocs = 2;
    blocks = [ b0; b1 ];
    scripts =
      [| [ Write (b0, 5); Barrier; Read b1 ];
         [ Write (b1, 6); Barrier; Read b0 ] |];
    oracle =
      (fun sys ->
        expect_reg ~node:0 ~want:6 sys @ expect_reg ~node:1 ~want:5 sys);
    drf = true;
    cfg_mod = Fun.id }

(* Read-share then upgrade: the writer must collect an invalidation
   acknowledgement from the other sharer before its release completes —
   the scenario that exposes a dropped inv ack. *)
let upgrade_race ~nprocs =
  { sname = "upgrade-race";
    nprocs;
    blocks = [ b0 ];
    scripts =
      Array.init nprocs (fun n ->
        if n = 0 then [ Write (b0, 1); Barrier; Lock 0; Write (b0, 9); Unlock 0 ]
        else [ Barrier; Read b0 ]);
    oracle = no_oracle;
    drf = false;
    cfg_mod = Fun.id }

(* The directed refinement scenario: a producer publishes under a
   flag, then updates the same block inside a critical section; the
   consumer reads the block under the same lock, twice.  Data-race
   free, and every final outcome satisfies the weak data oracle — but
   under SC the consumer's lock-section reads must observe the
   producer's locked store once the producer has released.  The
   [Store_past_release] injection sinks that store past the release
   while every structural invariant, the oracle and quiescence still
   hold: only refinement (each commit pinned to its program-order spec
   step) catches the stale lock-section read. *)
let release_order =
  { sname = "release-order";
    nprocs = 2;
    blocks = [ b0 ];
    scripts =
      [| [ Write (b0, 1); Flag_set 0; Lock 0; Write (b0, 2); Unlock 0 ];
         [ Flag_wait 0; Lock 0; Read b0; Unlock 0; Lock 0; Read b0; Unlock 0 ]
      |];
    oracle =
      (fun sys ->
        let owner =
          match T.dir_entry sys.v ~block:b0 with
          | Some e -> e.T.owner
          | None -> 0
        in
        expect_value ~node:owner ~block:b0 ~want:2 sys
        @
        match reg sys ~node:1 with
        | 1 | 2 -> []
        | v -> [ Printf.sprintf "node 1 read %d, want 1 or 2" v ]);
    drf = true;
    cfg_mod = Fun.id }

let scenarios ~nprocs =
  [ read_sharing ~nprocs;
    write_race ~nprocs;
    lock_increment ~nprocs;
    flag_handoff;
    barrier_exchange;
    upgrade_race ~nprocs ]

(* The scenario family for refinement checking: the base set plus the
   directed release-ordering scenario (kept out of [scenarios] so the
   long-standing state-space baselines stay comparable). *)
let refine_scenarios ~nprocs = scenarios ~nprocs @ [ release_order ]

(* Scenarios safe under the crash adversary: everything except
   [flag_handoff].  An event flag the dead producer never set stays
   unset forever — the protocol cannot invent it — so its consumer is
   legitimately stuck; tolerating dead producers is an application
   obligation (the KV service uses locks and barriers across nodes,
   both of which recovery unblocks). *)
let crash_scenarios ~nprocs =
  [ read_sharing ~nprocs;
    write_race ~nprocs;
    lock_increment ~nprocs;
    barrier_exchange;
    upgrade_race ~nprocs ]

(* --- scaling scenarios ----------------------------------------------- *)

(* Limited-pointer overflow: with one pointer and three nodes sharing
   one block, the second distinct sharer overflows the entry to
   broadcast.  The read-sharing oracle then proves the superset
   semantics never misses a real sharer — a missed invalidation would
   leave a stale unflagged copy, which flag coherence and the final
   reads catch.  The allocator also writes after the barrier so the
   overflowed entry actually drives an invalidation fan-out. *)
let lp_overflow ~nprocs =
  { sname = "lp-overflow";
    nprocs;
    blocks = [ b0 ];
    scripts =
      Array.init nprocs (fun n ->
        if n = 0 then [ Write (b0, 7); Barrier; Read b0; Write (b0, 8) ]
        else [ Barrier; Read b0 ]);
    oracle =
      (fun sys ->
        let owner =
          match T.dir_entry sys.v ~block:b0 with
          | Some e -> e.T.owner
          | None -> 0
        in
        expect_value ~node:owner ~block:b0 ~want:8 sys);
    drf = false;
    cfg_mod = (fun c -> { c with T.dmode = Nodeset.Limited 1 }) }

(* Coarse-vector regions: region size 2 makes every singleton sharer a
   whole 2-node region, so invalidations over-approximate; the oracle
   is the same all-readers-agree check. *)
let coarse_sharing ~nprocs =
  let sc = read_sharing ~nprocs in
  { sc with
    sname = "coarse-sharing";
    cfg_mod = (fun c -> { c with T.dmode = Nodeset.Coarse 2 }) }

(* The stale-home trap: inexact sharer supersets can cover the home
   node even though its copy is invalid.  Node 3 writes (invalidating
   the home's initial copy), then readers 1 and 2 race: in the order
   where 1 reads first, its region/broadcast coverage spuriously
   includes home 0, and a directory that trusts superset membership
   would serve node 2 the home's stale copy directly.  The oracle
   demands both readers see the write; regression for the rule that
   [home_valid] requires exact membership. *)
let home_stale ~sname ~dmode =
  { sname;
    nprocs = 4;
    blocks = [ b0 ];
    scripts =
      Array.init 4 (fun n ->
        if n = 3 then [ Write (b0, 7); Barrier ]
        else if n = 0 then [ Barrier ]
        else [ Barrier; Read b0 ]);
    oracle =
      (fun sys ->
        expect_reg ~node:1 ~want:7 sys @ expect_reg ~node:2 ~want:7 sys);
    drf = true;
    cfg_mod = (fun c -> { c with T.dmode }) }

(* MCS-style queue lock: lock-protected increments under
   [scalable_sync], where a release hands the lock straight to the
   queued successor instead of bouncing through the home. *)
let queue_lock ~nprocs =
  let sc = lock_increment ~nprocs in
  { sc with
    sname = "queue-lock";
    cfg_mod = (fun c -> { c with T.scalable_sync = true }) }

(* Combining-tree barrier: the barrier-exchange data obligation under
   [scalable_sync], where arrivals climb the static tree and the
   release fans back down it. *)
let tree_barrier =
  { barrier_exchange with
    sname = "tree-barrier";
    cfg_mod = (fun c -> { c with T.scalable_sync = true }) }

(* A 3-node tree barrier plus queue lock in one run: nodes 1 and 2 are
   both children of root 0, so arrival combining actually combines. *)
let scalable_mix ~nprocs =
  let sc = lock_increment ~nprocs in
  { sc with
    sname = "scalable-mix";
    scripts =
      Array.init nprocs (fun _ ->
        [ Lock 0; Read b0; Write_reg_plus (b0, 1); Unlock 0; Barrier ]);
    cfg_mod = (fun c -> { c with T.scalable_sync = true }) }

let scale_scenarios ~nprocs =
  [ lp_overflow ~nprocs;
    coarse_sharing ~nprocs;
    home_stale ~sname:"lp-home-stale" ~dmode:(Nodeset.Limited 1);
    home_stale ~sname:"coarse-home-stale" ~dmode:(Nodeset.Coarse 2);
    queue_lock ~nprocs;
    tree_barrier;
    scalable_mix ~nprocs ]

(* ------------------------------------------------------------------ *)
(* Reporting                                                            *)
(* ------------------------------------------------------------------ *)

let pp_violation out { verr; vtrace; vcommits } =
  Printf.fprintf out "  counterexample (%d moves):\n" (List.length vtrace);
  List.iteri (fun k l -> Printf.fprintf out "    %2d. %s\n" (k + 1) l) vtrace;
  if vcommits <> [] then begin
    Printf.fprintf out "  committed spec steps (%d):\n" (List.length vcommits);
    List.iteri
      (fun k l -> Printf.fprintf out "    %2d. %s\n" (k + 1) l)
      vcommits
  end;
  List.iter (fun e -> Printf.fprintf out "  violated: %s\n" e) verr

let run_scenario ?injection ?lossy ?crash ?recover ?refine ?base ?max_states
    out (sc : scenario) =
  let r =
    check_exhaustive ?injection ?lossy ?crash ?recover ?refine ?base
      ?max_states sc
  in
  Printf.fprintf out
    "%-17s P=%d  states=%-7d transitions=%-8d terminals=%-6d depth=%d%s\n"
    sc.sname sc.nprocs r.states r.transitions r.terminals r.max_depth
    (if r.truncated then " (truncated)" else "");
  (match r.violation with
   | Some v -> pp_violation out v
   | None -> ());
  r
