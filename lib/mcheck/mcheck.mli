(* Explicit-state model checker and random-interleaving fuzzer for the
   pure protocol core ([Shasta_protocol.Transitions]).

   A scenario closes the system: a few nodes running short scripted
   operation sequences over one or two blocks, message channels with
   per-(src,dst) FIFO order, and a one-longword-per-block shadow
   memory.  [check_exhaustive] enumerates every interleaving and
   checks, at each state, the core's structural invariants,
   invalidation-ack conservation against in-flight messages, and
   flag/value coherence; terminal states must be quiescent and satisfy
   the scenario's data oracle.  [fuzz] random-walks larger instances.
   [Drop_first_inv_ack] injects a protocol bug at the routing layer to
   demonstrate the checker catches it.

   [~lossy:budget] swaps the perfect channels for the unreliable wire
   under the reliable-delivery sublayer: every message becomes a
   sequence-numbered frame, the adversary spends a bounded per-channel
   budget on drop/duplicate/reorder moves, lost frames are
   retransmitted, and the receiver dedups and resequences.  Terminal
   states must additionally have every channel drained — the "eventual
   delivery implies quiescence" liveness check.  [Retransmit_no_dedup]
   removes the receiver-side dedup so stale frames reach the protocol
   twice, a transport bug the checker must catch.

   [~crash:budget] adds a node-crash adversary: at any state it may
   halt any node (while at least two are live), purge the victim's
   in-flight frames and feed them to the surviving coordinator's
   [I_node_crash] step, exactly as the runtime's crash detector does;
   [~recover:budget] adds restart moves.  Invariants must hold through
   crash and recovery, survivors must never be stuck at terminal
   states, and terminal states must be quiescent; scenario data
   oracles are skipped once a crash fires.  Requires the reliable
   wire. *)

open Shasta_protocol
module T = Transitions

type op =
  | Read of int (* block *)
  | Write of int * int (* block, value *)
  | Write_reg_plus of int * int (* block, increment over last read *)
  | Lock of int
  | Unlock of int
  | Flag_set of int
  | Flag_wait of int
  | Barrier

val string_of_op : op -> string

type injection =
  | No_injection
  | Drop_first_inv_ack
  | Retransmit_no_dedup
  | Store_past_release
      (* the refinement-teeth mutation: the first store issued under a
         held lock is withheld and fires only after the node has
         released its locks.  Preserves every structural invariant,
         quiescence and the (weak) data oracles; only [~refine]
         catches the reordered commit. *)

type sys

type scenario = {
  sname : string;
  nprocs : int;
  blocks : int list;
  scripts : op list array;
  oracle : sys -> string list; (* extra checks at terminal states *)
  drf : bool;
      (* scripts are data-race-free: the race detector must stay
         silent in refinement mode and spec divergences are hard
         violations; on a racy scenario divergences after a detected
         race are excused *)
  cfg_mod : T.cfg -> T.cfg;
      (* configuration override over the default (full-map, centralized
         sync): scale scenarios pick limited/coarse directories and the
         queue-lock/tree-barrier path here *)
}

(* Oracle helpers: inspect a terminal system. *)
val value : sys -> node:int -> block:int -> int option
(** The node's copy of the block's longword; [None] when flagged. *)

val reg : sys -> node:int -> int
(** The value of the node's last completed [Read]. *)

val view : sys -> T.view

val init_sys :
  ?lossy:int ->
  ?crash:int ->
  ?recover:int ->
  ?refine:bool ->
  ?base:T.cfg ->
  scenario ->
  sys
(** [lossy] is the per-channel fault budget; omitted = reliable wire.
    [crash]/[recover] are the node-crash adversary's halt and restart
    move budgets (default 0 = no crash moves); [crash] requires the
    reliable wire.  [refine] attaches the serial-memory spec machine
    and race detector (see {!Refine}); [base] seeds the configuration
    the scenario's [cfg_mod] is applied over (the CLI's
    --dir-mode/--sync choice).  [base]'s processor count is overridden
    by the scenario's. *)

val cfg_of : ?base:T.cfg -> scenario -> T.cfg

val moves :
  T.cfg -> inj:injection -> sys -> (string * (unit -> sys)) list
(** All enabled moves with display labels: issue next scripted op,
    deliver a channel head, and — on a lossy system — the adversary's
    budgeted drop/dup/reorder moves plus free retransmission of lost
    frames. *)

type violation = {
  verr : string list;
  vtrace : string list;
  vcommits : string list;
      (* refinement mode: the spec steps committed along the trace,
         oldest first — the abstract run the counterexample diverged
         from *)
}

type result = {
  states : int; (* distinct states visited *)
  transitions : int;
  terminals : int;
  max_depth : int;
  truncated : bool; (* hit the state bound before finishing *)
  violation : violation option;
}

val check_exhaustive :
  ?injection:injection ->
  ?lossy:int ->
  ?crash:int ->
  ?recover:int ->
  ?refine:bool ->
  ?base:T.cfg ->
  ?max_states:int ->
  scenario ->
  result
(** With [~refine:true], every explored interleaving is additionally
    checked to refine the serial-memory spec: each load/store/sync
    commit maps to exactly one atomic spec step (transfers,
    invalidations, acks, migration and retransmissions are stuttering
    no-ops), crash boundaries widen a dead writer's blocks to the
    physically surviving values, and a vector-clock race detector
    verifies the scenario's [drf] claim along each explored trace.
    The spec state is folded into the visited-set key, so refinement
    multiplies the state count. *)

val fuzz_seeds : seed:int -> runs:int -> int list
(** The per-run seeds [fuzz] derives from [seed] via one shared
    splitmix64 stream — exposed so tests can pin their uniqueness. *)

val fuzz :
  ?injection:injection ->
  ?lossy:int ->
  ?crash:int ->
  ?recover:int ->
  ?refine:bool ->
  ?base:T.cfg ->
  seed:int ->
  runs:int ->
  scenario ->
  int * violation option
(** Seeded random walks; returns total steps taken and the first
    violation, if any. *)

(* Built-in scenarios (blocks with distinct homes when nprocs > 1). *)
val read_sharing : nprocs:int -> scenario
val write_race : nprocs:int -> scenario
val lock_increment : nprocs:int -> scenario
val flag_handoff : scenario
val barrier_exchange : scenario
val upgrade_race : nprocs:int -> scenario

val release_order : scenario
(** The directed refinement scenario: a flag-published block updated
    again inside a critical section, read twice under the same lock by
    the consumer.  DRF, and its data oracle tolerates every final
    outcome — the [Store_past_release] injection is invisible to all
    pre-refinement checks here, and exactly the stale lock-section
    read diverges from the spec. *)

val scenarios : nprocs:int -> scenario list

val refine_scenarios : nprocs:int -> scenario list
(** [scenarios] plus [release_order] (kept separate so existing
    state-space baselines stay comparable). *)

val crash_scenarios : nprocs:int -> scenario list
(** The scenarios safe under the crash adversary: all but
    [flag_handoff] (a flag the dead producer never set legitimately
    strands its waiter — tolerating that is an application
    obligation). *)

(* Scaling scenarios: non-default directory organizations and the
   scalable synchronization path. *)
val lp_overflow : nprocs:int -> scenario
(** One limited pointer + [nprocs] sharers: the entry overflows to
    broadcast; the oracle proves the superset never misses a sharer. *)

val coarse_sharing : nprocs:int -> scenario
val queue_lock : nprocs:int -> scenario
val tree_barrier : scenario
val scalable_mix : nprocs:int -> scenario
val scale_scenarios : nprocs:int -> scenario list

val pp_violation : out_channel -> violation -> unit

val run_scenario :
  ?injection:injection ->
  ?lossy:int ->
  ?crash:int ->
  ?recover:int ->
  ?refine:bool ->
  ?base:T.cfg ->
  ?max_states:int ->
  out_channel ->
  scenario ->
  result
(** Run one scenario exhaustively and print its state-space summary
    line (plus any counterexample) to the channel. *)
