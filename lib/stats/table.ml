(* Aligned text tables for the benchmark harness. *)

type t = {
  header : string list;
  mutable rows : string list list; (* reversed *)
}

let create header = { header; rows = [] }

let add_row t row = t.rows <- row :: t.rows

(* Printf-style row helper: the format renders one row whose cells are
   separated by tabs, e.g. [addf t "%s\t%d\t%.2f" name n x]. *)
let addf t fmt =
  Printf.ksprintf (fun s -> add_row t (String.split_on_char '\t' s)) fmt

let render t =
  let rows = List.rev t.rows in
  let all = t.header :: rows in
  let ncols =
    List.fold_left (fun a r -> max a (List.length r)) 0 all
  in
  let width c =
    List.fold_left
      (fun a r ->
        match List.nth_opt r c with
        | Some s -> max a (String.length s)
        | None -> a)
      0 all
  in
  let widths = List.init ncols width in
  let pad s w =
    s ^ String.make (max 0 (w - String.length s)) ' '
  in
  let line r =
    String.concat "  "
      (List.mapi
         (fun c w ->
           pad (match List.nth_opt r c with Some s -> s | None -> "") w)
         widths)
    |> fun s -> String.trim (" " ^ s) |> fun body -> "  " ^ body
  in
  let sep =
    "  "
    ^ String.concat "  " (List.map (fun w -> String.make w '-') widths)
  in
  String.concat "\n" ((line t.header :: sep :: List.map line rows) @ [ "" ])

let print t = print_string (render t)

let ratio a b = if b = 0 then 0.0 else float_of_int a /. float_of_int b

let f2 x = Printf.sprintf "%.2f" x
let f1 x = Printf.sprintf "%.1f" x
let pct x = Printf.sprintf "%.1f%%" (100.0 *. x)
let i_ n = string_of_int n

let section title =
  Printf.printf "\n==== %s %s\n\n" title
    (String.make (max 0 (66 - String.length title)) '=')
