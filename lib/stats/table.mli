(** Aligned text tables and small formatting helpers for the benchmark
    harness. *)

type t

val create : string list -> t
val add_row : t -> string list -> unit

val addf : t -> ('a, unit, string, unit) format4 -> 'a
(** Printf-style [add_row]: the format renders one row, cells
    separated by ['\t'] — [addf t "%s\t%d" name count]. *)

val render : t -> string
val print : t -> unit

val ratio : int -> int -> float
val f2 : float -> string
val f1 : float -> string
val pct : float -> string
val i_ : int -> string

val section : string -> unit
(** Print a section banner. *)
