(* Exact Zipfian over ranks via the cumulative harmonic sums
   H_theta(k); the table form trades a little tail resolution for a
   constant-time integer sampler the MiniC driver can afford. *)

type zipf = {
  n : int;
  cdf : float array; (* cdf.(k) = mass of ranks 0..k-1; cdf.(n) = 1 *)
}

let zipf ~n ~theta =
  if n <= 0 then invalid_arg "Keygen.zipf: n must be positive";
  if theta < 0.0 || theta >= 1.0 then
    invalid_arg "Keygen.zipf: theta must be in [0, 1)";
  let cdf = Array.make (n + 1) 0.0 in
  let h = ref 0.0 in
  for k = 1 to n do
    h := !h +. (1.0 /. (float_of_int k ** theta));
    cdf.(k) <- !h
  done;
  let hn = !h in
  for k = 1 to n - 1 do
    cdf.(k) <- cdf.(k) /. hn
  done;
  cdf.(n) <- 1.0;
  { n; cdf }

let draw z u =
  if u < 0.0 || u >= 1.0 then invalid_arg "Keygen.draw: u must be in [0, 1)";
  (* largest k with cdf.(k) <= u; rank k's mass is (cdf.(k), cdf.(k+1)] *)
  let lo = ref 0 and hi = ref z.n in
  while !hi - !lo > 1 do
    let mid = (!lo + !hi) / 2 in
    if z.cdf.(mid) <= u then lo := mid else hi := mid
  done;
  !lo

let pmf z k =
  if k < 0 || k >= z.n then invalid_arg "Keygen.pmf: rank out of range";
  z.cdf.(k + 1) -. z.cdf.(k)

let quantile_table ~n ~theta ~quanta =
  if quanta < 2 then invalid_arg "Keygen.quantile_table: quanta < 2";
  let z = zipf ~n ~theta in
  Array.init (quanta + 1) (fun q ->
    if q = 0 then 0
    else if q = quanta then n
    else begin
      let target = float_of_int q /. float_of_int quanta in
      (* smallest k with cdf.(k) >= target *)
      let lo = ref 0 and hi = ref n in
      while !hi - !lo > 1 do
        let mid = (!lo + !hi) / 2 in
        if z.cdf.(mid) >= target then hi := mid else lo := mid
      done;
      !hi
    end)
