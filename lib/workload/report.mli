(** End-of-run report of a {!Workload} drive program.

    [parse] turns the integer block printed by node 0 back into a
    structured report; latency percentiles come from the per-operation
    histogram through {!Shasta_obs.Metrics.percentile} (the same
    fixed-bucket machinery the profiler's span histograms use), and
    throughput is expressed in operations per million simulated cycles
    so that reports are byte-identical across runs of the same seed. *)

type t = {
  nprocs : int;
  nkeys : int;
  ops : int;
  load_ops : int;
  gets : int;
  puts : int;
  dels : int;
  scans : int;
  errors : int;  (** consistency violations observed by get/scan *)
  lat_sum : int;
  lat_max : int;
  hist : int array;  (** [Workload.nb_lat] latency buckets *)
  per_node : (int * int * int) array;  (** (ops, run start, run end) *)
  overflows : int;  (** inserts dropped by the table *)
  migrations : int;  (** shard-ownership handoffs *)
  verify_errors : int;  (** violations during the final sweep *)
  population : int;
  checksum : int;
  lost : int;
      (** keys skipped by the final sweep because their loading node's
          program crashed mid-plan (their state reflects an unknowable
          plan prefix) *)
  owned : int array;  (** final shard-ownership count per node *)
}

val parse : string -> t
(** Parse the raw printed output of a run (one integer per line).
    Raises [Failure] on a malformed block. *)

val strip_timing : t -> t
(** The timing-invariant projection: latency and timestamp fields
    zeroed.  Two runs of the same plan at the same node count must
    agree on it regardless of instrumentation or network timing. *)

val run_cycles : t -> int
(** Timed-window length: latest run end minus earliest run start. *)

val ops_per_mcycle : t -> float

val latency_hist : t -> Shasta_obs.Metrics.hist
(** The per-operation latency histogram as a metrics histogram, for
    [Metrics.percentile]. *)

val percentile : t -> float -> int

val render : ?label:string -> t -> string
(** Human-readable report; deterministic for a given [t]. *)

val to_bench :
  workload:string ->
  ?line:int ->
  ?opts:string ->
  ?messages:int ->
  ?misses:int ->
  ?perf:Shasta_obs.Perf.report ->
  t ->
  Shasta_obs.Benchjson.t
(** The report as a versioned BENCH record: KV metrics (ops,
    throughput, percentiles, errors, lost, ...) in the record's
    [extra] fields, gated exactly like the fixed simulated metrics.
    [messages]/[misses] come from the cluster phase result when the
    caller has one; [perf] fills the tolerance-gated host half. *)

val to_json :
  ?line:int ->
  ?opts:string ->
  ?messages:int ->
  ?misses:int ->
  ?perf:Shasta_obs.Perf.report ->
  workload:string ->
  t ->
  string
(** [to_bench] rendered as one JSON object line ({!Shasta_obs.Benchjson.emit}),
    for BENCH_kv.json. *)
