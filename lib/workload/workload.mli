(** YCSB-style drive programs for key-value tables on the DSM.

    [program] assembles a complete two-phase MiniC benchmark around a
    key-value {!table} implementation: a {b load} phase in which the
    nodes partition the key space and insert every key once, then a
    timed {b run} phase in which each node issues its share of a
    configurable read/update/delete/scan mix against keys drawn
    uniformly or Zipfian (via {!Keygen.quantile_table}), timestamping
    every operation with the cycle-counter intrinsic into a per-node
    latency histogram.  Node 0 finally prints a self-describing block
    of integers that {!Report.parse} turns back into a report.

    Everything is deterministic: the per-node operation streams come
    from a seeded multiplicative congruential generator written in
    MiniC and mirrored bit-for-bit by {!plan}, so a test can predict
    exactly which operations a run will issue without running it. *)

open Shasta_minic

(** Operation mixes, per the YCSB core workloads: A = 50/50
    read/update, B = 95/5 read/update, C = read-only, E = 95/5
    scan/insert, M = 40/40/10/10 read/update/delete/scan (exercises
    every operation). *)
type mix = A | B | C | E | M

type dist = Uniform | Zipfian of float  (** theta, typically 0.99 *)

type spec = {
  nkeys : int;
  ops : int;  (** total operation target; each node runs [ops/nprocs] *)
  mix : mix;
  dist : dist;
  seed : int;
  scan_len : int;  (** consecutive buckets touched by one scan *)
  quanta : int;  (** Zipfian inverse-CDF table resolution *)
  disjoint : bool;
      (** remap every key to [key ≡ pid (mod nprocs)] so per-key
          operation sequences are node-local — used by the oracle
          tests; requires [nkeys mod nprocs = 0] *)
}

val spec :
  ?ops:int ->
  ?mix:mix ->
  ?dist:dist ->
  ?seed:int ->
  ?scan_len:int ->
  ?quanta:int ->
  ?disjoint:bool ->
  nkeys:int ->
  unit ->
  spec
(** Defaults: 100_000 ops, mix B, Zipfian 0.99, seed 42, scan_len 4,
    1024 quanta, disjoint off. *)

val mix_of_string : string -> mix
(** Accepts "a".."e" and "m" (case-insensitive); raises
    [Invalid_argument] otherwise. *)

val mix_name : mix -> string
val dist_name : dist -> string

val shares : mix -> int * int * int * int
(** Per-10000 (read, update, delete, scan) shares of a mix. *)

(** What a key-value table must provide to be driven.  The value
    contract: [t_get key] evaluates to [value+1] when the key is
    present, [0] when absent, and a negative number when the table
    detected an internal consistency violation; [t_put key] evaluates
    to 0 on success and 1 when the insert was dropped (table full);
    [t_scan key] evaluates to the number of violations seen.
    [t_finish] runs on node 0 after the run phase and must print the
    table tail expected by {!Report.parse}: total dropped inserts,
    total shard migrations, sweep violations, population, checksum,
    then one shard-ownership count per node. *)
type table = {
  t_globals : (string * Ast.ty) list;
  t_procs : Ast.proc list;
  t_init : Ast.stmt list;  (** appended to [appinit] *)
  t_get : Ast.expr -> Ast.expr;
  t_put : Ast.expr -> Ast.expr;
  t_del : Ast.expr -> Ast.expr;
  t_scan : Ast.expr -> Ast.expr;
  t_finish : Ast.stmt list;
}

val magic : int
(** First integer of the printed report block. *)

val nb_lat : int
(** Number of per-operation latency buckets (16). *)

val lat_bounds : int array
(** Upper bounds of the first [nb_lat - 1] latency buckets, in cycles
    (powers of two minus one from 127 up; the last bucket is
    overflow), matching the driver's shift-count bucketing. *)

val program : spec -> table -> Ast.prog

(** One planned operation, carrying its (post-remap) key. *)
type op = Get of int | Put of int | Del of int | Scan of int

val plan : spec -> nprocs:int -> op array array
(** Bit-exact mirror of the run-phase driver: [plan s ~nprocs].(p) is
    the operation sequence node [p] will issue.  Does not include the
    load phase. *)

val plan_counts : op array array -> int * int * int * int
(** Total (gets, puts, dels, scans) of a plan. *)
