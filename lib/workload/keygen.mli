(** Key-popularity distributions for the YCSB-style workload driver.

    The Zipfian sampler is the exact inverse-CDF construction (not the
    YCSB rejection approximation): rank 0 is the most popular key and
    rank frequency falls off as 1/(k+1)^theta.  [quantile_table]
    compresses the CDF into a fixed number of equal-probability quanta
    so the MiniC drive program can sample the same distribution with
    one table lookup and two integer draws. *)

type zipf

val zipf : n:int -> theta:float -> zipf
(** Zipfian distribution over ranks [0, n).  [theta] in [0, 1);
    [theta = 0] degenerates to uniform. *)

val draw : zipf -> float -> int
(** [draw z u] maps a uniform deviate [u] in [0, 1) to a rank by
    inverse-CDF binary search. *)

val pmf : zipf -> int -> float
(** Probability mass of one rank. *)

val quantile_table : n:int -> theta:float -> quanta:int -> int array
(** Inverse-CDF boundary table of length [quanta + 1]: entry [q] is
    the smallest rank whose cumulative mass reaches [q/quanta]
    (entry 0 is 0, entry [quanta] is [n]).  Quantum [q] then covers
    ranks [[t.(q), t.(q+1))]; a hot rank spans many quanta (empty
    ranges), and drawing uniformly inside a multi-rank range gives a
    piecewise-uniform approximation of the tail that still reaches
    every key. *)
