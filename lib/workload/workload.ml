(* YCSB-style drive-program generator.

   The run-phase driver is written twice: once as MiniC (the simulated
   benchmark) and once in OCaml (plan), drawing from the same seeded
   63-bit multiplicative congruential generator.  Register arithmetic
   in the simulator is native OCaml int arithmetic and quadword memory
   round-trips OCaml ints exactly, so the two stay bit-identical as
   long as they perform the same operations in the same order — which
   is what lets the tests predict a run's operation stream without
   running the simulator. *)

open Shasta_minic.Builder
open Shasta_minic.Ast

type mix = A | B | C | E | M
type dist = Uniform | Zipfian of float

type spec = {
  nkeys : int;
  ops : int;
  mix : mix;
  dist : dist;
  seed : int;
  scan_len : int;
  quanta : int;
  disjoint : bool;
}

let spec ?(ops = 100_000) ?(mix = B) ?(dist = Zipfian 0.99) ?(seed = 42)
    ?(scan_len = 4) ?(quanta = 1024) ?(disjoint = false) ~nkeys () =
  if nkeys <= 0 then invalid_arg "Workload.spec: nkeys must be positive";
  { nkeys; ops; mix; dist; seed; scan_len; quanta; disjoint }

let mix_of_string s =
  match String.lowercase_ascii s with
  | "a" -> A
  | "b" -> B
  | "c" -> C
  | "e" -> E
  | "m" -> M
  | s -> invalid_arg ("Workload.mix_of_string: unknown mix " ^ s)

let mix_name = function A -> "a" | B -> "b" | C -> "c" | E -> "e" | M -> "m"

let dist_name = function
  | Uniform -> "uniform"
  | Zipfian t -> Printf.sprintf "zipfian(%.2f)" t

(* per-10000 (read, update, delete, scan) *)
let shares = function
  | A -> (5000, 5000, 0, 0)
  | B -> (9500, 500, 0, 0)
  | C -> (10000, 0, 0, 0)
  | E -> (0, 500, 0, 9500)
  | M -> (4000, 4000, 1000, 1000)

type table = {
  t_globals : (string * ty) list;
  t_procs : proc list;
  t_init : stmt list;
  t_get : expr -> expr;
  t_put : expr -> expr;
  t_del : expr -> expr;
  t_scan : expr -> expr;
  t_finish : stmt list;
}

(* ------------------------------------------------------------------ *)
(* The driver PRNG: x <- x*M + A mod 2^63, deviate = x >> 12.          *)
(* Full period (M = 5 mod 8, A odd); constants fit OCaml int literals. *)
(* ------------------------------------------------------------------ *)

let lcg_m = 0x2545F4914F6CDD1D
let lcg_a = 1442695040888963407
let seed_gamma = 0x9E3779B97F4A7C1

let magic = 711_317

(* Per-operation latency buckets: bucket j holds dt <= 2^(7+j)-1, the
   last is overflow; the driver computes j by shifting dt>>7 to zero. *)
let nb_lat = 16
let lat_bounds = Array.init (nb_lat - 1) (fun j -> (1 lsl (7 + j)) - 1)

(* Per-node stats region layout (one 256-byte block per node): *)
let off_ops = 0
let off_tstart = 8
let off_tend = 16
let off_load = 24
let off_get = 32
let off_put = 40
let off_del = 48
let off_scan = 56
let off_err = 64
let off_lsum = 72
let off_lmax = 80
let off_hist = 88 (* nb_lat slots: 88 .. 88 + 8*nb_lat - 1 = 215 *)

(* ------------------------------------------------------------------ *)
(* MiniC driver                                                        *)
(* ------------------------------------------------------------------ *)

let program s table =
  let tr, tu, td, _ts =
    let r, u, d, sc = shares s.mix in
    (r, r + u, r + u + d, sc)
  in
  let advance = set "sd" ((v "sd" *% i lcg_m) +% i lcg_a) in
  let key_stmts =
    (* consumes deviates u2 and u3 (u3 possibly unused but always
       drawn, so the draw count per op is constant) *)
    (match s.dist with
     | Uniform -> [ let_i "key" (v "u2" %% i s.nkeys) ]
     | Zipfian _ ->
       [ let_i "q" (v "u2" %% i s.quanta);
         let_i "klo" (ldi (g "wl_ztab") (v "q"));
         let_i "kw" (ldi (g "wl_ztab") (v "q" +% i 1) -% v "klo");
         let_i "key" (v "klo");
         when_ (v "kw" >% i 1) [ set "key" (v "klo" +% (v "u3" %% v "kw")) ];
         when_ (v "key" >=% i s.nkeys) [ set "key" (i (s.nkeys - 1)) ]
       ])
    @
    if s.disjoint then
      [ set "key" (v "key" -% (v "key" %% Nprocs) +% Pid);
        when_ (v "key" >=% i s.nkeys) [ set "key" (v "key" -% Nprocs) ]
      ]
    else []
  in
  let ztab_init =
    match s.dist with
    | Uniform -> []
    | Zipfian theta ->
      let tab =
        Keygen.quantile_table ~n:s.nkeys ~theta ~quanta:s.quanta
      in
      gset "wl_ztab" (Gmalloc_b (i ((s.quanta + 1) * 8), i 1024))
      :: List.concat
           (List.init (s.quanta + 1) (fun q ->
              [ sti (g "wl_ztab") (i q) (i tab.(q)) ]))
  in
  let ztab_global =
    match s.dist with Uniform -> [] | Zipfian _ -> [ ("wl_ztab", I) ]
  in
  (* node 0 prints the sum over nodes of one stats field *)
  let print_total off =
    [ let_i "tt" (i 0);
      for_ "p" (i 0) Nprocs
        [ set "tt"
            (v "tt" +% fld_i (g "wl_stats" +% (v "p" <<% i 8)) off)
        ];
      print_int (v "tt")
    ]
  in
  let print_max off =
    [ let_i "tt" (i 0);
      for_ "p" (i 0) Nprocs
        [ let_i "pv" (fld_i (g "wl_stats" +% (v "p" <<% i 8)) off);
          when_ (v "pv" >% v "tt") [ set "tt" (v "pv") ]
        ];
      print_int (v "tt")
    ]
  in
  let appinit =
    proc "appinit"
      ([ gset "wl_stats" (Gmalloc_b (Nprocs *% i 256, i 256)) ]
       @ ztab_init @ table.t_init)
  in
  let work =
    proc "work"
      ([ let_i "sb" (g "wl_stats" +% (Pid <<% i 8));
         (* ---- load phase: partition the key space, insert once ---- *)
         let_i "nl" (i 0);
         for_ "k" (i 0) (i s.nkeys)
           [ when_ ((v "k" %% Nprocs) ==% Pid)
               [ let_i "lr" (table.t_put (v "k"));
                 set "nl" ((v "nl" +% i 1) +% (v "lr" *% i 0))
               ]
           ];
         set_fld_i (v "sb") off_load (v "nl");
         barrier;
         (* ---- run phase ---- *)
         let_i "hb" (Pmalloc (i (nb_lat * 8)));
         for_ "j" (i 0) (i nb_lat) [ sti (v "hb") (v "j") (i 0) ];
         let_i "sd" (i s.seed +% ((Pid +% i 1) *% i seed_gamma));
         advance;
         advance;
         let_i "opsn" (i s.ops /% Nprocs);
         let_i "ng" (i 0);
         let_i "np" (i 0);
         let_i "nd" (i 0);
         let_i "ns" (i 0);
         let_i "ne" (i 0);
         let_i "lsum" (i 0);
         let_i "lmax" (i 0);
         set_fld_i (v "sb") off_tstart now;
         for_ "op" (i 0) (v "opsn")
           ([ advance;
              let_i "u1" (v "sd" >>% i 12);
              advance;
              let_i "u2" (v "sd" >>% i 12);
              advance;
              let_i "u3" (v "sd" >>% i 12);
              let_i "r" (v "u1" %% i 10000)
            ]
            @ key_stmts
            @ [ let_i "t0" now;
                let_i "rr" (i 0);
                if_ (v "r" <% i tr)
                  [ set "rr" (table.t_get (v "key"));
                    when_ (v "rr" <% i 0) [ set "ne" (v "ne" +% i 1) ];
                    set "ng" (v "ng" +% i 1)
                  ]
                  [ if_ (v "r" <% i tu)
                      [ set "rr" (table.t_put (v "key"));
                        set "np" (v "np" +% i 1)
                      ]
                      [ if_ (v "r" <% i td)
                          [ set "rr" (table.t_del (v "key"));
                            set "nd" (v "nd" +% i 1)
                          ]
                          [ set "rr" (table.t_scan (v "key"));
                            set "ne" (v "ne" +% v "rr");
                            set "ns" (v "ns" +% i 1)
                          ]
                      ]
                  ];
                let_i "dt" (now -% v "t0");
                set "lsum" (v "lsum" +% v "dt");
                when_ (v "dt" >% v "lmax") [ set "lmax" (v "dt") ];
                let_i "tb" (v "dt" >>% i 7);
                let_i "bj" (i 0);
                while_ ((v "tb" >% i 0) &% (v "bj" <% i (nb_lat - 1)))
                  [ set "tb" (v "tb" >>% i 1);
                    set "bj" (v "bj" +% i 1)
                  ];
                sti (v "hb") (v "bj") (ldi (v "hb") (v "bj") +% i 1)
              ])
         ;
         set_fld_i (v "sb") off_tend now;
         set_fld_i (v "sb") off_ops (v "opsn");
         set_fld_i (v "sb") off_get (v "ng");
         set_fld_i (v "sb") off_put (v "np");
         set_fld_i (v "sb") off_del (v "nd");
         set_fld_i (v "sb") off_scan (v "ns");
         set_fld_i (v "sb") off_err (v "ne");
         set_fld_i (v "sb") off_lsum (v "lsum");
         set_fld_i (v "sb") off_lmax (v "lmax");
         for_ "j" (i 0) (i nb_lat)
           [ sti (v "sb" +% i off_hist) (v "j") (ldi (v "hb") (v "j")) ];
         barrier
       ]
       @ [ when_ (Pid ==% i 0)
             ([ print_int (i magic);
                print_int Nprocs;
                print_int (i s.nkeys)
              ]
              @ print_total off_ops @ print_total off_load
              @ print_total off_get @ print_total off_put
              @ print_total off_del @ print_total off_scan
              @ print_total off_err @ print_total off_lsum
              @ print_max off_lmax
              @ List.concat
                  (List.init nb_lat (fun j ->
                     print_total (off_hist + (8 * j))))
              @ [ for_ "p" (i 0) Nprocs
                    [ let_i "pb" (g "wl_stats" +% (v "p" <<% i 8));
                      print_int (fld_i (v "pb") off_ops);
                      print_int (fld_i (v "pb") off_tstart);
                      print_int (fld_i (v "pb") off_tend)
                    ]
                ]
              @ table.t_finish)
         ])
  in
  prog
    ~globals:([ ("wl_stats", I) ] @ ztab_global @ table.t_globals)
    [ appinit; work ] |> fun p ->
  { p with procs = p.procs @ table.t_procs }

(* ------------------------------------------------------------------ *)
(* OCaml mirror of the run-phase driver                                *)
(* ------------------------------------------------------------------ *)

type op = Get of int | Put of int | Del of int | Scan of int

let plan s ~nprocs =
  let tr, tu, td, _ =
    let r, u, d, sc = shares s.mix in
    (r, r + u, r + u + d, sc)
  in
  let ztab =
    match s.dist with
    | Uniform -> None
    | Zipfian theta ->
      Some (Keygen.quantile_table ~n:s.nkeys ~theta ~quanta:s.quanta)
  in
  let opsn = s.ops / nprocs in
  Array.init nprocs (fun p ->
    let sd = ref (s.seed + ((p + 1) * seed_gamma)) in
    let advance () = sd := (!sd * lcg_m) + lcg_a in
    let draw () =
      advance ();
      !sd lsr 12
    in
    advance ();
    advance ();
    Array.init opsn (fun _ ->
      let u1 = draw () in
      let u2 = draw () in
      let u3 = draw () in
      let r = u1 mod 10000 in
      let key =
        match ztab with
        | None -> u2 mod s.nkeys
        | Some tab ->
          let q = u2 mod s.quanta in
          let klo = tab.(q) in
          let kw = tab.(q + 1) - klo in
          let k = if kw > 1 then klo + (u3 mod kw) else klo in
          if k >= s.nkeys then s.nkeys - 1 else k
      in
      let key =
        if s.disjoint then begin
          let k = key - (key mod nprocs) + p in
          if k >= s.nkeys then k - nprocs else k
        end
        else key
      in
      if r < tr then Get key
      else if r < tu then Put key
      else if r < td then Del key
      else Scan key))

let plan_counts plans =
  let g = ref 0 and p = ref 0 and d = ref 0 and s = ref 0 in
  Array.iter
    (Array.iter (function
      | Get _ -> incr g
      | Put _ -> incr p
      | Del _ -> incr d
      | Scan _ -> incr s))
    plans;
  (!g, !p, !d, !s)
