module Metrics = Shasta_obs.Metrics

type t = {
  nprocs : int;
  nkeys : int;
  ops : int;
  load_ops : int;
  gets : int;
  puts : int;
  dels : int;
  scans : int;
  errors : int;
  lat_sum : int;
  lat_max : int;
  hist : int array;
  per_node : (int * int * int) array;
  overflows : int;
  migrations : int;
  verify_errors : int;
  population : int;
  checksum : int;
  lost : int;
  owned : int array;
}

let parse output =
  let ints =
    String.split_on_char '\n' output
    |> List.filter (fun l -> l <> "")
    |> List.map (fun l ->
         match int_of_string_opt (String.trim l) with
         | Some n -> n
         | None -> failwith ("Report.parse: not an integer: " ^ l))
  in
  let rest = ref ints in
  let next what =
    match !rest with
    | [] -> failwith ("Report.parse: truncated block at " ^ what)
    | x :: tl ->
      rest := tl;
      x
  in
  let m = next "magic" in
  if m <> Workload.magic then
    failwith
      (Printf.sprintf "Report.parse: bad magic %d (expected %d)" m
         Workload.magic);
  let nprocs = next "nprocs" in
  let nkeys = next "nkeys" in
  let ops = next "ops" in
  let load_ops = next "load_ops" in
  let gets = next "gets" in
  let puts = next "puts" in
  let dels = next "dels" in
  let scans = next "scans" in
  let errors = next "errors" in
  let lat_sum = next "lat_sum" in
  let lat_max = next "lat_max" in
  let hist = Array.init Workload.nb_lat (fun _ -> next "hist") in
  let per_node =
    Array.init nprocs (fun _ ->
      let o = next "node ops" in
      let ts = next "node tstart" in
      let te = next "node tend" in
      (o, ts, te))
  in
  let overflows = next "overflows" in
  let migrations = next "migrations" in
  let verify_errors = next "verify_errors" in
  let population = next "population" in
  let checksum = next "checksum" in
  let lost = next "lost" in
  let owned = Array.init nprocs (fun _ -> next "owned") in
  if !rest <> [] then
    failwith
      (Printf.sprintf "Report.parse: %d trailing values"
         (List.length !rest));
  { nprocs; nkeys; ops; load_ops; gets; puts; dels; scans; errors;
    lat_sum; lat_max; hist; per_node; overflows; migrations;
    verify_errors; population; checksum; lost; owned }

(* Zero every cycle-counter-derived field.  What remains is fixed by
   the workload plan and the table logic alone, so it must be identical
   between an instrumented run and the uninstrumented ground truth at
   the same node count — that projection is what the parallel ==
   sequential suite compares for the KV service. *)
let strip_timing t =
  { t with
    lat_sum = 0;
    lat_max = 0;
    hist = Array.map (fun _ -> 0) t.hist;
    per_node = Array.map (fun (o, _, _) -> (o, 0, 0)) t.per_node }

let run_cycles t =
  let lo = ref max_int and hi = ref 0 in
  Array.iter
    (fun (_, ts, te) ->
      if ts < !lo then lo := ts;
      if te > !hi then hi := te)
    t.per_node;
  max 1 (!hi - !lo)

let ops_per_mcycle t =
  float_of_int t.ops *. 1_000_000.0 /. float_of_int (run_cycles t)

let latency_hist t =
  { Metrics.bounds = Workload.lat_bounds;
    counts = Array.copy t.hist;
    n = Array.fold_left ( + ) 0 t.hist;
    sum = t.lat_sum;
    hmax = t.lat_max }

let percentile t p = Metrics.percentile (latency_hist t) p

let render ?label t =
  let b = Buffer.create 512 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf "== kv report%s\n"
    (match label with None -> "" | Some l -> ": " ^ l);
  pf "procs       : %d\n" t.nprocs;
  pf "keys        : %d (%d load ops)\n" t.nkeys t.load_ops;
  pf "run ops     : %d (%d get / %d put / %d del / %d scan)\n" t.ops t.gets
    t.puts t.dels t.scans;
  pf "errors      : %d during run, %d in final sweep\n" t.errors
    t.verify_errors;
  pf "run cycles  : %d simulated\n" (run_cycles t);
  pf "throughput  : %.3f ops/Mcycle\n" (ops_per_mcycle t);
  let n = Array.fold_left ( + ) 0 t.hist in
  pf "latency/op  : mean %.1f  p50 %d  p95 %d  p99 %d  p99.9 %d  max %d cycles\n"
    (if n = 0 then 0.0 else float_of_int t.lat_sum /. float_of_int n)
    (percentile t 50.0) (percentile t 95.0) (percentile t 99.0)
    (percentile t 99.9) t.lat_max;
  pf "table       : %d keys live, checksum %d, %d dropped puts%s\n"
    t.population t.checksum t.overflows
    (if t.lost > 0 then
       Printf.sprintf ", %d lost to crashed shards" t.lost
     else "");
  pf "shards      : %d handoffs, owned per node:" t.migrations;
  Array.iter (fun c -> pf " %d" c) t.owned;
  pf "\n";
  Buffer.contents b

(* The report as a versioned BENCH record.  Everything KV-specific —
   op counts, throughput, latency percentiles, error/loss totals —
   rides in [extra], where the regression gate treats it like any other
   deterministic simulated metric.  [messages]/[misses] belong to the
   cluster, not the report, so callers that have a phase result pass
   them in; [perf] adds the tolerance-gated host half. *)
module Benchjson = Shasta_obs.Benchjson

let to_bench ~workload ?(line = 64) ?(opts = "full") ?(messages = 0)
    ?(misses = 0) ?perf t =
  let sim_cycles = run_cycles t in
  let wall_s, cyc_per_s, gc =
    match perf with
    | None -> (0.0, 0.0, Benchjson.no_gc)
    | Some (p : Shasta_obs.Perf.report) ->
      (p.wall_s, Shasta_obs.Perf.cyc_per_s p ~sim_cycles, p.gc)
  in
  Benchjson.make ~workload ~nprocs:t.nprocs ~line ~opts ~sim_cycles
    ~messages ~misses ~wall_s ~cyc_per_s ~gc
    ~git_rev:(Shasta_obs.Perf.git_rev ())
    ~extra:
      [ ("ops", Benchjson.Int t.ops);
        ("ops_per_mcycle", Benchjson.Float (ops_per_mcycle t));
        ("p50", Benchjson.Int (percentile t 50.0));
        ("p95", Benchjson.Int (percentile t 95.0));
        ("p99", Benchjson.Int (percentile t 99.0));
        ("p999", Benchjson.Int (percentile t 99.9));
        ("lat_max", Benchjson.Int t.lat_max);
        ("errors", Benchjson.Int (t.errors + t.verify_errors));
        ("overflows", Benchjson.Int t.overflows);
        ("migrations", Benchjson.Int t.migrations);
        ("population", Benchjson.Int t.population);
        ("lost", Benchjson.Int t.lost) ]
    ()

let to_json ?line ?opts ?messages ?misses ?perf ~workload t =
  Benchjson.emit (to_bench ~workload ?line ?opts ?messages ?misses ?perf t)
