(* Shared-miss check code generation (Sections 2.4 and 3 of the paper).

   Every function here produces the instruction sequences of the paper's
   figures:

   - [store_check]: Figure 2 (basic) / Figure 4 (rescheduled, split
     around the store), with the exclusive-table variant of Section 3.3;
   - [load_check]: Figure 5(a)/(b), the flag technique, plus the basic
     state-table load check used before that optimization;
   - [batch_check]: Figure 6 and its store-range counterpart.

   Checks are generated against a list of free registers supplied by the
   caller (live-register analysis); when too few registers are free the
   generator spills the needed registers to the stack red zone, which
   the paper notes is virtually never necessary in practice. *)

open Shasta_isa
open Insn

type wrapped = { pre : Insn.t list; post : Insn.t list }

let no_check = { pre = []; post = [] }

(* Registers preferred for spilling when no free register exists. *)
let spill_candidates = [ 1; 2; 3; 4; 5; 6; 7; 8 ]

(* Provide [needed] scratch registers: the free ones first, then
   spill/restore extra ones around the generated code. *)
let with_scratch ~needed ~free ~avoid k =
  let free = List.filter (fun r -> not (List.mem r avoid)) free in
  if List.length free >= needed then k (List.filteri (fun i _ -> i < needed) free)
  else begin
    let extra_needed = needed - List.length free in
    let extras =
      List.filter (fun r -> (not (List.mem r free)) && not (List.mem r avoid))
        spill_candidates
    in
    let extras = List.filteri (fun i _ -> i < extra_needed) extras in
    if List.length extras < extra_needed then
      invalid_arg "Check.with_scratch: no spillable register";
    let saves =
      List.mapi (fun i r -> Stq (r, -8 * (i + 1), Reg.sp)) extras
    in
    let restores =
      List.mapi (fun i r -> Ldq (r, -8 * (i + 1), Reg.sp)) extras
    in
    let { pre; post } = k (free @ extras) in
    { pre = saves @ pre; post = post @ restores }
  end

(* Address setup: returns (setup instructions, register holding the
   target address).  "Line 1 can be eliminated if the offset ... is
   zero" (Section 2.4). *)
let addr_setup ~base ~disp ~rx =
  if disp = 0 then ([], base) else ([ Lda (rx, disp, base) ], rx)

(* ------------------------------------------------------------------ *)
(* Store checks                                                        *)
(* ------------------------------------------------------------------ *)

(* Exclusive test of the address in [a], branching to [miss_lab] when
   the line is NOT held exclusive.  [t1]/[t2] are scratch.  Used by the
   batch store check. *)
let excl_test_to_miss (opts : Opts.t) ~a ~t1 ~t2 ~miss_lab =
  let ls = opts.line_shift in
  if opts.excl_table then
    [ Opi (Srl, t1, Imm (ls + 3), a);
      Ldq_u (t1, 0, t1);
      Opi (Srl, t2, Imm ls, a);
      Opi (Srl, t1, Reg t2, t1);
      Bc (Lbc, t1, miss_lab) ]
  else
    [ Opi (Srl, t1, Imm ls, a);
      Ldq_u (t2, 0, t1);
      Extbl (t2, t2, t1);
      Bc (Ne, t2, miss_lab) ]

(* Store miss check around a store of [ssize] at disp(base). *)
let store_check (opts : Opts.t) ~fresh ~free ~base ~disp ~ssize =
  let ls = opts.line_shift in
  let nomiss = fresh () in
  if opts.excl_table then
    (* Exclusive-table check (Section 3.3), scheduled form: address
       computation before the store, table access after. *)
    with_scratch ~needed:3 ~free ~avoid:[ base ] @@ fun regs ->
    let rx, ry, rz =
      match regs with
      | [ a; b; c ] -> (a, b, c)
      | _ -> assert false
    in
    let setup, a = addr_setup ~base ~disp ~rx in
    let head =
      setup
      @ (if opts.range_check then [ Opi (Srl, ry, Imm Layout.shared_shift, a) ]
         else [])
      @ [ Opi (Srl, rz, Imm (ls + 3), a) ]
    in
    let tail =
      (if opts.range_check then [ Bc (Eq, ry, nomiss) ] else [])
      @ [ Ldq_u (ry, 0, rz);
          Opi (Srl, rz, Imm ls, a);
          Opi (Srl, ry, Reg rz, ry);
          Bc (Lbs, ry, nomiss);
          Call_store_miss { base; disp; ssize; store_done = opts.schedule };
          Lab nomiss ]
    in
    if opts.schedule then { pre = head; post = tail }
    else { pre = head @ tail; post = [] }
  else
    (* State-table check: Figure 2 (basic order) or Figure 4 order when
       scheduling is on, split around the store per Section 3.1. *)
    with_scratch ~needed:2 ~free ~avoid:[ base ] @@ fun regs ->
    let rx, ry =
      match regs with [ a; b ] -> (a, b) | _ -> assert false
    in
    let setup, a = addr_setup ~base ~disp ~rx in
    let range_srl =
      if opts.range_check then [ Opi (Srl, ry, Imm Layout.shared_shift, a) ]
      else []
    in
    let range_beq = if opts.range_check then [ Bc (Eq, ry, nomiss) ] else [] in
    let line_srl = [ Opi (Srl, rx, Imm ls, a) ] in
    let lookup =
      [ Ldq_u (ry, 0, rx);
        Extbl (ry, ry, rx);
        Bc (Eq, ry, nomiss);
        Call_store_miss { base; disp; ssize; store_done = opts.schedule };
        Lab nomiss ]
    in
    if opts.schedule then
      (* Figure 4: the second shift fills the first shift's delay slot;
         first three instructions hoisted above the store. *)
      { pre = setup @ range_srl @ line_srl; post = range_beq @ lookup }
    else { pre = setup @ range_srl @ range_beq @ line_srl @ lookup; post = [] }

(* ------------------------------------------------------------------ *)
(* Load checks                                                         *)
(* ------------------------------------------------------------------ *)

(* Figure 5: flag-technique load checks.  The check runs *after* the
   load and compares the loaded value against the flag. *)
let flag_load_check (opts : Opts.t) ~fresh ~free ~base ~disp ~refill =
  ignore opts;
  let nomiss = fresh () in
  match refill with
  | Rint (dest, _) ->
    (* If the load overwrote its own base register, the miss handler can
       no longer recompute the address, so capture it first. *)
    let needed = if dest = base then 2 else 1 in
    with_scratch ~needed ~free ~avoid:[ base; dest ] @@ fun regs ->
    (match regs with
     | rx :: rest ->
       let pre, cbase, cdisp =
         if dest = base then
           let ra = List.hd rest in
           ([ Lda (ra, disp, base) ], ra, 0)
         else ([], base, disp)
       in
       { pre;
         post =
           [ Opi (Addl, rx, Imm Layout.flag_imm, dest);
             Bc (Ne, rx, nomiss);
             Call_load_miss { base = cbase; disp = cdisp; refill };
             Lab nomiss ] }
     | [] -> assert false)
  | Rflt _ ->
    (* Figure 5(b): an extra integer load of the same longword avoids
       the long FP compare/branch latency. *)
    with_scratch ~needed:1 ~free ~avoid:[ base ] @@ fun regs ->
    let rx = List.hd regs in
    { pre = [];
      post =
        [ Ldl (rx, disp, base);
          Opi (Addl, rx, Imm Layout.flag_imm, rx);
          Bc (Ne, rx, nomiss);
          Call_load_miss { base; disp; refill };
          Lab nomiss ] }

(* Pre-flag-technique load check: a state-table lookup before the load,
   allowing states exclusive (0) and shared (1). *)
let basic_load_check (opts : Opts.t) ~fresh ~free ~base ~disp ~refill =
  let ls = opts.line_shift in
  let nomiss = fresh () in
  let rejoin = fresh () in
  with_scratch ~needed:2 ~free ~avoid:[ base ] @@ fun regs ->
  let rx, ry = match regs with [ a; b ] -> (a, b) | _ -> assert false in
  let setup, a = addr_setup ~base ~disp ~rx in
  let range_srl =
    if opts.range_check then [ Opi (Srl, ry, Imm Layout.shared_shift, a) ]
    else []
  in
  let range_beq = if opts.range_check then [ Bc (Eq, ry, nomiss) ] else [] in
  let line_srl = [ Opi (Srl, rx, Imm ls, a) ] in
  (* The miss path must branch AROUND the original load: the handler
     delivers the value by refill, and a late invalidation may have
     re-flagged the line by the time the thread resumes, so re-executing
     the load would read the flag pattern as data. *)
  let lookup =
    [ Ldq_u (ry, 0, rx);
      Extbl (ry, ry, rx);
      Opi (Cmpule, ry, Imm Layout.st_shared, ry);
      Bc (Ne, ry, nomiss);
      Call_load_miss { base; disp; refill };
      Br rejoin;
      Lab nomiss ]
  in
  let pre =
    if opts.schedule then setup @ range_srl @ line_srl @ range_beq @ lookup
    else setup @ range_srl @ range_beq @ line_srl @ lookup
  in
  { pre; post = [ Lab rejoin ] }

let load_check (opts : Opts.t) ~fresh ~free ~base ~disp ~refill =
  if opts.flag_loads then flag_load_check opts ~fresh ~free ~base ~disp ~refill
  else basic_load_check opts ~fresh ~free ~base ~disp ~refill

(* ------------------------------------------------------------------ *)
(* Batch checks (Section 3.4.2)                                        *)
(* ------------------------------------------------------------------ *)

let range_bounds (r : range) =
  List.fold_left
    (fun (lo, hi) (a : access) -> (min lo a.disp, max hi a.disp))
    (max_int, min_int) r.accesses

let range_has_store (r : range) =
  List.exists (fun (a : access) -> a.is_store) r.accesses

(* Check code for one load-only range ending at [miss_lab]. *)
let load_range_check ~rx ~ry ~miss_lab (r : range) =
  let lo, hi = range_bounds r in
  if lo = hi then
    [ Ldl (rx, lo, r.rbase);
      Opi (Addl, rx, Imm Layout.flag_imm, rx);
      Bc (Eq, rx, miss_lab) ]
  else
    (* Figure 6: both endpoint loads issued back to back, then both flag
       compares — interleaved to eliminate pipeline stalls. *)
    [ Ldl (rx, lo, r.rbase);
      Ldl (ry, hi, r.rbase);
      Opi (Addl, rx, Imm Layout.flag_imm, rx);
      Opi (Addl, ry, Imm Layout.flag_imm, ry);
      Bc (Eq, rx, miss_lab);
      Bc (Eq, ry, miss_lab) ]

(* Check code for a range containing stores: verify both endpoint lines
   are exclusive.  Also interleaved across the two endpoints. *)
let store_range_check (opts : Opts.t) ~fresh ~rx ~ry ~t1 ~t2 ~miss_lab
    (r : range) =
  let ls = opts.line_shift in
  let lo, hi = range_bounds r in
  let next = fresh () in
  let setup_lo, alo = addr_setup ~base:r.rbase ~disp:lo ~rx in
  let range =
    if opts.range_check then
      [ Opi (Srl, t1, Imm Layout.shared_shift, alo); Bc (Eq, t1, next) ]
    else []
  in
  let body =
    if lo = hi then excl_test_to_miss opts ~a:alo ~t1 ~t2 ~miss_lab
    else begin
      let setup_hi, ahi = addr_setup ~base:r.rbase ~disp:hi ~rx:ry in
      if opts.excl_table then
        setup_hi
        @ [ Opi (Srl, t1, Imm (ls + 3), alo);
            Opi (Srl, t2, Imm (ls + 3), ahi);
            Ldq_u (t1, 0, t1);
            Ldq_u (t2, 0, t2);
            Opi (Srl, rx, Imm ls, alo);
            Opi (Srl, ry, Imm ls, ahi);
            Opi (Srl, t1, Reg rx, t1);
            Opi (Srl, t2, Reg ry, t2);
            Bc (Lbc, t1, miss_lab);
            Bc (Lbc, t2, miss_lab) ]
      else
        setup_hi
        @ [ Opi (Srl, t1, Imm ls, alo);
            Opi (Srl, t2, Imm ls, ahi);
            Ldq_u (rx, 0, t1);
            Ldq_u (ry, 0, t2);
            Extbl (rx, rx, t1);
            Extbl (ry, ry, t2);
            Bc (Ne, rx, miss_lab);
            Bc (Ne, ry, miss_lab) ]
    end
  in
  setup_lo @ range @ body @ [ Lab next ]

(* Full batch check: per-range checks chained to a common miss label
   that records all ranges and calls the batch miss handler.  The batch
   miss code falls through to [nomiss] after the handler returns. *)
let batch_check (opts : Opts.t) ~fresh ~free (b : batch) =
  let miss_lab = fresh () and nomiss = fresh () in
  with_scratch ~needed:4 ~free
    ~avoid:(List.map (fun r -> r.rbase) b.ranges)
  @@ fun regs ->
  let rx, ry, t1, t2 =
    match regs with
    | [ a; b; c; d ] -> (a, b, c, d)
    | _ -> assert false
  in
  let n = List.length b.ranges in
  let code =
    List.concat
      (List.mapi
         (fun i r ->
           let last = i = n - 1 in
           if range_has_store r then
             store_range_check opts ~fresh ~rx ~ry ~t1 ~t2 ~miss_lab r
             @ if last then [ Br nomiss ] else []
           else if last then
             (* Figure 6 tail: last compare falls through into the miss
                code, saving the unconditional branch. *)
             let lo, hi = range_bounds r in
             if lo = hi then
               [ Ldl (rx, lo, r.rbase);
                 Opi (Addl, rx, Imm Layout.flag_imm, rx);
                 Bc (Ne, rx, nomiss) ]
             else
               [ Ldl (rx, lo, r.rbase);
                 Ldl (ry, hi, r.rbase);
                 Opi (Addl, rx, Imm Layout.flag_imm, rx);
                 Opi (Addl, ry, Imm Layout.flag_imm, ry);
                 Bc (Eq, rx, miss_lab);
                 Bc (Ne, ry, nomiss) ]
           else load_range_check ~rx ~ry ~miss_lab r)
         b.ranges)
  in
  { pre = code @ [ Lab miss_lab; Call_batch_miss b; Lab nomiss ];
    post = [] }
