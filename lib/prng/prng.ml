(* Splitmix64 (Steele, Lea & Flood 2014): a tiny, fast, well-mixed
   generator whose whole state is one 64-bit word advanced by the
   golden-ratio increment.  Chosen over [Random] because its output is
   fixed by the algorithm alone — bit-identical everywhere, forever —
   which is what golden traces and replay demand. *)

type t = { mutable s : int64 }

let gamma = 0x9E3779B97F4A7C15L

let finalize z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
            0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
            0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next64 t =
  t.s <- Int64.add t.s gamma;
  finalize t.s

let create seed = { s = finalize (Int64.of_int seed) }

let of_list seeds =
  let t = { s = 0L } in
  List.iter
    (fun seed -> t.s <- finalize (Int64.add t.s (Int64.of_int seed)))
    seeds;
  t

let copy t = { s = t.s }

(* OCaml's native int is 63 bits with a sign, so the largest uniform
   non-negative draw keeps 62 value bits: [Int64.to_int] of a 63-bit
   unsigned quantity would wrap negative half the time. *)
let bits63 t = Int64.to_int (Int64.shift_right_logical (next64 t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  bits63 t mod bound

let float t =
  float_of_int (Int64.to_int (Int64.shift_right_logical (next64 t) 11))
  *. (1.0 /. 9007199254740992.0)

let mix a b =
  Int64.to_int
    (Int64.shift_right_logical
       (finalize (Int64.add (finalize (Int64.of_int a)) (Int64.of_int b)))
       1)
