(** Seeded deterministic PRNG (splitmix64), shared by every component
    that needs reproducible randomness: the workload generator's key
    streams, the model checker's interleaving fuzzer.

    Replay and golden traces must stay bit-identical across runs and
    OCaml versions, so nothing here touches [Random] (whose algorithm
    changed across releases) or any global state: a [t] is a single
    mutable 64-bit cell advanced by the splitmix64 finalizer. *)

type t

val create : int -> t
(** PRNG seeded from one integer. *)

val of_list : int list -> t
(** PRNG seeded from several integers (e.g. [seed; stream]), each mixed
    in through the splitmix64 finalizer — replaces ad-hoc
    [Random.State.make [| seed; k |]] plumbing. *)

val copy : t -> t

val next64 : t -> int64
(** The raw 64-bit output. *)

val bits63 : t -> int
(** A uniform non-negative integer (62 random bits — the widest draw
    that cannot wrap OCaml's 63-bit native int negative). *)

val int : t -> int -> int
(** [int t bound] draws uniformly from [0, bound); [bound] must be
    positive.  Uses the high bits (modulo bias is < 2^-40 for any
    realistic bound). *)

val float : t -> float
(** Uniform in [0, 1), from 53 bits. *)

val mix : int -> int -> int
(** [mix a b] deterministically combines two seeds into one (pure;
    used to derive per-stream seeds such as [mix seed node]). *)
