(** Cluster interconnect: per-(src,dst) FIFO channels — the paper's
    protocol "depends on point-to-point order for messages sent between
    any two nodes" — with a configurable cost model in processor
    cycles.

    The wire may optionally be made unreliable ([faults]): seeded,
    per-channel deterministic drop / duplicate / reorder / delay.  A
    reliable-delivery sublayer (per-channel sequence numbers,
    receiver-side dedup and resequencing, sender-side retransmit with
    timeout and exponential backoff) repairs it, so the protocol above
    still observes exactly-once per-channel-FIFO delivery — only with
    retransmission stalls, which the fault tap attributes. *)

type profile = {
  net_name : string;
  send_overhead : int;  (** cycles spent by the sending CPU *)
  recv_overhead : int;  (** cycles spent by the receiver per message *)
  wire_latency : int;
  per_longword : int;
}

val memory_channel : profile
(** Digital's Memory Channel: a few microseconds end to end. *)

val atm : profile
(** The ATM cluster: an order of magnitude slower. *)

val ideal : profile
val profile_of_string : string -> profile

(** {2 Fault model} *)

type faults = {
  fseed : int;  (** per-channel RNG seed component *)
  drop : float;  (** per-transmission-attempt loss probability *)
  dup : float;  (** probability a delivered frame also arrives twice *)
  reorder : float;  (** probability a frame overtakes the wire FIFO *)
  delay : float;  (** probability of [delay_cycles] extra flight time *)
  delay_cycles : int;
  rto : int;  (** base retransmission timeout; 0 derives it from the profile *)
  max_retx : int;
      (** give up on a frame after this many retransmissions, counting
          a [net.timeout] instead of stalling forever; 0 (the default)
          keeps the historical retry-forever behaviour, byte-identical *)
}

val no_faults : faults
(** All probabilities zero; a wire with [Some no_faults] behaves like a
    reliable one (timing included). *)

val standard : faults
(** The standard fault matrix: drop 1%, dup 1%, reorder 2%. *)

val faults_of_string : string -> faults option
(** ["none"], ["standard"], or a comma-separated
    [key=value] spec with keys [drop], [dup], [reorder], [delay],
    [delay-cycles], [seed], [rto], [max-retx].  Raises
    [Invalid_argument] on a malformed spec. *)

val describe_faults : faults -> string

type xmit = {
  retx : int;  (** dropped transmission attempts, each retransmitted *)
  backoff : int;  (** total cycles spent waiting for timeouts *)
  duplicated : bool;  (** a second copy arrived and was discarded *)
  reordered : bool;  (** frame overtook the wire; resequencing restored order *)
  timed_out : bool;
      (** retransmission budget exhausted — the frame was abandoned
          (only on a channel with [max_retx] > 0, or a send to a node
          already declared dead) *)
}
(** What the fault layer did to one logical send. *)

val clean_xmit : xmit

(** {2 Reliable-delivery sublayer}

    The receiver half is exposed on its own so its exactly-once,
    in-order delivery guarantee can be tested independently of the
    protocol. *)

module Sublayer : sig
  type 'a rx

  val rx_create : unit -> 'a rx
  val rx_expected : 'a rx -> int
  (** Next sequence number to be delivered. *)

  val rx_held : 'a rx -> int
  (** Frames buffered waiting for a sequence gap to fill. *)

  val rx_is_dup : 'a rx -> fseq:int -> bool

  val rx_offer : 'a rx -> fseq:int -> arrival:int -> 'a -> (int * 'a) list
  (** Offer one frame arrival.  Returns the payloads that become
      deliverable, in sequence order, each with its delivery time
      (monotonic per channel); a duplicate returns [[]], an
      out-of-order frame is held. *)

  val max_attempts : int

  val tx_plan :
    faults -> Random.State.t -> now:int -> flight:int -> rto:int ->
    int * int option * xmit
  (** Plan one frame's transmission over the faulty wire: returns the
      arrival time of the first surviving copy, the arrival of a
      duplicate copy if any, and the fault summary.  Deterministic in
      the RNG state; at most [max_attempts] tries, the last of which
      always survives. *)

  val tx_plan_bounded :
    faults -> max_retx:int -> Random.State.t ->
    now:int -> flight:int -> rto:int -> int option * int option * xmit
  (** Like {!tx_plan} but the sender gives up after [max_retx]
      retransmissions: [None] arrival with [timed_out] set means the
      frame was abandoned.  [max_retx = 0] never abandons and draws the
      same coins as {!tx_plan}. *)
end

(** {2 Lease arithmetic}

    Pure node-liveness leases: granted for a fixed horizon, renewed by
    sequence-numbered heartbeats (on this transport, every observed
    send doubles as a heartbeat — see {!last_activity}), reassigned by
    epoch-bumping takeover when they expire. *)

module Lease : sig
  type t

  val grant : holder:int -> now:int -> horizon:int -> t
  val holder : t -> int
  val epoch : t -> int

  val expiry : t -> int
  (** First cycle at which the lease is no longer valid; never earlier
      than the grant time plus the horizon. *)

  val expired : t -> now:int -> bool

  val heartbeat : t -> seq:int -> now:int -> t * bool
  (** Apply one heartbeat.  Renewal is exactly-once per sequence number
      (redelivered heartbeats return [false] and change nothing) and
      never moves the grant backwards. *)

  val takeover : t -> new_holder:int -> now:int -> t
  (** Reassign the lease under a bumped epoch.  Idempotent: a takeover
      to the current holder is the identity. *)
end

(** {2 The interconnect} *)

type 'a t

type fault_stats = {
  drops : int;
  dups : int;
  retxs : int;
  reorders : int;
  backoff_cycles : int;
  timeouts : int;  (** frames abandoned: retransmission budget exhausted
                       or destination declared dead *)
}

val zero_fault_stats : fault_stats

val create : ?faults:faults -> nprocs:int -> profile -> 'a t
(** Without [?faults] the wire is the paper's reliable interconnect and
    behaves exactly as before. *)

val set_taps :
  'a t ->
  on_send:(src:int -> dst:int -> now:int -> 'a -> unit) ->
  on_recv:(src:int -> dst:int -> now:int -> 'a -> unit) ->
  unit
(** Install observability taps: [on_send] fires on every queued
    message at the sender's time, [on_recv] on every delivery at
    arrival time.  The cluster points these at the observability
    subsystem; the default taps do nothing. *)

val set_fault_tap :
  'a t ->
  on_fault:(src:int -> dst:int -> now:int -> xmit -> 'a -> unit) ->
  unit
(** [on_fault] fires at send time whenever the fault layer perturbed a
    frame (dropped an attempt, duplicated, reordered, or delayed it). *)

val send : 'a t -> src:int -> dst:int -> now:int -> payload_longs:int ->
  'a -> int
(** Queue a message; returns the time at which the sender is done (the
    caller charges it to the sending node).  Delivery never reorders a
    channel, faults or not. *)

val multicast :
  'a t -> src:int -> now:int -> payload_longs:('a -> int) ->
  (int * 'a) list -> int
(** Queue one message per (dst, msg) pair in list order, each send
    starting where the previous left the sender.  Byte-identical in
    timing and delivery to the equivalent sequence of {!send} calls;
    returns the time the sender is done with the whole fan-out.  The
    invalidation path uses this so the fan-out width is observable in
    one place. *)

val next_arrival : 'a t -> dst:int -> int option
val recv : 'a t -> dst:int -> now:int -> (int * 'a) option
(** Earliest already-arrived message for [dst], with its arrival time. *)

val pending_for : 'a t -> dst:int -> int
val in_flight : 'a t -> int
val stats : 'a t -> int * int
(** (messages sent, payload longwords) since creation. *)

val fault_stats : 'a t -> fault_stats
(** Cumulative fault-layer activity since creation; all zero when the
    wire is reliable. *)

val effective_rto : 'a t -> int

(** {2 Node-level liveness} *)

val last_activity : 'a t -> node:int -> int
(** Last cycle at which [node] put a frame on the wire — the implicit
    (piggybacked) heartbeat stream the crash detector watches. *)

val mark_dead : 'a t -> node:int -> (int * int * 'a) list
(** Declare [node] crashed.  Every frame still queued to or from it is
    removed from the wire and returned as [(src, dst, msg)] in global
    send order (deterministic, so recovery handling replays); the
    sublayer state of the purged channels is reset; until {!mark_live},
    sends addressed to the node are dropped and counted as timeouts. *)

val mark_live : 'a t -> node:int -> unit
(** Clear the dead bit set by {!mark_dead} (node recovery). *)
