(** Cluster interconnect: per-(src,dst) FIFO channels — the paper's
    protocol "depends on point-to-point order for messages sent between
    any two nodes" — with a configurable cost model in processor
    cycles. *)

type profile = {
  net_name : string;
  send_overhead : int;  (** cycles spent by the sending CPU *)
  recv_overhead : int;  (** cycles spent by the receiver per message *)
  wire_latency : int;
  per_longword : int;
}

val memory_channel : profile
(** Digital's Memory Channel: a few microseconds end to end. *)

val atm : profile
(** The ATM cluster: an order of magnitude slower. *)

val ideal : profile
val profile_of_string : string -> profile

type 'a t

val create : nprocs:int -> profile -> 'a t

val set_taps :
  'a t ->
  on_send:(src:int -> dst:int -> now:int -> 'a -> unit) ->
  on_recv:(src:int -> dst:int -> now:int -> 'a -> unit) ->
  unit
(** Install observability taps: [on_send] fires on every queued
    message at the sender's time, [on_recv] on every delivery at
    arrival time.  The cluster points these at the observability
    subsystem; the default taps do nothing. *)

val send : 'a t -> src:int -> dst:int -> now:int -> payload_longs:int ->
  'a -> int
(** Queue a message; returns the time at which the sender is done (the
    caller charges it to the sending node).  Delivery never reorders a
    channel. *)

val next_arrival : 'a t -> dst:int -> int option
val recv : 'a t -> dst:int -> now:int -> (int * 'a) option
(** Earliest already-arrived message for [dst], with its arrival time. *)

val pending_for : 'a t -> dst:int -> int
val in_flight : 'a t -> int
val stats : 'a t -> int * int
(** (messages sent, payload longwords) since creation. *)
