(* Cluster interconnect model.

   The Shasta protocol "depends on point-to-point order for messages
   sent between any two nodes" (Section 2.1).  This module provides
   that abstraction twice over:

   - the RELIABLE wire the paper assumes: per-(src,dst) FIFO channels
     with a configurable cost model (costs are in processor cycles of
     the 275 MHz machines of the paper; the two named profiles
     approximate the Memory Channel and ATM clusters used in the
     evaluation, and `ideal` isolates protocol behaviour from
     communication cost in tests);

   - an UNRELIABLE wire (commodity interconnects drop, duplicate,
     delay and reorder packets) repaired by a reliable-delivery
     sublayer, so the protocol above still sees exactly-once,
     per-channel-FIFO delivery — only slower.  The fault model is
     seeded and per-channel deterministic: the same seed and the same
     send sequence produce the same faults, so faulty runs replay and
     their oracles are checkable.

   The transport sublayer ([Sublayer]) is the textbook construction:
   per-channel sequence numbers stamped at the sender, receiver-side
   dedup and resequencing (out-of-order frames are held until the gap
   fills; duplicates are discarded), and sender-side retransmission on
   timeout with exponential backoff.  Because every node's send order
   is deterministic and the fault coins are drawn from a per-channel
   seeded stream, the arrival time of the first surviving copy of each
   frame can be computed at send time; the resequencer then assigns
   delivery times in sequence order.  The protocol layer never sees a
   dropped, duplicated or reordered message — it sees retransmission
   stalls, which the observability taps attribute ([on_fault]). *)

type profile = {
  net_name : string;
  send_overhead : int; (* cycles spent by the sending CPU *)
  recv_overhead : int; (* cycles spent by the receiving CPU per message *)
  wire_latency : int; (* cycles of flight time *)
  per_longword : int; (* additional flight cycles per payload longword *)
}

(* Memory Channel: a few microseconds end to end at 275 MHz. *)
let memory_channel =
  { net_name = "memory-channel"; send_overhead = 250; recv_overhead = 400;
    wire_latency = 700; per_longword = 2 }

(* ATM: an order of magnitude slower, dominated by driver overheads. *)
let atm =
  { net_name = "atm"; send_overhead = 2500; recv_overhead = 3500;
    wire_latency = 5000; per_longword = 8 }

let ideal =
  { net_name = "ideal"; send_overhead = 1; recv_overhead = 1;
    wire_latency = 1; per_longword = 0 }

let profile_of_string = function
  | "mc" | "memory-channel" -> memory_channel
  | "atm" -> atm
  | "ideal" -> ideal
  | s -> invalid_arg ("Network.profile_of_string: " ^ s)

(* ------------------------------------------------------------------ *)
(* Fault model                                                         *)
(* ------------------------------------------------------------------ *)

type faults = {
  fseed : int; (* per-channel RNG seed component *)
  drop : float; (* per-transmission-attempt loss probability *)
  dup : float; (* probability the delivered frame also arrives twice *)
  reorder : float; (* probability a frame skips the wire FIFO clamp *)
  delay : float; (* probability of [delay_cycles] of extra flight time *)
  delay_cycles : int;
  rto : int; (* base retransmission timeout; 0 = derive from profile *)
  max_retx : int; (* give up after this many retransmissions; 0 = retry
                     forever (well, [Sublayer.max_attempts] — the
                     historical behaviour).  A bounded channel turns a
                     persistent loss into a counted [net.timeout]
                     instead of an unbounded stall; the crash detector
                     builds on it. *)
}

let no_faults =
  { fseed = 1; drop = 0.0; dup = 0.0; reorder = 0.0; delay = 0.0;
    delay_cycles = 2000; rto = 0; max_retx = 0 }

(* The standard fault matrix the test suite and benchmarks run under:
   1% loss, 1% duplication, 2% reordering — commodity-LAN weather. *)
let standard =
  { no_faults with drop = 0.01; dup = 0.01; reorder = 0.02 }

let clamp_p p = if p < 0.0 then 0.0 else if p > 0.9 then 0.9 else p

(* "none" | "standard" | "drop=0.01,dup=0.01,reorder=0.02,delay=0.05,
   delay-cycles=2000,seed=3,rto=5000" *)
let faults_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "" | "0" | "none" | "off" -> None
  | "standard" | "std" -> Some standard
  | spec ->
    let f = ref no_faults in
    List.iter
      (fun kv ->
        let kv = String.trim kv in
        if kv <> "" then
          match String.index_opt kv '=' with
          | None ->
            invalid_arg ("Network.faults_of_string: expected key=value: " ^ kv)
          | Some i ->
            let k = String.sub kv 0 i in
            let v = String.sub kv (i + 1) (String.length kv - i - 1) in
            let fv () =
              try clamp_p (float_of_string v)
              with _ ->
                invalid_arg ("Network.faults_of_string: bad number: " ^ kv)
            in
            let iv () =
              try int_of_string v
              with _ ->
                invalid_arg ("Network.faults_of_string: bad number: " ^ kv)
            in
            (match k with
             | "drop" -> f := { !f with drop = fv () }
             | "dup" -> f := { !f with dup = fv () }
             | "reorder" -> f := { !f with reorder = fv () }
             | "delay" -> f := { !f with delay = fv () }
             | "delay-cycles" | "delay_cycles" ->
               f := { !f with delay_cycles = iv () }
             | "seed" -> f := { !f with fseed = iv () }
             | "rto" -> f := { !f with rto = iv () }
             | "max-retx" | "max_retx" -> f := { !f with max_retx = iv () }
             | _ -> invalid_arg ("Network.faults_of_string: unknown key " ^ k)))
      (String.split_on_char ',' spec);
    Some !f

let describe_faults f =
  Printf.sprintf
    "drop=%.3f dup=%.3f reorder=%.3f delay=%.3f seed=%d" f.drop f.dup
    f.reorder f.delay f.fseed

(* What the fault layer did to one logical send: [retx] dropped
   transmission attempts (each one retransmitted after a timeout),
   [backoff] total cycles spent waiting for those timeouts,
   [duplicated] a second copy also reached the receiver (and was
   discarded by dedup), [reordered] the frame skipped the wire's FIFO
   clamp (resequencing restored order at delivery). *)
type xmit = {
  retx : int;
  backoff : int;
  duplicated : bool;
  reordered : bool;
  timed_out : bool; (* retransmission budget exhausted: the frame was
                       never delivered (only possible on a channel with
                       [max_retx] > 0) *)
}

let clean_xmit =
  { retx = 0; backoff = 0; duplicated = false; reordered = false;
    timed_out = false }

(* ------------------------------------------------------------------ *)
(* Reliable-delivery sublayer                                          *)
(* ------------------------------------------------------------------ *)

(* Receiver side of the sublayer, usable (and unit-tested) on its own:
   frames carry per-channel sequence numbers; [rx_offer] accepts them
   in any arrival order and hands payloads up exactly once, in
   sequence order, at a delivery time never earlier than any
   previously delivered payload (per-channel FIFO restored). *)
module Sublayer = struct
  type 'a rx = {
    mutable expected : int; (* next sequence number to deliver *)
    mutable last_deliver : int; (* delivery times are monotonic *)
    held : (int, int * 'a) Hashtbl.t; (* fseq -> first arrival, payload *)
  }

  let rx_create () = { expected = 0; last_deliver = 0; held = Hashtbl.create 8 }

  let rx_expected rx = rx.expected
  let rx_held rx = Hashtbl.length rx.held

  (* Is a frame with [fseq] a duplicate (already delivered or already
     held)? *)
  let rx_is_dup rx ~fseq = fseq < rx.expected || Hashtbl.mem rx.held fseq

  (* Offer one frame arrival.  Returns the payloads that become
     deliverable, in sequence order, each with its delivery time; a
     duplicate or out-of-order frame returns []. *)
  let rx_offer rx ~fseq ~arrival payload =
    if rx_is_dup rx ~fseq then []
    else begin
      Hashtbl.replace rx.held fseq (arrival, payload);
      let out = ref [] in
      let rec flush () =
        match Hashtbl.find_opt rx.held rx.expected with
        | None -> ()
        | Some (a, p) ->
          Hashtbl.remove rx.held rx.expected;
          let t = max a rx.last_deliver in
          rx.last_deliver <- t;
          rx.expected <- rx.expected + 1;
          out := (t, p) :: !out;
          flush ()
      in
      flush ();
      List.rev !out
    end

  (* Sender side: plan the transmission of one frame over the faulty
     wire.  Attempt 0 goes out at [now]; each dropped attempt is
     retransmitted after a timeout that doubles every time (exponential
     backoff).  Returns the arrival time of the first surviving copy,
     the arrival of a duplicated copy (if the dup coin fired), and the
     fault summary.  Deterministic in [rng]; at most [max_attempts]
     tries, the last of which always survives (the model never loses a
     frame for good — that would wedge the protocol, not slow it). *)
  let max_attempts = 16

  (* Bounded variant: with [max_retx] > 0 the sender gives up after
     that many retransmissions and reports a timeout ([None] arrival,
     [timed_out] set) instead of forcing the last attempt through.
     [max_retx] = 0 keeps the historical never-lose behaviour, and
     draws exactly the same coins in exactly the same order, so a
     zero/absent knob is byte-identical. *)
  let tx_plan_bounded (f : faults) ~max_retx rng ~now ~flight ~rto =
    let cap = if max_retx > 0 then min max_retx (max_attempts - 1)
      else max_attempts - 1 in
    let rec attempts k start backoff =
      if k < cap && Random.State.float rng 1.0 < f.drop then
        let timeout = rto * (1 lsl min k 10) in
        attempts (k + 1) (start + timeout) (backoff + timeout)
      else if k >= cap && max_retx > 0 && k = cap
              && Random.State.float rng 1.0 < f.drop then
        (* the final allowed attempt was itself dropped: give up *)
        (k + 1, start, backoff, true)
      else (k, start, backoff, false)
    in
    let retx, start, backoff, timed_out = attempts 0 now 0 in
    if timed_out then
      (None, None, { retx; backoff; duplicated = false; reordered = false;
                     timed_out = true })
    else begin
      let arrival = start + flight in
      let arrival =
        if f.delay > 0.0 && Random.State.float rng 1.0 < f.delay then
          arrival + f.delay_cycles
        else arrival
      in
      let duplicated = f.dup > 0.0 && Random.State.float rng 1.0 < f.dup in
      let dup_arrival =
        if duplicated then Some (arrival + max 1 (flight / 2)) else None
      in
      let reordered =
        f.reorder > 0.0 && Random.State.float rng 1.0 < f.reorder
      in
      (Some arrival, dup_arrival,
       { retx; backoff; duplicated; reordered; timed_out = false })
    end

  let tx_plan (f : faults) rng ~now ~flight ~rto =
    match tx_plan_bounded f ~max_retx:0 rng ~now ~flight ~rto with
    | Some arrival, dup_arrival, x -> (arrival, dup_arrival, x)
    | None, _, _ -> assert false (* unbounded plans always deliver *)
end

(* ------------------------------------------------------------------ *)
(* Lease arithmetic                                                    *)
(* ------------------------------------------------------------------ *)

(* Pure lease bookkeeping for node liveness: a lease is granted to a
   holder for a fixed [horizon] of cycles and renewed by heartbeats —
   which, in this transport, are simply observed sends (every frame a
   node puts on the wire piggybacks "I am alive" for free; the
   interconnect's [last_activity] is the heartbeat stream).  A lease
   that outlives its horizon without renewal marks its holder suspect;
   takeover hands the lease to a new holder under a bumped epoch so
   stale holders can be fenced.  All arithmetic is pure and unit-tested
   (QCheck, test_crash.ml): expiry never precedes the grant horizon,
   takeover is idempotent, heartbeat application dedups by sequence
   number (exactly-once renewal). *)
module Lease = struct
  type t = {
    holder : int;
    granted : int; (* cycle of grant or last accepted renewal *)
    horizon : int; (* validity window, cycles *)
    epoch : int; (* bumped on every takeover, fences stale holders *)
    last_hb : int; (* highest heartbeat sequence number applied *)
  }

  let grant ~holder ~now ~horizon =
    { holder; granted = now; horizon = max 1 horizon; epoch = 0;
      last_hb = -1 }

  let holder l = l.holder
  let epoch l = l.epoch
  let expiry l = l.granted + l.horizon
  let expired l ~now = now >= expiry l

  (* Apply one heartbeat; renewal happens exactly once per sequence
     number (re-delivered heartbeats are no-ops), and renewal never
     moves the grant backwards. *)
  let heartbeat l ~seq ~now =
    if seq <= l.last_hb then (l, false)
    else ({ l with granted = max l.granted now; last_hb = seq }, true)

  (* Reassign the lease.  Idempotent: taking over to the current holder
     changes nothing (same epoch, same grant), so two racing takeovers
     by the same claimant converge. *)
  let takeover l ~new_holder ~now =
    if l.holder = new_holder then l
    else
      { holder = new_holder; granted = now; horizon = l.horizon;
        epoch = l.epoch + 1; last_hb = -1 }
end

(* ------------------------------------------------------------------ *)
(* The interconnect                                                    *)
(* ------------------------------------------------------------------ *)

type 'a queued = { deliver : int; seq : int; msg : 'a }

type fault_stats = {
  drops : int;
  dups : int;
  retxs : int;
  reorders : int;
  backoff_cycles : int;
  timeouts : int; (* frames abandoned after [max_retx] retransmissions *)
}

type 'a t = {
  profile : profile;
  nprocs : int;
  (* chan.(src * nprocs + dst) *)
  chans : 'a queued Queue.t array;
  mutable last_deliver : int array; (* per channel, for FIFO ordering *)
  mutable seq : int;
  mutable sent : int;
  mutable payload_longs : int;
  (* unreliable wire + reliable sublayer (None = the paper's perfect
     interconnect; the send path is then exactly the historical one) *)
  faults : faults option;
  rngs : Random.State.t array; (* per channel, seeded (fseed, src, dst) *)
  rxs : unit Sublayer.rx array; (* per channel resequencer (times only) *)
  wire_last : int array; (* per channel raw-wire FIFO point *)
  mutable fstats : fault_stats;
  (* node-level liveness: [dead.(n)] marks a node declared crashed
     (sends to it are dropped and counted as timeouts; nothing is
     queued).  A per-node array, not an int bitmask, so liveness scales
     past the int width like the rest of the node sets.
     [last_activity] is the implicit heartbeat stream — the last cycle
     each node put a frame on the wire. *)
  dead : bool array;
  last_activity : int array;
  (* observability taps: called on every send (at the sender's time)
     and every delivery (at arrival time).  The network itself stays
     agnostic of what listens; the cluster wires these into the
     observability subsystem.  [on_fault] fires at send time whenever
     the fault layer perturbed a frame. *)
  mutable on_send : src:int -> dst:int -> now:int -> 'a -> unit;
  mutable on_recv : src:int -> dst:int -> now:int -> 'a -> unit;
  mutable on_fault : src:int -> dst:int -> now:int -> xmit -> 'a -> unit;
}

let no_tap ~src:_ ~dst:_ ~now:_ _ = ()
let no_fault_tap ~src:_ ~dst:_ ~now:_ _ _ = ()

let zero_fault_stats =
  { drops = 0; dups = 0; retxs = 0; reorders = 0; backoff_cycles = 0;
    timeouts = 0 }

let create ?faults ~nprocs profile =
  let nchan = nprocs * nprocs in
  let seed = match faults with Some f -> f.fseed | None -> 0 in
  { profile; nprocs;
    chans = Array.init nchan (fun _ -> Queue.create ());
    last_deliver = Array.make nchan 0;
    seq = 0; sent = 0; payload_longs = 0;
    faults;
    rngs =
      Array.init nchan (fun c ->
        Random.State.make [| seed; c / nprocs; c mod nprocs |]);
    rxs = Array.init nchan (fun _ -> Sublayer.rx_create ());
    wire_last = Array.make nchan 0;
    fstats = zero_fault_stats;
    dead = Array.make nprocs false;
    last_activity = Array.make nprocs 0;
    on_send = no_tap; on_recv = no_tap; on_fault = no_fault_tap }

let set_taps t ~on_send ~on_recv =
  t.on_send <- on_send;
  t.on_recv <- on_recv

let set_fault_tap t ~on_fault = t.on_fault <- on_fault

let chan t ~src ~dst = (src * t.nprocs) + dst

let effective_rto t =
  match t.faults with
  | Some f when f.rto > 0 -> f.rto
  | _ ->
    let p = t.profile in
    4 * (p.send_overhead + p.wire_latency + p.recv_overhead)

(* Send a message; returns the time at which the sender is done with the
   send (the caller charges this to the sending node). *)
let send t ~src ~dst ~now ~payload_longs msg =
  let p = t.profile in
  let c = chan t ~src ~dst in
  let flight = p.wire_latency + (p.per_longword * payload_longs) in
  t.last_activity.(src) <- max t.last_activity.(src) now;
  if t.dead.(dst) then begin
    (* the receiver has been declared crashed: nothing will ever
       acknowledge, so the sublayer's retransmissions are futile — drop
       the frame on the floor and account it as a timeout.  (The
       protocol layer routes around detected-dead nodes; this is the
       safety net underneath it.)  Not counted in [sent]: the frame
       never reached the wire, keeping event-derived totals equal to
       [stats]. *)
    t.fstats <- { t.fstats with timeouts = t.fstats.timeouts + 1 };
    let x = { clean_xmit with timed_out = true } in
    t.on_fault ~src ~dst ~now x msg;
    now + p.send_overhead
  end
  else begin
    let delivered = ref true in
    (match t.faults with
     | None ->
       (* the paper's reliable wire: point-to-point FIFO, never deliver
          before a previously sent message on the same channel *)
       let deliver = max (now + p.send_overhead + flight) t.last_deliver.(c) in
       t.last_deliver.(c) <- deliver;
       t.seq <- t.seq + 1;
       Queue.push { deliver; seq = t.seq; msg } t.chans.(c)
     | Some f ->
       (* unreliable wire under the reliable sublayer: plan the frame's
          transmission (drops retransmitted with backoff, optional extra
          delay and duplication), then resequence: the frame is delivered
          when it AND everything before it on the channel have arrived *)
       let rng = t.rngs.(c) in
       let arrival, dup_arrival, x =
         Sublayer.tx_plan_bounded f ~max_retx:f.max_retx rng
           ~now:(now + p.send_overhead) ~flight ~rto:(effective_rto t)
       in
       (match arrival with
        | None ->
          (* retransmission budget exhausted: the sublayer gives up on
             this frame.  The channel's sequence space is untouched (the
             frame was never offered to the resequencer), so later
             frames flow past the loss. *)
          delivered := false
        | Some arrival ->
          (* a non-reordered frame respects the raw wire's FIFO point; a
             reordered one may overtake it (resequencing restores order) *)
          let arrival =
            if x.reordered then arrival
            else begin
              let a = max arrival t.wire_last.(c) in
              t.wire_last.(c) <- a;
              a
            end
          in
          (* frames enter the resequencer in sequence order (sends on a
             channel are issued in order), so delivery time is the arrival
             clamped to the channel's previous delivery *)
          (match Sublayer.rx_offer t.rxs.(c)
                   ~fseq:(Sublayer.rx_expected t.rxs.(c)) ~arrival ()
           with
           | [ (deliver, ()) ] ->
             t.last_deliver.(c) <- deliver;
             t.seq <- t.seq + 1;
             Queue.push { deliver; seq = t.seq; msg } t.chans.(c)
           | _ -> assert false));
       (* duplicated copies reach the receiver and are discarded there *)
       let dups = match dup_arrival with Some _ -> 1 | None -> 0 in
       let s = t.fstats in
       t.fstats <-
         { drops = s.drops + x.retx;
           dups = s.dups + dups;
           retxs = s.retxs + x.retx;
           reorders = (s.reorders + if x.reordered then 1 else 0);
           backoff_cycles = s.backoff_cycles + x.backoff;
           timeouts = (s.timeouts + if x.timed_out then 1 else 0) };
       if x <> clean_xmit then t.on_fault ~src ~dst ~now x msg);
    if !delivered then begin
      t.sent <- t.sent + 1;
      t.payload_longs <- t.payload_longs + payload_longs;
      t.on_send ~src ~dst ~now msg
    end;
    now + p.send_overhead
  end

(* Multicast fan-out: one message per (dst, msg) pair, each send
   starting at the cycle the previous one finished — byte-identical to
   the equivalent sequence of [send] calls (there is no hardware
   multicast in the modeled interconnects; what the engine saves is the
   per-message bookkeeping, and the caller gets the fan-out width in
   one place to observe). *)
let multicast t ~src ~now ~payload_longs pairs =
  List.fold_left
    (fun now (dst, msg) ->
      send t ~src ~dst ~now ~payload_longs:(payload_longs msg) msg)
    now pairs

(* Earliest arrival time of any message destined for [dst], if any. *)
let next_arrival t ~dst =
  let best = ref max_int in
  for src = 0 to t.nprocs - 1 do
    match Queue.peek_opt t.chans.(chan t ~src ~dst) with
    | Some q -> if q.deliver < !best then best := q.deliver
    | None -> ()
  done;
  if !best = max_int then None else Some !best

(* Pop the earliest message for [dst] with arrival <= [now].  Ties are
   broken by global send order, keeping the simulation deterministic. *)
let recv t ~dst ~now =
  let best = ref None in
  for src = 0 to t.nprocs - 1 do
    match Queue.peek_opt t.chans.(chan t ~src ~dst) with
    | Some q when q.deliver <= now ->
      (match !best with
       | Some (_, bq) when (bq.deliver, bq.seq) <= (q.deliver, q.seq) -> ()
       | _ -> best := Some (src, q))
    | _ -> ()
  done;
  match !best with
  | Some (src, q) ->
    ignore (Queue.pop t.chans.(chan t ~src ~dst));
    t.on_recv ~src ~dst ~now:q.deliver q.msg;
    Some (q.deliver, q.msg)
  | None -> None

let pending_for t ~dst =
  let n = ref 0 in
  for src = 0 to t.nprocs - 1 do
    n := !n + Queue.length t.chans.(chan t ~src ~dst)
  done;
  !n

let in_flight t =
  Array.fold_left (fun a q -> a + Queue.length q) 0 t.chans

let stats t = (t.sent, t.payload_longs)

let fault_stats t = t.fstats

(* ------------------------------------------------------------------ *)
(* Node-level liveness                                                 *)
(* ------------------------------------------------------------------ *)

let last_activity t ~node = t.last_activity.(node)

let mark_live t ~node = t.dead.(node) <- false

(* Declare [node] crashed: every frame still queued to or from it is
   removed from the wire and returned (in global send order, so the
   caller's recovery handling is deterministic and replayable), the
   per-channel sublayer state on those channels is reset (a recovered
   node starts fresh sequence spaces — held fragments of purged
   streams must not gate post-recovery traffic), and future sends to
   the node are dropped and counted as timeouts until [mark_live]. *)
let mark_dead t ~node =
  t.dead.(node) <- true;
  let lost = ref [] in
  for other = 0 to t.nprocs - 1 do
    List.iter
      (fun (src, dst) ->
        let c = chan t ~src ~dst in
        Queue.iter
          (fun (q : _ queued) -> lost := (q.seq, src, dst, q.msg) :: !lost)
          t.chans.(c);
        Queue.clear t.chans.(c);
        t.rxs.(c) <- Sublayer.rx_create ();
        t.wire_last.(c) <- 0;
        t.last_deliver.(c) <- 0)
      (if other = node then [ (node, node) ]
       else [ (node, other); (other, node) ])
  done;
  List.map (fun (_, src, dst, msg) -> (src, dst, msg))
    (List.sort compare !lost)
