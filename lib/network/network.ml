(* Cluster interconnect model.

   The Shasta protocol "depends on point-to-point order for messages
   sent between any two nodes" (Section 2.1); this module provides
   exactly that: per-(src,dst) FIFO channels with a configurable cost
   model.  Costs are in processor cycles of the 275 MHz machines of the
   paper; the two named profiles approximate the Memory Channel and ATM
   clusters used in the evaluation, and `ideal` isolates protocol
   behaviour from communication cost in tests. *)

type profile = {
  net_name : string;
  send_overhead : int; (* cycles spent by the sending CPU *)
  recv_overhead : int; (* cycles spent by the receiving CPU per message *)
  wire_latency : int; (* cycles of flight time *)
  per_longword : int; (* additional flight cycles per payload longword *)
}

(* Memory Channel: a few microseconds end to end at 275 MHz. *)
let memory_channel =
  { net_name = "memory-channel"; send_overhead = 250; recv_overhead = 400;
    wire_latency = 700; per_longword = 2 }

(* ATM: an order of magnitude slower, dominated by driver overheads. *)
let atm =
  { net_name = "atm"; send_overhead = 2500; recv_overhead = 3500;
    wire_latency = 5000; per_longword = 8 }

let ideal =
  { net_name = "ideal"; send_overhead = 1; recv_overhead = 1;
    wire_latency = 1; per_longword = 0 }

let profile_of_string = function
  | "mc" | "memory-channel" -> memory_channel
  | "atm" -> atm
  | "ideal" -> ideal
  | s -> invalid_arg ("Network.profile_of_string: " ^ s)

type 'a queued = { deliver : int; seq : int; msg : 'a }

type 'a t = {
  profile : profile;
  nprocs : int;
  (* chan.(src * nprocs + dst) *)
  chans : 'a queued Queue.t array;
  mutable last_deliver : int array; (* per channel, for FIFO ordering *)
  mutable seq : int;
  mutable sent : int;
  mutable payload_longs : int;
  (* observability taps: called on every send (at the sender's time)
     and every delivery (at arrival time).  The network itself stays
     agnostic of what listens; the cluster wires these into the
     observability subsystem. *)
  mutable on_send : src:int -> dst:int -> now:int -> 'a -> unit;
  mutable on_recv : src:int -> dst:int -> now:int -> 'a -> unit;
}

let no_tap ~src:_ ~dst:_ ~now:_ _ = ()

let create ~nprocs profile =
  { profile; nprocs;
    chans = Array.init (nprocs * nprocs) (fun _ -> Queue.create ());
    last_deliver = Array.make (nprocs * nprocs) 0;
    seq = 0; sent = 0; payload_longs = 0;
    on_send = no_tap; on_recv = no_tap }

let set_taps t ~on_send ~on_recv =
  t.on_send <- on_send;
  t.on_recv <- on_recv

let chan t ~src ~dst = (src * t.nprocs) + dst

(* Send a message; returns the time at which the sender is done with the
   send (the caller charges this to the sending node). *)
let send t ~src ~dst ~now ~payload_longs msg =
  let p = t.profile in
  let c = chan t ~src ~dst in
  let deliver =
    now + p.send_overhead + p.wire_latency + (p.per_longword * payload_longs)
  in
  (* point-to-point FIFO: never deliver before a previously sent message
     on the same channel *)
  let deliver = max deliver t.last_deliver.(c) in
  t.last_deliver.(c) <- deliver;
  t.seq <- t.seq + 1;
  t.sent <- t.sent + 1;
  t.payload_longs <- t.payload_longs + payload_longs;
  Queue.push { deliver; seq = t.seq; msg } t.chans.(c);
  t.on_send ~src ~dst ~now msg;
  now + p.send_overhead

(* Earliest arrival time of any message destined for [dst], if any. *)
let next_arrival t ~dst =
  let best = ref max_int in
  for src = 0 to t.nprocs - 1 do
    match Queue.peek_opt t.chans.(chan t ~src ~dst) with
    | Some q -> if q.deliver < !best then best := q.deliver
    | None -> ()
  done;
  if !best = max_int then None else Some !best

(* Pop the earliest message for [dst] with arrival <= [now].  Ties are
   broken by global send order, keeping the simulation deterministic. *)
let recv t ~dst ~now =
  let best = ref None in
  for src = 0 to t.nprocs - 1 do
    match Queue.peek_opt t.chans.(chan t ~src ~dst) with
    | Some q when q.deliver <= now ->
      (match !best with
       | Some (_, bq) when (bq.deliver, bq.seq) <= (q.deliver, q.seq) -> ()
       | _ -> best := Some (src, q))
    | _ -> ()
  done;
  match !best with
  | Some (src, q) ->
    ignore (Queue.pop t.chans.(chan t ~src ~dst));
    t.on_recv ~src ~dst ~now:q.deliver q.msg;
    Some (q.deliver, q.msg)
  | None -> None

let pending_for t ~dst =
  let n = ref 0 in
  for src = 0 to t.nprocs - 1 do
    n := !n + Queue.length t.chans.(chan t ~src ~dst)
  done;
  !n

let in_flight t =
  Array.fold_left (fun a q -> a + Queue.length q) 0 t.chans

let stats t = (t.sent, t.payload_longs)
