(* Per-node runtime state: architectural state (memory, caches,
   pipeline, registers), scheduling status, and counters.

   All protocol bookkeeping that used to live here — pending lines,
   invalidation-ack counts, deferred invalidations, waiter queues, sync
   signals — moved into the pure transition core
   ([Shasta_protocol.Transitions]); the node keeps only what the
   machine layers and the scheduler need. *)

open Shasta_machine

(* Re-exported from the transition core so the scheduler can match on
   a node's wait without depending on protocol internals. *)
type wait = Shasta_protocol.Transitions.wait =
  | W_blocks of int list (* until none of these blocks is pending *)
  | W_release (* until no pending blocks and no outstanding acks *)
  | W_sync (* until a synchronization signal (grant/release/wake) *)

type status =
  | Running
  | Waiting of wait
  | Finished
  | Crashed
    (* halted by the fault injector: the program never resumes and no
       message is ever delivered again; the memory image stays frozen
       so recovery can salvage block bytes out of it *)

type counters = {
  mutable read_misses : int;
  mutable write_misses : int; (* read-exclusive *)
  mutable upgrade_misses : int;
  mutable batch_misses : int;
  mutable false_misses : int;
  mutable stall_cycles : int;
  mutable polls : int;
  mutable msgs_handled : int;
  mutable lock_acquires : int;
  mutable barriers_passed : int;
  mutable insns : int;
  mutable store_reissues : int;
  (* dynamic access mix, for the instrumented-frequency table *)
  mutable dyn_loads : int;
  mutable dyn_loads_shared : int;
  mutable dyn_stores : int;
  mutable dyn_stores_shared : int;
}

let fresh_counters () =
  { read_misses = 0; write_misses = 0; upgrade_misses = 0; batch_misses = 0;
    false_misses = 0; stall_cycles = 0; polls = 0; msgs_handled = 0;
    lock_acquires = 0; barriers_passed = 0; insns = 0; store_reissues = 0;
    dyn_loads = 0; dyn_loads_shared = 0; dyn_stores = 0;
    dyn_stores_shared = 0 }

type t = {
  id : int;
  mem : Memory.t;
  caches : Cache.hierarchy;
  pipe : Pipeline.t;
  regs : int array;
  fregs : float array;
  mutable pc_proc : int;
  mutable pc_idx : int;
  mutable call_stack : (int * int) list;
  mutable status : status;
  mutable refill : unit -> unit;
      (* the stalled load's continuation, run by the A_refill action *)
  mutable commit_store : unit -> unit;
      (* a stalled non-scheduled store's memory effect, made visible by
         the engine at wake time before any queued request is served *)
  mutable wait_started : int; (* cycle when the current wait began *)
  mutable reply_data : int array option;
      (* longwords of the Data_reply currently being applied (consumed
         by the first M_merge action of the step) *)
  (* mirrors of transition-core state the interpreter layers read *)
  mutable in_batch : bool;
  mutable batch_stores : (int * int) list; (* absolute addr, byte size *)
  mutable priv_brk : int; (* private heap bump pointer *)
  counters : counters;
}

let create ~id ~pipe_config =
  let caches = Cache.alpha_hierarchy () in
  { id;
    mem = Memory.create ();
    caches;
    pipe = Pipeline.create ~caches pipe_config;
    regs = Array.make 32 0;
    fregs = Array.make 32 0.0;
    pc_proc = 0;
    pc_idx = 0;
    call_stack = [];
    status = Running;
    refill = (fun () -> ());
    commit_store = (fun () -> ());
    wait_started = 0;
    reply_data = None;
    in_batch = false;
    batch_stores = [];
    priv_brk = Shasta.Layout.static_limit + 0x0800_0000 (* 0x1800_0000 *);
    counters = fresh_counters () }

let time t = Pipeline.cycle t.pipe
