(* The protocol engine as a thin interpreter over the pure transition
   core ([Shasta_protocol.Transitions]).

   All protocol DECISIONS — directory updates, lockup-free pending
   states, dirty sharing, piggybacked invalidation acks, deferred
   batched invalidations, sync objects (Sections 2.1 and 4 of the
   paper) — are made by [Transitions.step] over the immutable view in
   [state.proto].  This module:

   - turns machine observations into step inputs (state-table bytes at
     miss checks, drained network messages, batched access lists with
     their historical iteration orders, store values the core cannot
     read itself);
   - applies the returned action list IN ORDER against
     Pipeline/Network/Memory/Tables and the observability subsystem,
     which reproduces the old monolithic engine's effect order — and
     therefore its event stream and cycle counts — exactly;
   - records every (node, input) pair when [state.record_inputs] is
     set, enabling deterministic replay through the pure core alone.

   The one re-entrant corner: a stalling store's retry must re-run the
   full store-miss path (drain included).  The core ends such a step
   with [A_reenter_store], the interpreter re-enters [store_miss], and
   the residual pure work rides along as a post list fed back through
   [I_continue]. *)

open Shasta_machine
open Shasta_protocol
open Shasta
module Obs = Shasta_obs.Obs
module Ev = Shasta_obs.Event
module T = Transitions

let ls state = state.State.config.line_shift

(* Report a typed event at the node's current simulated time, attributed
   to the node's current code site.  The interpreter bumps [pc_idx]
   before dispatching into the engine, so [pc_idx - 1] is the
   miss-check pseudo-instruction (or Batch_end / Rt_call) that caused
   the event; a blocked node's pc does not move, so the stall emitted at
   wake-up lands on the same site as its miss.  [call_stack] is an
   immutable list — aliasing it costs nothing. *)
let site_of (node : Node.t) =
  { Ev.sproc = node.pc_proc;
    spc = (if node.pc_idx > 0 then node.pc_idx - 1 else 0);
    sstack = node.call_stack }

let emit state (node : Node.t) ev =
  Obs.emit state.State.config.obs ~site:(site_of node) ~node:node.id
    ~time:(Pipeline.cycle node.pipe) ev

let block_of state addr = Granularity.block_base state.State.gran addr
let block_len state block = Granularity.block_bytes_at state.State.gran block

let charge (node : Node.t) cycles = Pipeline.stall node.pipe cycles

(* ------------------------------------------------------------------ *)
(* Input construction helpers                                           *)
(* ------------------------------------------------------------------ *)

let line_of_byte st =
  if st = Layout.st_exclusive then T.L_exclusive
  else if st = Layout.st_shared then T.L_shared
  else if st = Layout.st_pending_invalid then T.L_pending_invalid
  else if st = Layout.st_pending_shared then T.L_pending_shared
  else T.L_invalid

(* The longwords [addr, addr+bytes) covers, with their current memory
   values (the store has already executed). *)
let longword_cover (node : Node.t) ~addr ~bytes =
  let first = addr land lnot 3 in
  let n = (addr + bytes - 1 - first) / 4 in
  let rec go k acc =
    if k < 0 then acc
    else
      let a = first + (4 * k) in
      go (k - 1) ((a, Memory.read_long_u node.mem a) :: acc)
  in
  go n []

(* ------------------------------------------------------------------ *)
(* Action application                                                   *)
(* ------------------------------------------------------------------ *)

let cost_cycles state (c : T.cost) =
  let costs = state.State.config.costs in
  match c with
  | T.Request_issue -> costs.request_issue
  | T.Message_handle -> costs.message_handle
  | T.Sync_local -> costs.sync_local
  | T.False_miss -> costs.false_miss
  | T.Batch_record n -> costs.batch_record * n

let bump (node : Node.t) (k : T.counter) =
  let c = node.counters in
  match k with
  | T.C_read_miss -> c.read_misses <- c.read_misses + 1
  | T.C_write_miss -> c.write_misses <- c.write_misses + 1
  | T.C_upgrade_miss -> c.upgrade_misses <- c.upgrade_misses + 1
  | T.C_batch_miss -> c.batch_misses <- c.batch_misses + 1
  | T.C_false_miss -> c.false_misses <- c.false_misses + 1
  | T.C_msg_handled -> c.msgs_handled <- c.msgs_handled + 1
  | T.C_lock_acquire -> c.lock_acquires <- c.lock_acquires + 1
  | T.C_barrier_passed -> c.barriers_passed <- c.barriers_passed + 1
  | T.C_store_reissue -> c.store_reissues <- c.store_reissues + 1

let ev_of (e : T.ev) : Ev.t =
  match e with
  | T.E_miss (T.MK_read, addr) -> Ev.Miss { kind = Ev.Read; addr }
  | T.E_miss (T.MK_write, addr) -> Ev.Miss { kind = Ev.Write; addr }
  | T.E_miss (T.MK_upgrade, addr) -> Ev.Miss { kind = Ev.Upgrade; addr }
  | T.E_false_miss addr -> Ev.False_miss { addr }
  | T.E_invalidated { block; requester } ->
    Ev.Invalidated { addr = block; requester }
  | T.E_downgraded { block; requester } ->
    Ev.Downgraded { addr = block; requester }
  | T.E_store_reissue addr -> Ev.Store_reissue { addr }
  | T.E_batch_run { nranges; waited } -> Ev.Batch_run { nranges; waited }
  | T.E_lock_acquired id -> Ev.Lock_acquired { id }
  | T.E_barrier_passed -> Ev.Barrier_passed
  | T.E_flag_raised id -> Ev.Flag_raised { id }
  | T.E_flag_woken id -> Ev.Flag_woken { id }
  | T.E_lease_takeover { id; from } -> Ev.Lease_takeover { id; from }
  | T.E_dir_rebuild { block; from } -> Ev.Dir_rebuild { block; from }
  | T.E_home_migrated { page; to_ } -> Ev.Home_migrated { page; to_ }

(* Data replies leave the core with an empty payload: read the block out
   of this node's memory at apply time.  No memory action can intervene
   between the core's send point and this apply point, so the data is
   exactly what the old engine read inline. *)
let fill_data state (node : Node.t) (msg : Message.t) =
  match msg.kind with
  | Message.Coh (Data_reply { data; exclusive; acks })
    when Array.length data = 0 ->
    let data =
      Tables.read_block node ~addr:msg.addr ~len:(block_len state msg.addr)
    in
    { msg with Message.kind = Message.Coh (Data_reply { data; exclusive; acks }) }
  | _ -> msg

let stall_reason = function
  | T.W_blocks _ -> "miss"
  | T.W_release -> "release"
  | T.W_sync -> "sync"

let rec step state (node : Node.t) (input : T.input) =
  if state.State.record_inputs then
    state.State.inputs_rev <- (node.id, input) :: state.State.inputs_rev;
  let acts, v = T.step state.State.tcfg state.State.proto ~node:node.id input in
  state.State.proto <- v;
  apply_all state node acts

(* Maximal runs of invalidation sends — the home's fan-out for one
   request over the sharer set — go to the interconnect as one
   multicast (timing-identical to the individual sends) and feed the
   dir.fanout histogram with the run's width. *)
and inv_send (a : T.action) =
  match a with
  | T.A_send
      ({ msg = { Message.kind = Message.Coh (Message.Inv _); _ }; _ } as s) ->
    Some (s.dst, s.msg)
  | _ -> None

and apply_all state (node : Node.t) acts =
  match acts with
  | [] -> ()
  | a :: _ when inv_send a <> None ->
    let rec split acc = function
      | a :: rest as l -> (
        match inv_send a with
        | Some pair -> split (pair :: acc) rest
        | None -> (List.rev acc, l))
      | [] -> (List.rev acc, [])
    in
    let pairs, rest = split [] acts in
    let now = Pipeline.cycle node.pipe in
    let done_at =
      Shasta_network.Network.multicast state.State.net ~src:node.id ~now
        ~payload_longs:Message.payload_longs pairs
    in
    charge node (done_at - now);
    Obs.observe state.State.config.obs ~node:node.id Obs.h_fanout
      (List.length pairs);
    apply_all state node rest
  | a :: rest ->
    apply state node a;
    apply_all state node rest

and apply state (node : Node.t) (a : T.action) =
  match a with
  | T.A_charge c -> charge node (cost_cycles state c)
  | T.A_count k -> bump node k
  | T.A_emit e -> emit state node (ev_of e)
  | T.A_send { dst; msg } ->
    let msg = fill_data state node msg in
    (* the network's send tap reports the message to the observability
       subsystem *)
    let now = Pipeline.cycle node.pipe in
    let done_at =
      Shasta_network.Network.send state.State.net ~src:node.id ~dst ~now
        ~payload_longs:(Message.payload_longs msg)
        msg
    in
    charge node (done_at - now)
  | T.A_local _ ->
    (* local delivery: the core charged the handler cost and handled the
       message inline; it never reaches the network taps, so count it
       here *)
    Obs.incr state.State.config.obs ~node:node.id Obs.c_msg_local
  | T.A_mem op -> apply_mem state node op
  | T.A_block w ->
    node.status <- Waiting w;
    node.wait_started <- Pipeline.cycle node.pipe
  | T.A_stall w ->
    let stalled = Pipeline.cycle node.pipe - node.wait_started in
    node.counters.stall_cycles <- node.counters.stall_cycles + stalled;
    emit state node
      (Ev.Stall
         { reason = stall_reason w;
           started = node.wait_started;
           cycles = stalled });
    node.status <- Running
  | T.A_refill -> node.refill ()
  | T.A_commit_store ->
    node.commit_store ();
    node.commit_store <- (fun () -> ())
  | T.A_reenter_store { addr; bytes; store_done; post } ->
    store_miss state node ~addr ~bytes ~store_done;
    (* a stalled non-scheduled store that can now proceed must become
       visible before the carried post work serves any queued request *)
    if (not store_done) && node.status = Node.Running then begin
      node.commit_store ();
      node.commit_store <- (fun () -> ())
    end;
    if post <> [] then step state node (T.I_continue post)

and apply_mem state (node : Node.t) (op : T.memop) =
  match op with
  | T.M_make_exclusive b ->
    Tables.make_exclusive node ~ls:(ls state) ~addr:b ~len:(block_len state b)
  | T.M_make_shared b ->
    Tables.make_shared node ~ls:(ls state) ~addr:b ~len:(block_len state b)
  | T.M_make_invalid b ->
    Tables.make_invalid node ~ls:(ls state) ~addr:b ~len:(block_len state b)
  | T.M_make_pending { block; shared } ->
    Tables.make_pending node ~ls:(ls state) ~addr:block
      ~len:(block_len state block) ~shared
  | T.M_flag { block; keep } ->
    Tables.flag_range node
      ~skip:(fun a -> List.mem a keep)
      ~addr:block ~len:(block_len state block)
  | T.M_merge { block; written } ->
    (* merge the triggering reply's longwords, overlaying the node's own
       pending stores.  The reply data is consumed at most once per
       step; a locally served reply (same-node owner) falls back to the
       node's own memory, which is what the local owner path read. *)
    let data =
      match node.reply_data with
      | Some d ->
        node.reply_data <- None;
        d
      | None -> Tables.read_block node ~addr:block ~len:(block_len state block)
    in
    let wtbl = Hashtbl.create 8 in
    List.iter (fun (a, v) -> Hashtbl.replace wtbl a v) written;
    Tables.merge_block_data node ~addr:block ~written:wtbl data
  | T.M_adopt { block; from } ->
    (* crash salvage: copy the block's bytes out of the dead node's
       frozen memory image (its pipeline never runs again, so the image
       is stable); a pure byte copy — no state-table change *)
    let victim = state.State.nodes.(from) in
    let len = block_len state block in
    let data = Tables.read_block victim ~addr:block ~len in
    Memory.blit_in node.mem ~addr:block data;
    Cache.dinvalidate node.caches ~addr:block ~len

(* Store miss.  With [store_done] (the scheduled check of Section 3.1),
   the store has already written memory and the handler is non-stalling
   under release consistency; without it, the handler stalls until the
   line is exclusive and the store executes afterwards. *)
and store_miss state (node : Node.t) ~addr ~bytes ~store_done =
  (* Messages drained below may invalidate the block and flag the
     just-stored longwords before the core records them, so capture the
     store's value now and re-apply it after the drain: the store is the
     newest write to these longwords. *)
  let saved =
    if store_done then
      Some (Memory.blit_out node.mem ~addr ~nlongs:(bytes / 4))
    else None
  in
  enter_handler state node;
  (match saved with
   | Some data ->
     Memory.blit_in node.mem ~addr data;
     Cache.dinvalidate node.caches ~addr ~len:bytes
   | None -> ());
  let block = block_of state addr in
  let st = line_of_byte (Tables.get_state node ~ls:(ls state) addr) in
  let stored =
    if store_done then longword_cover node ~addr ~bytes else []
  in
  step state node (T.I_store_miss { addr; block; st; bytes; store_done; stored })

(* ------------------------------------------------------------------ *)
(* Message delivery                                                     *)
(* ------------------------------------------------------------------ *)

and handle_msg state (node : Node.t) (msg : Message.t) =
  (match msg.kind with
   | Message.Coh (Data_reply { data; _ }) -> node.reply_data <- Some data
   | _ -> ());
  step state node (T.I_msg msg);
  node.reply_data <- None

(* Drain every message that has already arrived for [node]. *)
and drain state (node : Node.t) =
  let now = Pipeline.cycle node.pipe in
  match Shasta_network.Network.recv state.State.net ~dst:node.id ~now with
  | Some (_, msg) ->
    charge node state.State.config.net_profile.recv_overhead;
    handle_msg state node msg;
    drain state node
  | None -> ()

and enter_handler state (node : Node.t) =
  charge node state.State.config.costs.handler_entry;
  drain state node

(* Deliver the next message even if it is in the future (used by the
   scheduler for blocked nodes). *)
let deliver_next state (node : Node.t) =
  match
    Shasta_network.Network.next_arrival state.State.net ~dst:node.id
  with
  | None -> false
  | Some arrival ->
    Pipeline.advance_to node.pipe arrival;
    (match
       Shasta_network.Network.recv state.State.net ~dst:node.id
         ~now:(Pipeline.cycle node.pipe)
     with
     | Some (_, msg) ->
       charge node state.State.config.net_profile.recv_overhead;
       handle_msg state node msg
     | None -> assert false);
    true

(* ------------------------------------------------------------------ *)
(* Inline miss handlers (called from the interpreter pseudo-ops)        *)
(* ------------------------------------------------------------------ *)

(* Load miss: the flag matched (or the basic check failed).  False
   misses return immediately after the state lookup (Section 3.2). *)
let load_miss state (node : Node.t) ~addr ~refill =
  enter_handler state node;
  node.refill <- refill;
  let block = block_of state addr in
  let st = line_of_byte (Tables.get_state node ~ls:(ls state) addr) in
  step state node (T.I_load_miss { addr; block; st })

(* Batch miss (Section 4.3): issue requests for every block the batch
   ranges touch, then wait for the read and read-exclusive replies only
   (not for invalidation acknowledgements). *)
let batch_miss state (node : Node.t) ~nranges ~accesses =
  enter_handler state node;
  node.in_batch <- true;
  node.batch_stores <-
    List.filter_map
      (fun (addr, bytes, is_store) ->
        if is_store then Some (addr, bytes) else None)
      accesses;
  (* per-block need: exclusive if any store touches the block.  The
     iteration order of this table is part of the engine's historical
     behavior, so it is passed to the core as part of the input. *)
  let blocks = Hashtbl.create 8 in
  List.iter
    (fun (addr, bytes, is_store) ->
      let rec cover a =
        if a < addr + bytes then begin
          let b = block_of state a in
          let prev =
            match Hashtbl.find_opt blocks b with Some s -> s | None -> false
          in
          Hashtbl.replace blocks b (prev || is_store);
          cover (b + block_len state b)
        end
      in
      cover addr)
    accesses;
  let rev = ref [] in
  Hashtbl.iter
    (fun b need_excl ->
      rev :=
        (b, need_excl, line_of_byte (Tables.get_state node ~ls:(ls state) b))
        :: !rev)
    blocks;
  step state node
    (T.I_batch_miss
       { nranges; blocks = List.rev !rev; stores = node.batch_stores })

(* Batch end: transfer batched store locations into still-pending
   blocks, then apply deferred invalidations/downgrades with store
   reissue (Section 4.3). *)
let batch_end state (node : Node.t) =
  if node.in_batch then begin
    (* store values at batch end, tagged with their covering block *)
    let values =
      List.concat_map
        (fun (addr, bytes) ->
          List.map
            (fun (a, v) -> (a, block_of state a, v))
            (longword_cover node ~addr ~bytes))
        node.batch_stores
    in
    (* several forwarded requests may have been served during one batch;
       fold them to one action per block (an invalidation dominates a
       downgrade).  The fold order of this table is historical behavior
       too, so the deduped order is input, not recomputed in the core. *)
    let ds = T.deferred_of state.State.proto ~node:node.id in
    let strongest = Hashtbl.create 8 in
    List.iter
      (fun d ->
        let block = match d with T.D_inv b | T.D_downgrade b -> b in
        match (Hashtbl.find_opt strongest block, d) with
        | Some (T.D_inv _), _ -> ()
        | _, d -> Hashtbl.replace strongest block d)
      ds;
    let order = List.rev (Hashtbl.fold (fun _ d acc -> d :: acc) strongest []) in
    node.in_batch <- false;
    step state node (T.I_batch_end { values; order });
    node.batch_stores <- []
  end

(* Poll (Section 2.2): the inline three-instruction sequence; when the
   "message arrived" location is set, drain and handle. *)
let poll state (node : Node.t) =
  node.counters.polls <- node.counters.polls + 1;
  (* polls are far too frequent to stream as events; registry only *)
  Obs.incr state.State.config.obs ~node:node.id Obs.c_polls;
  charge node state.State.config.costs.poll_cycles;
  drain state node

(* ------------------------------------------------------------------ *)
(* Synchronization entry points (Rt_call)                               *)
(* ------------------------------------------------------------------ *)

let rt_lock state (node : Node.t) id =
  enter_handler state node;
  step state node (T.I_lock id)

let rt_unlock state (node : Node.t) id =
  enter_handler state node;
  step state node (T.I_unlock id)

let rt_barrier state (node : Node.t) =
  enter_handler state node;
  step state node T.I_barrier

let rt_flag_set state (node : Node.t) id =
  enter_handler state node;
  step state node (T.I_flag_set id)

let rt_flag_wait state (node : Node.t) id =
  enter_handler state node;
  step state node (T.I_flag_wait id)

(* ------------------------------------------------------------------ *)
(* Allocation                                                           *)
(* ------------------------------------------------------------------ *)

(* Register freshly allocated blocks with the directory inside the pure
   view, owned exclusively by [owner]. *)
let alloc_blocks state ~owner blocks =
  step state state.State.nodes.(owner) (T.I_alloc { owner; blocks })

(* Install a home-placement override in the pure view (first-touch
   allocation and profile-guided placement).  Fed through [step] like
   every other input so --replay reproduces placement decisions. *)
let set_home state ~page ~home =
  step state state.State.nodes.(0) (T.I_set_home { page; home })

(* ------------------------------------------------------------------ *)
(* Node fault injection (called by the cluster scheduler)               *)
(* ------------------------------------------------------------------ *)

(* The detected-crash step runs at the surviving coordinator: the pure
   core gets the victim's purged in-flight frames (global send order)
   and returns the recovery work — directory rebuilds, lease takeovers,
   salvage copies, re-sent replies — as the coordinator's own actions.
   Recorded like any other input, so --replay reproduces recovery. *)
let node_crash state (coord : Node.t) ~victim ~lost =
  step state coord (T.I_node_crash { victim; lost })

let node_recover state (node : Node.t) ~victim =
  step state node (T.I_node_recover victim)
