(* The Shasta protocol engine (Sections 2.1, 4 of the paper).

   Implements the directory-based invalidation protocol with the paper's
   properties:
   - all directory state changes complete when a request reaches the
     home; a forwarded request is guaranteed to be serviced by the
     owner (deferring in a per-block queue while the owner's own copy
     is pending or awaiting invalidation acks);
   - dirty sharing: a read forwarded to the owner is answered directly
     to the requester, without updating the home's copy;
   - exclusive (upgrade) requests avoid data transfer when the
     requester still holds a shared copy, and are converted to
     read-exclusive when an invalidation raced ahead;
   - the expected invalidation-ack count is piggybacked on the data or
     upgrade reply; sharers acknowledge straight to the requester;
   - release consistency: stores never stall (written longwords are
     recorded and merged with the eventual reply); releases wait for
     outstanding requests and acknowledgements;
   - batched misses: multiple block requests issued together, waiting
     only for read/read-exclusive replies; invalidations received while
     inside batched code are deferred to the Batch_end marker, with
     stores reissued for blocks lost during the batch (Section 4.3). *)

open Shasta_machine
open Shasta_protocol
open Shasta
module Obs = Shasta_obs.Obs
module Ev = Shasta_obs.Event

let ls state = state.State.config.line_shift

(* Report a typed event at the node's current simulated time, attributed
   to the node's current code site.  The interpreter bumps [pc_idx]
   before dispatching into the engine, so [pc_idx - 1] is the
   miss-check pseudo-instruction (or Batch_end / Rt_call) that caused
   the event; a blocked node's pc does not move, so the stall emitted at
   wake-up lands on the same site as its miss.  [call_stack] is an
   immutable list — aliasing it costs nothing. *)
let site_of (node : Node.t) =
  { Ev.sproc = node.pc_proc;
    spc = (if node.pc_idx > 0 then node.pc_idx - 1 else 0);
    sstack = node.call_stack }

let emit state (node : Node.t) ev =
  Obs.emit state.State.config.obs ~site:(site_of node) ~node:node.id
    ~time:(Pipeline.cycle node.pipe) ev

let block_of state addr = Granularity.block_base state.State.gran addr
let block_len state block = Granularity.block_bytes_at state.State.gran block

let charge (node : Node.t) cycles = Pipeline.stall node.pipe cycles

(* ------------------------------------------------------------------ *)
(* Messaging                                                            *)
(* ------------------------------------------------------------------ *)

let rec send state (node : Node.t) ~dst ~addr kind =
  let msg = { Message.src = node.id; addr; kind } in
  if dst = node.id then begin
    (* local delivery: handled immediately at local handler cost *)
    charge node state.State.config.costs.sync_local;
    handle state node msg
  end
  else begin
    (* the network's send tap reports the message to the
       observability subsystem *)
    let now = Pipeline.cycle node.pipe in
    let done_at =
      Shasta_network.Network.send state.State.net ~src:node.id ~dst ~now
        ~payload_longs:(Message.payload_longs msg)
        msg
    in
    charge node (done_at - now)
  end

(* ------------------------------------------------------------------ *)
(* Blocking and waking                                                  *)
(* ------------------------------------------------------------------ *)

and block_on _state (node : Node.t) wait ~k =
  node.status <- Waiting wait;
  if Node.wait_satisfied node then begin
    (match wait with W_sync -> node.sync_signal <- false | _ -> ());
    node.status <- Running;
    k ()
  end
  else begin
    node.on_wake <- k;
    node.wait_started <- Pipeline.cycle node.pipe
  end

and check_wake state (node : Node.t) =
  match node.status with
  | Running | Finished -> ()
  | Waiting w ->
    if Node.wait_satisfied node then begin
      (match w with W_sync -> node.sync_signal <- false | _ -> ());
      let stalled = Pipeline.cycle node.pipe - node.wait_started in
      node.counters.stall_cycles <- node.counters.stall_cycles + stalled;
      emit state node
        (Ev.Stall
           { reason =
               (match w with
                | Node.W_blocks _ -> "miss"
                | Node.W_release -> "release"
                | Node.W_sync -> "sync");
             started = node.wait_started;
             cycles = stalled });
      node.status <- Running;
      let k = node.on_wake in
      node.on_wake <- (fun () -> ());
      k ();
      (* k may have blocked again; if so the new wait stands *)
      ignore state
    end

(* ------------------------------------------------------------------ *)
(* Invalidation-ack bookkeeping                                         *)
(* ------------------------------------------------------------------ *)

and finish_acks state (node : Node.t) block =
  Hashtbl.remove node.acks block;
  node.unacked <- node.unacked - 1;
  flush_waiters state node block

and register_acks state (node : Node.t) block expected =
  match Hashtbl.find_opt node.acks block with
  | None ->
    if expected > 0 then begin
      Hashtbl.add node.acks block
        { Node.acks_got = 0; acks_expected = Some expected };
      node.unacked <- node.unacked + 1
    end
    else flush_waiters state node block
  | Some a ->
    a.acks_expected <- Some expected;
    if a.acks_got >= expected then finish_acks state node block

and recv_inv_ack state (node : Node.t) block =
  let a =
    match Hashtbl.find_opt node.acks block with
    | Some a -> a
    | None ->
      let a = { Node.acks_got = 0; acks_expected = None } in
      Hashtbl.add node.acks block a;
      node.unacked <- node.unacked + 1;
      a
  in
  a.acks_got <- a.acks_got + 1;
  match a.acks_expected with
  | Some e when a.acks_got >= e -> finish_acks state node block
  | _ -> ()

(* Service requests that were deferred while the block was pending or
   had outstanding acks. *)
and flush_waiters state (node : Node.t) block =
  if (not (Node.is_pending node block)) && not (Hashtbl.mem node.acks block)
  then
    List.iter (fun msg -> handle state node msg)
      (Node.take_waiters node block)

(* ------------------------------------------------------------------ *)
(* Request issue (requester side)                                       *)
(* ------------------------------------------------------------------ *)

and issue_request state (node : Node.t) block kind counter =
  charge node state.State.config.costs.request_issue;
  counter ();
  let home = Directory.home_of state.State.dir block in
  send state node ~dst:home ~addr:block kind

and start_pending state (node : Node.t) block (pkind : Node.pending_kind) =
  let p =
    { Node.pkind; written = Hashtbl.create 8; invalidated = false }
  in
  Hashtbl.replace node.pending block p;
  Tables.make_pending node ~ls:(ls state) ~addr:block
    ~len:(block_len state block)
    ~shared:(pkind = Node.P_upgrade);
  p

(* ------------------------------------------------------------------ *)
(* Home-side handlers                                                   *)
(* ------------------------------------------------------------------ *)

and home_read state (home_node : Node.t) ~requester ~block =
  let e = Directory.entry state.State.dir block in
  let h = home_node.id in
  let home_valid = requester <> h && (Directory.is_sharer e h || e.owner = h) in
  Directory.add_sharer e requester;
  if home_valid then
    (* home has a valid copy: serve it directly (the paper's
       optimization that avoids forwarding), going through the owner
       path so the home's own copy is downgraded — and deferred while
       it is pending or awaiting invalidation acks *)
    owner_fwd_read state home_node ~requester ~block
  else
    send state home_node ~dst:e.owner ~addr:block (Coh (Fwd_read { requester }))

and home_readex state (home_node : Node.t) ~requester ~block =
  let e = Directory.entry state.State.dir block in
  let h = home_node.id in
  let o = e.owner in
  if o = requester then begin
    (* requester already owns the block (it held it shared after a
       downgrade): grant exclusivity like an upgrade *)
    let others =
      List.filter (fun s -> s <> requester)
        (Directory.sharer_list e ~nprocs:state.State.config.nprocs)
    in
    e.sharers <- 1 lsl requester;
    List.iter
      (fun s -> send state home_node ~dst:s ~addr:block (Coh (Inv { requester })))
      others;
    send state home_node ~dst:requester ~addr:block
      (Coh (Upgrade_ack { acks = List.length others }))
  end
  else begin
    let others =
      List.filter
        (fun s -> s <> requester && s <> o)
        (Directory.sharer_list e ~nprocs:state.State.config.nprocs)
    in
    let nacks = List.length others in
    e.owner <- requester;
    e.sharers <- 1 lsl requester;
    List.iter
      (fun s -> send state home_node ~dst:s ~addr:block (Coh (Inv { requester })))
      others;
    if o = h then
      (* home is the owner: serve the data duty locally through the
         owner path (which defers if the home's copy is pending) *)
      owner_fwd_readex state home_node ~requester ~block ~acks:nacks
    else
      send state home_node ~dst:o ~addr:block
        (Coh (Fwd_readex { requester; acks = nacks }))
  end

and home_upgrade state (home_node : Node.t) ~requester ~block =
  let e = Directory.entry state.State.dir block in
  if Directory.is_sharer e requester then begin
    let others =
      List.filter (fun s -> s <> requester)
        (Directory.sharer_list e ~nprocs:state.State.config.nprocs)
    in
    e.owner <- requester;
    e.sharers <- 1 lsl requester;
    List.iter
      (fun s -> send state home_node ~dst:s ~addr:block (Coh (Inv { requester })))
      others;
    send state home_node ~dst:requester ~addr:block
      (Coh (Upgrade_ack { acks = List.length others }))
  end
  else
    (* an invalidation raced ahead of the upgrade: the requester's copy
       is gone, so convert to a read-exclusive (Section 2.1) *)
    home_readex state home_node ~requester ~block

(* ------------------------------------------------------------------ *)
(* Owner-side handlers                                                  *)
(* ------------------------------------------------------------------ *)

(* The directory's owner guarantees to service a forwarded request
   (Section 2.1).  It may defer only while it genuinely has no usable
   copy: a pending read/read-exclusive (data still in flight), an
   upgrade that has already been invalidated under it, or outstanding
   invalidation acknowledgements ("requests from other processors are
   delayed until all pending invalidations are acknowledged").  An owner
   with a plain pending upgrade holds valid data and must serve — its
   upgrade is then converted to a read-exclusive by the home. *)
and owner_busy (node : Node.t) block =
  Hashtbl.mem node.acks block
  ||
  match Hashtbl.find_opt node.pending block with
  | None -> false
  | Some p -> not (p.pkind = Node.P_upgrade && not p.invalidated)

and owner_fwd_read state (node : Node.t) ~requester ~block =
  if owner_busy node block then
    Node.enqueue_waiter node block
      { Message.src = node.id; addr = block; kind = Coh (Fwd_read { requester }) }
  else begin
    let len = block_len state block in
    let data = Tables.read_block node ~addr:block ~len in
    emit state node (Ev.Downgraded { addr = block; requester });
    send state node ~dst:requester ~addr:block
      (Coh (Data_reply { data; exclusive = false; acks = 0 }));
    if node.in_batch then node.deferred <- D_downgrade block :: node.deferred
    else if not (Node.is_pending node block) then
      (* a pending upgrade keeps its pending-shared state bytes *)
      Tables.make_shared node ~ls:(ls state) ~addr:block ~len
  end

and owner_fwd_readex state (node : Node.t) ~requester ~block ~acks =
  if owner_busy node block then
    Node.enqueue_waiter node block
      { Message.src = node.id; addr = block;
        kind = Coh (Fwd_readex { requester; acks }) }
  else begin
    let len = block_len state block in
    let data = Tables.read_block node ~addr:block ~len in
    send state node ~dst:requester ~addr:block
      (Coh (Data_reply { data; exclusive = true; acks }));
    if node.in_batch then node.deferred <- D_inv block :: node.deferred
    else
      match Hashtbl.find_opt node.pending block with
      | Some p ->
        (* our own upgrade is in flight and will be converted by the
           home; treat this like an invalidation racing it *)
        p.invalidated <- true;
        Tables.flag_range node ~addr:block ~len
      | None -> Tables.make_invalid node ~ls:(ls state) ~addr:block ~len
  end

(* ------------------------------------------------------------------ *)
(* Requester-side completions                                           *)
(* ------------------------------------------------------------------ *)

and apply_inv state (node : Node.t) ~block ~requester =
  (* acknowledge straight to the requester, immediately; the flag writes
     may be deferred but the ack is not *)
  emit state node (Ev.Invalidated { addr = block; requester });
  send state node ~dst:requester ~addr:block (Coh Inv_ack);
  let len = block_len state block in
  if node.in_batch then node.deferred <- D_inv block :: node.deferred
  else if Tables.get_state node ~ls:(ls state) block = Layout.st_exclusive
  then
    (* stale invalidation: it targeted a sharer copy we have since
       replaced by exclusive ownership (home never invalidates the
       owner); nothing to do beyond the ack *)
    ()
  else
    match Hashtbl.find_opt node.pending block with
    | Some p ->
      (* flag the whole block: the node's own pending stores survive in
         the written map and are overlaid at merge time; full flagging
         keeps inline (and batch endpoint) checks sound *)
      p.invalidated <- true;
      Tables.flag_range node ~addr:block ~len
    | None -> Tables.make_invalid node ~ls:(ls state) ~addr:block ~len

and complete_data_reply state (node : Node.t) ~block ~data ~exclusive ~acks =
  match Hashtbl.find_opt node.pending block with
  | None ->
    (* replies are only sent in response to our requests *)
    invalid_arg
      (Printf.sprintf "Engine: stray data reply at node %d block 0x%x"
         node.id block)
  | Some p ->
    let len = block_len state block in
    Tables.merge_block_data node ~addr:block ~written:p.written data;
    Hashtbl.remove node.pending block;
    (* In every case the node's own stalled access must consume the
       reply (check_wake runs the refill) BEFORE deferred forwarded
       requests are serviced: servicing them first could invalidate the
       block again and hand the stalled load flagged memory. *)
    if exclusive then begin
      Tables.make_exclusive node ~ls:(ls state) ~addr:block ~len;
      (* any deferred invalidation of this block predates our ownership *)
      node.deferred <-
        List.filter (function Node.D_inv b -> b <> block | _ -> true)
          node.deferred;
      check_wake state node;
      register_acks state node block acks
    end
    else if p.invalidated then begin
      (* late invalidation: let the stalled load consume the value, then
         apply the invalidation *)
      Tables.make_shared node ~ls:(ls state) ~addr:block ~len;
      check_wake state node;
      Tables.make_invalid node ~ls:(ls state) ~addr:block ~len;
      flush_waiters state node block
    end
    else begin
      Tables.make_shared node ~ls:(ls state) ~addr:block ~len;
      check_wake state node;
      flush_waiters state node block
    end

and complete_upgrade_ack state (node : Node.t) ~block ~acks =
  match Hashtbl.find_opt node.pending block with
  | None ->
    invalid_arg
      (Printf.sprintf "Engine: stray upgrade ack at node %d block 0x%x"
         node.id block)
  | Some _ ->
    let len = block_len state block in
    Hashtbl.remove node.pending block;
    Tables.make_exclusive node ~ls:(ls state) ~addr:block ~len;
    check_wake state node;
    register_acks state node block acks

(* ------------------------------------------------------------------ *)
(* Synchronization                                                      *)
(* ------------------------------------------------------------------ *)

and sync_home state id = id mod state.State.config.nprocs

and grant_lock state (home_node : Node.t) ~to_ ~id =
  if to_ = home_node.id then begin
    home_node.sync_signal <- true;
    check_wake state home_node
  end
  else send state home_node ~dst:to_ ~addr:id (Sync Lock_grant)

and home_lock_req state (home_node : Node.t) ~requester ~id =
  let l = State.lock_state state id in
  (match l.holder with
   | None ->
     l.holder <- Some requester;
     grant_lock state home_node ~to_:requester ~id
   | Some _ -> Queue.push requester l.lq)

and home_unlock state (home_node : Node.t) ~id =
  let l = State.lock_state state id in
  (match Queue.take_opt l.lq with
   | Some next ->
     l.holder <- Some next;
     grant_lock state home_node ~to_:next ~id
   | None -> l.holder <- None)

and home_barrier_arrive state (master : Node.t) =
  state.State.barrier_arrived <- state.State.barrier_arrived + 1;
  if state.State.barrier_arrived = state.State.config.nprocs then begin
    state.State.barrier_arrived <- 0;
    Array.iter
      (fun (n : Node.t) ->
        if n.id = master.id then begin
          n.sync_signal <- true;
          check_wake state n
        end
        else send state master ~dst:n.id ~addr:0 (Sync Barrier_release))
      state.State.nodes
  end

and wake_flag_waiter state (home_node : Node.t) ~to_ ~id =
  if to_ = home_node.id then begin
    home_node.sync_signal <- true;
    check_wake state home_node
  end
  else send state home_node ~dst:to_ ~addr:id (Sync Flag_wake)

and home_flag_set state (home_node : Node.t) ~id =
  let f = State.flag_state state id in
  f.fset <- true;
  Queue.iter (fun w -> wake_flag_waiter state home_node ~to_:w ~id) f.fwaiters;
  Queue.clear f.fwaiters

and home_flag_wait state (home_node : Node.t) ~requester ~id =
  let f = State.flag_state state id in
  if f.fset then wake_flag_waiter state home_node ~to_:requester ~id
  else Queue.push requester f.fwaiters

(* ------------------------------------------------------------------ *)
(* Message dispatch                                                     *)
(* ------------------------------------------------------------------ *)

and handle state (node : Node.t) (msg : Message.t) =
  node.counters.msgs_handled <- node.counters.msgs_handled + 1;
  charge node state.State.config.costs.message_handle;
  let block = msg.addr in
  (match msg.kind with
   | Coh Read_req -> home_read state node ~requester:msg.src ~block
   | Coh Readex_req -> home_readex state node ~requester:msg.src ~block
   | Coh Upgrade_req -> home_upgrade state node ~requester:msg.src ~block
   | Coh (Fwd_read { requester }) -> owner_fwd_read state node ~requester ~block
   | Coh (Fwd_readex { requester; acks }) ->
     owner_fwd_readex state node ~requester ~block ~acks
   | Coh (Data_reply { data; exclusive; acks }) ->
     complete_data_reply state node ~block ~data ~exclusive ~acks
   | Coh (Upgrade_ack { acks }) -> complete_upgrade_ack state node ~block ~acks
   | Coh (Inv { requester }) -> apply_inv state node ~block ~requester
   | Coh Inv_ack -> recv_inv_ack state node block
   | Sync Lock_req -> home_lock_req state node ~requester:msg.src ~id:msg.addr
   | Sync Lock_grant ->
     node.sync_signal <- true
   | Sync Unlock_msg -> home_unlock state node ~id:msg.addr
   | Sync Barrier_arrive -> home_barrier_arrive state node
   | Sync Barrier_release -> node.sync_signal <- true
   | Sync Flag_set_msg -> home_flag_set state node ~id:msg.addr
   | Sync Flag_wait_req ->
     home_flag_wait state node ~requester:msg.src ~id:msg.addr
   | Sync Flag_wake -> node.sync_signal <- true);
  check_wake state node

(* Drain every message that has already arrived for [node]. *)
let rec drain state (node : Node.t) =
  let now = Pipeline.cycle node.pipe in
  match Shasta_network.Network.recv state.State.net ~dst:node.id ~now with
  | Some (_, msg) ->
    charge node state.State.config.net_profile.recv_overhead;
    handle state node msg;
    drain state node
  | None -> ()

(* Deliver the next message even if it is in the future (used by the
   scheduler for blocked nodes). *)
let deliver_next state (node : Node.t) =
  match
    Shasta_network.Network.next_arrival state.State.net ~dst:node.id
  with
  | None -> false
  | Some arrival ->
    Pipeline.advance_to node.pipe arrival;
    (match
       Shasta_network.Network.recv state.State.net ~dst:node.id
         ~now:(Pipeline.cycle node.pipe)
     with
     | Some (_, msg) ->
       charge node state.State.config.net_profile.recv_overhead;
       handle state node msg
     | None -> assert false);
    true

(* ------------------------------------------------------------------ *)
(* Deferred invalidations (Section 4.3)                                 *)
(* ------------------------------------------------------------------ *)

(* Longwords of batched stores falling inside [block], with their
   current (just-stored) memory values. *)
let batch_written (node : Node.t) ~block ~len =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (addr, bytes) ->
      if addr + bytes > block && addr < block + len then begin
        let first = (max addr block) land lnot 3 in
        let last = min (addr + bytes) (block + len) - 1 in
        let n = (last - first) / 4 in
        for k = 0 to n do
          let a = first + (4 * k) in
          Hashtbl.replace tbl a (Memory.read_long_u node.mem a)
        done
      end)
    node.batch_stores;
  tbl

let apply_deferred state (node : Node.t) =
  let ds = node.deferred in
  node.deferred <- [];
  (* several forwarded requests may have been served during one batch;
     fold them to one action per block (an invalidation dominates a
     downgrade) so that a synchronously completed reissue cannot be
     followed by a duplicate request for the same block *)
  let strongest = Hashtbl.create 8 in
  List.iter
    (fun d ->
      let block =
        match d with Node.D_inv b | Node.D_downgrade b -> b
      in
      match (Hashtbl.find_opt strongest block, d) with
      | Some (Node.D_inv _), _ -> ()
      | _, d -> Hashtbl.replace strongest block d)
    ds;
  let ds = Hashtbl.fold (fun _ d acc -> d :: acc) strongest [] in
  List.iter
    (fun d ->
      match d with
      | Node.D_inv block ->
        let len = block_len state block in
        let written = batch_written node ~block ~len in
        (match Hashtbl.find_opt node.pending block with
         | Some p ->
           (* a request is already outstanding: fold the invalidation
              into it rather than issuing a duplicate *)
           Hashtbl.iter (fun a v -> Hashtbl.replace p.written a v) written;
           p.invalidated <- true;
           Tables.flag_range node ~addr:block ~len
         | None ->
        if Hashtbl.length written > 0 then begin
          (* the batch stored into a block invalidated under it: keep the
             stored longwords, reissue the store miss (Section 4.3) *)
          node.counters.store_reissues <- node.counters.store_reissues + 1;
          emit state node (Ev.Store_reissue { addr = block });
          Tables.flag_range node ~addr:block ~len;
          let p = start_pending state node block Node.P_readex in
          Hashtbl.iter (fun a v -> Hashtbl.replace p.written a v) written;
          issue_request state node block (Coh Readex_req) (fun () ->
            node.counters.write_misses <- node.counters.write_misses + 1;
            emit state node (Ev.Miss { kind = Ev.Write; addr = block }))
        end
        else Tables.make_invalid node ~ls:(ls state) ~addr:block ~len)
      | Node.D_downgrade block ->
        let len = block_len state block in
        let written = batch_written node ~block ~len in
        if Node.is_pending node block then
          (* an outstanding request already covers this block *)
          ()
        else if Hashtbl.length written > 0 then begin
          node.counters.store_reissues <- node.counters.store_reissues + 1;
          emit state node (Ev.Store_reissue { addr = block });
          let p = start_pending state node block Node.P_upgrade in
          Hashtbl.iter (fun a v -> Hashtbl.replace p.written a v) written;
          issue_request state node block (Coh Upgrade_req) (fun () ->
            node.counters.upgrade_misses <- node.counters.upgrade_misses + 1;
            emit state node (Ev.Miss { kind = Ev.Upgrade; addr = block }))
        end
        else
          Tables.make_shared node ~ls:(ls state) ~addr:block ~len)
    (List.rev ds)



(* ------------------------------------------------------------------ *)
(* Inline miss handlers (called from the interpreter pseudo-ops)        *)
(* ------------------------------------------------------------------ *)

let enter_handler state (node : Node.t) =
  charge node state.State.config.costs.handler_entry;
  drain state node

(* Load miss: the flag matched (or the basic check failed).  False
   misses return immediately after the state lookup (Section 3.2). *)
let load_miss state (node : Node.t) ~addr ~refill =
  enter_handler state node;
  let block = block_of state addr in
  let st = Tables.get_state node ~ls:(ls state) addr in
  if st = Layout.st_exclusive || st = Layout.st_shared then begin
    node.counters.false_misses <- node.counters.false_misses + 1;
    emit state node (Ev.False_miss { addr });
    charge node state.State.config.costs.false_miss;
    refill ()
  end
  else if st = Layout.st_pending_shared then begin
    (* pending-shared loads proceed — the node has a copy — unless an
       invalidation overtook the upgrade and flagged this longword, in
       which case the (converted) data reply must be awaited *)
    match Hashtbl.find_opt node.pending block with
    | Some p
      when p.invalidated && not (Hashtbl.mem p.written (addr land lnot 3)) ->
      block_on state node (W_blocks [ block ]) ~k:refill
    | _ ->
      node.counters.false_misses <- node.counters.false_misses + 1;
      emit state node (Ev.False_miss { addr });
      charge node state.State.config.costs.false_miss;
      refill ()
  end
  else if st = Layout.st_pending_invalid then begin
    match Hashtbl.find_opt node.pending block with
    | Some p
      when (not p.invalidated) && Hashtbl.mem p.written (addr land lnot 3) ->
      (* load from a longword this node itself stored while pending:
         valid section of the line (Section 4.1) *)
      refill ()
    | _ -> block_on state node (W_blocks [ block ]) ~k:refill
  end
  else begin
    node.counters.read_misses <- node.counters.read_misses + 1;
    emit state node (Ev.Miss { kind = Ev.Read; addr });
    ignore (start_pending state node block Node.P_read);
    issue_request state node block (Coh Read_req) (fun () -> ());
    block_on state node (W_blocks [ block ]) ~k:refill
  end

(* Store miss.  With [store_done] (the scheduled check of Section 3.1),
   the store has already written memory and the handler is non-stalling
   under release consistency; without it, the handler stalls until the
   line is exclusive and the store executes afterwards. *)
let rec store_miss state (node : Node.t) ~addr ~bytes ~store_done =
  (* The store has already written memory (scheduled checks execute it
     before the handler, Section 3.1).  Messages drained below may
     invalidate the block and flag the just-stored longwords before we
     record them, so capture the store's value now and re-apply it after
     the drain: the store is the newest write to these longwords. *)
  let saved =
    if store_done then
      Some (Memory.blit_out node.mem ~addr ~nlongs:(bytes / 4))
    else None
  in
  enter_handler state node;
  (match saved with
   | Some data ->
     Memory.blit_in node.mem ~addr data;
     Cache.dinvalidate node.caches ~addr ~len:bytes
   | None -> ());
  let block = block_of state addr in
  let st = Tables.get_state node ~ls:(ls state) addr in
  if st = Layout.st_exclusive then begin
    (* resolved while the message queue drained: false miss *)
    node.counters.false_misses <- node.counters.false_misses + 1;
    emit state node (Ev.False_miss { addr });
    charge node state.State.config.costs.false_miss
  end
  else if st = Layout.st_pending_invalid || st = Layout.st_pending_shared
  then begin
    match Hashtbl.find_opt node.pending block with
    | Some p ->
      if store_done then Node.record_written p ~mem:node.mem ~addr ~bytes
      else
        block_on state node (W_blocks [ block ]) ~k:(fun () ->
          store_miss state node ~addr ~bytes ~store_done)
    | None ->
      (* the pending state byte was stale; re-read *)
      store_miss state node ~addr ~bytes ~store_done
  end
  else begin
    let sc = state.State.config.consistency = State.Sequential in
    (if st = Layout.st_shared then begin
       node.counters.upgrade_misses <- node.counters.upgrade_misses + 1;
       emit state node (Ev.Miss { kind = Ev.Upgrade; addr });
       let p = start_pending state node block Node.P_upgrade in
       if store_done then Node.record_written p ~mem:node.mem ~addr ~bytes;
       issue_request state node block (Coh Upgrade_req) (fun () -> ())
     end
     else begin
       node.counters.write_misses <- node.counters.write_misses + 1;
       emit state node (Ev.Miss { kind = Ev.Write; addr });
       let p = start_pending state node block Node.P_readex in
       if store_done then Node.record_written p ~mem:node.mem ~addr ~bytes;
       issue_request state node block (Coh Readex_req) (fun () -> ())
     end);
    if sc then
      (* sequential consistency: the store completes — ownership AND all
         invalidation acknowledgements — before execution continues *)
      block_on state node (W_blocks [ block ]) ~k:(fun () ->
        block_on state node W_release ~k:(fun () -> ()))
    else if not store_done then
      block_on state node (W_blocks [ block ]) ~k:(fun () -> ())
  end

(* Batch miss (Section 4.3): issue requests for every block the batch
   ranges touch, then wait for the read and read-exclusive replies only
   (not for invalidation acknowledgements). *)
let batch_miss state (node : Node.t) ~nranges ~accesses =
  enter_handler state node;
  node.counters.batch_misses <- node.counters.batch_misses + 1;
  charge node (state.State.config.costs.batch_record * nranges);
  node.in_batch <- true;
  node.batch_stores <-
    List.filter_map
      (fun (addr, bytes, is_store) ->
        if is_store then Some (addr, bytes) else None)
      accesses;
  (* per-block need: exclusive if any store touches the block *)
  let blocks = Hashtbl.create 8 in
  List.iter
    (fun (addr, bytes, is_store) ->
      let rec cover a =
        if a < addr + bytes then begin
          let b = block_of state a in
          let prev =
            match Hashtbl.find_opt blocks b with Some s -> s | None -> false
          in
          Hashtbl.replace blocks b (prev || is_store);
          cover (b + block_len state b)
        end
      in
      cover addr)
    accesses;
  let waits = ref [] in
  Hashtbl.iter
    (fun block need_excl ->
      let st = Tables.get_state node ~ls:(ls state) block in
      let pending_invalidated =
        match Hashtbl.find_opt node.pending block with
        | Some p -> p.invalidated
        | None -> false
      in
      if need_excl then begin
        if st = Layout.st_exclusive then ()
        else if st = Layout.st_pending_invalid then waits := block :: !waits
        else if st = Layout.st_pending_shared then begin
          if pending_invalidated then waits := block :: !waits
        end
        else if st = Layout.st_shared then begin
          node.counters.upgrade_misses <- node.counters.upgrade_misses + 1;
          emit state node (Ev.Miss { kind = Ev.Upgrade; addr = block });
          ignore (start_pending state node block Node.P_upgrade);
          issue_request state node block (Coh Upgrade_req) (fun () -> ())
        end
        else begin
          node.counters.write_misses <- node.counters.write_misses + 1;
          emit state node (Ev.Miss { kind = Ev.Write; addr = block });
          ignore (start_pending state node block Node.P_readex);
          issue_request state node block (Coh Readex_req) (fun () -> ());
          waits := block :: !waits
        end
      end
      else begin
        if st = Layout.st_exclusive || st = Layout.st_shared then ()
        else if st = Layout.st_pending_shared then begin
          if pending_invalidated then waits := block :: !waits
        end
        else if st = Layout.st_pending_invalid then waits := block :: !waits
        else begin
          node.counters.read_misses <- node.counters.read_misses + 1;
          emit state node (Ev.Miss { kind = Ev.Read; addr = block });
          ignore (start_pending state node block Node.P_read);
          issue_request state node block (Coh Read_req) (fun () -> ());
          waits := block :: !waits
        end
      end)
    blocks;
  emit state node
    (Ev.Batch_run { nranges; waited = List.length !waits });
  if state.State.config.consistency = State.Sequential then begin
    (* Section 4.3: under SC the handler waits for ALL requests,
       including exclusive ones and their acknowledgements *)
    let all = Hashtbl.fold (fun b _ acc -> b :: acc) blocks [] in
    block_on state node (W_blocks all) ~k:(fun () ->
      block_on state node W_release ~k:(fun () -> ()))
  end
  else if !waits <> [] then
    block_on state node (W_blocks !waits) ~k:(fun () -> ())

(* Batch end: transfer batched store locations into still-pending
   blocks, then apply deferred invalidations/downgrades with store
   reissue (Section 4.3). *)
let batch_end state (node : Node.t) =
  if node.in_batch then begin
    List.iter
      (fun (addr, bytes) ->
        match Hashtbl.find_opt node.pending (block_of state addr) with
        | Some p -> Node.record_written p ~mem:node.mem ~addr ~bytes
        | None -> ())
      node.batch_stores;
    node.in_batch <- false;
    apply_deferred state node;
    node.batch_stores <- []
  end

(* Poll (Section 2.2): the inline three-instruction sequence; when the
   "message arrived" location is set, drain and handle. *)
let poll state (node : Node.t) =
  node.counters.polls <- node.counters.polls + 1;
  (* polls are far too frequent to stream as events; registry only *)
  Obs.incr state.State.config.obs ~node:node.id Obs.c_polls;
  charge node state.State.config.costs.poll_cycles;
  drain state node

(* ------------------------------------------------------------------ *)
(* Synchronization entry points (Rt_call)                               *)
(* ------------------------------------------------------------------ *)

let rt_lock state (node : Node.t) id =
  enter_handler state node;
  node.counters.lock_acquires <- node.counters.lock_acquires + 1;
  let acquired () = emit state node (Ev.Lock_acquired { id }) in
  let h = sync_home state id in
  if h = node.id then begin
    charge node state.State.config.costs.sync_local;
    let l = State.lock_state state id in
    match l.holder with
    | None ->
      l.holder <- Some node.id;
      acquired ()
    | Some _ ->
      Queue.push node.id l.lq;
      block_on state node W_sync ~k:acquired
  end
  else begin
    send state node ~dst:h ~addr:id (Sync Lock_req);
    block_on state node W_sync ~k:acquired
  end

let rt_unlock state (node : Node.t) id =
  enter_handler state node;
  let h = sync_home state id in
  (* release semantics: wait for outstanding stores and invalidations *)
  block_on state node W_release ~k:(fun () ->
    if h = node.id then begin
      charge node state.State.config.costs.sync_local;
      home_unlock state node ~id
    end
    else send state node ~dst:h ~addr:id (Sync Unlock_msg))

let rt_barrier state (node : Node.t) =
  enter_handler state node;
  block_on state node W_release ~k:(fun () ->
    let master = state.State.nodes.(0) in
    let passed () =
      node.counters.barriers_passed <- node.counters.barriers_passed + 1;
      emit state node Ev.Barrier_passed
    in
    if node.id = 0 then begin
      charge node state.State.config.costs.sync_local;
      block_on state node W_sync ~k:passed;
      home_barrier_arrive state master
    end
    else begin
      send state node ~dst:0 ~addr:0 (Sync Barrier_arrive);
      block_on state node W_sync ~k:passed
    end)

let rt_flag_set state (node : Node.t) id =
  enter_handler state node;
  block_on state node W_release ~k:(fun () ->
    emit state node (Ev.Flag_raised { id });
    let h = sync_home state id in
    if h = node.id then begin
      charge node state.State.config.costs.sync_local;
      home_flag_set state node ~id
    end
    else send state node ~dst:h ~addr:id (Sync Flag_set_msg))

let rt_flag_wait state (node : Node.t) id =
  enter_handler state node;
  let woken () = emit state node (Ev.Flag_woken { id }) in
  let h = sync_home state id in
  if h = node.id then begin
    charge node state.State.config.costs.sync_local;
    let f = State.flag_state state id in
    if not f.fset then begin
      Queue.push node.id f.fwaiters;
      block_on state node W_sync ~k:woken
    end
    else woken ()
  end
  else begin
    send state node ~dst:h ~addr:id (Sync Flag_wait_req);
    block_on state node W_sync ~k:woken
  end
