(* Whole-cluster simulation state.

   The protocol's own state — directory, pending/ack bookkeeping, lock,
   flag and barrier objects — lives in the immutable
   [Shasta_protocol.Transitions.view] held in [proto]; the engine
   threads it through the pure [Transitions.step] and applies the
   returned actions against the machine structures kept here. *)

open Shasta_machine
open Shasta_protocol

type consistency = Release | Sequential

(* Home-assignment policy for freshly allocated shared pages.
   Round_robin is the paper's default (Section 2.1); First_touch homes
   each page at the allocating node; Profiled installs an explicit
   page -> home placement (fed by a profiling pilot run's per-block
   contention tables, see [Api.run_profiled_placement]). *)
type home_policy = Round_robin | First_touch | Profiled

type config = {
  nprocs : int;
  line_shift : int;
  consistency : consistency;
      (* Release: the paper's aggressive RC protocol (non-stalling
         stores, releases wait for acks).  Sequential: stores and batch
         misses stall until ownership and all invalidation
         acknowledgements arrive (Section 4.3's comparison point). *)
  pipe_config : Pipeline.config;
  net_profile : Shasta_network.Network.profile;
  net_faults : Shasta_network.Network.faults option;
      (* None: the paper's reliable interconnect.  Some f: a faulty
         wire under the reliable-delivery sublayer (shasta_run
         --net-faults) *)
  node_faults : Nodefaults.t option;
      (* None (or a spec with no events): no crash injection, and the
         run is byte-identical to one without the layer.  Some s: halt
         and restart nodes per the schedule (shasta_run --node-faults) *)
  costs : Costs.t;
  granularity_threshold : int; (* malloc heuristic cutoff, Section 4.2 *)
  fixed_block : int option; (* force one block size (ablation runs) *)
  obs : Shasta_obs.Obs.t;
      (* the observability subsystem every layer reports into: typed
         event stream (when sinks are attached) plus the always-on
         metrics registry *)
  progress : int option;
      (* Some n: emit a heartbeat (obs event + stderr line) every n
         million simulated cycles so long runs are observably alive.
         None (the default) emits nothing — traces stay byte-identical
         to a heartbeat-free build *)
  dir_mode : Nodeset.mode;
      (* directory organization for every protocol node set (full-map
         default; limited-pointer/coarse-vector for nprocs > 61) *)
  home_policy : home_policy;
  placement : (int * int) list;
      (* explicit (page, home) overrides installed before the run —
         the Profiled policy's input.  Empty under the default config *)
  scalable_sync : bool;
      (* MCS-style queue locks + combining-tree barrier instead of the
         centralized home-arbited objects *)
  migrate : bool; (* hot-page directory-home migration *)
}

let default_config ?(nprocs = 1) ?(line_shift = 6)
    ?(consistency = Release) ?(pipe_config = Pipeline.alpha_21064a)
    ?(net_profile = Shasta_network.Network.memory_channel) ?net_faults
    ?node_faults ?(costs = Costs.default) ?(granularity_threshold = 1024)
    ?fixed_block ?obs ?progress ?(dir_mode = Nodeset.Full)
    ?(home_policy = Round_robin) ?(placement = []) ?(scalable_sync = false)
    ?(migrate = false) () =
  (* fail loudly instead of silently wrapping masks past the int width:
     every nprocs must be representable by the active directory mode *)
  (match Nodeset.validate dir_mode ~nprocs with
   | Ok () -> ()
   | Error e -> invalid_arg ("State.default_config: " ^ e));
  let obs =
    match obs with Some o -> o | None -> Shasta_obs.Obs.create ~nprocs ()
  in
  { nprocs; line_shift; consistency; pipe_config; net_profile; net_faults;
    node_faults; costs; granularity_threshold; fixed_block; obs; progress;
    dir_mode; home_policy; placement; scalable_sync; migrate }

(* Home pages are assigned round-robin at this page size (Section 2.1). *)
let page_bytes = 8192

(* A per-block-size allocation pool: shared pages are handed out to one
   block size at a time (Section 4.2's per-page granularity scheme). *)
type pool = { mutable pool_page : int; mutable pool_used : int }

type t = {
  config : config;
  image : Image.t;
  nodes : Node.t array;
  net : Message.t Shasta_network.Network.t;
  gran : Granularity.t;
  tcfg : Transitions.cfg;
  mutable proto : Transitions.view; (* the pure protocol state *)
  mutable shared_next_page : int;
  pools : (int, pool) Hashtbl.t;
  output : Buffer.t;
  (* every allocated shared range, for fork-time initialization *)
  mutable allocations : (int * int) list; (* base, rounded bytes *)
  pid_addr : int; (* static address of the __pid cell *)
  nprocs_addr : int;
  crashed_addr : int;
  (* static address of the __crashed cell (-1 when the program does not
     declare one): a per-node private mask of nodes whose programs have
     died, maintained by the cluster at crash detection so programs can
     account for shards served by a truncated plan *)
  (* deterministic replay: when [record_inputs] is set, every
     (node, input) fed to Transitions.step is logged so the run can be
     reproduced through the pure core alone (shasta_run --replay) *)
  mutable record_inputs : bool;
  mutable inputs_rev : (int * Transitions.input) list;
  (* node-fault injection: schedule entries become (absolute cycle,
     event) once the timed phase starts; the scheduler fires them when
     simulated time reaches them *)
  mutable fault_queue : (int * Nodefaults.event) list;
}

let line_bytes t = 1 lsl t.config.line_shift

(* The shared heap starts a little above 2^39 so that the state/exclusive
   table entries of the first allocations do not all alias cache set 0
   together with the start of the static area — a degenerate
   direct-mapped conflict a real linker/heap layout would not produce. *)
let shared_heap_start = Shasta.Layout.shared_base + 0x10000

let node t i = t.nodes.(i)

let obs t = t.config.obs
