(* Whole-cluster simulation state. *)

open Shasta_machine
open Shasta_protocol

type lock_state = { mutable holder : int option; lq : int Queue.t }
type flag_state = { mutable fset : bool; fwaiters : int Queue.t }

type consistency = Release | Sequential

type config = {
  nprocs : int;
  line_shift : int;
  consistency : consistency;
      (* Release: the paper's aggressive RC protocol (non-stalling
         stores, releases wait for acks).  Sequential: stores and batch
         misses stall until ownership and all invalidation
         acknowledgements arrive (Section 4.3's comparison point). *)
  pipe_config : Pipeline.config;
  net_profile : Shasta_network.Network.profile;
  costs : Costs.t;
  granularity_threshold : int; (* malloc heuristic cutoff, Section 4.2 *)
  fixed_block : int option; (* force one block size (ablation runs) *)
  obs : Shasta_obs.Obs.t;
      (* the observability subsystem every layer reports into: typed
         event stream (when sinks are attached) plus the always-on
         metrics registry *)
}

let default_config ?(nprocs = 1) ?(line_shift = 6)
    ?(consistency = Release) ?(pipe_config = Pipeline.alpha_21064a)
    ?(net_profile = Shasta_network.Network.memory_channel)
    ?(costs = Costs.default) ?(granularity_threshold = 1024) ?fixed_block
    ?obs () =
  let obs =
    match obs with Some o -> o | None -> Shasta_obs.Obs.create ~nprocs ()
  in
  { nprocs; line_shift; consistency; pipe_config; net_profile; costs;
    granularity_threshold; fixed_block; obs }

(* A per-block-size allocation pool: shared pages are handed out to one
   block size at a time (Section 4.2's per-page granularity scheme). *)
type pool = { mutable pool_page : int; mutable pool_used : int }

type t = {
  config : config;
  image : Image.t;
  nodes : Node.t array;
  net : Message.t Shasta_network.Network.t;
  dir : Directory.t;
  gran : Granularity.t;
  locks : (int, lock_state) Hashtbl.t;
  flags : (int, flag_state) Hashtbl.t;
  mutable barrier_arrived : int;
  mutable shared_next_page : int;
  pools : (int, pool) Hashtbl.t;
  output : Buffer.t;
  (* every allocated shared range, for fork-time initialization *)
  mutable allocations : (int * int) list; (* base, rounded bytes *)
  pid_addr : int; (* static address of the __pid cell *)
  nprocs_addr : int;
}

let line_bytes t = 1 lsl t.config.line_shift

(* The shared heap starts a little above 2^39 so that the state/exclusive
   table entries of the first allocations do not all alias cache set 0
   together with the start of the static area — a degenerate
   direct-mapped conflict a real linker/heap layout would not produce. *)
let shared_heap_start = Shasta.Layout.shared_base + 0x10000

let node t i = t.nodes.(i)

let lock_state t id =
  match Hashtbl.find_opt t.locks id with
  | Some l -> l
  | None ->
    let l = { holder = None; lq = Queue.create () } in
    Hashtbl.add t.locks id l;
    l

let flag_state t id =
  match Hashtbl.find_opt t.flags id with
  | Some f -> f
  | None ->
    let f = { fset = false; fwaiters = Queue.create () } in
    Hashtbl.add t.flags id f;
    f

let obs t = t.config.obs
