(* Whole-cluster simulation state.

   The protocol's own state — directory, pending/ack bookkeeping, lock,
   flag and barrier objects — lives in the immutable
   [Shasta_protocol.Transitions.view] held in [proto]; the engine
   threads it through the pure [Transitions.step] and applies the
   returned actions against the machine structures kept here. *)

open Shasta_machine
open Shasta_protocol

type consistency = Release | Sequential

type home_policy = Round_robin | First_touch | Profiled
(** Home assignment for shared pages: the paper's round-robin default,
    first-touch (home = allocating node), or explicit profile-guided
    placement via [placement]. *)

type config = {
  nprocs : int;
  line_shift : int;
  consistency : consistency;
  pipe_config : Pipeline.config;
  net_profile : Shasta_network.Network.profile;
  net_faults : Shasta_network.Network.faults option;
  node_faults : Nodefaults.t option;
      (* None (or a spec with no events): no crash injection, and the
         run is byte-identical to one without the layer.  Some s: halt
         and restart nodes per the schedule (shasta_run --node-faults) *)
  costs : Costs.t;
  granularity_threshold : int; (* malloc heuristic cutoff, Section 4.2 *)
  fixed_block : int option; (* force one block size (ablation runs) *)
  obs : Shasta_obs.Obs.t;
  progress : int option;
      (* Some n: heartbeat (obs event + stderr line) every n million
         simulated cycles; None emits nothing *)
  dir_mode : Nodeset.mode;
      (* directory organization for every protocol node set *)
  home_policy : home_policy;
  placement : (int * int) list; (* explicit (page, home) overrides *)
  scalable_sync : bool; (* queue locks + combining-tree barrier *)
  migrate : bool; (* hot-page directory-home migration *)
}

val default_config :
  ?nprocs:int ->
  ?line_shift:int ->
  ?consistency:consistency ->
  ?pipe_config:Pipeline.config ->
  ?net_profile:Shasta_network.Network.profile ->
  ?net_faults:Shasta_network.Network.faults ->
  ?node_faults:Nodefaults.t ->
  ?costs:Costs.t ->
  ?granularity_threshold:int ->
  ?fixed_block:int ->
  ?obs:Shasta_obs.Obs.t ->
  ?progress:int ->
  ?dir_mode:Nodeset.mode ->
  ?home_policy:home_policy ->
  ?placement:(int * int) list ->
  ?scalable_sync:bool ->
  ?migrate:bool ->
  unit ->
  config
(** Raises [Invalid_argument] when [nprocs] exceeds the directory
    mode's representable capacity (e.g. full-map past the int-mask
    width) — the guard against silent mask wraparound. *)

val page_bytes : int
(** Home pages are assigned round-robin at this page size (Section 2.1). *)

(* A per-block-size allocation pool: shared pages are handed out to one
   block size at a time (Section 4.2's per-page granularity scheme). *)
type pool = { mutable pool_page : int; mutable pool_used : int }

type t = {
  config : config;
  image : Image.t;
  nodes : Node.t array;
  net : Message.t Shasta_network.Network.t;
  gran : Granularity.t;
  tcfg : Transitions.cfg;
  mutable proto : Transitions.view; (* the pure protocol state *)
  mutable shared_next_page : int;
  pools : (int, pool) Hashtbl.t;
  output : Buffer.t;
  mutable allocations : (int * int) list; (* base, rounded bytes *)
  pid_addr : int; (* static address of the __pid cell *)
  nprocs_addr : int;
  crashed_addr : int;
  (* static address of the __crashed cell (-1 when the program does not
     declare one): a per-node private mask of nodes whose programs have
     died, maintained by the cluster at crash detection so programs can
     account for shards served by a truncated plan *)
  (* deterministic replay: when [record_inputs] is set, every
     (node, input) fed to Transitions.step is logged so the run can be
     reproduced through the pure core alone (shasta_run --replay) *)
  mutable record_inputs : bool;
  mutable inputs_rev : (int * Transitions.input) list;
  (* node-fault injection: schedule entries become (absolute cycle,
     event) once the timed phase starts; the scheduler fires them when
     simulated time reaches them *)
  mutable fault_queue : (int * Nodefaults.event) list;
}

val line_bytes : t -> int
val shared_heap_start : int
val node : t -> int -> Node.t
val obs : t -> Shasta_obs.Obs.t
