(** Node crash/recovery schedules (shasta_run --node-faults): a
    deterministic timetable of halt/restart events plus the liveness
    lease horizon the cluster uses to derive detection times. *)

type what =
  | Crash
  | Recover
  | Detect
      (** internal: inserted by the scheduler at the liveness lease
          expiry after a crash fires; never produced by {!of_string} *)

type event = { at : int; node : int; what : what }
(** [at] is a parallel-phase cycle; [node] may be negative inside an
    unresolved spec (a [crash=*@T] wildcard) until {!resolve}. *)

type t = {
  events : event list;  (** sorted by [at] *)
  lease : int;  (** liveness lease horizon in cycles *)
  max_retx : int;  (** 0 = leave the network's own knob alone *)
  seed : int;
}

val default_lease : int
val empty : t

val is_off : t -> bool
(** No scheduled events: the cluster must behave byte-identically to a
    run without --node-faults. *)

val of_string : string -> t option
(** ["none"] is [None]; otherwise a comma-separated spec with keys
    [crash=NODE@CYCLE], [recover=NODE@CYCLE], [lease=CYCLES],
    [max-retx=N], [seed=S].  [NODE] may be [*] (seeded victim pick,
    resolved by {!resolve}).  Raises [Invalid_argument] on a malformed
    spec. *)

val resolve : t -> nprocs:int -> t
(** Bind wildcard victims to concrete nodes (never node 0). *)

val describe : t -> string
