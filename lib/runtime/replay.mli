(* Deterministic replay: fold a run's recorded (node, input) log through
   the pure transition core and verify it reproduces the live run's
   final protocol view exactly (see shasta_run --replay). *)

type result = {
  steps : int;
  invariant_failures : (int * string list) list; (* step index, errors *)
  mismatch : bool; (* replayed view differs from the live one *)
}

val ok : result -> bool

val replay : State.t -> result
(** Requires the run to have executed with [state.record_inputs] set. *)
