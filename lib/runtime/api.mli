(** Convenience front end: MiniC source -> compile -> instrument ->
    simulate — the full pipeline of the paper's Figure 1 in one call. *)

open Shasta_minic

type spec = {
  prog : Ast.prog;
  opts : Shasta.Opts.t option;
      (** [None] runs the original, uninstrumented binary (one
          processor only — there is no coherence without checks) *)
  nprocs : int;
  pipe : Shasta_machine.Pipeline.config;
  net : Shasta_network.Network.profile;
  net_faults : Shasta_network.Network.faults option;
      (** [None] = the paper's reliable wire; [Some f] injects seeded
          drop/dup/reorder/delay beneath the reliable-delivery
          sublayer (the protocol still sees exactly-once FIFO
          delivery, only slower) *)
  node_faults : Nodefaults.t option;
      (** [None] (or an event-free spec) = no crash injection; [Some s]
          halts/restarts nodes per the schedule, with lease-based
          detection, directory reconstruction and lock-lease takeover *)
  fixed_block : int option;  (** force one block size (ablations) *)
  granularity_threshold : int;
  consistency : State.consistency;
  obs : Shasta_obs.Obs.t option;
      (** observability subsystem to report into — attach sinks before
          running; [None] builds a fresh sinkless one (the metrics
          registry is still populated and readable via the result
          state) *)
  progress : int option;
      (** [Some n]: heartbeat (obs event + stderr line) every [n]
          million simulated cycles; [None] (the default) stays silent
          and byte-identical to a heartbeat-free run *)
  dir_mode : Shasta_protocol.Nodeset.mode;
      (** directory organization (full-map / limited-pointer /
          coarse-vector); [nprocs] is validated against its capacity
          when the cluster is built *)
  home_policy : State.home_policy;
  placement : (int * int) list;
      (** explicit (page, home) overrides, installed at cluster
          creation — the input of the Profiled policy (see
          {!run_profiled}) *)
  scalable_sync : bool;
      (** queue locks and combining-tree barriers instead of the
          centralized home-node lock/barrier protocol *)
  migrate : bool;
      (** migrate a page's directory home to a node that keeps missing
          on it remotely *)
}

val default_spec : Ast.prog -> spec
(** One processor, full optimizations, Memory Channel, release
    consistency. *)

type result = {
  phase : Cluster.phase_result;
  inst_stats : Shasta.Instrument.stats option;
  program : Shasta_isa.Program.t;  (** the executable actually run *)
  state : State.t;
      (** the cluster after the run — gives access to the metrics
          registry ([State.obs]), network stats, directory and node
          tables *)
}

val prepare :
  spec -> State.t * Shasta.Instrument.stats option * Shasta_isa.Program.t
(** Compile, instrument and build the cluster without running it —
    for callers that need access to the simulation state (caches,
    directory, node tables). *)

val run : ?init_proc:string -> ?work_proc:string -> spec -> result
(** Run the SPLASH-style two-phase execution: [init_proc] (default
    "appinit") sequentially on node 0, then — after the static area is
    copied to every node, the paper's CREATE-macro behaviour —
    [work_proc] (default "work") on all nodes, which is what gets
    timed. *)

val placement_of_profile :
  Shasta_obs.Profile.t -> nprocs:int -> (int * int) list
(** Derive (page, home) overrides from a profiler's per-block
    contention tables: each contended block votes for its writer nodes
    (readers when nobody wrote) weighted by invalidation traffic, and
    pages whose dominant node differs from the round-robin default get
    an override.  Sorted by page. *)

val run_profiled :
  ?init_proc:string -> ?work_proc:string -> spec ->
  result * (int * int) list
(** The Profiled home policy's two-pass driver: a pilot run (round-robin
    homes, private profiler) discovers contention, then the real run
    executes with the derived placement installed.  Returns the real
    run's result and the placement used. *)

val run_measured :
  ?init_proc:string ->
  ?work_proc:string ->
  ?clock:(unit -> float) ->
  spec ->
  result * Shasta_obs.Perf.report
(** [run] wrapped in a {!Shasta_obs.Perf} measurement: host wall time
    broken into compile / load / run / drain phases plus GC deltas.
    The report is also folded into the result state's metrics registry
    as node-0 [perf.*] counters.  [clock] is injectable for tests. *)

val phase_misses : Cluster.phase_result -> int
(** Total inline-check misses (read + write + upgrade) of the timed
    phase, summed over nodes. *)

val bench_record :
  workload:string ->
  ?opts_name:string ->
  ?perf:Shasta_obs.Perf.report ->
  ?extra:(string * Shasta_obs.Benchjson.num) list ->
  spec ->
  result ->
  Shasta_obs.Benchjson.t
(** One versioned BENCH record for a completed run: simulated metrics
    from the phase result, host metrics from [perf] (omitted — e.g.
    for checked-in baselines — they stay zero and the gate skips
    them). *)
