(* Shared and private memory allocation.

   g_malloc implements the paper's Section 4.2 allocation policy: a
   block size is chosen per object (heuristic or explicit), data is
   placed on pages dedicated to that block size, the per-page block-size
   table is updated everywhere, directory entries are created at the
   home, and the allocating node receives the data in exclusive state
   while every other node's lines are invalid (flagged).

   p_malloc is the private counterpart: per-node, unshared, below the
   shared address range — its pointers exercise the dynamic range check
   exactly like the private heap data of Barnes/Water in the paper. *)

open Shasta_protocol

let page_bytes = 8192

let round_up v m = (v + m - 1) / m * m

let fresh_pages state n =
  let base = state.State.shared_next_page in
  state.State.shared_next_page <- base + (n * page_bytes);
  if state.State.shared_next_page > Shasta.Layout.shared_limit then
    failwith "Alloc: shared heap exhausted";
  base

let pool_for state bsize =
  match Hashtbl.find_opt state.State.pools bsize with
  | Some p -> p
  | None ->
    let p = { State.pool_page = 0; pool_used = page_bytes } in
    Hashtbl.add state.State.pools bsize p;
    p

(* Initialize tables and directory for a newly allocated range. *)
let init_range state ~owner ~base ~len ~bsize =
  let ls = state.State.config.line_shift in
  (* per-page block size, known to all nodes *)
  let first_page = base / page_bytes and last_page = (base + len - 1) / page_bytes in
  for page = first_page to last_page do
    (match Hashtbl.find_opt state.State.gran.Granularity.block_of_page page with
     | Some b when b <> bsize -> failwith "Alloc: page block-size conflict"
     | Some _ -> ()
     | None -> Granularity.set_page_block state.State.gran ~page ~block_bytes:bsize)
  done;
  (* first-touch placement: the freshly allocated pages are homed at
     the allocating node instead of the round-robin default.  Under the
     other policies no override is installed and the protocol view
     stays byte-identical to the seed. *)
  (if state.State.config.home_policy = State.First_touch then
     for page = first_page to last_page do
       Engine.set_home state ~page ~home:owner
     done);
  (* directory entries, owned by the allocator (registered through the
     pure protocol view) *)
  let nblocks = len / bsize in
  let blocks = List.init nblocks (fun k -> base + (k * bsize)) in
  Engine.alloc_blocks state ~owner blocks;
  (* per-node line state *)
  Array.iter
    (fun (n : Node.t) ->
      if n.id = owner then Tables.make_exclusive n ~ls ~addr:base ~len
      else Tables.make_invalid n ~ls ~addr:base ~len)
    state.State.nodes;
  state.State.allocations <- (base, len) :: state.State.allocations

let g_malloc state (node : Node.t) ~size ~bsize_req =
  if size <= 0 then failwith "g_malloc: non-positive size";
  Shasta_machine.Pipeline.stall node.pipe state.State.config.costs.malloc_base;
  let gran = state.State.gran in
  let bsize =
    match state.State.config.fixed_block with
    | Some b -> Granularity.legalize gran b
    | None ->
      if bsize_req > 0 then Granularity.legalize gran bsize_req
      else Granularity.heuristic_block gran ~size
  in
  let rounded = round_up size bsize in
  let base, len =
    if rounded >= page_bytes then begin
      let npages = (rounded + page_bytes - 1) / page_bytes in
      (fresh_pages state npages, npages * page_bytes)
    end
    else begin
      let pool = pool_for state bsize in
      if pool.pool_used + rounded > page_bytes then begin
        pool.pool_page <- fresh_pages state 1;
        pool.pool_used <- 0
      end;
      let a = pool.pool_page + pool.pool_used in
      pool.pool_used <- pool.pool_used + rounded;
      (a, rounded)
    end
  in
  init_range state ~owner:node.id ~base ~len ~bsize;
  base

let p_malloc state (node : Node.t) ~size =
  if size <= 0 then failwith "p_malloc: non-positive size";
  Shasta_machine.Pipeline.stall node.pipe 50;
  let base = (node.priv_brk + 63) land lnot 63 in
  node.priv_brk <- base + size;
  if node.priv_brk > 0x2000_0000 then failwith "p_malloc: private heap exhausted";
  Tables.mark_private_exclusive node ~ls:state.State.config.line_shift
    ~addr:base ~len:size;
  base
