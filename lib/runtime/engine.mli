(* The protocol engine: a thin interpreter over the pure transition core
   ([Shasta_protocol.Transitions]).

   Every entry point builds a [Transitions.input] from what the machine
   observed (state-table bytes, drained messages, stored longwords),
   runs the pure [step], and applies the returned actions in order
   against Pipeline/Network/Memory and the observability subsystem.
   When [state.record_inputs] is set, every input is also logged for
   deterministic replay ([Replay]). *)

(* -- inline miss handlers (called from the interpreter pseudo-ops) -- *)

val load_miss : State.t -> Node.t -> addr:int -> refill:(unit -> unit) -> unit
val store_miss :
  State.t -> Node.t -> addr:int -> bytes:int -> store_done:bool -> unit

val batch_miss :
  State.t -> Node.t -> nranges:int -> accesses:(int * int * bool) list -> unit
(** [accesses] are (address, bytes, is_store) for every access of the
    batch (Section 4.3). *)

val batch_end : State.t -> Node.t -> unit

val poll : State.t -> Node.t -> unit
(** The inline poll (Section 2.2): drain and handle arrived messages. *)

(* -- synchronization entry points (Rt_call) -- *)

val rt_lock : State.t -> Node.t -> int -> unit
val rt_unlock : State.t -> Node.t -> int -> unit
val rt_barrier : State.t -> Node.t -> unit
val rt_flag_set : State.t -> Node.t -> int -> unit
val rt_flag_wait : State.t -> Node.t -> int -> unit

(* -- scheduler and allocator hooks -- *)

val deliver_next : State.t -> Node.t -> bool
(** Advance a blocked/finished node to its next message arrival and
    handle it; [false] if nothing is in flight for it. *)

val alloc_blocks : State.t -> owner:int -> int list -> unit
(** Register freshly allocated blocks with the directory inside the
    pure view, owned exclusively by [owner]. *)

val set_home : State.t -> page:int -> home:int -> unit
(** Install a home-placement override for [page] in the pure view
    (first-touch allocation, profile-guided placement).  Recorded like
    every other input, so --replay reproduces placement. *)

(* -- node fault injection (called by the cluster scheduler) -- *)

val node_crash :
  State.t -> Node.t -> victim:int ->
  lost:(int * Shasta_protocol.Message.t) list -> unit
(** Feed the pure core a detected crash of [victim], run at the
    surviving coordinator node.  [lost] are the victim's purged
    in-flight frames as [(dst, msg)] in global send order. *)

val node_recover : State.t -> Node.t -> victim:int -> unit
(** Rejoin [victim] to protocol duties (clears its crashed bit in the
    pure view). *)
