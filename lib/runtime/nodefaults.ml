(* Node-level crash/recovery schedules (shasta_run --node-faults).

   A spec is a deterministic timetable: each entry halts or restarts one
   node at a fixed parallel-phase cycle.  Crashes are crash-stop — the
   victim's program dies and never resumes; a later [recover] only
   rejoins the node to protocol duties (serving directory/home traffic
   again).  Detection is not scheduled here: the cluster derives it from
   the liveness lease horizon ([lease]) over the victim's last observed
   send, so a chatty victim is detected [lease] cycles after its last
   frame, deterministically.

   Spec syntax (comma-separated, like --net-faults):

     crash=NODE@CYCLE     halt NODE at parallel-phase CYCLE (repeatable;
                          NODE may be [*] — pick a victim from [seed])
     recover=NODE@CYCLE   rejoin NODE at CYCLE (protocol duties only)
     lease=CYCLES         liveness lease horizon (default 20000)
     max-retx=N           bound the reliable sublayer's retransmissions
                          (pass-through to the network faults knob)
     seed=S               victim selection seed for [crash=*@...]

   "none" parses to [None].  A spec with no crash/recover events is
   semantically OFF: the cluster must behave byte-identically to not
   passing --node-faults at all (goldens enforce this). *)

type what =
  | Crash
  | Recover
  | Detect
      (* internal: inserted by the scheduler when a crash fires, at the
         liveness lease expiry over the victim's last observed send;
         never produced by [of_string] *)

type event = { at : int; node : int; what : what }

type t = {
  events : event list; (* sorted by [at], stable *)
  lease : int; (* liveness lease horizon in cycles *)
  max_retx : int; (* 0 = leave the network's own setting alone *)
  seed : int;
}

let default_lease = 20_000

let empty = { events = []; lease = default_lease; max_retx = 0; seed = 0 }

let is_off t = t.events = []

(* Deterministic victim pick for [crash=*@T]: a tiny splitmix over
   (seed, index) — no global RNG state, so specs replay exactly. *)
let pick_victim ~seed ~index ~nprocs =
  if nprocs <= 1 then 0
  else begin
    let z = ref (seed * 0x9E3779B9 + (index * 0x85EBCA6B)) in
    z := (!z lxor (!z lsr 16)) * 0x045D9F3B;
    z := (!z lxor (!z lsr 16)) * 0x045D9F3B;
    z := !z lxor (!z lsr 16);
    (* never node 0: it hosts the barrier and prints the report, which
       keeps demo runs readable; an explicit [crash=0@T] still works *)
    1 + (abs !z mod (nprocs - 1))
  end

let of_string s : t option =
  match String.lowercase_ascii (String.trim s) with
  | "" | "none" | "off" -> None
  | s ->
    let t = ref empty in
    let wild = ref [] in (* (at, what, index) for crash=*@T entries *)
    let widx = ref 0 in
    let ev what v =
      match String.index_opt v '@' with
      | None ->
        invalid_arg
          (Printf.sprintf "node-faults: expected NODE@CYCLE, got %S" v)
      | Some i ->
        let node_s = String.sub v 0 i in
        let at = int_of_string (String.sub v (i + 1) (String.length v - i - 1)) in
        if at < 0 then invalid_arg "node-faults: negative cycle";
        if node_s = "*" then begin
          wild := (at, what, !widx) :: !wild;
          incr widx
        end
        else begin
          let node = int_of_string node_s in
          if node < 0 then invalid_arg "node-faults: negative node";
          t := { !t with events = { at; node; what } :: !t.events }
        end
    in
    String.split_on_char ',' s
    |> List.iter (fun kv ->
      match String.index_opt kv '=' with
      | None -> invalid_arg (Printf.sprintf "node-faults: bad entry %S" kv)
      | Some i ->
        let k = String.trim (String.sub kv 0 i) in
        let v = String.trim (String.sub kv (i + 1) (String.length kv - i - 1)) in
        (match k with
         | "crash" -> ev Crash v
         | "recover" -> ev Recover v
         | "lease" ->
           let l = int_of_string v in
           if l <= 0 then invalid_arg "node-faults: lease must be positive";
           t := { !t with lease = l }
         | "max-retx" | "max_retx" ->
           t := { !t with max_retx = int_of_string v }
         | "seed" -> t := { !t with seed = int_of_string v }
         | _ -> invalid_arg (Printf.sprintf "node-faults: unknown key %S" k)));
    (* wildcard victims resolve at [resolve] time (they need nprocs);
       park them as node = -(index+1) *)
    let events =
      !t.events
      @ List.map (fun (at, what, i) -> { at; node = -(i + 1); what }) !wild
    in
    let events = List.stable_sort (fun a b -> compare a.at b.at) events in
    Some { !t with events }

(* Bind wildcard victims to concrete nodes for an [nprocs]-node run. *)
let resolve t ~nprocs =
  { t with
    events =
      List.map
        (fun e ->
          if e.node >= 0 then e
          else
            { e with
              node = pick_victim ~seed:t.seed ~index:(-e.node - 1) ~nprocs })
        t.events }

let describe t =
  if is_off t then "none"
  else
    String.concat ","
      (List.map
         (fun e ->
           Printf.sprintf "%s=%d@%d"
             (match e.what with
              | Crash -> "crash"
              | Recover -> "recover"
              | Detect -> "detect")
             e.node e.at)
         t.events)
    ^ Printf.sprintf ",lease=%d" t.lease
