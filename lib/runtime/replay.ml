(* Deterministic replay through the pure protocol core.

   When [state.record_inputs] is set, the engine logs every
   (node, input) pair it feeds to [Transitions.step].  Because the core
   is pure and the recorded inputs carry every machine-derived value the
   core consumed (state-table bytes, stored longwords, batch iteration
   orders), folding [step] over the log from the initial view must
   land on exactly the view the live run left behind — [canon]-equal,
   not merely similar.  A divergence means the core consulted state
   outside its inputs, i.e. a hidden side channel: precisely the bug
   class the refactor is meant to exclude.

   The recording point sits ABOVE the transport: message inputs are
   logged when the engine pops them from [Network.recv], which is after
   the reliable-delivery sublayer has retransmitted drops, discarded
   duplicates and resequenced reordered frames.  So a run over a faulty
   wire ([--net-faults]) replays exactly like a clean one — the log
   already contains the repaired, exactly-once per-channel-FIFO stream
   the protocol consumed, and the fault layer needs no re-simulation.

   Structural invariants are checked after every replayed step, except
   while a truncated store-retry step ([A_reenter_store]) is still
   waiting for its re-entered store miss and carried [I_continue] to
   run — mid-flight, the view is intentionally incomplete. *)

open Shasta_protocol
module T = Transitions

type result = {
  steps : int;
  invariant_failures : (int * string list) list; (* step index, errors *)
  mismatch : bool; (* replayed view differs from the live one *)
}

let ok r = r.invariant_failures = [] && not r.mismatch

let replay (state : State.t) =
  let cfg = state.State.tcfg in
  let inputs = List.rev state.State.inputs_rev in
  let v = ref (T.init cfg) in
  let steps = ref 0 in
  let failures = ref [] in
  (* suppressed while a truncated step's residual work is outstanding *)
  let pending_continue = ref false in
  List.iter
    (fun (node, input) ->
      (match input with
       | T.I_continue _ -> pending_continue := false
       | _ -> ());
      let acts, v' = T.step cfg !v ~node input in
      v := v';
      incr steps;
      let truncated =
        match List.rev acts with
        | T.A_reenter_store { post; _ } :: _ ->
          if post <> [] then pending_continue := true;
          true
        | _ -> false
      in
      if (not truncated) && not !pending_continue then
        match T.invariants cfg !v with
        | [] -> ()
        | errs ->
          if List.length !failures < 10 then
            failures := (!steps, errs) :: !failures)
    inputs;
  { steps = !steps;
    invariant_failures = List.rev !failures;
    mismatch = not (String.equal (T.canon !v) (T.canon state.State.proto)) }
