(* Instruction interpreter with cycle accounting.

   Executes the (instrumented) executable: real instructions go through
   the pipeline/cache timing model and ordinary memory semantics — the
   inline checks are just code — while the pseudo-instructions enter the
   Shasta runtime (Engine).  The interpreter yields control back to the
   scheduler whenever the node interacts with the outside world, blocks,
   finishes, or exhausts its fuel, keeping cross-node timing causal. *)

open Shasta_isa
open Shasta_machine

exception Sim_error of string

type yield = Y_running | Y_blocked | Y_done

let sext32 v = if v land 0x80000000 <> 0 then v - 0x1_0000_0000 else v

let eval_iop (op : Insn.iop) src1 src2 =
  match op with
  | Addq -> src1 + src2
  | Subq -> src1 - src2
  | Mulq -> src1 * src2
  | Divq ->
    if src2 = 0 then raise (Sim_error "integer division by zero");
    (* truncating division, as on hardware *)
    let q = abs src1 / abs src2 in
    if src1 >= 0 = (src2 >= 0) then q else -q
  | Remq ->
    if src2 = 0 then raise (Sim_error "integer remainder by zero");
    src1 - (src2 * (let q = abs src1 / abs src2 in
                    if src1 >= 0 = (src2 >= 0) then q else -q))
  | Addl -> sext32 ((src1 + src2) land 0xFFFFFFFF)
  | Subl -> sext32 ((src1 - src2) land 0xFFFFFFFF)
  | Mull -> sext32 (src1 * src2 land 0xFFFFFFFF)
  | And_ -> src1 land src2
  | Or_ -> src1 lor src2
  | Xor_ -> src1 lxor src2
  | Sll -> src1 lsl (src2 land 63)
  | Srl -> src1 lsr (src2 land 63)
  | Sra -> src1 asr (src2 land 63)
  | Cmpeq -> if src1 = src2 then 1 else 0
  | Cmplt -> if src1 < src2 then 1 else 0
  | Cmple -> if src1 <= src2 then 1 else 0
  | Cmpult ->
    if Int64.unsigned_compare (Int64.of_int src1) (Int64.of_int src2) < 0
    then 1 else 0
  | Cmpule ->
    if Int64.unsigned_compare (Int64.of_int src1) (Int64.of_int src2) <= 0
    then 1 else 0

let eval_fop (op : Insn.fop) a b =
  match op with
  | Addt -> a +. b
  | Subt -> a -. b
  | Mult -> a *. b
  | Divt -> a /. b
  | Sqrtt -> sqrt a
  | Cmpteq -> if a = b then 1.0 else 0.0
  | Cmptlt -> if a < b then 1.0 else 0.0
  | Cmptle -> if a <= b then 1.0 else 0.0

let eval_cond (c : Insn.cond) v =
  match c with
  | Eq -> v = 0
  | Ne -> v <> 0
  | Lt -> v < 0
  | Le -> v <= 0
  | Gt -> v > 0
  | Ge -> v >= 0
  | Lbs -> v land 1 = 1
  | Lbc -> v land 1 = 0

(* Values for the paper's longword/quadword flag comparison. *)
let operand_value (node : Node.t) = function
  | Insn.Reg r -> node.regs.(r)
  | Insn.Imm i -> i

(* The work procedure returned or called exit: mark the thread done and
   report it, giving traces an end-of-track marker per node. *)
let finish state (node : Node.t) =
  node.status <- Finished;
  let site =
    { Shasta_obs.Event.sproc = node.pc_proc;
      spc = (if node.pc_idx > 0 then node.pc_idx - 1 else 0);
      sstack = node.call_stack }
  in
  Shasta_obs.Obs.emit state.State.config.obs ~site ~node:node.id
    ~time:(Node.time node) Shasta_obs.Event.Node_finished

let set_ireg (node : Node.t) r v = if r <> Reg.zero then node.regs.(r) <- v
let set_freg (node : Node.t) f v = if f <> Reg.fzero then node.fregs.(f) <- v

let refill_of state (node : Node.t) ~addr (r : Insn.refill) =
  ignore state;
  match r with
  | Insn.Rint (d, Insn.Long) ->
    fun () -> set_ireg node d (Memory.read_long node.mem addr)
  | Insn.Rint (d, Insn.Quad) ->
    fun () -> set_ireg node d (Memory.read_quad node.mem addr)
  | Insn.Rflt f -> fun () -> set_freg node f (Memory.read_float node.mem addr)

(* Execute [node] until it yields.  [fuel] bounds the instructions run
   before control returns to the scheduler even without interaction. *)
let run state (node : Node.t) ~fuel =
  let image = state.State.image in
  let fuel = ref fuel in
  let result = ref None in
  let yield r = result := Some r in
  (try
     while !result = None do
       match node.status with
       | Node.Finished | Node.Crashed -> yield Y_done
       | Node.Waiting _ -> yield Y_blocked
       | Node.Running ->
         let fp = image.Image.fprocs.(node.pc_proc) in
         if node.pc_idx >= Array.length fp.code then begin
           (* fell off the end of a procedure: implicit return *)
           match node.call_stack with
           | [] -> finish state node
           | (p, i) :: rest ->
             node.call_stack <- rest;
             node.pc_proc <- p;
             node.pc_idx <- i
         end
         else begin
           let idx = node.pc_idx in
           let ins = fp.code.(idx) in
           let iaddr = fp.base + fp.offset.(idx) in
           node.pc_idx <- idx + 1;
           if Insn.bytes ins > 0 then
             node.counters.insns <- node.counters.insns + 1;
           let issue ?maddr ?(branch = Pipeline.B_none) () =
             Pipeline.issue node.pipe ins ~iaddr ~maddr ~branch
           in
           let do_branch taken tgt =
             let backward = tgt <= idx in
             if taken then begin
               issue ~branch:(Pipeline.B_taken { backward }) ();
               node.pc_idx <- tgt
             end
             else issue ~branch:(Pipeline.B_not_taken { backward }) ()
           in
           match ins with
           | Lab _ -> ()
           | Lda (d, disp, b) ->
             issue ();
             set_ireg node d (node.regs.(b) + disp)
           | Opi (op, d, operand, rb) ->
             issue ();
             set_ireg node d
               (eval_iop op node.regs.(rb) (operand_value node operand))
           | Opf (op, fd, fa, fb) ->
             issue ();
             set_freg node fd (eval_fop op node.fregs.(fa) node.fregs.(fb))
           | Ldl (d, disp, b) ->
             let addr = node.regs.(b) + disp in
             issue ~maddr:addr ();
             set_ireg node d (Memory.read_long node.mem addr)
           | Ldq (d, disp, b) ->
             let addr = node.regs.(b) + disp in
             issue ~maddr:addr ();
             node.counters.dyn_loads <- node.counters.dyn_loads + 1;
             if addr >= Shasta.Layout.shared_base then
               node.counters.dyn_loads_shared <-
                 node.counters.dyn_loads_shared + 1;
             set_ireg node d (Memory.read_quad node.mem addr)
           | Ldq_u (d, disp, b) ->
             let addr = (node.regs.(b) + disp) land lnot 7 in
             issue ~maddr:addr ();
             set_ireg node d (Memory.read_quad node.mem addr)
           | Extbl (d, ra, rb) ->
             issue ();
             set_ireg node d
               ((node.regs.(ra) asr (8 * (node.regs.(rb) land 7))) land 0xFF)
           | Stl (r, disp, b) ->
             let addr = node.regs.(b) + disp in
             issue ~maddr:addr ();
             Memory.write_long_u node.mem addr (node.regs.(r) land 0xFFFFFFFF)
           | Stq (r, disp, b) ->
             let addr = node.regs.(b) + disp in
             issue ~maddr:addr ();
             node.counters.dyn_stores <- node.counters.dyn_stores + 1;
             if addr >= Shasta.Layout.shared_base then
               node.counters.dyn_stores_shared <-
                 node.counters.dyn_stores_shared + 1;
             Memory.write_quad node.mem addr node.regs.(r)
           | Ldt (f, disp, b) ->
             let addr = node.regs.(b) + disp in
             issue ~maddr:addr ();
             node.counters.dyn_loads <- node.counters.dyn_loads + 1;
             if addr >= Shasta.Layout.shared_base then
               node.counters.dyn_loads_shared <-
                 node.counters.dyn_loads_shared + 1;
             set_freg node f (Memory.read_float node.mem addr)
           | Stt (f, disp, b) ->
             let addr = node.regs.(b) + disp in
             issue ~maddr:addr ();
             node.counters.dyn_stores <- node.counters.dyn_stores + 1;
             if addr >= Shasta.Layout.shared_base then
               node.counters.dyn_stores_shared <-
                 node.counters.dyn_stores_shared + 1;
             Memory.write_float node.mem addr node.fregs.(f)
           | Cvtqt (r, fd) ->
             issue ();
             set_freg node fd (float_of_int node.regs.(r))
           | Cvttq (f, rd) ->
             issue ();
             set_ireg node rd (int_of_float node.fregs.(f))
           | Fmov (fd, fs) ->
             issue ();
             set_freg node fd node.fregs.(fs)
           | Br _ -> do_branch true fp.target.(idx)
           | Bc (c, r, _) ->
             do_branch (eval_cond c node.regs.(r)) fp.target.(idx)
           | Fbeq (f, _) -> do_branch (node.fregs.(f) = 0.0) fp.target.(idx)
           | Fbne (f, _) -> do_branch (node.fregs.(f) <> 0.0) fp.target.(idx)
           | Jsr _ ->
             issue ();
             node.call_stack <- (node.pc_proc, idx + 1) :: node.call_stack;
             node.pc_proc <- fp.callee.(idx);
             node.pc_idx <- 0
           | Ret ->
             issue ();
             (match node.call_stack with
              | [] -> finish state node
              | (p, i) :: rest ->
                node.call_stack <- rest;
                node.pc_proc <- p;
                node.pc_idx <- i)
           | Poll ->
             Engine.poll state node;
             yield Y_running
           | Call_load_miss { base; disp; refill } ->
             let addr = node.regs.(base) + disp in
             Engine.load_miss state node ~addr
               ~refill:(refill_of state node ~addr refill);
             yield Y_running
           | Call_store_miss { base; disp; ssize; store_done } ->
             let addr = node.regs.(base) + disp in
             let bytes = match ssize with Insn.Long -> 4 | Insn.Quad -> 8 in
             (* A non-scheduled store executes only after the handler
                returns; capture its effect so the engine can make it
                visible at wake time, before serving queued requests (on
                a real processor the handler's return and the store are
                back-to-back instructions nothing can interleave). *)
             (if not store_done then
                let rec find i =
                  if i >= Array.length fp.code then fun () -> ()
                  else
                    match fp.code.(i) with
                    | Lab _ -> find (i + 1)
                    | Stl (r, d, b) ->
                      fun () ->
                        Memory.write_long_u node.mem
                          (node.regs.(b) + d)
                          (node.regs.(r) land 0xFFFFFFFF)
                    | Stq (r, d, b) ->
                      fun () ->
                        Memory.write_quad node.mem
                          (node.regs.(b) + d)
                          node.regs.(r)
                    | Stt (f, d, b) ->
                      fun () ->
                        Memory.write_float node.mem
                          (node.regs.(b) + d)
                          node.fregs.(f)
                    | _ -> fun () -> ()
                in
                node.commit_store <- find node.pc_idx);
             Engine.store_miss state node ~addr ~bytes ~store_done;
             yield Y_running
           | Call_batch_miss { ranges } ->
             let accesses =
               List.concat_map
                 (fun (r : Insn.range) ->
                   let base_val = node.regs.(r.rbase) in
                   List.map
                     (fun (a : Insn.access) ->
                       ( base_val + a.disp,
                         (match a.asize with Insn.Long -> 4 | Insn.Quad -> 8),
                         a.is_store ))
                     r.accesses)
                 ranges
             in
             Engine.batch_miss state node ~nranges:(List.length ranges)
               ~accesses;
             yield Y_running
           | Batch_end ->
             if node.in_batch then begin
               Engine.batch_end state node;
               yield Y_running
             end
           | Rt_call rt ->
             (match rt with
              | Malloc { size; bsize; dest } ->
                let ptr =
                  Alloc.g_malloc state node ~size:node.regs.(size)
                    ~bsize_req:node.regs.(bsize)
                in
                set_ireg node dest ptr
              | Malloc_priv { size; dest } ->
                let ptr = Alloc.p_malloc state node ~size:node.regs.(size) in
                set_ireg node dest ptr
              | Lock r -> Engine.rt_lock state node node.regs.(r)
              | Unlock r -> Engine.rt_unlock state node node.regs.(r)
              | Barrier -> Engine.rt_barrier state node
              | Flag_set r -> Engine.rt_flag_set state node node.regs.(r)
              | Flag_wait r -> Engine.rt_flag_wait state node node.regs.(r)
              | Print_int r ->
                Buffer.add_string state.State.output
                  (string_of_int node.regs.(r) ^ "\n")
              | Print_float f ->
                Buffer.add_string state.State.output
                  (Printf.sprintf "%.6g\n" node.fregs.(f))
              | Rdcycle d -> set_ireg node d (Node.time node)
              | Exit_thread -> finish state node);
             yield Y_running
         end;
         decr fuel;
         if !fuel <= 0 && !result = None then yield Y_running
     done
   with
   | Invalid_argument m | Failure m ->
     raise
       (Sim_error
          (Printf.sprintf "node %d at %s+%d: %s" node.id
             image.Image.fprocs.(node.pc_proc).fname node.pc_idx m)));
  match !result with
  | Some r ->
    (match node.status with
     | Node.Finished | Node.Crashed -> Y_done
     | Node.Waiting _ -> Y_blocked
     | Node.Running -> r)
  | None -> assert false
