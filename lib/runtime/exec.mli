(* Instruction interpreter with cycle accounting.

   Executes the (instrumented) executable: real instructions go through
   the pipeline/cache timing model and ordinary memory semantics — the
   inline checks are just code — while the pseudo-instructions enter the
   Shasta runtime (Engine). *)

exception Sim_error of string

type yield = Y_running | Y_blocked | Y_done

(* ALU/FPU/branch-condition evaluation, exposed for the instruction-set
   property tests. *)
val eval_iop : Shasta_isa.Insn.iop -> int -> int -> int
val eval_fop : Shasta_isa.Insn.fop -> float -> float -> float
val eval_cond : Shasta_isa.Insn.cond -> int -> bool

(* Run [node] until it blocks, finishes, or [fuel] instructions have
   executed; yields control back to the scheduler so cross-node timing
   stays causal. *)
val run : State.t -> Node.t -> fuel:int -> yield
