(* Cluster construction and the simulation scheduler.

   Follows the SPLASH-2 execution model the paper adopts (Section 2 and
   footnote 1): an initialization phase runs on one processor and
   allocates/fills the shared data; process creation copies the static
   data to every node (the paper's CREATE-macro change); then the
   parallel phase runs on all nodes and is what gets timed.

   Scheduling is event-driven over per-node virtual time: the runnable
   entity with the smallest next-event time advances.  Running nodes
   execute instructions (yielding at runtime interactions); waiting or
   finished nodes advance by receiving messages.  Finished nodes keep
   serving protocol requests — they may still own blocks. *)

open Shasta_machine
module Obs = Shasta_obs.Obs
module Ev = Shasta_obs.Event

type phase_result = {
  wall_cycles : int;
  per_node_cycles : int array;
  counters : Node.counters array;
  output : string;
  msgs_sent : int;
  payload_longs : int;
  metrics : Shasta_obs.Metrics.t;
      (* delta of the observability registry over the timed phase *)
}

let create ~(config : State.config) ~(compiled : Shasta_minic.Compile.compiled)
    () =
  let image = Image.freeze compiled.program in
  let nodes =
    Array.init config.nprocs (fun id ->
      Node.create ~id ~pipe_config:config.pipe_config)
  in
  let pid_addr = Shasta_minic.Compile.global_address compiled "__pid" in
  let np_addr = Shasta_minic.Compile.global_address compiled "__nprocs" in
  (* crash-aware programs declare a [__crashed] global; the cluster
     keeps it equal to the detected-crash mask on every live node *)
  let crashed_addr =
    match Shasta_minic.Compile.global_address_opt compiled "__crashed" with
    | Some a -> a
    | None -> -1
  in
  let state =
    { State.config; image; nodes;
      net = Shasta_network.Network.create ?faults:config.net_faults
          ~nprocs:config.nprocs config.net_profile;
      gran =
        Shasta_protocol.Granularity.create ~line_bytes:(1 lsl config.line_shift)
          ~threshold:config.granularity_threshold ();
      tcfg =
        { Shasta_protocol.Transitions.nprocs = config.nprocs;
          page_bytes = State.page_bytes;
          sc = (config.consistency = State.Sequential);
          dmode = config.dir_mode;
          scalable_sync = config.scalable_sync;
          migrate = config.migrate };
      proto =
        Shasta_protocol.Transitions.init
          { Shasta_protocol.Transitions.nprocs = config.nprocs;
            page_bytes = State.page_bytes;
            sc = (config.consistency = State.Sequential);
            dmode = config.dir_mode;
            scalable_sync = config.scalable_sync;
            migrate = config.migrate };
      shared_next_page = State.shared_heap_start;
      pools = Hashtbl.create 8;
      output = Buffer.create 256;
      allocations = [];
      pid_addr;
      nprocs_addr = np_addr;
      crashed_addr;
      record_inputs = false;
      inputs_rev = [];
      fault_queue = [] }
  in
  (* Wire the interconnect and cache-model taps into the observability
     subsystem: every network send/delivery becomes a typed event,
     every hardware cache miss a registry bump. *)
  let obs = config.obs in
  let msg_info (msg : Shasta_protocol.Message.t) =
    ( Shasta_protocol.Message.kind_name msg,
      msg.addr,
      Shasta_protocol.Message.payload_longs msg )
  in
  Shasta_network.Network.set_taps state.net
    ~on_send:(fun ~src ~dst ~now msg ->
      let kind, block, longs = msg_info msg in
      (* stamp the send with the sender's current code site so the
         profiler's transaction spans open at the requesting access *)
      let n = nodes.(src) in
      let site =
        { Ev.sproc = n.pc_proc;
          spc = (if n.pc_idx > 0 then n.pc_idx - 1 else 0);
          sstack = n.call_stack }
      in
      Obs.emit obs ~site ~node:src ~time:now
        (Ev.Msg_send { dst; kind; block; longs }))
    ~on_recv:(fun ~src ~dst ~now msg ->
      let kind, block, longs = msg_info msg in
      Obs.emit obs ~node:dst ~time:now
        (Ev.Msg_recv { src; kind; block; longs }));
  (* fault-layer perturbations attribute to the sender's site too, so
     the profiler charges retransmission stalls to the code that sent
     the frame; with faults off the tap never fires and the event
     stream is byte-identical to a reliable run *)
  Shasta_network.Network.set_fault_tap state.net
    ~on_fault:(fun ~src ~dst ~now (x : Shasta_network.Network.xmit) msg ->
      let kind, _, _ = msg_info msg in
      let n = nodes.(src) in
      let site =
        { Ev.sproc = n.pc_proc;
          spc = (if n.pc_idx > 0 then n.pc_idx - 1 else 0);
          sstack = n.call_stack }
      in
      Obs.emit obs ~site ~node:src ~time:now
        (Ev.Net_fault
           { dst; kind; retx = x.retx; backoff = x.backoff;
             duplicated = x.duplicated; reordered = x.reordered;
             timed_out = x.timed_out }));
  Array.iter
    (fun (n : Node.t) ->
      n.caches.on_miss <-
        (fun (c : Cache.t) ->
          Obs.incr obs ~node:n.id
            (match c.cname with
             | "l1i" -> "cache.l1i.misses"
             | "l1d" -> "cache.l1d.misses"
             | _ -> "cache.l2.misses")))
    nodes;
  Array.iter
    (fun (n : Node.t) ->
      (* private regions are exclusive from the start so that store
         checks without range checks succeed on them *)
      Tables.mark_private_exclusive n ~ls:config.line_shift
        ~addr:Shasta.Layout.static_base
        ~len:(Shasta.Layout.static_limit - Shasta.Layout.static_base);
      Tables.mark_private_exclusive n ~ls:config.line_shift
        ~addr:Shasta.Layout.stack_limit
        ~len:(Shasta.Layout.stack_top - Shasta.Layout.stack_limit);
      List.iter
        (fun (addr, bits) -> Memory.write_quad_bits n.mem addr bits)
        compiled.static_init;
      Memory.write_quad n.mem pid_addr n.id;
      Memory.write_quad n.mem np_addr config.nprocs)
    nodes;
  (* profile-guided placement: install the explicit page -> home
     overrides before any program runs.  Empty under the default
     config, so the protocol view stays byte-identical to the seed. *)
  List.iter
    (fun (page, home) ->
      if home < 0 || home >= config.nprocs then
        invalid_arg
          (Printf.sprintf "Cluster.create: placement home %d out of range"
             home);
      Engine.set_home state ~page ~home)
    config.placement;
  state

let reset_node_for (state : State.t) (node : Node.t) ~proc =
  node.pc_proc <- Image.proc_index state.image proc;
  node.pc_idx <- 0;
  node.call_stack <- [];
  node.status <- Running;
  node.regs.(Shasta_isa.Reg.sp) <- Shasta.Layout.stack_top;
  node.regs.(Shasta_isa.Reg.gp) <- Shasta.Layout.static_base;
  node.regs.(Shasta_isa.Reg.zero) <- 0

let next_event_time (state : State.t) (node : Node.t) =
  match node.status with
  | Node.Running -> Node.time node
  | Node.Crashed -> max_int (* never runs, never delivers *)
  | Node.Waiting _ | Node.Finished ->
    (match
       Shasta_network.Network.next_arrival state.net ~dst:node.id
     with
     | Some t -> max t (Node.time node)
     | None -> max_int)

exception Deadlock of string

(* ------------------------------------------------------------------ *)
(* Node crash/recovery injection (--node-faults)                        *)
(* ------------------------------------------------------------------ *)

(* Mirror the ever-crashed (halted) mask into every live node's
   [__crashed] cell (declared by crash-aware programs; a private
   global, so the write never touches the protocol).  Halted, not
   currently-crashed: a recovered node serves protocol traffic again
   but its program died with the crash, and that is what programs need
   to know (e.g. which shards' data reflects a truncated plan). *)
let write_crashed_cells (state : State.t) =
  if state.crashed_addr >= 0 then begin
    let mask = Shasta_protocol.Transitions.halted_mask state.proto in
    Array.iter
      (fun (n : Node.t) ->
        if n.status <> Node.Crashed then
          Memory.write_quad n.mem state.crashed_addr mask)
      state.nodes
  end

(* Detection: purge the victim's in-flight frames off the wire and feed
   the pure core the crash at the lowest surviving node, which becomes
   the recovery coordinator (directory rebuild, lease takeover, re-sent
   replies all run as its protocol work and are recorded for replay). *)
let detect_crash (state : State.t) ~victim ~at =
  let lost =
    Shasta_network.Network.mark_dead state.net ~node:victim
    |> List.map (fun (_src, dst, msg) -> (dst, msg))
  in
  let coord = ref (-1) in
  Array.iter
    (fun (n : Node.t) ->
      if !coord < 0 && n.status <> Node.Crashed then coord := n.id)
    state.nodes;
  if !coord >= 0 then begin
    let coord = state.nodes.(!coord) in
    Pipeline.advance_to coord.pipe at;
    Engine.node_crash state coord ~victim ~lost;
    write_crashed_cells state
  end

let fire_fault (state : State.t) (at, (e : Nodefaults.event)) =
  let obs = state.config.obs in
  match e.what with
  | Nodefaults.Crash ->
    let victim = state.nodes.(e.node) in
    if victim.status <> Node.Crashed then begin
      (* crash-stop: the program dies here; the memory image freezes
         (recovery salvages block bytes out of it) *)
      Pipeline.advance_to victim.pipe at;
      victim.status <- Node.Crashed;
      victim.refill <- (fun () -> ());
      victim.commit_store <- (fun () -> ());
      Obs.emit obs ~node:e.node ~time:at (Ev.Node_crash { victim = e.node });
      (* schedule detection at the liveness lease expiry over the
         victim's last observed send — its implicit final heartbeat *)
      let spec =
        match state.config.node_faults with
        | Some s -> s
        | None -> Nodefaults.empty
      in
      let lease =
        Shasta_network.Network.Lease.grant ~holder:e.node
          ~now:(Shasta_network.Network.last_activity state.net ~node:e.node)
          ~horizon:spec.lease
      in
      let d = max (at + 1) (Shasta_network.Network.Lease.expiry lease) in
      state.fault_queue <-
        List.merge
          (fun (a, _) (b, _) -> compare a b)
          state.fault_queue
          [ (d, { Nodefaults.at = d; node = e.node; what = Nodefaults.Detect }) ]
    end
  | Nodefaults.Detect -> detect_crash state ~victim:e.node ~at
  | Nodefaults.Recover ->
    let victim = state.nodes.(e.node) in
    if victim.status = Node.Crashed then begin
      (* an undetected crash detects now: recovery must rejoin a clean
         protocol identity, not resume half-stale pending state *)
      if Shasta_protocol.Transitions.is_live state.proto ~node:e.node then
        detect_crash state ~victim:e.node ~at;
      state.fault_queue <-
        List.filter
          (fun (_, (f : Nodefaults.event)) ->
            not (f.node = e.node && f.what = Nodefaults.Detect))
          state.fault_queue;
      Engine.node_recover state victim ~victim:e.node;
      Shasta_network.Network.mark_live state.net ~node:e.node;
      Pipeline.advance_to victim.pipe at;
      (* protocol duties only: the node serves home/owner traffic again
         but its program died with the crash *)
      victim.status <- Node.Finished;
      Obs.emit obs ~node:e.node ~time:at (Ev.Node_recover { victim = e.node });
      write_crashed_cells state
    end

let next_fault_time (state : State.t) =
  match state.fault_queue with [] -> max_int | (t, _) :: _ -> t

(* Heartbeat under --progress N: whenever simulated time crosses
   another N-million-cycle boundary, emit one obs event and one stderr
   line.  With [progress = None] (the default) nothing fires and the
   event stream is byte-identical to a heartbeat-free build. *)
let heartbeat (state : State.t) next_hb ~now =
  match state.config.progress with
  | None -> ()
  | Some n ->
    let ival = n * 1_000_000 in
    if ival > 0 && now < max_int then begin
      (if !next_hb < 0 then next_hb := (now / ival * ival) + ival);
      while now >= !next_hb do
        let live =
          Array.fold_left
            (fun a (nd : Node.t) ->
              match nd.status with
              | Node.Running | Node.Waiting _ -> a + 1
              | Node.Finished | Node.Crashed -> a)
            0 state.nodes
        in
        Obs.emit state.config.obs ~node:0 ~time:!next_hb
          (Ev.Heartbeat { cycles = !next_hb; live });
        Printf.eprintf "[shasta] heartbeat: %d Mcyc simulated, %d node(s) live\n%!"
          (!next_hb / 1_000_000) live;
        next_hb := !next_hb + ival
      done
    end

(* Run the scheduler until every node has finished and the network has
   drained. *)
let run_until_done ?(max_events = 2_000_000_000) (state : State.t) =
  let events = ref 0 in
  let next_hb = ref (-1) in
  let finished () =
    Array.for_all
      (fun (n : Node.t) ->
        n.status = Node.Finished || n.status = Node.Crashed)
      state.nodes
    && Shasta_network.Network.in_flight state.net = 0
  in
  while not (finished ()) do
    incr events;
    if !events > max_events then raise (Deadlock "event budget exhausted");
    (* pick the node with the earliest next event *)
    let best = ref (-1) and best_t = ref max_int in
    Array.iter
      (fun (n : Node.t) ->
        let t = next_event_time state n in
        if t < !best_t then begin
          best_t := t;
          best := n.id
        end)
      state.nodes;
    heartbeat state next_hb ~now:(min !best_t (next_fault_time state));
    (* a scheduled fault fires once simulated time reaches it — i.e. no
       node has an earlier event.  The [best < 0] arm matters: before a
       crash is detected, every live node may be blocked on the victim
       with nothing in flight; that is the detector's cue, not a
       deadlock. *)
    let nft = next_fault_time state in
    if nft < max_int && (!best < 0 || nft <= !best_t) then begin
      match state.fault_queue with
      | [] -> assert false
      | entry :: rest ->
        state.fault_queue <- rest;
        fire_fault state entry
    end
    else if !best < 0 then begin
      let diag =
        Array.to_list state.nodes
        |> List.map (fun (n : Node.t) ->
          Printf.sprintf "n%d:%s" n.id
            (match n.status with
             | Node.Running -> "run"
             | Node.Finished -> "done"
             | Node.Crashed -> "crashed"
             | Node.Waiting (Node.W_blocks bs) ->
               Printf.sprintf "blocks[%s]"
                 (String.concat ","
                    (List.map (Printf.sprintf "0x%x") bs))
             | Node.Waiting Node.W_release -> "release"
             | Node.Waiting Node.W_sync -> "sync"))
        |> String.concat " "
      in
      raise (Deadlock diag)
    end
    else begin
      let node = state.nodes.(!best) in
      match node.status with
      | Node.Running -> ignore (Exec.run state node ~fuel:400)
      | Node.Crashed -> assert false (* never the earliest event *)
      | Node.Waiting _ | Node.Finished ->
        if not (Engine.deliver_next state node) then
          raise (Deadlock "waiting node has no incoming messages")
    end
  done

let snapshot_counters (n : Node.t) =
  { n.counters with insns = n.counters.insns }

let diff_counters (a : Node.counters) (b : Node.counters) : Node.counters =
  { read_misses = b.read_misses - a.read_misses;
    write_misses = b.write_misses - a.write_misses;
    upgrade_misses = b.upgrade_misses - a.upgrade_misses;
    batch_misses = b.batch_misses - a.batch_misses;
    false_misses = b.false_misses - a.false_misses;
    stall_cycles = b.stall_cycles - a.stall_cycles;
    polls = b.polls - a.polls;
    msgs_handled = b.msgs_handled - a.msgs_handled;
    lock_acquires = b.lock_acquires - a.lock_acquires;
    barriers_passed = b.barriers_passed - a.barriers_passed;
    insns = b.insns - a.insns;
    store_reissues = b.store_reissues - a.store_reissues;
    dyn_loads = b.dyn_loads - a.dyn_loads;
    dyn_loads_shared = b.dyn_loads_shared - a.dyn_loads_shared;
    dyn_stores = b.dyn_stores - a.dyn_stores;
    dyn_stores_shared = b.dyn_stores_shared - a.dyn_stores_shared }

(* Run [init_proc] on node 0 (others idle), copy the static area to all
   nodes (process creation), then run [work_proc] everywhere and time
   it.  [perf] (when given) charges host time to the "load" phase (the
   sequential init run plus the process-creation copy) and the "run"
   phase (the timed parallel execution). *)
let run_app ?(init_proc = "appinit") ?(work_proc = "work") ?perf
    (state : State.t) =
  let ph name f =
    match perf with
    | Some p -> Shasta_obs.Perf.phase p name f
    | None -> f ()
  in
  let nodes = state.nodes in
  ph "load" (fun () ->
    (* --- initialization phase on node 0 --- *)
    (if Hashtbl.mem state.image.index init_proc then begin
       Array.iter (fun (n : Node.t) -> n.status <- Node.Finished) nodes;
       reset_node_for state nodes.(0) ~proc:init_proc;
       run_until_done state
     end);
    (* --- process creation: copy static data to every node --- *)
    let n0 = nodes.(0) in
    Array.iter
      (fun (n : Node.t) ->
        if n.id <> 0 then
          Memory.copy_pages ~src:n0.mem ~dst:n.mem
            ~addr:Shasta.Layout.static_base
            ~len:(Shasta.Layout.static_limit - Shasta.Layout.static_base))
      nodes;
    (* the copy clobbered the per-node pid cells; restore them *)
    Array.iter
      (fun (n : Node.t) -> Memory.write_quad n.mem state.pid_addr n.id)
      nodes);
  (* --- parallel phase --- *)
  let t0 =
    Array.fold_left (fun a (n : Node.t) -> max a (Node.time n)) 0 nodes
  in
  Array.iter
    (fun (n : Node.t) ->
      Pipeline.advance_to n.pipe t0;
      reset_node_for state n ~proc:work_proc)
    nodes;
  (* arm the crash schedule: spec cycles are parallel-phase relative,
     the queue holds absolute times.  With no events (or no spec) the
     queue stays empty and the scheduler never looks at the clock — the
     run is byte-identical to one without the layer. *)
  (match state.config.node_faults with
   | Some spec when not (Nodefaults.is_off spec) ->
     let spec = Nodefaults.resolve spec ~nprocs:state.config.nprocs in
     List.iter
       (fun (e : Nodefaults.event) ->
         if e.node < 0 || e.node >= state.config.nprocs then
           invalid_arg
             (Printf.sprintf "node-faults: node %d out of range" e.node))
       spec.events;
     state.fault_queue <-
       List.map (fun (e : Nodefaults.event) -> (t0 + e.at, e)) spec.events
   | _ -> state.fault_queue <- []);
  let before = Array.map snapshot_counters nodes in
  let sent0, pay0 = Shasta_network.Network.stats state.net in
  let metrics0 = Shasta_obs.Metrics.copy (Obs.metrics state.config.obs) in
  ph "run" (fun () -> run_until_done state);
  ph "drain" (fun () ->
    let t1 =
      Array.fold_left (fun a (n : Node.t) -> max a (Node.time n)) 0 nodes
    in
    let sent1, pay1 = Shasta_network.Network.stats state.net in
    { wall_cycles = t1 - t0;
      per_node_cycles = Array.map (fun (n : Node.t) -> Node.time n - t0) nodes;
      counters =
        Array.mapi (fun i (n : Node.t) -> diff_counters before.(i) n.counters)
          nodes;
      output = Buffer.contents state.output;
      msgs_sent = sent1 - sent0;
      payload_longs = pay1 - pay0;
      metrics =
        Shasta_obs.Metrics.sub (Obs.metrics state.config.obs) metrics0 })
