(* Cluster construction and the simulation scheduler.

   Follows the SPLASH-2 execution model the paper adopts (Section 2 and
   footnote 1): an initialization phase runs on one processor and
   allocates/fills the shared data; process creation copies the static
   data to every node (the paper's CREATE-macro change); then the
   parallel phase runs on all nodes and is what gets timed.

   Scheduling is event-driven over per-node virtual time: the runnable
   entity with the smallest next-event time advances.  Running nodes
   execute instructions (yielding at runtime interactions); waiting or
   finished nodes advance by receiving messages.  Finished nodes keep
   serving protocol requests — they may still own blocks. *)

open Shasta_machine
module Obs = Shasta_obs.Obs
module Ev = Shasta_obs.Event

type phase_result = {
  wall_cycles : int;
  per_node_cycles : int array;
  counters : Node.counters array;
  output : string;
  msgs_sent : int;
  payload_longs : int;
  metrics : Shasta_obs.Metrics.t;
      (* delta of the observability registry over the timed phase *)
}

let create ~(config : State.config) ~(compiled : Shasta_minic.Compile.compiled)
    () =
  let image = Image.freeze compiled.program in
  let nodes =
    Array.init config.nprocs (fun id ->
      Node.create ~id ~pipe_config:config.pipe_config)
  in
  let pid_addr = Shasta_minic.Compile.global_address compiled "__pid" in
  let np_addr = Shasta_minic.Compile.global_address compiled "__nprocs" in
  let state =
    { State.config; image; nodes;
      net = Shasta_network.Network.create ?faults:config.net_faults
          ~nprocs:config.nprocs config.net_profile;
      gran =
        Shasta_protocol.Granularity.create ~line_bytes:(1 lsl config.line_shift)
          ~threshold:config.granularity_threshold ();
      tcfg =
        { Shasta_protocol.Transitions.nprocs = config.nprocs;
          page_bytes = State.page_bytes;
          sc = (config.consistency = State.Sequential) };
      proto =
        Shasta_protocol.Transitions.init
          { Shasta_protocol.Transitions.nprocs = config.nprocs;
            page_bytes = State.page_bytes;
            sc = (config.consistency = State.Sequential) };
      shared_next_page = State.shared_heap_start;
      pools = Hashtbl.create 8;
      output = Buffer.create 256;
      allocations = [];
      pid_addr;
      nprocs_addr = np_addr;
      record_inputs = false;
      inputs_rev = [] }
  in
  (* Wire the interconnect and cache-model taps into the observability
     subsystem: every network send/delivery becomes a typed event,
     every hardware cache miss a registry bump. *)
  let obs = config.obs in
  let msg_info (msg : Shasta_protocol.Message.t) =
    ( Shasta_protocol.Message.kind_name msg,
      msg.addr,
      Shasta_protocol.Message.payload_longs msg )
  in
  Shasta_network.Network.set_taps state.net
    ~on_send:(fun ~src ~dst ~now msg ->
      let kind, block, longs = msg_info msg in
      (* stamp the send with the sender's current code site so the
         profiler's transaction spans open at the requesting access *)
      let n = nodes.(src) in
      let site =
        { Ev.sproc = n.pc_proc;
          spc = (if n.pc_idx > 0 then n.pc_idx - 1 else 0);
          sstack = n.call_stack }
      in
      Obs.emit obs ~site ~node:src ~time:now
        (Ev.Msg_send { dst; kind; block; longs }))
    ~on_recv:(fun ~src ~dst ~now msg ->
      let kind, block, longs = msg_info msg in
      Obs.emit obs ~node:dst ~time:now
        (Ev.Msg_recv { src; kind; block; longs }));
  (* fault-layer perturbations attribute to the sender's site too, so
     the profiler charges retransmission stalls to the code that sent
     the frame; with faults off the tap never fires and the event
     stream is byte-identical to a reliable run *)
  Shasta_network.Network.set_fault_tap state.net
    ~on_fault:(fun ~src ~dst ~now (x : Shasta_network.Network.xmit) msg ->
      let kind, _, _ = msg_info msg in
      let n = nodes.(src) in
      let site =
        { Ev.sproc = n.pc_proc;
          spc = (if n.pc_idx > 0 then n.pc_idx - 1 else 0);
          sstack = n.call_stack }
      in
      Obs.emit obs ~site ~node:src ~time:now
        (Ev.Net_fault
           { dst; kind; retx = x.retx; backoff = x.backoff;
             duplicated = x.duplicated; reordered = x.reordered }));
  Array.iter
    (fun (n : Node.t) ->
      n.caches.on_miss <-
        (fun (c : Cache.t) ->
          Obs.incr obs ~node:n.id
            (match c.cname with
             | "l1i" -> "cache.l1i.misses"
             | "l1d" -> "cache.l1d.misses"
             | _ -> "cache.l2.misses")))
    nodes;
  Array.iter
    (fun (n : Node.t) ->
      (* private regions are exclusive from the start so that store
         checks without range checks succeed on them *)
      Tables.mark_private_exclusive n ~ls:config.line_shift
        ~addr:Shasta.Layout.static_base
        ~len:(Shasta.Layout.static_limit - Shasta.Layout.static_base);
      Tables.mark_private_exclusive n ~ls:config.line_shift
        ~addr:Shasta.Layout.stack_limit
        ~len:(Shasta.Layout.stack_top - Shasta.Layout.stack_limit);
      List.iter
        (fun (addr, bits) -> Memory.write_quad_bits n.mem addr bits)
        compiled.static_init;
      Memory.write_quad n.mem pid_addr n.id;
      Memory.write_quad n.mem np_addr config.nprocs)
    nodes;
  state

let reset_node_for (state : State.t) (node : Node.t) ~proc =
  node.pc_proc <- Image.proc_index state.image proc;
  node.pc_idx <- 0;
  node.call_stack <- [];
  node.status <- Running;
  node.regs.(Shasta_isa.Reg.sp) <- Shasta.Layout.stack_top;
  node.regs.(Shasta_isa.Reg.gp) <- Shasta.Layout.static_base;
  node.regs.(Shasta_isa.Reg.zero) <- 0

let next_event_time (state : State.t) (node : Node.t) =
  match node.status with
  | Node.Running -> Node.time node
  | Node.Waiting _ | Node.Finished ->
    (match
       Shasta_network.Network.next_arrival state.net ~dst:node.id
     with
     | Some t -> max t (Node.time node)
     | None -> max_int)

exception Deadlock of string

(* Run the scheduler until every node has finished and the network has
   drained. *)
let run_until_done ?(max_events = 2_000_000_000) (state : State.t) =
  let events = ref 0 in
  let finished () =
    Array.for_all (fun (n : Node.t) -> n.status = Node.Finished) state.nodes
    && Shasta_network.Network.in_flight state.net = 0
  in
  while not (finished ()) do
    incr events;
    if !events > max_events then raise (Deadlock "event budget exhausted");
    (* pick the node with the earliest next event *)
    let best = ref (-1) and best_t = ref max_int in
    Array.iter
      (fun (n : Node.t) ->
        let t = next_event_time state n in
        if t < !best_t then begin
          best_t := t;
          best := n.id
        end)
      state.nodes;
    if !best < 0 then begin
      let diag =
        Array.to_list state.nodes
        |> List.map (fun (n : Node.t) ->
          Printf.sprintf "n%d:%s" n.id
            (match n.status with
             | Node.Running -> "run"
             | Node.Finished -> "done"
             | Node.Waiting (Node.W_blocks bs) ->
               Printf.sprintf "blocks[%s]"
                 (String.concat ","
                    (List.map (Printf.sprintf "0x%x") bs))
             | Node.Waiting Node.W_release -> "release"
             | Node.Waiting Node.W_sync -> "sync"))
        |> String.concat " "
      in
      raise (Deadlock diag)
    end;
    let node = state.nodes.(!best) in
    match node.status with
    | Node.Running -> ignore (Exec.run state node ~fuel:400)
    | Node.Waiting _ | Node.Finished ->
      if not (Engine.deliver_next state node) then
        raise (Deadlock "waiting node has no incoming messages")
  done

let snapshot_counters (n : Node.t) =
  { n.counters with insns = n.counters.insns }

let diff_counters (a : Node.counters) (b : Node.counters) : Node.counters =
  { read_misses = b.read_misses - a.read_misses;
    write_misses = b.write_misses - a.write_misses;
    upgrade_misses = b.upgrade_misses - a.upgrade_misses;
    batch_misses = b.batch_misses - a.batch_misses;
    false_misses = b.false_misses - a.false_misses;
    stall_cycles = b.stall_cycles - a.stall_cycles;
    polls = b.polls - a.polls;
    msgs_handled = b.msgs_handled - a.msgs_handled;
    lock_acquires = b.lock_acquires - a.lock_acquires;
    barriers_passed = b.barriers_passed - a.barriers_passed;
    insns = b.insns - a.insns;
    store_reissues = b.store_reissues - a.store_reissues;
    dyn_loads = b.dyn_loads - a.dyn_loads;
    dyn_loads_shared = b.dyn_loads_shared - a.dyn_loads_shared;
    dyn_stores = b.dyn_stores - a.dyn_stores;
    dyn_stores_shared = b.dyn_stores_shared - a.dyn_stores_shared }

(* Run [init_proc] on node 0 (others idle), copy the static area to all
   nodes (process creation), then run [work_proc] everywhere and time
   it. *)
let run_app ?(init_proc = "appinit") ?(work_proc = "work") (state : State.t) =
  let nodes = state.nodes in
  (* --- initialization phase on node 0 --- *)
  (if Hashtbl.mem state.image.index init_proc then begin
     Array.iter (fun (n : Node.t) -> n.status <- Node.Finished) nodes;
     reset_node_for state nodes.(0) ~proc:init_proc;
     run_until_done state
   end);
  (* --- process creation: copy static data to every node --- *)
  let n0 = nodes.(0) in
  Array.iter
    (fun (n : Node.t) ->
      if n.id <> 0 then
        Memory.copy_pages ~src:n0.mem ~dst:n.mem
          ~addr:Shasta.Layout.static_base
          ~len:(Shasta.Layout.static_limit - Shasta.Layout.static_base))
    nodes;
  (* the copy clobbered the per-node pid cells; restore them *)
  Array.iter
    (fun (n : Node.t) -> Memory.write_quad n.mem state.pid_addr n.id)
    nodes;
  (* --- parallel phase --- *)
  let t0 =
    Array.fold_left (fun a (n : Node.t) -> max a (Node.time n)) 0 nodes
  in
  Array.iter
    (fun (n : Node.t) ->
      Pipeline.advance_to n.pipe t0;
      reset_node_for state n ~proc:work_proc)
    nodes;
  let before = Array.map snapshot_counters nodes in
  let sent0, pay0 = Shasta_network.Network.stats state.net in
  let metrics0 = Shasta_obs.Metrics.copy (Obs.metrics state.config.obs) in
  run_until_done state;
  let t1 =
    Array.fold_left (fun a (n : Node.t) -> max a (Node.time n)) 0 nodes
  in
  let sent1, pay1 = Shasta_network.Network.stats state.net in
  { wall_cycles = t1 - t0;
    per_node_cycles = Array.map (fun (n : Node.t) -> Node.time n - t0) nodes;
    counters =
      Array.mapi (fun i (n : Node.t) -> diff_counters before.(i) n.counters)
        nodes;
    output = Buffer.contents state.output;
    msgs_sent = sent1 - sent0;
    payload_longs = pay1 - pay0;
    metrics =
      Shasta_obs.Metrics.sub (Obs.metrics state.config.obs) metrics0 }
