(* Per-node runtime state: architectural state (memory, caches,
   pipeline, registers), scheduling status, and counters.

   Protocol bookkeeping (pending lines, ack counts, waiter queues, sync
   signals) lives in the pure transition core
   ([Shasta_protocol.Transitions]); the node carries only what the
   machine layers and the scheduler need. *)

open Shasta_machine

(* Re-exported from the transition core so the scheduler can match on a
   node's wait without depending on protocol internals. *)
type wait = Shasta_protocol.Transitions.wait =
  | W_blocks of int list (* until none of these blocks is pending *)
  | W_release (* until no pending blocks and no outstanding acks *)
  | W_sync (* until a synchronization signal (grant/release/wake) *)

type status =
  | Running
  | Waiting of wait
  | Finished
  | Crashed
    (* halted by the fault injector: the program never resumes and no
       message is ever delivered again; the memory image stays frozen
       so recovery can salvage block bytes out of it *)

type counters = {
  mutable read_misses : int;
  mutable write_misses : int; (* read-exclusive *)
  mutable upgrade_misses : int;
  mutable batch_misses : int;
  mutable false_misses : int;
  mutable stall_cycles : int;
  mutable polls : int;
  mutable msgs_handled : int;
  mutable lock_acquires : int;
  mutable barriers_passed : int;
  mutable insns : int;
  mutable store_reissues : int;
  (* dynamic access mix, for the instrumented-frequency table *)
  mutable dyn_loads : int;
  mutable dyn_loads_shared : int;
  mutable dyn_stores : int;
  mutable dyn_stores_shared : int;
}

val fresh_counters : unit -> counters

type t = {
  id : int;
  mem : Memory.t;
  caches : Cache.hierarchy;
  pipe : Pipeline.t;
  regs : int array;
  fregs : float array;
  mutable pc_proc : int;
  mutable pc_idx : int;
  mutable call_stack : (int * int) list;
  mutable status : status;
  mutable refill : unit -> unit;
      (* the stalled load's continuation, run by the A_refill action *)
  mutable commit_store : unit -> unit;
      (* a stalled non-scheduled store's memory effect, made visible by
         the engine at wake time before any queued request is served *)
  mutable wait_started : int; (* cycle when the current wait began *)
  mutable reply_data : int array option;
      (* longwords of the Data_reply currently being applied (consumed
         by the first M_merge action of the step) *)
  (* mirrors of transition-core state the interpreter layers read *)
  mutable in_batch : bool;
  mutable batch_stores : (int * int) list; (* absolute addr, byte size *)
  mutable priv_brk : int; (* private heap bump pointer *)
  counters : counters;
}

val create : id:int -> pipe_config:Pipeline.config -> t

val time : t -> int
(** The node's current cycle (its pipeline clock). *)
