(* Frozen executable: label and call targets resolved to indices so the
   interpreter's hot loop never touches a hash table, plus text-layout
   byte offsets for the I-cache model. *)

open Shasta_isa

type fproc = {
  fname : string;
  code : Insn.t array;
  target : int array; (* branch target index, or -1 *)
  callee : int array; (* callee procedure index for Jsr, or -1 *)
  offset : int array; (* byte offset of each instruction in the text *)
  base : int; (* text base address of this procedure *)
  src : string array;
      (* source location ("proc:stmt") of each instruction, rebuilt from
         the compiler's zero-byte "$src:" marker labels; "" before the
         first marker (prologue) or in hand-written code *)
}

type t = {
  fprocs : fproc array;
  index : (string, int) Hashtbl.t;
}

let freeze (prog : Program.t) =
  ignore (Program.validate prog);
  let index = Hashtbl.create 16 in
  List.iteri (fun i (p : Program.proc) -> Hashtbl.add index p.pname i)
    prog.procs;
  let next_base = ref Shasta.Layout.text_base in
  let fprocs =
    List.map
      (fun (p : Program.proc) ->
        let code = Array.of_list p.body in
        let labels = Hashtbl.create 16 in
        Array.iteri
          (fun i insn ->
            match insn with
            | Insn.Lab l -> Hashtbl.replace labels l i
            | _ -> ())
          code;
        let n = Array.length code in
        let target = Array.make n (-1) in
        let callee = Array.make n (-1) in
        let offset = Array.make n 0 in
        let src = Array.make n "" in
        let base = !next_base in
        let off = ref 0 in
        let cur_src = ref "" in
        Array.iteri
          (fun i insn ->
            offset.(i) <- !off;
            off := !off + Insn.bytes insn;
            (* instructions inherit the latest source marker: checks
               inserted for a statement's accesses sit between its
               marker and the next one *)
            (match insn with
             | Insn.Lab l ->
               (match Program.src_of_label l with
                | Some s -> cur_src := s
                | None -> ())
             | _ -> ());
            src.(i) <- !cur_src;
            (match Insn.branch_targets insn with
             | [ l ] -> target.(i) <- Hashtbl.find labels l
             | _ -> ());
            match insn with
            | Insn.Jsr callee_name ->
              callee.(i) <- Hashtbl.find index callee_name
            | _ -> ())
          code;
        next_base := (base + !off + 63) land lnot 63;
        { fname = p.pname; code; target; callee; offset; base; src })
      prog.procs
    |> Array.of_list
  in
  { fprocs; index }

let proc_index t name =
  match Hashtbl.find_opt t.index name with
  | Some i -> i
  | None -> invalid_arg ("Image.proc_index: unknown procedure " ^ name)

let nprocs t = Array.length t.fprocs

(* --- site naming (for the profiler's reports) ----------------------- *)

let proc_name t p =
  if p >= 0 && p < Array.length t.fprocs then t.fprocs.(p).fname else "?"

(* "proc:stmt" when the compiler planted markers, "proc+idx" otherwise
   (hand-assembled executables have no source table). *)
let site_name t ~proc ~pc =
  if proc < 0 || proc >= Array.length t.fprocs then
    Printf.sprintf "?%d+%d" proc pc
  else
    let fp = t.fprocs.(proc) in
    if pc < 0 || pc >= Array.length fp.code then fp.fname
    else
      match fp.src.(pc) with
      | "" -> Printf.sprintf "%s+%d" fp.fname pc
      | s -> s
